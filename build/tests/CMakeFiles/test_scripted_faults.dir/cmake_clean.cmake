file(REMOVE_RECURSE
  "CMakeFiles/test_scripted_faults.dir/test_scripted_faults.cpp.o"
  "CMakeFiles/test_scripted_faults.dir/test_scripted_faults.cpp.o.d"
  "test_scripted_faults"
  "test_scripted_faults.pdb"
  "test_scripted_faults[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scripted_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
