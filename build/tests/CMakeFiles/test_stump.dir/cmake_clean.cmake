file(REMOVE_RECURSE
  "CMakeFiles/test_stump.dir/test_stump.cpp.o"
  "CMakeFiles/test_stump.dir/test_stump.cpp.o.d"
  "test_stump"
  "test_stump.pdb"
  "test_stump[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
