# Empty dependencies file for test_stump.
# This may be replaced when dependencies are built.
