file(REMOVE_RECURSE
  "CMakeFiles/test_linear_model.dir/test_linear_model.cpp.o"
  "CMakeFiles/test_linear_model.dir/test_linear_model.cpp.o.d"
  "test_linear_model"
  "test_linear_model.pdb"
  "test_linear_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_linear_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
