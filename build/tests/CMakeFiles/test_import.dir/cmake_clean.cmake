file(REMOVE_RECURSE
  "CMakeFiles/test_import.dir/test_import.cpp.o"
  "CMakeFiles/test_import.dir/test_import.cpp.o.d"
  "test_import"
  "test_import.pdb"
  "test_import[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_import.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
