# Empty compiler generated dependencies file for test_customer.
# This may be replaced when dependencies are built.
