file(REMOVE_RECURSE
  "CMakeFiles/test_entropy.dir/test_entropy.cpp.o"
  "CMakeFiles/test_entropy.dir/test_entropy.cpp.o.d"
  "test_entropy"
  "test_entropy.pdb"
  "test_entropy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_entropy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
