# Empty dependencies file for test_atds.
# This may be replaced when dependencies are built.
