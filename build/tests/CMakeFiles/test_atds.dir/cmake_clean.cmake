file(REMOVE_RECURSE
  "CMakeFiles/test_atds.dir/test_atds.cpp.o"
  "CMakeFiles/test_atds.dir/test_atds.cpp.o.d"
  "test_atds"
  "test_atds.pdb"
  "test_atds[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_atds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
