# Empty dependencies file for test_logreg.
# This may be replaced when dependencies are built.
