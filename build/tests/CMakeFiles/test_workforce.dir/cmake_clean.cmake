file(REMOVE_RECURSE
  "CMakeFiles/test_workforce.dir/test_workforce.cpp.o"
  "CMakeFiles/test_workforce.dir/test_workforce.cpp.o.d"
  "test_workforce"
  "test_workforce.pdb"
  "test_workforce[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workforce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
