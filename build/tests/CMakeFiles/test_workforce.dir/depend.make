# Empty dependencies file for test_workforce.
# This may be replaced when dependencies are built.
