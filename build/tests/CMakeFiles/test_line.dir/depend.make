# Empty dependencies file for test_line.
# This may be replaced when dependencies are built.
