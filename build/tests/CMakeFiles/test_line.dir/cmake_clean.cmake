file(REMOVE_RECURSE
  "CMakeFiles/test_line.dir/test_line.cpp.o"
  "CMakeFiles/test_line.dir/test_line.cpp.o.d"
  "test_line"
  "test_line.pdb"
  "test_line[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_line.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
