# Empty dependencies file for bench_sec63_tests_to_locate.
# This may be replaced when dependencies are built.
