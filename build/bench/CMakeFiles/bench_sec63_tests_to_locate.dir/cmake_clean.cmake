file(REMOVE_RECURSE
  "CMakeFiles/bench_sec63_tests_to_locate.dir/bench_sec63_tests_to_locate.cpp.o"
  "CMakeFiles/bench_sec63_tests_to_locate.dir/bench_sec63_tests_to_locate.cpp.o.d"
  "bench_sec63_tests_to_locate"
  "bench_sec63_tests_to_locate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec63_tests_to_locate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
