file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_feature_ap.dir/bench_fig4_feature_ap.cpp.o"
  "CMakeFiles/bench_fig4_feature_ap.dir/bench_fig4_feature_ap.cpp.o.d"
  "bench_fig4_feature_ap"
  "bench_fig4_feature_ap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_feature_ap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
