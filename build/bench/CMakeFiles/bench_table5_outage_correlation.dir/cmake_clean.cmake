file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_outage_correlation.dir/bench_table5_outage_correlation.cpp.o"
  "CMakeFiles/bench_table5_outage_correlation.dir/bench_table5_outage_correlation.cpp.o.d"
  "bench_table5_outage_correlation"
  "bench_table5_outage_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_outage_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
