# Empty dependencies file for bench_table5_outage_correlation.
# This may be replaced when dependencies are built.
