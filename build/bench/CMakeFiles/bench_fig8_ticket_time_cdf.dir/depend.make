# Empty dependencies file for bench_fig8_ticket_time_cdf.
# This may be replaced when dependencies are built.
