file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_boosting.dir/bench_ablation_boosting.cpp.o"
  "CMakeFiles/bench_ablation_boosting.dir/bench_ablation_boosting.cpp.o.d"
  "bench_ablation_boosting"
  "bench_ablation_boosting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_boosting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
