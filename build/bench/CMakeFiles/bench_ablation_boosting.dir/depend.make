# Empty dependencies file for bench_ablation_boosting.
# This may be replaced when dependencies are built.
