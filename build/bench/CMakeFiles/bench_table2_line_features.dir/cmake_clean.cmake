file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_line_features.dir/bench_table2_line_features.cpp.o"
  "CMakeFiles/bench_table2_line_features.dir/bench_table2_line_features.cpp.o.d"
  "bench_table2_line_features"
  "bench_table2_line_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_line_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
