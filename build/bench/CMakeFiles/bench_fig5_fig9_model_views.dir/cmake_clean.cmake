file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_fig9_model_views.dir/bench_fig5_fig9_model_views.cpp.o"
  "CMakeFiles/bench_fig5_fig9_model_views.dir/bench_fig5_fig9_model_views.cpp.o.d"
  "bench_fig5_fig9_model_views"
  "bench_fig5_fig9_model_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_fig9_model_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
