# Empty compiler generated dependencies file for bench_fig5_fig9_model_views.
# This may be replaced when dependencies are built.
