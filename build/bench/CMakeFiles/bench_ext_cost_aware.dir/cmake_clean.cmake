file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_cost_aware.dir/bench_ext_cost_aware.cpp.o"
  "CMakeFiles/bench_ext_cost_aware.dir/bench_ext_cost_aware.cpp.o.d"
  "bench_ext_cost_aware"
  "bench_ext_cost_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_cost_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
