# Empty dependencies file for bench_ext_cost_aware.
# This may be replaced when dependencies are built.
