file(REMOVE_RECURSE
  "CMakeFiles/bench_data_overview.dir/bench_data_overview.cpp.o"
  "CMakeFiles/bench_data_overview.dir/bench_data_overview.cpp.o.d"
  "bench_data_overview"
  "bench_data_overview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_data_overview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
