file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_bstump.dir/bench_perf_bstump.cpp.o"
  "CMakeFiles/bench_perf_bstump.dir/bench_perf_bstump.cpp.o.d"
  "bench_perf_bstump"
  "bench_perf_bstump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_bstump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
