# Empty dependencies file for bench_perf_bstump.
# This may be replaced when dependencies are built.
