# Empty dependencies file for bench_fig6_feature_selection.
# This may be replaced when dependencies are built.
