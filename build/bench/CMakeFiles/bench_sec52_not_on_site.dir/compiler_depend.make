# Empty compiler generated dependencies file for bench_sec52_not_on_site.
# This may be replaced when dependencies are built.
