file(REMOVE_RECURSE
  "CMakeFiles/bench_sec52_not_on_site.dir/bench_sec52_not_on_site.cpp.o"
  "CMakeFiles/bench_sec52_not_on_site.dir/bench_sec52_not_on_site.cpp.o.d"
  "bench_sec52_not_on_site"
  "bench_sec52_not_on_site.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec52_not_on_site.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
