# Empty dependencies file for bench_table1_dispositions.
# This may be replaced when dependencies are built.
