file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_dispositions.dir/bench_table1_dispositions.cpp.o"
  "CMakeFiles/bench_table1_dispositions.dir/bench_table1_dispositions.cpp.o.d"
  "bench_table1_dispositions"
  "bench_table1_dispositions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_dispositions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
