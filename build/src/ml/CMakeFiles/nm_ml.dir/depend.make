# Empty dependencies file for nm_ml.
# This may be replaced when dependencies are built.
