
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/adaboost.cpp" "src/ml/CMakeFiles/nm_ml.dir/adaboost.cpp.o" "gcc" "src/ml/CMakeFiles/nm_ml.dir/adaboost.cpp.o.d"
  "/root/repo/src/ml/calibration.cpp" "src/ml/CMakeFiles/nm_ml.dir/calibration.cpp.o" "gcc" "src/ml/CMakeFiles/nm_ml.dir/calibration.cpp.o.d"
  "/root/repo/src/ml/cross_validation.cpp" "src/ml/CMakeFiles/nm_ml.dir/cross_validation.cpp.o" "gcc" "src/ml/CMakeFiles/nm_ml.dir/cross_validation.cpp.o.d"
  "/root/repo/src/ml/dataset.cpp" "src/ml/CMakeFiles/nm_ml.dir/dataset.cpp.o" "gcc" "src/ml/CMakeFiles/nm_ml.dir/dataset.cpp.o.d"
  "/root/repo/src/ml/decision_tree.cpp" "src/ml/CMakeFiles/nm_ml.dir/decision_tree.cpp.o" "gcc" "src/ml/CMakeFiles/nm_ml.dir/decision_tree.cpp.o.d"
  "/root/repo/src/ml/entropy.cpp" "src/ml/CMakeFiles/nm_ml.dir/entropy.cpp.o" "gcc" "src/ml/CMakeFiles/nm_ml.dir/entropy.cpp.o.d"
  "/root/repo/src/ml/feature_selection.cpp" "src/ml/CMakeFiles/nm_ml.dir/feature_selection.cpp.o" "gcc" "src/ml/CMakeFiles/nm_ml.dir/feature_selection.cpp.o.d"
  "/root/repo/src/ml/linalg.cpp" "src/ml/CMakeFiles/nm_ml.dir/linalg.cpp.o" "gcc" "src/ml/CMakeFiles/nm_ml.dir/linalg.cpp.o.d"
  "/root/repo/src/ml/linear_model.cpp" "src/ml/CMakeFiles/nm_ml.dir/linear_model.cpp.o" "gcc" "src/ml/CMakeFiles/nm_ml.dir/linear_model.cpp.o.d"
  "/root/repo/src/ml/logreg.cpp" "src/ml/CMakeFiles/nm_ml.dir/logreg.cpp.o" "gcc" "src/ml/CMakeFiles/nm_ml.dir/logreg.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/nm_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/nm_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/pca.cpp" "src/ml/CMakeFiles/nm_ml.dir/pca.cpp.o" "gcc" "src/ml/CMakeFiles/nm_ml.dir/pca.cpp.o.d"
  "/root/repo/src/ml/roc.cpp" "src/ml/CMakeFiles/nm_ml.dir/roc.cpp.o" "gcc" "src/ml/CMakeFiles/nm_ml.dir/roc.cpp.o.d"
  "/root/repo/src/ml/serialization.cpp" "src/ml/CMakeFiles/nm_ml.dir/serialization.cpp.o" "gcc" "src/ml/CMakeFiles/nm_ml.dir/serialization.cpp.o.d"
  "/root/repo/src/ml/stump.cpp" "src/ml/CMakeFiles/nm_ml.dir/stump.cpp.o" "gcc" "src/ml/CMakeFiles/nm_ml.dir/stump.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
