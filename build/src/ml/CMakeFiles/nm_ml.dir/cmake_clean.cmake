file(REMOVE_RECURSE
  "CMakeFiles/nm_ml.dir/adaboost.cpp.o"
  "CMakeFiles/nm_ml.dir/adaboost.cpp.o.d"
  "CMakeFiles/nm_ml.dir/calibration.cpp.o"
  "CMakeFiles/nm_ml.dir/calibration.cpp.o.d"
  "CMakeFiles/nm_ml.dir/cross_validation.cpp.o"
  "CMakeFiles/nm_ml.dir/cross_validation.cpp.o.d"
  "CMakeFiles/nm_ml.dir/dataset.cpp.o"
  "CMakeFiles/nm_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/nm_ml.dir/decision_tree.cpp.o"
  "CMakeFiles/nm_ml.dir/decision_tree.cpp.o.d"
  "CMakeFiles/nm_ml.dir/entropy.cpp.o"
  "CMakeFiles/nm_ml.dir/entropy.cpp.o.d"
  "CMakeFiles/nm_ml.dir/feature_selection.cpp.o"
  "CMakeFiles/nm_ml.dir/feature_selection.cpp.o.d"
  "CMakeFiles/nm_ml.dir/linalg.cpp.o"
  "CMakeFiles/nm_ml.dir/linalg.cpp.o.d"
  "CMakeFiles/nm_ml.dir/linear_model.cpp.o"
  "CMakeFiles/nm_ml.dir/linear_model.cpp.o.d"
  "CMakeFiles/nm_ml.dir/logreg.cpp.o"
  "CMakeFiles/nm_ml.dir/logreg.cpp.o.d"
  "CMakeFiles/nm_ml.dir/metrics.cpp.o"
  "CMakeFiles/nm_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/nm_ml.dir/pca.cpp.o"
  "CMakeFiles/nm_ml.dir/pca.cpp.o.d"
  "CMakeFiles/nm_ml.dir/roc.cpp.o"
  "CMakeFiles/nm_ml.dir/roc.cpp.o.d"
  "CMakeFiles/nm_ml.dir/serialization.cpp.o"
  "CMakeFiles/nm_ml.dir/serialization.cpp.o.d"
  "CMakeFiles/nm_ml.dir/stump.cpp.o"
  "CMakeFiles/nm_ml.dir/stump.cpp.o.d"
  "libnm_ml.a"
  "libnm_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nm_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
