file(REMOVE_RECURSE
  "libnm_ml.a"
)
