# Empty compiler generated dependencies file for nm_features.
# This may be replaced when dependencies are built.
