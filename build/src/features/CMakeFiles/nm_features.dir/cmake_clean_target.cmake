file(REMOVE_RECURSE
  "libnm_features.a"
)
