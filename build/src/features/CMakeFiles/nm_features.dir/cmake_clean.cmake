file(REMOVE_RECURSE
  "CMakeFiles/nm_features.dir/encoder.cpp.o"
  "CMakeFiles/nm_features.dir/encoder.cpp.o.d"
  "libnm_features.a"
  "libnm_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nm_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
