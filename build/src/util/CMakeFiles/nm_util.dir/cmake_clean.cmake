file(REMOVE_RECURSE
  "CMakeFiles/nm_util.dir/calendar.cpp.o"
  "CMakeFiles/nm_util.dir/calendar.cpp.o.d"
  "CMakeFiles/nm_util.dir/csv.cpp.o"
  "CMakeFiles/nm_util.dir/csv.cpp.o.d"
  "CMakeFiles/nm_util.dir/mathx.cpp.o"
  "CMakeFiles/nm_util.dir/mathx.cpp.o.d"
  "CMakeFiles/nm_util.dir/rng.cpp.o"
  "CMakeFiles/nm_util.dir/rng.cpp.o.d"
  "CMakeFiles/nm_util.dir/stats.cpp.o"
  "CMakeFiles/nm_util.dir/stats.cpp.o.d"
  "CMakeFiles/nm_util.dir/table.cpp.o"
  "CMakeFiles/nm_util.dir/table.cpp.o.d"
  "libnm_util.a"
  "libnm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
