file(REMOVE_RECURSE
  "libnm_dslsim.a"
)
