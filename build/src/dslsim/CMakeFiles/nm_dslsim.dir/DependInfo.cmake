
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dslsim/customer.cpp" "src/dslsim/CMakeFiles/nm_dslsim.dir/customer.cpp.o" "gcc" "src/dslsim/CMakeFiles/nm_dslsim.dir/customer.cpp.o.d"
  "/root/repo/src/dslsim/export.cpp" "src/dslsim/CMakeFiles/nm_dslsim.dir/export.cpp.o" "gcc" "src/dslsim/CMakeFiles/nm_dslsim.dir/export.cpp.o.d"
  "/root/repo/src/dslsim/faults.cpp" "src/dslsim/CMakeFiles/nm_dslsim.dir/faults.cpp.o" "gcc" "src/dslsim/CMakeFiles/nm_dslsim.dir/faults.cpp.o.d"
  "/root/repo/src/dslsim/import.cpp" "src/dslsim/CMakeFiles/nm_dslsim.dir/import.cpp.o" "gcc" "src/dslsim/CMakeFiles/nm_dslsim.dir/import.cpp.o.d"
  "/root/repo/src/dslsim/line.cpp" "src/dslsim/CMakeFiles/nm_dslsim.dir/line.cpp.o" "gcc" "src/dslsim/CMakeFiles/nm_dslsim.dir/line.cpp.o.d"
  "/root/repo/src/dslsim/metrics.cpp" "src/dslsim/CMakeFiles/nm_dslsim.dir/metrics.cpp.o" "gcc" "src/dslsim/CMakeFiles/nm_dslsim.dir/metrics.cpp.o.d"
  "/root/repo/src/dslsim/profile.cpp" "src/dslsim/CMakeFiles/nm_dslsim.dir/profile.cpp.o" "gcc" "src/dslsim/CMakeFiles/nm_dslsim.dir/profile.cpp.o.d"
  "/root/repo/src/dslsim/simulator.cpp" "src/dslsim/CMakeFiles/nm_dslsim.dir/simulator.cpp.o" "gcc" "src/dslsim/CMakeFiles/nm_dslsim.dir/simulator.cpp.o.d"
  "/root/repo/src/dslsim/summary.cpp" "src/dslsim/CMakeFiles/nm_dslsim.dir/summary.cpp.o" "gcc" "src/dslsim/CMakeFiles/nm_dslsim.dir/summary.cpp.o.d"
  "/root/repo/src/dslsim/topology.cpp" "src/dslsim/CMakeFiles/nm_dslsim.dir/topology.cpp.o" "gcc" "src/dslsim/CMakeFiles/nm_dslsim.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/nm_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
