file(REMOVE_RECURSE
  "CMakeFiles/nm_dslsim.dir/customer.cpp.o"
  "CMakeFiles/nm_dslsim.dir/customer.cpp.o.d"
  "CMakeFiles/nm_dslsim.dir/export.cpp.o"
  "CMakeFiles/nm_dslsim.dir/export.cpp.o.d"
  "CMakeFiles/nm_dslsim.dir/faults.cpp.o"
  "CMakeFiles/nm_dslsim.dir/faults.cpp.o.d"
  "CMakeFiles/nm_dslsim.dir/import.cpp.o"
  "CMakeFiles/nm_dslsim.dir/import.cpp.o.d"
  "CMakeFiles/nm_dslsim.dir/line.cpp.o"
  "CMakeFiles/nm_dslsim.dir/line.cpp.o.d"
  "CMakeFiles/nm_dslsim.dir/metrics.cpp.o"
  "CMakeFiles/nm_dslsim.dir/metrics.cpp.o.d"
  "CMakeFiles/nm_dslsim.dir/profile.cpp.o"
  "CMakeFiles/nm_dslsim.dir/profile.cpp.o.d"
  "CMakeFiles/nm_dslsim.dir/simulator.cpp.o"
  "CMakeFiles/nm_dslsim.dir/simulator.cpp.o.d"
  "CMakeFiles/nm_dslsim.dir/summary.cpp.o"
  "CMakeFiles/nm_dslsim.dir/summary.cpp.o.d"
  "CMakeFiles/nm_dslsim.dir/topology.cpp.o"
  "CMakeFiles/nm_dslsim.dir/topology.cpp.o.d"
  "libnm_dslsim.a"
  "libnm_dslsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nm_dslsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
