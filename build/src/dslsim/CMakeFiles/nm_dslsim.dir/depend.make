# Empty dependencies file for nm_dslsim.
# This may be replaced when dependencies are built.
