file(REMOVE_RECURSE
  "CMakeFiles/nm_core.dir/atds.cpp.o"
  "CMakeFiles/nm_core.dir/atds.cpp.o.d"
  "CMakeFiles/nm_core.dir/deployment.cpp.o"
  "CMakeFiles/nm_core.dir/deployment.cpp.o.d"
  "CMakeFiles/nm_core.dir/explain.cpp.o"
  "CMakeFiles/nm_core.dir/explain.cpp.o.d"
  "CMakeFiles/nm_core.dir/monitoring.cpp.o"
  "CMakeFiles/nm_core.dir/monitoring.cpp.o.d"
  "CMakeFiles/nm_core.dir/nevermind.cpp.o"
  "CMakeFiles/nm_core.dir/nevermind.cpp.o.d"
  "CMakeFiles/nm_core.dir/ticket_predictor.cpp.o"
  "CMakeFiles/nm_core.dir/ticket_predictor.cpp.o.d"
  "CMakeFiles/nm_core.dir/trouble_locator.cpp.o"
  "CMakeFiles/nm_core.dir/trouble_locator.cpp.o.d"
  "CMakeFiles/nm_core.dir/workforce.cpp.o"
  "CMakeFiles/nm_core.dir/workforce.cpp.o.d"
  "libnm_core.a"
  "libnm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
