
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/atds.cpp" "src/core/CMakeFiles/nm_core.dir/atds.cpp.o" "gcc" "src/core/CMakeFiles/nm_core.dir/atds.cpp.o.d"
  "/root/repo/src/core/deployment.cpp" "src/core/CMakeFiles/nm_core.dir/deployment.cpp.o" "gcc" "src/core/CMakeFiles/nm_core.dir/deployment.cpp.o.d"
  "/root/repo/src/core/explain.cpp" "src/core/CMakeFiles/nm_core.dir/explain.cpp.o" "gcc" "src/core/CMakeFiles/nm_core.dir/explain.cpp.o.d"
  "/root/repo/src/core/monitoring.cpp" "src/core/CMakeFiles/nm_core.dir/monitoring.cpp.o" "gcc" "src/core/CMakeFiles/nm_core.dir/monitoring.cpp.o.d"
  "/root/repo/src/core/nevermind.cpp" "src/core/CMakeFiles/nm_core.dir/nevermind.cpp.o" "gcc" "src/core/CMakeFiles/nm_core.dir/nevermind.cpp.o.d"
  "/root/repo/src/core/ticket_predictor.cpp" "src/core/CMakeFiles/nm_core.dir/ticket_predictor.cpp.o" "gcc" "src/core/CMakeFiles/nm_core.dir/ticket_predictor.cpp.o.d"
  "/root/repo/src/core/trouble_locator.cpp" "src/core/CMakeFiles/nm_core.dir/trouble_locator.cpp.o" "gcc" "src/core/CMakeFiles/nm_core.dir/trouble_locator.cpp.o.d"
  "/root/repo/src/core/workforce.cpp" "src/core/CMakeFiles/nm_core.dir/workforce.cpp.o" "gcc" "src/core/CMakeFiles/nm_core.dir/workforce.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/nm_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/dslsim/CMakeFiles/nm_dslsim.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/nm_features.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
