file(REMOVE_RECURSE
  "CMakeFiles/proactive_care.dir/proactive_care.cpp.o"
  "CMakeFiles/proactive_care.dir/proactive_care.cpp.o.d"
  "proactive_care"
  "proactive_care.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proactive_care.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
