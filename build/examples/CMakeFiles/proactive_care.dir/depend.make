# Empty dependencies file for proactive_care.
# This may be replaced when dependencies are built.
