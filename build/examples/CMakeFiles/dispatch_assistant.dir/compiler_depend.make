# Empty compiler generated dependencies file for dispatch_assistant.
# This may be replaced when dependencies are built.
