file(REMOVE_RECURSE
  "CMakeFiles/dispatch_assistant.dir/dispatch_assistant.cpp.o"
  "CMakeFiles/dispatch_assistant.dir/dispatch_assistant.cpp.o.d"
  "dispatch_assistant"
  "dispatch_assistant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dispatch_assistant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
