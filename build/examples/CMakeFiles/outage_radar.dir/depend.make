# Empty dependencies file for outage_radar.
# This may be replaced when dependencies are built.
