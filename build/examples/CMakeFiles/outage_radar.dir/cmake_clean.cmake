file(REMOVE_RECURSE
  "CMakeFiles/outage_radar.dir/outage_radar.cpp.o"
  "CMakeFiles/outage_radar.dir/outage_radar.cpp.o.d"
  "outage_radar"
  "outage_radar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/outage_radar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
