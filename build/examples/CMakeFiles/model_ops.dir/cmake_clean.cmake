file(REMOVE_RECURSE
  "CMakeFiles/model_ops.dir/model_ops.cpp.o"
  "CMakeFiles/model_ops.dir/model_ops.cpp.o.d"
  "model_ops"
  "model_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
