# Empty dependencies file for model_ops.
# This may be replaced when dependencies are built.
