# Empty dependencies file for nevermind.
# This may be replaced when dependencies are built.
