file(REMOVE_RECURSE
  "CMakeFiles/nevermind.dir/nevermind_cli.cpp.o"
  "CMakeFiles/nevermind.dir/nevermind_cli.cpp.o.d"
  "nevermind"
  "nevermind.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nevermind.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
