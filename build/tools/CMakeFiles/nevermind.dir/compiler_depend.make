# Empty compiler generated dependencies file for nevermind.
# This may be replaced when dependencies are built.
