#include "dslsim/topology.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace nevermind::dslsim {
namespace {

TopologyConfig small_config() {
  TopologyConfig cfg;
  cfg.n_lines = 1000;
  cfg.lines_per_dslam = 48;
  cfg.dslams_per_atm = 4;
  cfg.atms_per_bras = 2;
  cfg.crossboxes_per_dslam = 6;
  return cfg;
}

TEST(Topology, CountsFollowFanout) {
  const Topology t(small_config());
  EXPECT_EQ(t.n_lines(), 1000U);
  EXPECT_EQ(t.n_dslams(), (1000 + 47) / 48);
  EXPECT_EQ(t.n_atms(), (t.n_dslams() + 3) / 4);
  EXPECT_EQ(t.n_bras(), (t.n_atms() + 1) / 2);
  EXPECT_EQ(t.n_crossboxes(), t.n_dslams() * 6);
}

TEST(Topology, EveryLineHasValidDslam) {
  const Topology t(small_config());
  for (LineId u = 0; u < t.n_lines(); ++u) {
    EXPECT_LT(t.dslam_of(u), t.n_dslams());
  }
}

TEST(Topology, DslamSizesBounded) {
  const Topology t(small_config());
  for (DslamId d = 0; d < t.n_dslams(); ++d) {
    EXPECT_LE(t.lines_of_dslam(d).size(), 48U);
  }
}

TEST(Topology, LinesOfDslamPartitionsLines) {
  const Topology t(small_config());
  std::set<LineId> seen;
  for (DslamId d = 0; d < t.n_dslams(); ++d) {
    for (LineId u : t.lines_of_dslam(d)) {
      EXPECT_EQ(t.dslam_of(u), d);
      EXPECT_TRUE(seen.insert(u).second) << "line in two DSLAMs";
    }
  }
  EXPECT_EQ(seen.size(), t.n_lines());
}

TEST(Topology, CrossboxBelongsToLinesDslam) {
  const Topology t(small_config());
  for (LineId u = 0; u < t.n_lines(); ++u) {
    const CrossboxId cb = t.crossbox_of(u);
    EXPECT_EQ(cb / 6, t.dslam_of(u));
  }
}

TEST(Topology, HierarchyIsConsistent) {
  const Topology t(small_config());
  for (DslamId d = 0; d < t.n_dslams(); ++d) {
    const AtmId a = t.atm_of_dslam(d);
    EXPECT_LT(a, t.n_atms());
    EXPECT_EQ(t.bras_of_dslam(d), a / 2);
    EXPECT_LT(t.bras_of_dslam(d), t.n_bras());
  }
  for (LineId u = 0; u < t.n_lines(); ++u) {
    EXPECT_EQ(t.bras_of_line(u), t.bras_of_dslam(t.dslam_of(u)));
  }
}

TEST(Topology, DeterministicForSeed) {
  const Topology a(small_config(), 7);
  const Topology b(small_config(), 7);
  for (LineId u = 0; u < a.n_lines(); ++u) {
    EXPECT_EQ(a.crossbox_of(u), b.crossbox_of(u));
  }
}

TEST(Topology, TinyNetworkStillValid) {
  TopologyConfig cfg;
  cfg.n_lines = 1;
  const Topology t(cfg);
  EXPECT_EQ(t.n_dslams(), 1U);
  EXPECT_EQ(t.n_atms(), 1U);
  EXPECT_EQ(t.n_bras(), 1U);
  EXPECT_EQ(t.lines_of_dslam(0).size(), 1U);
}

TEST(Topology, ZeroFanoutFieldsFallBackToDefaults) {
  TopologyConfig cfg;
  cfg.n_lines = 100;
  cfg.lines_per_dslam = 0;
  cfg.dslams_per_atm = 0;
  cfg.atms_per_bras = 0;
  cfg.crossboxes_per_dslam = 0;
  const Topology t(cfg);
  EXPECT_GT(t.n_dslams(), 0U);
  EXPECT_GT(t.n_crossboxes(), 0U);
}

}  // namespace
}  // namespace nevermind::dslsim
