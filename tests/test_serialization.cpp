#include "ml/serialization.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/rng.hpp"

namespace nevermind::ml {
namespace {

BStumpModel make_model(util::Rng& rng, std::size_t n_stumps = 25) {
  std::vector<Stump> stumps;
  for (std::size_t i = 0; i < n_stumps; ++i) {
    Stump s;
    s.feature = rng.uniform_index(40);
    s.categorical = rng.bernoulli(0.2);
    s.threshold = static_cast<float>(rng.normal(0.0, 100.0));
    s.score_pass = rng.normal(0.0, 1.0);
    s.score_fail = rng.normal(0.0, 1.0);
    s.score_missing = rng.normal(0.0, 0.1);
    stumps.push_back(s);
  }
  return BStumpModel{std::move(stumps)};
}

TEST(Serialization, ModelRoundTripsExactly) {
  util::Rng rng(1);
  const BStumpModel original = make_model(rng);
  std::stringstream ss;
  save_model(ss, original);
  const auto loaded = load_model(ss);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->stumps().size(), original.stumps().size());
  for (std::size_t i = 0; i < original.stumps().size(); ++i) {
    const auto& a = original.stumps()[i];
    const auto& b = loaded->stumps()[i];
    EXPECT_EQ(a.feature, b.feature);
    EXPECT_EQ(a.categorical, b.categorical);
    EXPECT_EQ(a.threshold, b.threshold);
    EXPECT_EQ(a.score_pass, b.score_pass);
    EXPECT_EQ(a.score_fail, b.score_fail);
    EXPECT_EQ(a.score_missing, b.score_missing);
  }
}

TEST(Serialization, LoadedModelScoresIdentically) {
  util::Rng rng(2);
  const BStumpModel original = make_model(rng);
  std::stringstream ss;
  save_model(ss, original);
  const auto loaded = load_model(ss);
  ASSERT_TRUE(loaded.has_value());
  std::vector<float> row(40);
  for (int trial = 0; trial < 50; ++trial) {
    for (auto& v : row) {
      v = rng.bernoulli(0.1) ? kMissing
                             : static_cast<float>(rng.normal(0.0, 50.0));
    }
    EXPECT_EQ(original.score_features(row), loaded->score_features(row));
  }
}

TEST(Serialization, RejectsWrongMagic) {
  std::stringstream ss("notamodel v1 3\n");
  EXPECT_FALSE(load_model(ss).has_value());
}

TEST(Serialization, RejectsTruncatedModel) {
  util::Rng rng(3);
  const BStumpModel original = make_model(rng, 5);
  std::stringstream ss;
  save_model(ss, original);
  std::string text = ss.str();
  text.resize(text.size() / 2);
  std::stringstream truncated(text);
  EXPECT_FALSE(load_model(truncated).has_value());
}

TEST(Serialization, EmptyModelRoundTrips) {
  std::stringstream ss;
  save_model(ss, BStumpModel{});
  const auto loaded = load_model(ss);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->empty());
}

TEST(Serialization, CalibratorRoundTrips) {
  PlattCalibrator cal;
  cal.a = 1.2345678901234567;
  cal.b = -0.9876543210987654;
  std::stringstream ss;
  save_calibrator(ss, cal);
  const auto loaded = load_calibrator(ss);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->a, cal.a);
  EXPECT_EQ(loaded->b, cal.b);
}

TEST(Serialization, BundleRoundTrips) {
  util::Rng rng(4);
  ModelBundle bundle;
  bundle.model = make_model(rng, 10);
  bundle.calibrator.a = 0.5;
  bundle.calibrator.b = -3.25;
  bundle.feature_names = {"b.dnbr", "ts.dncvcnt1", "p.b.dncvcnt1*ts.upbr"};
  std::stringstream ss;
  save_bundle(ss, bundle);
  const auto loaded = load_bundle(ss);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->feature_names, bundle.feature_names);
  EXPECT_EQ(loaded->model.stumps().size(), 10U);
  EXPECT_EQ(loaded->calibrator.b, -3.25);
}

TEST(Serialization, BundleRejectsMissingCalibrator) {
  util::Rng rng(5);
  ModelBundle bundle;
  bundle.model = make_model(rng, 3);
  std::stringstream ss;
  ss << "bundle v1 0\n";
  save_model(ss, bundle.model);
  // calibrator line missing
  EXPECT_FALSE(load_bundle(ss).has_value());
}

}  // namespace
}  // namespace nevermind::ml
