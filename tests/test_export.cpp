#include "dslsim/export.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/csv.hpp"

namespace nevermind::dslsim {
namespace {

class ExportTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SimConfig cfg;
    cfg.seed = 61;
    cfg.topology.n_lines = 600;
    data_ = new SimDataset(Simulator(cfg).run());
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }
  static const SimDataset* data_;
};

const SimDataset* ExportTest::data_ = nullptr;

TEST_F(ExportTest, MeasurementsShapeAndHeader) {
  std::ostringstream os;
  export_measurements_csv(*data_, os, 10, 11);
  std::istringstream is(os.str());
  const auto rows = util::read_csv(is);
  ASSERT_EQ(rows.size(), 1U + 2U * data_->n_lines());
  EXPECT_EQ(rows[0].size(), 3U + kNumLineMetrics);
  EXPECT_EQ(rows[0][0], "week");
  EXPECT_EQ(rows[0][3], "state");
  EXPECT_EQ(rows[1][0], "10");
}

TEST_F(ExportTest, MeasurementsMissingCellsEmpty) {
  std::ostringstream os;
  export_measurements_csv(*data_, os, 20, 20);
  std::istringstream is(os.str());
  const auto rows = util::read_csv(is);
  std::size_t empty_cells = 0;
  for (std::size_t r = 1; r < rows.size(); ++r) {
    // state column (index 3) starting with "0" marks a missing record;
    // its metric cells must be empty.
    if (rows[r][3].substr(0, 2) == "0.") {
      EXPECT_TRUE(rows[r][4].empty());
      ++empty_cells;
    }
  }
  EXPECT_GT(empty_cells, 0U);
}

TEST_F(ExportTest, TicketsRoundTripCounts) {
  std::ostringstream os;
  export_tickets_csv(*data_, os);
  std::istringstream is(os.str());
  const auto rows = util::read_csv(is);
  ASSERT_EQ(rows.size(), 1U + data_->tickets().size());
  // Edge tickets carry a disposition code, billing tickets don't.
  for (std::size_t r = 1; r < rows.size(); ++r) {
    if (rows[r][3] == "billing") {
      EXPECT_TRUE(rows[r][5].empty());
    } else {
      EXPECT_FALSE(rows[r][5].empty());
    }
  }
}

TEST_F(ExportTest, NotesMatchNoteCount) {
  std::ostringstream os;
  export_notes_csv(*data_, os);
  std::istringstream is(os.str());
  const auto rows = util::read_csv(is);
  EXPECT_EQ(rows.size(), 1U + data_->notes().size());
}

TEST_F(ExportTest, ProfilesOnePerLine) {
  std::ostringstream os;
  export_profiles_csv(*data_, os);
  std::istringstream is(os.str());
  const auto rows = util::read_csv(is);
  ASSERT_EQ(rows.size(), 1U + data_->n_lines());
  EXPECT_EQ(rows[1][0], "0");
}

TEST_F(ExportTest, OutagesWellFormedDates) {
  std::ostringstream os;
  export_outages_csv(*data_, os);
  std::istringstream is(os.str());
  const auto rows = util::read_csv(is);
  EXPECT_EQ(rows.size(), 1U + data_->outages().size());
  for (std::size_t r = 1; r < rows.size(); ++r) {
    EXPECT_EQ(rows[r][2].size(), 8U);  // MM/DD/YY
  }
}

TEST_F(ExportTest, WeekRangeClamped) {
  std::ostringstream os;
  export_measurements_csv(*data_, os, -4, 0);
  std::istringstream is(os.str());
  const auto rows = util::read_csv(is);
  EXPECT_EQ(rows.size(), 1U + data_->n_lines());
}

}  // namespace
}  // namespace nevermind::dslsim
