#include "ml/roc.hpp"

#include <gtest/gtest.h>

#include "ml/metrics.hpp"
#include "util/rng.hpp"

namespace nevermind::ml {
namespace {

TEST(Roc, PerfectSeparationCurve) {
  const std::vector<double> scores = {0.9, 0.8, 0.2, 0.1};
  const std::vector<std::uint8_t> labels = {1, 1, 0, 0};
  const auto curve = roc_curve(scores, labels);
  // Passes through (0,1): all positives before any negative.
  bool corner = false;
  for (const auto& p : curve) {
    if (p.true_positive_rate == 1.0 && p.false_positive_rate == 0.0) {
      corner = true;
    }
  }
  EXPECT_TRUE(corner);
  EXPECT_NEAR(area_under(curve), 1.0, 1e-12);
}

TEST(Roc, MonotoneRates) {
  util::Rng rng(1);
  std::vector<double> scores(500);
  std::vector<std::uint8_t> labels(500);
  for (std::size_t i = 0; i < 500; ++i) {
    scores[i] = rng.normal();
    labels[i] = rng.bernoulli(0.3) ? 1 : 0;
  }
  const auto curve = roc_curve(scores, labels);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].true_positive_rate, curve[i - 1].true_positive_rate);
    EXPECT_GE(curve[i].false_positive_rate, curve[i - 1].false_positive_rate);
    EXPECT_LE(curve[i].threshold, curve[i - 1].threshold);
  }
  EXPECT_NEAR(curve.back().true_positive_rate, 1.0, 1e-12);
  EXPECT_NEAR(curve.back().false_positive_rate, 1.0, 1e-12);
}

TEST(Roc, AreaMatchesRankSumAuc) {
  util::Rng rng(2);
  std::vector<double> scores(2000);
  std::vector<std::uint8_t> labels(2000);
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const bool y = rng.bernoulli(0.2);
    scores[i] = rng.normal(y ? 0.8 : 0.0, 1.0);
    labels[i] = y ? 1 : 0;
  }
  const auto curve = roc_curve(scores, labels);
  EXPECT_NEAR(area_under(curve), auc(scores, labels), 1e-9);
}

TEST(Roc, TiedScoresGroupIntoOnePoint) {
  const std::vector<double> scores = {0.5, 0.5, 0.5};
  const std::vector<std::uint8_t> labels = {1, 0, 1};
  const auto curve = roc_curve(scores, labels);
  // Origin point + one tie-group point.
  EXPECT_EQ(curve.size(), 2U);
  EXPECT_NEAR(area_under(curve), 0.5, 1e-12);
}

TEST(PrCurve, PrecisionAtEachCutMatchesMetric) {
  util::Rng rng(3);
  std::vector<double> scores(300);
  std::vector<std::uint8_t> labels(300);
  for (std::size_t i = 0; i < 300; ++i) {
    scores[i] = rng.uniform();  // distinct with prob ~1
    labels[i] = rng.bernoulli(0.25) ? 1 : 0;
  }
  const auto curve = precision_recall_curve(scores, labels);
  for (std::size_t i = 0; i < curve.size(); i += 37) {
    EXPECT_NEAR(curve[i].precision,
                precision_at_k(scores, labels, curve[i].predicted_positive),
                1e-12);
  }
}

TEST(PrCurve, RecallMonotoneAndEndsAtOne) {
  util::Rng rng(4);
  std::vector<double> scores(400);
  std::vector<std::uint8_t> labels(400);
  for (std::size_t i = 0; i < 400; ++i) {
    scores[i] = rng.normal();
    labels[i] = rng.bernoulli(0.3) ? 1 : 0;
  }
  const auto curve = precision_recall_curve(scores, labels);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].recall, curve[i - 1].recall);
  }
  EXPECT_NEAR(curve.back().recall, 1.0, 1e-12);
}

TEST(PrCurve, NoPositivesGivesZeroRecall) {
  const std::vector<double> scores = {0.2, 0.1};
  const std::vector<std::uint8_t> labels = {0, 0};
  const auto curve = precision_recall_curve(scores, labels);
  for (const auto& p : curve) {
    EXPECT_EQ(p.recall, 0.0);
    EXPECT_EQ(p.precision, 0.0);
  }
}

}  // namespace
}  // namespace nevermind::ml
