#include "ml/calibration.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/mathx.hpp"
#include "util/rng.hpp"

namespace nevermind::ml {
namespace {

TEST(Platt, RecoversGeneratingSigmoid) {
  util::Rng rng(1);
  std::vector<double> scores;
  std::vector<std::uint8_t> labels;
  const double true_a = 1.5;
  const double true_b = -0.7;
  for (int i = 0; i < 20000; ++i) {
    const double s = rng.normal(0.0, 2.0);
    scores.push_back(s);
    labels.push_back(rng.bernoulli(util::sigmoid(true_a * s + true_b)) ? 1 : 0);
  }
  const PlattCalibrator cal = fit_platt(scores, labels);
  EXPECT_NEAR(cal.a, true_a, 0.1);
  EXPECT_NEAR(cal.b, true_b, 0.1);
}

TEST(Platt, ProbabilitiesAreCalibrated) {
  util::Rng rng(2);
  std::vector<double> scores;
  std::vector<std::uint8_t> labels;
  for (int i = 0; i < 30000; ++i) {
    const double s = rng.normal();
    scores.push_back(s);
    labels.push_back(rng.bernoulli(util::sigmoid(2.0 * s)) ? 1 : 0);
  }
  const PlattCalibrator cal = fit_platt(scores, labels);
  // Check empirical rate within a probability bucket.
  double sum_p = 0.0;
  double sum_y = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const double p = cal.probability(scores[i]);
    if (p >= 0.6 && p <= 0.8) {
      sum_p += p;
      sum_y += labels[i];
      ++n;
    }
  }
  ASSERT_GT(n, 100U);
  EXPECT_NEAR(sum_y / static_cast<double>(n), sum_p / static_cast<double>(n),
              0.05);
}

TEST(Platt, MonotoneInScore) {
  util::Rng rng(3);
  std::vector<double> scores;
  std::vector<std::uint8_t> labels;
  for (int i = 0; i < 1000; ++i) {
    const double s = rng.normal();
    scores.push_back(s);
    labels.push_back(s > 0 ? 1 : 0);
  }
  const PlattCalibrator cal = fit_platt(scores, labels);
  EXPECT_GT(cal.a, 0.0);
  EXPECT_LT(cal.probability(-2.0), cal.probability(0.0));
  EXPECT_LT(cal.probability(0.0), cal.probability(2.0));
}

TEST(Platt, SeparableDataDoesNotSaturateToExactly01) {
  // Platt's smoothed targets keep probabilities off the hard 0/1 rails
  // even when scores separate the classes perfectly.
  std::vector<double> scores;
  std::vector<std::uint8_t> labels;
  for (int i = 0; i < 200; ++i) {
    scores.push_back(i < 100 ? -1.0 : 1.0);
    labels.push_back(i < 100 ? 0 : 1);
  }
  const PlattCalibrator cal = fit_platt(scores, labels);
  EXPECT_GT(cal.probability(1.0), 0.5);
  EXPECT_LT(cal.probability(1.0), 1.0);
  EXPECT_GT(cal.probability(-1.0), 0.0);
}

TEST(Platt, EmptyInputIsIdentityDefault) {
  const PlattCalibrator cal = fit_platt({}, {});
  EXPECT_EQ(cal.a, 1.0);
  EXPECT_EQ(cal.b, 0.0);
}

TEST(Platt, ImbalancedPriorShiftsIntercept) {
  // 5% positives with uninformative scores: probability ~ base rate.
  util::Rng rng(4);
  std::vector<double> scores;
  std::vector<std::uint8_t> labels;
  for (int i = 0; i < 20000; ++i) {
    scores.push_back(rng.normal());
    labels.push_back(rng.bernoulli(0.05) ? 1 : 0);
  }
  const PlattCalibrator cal = fit_platt(scores, labels);
  EXPECT_NEAR(cal.probability(0.0), 0.05, 0.02);
}

TEST(Platt, HeavyImbalanceDoesNotSaturate) {
  // Regression test for the predictor's field scenario: ~1.5% positive
  // rate with a long right tail of scores where precision is only
  // ~40%. An undamped Newton fit used to blow the slope up and report
  // P ~ 1.0 for the tail; the backtracking fit must stay calibrated.
  util::Rng rng(11);
  std::vector<double> scores;
  std::vector<std::uint8_t> labels;
  for (int i = 0; i < 40000; ++i) {
    const bool anomalous = rng.bernoulli(0.02);
    const double s = anomalous ? rng.normal(1.5, 0.6) : rng.normal(-1.5, 0.8);
    // Even anomalous lines convert to tickets only 40% of the time.
    const bool y = anomalous ? rng.bernoulli(0.4) : rng.bernoulli(0.004);
    scores.push_back(s);
    labels.push_back(y ? 1 : 0);
  }
  const PlattCalibrator cal = fit_platt(scores, labels);
  const double p_tail = cal.probability(2.0);
  EXPECT_GT(p_tail, 0.15);
  EXPECT_LT(p_tail, 0.75);  // must not report near-certainty
}

TEST(Platt, ApplyFillsVector) {
  PlattCalibrator cal;
  cal.a = 1.0;
  cal.b = 0.0;
  const std::vector<double> scores = {-1.0, 0.0, 1.0};
  std::vector<double> probs;
  cal.apply(scores, probs);
  ASSERT_EQ(probs.size(), 3U);
  EXPECT_NEAR(probs[1], 0.5, 1e-12);
  EXPECT_LT(probs[0], probs[2]);
}

}  // namespace
}  // namespace nevermind::ml
