#include "ml/adaboost.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ml/metrics.hpp"
#include "util/rng.hpp"

namespace nevermind::ml {
namespace {

/// Noisy two-feature dataset where the positive class sits in the
/// upper-right region — learnable by an additive stump ensemble.
FeatureArena make_learnable(std::size_t n, util::Rng& rng, double flip = 0.0) {
  FeatureArena d({{"a", false}, {"b", false}});
  for (std::size_t i = 0; i < n; ++i) {
    const float a = static_cast<float>(rng.normal());
    const float b = static_cast<float>(rng.normal());
    bool positive = a + 0.8 * b > 0.7;
    if (flip > 0.0 && rng.bernoulli(flip)) positive = !positive;
    const float row[2] = {a, b};
    d.add_row(row, positive);
  }
  return d;
}

TEST(BStump, LearnsSeparableProblem) {
  util::Rng rng(1);
  const FeatureArena train = make_learnable(2000, rng);
  BStumpConfig cfg;
  cfg.iterations = 50;
  TrainDiagnostics diag;
  const BStumpModel model = train_bstump(train, cfg, &diag);
  EXPECT_FALSE(model.empty());
  EXPECT_LT(diag.final_training_error, 0.1);
}

TEST(BStump, GeneralizesToFreshData) {
  util::Rng rng(2);
  const FeatureArena train = make_learnable(3000, rng);
  const FeatureArena test = make_learnable(2000, rng);
  BStumpConfig cfg;
  cfg.iterations = 60;
  const BStumpModel model = train_bstump(train, cfg);
  const auto scores = model.score_dataset(test);
  EXPECT_GT(auc(scores, test.labels()), 0.95);
}

TEST(BStump, ZBoundDecreasesTrainingError) {
  util::Rng rng(3);
  const FeatureArena train = make_learnable(1500, rng);
  BStumpConfig a;
  a.iterations = 5;
  BStumpConfig b;
  b.iterations = 80;
  TrainDiagnostics da;
  TrainDiagnostics db;
  (void)train_bstump(train, a, &da);
  (void)train_bstump(train, b, &db);
  EXPECT_LE(db.final_training_error, da.final_training_error);
}

TEST(BStump, EveryRoundZBelowOne) {
  util::Rng rng(4);
  const FeatureArena train = make_learnable(1000, rng);
  BStumpConfig cfg;
  cfg.iterations = 30;
  TrainDiagnostics diag;
  (void)train_bstump(train, cfg, &diag);
  for (double z : diag.z_per_round) EXPECT_LE(z, 1.0);
}

TEST(BStump, ScoreDatasetMatchesScoreRow) {
  util::Rng rng(5);
  const FeatureArena train = make_learnable(500, rng);
  BStumpConfig cfg;
  cfg.iterations = 20;
  const BStumpModel model = train_bstump(train, cfg);
  const auto scores = model.score_dataset(train);
  for (std::size_t r = 0; r < train.n_rows(); r += 37) {
    EXPECT_NEAR(scores[r], model.score_row(train, r), 1e-9);
  }
}

TEST(BStump, ScoreFeaturesMatchesScoreRow) {
  util::Rng rng(6);
  const FeatureArena train = make_learnable(300, rng);
  BStumpConfig cfg;
  cfg.iterations = 15;
  const BStumpModel model = train_bstump(train, cfg);
  std::vector<float> row(train.n_cols());
  for (std::size_t r = 0; r < train.n_rows(); r += 53) {
    for (std::size_t j = 0; j < row.size(); ++j) row[j] = train.at(r, j);
    EXPECT_NEAR(model.score_features(row), model.score_row(train, r), 1e-9);
  }
}

TEST(BStump, RobustToLabelNoise) {
  // The paper picks the stump-linear model because ticket labels are
  // noisy; AUC should degrade gracefully, not collapse.
  util::Rng rng(7);
  const FeatureArena train = make_learnable(4000, rng, /*flip=*/0.2);
  const FeatureArena test = make_learnable(2000, rng, /*flip=*/0.0);
  BStumpConfig cfg;
  cfg.iterations = 80;
  const BStumpModel model = train_bstump(train, cfg);
  const auto scores = model.score_dataset(test);
  EXPECT_GT(auc(scores, test.labels()), 0.9);
}

TEST(BStump, EmptyDatasetYieldsEmptyModel) {
  const FeatureArena d({{"x", false}});
  BStumpConfig cfg;
  const BStumpModel model = train_bstump(d, cfg);
  EXPECT_TRUE(model.empty());
}

TEST(BStump, InitialWeightsRespected) {
  // Weighting the second half of the data to zero should make the
  // model fit only the first half's (inverted) rule.
  FeatureArena d({{"x", false}});
  for (int i = 0; i < 100; ++i) {
    const float x = static_cast<float>(i % 10);
    // First half: positive iff x >= 5. Second half: inverted.
    const bool positive = i < 50 ? x >= 5.0F : x < 5.0F;
    d.add_row({&x, 1}, positive);
  }
  std::vector<double> w(100, 0.0);
  for (int i = 0; i < 50; ++i) w[static_cast<std::size_t>(i)] = 1.0;
  BStumpConfig cfg;
  cfg.iterations = 10;
  const BStumpModel model = train_bstump(d, cfg, nullptr, w);
  const float high = 9.0F;
  const float low = 0.0F;
  EXPECT_GT(model.score_features({&high, 1}), 0.0);
  EXPECT_LT(model.score_features({&low, 1}), 0.0);
}

TEST(BStump, WeightSizeMismatchThrows) {
  util::Rng rng(8);
  const FeatureArena d = make_learnable(50, rng);
  const std::vector<double> w(10, 1.0);
  BStumpConfig cfg;
  EXPECT_THROW((void)train_bstump(d, cfg, nullptr, w), std::invalid_argument);
}

TEST(BStump, AllZeroWeightsThrow) {
  util::Rng rng(9);
  const FeatureArena d = make_learnable(50, rng);
  const std::vector<double> w(50, 0.0);
  BStumpConfig cfg;
  EXPECT_THROW((void)train_bstump(d, cfg, nullptr, w), std::invalid_argument);
}

TEST(BStump, SingleFeatureTrainingIgnoresOtherColumns) {
  util::Rng rng(10);
  FeatureArena d({{"noise", false}, {"signal", false}});
  for (int i = 0; i < 500; ++i) {
    const bool positive = i % 2 == 0;
    const float row[2] = {static_cast<float>(rng.normal()),
                          positive ? 1.0F : -1.0F};
    d.add_row(row, positive);
  }
  BStumpConfig cfg;
  cfg.iterations = 10;
  const BStumpModel model = train_bstump_single_feature(d, 0, cfg);
  for (const auto& stump : model.stumps()) EXPECT_EQ(stump.feature, 0U);
}

TEST(BStump, SingleFeatureOutOfRangeThrows) {
  util::Rng rng(11);
  const FeatureArena d = make_learnable(20, rng);
  BStumpConfig cfg;
  EXPECT_THROW((void)train_bstump_single_feature(d, 5, cfg),
               std::out_of_range);
}

TEST(BStump, FeatureInfluenceCountsUsedFeatures) {
  util::Rng rng(12);
  const FeatureArena train = make_learnable(1000, rng);
  BStumpConfig cfg;
  cfg.iterations = 30;
  const BStumpModel model = train_bstump(train, cfg);
  const auto influence = model.feature_influence(2);
  EXPECT_GT(influence[0] + influence[1], 0.0);
}

TEST(BStump, StopsEarlyOnPureNoise) {
  // With labels independent of the features, no weak learner clears
  // the z_stop bar for long: training halts before the iteration cap.
  util::Rng rng(40);
  FeatureArena d({{"x", false}});
  for (int i = 0; i < 3000; ++i) {
    const float x = static_cast<float>(rng.normal());
    d.add_row({&x, 1}, rng.bernoulli(0.5));
  }
  BStumpConfig cfg;
  cfg.iterations = 500;
  cfg.z_stop = 0.995;
  const BStumpModel model = train_bstump(d, cfg);
  EXPECT_LT(model.stumps().size(), 500U);
}

TEST(BStump, SmoothingBoundsLeafScores) {
  // Separable data with strong smoothing: confidence-rated scores stay
  // modest instead of diverging.
  FeatureArena d({{"x", false}});
  for (int i = 0; i < 200; ++i) {
    const float x = static_cast<float>(i);
    d.add_row({&x, 1}, i >= 100);
  }
  BStumpConfig cfg;
  cfg.iterations = 1;
  cfg.smoothing = 0.25;
  const BStumpModel model = train_bstump(d, cfg);
  ASSERT_EQ(model.stumps().size(), 1U);
  EXPECT_LT(std::fabs(model.stumps()[0].score_pass), 1.0);
}

TEST(BStump, MoreIterationsDoNotHurtRanking) {
  util::Rng rng(13);
  const FeatureArena train = make_learnable(2000, rng, 0.1);
  const FeatureArena test = make_learnable(1500, rng);
  BStumpConfig small;
  small.iterations = 10;
  BStumpConfig large;
  large.iterations = 150;
  const auto auc_small =
      auc(train_bstump(train, small).score_dataset(test), test.labels());
  const auto auc_large =
      auc(train_bstump(train, large).score_dataset(test), test.labels());
  EXPECT_GE(auc_large, auc_small - 0.02);
}

/// Parameterized sweep: learning works across class imbalances like the
/// ticket predictor's (~1% positive).
class ImbalanceSweep : public ::testing::TestWithParam<double> {};

TEST_P(ImbalanceSweep, RankingBeatsChance) {
  const double positive_rate = GetParam();
  util::Rng rng(99);
  FeatureArena train({{"x", false}});
  FeatureArena test({{"x", false}});
  for (int i = 0; i < 20000; ++i) {
    const bool positive = rng.bernoulli(positive_rate);
    const float x =
        static_cast<float>(rng.normal() + (positive ? 1.2 : 0.0));
    (i % 2 == 0 ? train : test).add_row({&x, 1}, positive);
  }
  BStumpConfig cfg;
  cfg.iterations = 25;
  const BStumpModel model = train_bstump(train, cfg);
  const auto scores = model.score_dataset(test);
  EXPECT_GT(auc(scores, test.labels()), 0.75);
}

INSTANTIATE_TEST_SUITE_P(PositiveRates, ImbalanceSweep,
                         ::testing::Values(0.5, 0.1, 0.02, 0.01));

}  // namespace
}  // namespace nevermind::ml
