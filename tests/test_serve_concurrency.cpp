// Concurrency smoke for the serving stack, built to run under
// -DNEVERMIND_SANITIZE=thread (ctest -L tsan): writer threads ingesting
// measurements and tickets, reader threads issuing micro-batched point
// queries, and a publisher thread hot-swapping the model — all against
// one store and registry, with full data-race coverage from TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/ticket_predictor.hpp"
#include "serve/line_state_store.hpp"
#include "serve/model_registry.hpp"
#include "serve/replay.hpp"
#include "serve/scoring_service.hpp"
#include "util/rng.hpp"

namespace nevermind::serve {
namespace {

TEST(ServeConcurrency, ConcurrentIngestQueryAndHotSwap) {
  dslsim::SimConfig cfg;
  cfg.seed = 77;
  cfg.topology.n_lines = 400;
  const dslsim::SimDataset data = dslsim::Simulator(cfg).run();

  core::PredictorConfig pcfg;
  pcfg.top_n = 10;
  pcfg.boost_iterations = 8;
  pcfg.use_derived_features = false;
  core::TicketPredictor predictor(pcfg);
  predictor.train(data, 20, 30);

  LineStateStore store(8);
  ModelRegistry registry;
  registry.publish(predictor.kernel());
  ScoringService service(store, registry);

  std::atomic<bool> feeding{true};
  std::atomic<std::uint64_t> answered{0};

  // Writer: replays the whole year, week by week.
  std::thread writer([&] {
    ReplayDriver replay(data, store);
    while (!replay.exhausted()) replay.feed_next_week();
    feeding.store(false, std::memory_order_release);
  });

  // Publisher: hot-swaps the model while queries are in flight.
  std::thread publisher([&] {
    while (feeding.load(std::memory_order_acquire)) {
      registry.publish(predictor.kernel());
      std::this_thread::yield();
    }
  });

  // Readers: point queries through the micro-batcher against whatever
  // state and model version are current.
  std::vector<std::thread> readers;
  for (std::size_t r = 0; r < 4; ++r) {
    readers.emplace_back([&, r] {
      util::Rng rng = util::Rng::stream(cfg.seed, 100 + r);
      for (int q = 0; q < 200; ++q) {
        const auto line = static_cast<dslsim::LineId>(
            rng.uniform_index(data.n_lines()));
        const ServeScore s = service.score(line);
        EXPECT_EQ(s.line, line);
        if (s.valid) {
          EXPECT_GE(s.probability, 0.0);
          EXPECT_LE(s.probability, 1.0);
          EXPECT_GE(s.model_version, 1U);
        }
        answered.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (auto& t : readers) t.join();
  writer.join();
  publisher.join();

  EXPECT_EQ(answered.load(), 800U);
  EXPECT_EQ(store.measurements_ingested(),
            static_cast<std::uint64_t>(data.n_lines()) *
                static_cast<std::uint64_t>(data.n_weeks()));
  const auto stats = service.batch_stats();
  EXPECT_EQ(stats.requests, 800U);
  EXPECT_GE(registry.swap_count(), 1U);

  // After the dust settles the store serves the final week everywhere.
  const auto top = service.top_n(5);
  ASSERT_EQ(top.size(), 5U);
  for (const auto& s : top) {
    EXPECT_TRUE(s.valid);
    EXPECT_EQ(s.week, data.n_weeks() - 1);
  }
}

TEST(ServeConcurrency, ParallelReplayMatchesSerialReplay) {
  dslsim::SimConfig cfg;
  cfg.seed = 78;
  cfg.topology.n_lines = 300;
  const dslsim::SimDataset data = dslsim::Simulator(cfg).run();

  const auto state_of = [&](std::size_t shards, std::size_t threads) {
    const exec::ExecContext exec =
        threads > 1 ? exec::ExecContext(threads) : exec::ExecContext();
    LineStateStore store(shards);
    ReplayDriver replay(data, store);
    replay.feed_through(30, exec);
    std::vector<LineSnapshot> snaps;
    for (const auto line : store.line_ids()) {
      snaps.push_back(*store.snapshot(line));
    }
    return snaps;
  };

  const auto serial = state_of(1, 1);
  const auto parallel = state_of(4, 8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].week, parallel[i].week);
    EXPECT_EQ(serial[i].window.tests_seen, parallel[i].window.tests_seen);
    EXPECT_EQ(serial[i].window.tests_off, parallel[i].window.tests_off);
    for (std::size_t m = 0; m < dslsim::kNumLineMetrics; ++m) {
      EXPECT_EQ(serial[i].window.history[m].count(),
                parallel[i].window.history[m].count());
      EXPECT_EQ(serial[i].window.history[m].mean(),
                parallel[i].window.history[m].mean());
    }
  }
}

}  // namespace
}  // namespace nevermind::serve
