// Thread contract for the spatial layer: analyze_week fans the
// per-line window replay out over an ExecContext, and the whole report
// — evidence, verdicts, group findings — must be bit-identical at
// every thread count (grain-based chunking, no shared mutable state).
// Runs under -L tsan in the thread-sanitizer CI job.
#include "spatial/aggregator.hpp"

#include <gtest/gtest.h>

#include "dslsim/simulator.hpp"
#include "exec/exec.hpp"
#include "serve/line_state_store.hpp"
#include "serve/replay.hpp"
#include "util/calendar.hpp"

namespace nevermind::spatial {
namespace {

void expect_identical(const SpatialReport& a, const SpatialReport& b) {
  ASSERT_EQ(a.week, b.week);
  ASSERT_EQ(a.lines.size(), b.lines.size());
  for (std::size_t u = 0; u < a.lines.size(); ++u) {
    ASSERT_EQ(a.lines[u].anomaly, b.lines[u].anomaly) << "line " << u;
    ASSERT_EQ(a.lines[u].evaluated, b.lines[u].evaluated) << "line " << u;
    ASSERT_EQ(a.lines[u].anomalous, b.lines[u].anomalous) << "line " << u;
    ASSERT_EQ(a.lines[u].missing, b.lines[u].missing) << "line " << u;
    ASSERT_EQ(a.verdicts[u], b.verdicts[u]) << "line " << u;
    ASSERT_EQ(a.line_confidence[u], b.line_confidence[u]) << "line " << u;
  }
  ASSERT_EQ(a.baseline_rate, b.baseline_rate);
  ASSERT_EQ(a.network_findings.size(), b.network_findings.size());
  for (std::size_t i = 0; i < a.network_findings.size(); ++i) {
    ASSERT_EQ(a.network_findings[i].scope, b.network_findings[i].scope);
    ASSERT_EQ(a.network_findings[i].id, b.network_findings[i].id);
    ASSERT_EQ(a.network_findings[i].zscore, b.network_findings[i].zscore);
    ASSERT_EQ(a.network_findings[i].confidence,
              b.network_findings[i].confidence);
  }
}

TEST(SpatialConcurrency, AnalyzeWeekIdenticalAtThreads1And8) {
  dslsim::SimConfig cfg;
  cfg.seed = 77;
  cfg.topology.n_lines = 1000;
  const util::Day day = util::saturday_of_week(30);
  cfg.scripted_infra.push_back(
      {dslsim::InfraEventKind::kDslamOutage, 1, day - 1, day + 2, 1.4F});
  cfg.infra.crossbox_events_per_crossbox_year = 0.5;
  const dslsim::SimDataset data = dslsim::Simulator(cfg).run();

  const SpatialAggregator aggregator(data.topology());
  const auto serial =
      aggregator.analyze_week(data, 30, {}, exec::ExecContext());
  const auto threaded =
      aggregator.analyze_week(data, 30, {}, exec::ExecContext(8));
  expect_identical(serial, threaded);
}

TEST(SpatialConcurrency, StoreAnalysisIdenticalAtThreads1And8) {
  dslsim::SimConfig cfg;
  cfg.seed = 78;
  cfg.topology.n_lines = 600;
  const dslsim::SimDataset data = dslsim::Simulator(cfg).run();

  serve::LineStateStore store(8);
  serve::ReplayDriver replay(data, store);
  replay.feed_through(25);

  const SpatialAggregator aggregator(data.topology());
  const auto serial =
      aggregator.analyze_store(store, {}, exec::ExecContext());
  const auto threaded =
      aggregator.analyze_store(store, {}, exec::ExecContext(8));
  expect_identical(serial, threaded);
}

}  // namespace
}  // namespace nevermind::spatial
