// Controlled-experiment support: scripted faults let a test pin exactly
// which line breaks, how, and when — then assert the whole pipeline
// (measurement, prediction signal, dispatch blame) reacts.
#include <gtest/gtest.h>

#include "dslsim/simulator.hpp"
#include "ml/dataset.hpp"
#include "util/stats.hpp"

namespace nevermind::dslsim {
namespace {

SimConfig quiet_config() {
  SimConfig cfg;
  cfg.seed = 101;
  cfg.topology.n_lines = 400;
  cfg.weekly_fault_rate = 0.0;  // only scripted faults
  cfg.outage_rate_per_dslam_year = 0.0;
  cfg.billing_tickets_per_line_year = 0.0;
  return cfg;
}

DispositionId find_code(const FaultCatalog& cat, const char* code) {
  for (DispositionId i = 0; i < cat.size(); ++i) {
    if (cat.signature(i).code == code) return i;
  }
  return 0;
}

TEST(ScriptedFaults, EpisodeAppearsWithExactParameters) {
  SimConfig cfg = quiet_config();
  cfg.scripted_faults.push_back({.line = 7, .disposition = 0,
                                 .onset = util::day_from_date(6, 1),
                                 .severity = 2.0F});
  const SimDataset data = Simulator(cfg).run();
  ASSERT_GE(data.episodes().size(), 1U);
  bool found = false;
  for (const auto& e : data.episodes()) {
    if (e.line == 7) {
      EXPECT_EQ(e.onset, util::day_from_date(6, 1));
      EXPECT_EQ(e.severity, 2.0F);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ScriptedFaults, QuietWorldHasNoOtherEpisodes) {
  SimConfig cfg = quiet_config();
  cfg.scripted_faults.push_back({.line = 3, .disposition = 1,
                                 .onset = 100, .severity = 1.0F});
  const SimDataset data = Simulator(cfg).run();
  EXPECT_EQ(data.episodes().size(), 1U);
  for (const auto& t : data.tickets()) {
    EXPECT_EQ(t.line, 3U);
  }
}

TEST(ScriptedFaults, SevereWireFaultVisibleInMeasurements) {
  SimConfig cfg = quiet_config();
  // F1-WET: degrading attenuation/noise/CV fault.
  FaultCatalog reference(cfg.seed, cfg.minor_variants_per_location);
  const DispositionId wet = find_code(reference, "F1-WET");
  const util::Day onset = util::day_from_date(5, 1);
  cfg.scripted_faults.push_back(
      {.line = 11, .disposition = wet, .onset = onset, .severity = 2.0F});
  cfg.notice_scale = 0.0;  // never reported: fault persists
  const SimDataset data = Simulator(cfg).run();

  // Compare CV counts well before vs well after onset (past the ramp).
  const int before_week = util::test_week_of(onset) - 6;
  const int after_week = util::test_week_of(onset) + 6;
  const auto cv_index = metric_index(LineMetric::kDnCvCnt1);
  const auto& before = data.measurement(before_week, 11);
  const auto& after = data.measurement(after_week, 11);
  if (record_present(before) && record_present(after)) {
    EXPECT_GT(after[cv_index], before[cv_index] + 30.0F);
  }
}

TEST(ScriptedFaults, ReportedFaultBlamedAtItsLocation) {
  SimConfig cfg = quiet_config();
  FaultCatalog reference(cfg.seed, cfg.minor_variants_per_location);
  const DispositionId cut = find_code(reference, "F1-CUT");
  cfg.scripted_faults.push_back(
      {.line = 5, .disposition = cut, .onset = 120, .severity = 2.0F});
  cfg.label_noise_any = 0.0;
  cfg.label_noise_same_location = 0.0;
  cfg.notice_scale = 5.0;  // noticed almost immediately
  const SimDataset data = Simulator(cfg).run();
  ASSERT_FALSE(data.notes().empty());
  EXPECT_EQ(data.notes().front().disposition, cut);
  EXPECT_EQ(data.notes().front().location, MajorLocation::kF1);
}

TEST(ScriptedFaults, OutOfRangeScriptsIgnored) {
  SimConfig cfg = quiet_config();
  cfg.scripted_faults.push_back(
      {.line = 99999, .disposition = 0, .onset = 10, .severity = 1.0F});
  cfg.scripted_faults.push_back(
      {.line = 0, .disposition = 60000, .onset = 10, .severity = 1.0F});
  const SimDataset data = Simulator(cfg).run();
  EXPECT_TRUE(data.episodes().empty());
}

}  // namespace
}  // namespace nevermind::dslsim
