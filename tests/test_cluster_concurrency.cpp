// Concurrency smoke for the cluster layer, built to run under
// -DNEVERMIND_SANITIZE=thread (ctest -L tsan): three live ClusterNodes
// (beacon + server threads each), a fleet of driver threads pushing
// replicated ingest through their own ShardRouters, a publisher thread
// hot-pushing the model over the wire, and a hard kill in the middle of
// it all — the races under test are the node's map/membership mutex,
// the registry's RCU swap against in-flight scoring, and the routers'
// independent failover decisions.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/node.hpp"
#include "cluster/router.hpp"
#include "cluster/types.hpp"
#include "core/ticket_predictor.hpp"
#include "dslsim/simulator.hpp"

namespace nevermind::cluster {
namespace {

using namespace std::chrono_literals;

TEST(ClusterConcurrency, IngestHeartbeatLossAndModelPushRaceSafely) {
  dslsim::SimConfig cfg;
  cfg.seed = 77;
  cfg.topology.n_lines = 200;
  const dslsim::SimDataset data = dslsim::Simulator(cfg).run();

  core::PredictorConfig pcfg;
  pcfg.top_n = 10;
  pcfg.boost_iterations = 8;
  pcfg.use_derived_features = false;
  core::TicketPredictor predictor(pcfg);
  predictor.train(data, 20, 30);

  ClusterNodeConfig node_cfg;
  node_cfg.heartbeat_interval = 20ms;
  node_cfg.membership.suspect_after = 80ms;
  node_cfg.membership.dead_after = 200ms;
  std::vector<std::unique_ptr<ClusterNode>> nodes;
  std::vector<Endpoint> endpoints;
  for (NodeId id = 0; id < 3; ++id) {
    ClusterNodeConfig c = node_cfg;
    c.node_id = id;
    nodes.push_back(std::make_unique<ClusterNode>(c));
    std::string error;
    ASSERT_TRUE(nodes.back()->start(&error)) << error;
    endpoints.push_back({id, "127.0.0.1", nodes.back()->port(), true});
  }
  const ShardMap map = make_shard_map(endpoints, 6, 2);

  {
    ShardRouter boot(map, {});
    ASSERT_TRUE(boot.connect_all()) << boot.last_error();
    ASSERT_TRUE(boot.push_model(predictor.kernel()));
    ASSERT_TRUE(boot.broadcast_map());
  }

  constexpr std::size_t kDrivers = 4;
  constexpr int kWeeks = 8;
  std::atomic<bool> drivers_done{false};
  std::atomic<bool> killed{false};
  std::atomic<std::uint64_t> ingested{0};
  const std::uint64_t kill_at =
      static_cast<std::uint64_t>(data.n_lines()) * kWeeks / 2;

  // Publisher: hot-pushes the model over the wire while ingest and the
  // kill are in flight. Pushes to the dead node fail; that is the point.
  std::thread publisher([&] {
    ShardRouter router(map, {});
    while (!drivers_done.load(std::memory_order_acquire)) {
      (void)router.push_model(predictor.kernel());
      std::this_thread::sleep_for(5ms);
    }
  });

  // Killer: hard-kills node 2 once half the stream is in.
  std::thread killer([&] {
    while (ingested.load(std::memory_order_relaxed) < kill_at &&
           !drivers_done.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(1ms);
    }
    nodes[2]->kill();
    killed.store(true, std::memory_order_release);
  });

  std::vector<std::thread> drivers;
  for (std::size_t d = 0; d < kDrivers; ++d) {
    drivers.emplace_back([&, d] {
      ShardRouter router(map, {});  // one router per thread by design
      for (int week = 0; week < kWeeks; ++week) {
        for (std::size_t l = d; l < data.n_lines(); l += kDrivers) {
          serve::LineMeasurement m;
          m.line = static_cast<dslsim::LineId>(l);
          m.week = week;
          m.profile = data.plant(m.line).profile;
          m.metrics = data.measurement(week, m.line);
          // Replication 2 guarantees a live replica through the kill.
          ASSERT_TRUE(router.ingest(m)) << router.last_error();
          ingested.fetch_add(1, std::memory_order_relaxed);
        }
      }
      EXPECT_EQ(router.stats().write_failures, 0U);
    });
  }
  for (auto& t : drivers) t.join();
  drivers_done.store(true, std::memory_order_release);
  killer.join();
  publisher.join();
  ASSERT_TRUE(killed.load());

  // The survivors' own detectors must have rebuilt the map.
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  std::uint64_t epoch0 = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    epoch0 = nodes[0]->map_snapshot().epoch;
    if (epoch0 > map.epoch) break;
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_GT(epoch0, map.epoch) << "node 0 never detected the kill";

  // Every line is still served (possibly by a failed-over replica) and
  // the cluster-wide ranking still merges.
  ShardRouter verify(nodes[0]->map_snapshot(), {});
  for (std::size_t l = 0; l < data.n_lines(); ++l) {
    const auto s = verify.score(static_cast<dslsim::LineId>(l));
    ASSERT_TRUE(s.has_value()) << verify.last_error();
    EXPECT_TRUE(s->valid);
    EXPECT_EQ(s->week, kWeeks - 1);
  }
  const auto ranked = verify.top_n(10);
  ASSERT_TRUE(ranked.has_value()) << verify.last_error();
  EXPECT_EQ(ranked->size(), 10U);

  nodes[0]->stop();
  nodes[1]->stop();
}

}  // namespace
}  // namespace nevermind::cluster
