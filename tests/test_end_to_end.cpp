// Integration test: the full NEVERMIND pipeline — simulate a year,
// train both components through the facade, run proactive weeks, and
// check the operational invariants the paper's deployment would rely
// on.
#include <gtest/gtest.h>

#include "core/nevermind.hpp"
#include "util/calendar.hpp"

namespace nevermind::core {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dslsim::SimConfig cfg;
    cfg.seed = 51;
    cfg.topology.n_lines = 6000;
    data_ = new dslsim::SimDataset(dslsim::Simulator(cfg).run());

    NevermindConfig nm_cfg;
    nm_cfg.predictor.top_n = 60;
    nm_cfg.predictor.boost_iterations = 100;
    nm_cfg.locator.min_occurrences = 8;
    nm_cfg.locator.boost_iterations = 40;
    nm_cfg.atds.weekly_capacity = 60;
    system_ = new Nevermind(nm_cfg);
    system_->train(*data_, 30, 38, 20, 36);
  }
  static void TearDownTestSuite() {
    delete system_;
    delete data_;
    system_ = nullptr;
    data_ = nullptr;
  }
  static const dslsim::SimDataset* data_;
  static Nevermind* system_;
};

const dslsim::SimDataset* EndToEndTest::data_ = nullptr;
Nevermind* EndToEndTest::system_ = nullptr;

TEST_F(EndToEndTest, BothComponentsTrain) {
  EXPECT_TRUE(system_->predictor().trained());
  EXPECT_TRUE(system_->locator().trained());
}

TEST_F(EndToEndTest, WeeklyCycleProducesRankedPredictionsAndReport) {
  const WeeklyCycle cycle = system_->run_week(*data_, 43);
  EXPECT_EQ(cycle.week, 43);
  EXPECT_EQ(cycle.predictions.size(), data_->n_lines());
  EXPECT_EQ(cycle.atds.submitted, 60U);
  EXPECT_EQ(cycle.atds.with_live_fault + cycle.atds.clean_dispatches,
            cycle.atds.submitted);
}

TEST_F(EndToEndTest, PrecisionInPaperBallpark) {
  const WeeklyCycle cycle = system_->run_week(*data_, 43);
  const double precision =
      static_cast<double>(cycle.atds.would_ticket) /
      static_cast<double>(cycle.atds.submitted);
  // The paper reports ~40% at the budget; demand at least half that at
  // this small simulation scale.
  EXPECT_GT(precision, 0.2);
}

TEST_F(EndToEndTest, MajorityOfDispatchesFindLiveFaults) {
  const WeeklyCycle cycle = system_->run_week(*data_, 43);
  EXPECT_GT(cycle.atds.with_live_fault, cycle.atds.submitted / 2);
}

TEST_F(EndToEndTest, ProactiveValueAcrossWeeks) {
  std::size_t prevented = 0;
  std::size_t silent = 0;
  for (int week = 43; week <= 45; ++week) {
    const WeeklyCycle cycle = system_->run_week(*data_, week);
    prevented += cycle.atds.tickets_prevented;
    silent += cycle.atds.silent_fixed;
  }
  // The whole point of NEVERMIND: a nontrivial number of tickets never
  // happen, and silent problems get fixed too.
  EXPECT_GT(prevented, 10U);
  EXPECT_GT(silent, 10U);
}

TEST_F(EndToEndTest, LocatorSavesTimeOverall) {
  double locator_minutes = 0.0;
  double experience_minutes = 0.0;
  for (int week = 43; week <= 45; ++week) {
    const WeeklyCycle cycle = system_->run_week(*data_, week);
    locator_minutes += cycle.atds.locator_minutes;
    experience_minutes += cycle.atds.experience_minutes;
  }
  EXPECT_LT(locator_minutes, experience_minutes);
}

TEST_F(EndToEndTest, RepeatedRunsAreDeterministic) {
  const WeeklyCycle a = system_->run_week(*data_, 44);
  const WeeklyCycle b = system_->run_week(*data_, 44);
  ASSERT_EQ(a.predictions.size(), b.predictions.size());
  EXPECT_EQ(a.predictions.front().line, b.predictions.front().line);
  EXPECT_EQ(a.atds.tickets_prevented, b.atds.tickets_prevented);
  EXPECT_EQ(a.atds.locator_minutes, b.atds.locator_minutes);
}

}  // namespace
}  // namespace nevermind::core
