// Property tests for the SIMD kernel family behind the binned stump
// search: on random matrices (categorical/continuous mix, missing
// values, dyadic and irrational weights, row subsets) the scalar and
// AVX2 arms must return BIT-identical results — z, scores, and
// threshold compared through bit_cast, not tolerances — because both
// implement the same canonical lane-ordered sum (see ml/simd.hpp).
// Also covers the dispatch surface: mode parsing, the process-wide
// override (--simd scalar forced on an AVX2 host), and the graceful
// fallback when AVX2 is requested but unavailable.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "ml/binning.hpp"
#include "ml/dataset.hpp"
#include "ml/simd.hpp"

namespace nevermind::ml {
namespace {

/// Restores the dispatch preference even when an assertion bails out.
struct ModeGuard {
  ~ModeGuard() { simd::set_mode(simd::Mode::kAuto); }
};

struct RandomDataset {
  FeatureArena arena;
  std::vector<std::uint8_t> labels;
};

/// A small adversarial matrix: continuous columns with heavy ties (so
/// bin edges land between repeated values), categorical columns, ~10%
/// missing cells, one all-missing column, one constant column.
RandomDataset make_dataset(std::uint64_t seed, std::size_t n_rows) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> uf(-2.0F, 2.0F);
  std::vector<ColumnInfo> cols(8);
  cols[2].categorical = true;
  cols[5].categorical = true;
  RandomDataset out;
  out.arena = FeatureArena(cols, n_rows);
  std::vector<float> row(cols.size());
  for (std::size_t r = 0; r < n_rows; ++r) {
    for (std::size_t j = 0; j < cols.size(); ++j) {
      const auto roll = rng() % 10;
      if (j == 3) {
        row[j] = kMissing;  // all-missing column
      } else if (j == 6) {
        row[j] = 1.5F;  // constant column
      } else if (roll == 0) {
        row[j] = kMissing;
      } else if (cols[j].categorical) {
        row[j] = static_cast<float>(rng() % 5);
      } else if (roll < 4) {
        // Heavy ties: a handful of repeated values.
        row[j] = static_cast<float>(rng() % 4) * 0.25F;
      } else {
        row[j] = uf(rng);
      }
    }
    out.arena.add_row(row, (rng() % 3) == 0);
  }
  out.labels.assign(out.arena.labels().begin(), out.arena.labels().end());
  return out;
}

std::vector<double> dyadic_weights(std::uint64_t seed, std::size_t n) {
  std::mt19937_64 rng(seed);
  std::vector<double> w(n);
  for (auto& x : w) {
    x = static_cast<double>(1 + rng() % 1024) / 1024.0;  // exact dyadics
  }
  return w;
}

std::vector<double> irrational_weights(std::uint64_t seed, std::size_t n) {
  std::mt19937_64 rng(seed);
  std::vector<double> w(n);
  for (auto& x : w) {
    // Square roots of non-squares: every add rounds, so any reordering
    // between the arms would show up bitwise.
    x = std::sqrt(static_cast<double>(2 + rng() % 97));
  }
  return w;
}

/// Bitwise equality of two search results; EXPECTs with context.
void expect_bit_identical(const BinnedStumpResult& a,
                          const BinnedStumpResult& b) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.z), std::bit_cast<std::uint64_t>(b.z));
  EXPECT_EQ(a.split_bin, b.split_bin);
  EXPECT_EQ(a.stump.feature, b.stump.feature);
  EXPECT_EQ(a.stump.categorical, b.stump.categorical);
  EXPECT_EQ(std::bit_cast<std::uint32_t>(a.stump.threshold),
            std::bit_cast<std::uint32_t>(b.stump.threshold));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.stump.score_pass),
            std::bit_cast<std::uint64_t>(b.stump.score_pass));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.stump.score_fail),
            std::bit_cast<std::uint64_t>(b.stump.score_fail));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.stump.score_missing),
            std::bit_cast<std::uint64_t>(b.stump.score_missing));
}

TEST(SimdDispatchTest, ParseModeAcceptsTheThreeNamesOnly) {
  EXPECT_EQ(simd::parse_mode("auto"), simd::Mode::kAuto);
  EXPECT_EQ(simd::parse_mode("scalar"), simd::Mode::kScalar);
  EXPECT_EQ(simd::parse_mode("avx2"), simd::Mode::kAvx2);
  EXPECT_FALSE(simd::parse_mode("").has_value());
  EXPECT_FALSE(simd::parse_mode("AVX2").has_value());
  EXPECT_FALSE(simd::parse_mode("sse").has_value());
}

TEST(SimdDispatchTest, ScalarOverrideWinsEvenOnAnAvx2Host) {
  ModeGuard guard;
  simd::set_mode(simd::Mode::kScalar);
  EXPECT_EQ(simd::mode(), simd::Mode::kScalar);
  EXPECT_EQ(simd::active_kernel(), simd::Kernel::kScalar);
}

TEST(SimdDispatchTest, Avx2RequestFallsBackWhenUnsupported) {
  ModeGuard guard;
  simd::set_mode(simd::Mode::kAvx2);
  // Resolution never promises an arm the host cannot run.
  const simd::Kernel k = simd::active_kernel();
  if (simd::cpu_supports_avx2()) {
    EXPECT_EQ(k, simd::Kernel::kAvx2);
  } else {
    EXPECT_EQ(k, simd::Kernel::kScalar);
  }
}

TEST(SimdDispatchTest, AutoResolvesToTheProbedArm) {
  ModeGuard guard;
  simd::set_mode(simd::Mode::kAuto);
  EXPECT_EQ(simd::active_kernel(), simd::cpu_supports_avx2()
                                       ? simd::Kernel::kAvx2
                                       : simd::Kernel::kScalar);
}

class SimdKernelIdentityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!simd::cpu_supports_avx2()) {
      GTEST_SKIP() << "host lacks AVX2+FMA (or build disabled the arm); "
                      "scalar is the only arm to compare";
    }
  }
  ModeGuard guard_;
};

TEST_F(SimdKernelIdentityTest, DirectKernelCallsMatchBitForBit) {
  for (const std::uint64_t seed : {11u, 22u, 33u, 44u}) {
    const RandomDataset data = make_dataset(seed, 257);  // ragged tail
    const BinnedColumns bins(data.arena, {});
    for (const bool dyadic : {true, false}) {
      const std::vector<double> weights =
          dyadic ? dyadic_weights(seed, data.arena.n_rows())
                 : irrational_weights(seed, data.arena.n_rows());
      simd::ScanArgs args;
      args.bins = &bins;
      args.labels = data.labels;
      args.weights = weights;
      args.smoothing = 1e-5;
      SCOPED_TRACE(testing::Message() << "seed=" << seed
                                      << " dyadic=" << dyadic);
      // No precomputed wpn: the AVX2 arm builds its own stream.
      const BinnedStumpResult scalar =
          simd::scan_features(simd::Kernel::kScalar, args, 0, bins.n_cols());
      const BinnedStumpResult avx2 =
          simd::scan_features(simd::Kernel::kAvx2, args, 0, bins.n_cols());
      expect_bit_identical(scalar, avx2);
      // Partial feature ranges hit different feature-block shapes.
      for (std::size_t first : {std::size_t{0}, std::size_t{3}}) {
        const BinnedStumpResult s =
            simd::scan_features(simd::Kernel::kScalar, args, first, 7);
        const BinnedStumpResult v =
            simd::scan_features(simd::Kernel::kAvx2, args, first, 7);
        expect_bit_identical(s, v);
      }
    }
  }
}

TEST_F(SimdKernelIdentityTest, FullSearchMatchesAcrossForcedModes) {
  for (const std::uint64_t seed : {5u, 6u}) {
    const RandomDataset data = make_dataset(seed, 400);
    const BinnedColumns bins(data.arena, {});
    const std::vector<double> weights =
        irrational_weights(seed, data.arena.n_rows());
    SCOPED_TRACE(testing::Message() << "seed=" << seed);
    simd::set_mode(simd::Mode::kScalar);
    const BinnedStumpResult scalar =
        find_best_stump_binned(bins, data.labels, weights, {}, 1e-4);
    simd::set_mode(simd::Mode::kAvx2);
    const BinnedStumpResult avx2 =
        find_best_stump_binned(bins, data.labels, weights, {}, 1e-4);
    simd::set_mode(simd::Mode::kAuto);
    const BinnedStumpResult dispatched =
        find_best_stump_binned(bins, data.labels, weights, {}, 1e-4);
    expect_bit_identical(scalar, avx2);
    expect_bit_identical(scalar, dispatched);
  }
}

TEST_F(SimdKernelIdentityTest, RowSubsetsMatchBitForBit) {
  const RandomDataset data = make_dataset(77, 300);
  const BinnedColumns bins(data.arena, {});
  // Subsets: empty list (= every row), an explicit full list, a strict
  // subset with repeats-free random order preserved, and a tiny one.
  std::vector<std::uint32_t> full(data.arena.n_rows());
  for (std::uint32_t i = 0; i < full.size(); ++i) full[i] = i;
  std::vector<std::uint32_t> odd;
  for (std::uint32_t i = 1; i < full.size(); i += 2) odd.push_back(i);
  const std::vector<std::uint32_t> tiny = {7, 3, 250, 11, 42};
  const std::vector<std::vector<std::uint32_t>> subsets = {
      {}, full, odd, tiny};
  for (const auto& rows : subsets) {
    const std::size_t n = rows.empty() ? data.arena.n_rows() : rows.size();
    const std::vector<double> weights = dyadic_weights(n, n);
    SCOPED_TRACE(testing::Message() << "subset size=" << n);
    simd::set_mode(simd::Mode::kScalar);
    const BinnedStumpResult scalar =
        find_best_stump_binned(bins, data.labels, weights, rows, 1e-4);
    simd::set_mode(simd::Mode::kAvx2);
    const BinnedStumpResult avx2 =
        find_best_stump_binned(bins, data.labels, weights, rows, 1e-4);
    expect_bit_identical(scalar, avx2);
  }
}

TEST(SimdScalarTest, ForcedScalarSearchIsWellFormedEverywhere) {
  // Runs on every host, AVX2 or not: the scalar arm alone must produce
  // a finite-or-dead result and respect the all-missing column.
  ModeGuard guard;
  simd::set_mode(simd::Mode::kScalar);
  const RandomDataset data = make_dataset(123, 128);
  const BinnedColumns bins(data.arena, {});
  const std::vector<double> weights = dyadic_weights(9, data.arena.n_rows());
  const BinnedStumpResult best =
      find_best_stump_binned(bins, data.labels, weights, {}, 1e-4);
  EXPECT_LT(best.stump.feature, bins.n_cols());
  EXPECT_NE(best.stump.feature, 3u);  // the all-missing column never wins
  EXPECT_TRUE(std::isfinite(best.z));
}

}  // namespace
}  // namespace nevermind::ml
