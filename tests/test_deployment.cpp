#include "core/deployment.hpp"

#include <gtest/gtest.h>

namespace nevermind::core {
namespace {

class DeploymentTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dslsim::SimConfig cfg;
    cfg.seed = 81;
    cfg.topology.n_lines = 4000;
    data_ = new dslsim::SimDataset(dslsim::Simulator(cfg).run());
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }

  static DeploymentConfig small_config() {
    DeploymentConfig cfg;
    cfg.predictor.top_n = 40;
    cfg.predictor.boost_iterations = 60;
    cfg.predictor.use_derived_features = false;
    cfg.locator.min_occurrences = 6;
    cfg.locator.boost_iterations = 30;
    cfg.atds.weekly_capacity = 40;
    cfg.training_window_weeks = 8;
    return cfg;
  }

  static const dslsim::SimDataset* data_;
};

const dslsim::SimDataset* DeploymentTest::data_ = nullptr;

TEST_F(DeploymentTest, RunsWeeksAndReports) {
  RollingDeployment deployment(small_config());
  const auto reports = deployment.run(*data_, 40, 43);
  ASSERT_EQ(reports.size(), 4U);
  for (std::size_t i = 0; i < reports.size(); ++i) {
    EXPECT_EQ(reports[i].week, 40 + static_cast<int>(i));
    EXPECT_EQ(reports[i].atds.submitted, 40U);
    EXPECT_GE(reports[i].precision, 0.0);
    EXPECT_LE(reports[i].precision, 1.0);
    EXPECT_GE(reports[i].max_psi, 0.0);
  }
  EXPECT_TRUE(deployment.predictor().trained());
  EXPECT_TRUE(deployment.locator().trained());
}

TEST_F(DeploymentTest, NoRetrainingByDefault) {
  RollingDeployment deployment(small_config());
  const auto reports = deployment.run(*data_, 40, 44);
  for (const auto& r : reports) EXPECT_FALSE(r.retrained);
}

TEST_F(DeploymentTest, RetrainsOnCadence) {
  DeploymentConfig cfg = small_config();
  cfg.retrain_every_weeks = 2;
  RollingDeployment deployment(cfg);
  const auto reports = deployment.run(*data_, 40, 44);
  // Weeks 40,41 on the initial model; retrain lands at week 42 and 44.
  EXPECT_FALSE(reports[0].retrained);
  EXPECT_FALSE(reports[1].retrained);
  EXPECT_TRUE(reports[2].retrained);
  EXPECT_FALSE(reports[3].retrained);
  EXPECT_TRUE(reports[4].retrained);
}

TEST_F(DeploymentTest, StationarySimulationShowsLittleDrift) {
  // The simulator's feature process is stationary, so the PSI monitor
  // should stay quiet — this is the control for the drift machinery.
  RollingDeployment deployment(small_config());
  const auto reports = deployment.run(*data_, 40, 42);
  for (const auto& r : reports) {
    EXPECT_LT(r.max_psi, 0.5) << "week " << r.week;
  }
}

TEST_F(DeploymentTest, PrecisionBeatsBaseRate) {
  RollingDeployment deployment(small_config());
  const auto reports = deployment.run(*data_, 40, 43);
  double mean_precision = 0.0;
  for (const auto& r : reports) mean_precision += r.precision;
  mean_precision /= static_cast<double>(reports.size());
  EXPECT_GT(mean_precision, 0.05);  // base rate is ~1.5%
}

TEST_F(DeploymentTest, InsufficientHistoryThrows) {
  RollingDeployment deployment(small_config());
  EXPECT_THROW((void)deployment.run(*data_, 3, 5), std::invalid_argument);
}

}  // namespace
}  // namespace nevermind::core
