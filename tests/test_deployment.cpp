#include "core/deployment.hpp"

#include <gtest/gtest.h>

namespace nevermind::core {
namespace {

class DeploymentTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dslsim::SimConfig cfg;
    cfg.seed = 81;
    cfg.topology.n_lines = 4000;
    data_ = new dslsim::SimDataset(dslsim::Simulator(cfg).run());
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }

  static DeploymentConfig small_config() {
    DeploymentConfig cfg;
    cfg.predictor.top_n = 40;
    cfg.predictor.boost_iterations = 60;
    cfg.predictor.use_derived_features = false;
    cfg.locator.min_occurrences = 6;
    cfg.locator.boost_iterations = 30;
    cfg.atds.weekly_capacity = 40;
    cfg.training_window_weeks = 8;
    return cfg;
  }

  static const dslsim::SimDataset* data_;
};

const dslsim::SimDataset* DeploymentTest::data_ = nullptr;

TEST_F(DeploymentTest, RunsWeeksAndReports) {
  RollingDeployment deployment(small_config());
  const auto reports = deployment.run(*data_, 40, 43);
  ASSERT_EQ(reports.size(), 4U);
  for (std::size_t i = 0; i < reports.size(); ++i) {
    EXPECT_EQ(reports[i].week, 40 + static_cast<int>(i));
    EXPECT_EQ(reports[i].atds.submitted, 40U);
    EXPECT_GE(reports[i].precision, 0.0);
    EXPECT_LE(reports[i].precision, 1.0);
    EXPECT_GE(reports[i].max_psi, 0.0);
  }
  EXPECT_TRUE(deployment.predictor().trained());
  EXPECT_TRUE(deployment.locator().trained());
}

TEST_F(DeploymentTest, NoRetrainingByDefault) {
  RollingDeployment deployment(small_config());
  const auto reports = deployment.run(*data_, 40, 44);
  for (const auto& r : reports) EXPECT_FALSE(r.retrained);
}

TEST_F(DeploymentTest, RetrainsOnCadence) {
  DeploymentConfig cfg = small_config();
  cfg.retrain_every_weeks = 2;
  RollingDeployment deployment(cfg);
  const auto reports = deployment.run(*data_, 40, 44);
  // Weeks 40,41 on the initial model; retrain lands at week 42 and 44.
  EXPECT_FALSE(reports[0].retrained);
  EXPECT_FALSE(reports[1].retrained);
  EXPECT_TRUE(reports[2].retrained);
  EXPECT_FALSE(reports[3].retrained);
  EXPECT_TRUE(reports[4].retrained);
}

TEST_F(DeploymentTest, StationarySimulationShowsLittleDrift) {
  // The simulator's feature process is stationary, so the PSI monitor
  // should stay quiet — this is the control for the drift machinery.
  RollingDeployment deployment(small_config());
  const auto reports = deployment.run(*data_, 40, 42);
  for (const auto& r : reports) {
    EXPECT_LT(r.max_psi, 0.5) << "week " << r.week;
  }
}

TEST_F(DeploymentTest, PrecisionBeatsBaseRate) {
  RollingDeployment deployment(small_config());
  const auto reports = deployment.run(*data_, 40, 43);
  double mean_precision = 0.0;
  for (const auto& r : reports) mean_precision += r.precision;
  mean_precision /= static_cast<double>(reports.size());
  EXPECT_GT(mean_precision, 0.05);  // base rate is ~1.5%
}

TEST_F(DeploymentTest, InsufficientHistoryThrows) {
  RollingDeployment deployment(small_config());
  EXPECT_THROW((void)deployment.run(*data_, 3, 5), std::invalid_argument);
}

// The orchestrator's decision mechanics are tested with a forced alert
// threshold (-1.0 makes every column "drifted" every week) so patience
// and cooldown are exercised deterministically without needing a
// non-stationary dataset; bench_drift covers real PSI detection.

TEST_F(DeploymentTest, DriftTriggerFiresWithoutCalendar) {
  DeploymentConfig cfg = small_config();
  cfg.retrain_every_weeks = 0;
  cfg.psi_alert_threshold = -1.0;
  cfg.drift_min_alerts = 1;
  cfg.drift_patience_weeks = 2;
  cfg.drift_cooldown_weeks = 3;
  RetrainOrchestrator orchestrator(cfg.retrain_policy(), cfg.predictor);
  std::size_t publishes = 0;
  orchestrator.set_publish_hook([&](const ScoringKernel&) { ++publishes; });
  orchestrator.bootstrap(*data_, 40);
  EXPECT_EQ(publishes, 1U);
  std::vector<RetrainDecision> decisions;
  for (int week = 40; week <= 46; ++week) {
    decisions.push_back(orchestrator.observe_week(*data_, week));
  }
  // Alerts accumulate from week 40; the 2-week patience is met after
  // week 41 but the 3-week cooldown holds the retrain until week 43,
  // and the cycle then repeats at week 46.
  for (const auto& d : decisions) {
    EXPECT_GE(d.drift_alerts, 1U) << "week " << d.week;
    EXPECT_EQ(d.retrained, d.week == 43 || d.week == 46) << "week " << d.week;
    if (d.retrained) EXPECT_EQ(d.trigger, RetrainTrigger::kDrift);
  }
  EXPECT_EQ(publishes, 3U);
  EXPECT_EQ(orchestrator.last_trained_week(), 45);
}

TEST_F(DeploymentTest, DriftPreemptsSlowCalendar) {
  DeploymentConfig cfg = small_config();
  cfg.retrain_every_weeks = 6;
  cfg.psi_alert_threshold = -1.0;
  cfg.drift_min_alerts = 1;
  cfg.drift_patience_weeks = 1;
  cfg.drift_cooldown_weeks = 2;
  RetrainOrchestrator orchestrator(cfg.retrain_policy(), cfg.predictor);
  orchestrator.bootstrap(*data_, 40);
  for (int week = 40; week <= 46; ++week) {
    const auto d = orchestrator.observe_week(*data_, week);
    // The cooldown paces drift retrains every 2 weeks — always ahead
    // of the 6-week calendar, so the calendar trigger never lands.
    EXPECT_EQ(d.retrained, week == 42 || week == 44 || week == 46)
        << "week " << week;
    if (d.retrained) EXPECT_EQ(d.trigger, RetrainTrigger::kDrift);
  }
}

TEST_F(DeploymentTest, DriftTriggerOffIsCalendarOnly) {
  // drift_min_alerts = 0 keeps the trigger off no matter how loud the
  // monitor is — alerts are still *reported* so operators see them.
  DeploymentConfig cfg = small_config();
  cfg.retrain_every_weeks = 0;
  cfg.psi_alert_threshold = -1.0;
  cfg.drift_min_alerts = 0;
  RetrainOrchestrator orchestrator(cfg.retrain_policy(), cfg.predictor);
  orchestrator.bootstrap(*data_, 40);
  for (int week = 40; week <= 44; ++week) {
    const auto d = orchestrator.observe_week(*data_, week);
    EXPECT_FALSE(d.retrained) << "week " << week;
    EXPECT_GE(d.drift_alerts, 1U) << "week " << week;
  }
}

TEST_F(DeploymentTest, DeploymentReportsDriftTrigger) {
  DeploymentConfig cfg = small_config();
  cfg.psi_alert_threshold = -1.0;
  cfg.drift_min_alerts = 1;
  cfg.drift_patience_weeks = 1;
  cfg.drift_cooldown_weeks = 2;
  RollingDeployment deployment(cfg);
  const auto reports = deployment.run(*data_, 40, 44);
  ASSERT_EQ(reports.size(), 5U);
  for (const auto& r : reports) {
    EXPECT_EQ(r.retrained, r.week == 42 || r.week == 44) << "week " << r.week;
    EXPECT_EQ(r.trigger, r.retrained ? RetrainTrigger::kDrift
                                     : RetrainTrigger::kNone);
  }
}

}  // namespace
}  // namespace nevermind::core
