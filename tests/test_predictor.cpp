#include "core/ticket_predictor.hpp"

#include <gtest/gtest.h>

#include "ml/metrics.hpp"
#include "util/calendar.hpp"

namespace nevermind::core {
namespace {

class PredictorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dslsim::SimConfig cfg;
    cfg.seed = 21;
    cfg.topology.n_lines = 5000;
    data_ = new dslsim::SimDataset(dslsim::Simulator(cfg).run());

    PredictorConfig pcfg;
    pcfg.top_n = 50;
    pcfg.boost_iterations = 120;
    predictor_ = new TicketPredictor(pcfg);
    predictor_->train(*data_, 30, 38);
  }
  static void TearDownTestSuite() {
    delete predictor_;
    delete data_;
    predictor_ = nullptr;
    data_ = nullptr;
  }
  static const dslsim::SimDataset* data_;
  static TicketPredictor* predictor_;
};

const dslsim::SimDataset* PredictorTest::data_ = nullptr;
TicketPredictor* PredictorTest::predictor_ = nullptr;

TEST_F(PredictorTest, TrainsAndSelectsFeatures) {
  EXPECT_TRUE(predictor_->trained());
  EXPECT_FALSE(predictor_->selected_features().empty());
  EXPECT_LE(predictor_->selected_features().size(),
            predictor_->config().max_selected_features);
  EXPECT_EQ(predictor_->selected_features().size(),
            predictor_->selected_columns().size());
}

TEST_F(PredictorTest, SelectedFeatureIndicesAreSorted) {
  const auto& sel = predictor_->selected_features();
  for (std::size_t i = 1; i < sel.size(); ++i) {
    EXPECT_LT(sel[i - 1], sel[i]);
  }
}

TEST_F(PredictorTest, PredictionsCoverAllLinesSortedByScore) {
  const auto preds = predictor_->predict_week(*data_, 43);
  ASSERT_EQ(preds.size(), data_->n_lines());
  for (std::size_t i = 1; i < preds.size(); ++i) {
    EXPECT_GE(preds[i - 1].score, preds[i].score);
  }
}

TEST_F(PredictorTest, ProbabilitiesAreValidAndMonotoneInScore) {
  const auto preds = predictor_->predict_week(*data_, 43);
  for (std::size_t i = 0; i < preds.size(); i += 97) {
    EXPECT_GE(preds[i].probability, 0.0);
    EXPECT_LE(preds[i].probability, 1.0);
  }
  EXPECT_GE(preds.front().probability, preds.back().probability);
}

TEST_F(PredictorTest, BeatsRandomRankingByLargeFactor) {
  const auto preds = predictor_->predict_week(*data_, 43);
  const util::Day day = util::saturday_of_week(43);

  // Base rate: positives among all lines.
  std::size_t positives = 0;
  for (dslsim::LineId u = 0; u < data_->n_lines(); ++u) {
    const auto next = data_->next_edge_ticket_after(u, day);
    positives += next.has_value() && *next <= day + 28 ? 1 : 0;
  }
  const double base_rate =
      static_cast<double>(positives) / static_cast<double>(data_->n_lines());

  // Precision in the top 50.
  std::size_t hits = 0;
  for (std::size_t i = 0; i < 50; ++i) {
    const auto next = data_->next_edge_ticket_after(preds[i].line, day);
    hits += next.has_value() && *next <= day + 28 ? 1 : 0;
  }
  const double precision = static_cast<double>(hits) / 50.0;
  EXPECT_GT(precision, 5.0 * base_rate);
}

TEST_F(PredictorTest, ScoreBlockMatchesPredictWeek) {
  const features::TicketLabeler labeler{28};
  const auto block = features::encode_weeks(
      *data_, 43, 43, predictor_->full_encoder_config(), labeler);
  const auto scores = predictor_->score_block(block);
  const auto preds = predictor_->predict_week(*data_, 43);
  // The top-ranked line's score appears in the block's scores.
  const auto it =
      std::find(block.line_of_row.begin(), block.line_of_row.end(),
                preds.front().line);
  ASSERT_NE(it, block.line_of_row.end());
  const auto row = static_cast<std::size_t>(it - block.line_of_row.begin());
  EXPECT_NEAR(scores[row], preds.front().score, 1e-9);
}

TEST_F(PredictorTest, PredictBeforeTrainThrows) {
  TicketPredictor fresh{PredictorConfig{}};
  EXPECT_THROW((void)fresh.predict_week(*data_, 43), std::logic_error);
}

TEST_F(PredictorTest, EmptyTrainRangeThrows) {
  TicketPredictor fresh{PredictorConfig{}};
  EXPECT_THROW(fresh.train(*data_, 10, 5), std::invalid_argument);
}

TEST(Predictor, BaselineSelectionMethodsAlsoTrain) {
  dslsim::SimConfig cfg;
  cfg.seed = 22;
  cfg.topology.n_lines = 2000;
  const dslsim::SimDataset data = dslsim::Simulator(cfg).run();

  for (const auto method :
       {ml::SelectionMethod::kAuc, ml::SelectionMethod::kPca,
        ml::SelectionMethod::kGainRatio}) {
    PredictorConfig pcfg;
    pcfg.top_n = 20;
    pcfg.boost_iterations = 40;
    pcfg.selection = method;
    pcfg.use_derived_features = false;
    pcfg.max_selected_features = 20;
    TicketPredictor p(pcfg);
    p.train(data, 30, 36);
    EXPECT_TRUE(p.trained()) << ml::selection_method_name(method);
    EXPECT_LE(p.selected_features().size(), 20U);
  }
}

TEST(Predictor, DeterministicAcrossIdenticalRuns) {
  dslsim::SimConfig cfg;
  cfg.seed = 23;
  cfg.topology.n_lines = 1500;
  const dslsim::SimDataset data = dslsim::Simulator(cfg).run();

  PredictorConfig pcfg;
  pcfg.top_n = 15;
  pcfg.boost_iterations = 30;
  pcfg.use_derived_features = false;
  TicketPredictor a(pcfg);
  TicketPredictor b(pcfg);
  a.train(data, 30, 36);
  b.train(data, 30, 36);
  const auto pa = a.predict_week(data, 40);
  const auto pb = b.predict_week(data, 40);
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(pa[i].line, pb[i].line);
    EXPECT_EQ(pa[i].score, pb[i].score);
  }
}

}  // namespace
}  // namespace nevermind::core
