#include "dslsim/summary.hpp"

#include <gtest/gtest.h>

namespace nevermind::dslsim {
namespace {

class SummaryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SimConfig cfg;
    cfg.seed = 71;
    cfg.topology.n_lines = 2000;
    data_ = new SimDataset(Simulator(cfg).run());
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }
  static const SimDataset* data_;
};

const SimDataset* SummaryTest::data_ = nullptr;

TEST_F(SummaryTest, TicketTotalsMatchRawCounts) {
  const auto s = summarize_tickets(*data_);
  std::size_t edge = 0;
  std::size_t billing = 0;
  for (const auto& t : data_->tickets()) {
    edge += t.category == TicketCategory::kCustomerEdge ? 1 : 0;
    billing += t.category == TicketCategory::kBilling ? 1 : 0;
  }
  EXPECT_EQ(s.edge_total, edge);
  EXPECT_EQ(s.billing_total, billing);
  EXPECT_EQ(s.dispatched, data_->notes().size());
}

TEST_F(SummaryTest, WeekdayCountsSumToTotal) {
  const auto s = summarize_tickets(*data_);
  std::size_t sum = 0;
  for (auto c : s.by_weekday) sum += c;
  EXPECT_EQ(sum, s.edge_total);
}

TEST_F(SummaryTest, WeeklySeriesSumsToTotal) {
  const auto s = summarize_tickets(*data_);
  std::size_t sum = 0;
  for (auto c : s.by_week) sum += c;
  EXPECT_EQ(sum, s.edge_total);
}

TEST_F(SummaryTest, MondayPeakWeekendTrough) {
  const auto s = summarize_tickets(*data_);
  const auto monday =
      s.by_weekday[static_cast<std::size_t>(util::Weekday::kMonday)];
  EXPECT_GT(monday,
            s.by_weekday[static_cast<std::size_t>(util::Weekday::kSaturday)]);
  EXPECT_GT(monday,
            s.by_weekday[static_cast<std::size_t>(util::Weekday::kSunday)]);
}

TEST_F(SummaryTest, LocationSharesSumToOne) {
  const auto shares = summarize_locations(*data_);
  double total = 0.0;
  for (const auto& ls : shares) total += ls.share;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_F(SummaryTest, NoDominantDispositionWithinLocations) {
  // The paper's observation that motivates the learned locator.
  for (const auto& ls : summarize_locations(*data_)) {
    EXPECT_LT(ls.top_disposition_share, 0.6)
        << major_location_name(ls.location);
  }
}

TEST_F(SummaryTest, MeasurementCountsConsistent) {
  const auto m = summarize_measurements(*data_);
  EXPECT_EQ(m.records, static_cast<std::size_t>(data_->n_weeks()) *
                           data_->n_lines());
  EXPECT_GT(m.missing, 0U);
  EXPECT_LT(m.missing_rate, 0.35);
  EXPECT_NEAR(m.missing_rate,
              static_cast<double>(m.missing) / static_cast<double>(m.records),
              1e-12);
}

}  // namespace
}  // namespace nevermind::dslsim
