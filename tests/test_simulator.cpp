#include "dslsim/simulator.hpp"

#include <gtest/gtest.h>

#include <map>

#include "ml/dataset.hpp"

namespace nevermind::dslsim {
namespace {

SimConfig small_config(std::uint64_t seed = 42) {
  SimConfig cfg;
  cfg.seed = seed;
  cfg.topology.n_lines = 2500;
  // Small fanouts so even this little network spans several BRAS
  // servers (the byte feed covers exactly two of them).
  cfg.topology.dslams_per_atm = 4;
  cfg.topology.atms_per_bras = 2;
  return cfg;
}

/// One shared dataset for the whole suite: the simulation is the
/// expensive part, the assertions are cheap.
class SimulatorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_ = new SimDataset(Simulator(small_config()).run());
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }
  static const SimDataset* data_;
};

const SimDataset* SimulatorTest::data_ = nullptr;

TEST_F(SimulatorTest, ProducesAllDatasets) {
  EXPECT_EQ(data_->n_lines(), 2500U);
  EXPECT_EQ(data_->n_weeks(), 52);
  EXPECT_GT(data_->tickets().size(), 100U);
  EXPECT_GT(data_->notes().size(), 50U);
  EXPECT_GT(data_->episodes().size(), 200U);
  EXPECT_GT(data_->outages().size(), 0U);
}

TEST_F(SimulatorTest, TicketsChronologicalWithSequentialIds) {
  const auto& tickets = data_->tickets();
  for (std::size_t i = 1; i < tickets.size(); ++i) {
    EXPECT_LE(tickets[i - 1].reported, tickets[i].reported);
    EXPECT_EQ(tickets[i].id, i);
  }
}

TEST_F(SimulatorTest, TicketsResolveAfterReport) {
  for (const auto& t : data_->tickets()) {
    EXPECT_GE(t.resolved, t.reported);
  }
}

TEST_F(SimulatorTest, NotesPointBackToTickets) {
  for (const auto& t : data_->tickets()) {
    if (t.note == kNoTicket) continue;
    const auto& note = data_->notes().at(static_cast<std::size_t>(t.note));
    EXPECT_EQ(note.ticket_id, t.id);
    EXPECT_EQ(note.line, t.line);
    EXPECT_EQ(note.dispatch_day, t.resolved);
  }
}

TEST_F(SimulatorTest, NoteLocationsMatchCatalog) {
  for (const auto& note : data_->notes()) {
    EXPECT_EQ(note.location,
              data_->catalog().signature(note.disposition).location);
  }
}

TEST_F(SimulatorTest, EdgeTicketsHaveNotesBillingDoNot) {
  for (const auto& t : data_->tickets()) {
    if (t.category == TicketCategory::kBilling) {
      EXPECT_EQ(t.note, kNoTicket);
    } else {
      EXPECT_NE(t.note, kNoTicket);
    }
  }
}

TEST_F(SimulatorTest, SomeBillingTicketsExist) {
  std::size_t billing = 0;
  for (const auto& t : data_->tickets()) {
    billing += t.category == TicketCategory::kBilling ? 1 : 0;
  }
  EXPECT_GT(billing, 10U);
}

TEST_F(SimulatorTest, NextTicketQueryAgreesWithTicketList) {
  // Cross-check the index against a brute-force scan for a sample of
  // lines.
  for (LineId u = 0; u < data_->n_lines(); u += 97) {
    const util::Day probe = 200;
    std::optional<util::Day> expected;
    for (const auto& t : data_->tickets()) {
      if (t.line == u && t.category == TicketCategory::kCustomerEdge &&
          t.reported > probe) {
        expected = expected.has_value() ? std::min(*expected, t.reported)
                                        : t.reported;
      }
    }
    EXPECT_EQ(data_->next_edge_ticket_after(u, probe), expected) << u;
  }
}

TEST_F(SimulatorTest, LastTicketQueryAgrees) {
  for (LineId u = 0; u < data_->n_lines(); u += 131) {
    const util::Day probe = 250;
    std::optional<util::Day> expected;
    for (const auto& t : data_->tickets()) {
      if (t.line == u && t.category == TicketCategory::kCustomerEdge &&
          t.reported <= probe) {
        expected = expected.has_value() ? std::max(*expected, t.reported)
                                        : t.reported;
      }
    }
    EXPECT_EQ(data_->last_edge_ticket_at_or_before(u, probe), expected) << u;
  }
}

TEST_F(SimulatorTest, EpisodesHaveValidSpans) {
  for (const auto& e : data_->episodes()) {
    EXPECT_LT(e.line, data_->n_lines());
    EXPECT_LT(e.onset, e.cleared);
    EXPECT_GE(e.severity, 0.15F);
    EXPECT_LE(e.severity, 2.5F);
    EXPECT_LT(e.disposition, data_->catalog().size());
  }
}

TEST_F(SimulatorTest, ReportedEpisodesClearAtResolution) {
  std::size_t checked = 0;
  for (const auto& e : data_->episodes()) {
    if (e.first_ticket == kNoTicket) continue;
    const auto& t = data_->tickets().at(static_cast<std::size_t>(e.first_ticket));
    EXPECT_EQ(t.line, e.line);
    EXPECT_GE(t.reported, e.onset);
    ++checked;
  }
  EXPECT_GT(checked, 50U);
}

TEST_F(SimulatorTest, EpisodeActivityBounds) {
  const auto& catalog = data_->catalog();
  for (std::size_t i = 0; i < data_->episodes().size(); i += 13) {
    const auto& e = data_->episodes()[i];
    const auto& sig = catalog.signature(e.disposition);
    EXPECT_EQ(episode_activity(sig, e, e.onset - 1), 0.0);
    EXPECT_EQ(episode_activity(sig, e, e.cleared), 0.0);
    for (util::Day d = e.onset; d < std::min(e.cleared, e.onset + 30); d += 3) {
      const double a = episode_activity(sig, e, d);
      EXPECT_GE(a, 0.0);
      EXPECT_LE(a, 1.0);
    }
  }
}

TEST_F(SimulatorTest, DegradingActivityIsMonotone) {
  const auto& catalog = data_->catalog();
  for (const auto& e : data_->episodes()) {
    const auto& sig = catalog.signature(e.disposition);
    if (sig.dynamics != FaultDynamics::kDegrading) continue;
    double prev = 0.0;
    for (util::Day d = e.onset; d < std::min(e.cleared, e.onset + 40); ++d) {
      const double a = episode_activity(sig, e, d);
      EXPECT_GE(a, prev - 1e-12);
      prev = a;
    }
  }
}

TEST_F(SimulatorTest, MeasurementsCoverAllLinesAllWeeks) {
  for (int w = 0; w < data_->n_weeks(); w += 7) {
    std::size_t present = 0;
    for (LineId u = 0; u < data_->n_lines(); ++u) {
      const auto& m = data_->measurement(w, u);
      if (record_present(m)) {
        ++present;
        EXPECT_FALSE(ml::is_missing(m[1]));
      }
    }
    // Most modems answer the Saturday test.
    EXPECT_GT(present, data_->n_lines() * 8 / 10);
  }
}

TEST_F(SimulatorTest, TicketArrivalsPeakEarlyWeekBottomWeekend) {
  std::map<util::Weekday, std::size_t> by_day;
  for (const auto& t : data_->tickets()) {
    if (t.category == TicketCategory::kCustomerEdge) {
      ++by_day[util::weekday_of(t.reported)];
    }
  }
  EXPECT_GT(by_day[util::Weekday::kMonday], by_day[util::Weekday::kSaturday]);
  EXPECT_GT(by_day[util::Weekday::kMonday], by_day[util::Weekday::kSunday]);
}

TEST_F(SimulatorTest, ByteFeedCoversExactlyTwoBras) {
  std::size_t covered = 0;
  for (LineId u = 0; u < data_->n_lines(); ++u) {
    const bool in_feed = data_->in_byte_feed(u);
    const bool should =
        data_->topology().bras_of_line(u) < data_->config().byte_feed_bras;
    EXPECT_EQ(in_feed, should) << u;
    covered += in_feed ? 1 : 0;
  }
  EXPECT_GT(covered, 0U);
  EXPECT_LT(covered, data_->n_lines());
}

TEST_F(SimulatorTest, ByteFeedZeroDuringVacation) {
  std::size_t checked = 0;
  for (LineId u = 0; u < data_->n_lines() && checked < 20; ++u) {
    if (!data_->in_byte_feed(u)) continue;
    for (const auto& [start, end] : data_->customer(u).vacations) {
      if (start >= 0 && start < 300) {
        const auto mb = data_->bytes_on_day(u, start);
        ASSERT_TRUE(mb.has_value());
        EXPECT_EQ(*mb, 0.0);
        ++checked;
        break;
      }
    }
  }
  EXPECT_GT(checked, 0U);
}

TEST_F(SimulatorTest, OutageWindowsWellFormed) {
  for (const auto& o : data_->outages()) {
    EXPECT_LT(o.dslam, data_->topology().n_dslams());
    EXPECT_LE(o.precursor_start, o.outage_start);
    EXPECT_LT(o.outage_start, o.outage_end);
  }
}

TEST_F(SimulatorTest, OutageQueryMatchesEvents) {
  const auto& o = data_->outages().front();
  EXPECT_TRUE(data_->dslam_outage_within(o.dslam, o.outage_start,
                                         o.outage_start));
  EXPECT_FALSE(
      data_->dslam_outage_within(o.dslam, o.outage_end + 500, o.outage_end + 501));
}

TEST_F(SimulatorTest, FaultActiveMatchesEpisodes) {
  const auto& e = data_->episodes().front();
  EXPECT_TRUE(data_->fault_active(e.line, e.onset));
  EXPECT_FALSE(data_->fault_active(e.line, e.onset - 1) &&
               !data_->fault_active(e.line, e.onset - 1));  // no crash
}

TEST(Simulator, DeterministicAcrossRuns) {
  const SimDataset a = Simulator(small_config(7)).run();
  const SimDataset b = Simulator(small_config(7)).run();
  ASSERT_EQ(a.tickets().size(), b.tickets().size());
  for (std::size_t i = 0; i < a.tickets().size(); i += 11) {
    EXPECT_EQ(a.tickets()[i].line, b.tickets()[i].line);
    EXPECT_EQ(a.tickets()[i].reported, b.tickets()[i].reported);
  }
  for (int w = 0; w < a.n_weeks(); w += 13) {
    for (LineId u = 0; u < a.n_lines(); u += 101) {
      const auto& ma = a.measurement(w, u);
      const auto& mb = b.measurement(w, u);
      for (std::size_t j = 0; j < kNumLineMetrics; ++j) {
        if (ml::is_missing(ma[j])) {
          EXPECT_TRUE(ml::is_missing(mb[j]));
        } else {
          EXPECT_EQ(ma[j], mb[j]);
        }
      }
    }
  }
}

TEST(Simulator, DifferentSeedsDiffer) {
  const SimDataset a = Simulator(small_config(1)).run();
  const SimDataset b = Simulator(small_config(2)).run();
  EXPECT_NE(a.tickets().size(), b.tickets().size());
}

TEST(Simulator, TicketVolumeScalesWithFaultRate) {
  SimConfig lo = small_config(5);
  lo.weekly_fault_rate = 0.003;
  SimConfig hi = small_config(5);
  hi.weekly_fault_rate = 0.012;
  const auto tickets_lo = Simulator(lo).run().tickets().size();
  const auto tickets_hi = Simulator(hi).run().tickets().size();
  EXPECT_GT(tickets_hi, tickets_lo * 2);
}

TEST(Simulator, SuppressionReducesTicketsDuringOutages) {
  // With aggressive outages and full suppression, fewer tickets than
  // with no suppression under the same fault process.
  SimConfig with = small_config(9);
  with.outage_rate_per_dslam_year = 4.0;
  with.outage_suppression = 1.0;
  SimConfig without = with;
  without.outage_suppression = 0.0;
  std::size_t edge_with = 0;
  std::size_t edge_without = 0;
  for (const auto& t : Simulator(with).run().tickets()) {
    edge_with += t.category == TicketCategory::kCustomerEdge ? 1 : 0;
  }
  for (const auto& t : Simulator(without).run().tickets()) {
    edge_without += t.category == TicketCategory::kCustomerEdge ? 1 : 0;
  }
  EXPECT_LT(edge_with, edge_without);
}

}  // namespace
}  // namespace nevermind::dslsim
