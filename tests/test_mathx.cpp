#include "util/mathx.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace nevermind::util {
namespace {

TEST(Sigmoid, MidpointIsHalf) { EXPECT_NEAR(sigmoid(0.0), 0.5, 1e-12); }

TEST(Sigmoid, Symmetry) {
  for (double x : {0.1, 1.0, 3.7, 10.0}) {
    EXPECT_NEAR(sigmoid(x) + sigmoid(-x), 1.0, 1e-12);
  }
}

TEST(Sigmoid, SaturatesWithoutOverflow) {
  EXPECT_NEAR(sigmoid(1000.0), 1.0, 1e-12);
  EXPECT_NEAR(sigmoid(-1000.0), 0.0, 1e-12);
}

TEST(Sigmoid, KnownValue) {
  EXPECT_NEAR(sigmoid(1.0), 1.0 / (1.0 + std::exp(-1.0)), 1e-12);
}

TEST(Log1pExp, MatchesNaiveInSafeRange) {
  for (double x : {-5.0, -1.0, 0.0, 1.0, 5.0}) {
    EXPECT_NEAR(log1p_exp(x), std::log1p(std::exp(x)), 1e-10);
  }
}

TEST(Log1pExp, LargePositiveIsIdentity) {
  EXPECT_NEAR(log1p_exp(100.0), 100.0, 1e-9);
}

TEST(Log1pExp, LargeNegativeIsTiny) {
  EXPECT_NEAR(log1p_exp(-100.0), 0.0, 1e-12);
}

TEST(NormalPdf, PeakValue) {
  EXPECT_NEAR(normal_pdf(0.0), 0.3989422804014327, 1e-12);
}

TEST(NormalPdf, Symmetric) {
  EXPECT_NEAR(normal_pdf(1.3), normal_pdf(-1.3), 1e-15);
}

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(normal_cdf(-1.96), 0.025, 1e-3);
  EXPECT_NEAR(normal_cdf(3.0), 0.99865, 1e-4);
}

TEST(NormalCdf, Monotone) {
  double prev = 0.0;
  for (double x = -6.0; x <= 6.0; x += 0.1) {
    const double v = normal_cdf(x);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(TwoSidedPValue, KnownValues) {
  EXPECT_NEAR(two_sided_p_value(0.0), 1.0, 1e-12);
  EXPECT_NEAR(two_sided_p_value(1.96), 0.05, 2e-3);
  EXPECT_NEAR(two_sided_p_value(-1.96), 0.05, 2e-3);
  EXPECT_LT(two_sided_p_value(5.0), 1e-5);
}

TEST(ClampProbability, ClampsExtremes) {
  EXPECT_GT(clamp_probability(0.0), 0.0);
  EXPECT_LT(clamp_probability(1.0), 1.0);
  EXPECT_EQ(clamp_probability(0.4), 0.4);
}

TEST(Logit, InverseOfSigmoid) {
  for (double p : {0.01, 0.25, 0.5, 0.75, 0.99}) {
    EXPECT_NEAR(sigmoid(logit(p)), p, 1e-9);
  }
}

TEST(Logit, HandlesEndpointsFinitely) {
  EXPECT_TRUE(std::isfinite(logit(0.0)));
  EXPECT_TRUE(std::isfinite(logit(1.0)));
}

TEST(Dot, BasicProduct) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {4.0, 5.0, 6.0};
  EXPECT_NEAR(dot(a, b), 32.0, 1e-12);
}

TEST(Dot, MismatchedLengthsUseShorter) {
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> b = {3.0, 4.0, 100.0};
  EXPECT_NEAR(dot(a, b), 11.0, 1e-12);
}

TEST(Dot, EmptyIsZero) { EXPECT_EQ(dot({}, {}), 0.0); }

}  // namespace
}  // namespace nevermind::util
