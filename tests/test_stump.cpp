#include "ml/stump.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace nevermind::ml {
namespace {

std::vector<double> uniform_weights(std::size_t n) {
  return std::vector<double>(n, 1.0 / static_cast<double>(n));
}

TEST(Stump, EvaluateContinuous) {
  Stump s;
  s.feature = 0;
  s.threshold = 5.0F;
  s.score_pass = 1.0;
  s.score_fail = -0.5;
  s.score_missing = 0.1;
  EXPECT_EQ(s.evaluate(7.0F), 1.0);
  EXPECT_EQ(s.evaluate(5.0F), 1.0);  // >= threshold passes
  EXPECT_EQ(s.evaluate(4.9F), -0.5);
  EXPECT_EQ(s.evaluate(kMissing), 0.1);
}

TEST(Stump, EvaluateCategorical) {
  Stump s;
  s.feature = 0;
  s.categorical = true;
  s.threshold = 2.0F;
  s.score_pass = 0.7;
  s.score_fail = -0.7;
  EXPECT_EQ(s.evaluate(2.0F), 0.7);
  EXPECT_EQ(s.evaluate(3.0F), -0.7);
}

TEST(FindBestStump, SeparableContinuous) {
  FeatureArena d({{"x", false}});
  for (int i = 0; i < 50; ++i) {
    const float x = static_cast<float>(i);
    d.add_row({&x, 1}, i >= 25);
  }
  const SortedColumns sorted(d);
  const auto result =
      find_best_stump(d, sorted, uniform_weights(d.n_rows()), 0.01);
  // Threshold lands between 24 and 25; positives above.
  EXPECT_GT(result.stump.threshold, 24.0F);
  EXPECT_LT(result.stump.threshold, 25.01F);
  EXPECT_GT(result.stump.score_pass, 0.0);
  EXPECT_LT(result.stump.score_fail, 0.0);
  EXPECT_LT(result.z, 0.2);  // nearly perfect split -> Z near 0
}

TEST(FindBestStump, SeparableInverted) {
  // Positives BELOW the threshold: score signs flip.
  FeatureArena d({{"x", false}});
  for (int i = 0; i < 50; ++i) {
    const float x = static_cast<float>(i);
    d.add_row({&x, 1}, i < 25);
  }
  const SortedColumns sorted(d);
  const auto result =
      find_best_stump(d, sorted, uniform_weights(d.n_rows()), 0.01);
  EXPECT_LT(result.stump.score_pass, 0.0);
  EXPECT_GT(result.stump.score_fail, 0.0);
}

TEST(FindBestStump, PicksInformativeFeature) {
  FeatureArena d({{"noise", false}, {"signal", false}});
  util::Rng rng(3);
  for (int i = 0; i < 400; ++i) {
    const bool positive = i % 2 == 0;
    const float row[2] = {static_cast<float>(rng.uniform()),
                          positive ? 1.0F : 0.0F};
    d.add_row(row, positive);
  }
  const SortedColumns sorted(d);
  const auto result =
      find_best_stump(d, sorted, uniform_weights(d.n_rows()), 0.01);
  EXPECT_EQ(result.stump.feature, 1U);
}

TEST(FindBestStump, CategoricalEquality) {
  FeatureArena d({{"color", true}});
  util::Rng rng(4);
  for (int i = 0; i < 300; ++i) {
    const float v = static_cast<float>(rng.uniform_index(3));
    // Category 1 is mostly positive, others mostly negative.
    const bool positive = v == 1.0F ? rng.bernoulli(0.9) : rng.bernoulli(0.1);
    d.add_row({&v, 1}, positive);
  }
  const SortedColumns sorted(d);
  const auto result =
      find_best_stump(d, sorted, uniform_weights(d.n_rows()), 0.01);
  EXPECT_TRUE(result.stump.categorical);
  EXPECT_EQ(result.stump.threshold, 1.0F);
  EXPECT_GT(result.stump.score_pass, 0.0);
}

TEST(FindBestStump, MissingValuesGetOwnBranch) {
  FeatureArena d({{"x", false}});
  // Missing rows are all positive; present rows all negative.
  for (int i = 0; i < 100; ++i) {
    const float v = i < 50 ? kMissing : static_cast<float>(i);
    d.add_row({&v, 1}, i < 50);
  }
  const SortedColumns sorted(d);
  const auto result =
      find_best_stump(d, sorted, uniform_weights(d.n_rows()), 0.01);
  EXPECT_GT(result.stump.score_missing, 0.0);
  EXPECT_LT(result.stump.score_pass, 0.0);
}

TEST(FindBestStump, WeightsShiftTheSplit) {
  FeatureArena d({{"x", false}});
  for (int i = 0; i < 10; ++i) {
    const float x = static_cast<float>(i);
    d.add_row({&x, 1}, i >= 5);
  }
  // Upweight a mislabeled-looking point (x=0 positive would be noise);
  // instead upweight the boundary examples and check Z improves there.
  std::vector<double> w(10, 0.01);
  w[4] = 0.5;
  w[5] = 0.5;
  const SortedColumns sorted(d);
  const auto result = find_best_stump(d, sorted, w, 0.001);
  EXPECT_GT(result.stump.threshold, 4.0F);
  EXPECT_LT(result.stump.threshold, 5.01F);
}

TEST(FindBestStumpForFeature, RestrictsSearch) {
  FeatureArena d({{"noise", false}, {"signal", false}});
  util::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const bool positive = i % 2 == 0;
    const float row[2] = {static_cast<float>(rng.uniform()),
                          positive ? 1.0F : 0.0F};
    d.add_row(row, positive);
  }
  const std::size_t only[] = {0};
  const SortedColumns sorted(d, only);
  const auto result = find_best_stump_for_feature(
      d, sorted, uniform_weights(d.n_rows()), 0.01, 0);
  EXPECT_EQ(result.stump.feature, 0U);
  // The noise feature separates poorly: Z stays near 1.
  EXPECT_GT(result.z, 0.9);
}

TEST(FindBestStump, ConstantFeatureYieldsPriorVote) {
  FeatureArena d({{"x", false}});
  const float v = 1.0F;
  for (int i = 0; i < 40; ++i) d.add_row({&v, 1}, i < 30);
  const SortedColumns sorted(d);
  const auto result =
      find_best_stump(d, sorted, uniform_weights(d.n_rows()), 0.01);
  // Only the no-split stump exists: everything passes, vote is the
  // class prior (positive here).
  EXPECT_GT(result.stump.score_pass, 0.0);
}

}  // namespace
}  // namespace nevermind::ml
