#include "core/explain.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/rng.hpp"

namespace nevermind::core {
namespace {

/// Two informative features with opposite signs plus one never-used
/// noise column.
ml::FeatureArena make_data(util::Rng& rng) {
  ml::FeatureArena d({{"up", false}, {"down", false}, {"noise", false}});
  for (int i = 0; i < 2000; ++i) {
    const bool y = rng.bernoulli(0.4);
    const float row[3] = {static_cast<float>(rng.normal(y ? 1.5 : 0.0, 0.7)),
                          static_cast<float>(rng.normal(y ? -1.5 : 0.0, 0.7)),
                          static_cast<float>(rng.normal())};
    d.add_row(row, y);
  }
  return d;
}

class ExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::Rng rng(3);
    data_ = make_data(rng);
    ml::BStumpConfig cfg;
    cfg.iterations = 40;
    model_ = ml::train_bstump(data_, cfg);
  }
  ml::FeatureArena data_{std::vector<ml::ColumnInfo>{}};
  ml::BStumpModel model_;
};

TEST_F(ExplainTest, TotalMatchesModelScore) {
  const float row[3] = {2.0F, -2.0F, 0.3F};
  const auto exp = explain_score(model_, row, data_.columns());
  EXPECT_NEAR(exp.total_score, model_.score_features(row), 1e-9);
}

TEST_F(ExplainTest, ContributionsSumToTotalWhenUncapped) {
  const float row[3] = {0.5F, 0.2F, -1.0F};
  const auto exp = explain_score(model_, row, data_.columns(), 100);
  double sum = 0.0;
  for (const auto& c : exp.contributions) sum += c.score;
  EXPECT_NEAR(sum, exp.total_score, 1e-9);
}

TEST_F(ExplainTest, SortedByMagnitude) {
  const float row[3] = {2.0F, -2.0F, 0.0F};
  const auto exp = explain_score(model_, row, data_.columns());
  for (std::size_t i = 1; i < exp.contributions.size(); ++i) {
    EXPECT_GE(std::fabs(exp.contributions[i - 1].score),
              std::fabs(exp.contributions[i].score));
  }
}

TEST_F(ExplainTest, InformativeFeaturesDominante) {
  const float row[3] = {2.0F, -2.0F, 0.0F};
  const auto exp = explain_score(model_, row, data_.columns(), 2);
  ASSERT_GE(exp.contributions.size(), 1U);
  EXPECT_NE(exp.contributions[0].feature_name, "noise");
}

TEST_F(ExplainTest, PositiveExampleGetsPositiveVotes) {
  const float positive_row[3] = {2.5F, -2.5F, 0.0F};
  const float negative_row[3] = {-1.0F, 1.0F, 0.0F};
  const auto pos = explain_score(model_, positive_row, data_.columns());
  const auto neg = explain_score(model_, negative_row, data_.columns());
  EXPECT_GT(pos.total_score, neg.total_score);
}

TEST_F(ExplainTest, MissingValuesFlagged) {
  const float row[3] = {ml::kMissing, -2.0F, 0.0F};
  const auto exp = explain_score(model_, row, data_.columns(), 100);
  bool saw_missing = false;
  for (const auto& c : exp.contributions) {
    if (c.feature == 0) {
      saw_missing = c.missing;
    }
  }
  // Feature 0 may be merged away if it abstains to zero; only check
  // when present.
  if (!exp.contributions.empty() && exp.contributions[0].feature == 0) {
    EXPECT_TRUE(saw_missing);
  }
}

TEST_F(ExplainTest, CapsToTopK) {
  const float row[3] = {1.0F, -1.0F, 0.5F};
  const auto exp = explain_score(model_, row, data_.columns(), 1);
  EXPECT_LE(exp.contributions.size(), 1U);
}

TEST_F(ExplainTest, UnnamedFeaturesRenderAsIndices) {
  const float row[3] = {1.0F, -1.0F, 0.5F};
  const auto exp = explain_score(model_, row, {}, 100);
  for (const auto& c : exp.contributions) {
    EXPECT_EQ(c.feature_name, "f" + std::to_string(c.feature));
  }
}

TEST_F(ExplainTest, EmptyModelExplainsZero) {
  const ml::BStumpModel empty;
  const float row[3] = {1.0F, 2.0F, 3.0F};
  const auto exp = explain_score(empty, row, data_.columns());
  EXPECT_EQ(exp.total_score, 0.0);
  EXPECT_TRUE(exp.contributions.empty());
}

TEST_F(ExplainTest, PrintsReadableReport) {
  const float row[3] = {2.0F, -2.0F, 0.0F};
  const auto exp = explain_score(model_, row, data_.columns());
  std::ostringstream os;
  print_explanation(os, exp);
  EXPECT_NE(os.str().find("score"), std::string::npos);
  EXPECT_NE(os.str().find(">="), std::string::npos);
}

}  // namespace
}  // namespace nevermind::core
