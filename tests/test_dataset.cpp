#include "ml/dataset.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace nevermind::ml {
namespace {

Dataset make_small() {
  Dataset d({{"x", false}, {"y", false}, {"cat", true}});
  const float rows[][3] = {{1.0F, 10.0F, 0.0F},
                           {2.0F, 20.0F, 1.0F},
                           {3.0F, kMissing, 0.0F},
                           {4.0F, 40.0F, 1.0F}};
  const bool labels[] = {false, true, false, true};
  for (int i = 0; i < 4; ++i) d.add_row(rows[i], labels[i]);
  return d;
}

TEST(Dataset, Shape) {
  const Dataset d = make_small();
  EXPECT_EQ(d.n_rows(), 4U);
  EXPECT_EQ(d.n_cols(), 3U);
  EXPECT_EQ(d.positives(), 2U);
}

TEST(Dataset, ColumnAccess) {
  const Dataset d = make_small();
  const auto col = d.column(0);
  ASSERT_EQ(col.size(), 4U);
  EXPECT_EQ(col[2], 3.0F);
  EXPECT_TRUE(is_missing(d.at(2, 1)));
}

TEST(Dataset, ColumnInfoPreserved) {
  const Dataset d = make_small();
  EXPECT_EQ(d.column_info(2).name, "cat");
  EXPECT_TRUE(d.column_info(2).categorical);
  EXPECT_FALSE(d.column_info(0).categorical);
}

TEST(Dataset, AddRowRejectsWrongArity) {
  Dataset d({{"x", false}});
  const float two[] = {1.0F, 2.0F};
  EXPECT_THROW(d.add_row(two, false), std::invalid_argument);
}

TEST(Dataset, SelectColumns) {
  const Dataset d = make_small();
  const std::size_t cols[] = {2, 0};
  const Dataset s = d.select_columns(cols);
  EXPECT_EQ(s.n_cols(), 2U);
  EXPECT_EQ(s.n_rows(), 4U);
  EXPECT_EQ(s.column_info(0).name, "cat");
  EXPECT_EQ(s.at(1, 1), 2.0F);
  EXPECT_EQ(s.positives(), d.positives());
}

TEST(Dataset, SelectRows) {
  const Dataset d = make_small();
  const std::size_t rows[] = {1, 3};
  const Dataset s = d.select_rows(rows);
  EXPECT_EQ(s.n_rows(), 2U);
  EXPECT_EQ(s.positives(), 2U);
  EXPECT_EQ(s.at(0, 0), 2.0F);
  EXPECT_EQ(s.at(1, 0), 4.0F);
}

TEST(Dataset, SelectRowsOutOfRangeThrows) {
  const Dataset d = make_small();
  const std::size_t rows[] = {99};
  EXPECT_THROW((void)d.select_rows(rows), std::out_of_range);
}

TEST(Dataset, Relabel) {
  Dataset d = make_small();
  const std::vector<std::uint8_t> labels = {1, 1, 1, 0};
  d.relabel(labels);
  EXPECT_EQ(d.positives(), 3U);
  EXPECT_TRUE(d.label(0));
  EXPECT_FALSE(d.label(3));
}

TEST(Dataset, RelabelRejectsWrongSize) {
  Dataset d = make_small();
  const std::vector<std::uint8_t> labels = {1};
  EXPECT_THROW(d.relabel(labels), std::invalid_argument);
}

TEST(Dataset, MissingSentinelDetected) {
  EXPECT_TRUE(is_missing(kMissing));
  EXPECT_FALSE(is_missing(0.0F));
  EXPECT_FALSE(is_missing(-1e30F));
}

TEST(Dataset, EmptyDataset) {
  Dataset d;
  EXPECT_EQ(d.n_rows(), 0U);
  EXPECT_EQ(d.n_cols(), 0U);
}

}  // namespace
}  // namespace nevermind::ml
