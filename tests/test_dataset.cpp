#include "ml/dataset.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace nevermind::ml {
namespace {

FeatureArena make_small() {
  FeatureArena d({{"x", false}, {"y", false}, {"cat", true}});
  const float rows[][3] = {{1.0F, 10.0F, 0.0F},
                           {2.0F, 20.0F, 1.0F},
                           {3.0F, kMissing, 0.0F},
                           {4.0F, 40.0F, 1.0F}};
  const bool labels[] = {false, true, false, true};
  for (int i = 0; i < 4; ++i) d.add_row(rows[i], labels[i]);
  return d;
}

TEST(FeatureArena, Shape) {
  const FeatureArena d = make_small();
  EXPECT_EQ(d.n_rows(), 4U);
  EXPECT_EQ(d.n_cols(), 3U);
  EXPECT_EQ(d.positives(), 2U);
}

TEST(FeatureArena, ColumnAccess) {
  const FeatureArena d = make_small();
  const auto col = d.column(0);
  ASSERT_EQ(col.size(), 4U);
  EXPECT_EQ(col[2], 3.0F);
  EXPECT_TRUE(is_missing(d.at(2, 1)));
}

TEST(FeatureArena, ColumnInfoPreserved) {
  const FeatureArena d = make_small();
  EXPECT_EQ(d.column_info(2).name, "cat");
  EXPECT_TRUE(d.column_info(2).categorical);
  EXPECT_FALSE(d.column_info(0).categorical);
}

TEST(FeatureArena, AddRowRejectsWrongArity) {
  FeatureArena d({{"x", false}});
  const float two[] = {1.0F, 2.0F};
  EXPECT_THROW(d.add_row(two, false), std::invalid_argument);
}

TEST(FeatureArena, AtOutOfRangeThrows) {
  const FeatureArena d = make_small();
  EXPECT_THROW((void)d.at(4, 0), std::out_of_range);
  EXPECT_THROW((void)d.at(0, 3), std::out_of_range);
}

TEST(FeatureArena, GrowthBeyondCapacityPreservesData) {
  // Force repeated restrides from a zero-capacity arena and check the
  // column-major layout keeps every value and label intact.
  FeatureArena d({{"a", false}, {"b", false}});
  for (int i = 0; i < 100; ++i) {
    const float row[] = {static_cast<float>(i), static_cast<float>(10 * i)};
    d.add_row(row, i % 3 == 0);
  }
  ASSERT_EQ(d.n_rows(), 100U);
  const auto a = d.column(0);
  const auto b = d.column(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a[static_cast<std::size_t>(i)], static_cast<float>(i));
    EXPECT_EQ(b[static_cast<std::size_t>(i)], static_cast<float>(10 * i));
    EXPECT_EQ(d.label(static_cast<std::size_t>(i)) != 0, i % 3 == 0);
  }
  EXPECT_EQ(d.positives(), 34U);
}

TEST(FeatureArena, PresizedArenaKeepsColumnsContiguous) {
  // With the row count supplied up front the columns are laid out at
  // their final stride immediately: adjacent rows of one column are
  // adjacent floats.
  FeatureArena d({{"a", false}, {"b", false}}, 8);
  for (int i = 0; i < 8; ++i) {
    const float row[] = {static_cast<float>(i), 0.0F};
    d.add_row(row, false);
  }
  const auto a = d.column(0);
  EXPECT_EQ(&a[7], &a[0] + 7);
}

TEST(FeatureArena, MissingSentinelDetected) {
  EXPECT_TRUE(is_missing(kMissing));
  EXPECT_FALSE(is_missing(0.0F));
  EXPECT_FALSE(is_missing(-1e30F));
}

TEST(FeatureArena, EmptyDataset) {
  FeatureArena d;
  EXPECT_EQ(d.n_rows(), 0U);
  EXPECT_EQ(d.n_cols(), 0U);
}

}  // namespace
}  // namespace nevermind::ml
