#include "ml/binning.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ml/adaboost.hpp"
#include "ml/cross_validation.hpp"
#include "ml/metrics.hpp"
#include "util/rng.hpp"

namespace nevermind::ml {
namespace {

std::vector<double> uniform_weights(std::size_t n) {
  return std::vector<double>(n, 1.0 / static_cast<double>(n));
}

void expect_same_stump(const Stump& a, const Stump& b) {
  EXPECT_EQ(a.feature, b.feature);
  EXPECT_EQ(a.categorical, b.categorical);
  EXPECT_EQ(a.threshold, b.threshold);
  EXPECT_EQ(a.score_pass, b.score_pass);
  EXPECT_EQ(a.score_fail, b.score_fail);
  EXPECT_EQ(a.score_missing, b.score_missing);
}

TEST(BinnedColumns, LosslessWhenFewDistinctValues) {
  FeatureArena d({{"x", false}});
  // 5 distinct values with duplicates, plus missing rows.
  const float values[] = {3.0F, 1.0F, 3.0F, kMissing, 7.0F, 1.0F, 9.0F,
                          kMissing, 11.0F, 7.0F};
  for (float v : values) d.add_row({&v, 1}, false);
  const BinnedColumns bins(d);
  const auto& col = bins.column(0);
  EXPECT_FALSE(col.categorical);
  EXPECT_EQ(col.n_finite, 5);
  EXPECT_EQ(col.missing_code(), 5);
  // One bin per distinct value in ascending order; split thresholds are
  // the exact scan's midpoints between adjacent observed values.
  ASSERT_EQ(col.split_values.size(), 4U);
  EXPECT_EQ(col.split_values[0], 1.0F + (3.0F - 1.0F) * 0.5F);
  EXPECT_EQ(col.split_values[1], 3.0F + (7.0F - 3.0F) * 0.5F);
  EXPECT_EQ(col.split_values[2], 7.0F + (9.0F - 7.0F) * 0.5F);
  EXPECT_EQ(col.split_values[3], 9.0F + (11.0F - 9.0F) * 0.5F);
  const std::uint8_t expected[] = {1, 0, 1, 5, 2, 0, 3, 5, 4, 2};
  for (std::size_t r = 0; r < d.n_rows(); ++r) {
    EXPECT_EQ(col.codes[r], expected[r]) << "row " << r;
  }
}

TEST(BinnedColumns, QuantileEdgesWhenManyDistinctValues) {
  FeatureArena d({{"x", false}});
  util::Rng rng(7);
  for (int i = 0; i < 4000; ++i) {
    const float v = static_cast<float>(rng.uniform());
    d.add_row({&v, 1}, false);
  }
  const BinnedColumns bins(d);
  const auto& col = bins.column(0);
  EXPECT_LE(col.n_finite, 255);
  EXPECT_GE(col.n_finite, 200);  // ~uniform data fills the code space
  // Codes are monotone with the values and split thresholds separate
  // adjacent bins.
  const auto x = d.column(0);
  std::vector<std::size_t> bin_count(col.n_finite, 0);
  for (std::size_t r = 0; r < d.n_rows(); ++r) {
    ASSERT_LT(col.codes[r], col.n_finite);
    ++bin_count[col.codes[r]];
    const std::uint8_t c = col.codes[r];
    if (c > 0) {
      EXPECT_GE(x[r], col.split_values[c - 1]);
    }
    if (c + 1U < col.n_finite) {
      EXPECT_LT(x[r], col.split_values[c]);
    }
  }
  // Quantile edges keep the bins roughly balanced.
  const std::size_t expected = d.n_rows() / col.n_finite;
  for (std::size_t b = 0; b < bin_count.size(); ++b) {
    EXPECT_GE(bin_count[b], 1U);
    EXPECT_LE(bin_count[b], 4 * expected + 4);
  }
  for (std::size_t b = 0; b + 1 < col.split_values.size(); ++b) {
    EXPECT_LT(col.split_values[b], col.split_values[b + 1]);
  }
}

TEST(BinnedColumns, AllMissingColumn) {
  FeatureArena d({{"gone", false}, {"x", false}});
  for (int i = 0; i < 16; ++i) {
    const float row[2] = {kMissing, static_cast<float>(i % 4)};
    d.add_row(row, i % 2 == 0);
  }
  const BinnedColumns bins(d);
  const auto& gone = bins.column(0);
  EXPECT_EQ(gone.n_finite, 0);
  for (std::size_t r = 0; r < d.n_rows(); ++r) {
    EXPECT_EQ(gone.codes[r], gone.missing_code());
  }
  // The search still runs and simply never splits on the dead column.
  const auto weights = uniform_weights(d.n_rows());
  const auto best =
      find_best_stump_binned(bins, d.labels(), weights, {}, 0.01);
  EXPECT_EQ(best.stump.feature, 1U);
}

TEST(BinnedColumns, CategoricalGroupsInValueOrder) {
  FeatureArena d({{"color", true}});
  const float values[] = {2.0F, 0.0F, kMissing, 1.0F, 2.0F, 0.0F};
  for (float v : values) d.add_row({&v, 1}, false);
  const BinnedColumns bins(d);
  const auto& col = bins.column(0);
  EXPECT_TRUE(col.categorical);
  EXPECT_EQ(col.n_finite, 3);
  ASSERT_EQ(col.category_values.size(), 3U);
  EXPECT_EQ(col.category_values[0], 0.0F);
  EXPECT_EQ(col.category_values[1], 1.0F);
  EXPECT_EQ(col.category_values[2], 2.0F);
  const std::uint8_t expected[] = {2, 0, 3, 1, 2, 0};
  for (std::size_t r = 0; r < d.n_rows(); ++r) {
    EXPECT_EQ(col.codes[r], expected[r]);
  }
}

/// Mixed dataset whose every column has few distinct values, sized to a
/// power of two so uniform weights are dyadic and every weight sum is
/// exact in double — any accumulation order gives the same bits, making
/// "binned == exact" a strict equality check.
FeatureArena small_distinct_dataset() {
  FeatureArena d({{"a", false}, {"b", false}, {"c", true}});
  util::Rng rng(11);
  for (int i = 0; i < 256; ++i) {
    const float a = static_cast<float>(rng.uniform_index(17));
    const float b = rng.bernoulli(0.1)
                        ? kMissing
                        : static_cast<float>(rng.uniform_index(40)) * 0.25F;
    const float c = static_cast<float>(rng.uniform_index(5));
    const bool label =
        (a > 8.0F) != (c == 2.0F) ? rng.bernoulli(0.85) : rng.bernoulli(0.2);
    const float row[3] = {a, b, c};
    d.add_row(row, label);
  }
  return d;
}

TEST(BinnedSearch, IdenticalToExactOnSmallDistinctData) {
  const FeatureArena d = small_distinct_dataset();
  const auto weights = uniform_weights(d.n_rows());
  const SortedColumns sorted(d);
  const BinnedColumns bins(d);

  const StumpSearchResult exact =
      find_best_stump(d, sorted, weights, 0.01);
  const BinnedStumpResult binned =
      find_best_stump_binned(bins, d.labels(), weights, {}, 0.01);
  EXPECT_EQ(exact.z, binned.z);
  expect_same_stump(exact.stump, binned.stump);
}

TEST(BinnedTraining, MatchesExactStumpSequenceOnSmallDistinctData) {
  const FeatureArena d = small_distinct_dataset();
  BStumpConfig exact_cfg;
  exact_cfg.iterations = 25;
  BStumpConfig hist_cfg = exact_cfg;
  hist_cfg.binning = BinningMode::kHistogram;

  const BStumpModel exact = train_bstump(d, exact_cfg);
  const BStumpModel hist = train_bstump(d, hist_cfg);
  ASSERT_EQ(exact.stumps().size(), hist.stumps().size());
  for (std::size_t t = 0; t < exact.stumps().size(); ++t) {
    const Stump& a = exact.stumps()[t];
    const Stump& b = hist.stumps()[t];
    EXPECT_EQ(a.feature, b.feature) << "round " << t;
    EXPECT_EQ(a.categorical, b.categorical) << "round " << t;
    EXPECT_EQ(a.threshold, b.threshold) << "round " << t;
    EXPECT_NEAR(a.score_pass, b.score_pass, 1e-9) << "round " << t;
    EXPECT_NEAR(a.score_fail, b.score_fail, 1e-9) << "round " << t;
    EXPECT_NEAR(a.score_missing, b.score_missing, 1e-9) << "round " << t;
  }
}

/// Continuous features with far more than 256 distinct values, so the
/// histogram path genuinely quantizes. Labels follow a noisy linear
/// rule — the shape of the encoded ticket-predictor problem.
FeatureArena wide_continuous_dataset(std::uint64_t seed, int n) {
  FeatureArena d({{"f0", false}, {"f1", false}, {"f2", false}, {"f3", false},
             {"f4", false}, {"f5", false}});
  util::Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    float row[6];
    double margin = 0.0;
    for (int j = 0; j < 6; ++j) {
      row[j] = static_cast<float>(rng.normal());
      margin += (j % 2 == 0 ? 1.0 : -0.5) * row[j];
    }
    if (rng.bernoulli(0.05)) row[3] = kMissing;
    const bool label = margin + rng.normal() * 0.8 > 0.0;
    d.add_row(row, label);
  }
  return d;
}

TEST(BinnedTraining, AucParityOnQuantizedData) {
  const FeatureArena train = wide_continuous_dataset(21, 3000);
  const FeatureArena test = wide_continuous_dataset(22, 1500);
  BStumpConfig exact_cfg;
  exact_cfg.iterations = 80;
  BStumpConfig hist_cfg = exact_cfg;
  hist_cfg.binning = BinningMode::kHistogram;

  const double auc_exact =
      auc(train_bstump(train, exact_cfg).score_dataset(test), test.labels());
  const double auc_hist =
      auc(train_bstump(train, hist_cfg).score_dataset(test), test.labels());
  EXPECT_GT(auc_exact, 0.8);  // the problem is learnable
  EXPECT_NEAR(auc_exact, auc_hist, 0.005);
}

TEST(BinnedTraining, ByteIdenticalAcrossThreadCounts) {
  const FeatureArena train = wide_continuous_dataset(31, 2000);
  BStumpConfig serial_cfg;
  serial_cfg.iterations = 40;
  serial_cfg.binning = BinningMode::kHistogram;
  BStumpConfig parallel_cfg = serial_cfg;
  parallel_cfg.exec = exec::ExecContext(8);

  const BStumpModel serial = train_bstump(train, serial_cfg);
  const BStumpModel parallel = train_bstump(train, parallel_cfg);
  ASSERT_EQ(serial.stumps().size(), parallel.stumps().size());
  for (std::size_t t = 0; t < serial.stumps().size(); ++t) {
    expect_same_stump(serial.stumps()[t], parallel.stumps()[t]);
  }
}

TEST(BinnedTraining, RowSubsetsShareOneBinnedMatrix) {
  const FeatureArena d = wide_continuous_dataset(41, 2000);
  BStumpConfig cfg;
  cfg.iterations = 30;
  cfg.binning = BinningMode::kHistogram;
  const TrainCache cache = make_train_cache(d, cfg);

  std::vector<std::uint32_t> odd_rows;
  for (std::uint32_t r = 1; r < d.n_rows(); r += 2) odd_rows.push_back(r);

  const BStumpModel subset =
      train_bstump_cached(d, cache, d.labels(), odd_rows, cfg);
  ASSERT_FALSE(subset.empty());

  // Subset training is deterministic across thread counts too.
  BStumpConfig parallel_cfg = cfg;
  parallel_cfg.exec = exec::ExecContext(8);
  const BStumpModel subset_mt =
      train_bstump_cached(d, cache, d.labels(), odd_rows, parallel_cfg);
  ASSERT_EQ(subset.stumps().size(), subset_mt.stumps().size());
  for (std::size_t t = 0; t < subset.stumps().size(); ++t) {
    expect_same_stump(subset.stumps()[t], subset_mt.stumps()[t]);
  }

  // And the held-out half is predicted well by the odd-row model.
  std::vector<std::size_t> even_rows;
  for (std::size_t r = 0; r < d.n_rows(); r += 2) even_rows.push_back(r);
  const DatasetView held_out = DatasetView(d).rows(even_rows);
  EXPECT_GT(auc(subset.score_dataset(held_out), held_out.labels_copy()), 0.75);
}

TEST(BinnedTraining, RoundsSelectionSharesBins) {
  const FeatureArena d = wide_continuous_dataset(51, 1200);
  BStumpConfig boost;
  boost.binning = BinningMode::kHistogram;
  const std::size_t candidates[] = {5, 20, 40};
  const auto picked = select_boosting_rounds(d, candidates, 120, 3,
                                             exec::ExecContext::serial(), boost);
  EXPECT_TRUE(picked.best_rounds == 5 || picked.best_rounds == 20 ||
              picked.best_rounds == 40);
  ASSERT_EQ(picked.metric_per_candidate.size(), 3U);
  for (double m : picked.metric_per_candidate) {
    EXPECT_TRUE(std::isfinite(m));
    EXPECT_GE(m, 0.0);
  }
  // Fold training through shared bins is deterministic: a parallel
  // context reproduces the serial selection byte for byte.
  const auto parallel =
      select_boosting_rounds(d, candidates, 120, 3, exec::ExecContext(8), boost);
  EXPECT_EQ(picked.best_rounds, parallel.best_rounds);
  ASSERT_EQ(parallel.metric_per_candidate.size(), 3U);
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(picked.metric_per_candidate[c], parallel.metric_per_candidate[c]);
  }
}

TEST(BinnedTraining, CachedExactPathMatchesPlainTraining) {
  const FeatureArena d = small_distinct_dataset();
  BStumpConfig cfg;
  cfg.iterations = 15;
  const TrainCache cache = make_train_cache(d, cfg);
  const BStumpModel plain = train_bstump(d, cfg);
  const BStumpModel cached =
      train_bstump_cached(d, cache, d.labels(), {}, cfg);
  ASSERT_EQ(plain.stumps().size(), cached.stumps().size());
  for (std::size_t t = 0; t < plain.stumps().size(); ++t) {
    expect_same_stump(plain.stumps()[t], cached.stumps()[t]);
  }
  // Exact path rejects row subsets — they need the histogram path.
  const std::uint32_t rows[] = {0, 1, 2};
  EXPECT_THROW((void)train_bstump_cached(d, cache, d.labels(), rows, cfg),
               std::invalid_argument);
}

}  // namespace
}  // namespace nevermind::ml
