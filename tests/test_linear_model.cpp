#include "ml/linear_model.hpp"

#include <gtest/gtest.h>

#include "ml/adaboost.hpp"
#include "ml/metrics.hpp"
#include "util/rng.hpp"

namespace nevermind::ml {
namespace {

FeatureArena make_linear_problem(std::size_t n, util::Rng& rng) {
  FeatureArena d({{"a", false}, {"b", false}, {"noise", false}});
  for (std::size_t i = 0; i < n; ++i) {
    const bool y = rng.bernoulli(0.3);
    const float row[3] = {static_cast<float>(rng.normal(y ? 1.0 : 0.0, 1.0)),
                          static_cast<float>(rng.normal(y ? -0.8 : 0.0, 1.0)),
                          static_cast<float>(rng.normal())};
    d.add_row(row, y);
  }
  return d;
}

TEST(LinearModel, LearnsLinearlySeparableDirection) {
  util::Rng rng(1);
  const FeatureArena train = make_linear_problem(4000, rng);
  const FeatureArena test = make_linear_problem(2000, rng);
  const LinearModel model = train_linear_model(train);
  EXPECT_FALSE(model.empty());
  EXPECT_GT(auc(model.score_dataset(test), test.labels()), 0.75);
}

TEST(LinearModel, ScoreDatasetMatchesScoreFeatures) {
  util::Rng rng(2);
  const FeatureArena d = make_linear_problem(500, rng);
  const LinearModel model = train_linear_model(d);
  const auto scores = model.score_dataset(d);
  std::vector<float> row(3);
  for (std::size_t r = 0; r < d.n_rows(); r += 29) {
    for (std::size_t j = 0; j < 3; ++j) row[j] = d.at(r, j);
    EXPECT_NEAR(scores[r], model.score_features(row), 1e-9);
  }
}

TEST(LinearModel, MissingValuesImputeToMean) {
  util::Rng rng(3);
  FeatureArena d({{"x", false}});
  for (int i = 0; i < 1000; ++i) {
    const bool y = rng.bernoulli(0.5);
    const float x = static_cast<float>(rng.normal(y ? 1.0 : -1.0, 0.5));
    d.add_row({&x, 1}, y);
  }
  const LinearModel model = train_linear_model(d);
  // A missing value standardizes to 0 (the mean): the score must equal
  // the intercept alone.
  const float missing = kMissing;
  EXPECT_NEAR(model.score_features({&missing, 1}),
              model.logistic().coefficients[0], 1e-9);
}

TEST(LinearModel, ProbabilityInUnitInterval) {
  util::Rng rng(4);
  const FeatureArena d = make_linear_problem(800, rng);
  const LinearModel model = train_linear_model(d);
  std::vector<float> row(3);
  for (int trial = 0; trial < 50; ++trial) {
    for (auto& v : row) v = static_cast<float>(rng.normal(0.0, 3.0));
    const double p = model.probability(row);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(LinearModel, EmptyDatasetSafe) {
  const FeatureArena d({{"x", false}});
  const LinearModel model = train_linear_model(d);
  EXPECT_TRUE(model.empty());
  const float x = 1.0F;
  EXPECT_EQ(model.score_features({&x, 1}), 0.0);
}

TEST(LinearModel, RidgeShrinksCoefficients) {
  util::Rng rng(5);
  const FeatureArena d = make_linear_problem(2000, rng);
  LinearModelConfig weak;
  weak.ridge = 0.01;
  LinearModelConfig strong;
  strong.ridge = 500.0;
  const LinearModel loose = train_linear_model(d, weak);
  const LinearModel tight = train_linear_model(d, strong);
  EXPECT_LT(std::fabs(tight.logistic().coefficients[1]),
            std::fabs(loose.logistic().coefficients[1]));
}

TEST(LinearModel, CannotExpressThresholdInteractionsAsWellAsStumps) {
  // Motivation for BStump over plain logistic regression: a response
  // driven by a sharp threshold with both-side noise favors stumps.
  util::Rng rng(6);
  FeatureArena train({{"x", false}});
  FeatureArena test({{"x", false}});
  for (int i = 0; i < 6000; ++i) {
    const float x = static_cast<float>(rng.normal(0.0, 2.0));
    // Positive only inside a band — non-monotone in x.
    const bool y = x > -0.5F && x < 0.5F;
    (i % 2 == 0 ? train : test).add_row({&x, 1}, y);
  }
  const LinearModel linear = train_linear_model(train);
  BStumpConfig cfg;
  cfg.iterations = 20;
  const BStumpModel stumps = train_bstump(train, cfg);
  EXPECT_GT(auc(stumps.score_dataset(test), test.labels()),
            auc(linear.score_dataset(test), test.labels()) + 0.2);
}

}  // namespace
}  // namespace nevermind::ml
