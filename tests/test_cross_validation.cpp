#include "ml/cross_validation.hpp"

#include <gtest/gtest.h>

#include <set>

#include "ml/metrics.hpp"
#include "util/rng.hpp"

namespace nevermind::ml {
namespace {

TEST(MakeFolds, PartitionsRows) {
  const auto folds = make_folds(100, 4);
  ASSERT_EQ(folds.size(), 4U);
  std::set<std::size_t> seen;
  for (const auto& fold : folds) {
    EXPECT_EQ(fold.train_rows.size() + fold.validation_rows.size(), 100U);
    for (std::size_t r : fold.validation_rows) {
      EXPECT_TRUE(seen.insert(r).second) << "row validated twice";
    }
  }
  EXPECT_EQ(seen.size(), 100U);
}

TEST(MakeFolds, BalancedSizes) {
  const auto folds = make_folds(100, 4);
  for (const auto& fold : folds) {
    EXPECT_EQ(fold.validation_rows.size(), 25U);
  }
}

TEST(MakeFolds, ContiguousBlocks) {
  const auto folds = make_folds(90, 3);
  // Block folds: validation rows are consecutive.
  for (const auto& fold : folds) {
    for (std::size_t i = 1; i < fold.validation_rows.size(); ++i) {
      EXPECT_EQ(fold.validation_rows[i], fold.validation_rows[i - 1] + 1);
    }
  }
}

TEST(MakeFolds, ClampsDegenerateK) {
  EXPECT_EQ(make_folds(10, 0).size(), 2U);
  EXPECT_EQ(make_folds(10, 1).size(), 2U);
  EXPECT_EQ(make_folds(3, 50).size(), 3U);
}

TEST(CrossValidate, AveragesMetricAcrossFolds) {
  FeatureArena d({{"x", false}});
  util::Rng rng(1);
  for (int i = 0; i < 300; ++i) {
    const bool y = rng.bernoulli(0.5);
    const float x = static_cast<float>(rng.normal(y ? 1.0 : -1.0, 0.5));
    d.add_row({&x, 1}, y);
  }
  const double metric = cross_validate(
      d, 3, [](const DatasetView& train, const DatasetView& validation) {
        BStumpConfig cfg;
        cfg.iterations = 10;
        const auto model = train_bstump(train, cfg);
        return auc(model.score_dataset(validation), validation.labels_copy());
      });
  EXPECT_GT(metric, 0.9);
}

TEST(CrossValidate, EmptyDatasetIsZero) {
  FeatureArena d({{"x", false}});
  const double metric =
      cross_validate(d, 3, [](const DatasetView&, const DatasetView&) { return 1.0; });
  EXPECT_EQ(metric, 0.0);
}

TEST(SelectBoostingRounds, PrefersEnoughRounds) {
  // A problem needing several complementary stumps: more rounds help up
  // to saturation; the selector must not pick the tiny candidate.
  util::Rng rng(2);
  FeatureArena d({{"a", false}, {"b", false}, {"c", false}});
  for (int i = 0; i < 4000; ++i) {
    const bool y = rng.bernoulli(0.2);
    const float row[3] = {
        static_cast<float>(rng.normal(y ? 0.7 : 0.0, 1.0)),
        static_cast<float>(rng.normal(y ? 0.6 : 0.0, 1.0)),
        static_cast<float>(rng.normal(y ? 0.5 : 0.0, 1.0))};
    d.add_row(row, y);
  }
  const std::size_t candidates[] = {1, 8, 40};
  const auto sel = select_boosting_rounds(d, candidates, 200, 3);
  EXPECT_NE(sel.best_rounds, 1U);
  ASSERT_EQ(sel.metric_per_candidate.size(), 3U);
  EXPECT_GT(sel.metric_per_candidate[2], sel.metric_per_candidate[0]);
}

TEST(SelectBoostingRounds, EmptyCandidatesSafe) {
  FeatureArena d({{"x", false}});
  const auto sel = select_boosting_rounds(d, {}, 10, 3);
  EXPECT_EQ(sel.best_rounds, 0U);
  EXPECT_TRUE(sel.metric_per_candidate.empty());
}

TEST(SelectBoostingRounds, MetricsAreAveraged) {
  util::Rng rng(3);
  FeatureArena d({{"x", false}});
  for (int i = 0; i < 600; ++i) {
    const bool y = rng.bernoulli(0.3);
    const float x = static_cast<float>(rng.normal(y ? 1.0 : 0.0, 1.0));
    d.add_row({&x, 1}, y);
  }
  const std::size_t candidates[] = {5, 20};
  const auto sel = select_boosting_rounds(d, candidates, 50, 4);
  for (double m : sel.metric_per_candidate) {
    EXPECT_GE(m, 0.0);
    EXPECT_LE(m, 1.0);
  }
}

}  // namespace
}  // namespace nevermind::ml
