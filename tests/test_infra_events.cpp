// Correlated infrastructure faults: scheduled shared-plant events
// (DSLAM outages, crossbox/F1 degradations, weather bursts, staged
// firmware rollouts) injected through the Topology/FaultLocation
// machinery. These tests pin the contract the spatial layer builds on:
// events are deterministic under the seed/thread contract, they scope
// to exactly the plant subtree they claim, and a default config stays
// bit-identical to a simulation that has never heard of them.
#include <cstring>
#include <gtest/gtest.h>

#include "dslsim/simulator.hpp"
#include "exec/exec.hpp"
#include "util/calendar.hpp"

namespace nevermind::dslsim {
namespace {

bool same_metrics(const MetricVector& a, const MetricVector& b) {
  // Bytewise: missing metrics are NaN, which == would treat as unequal.
  return std::memcmp(a.data(), b.data(),
                     sizeof(float) * kNumLineMetrics) == 0;
}

bool same_events(const std::vector<InfraEvent>& a,
                 const std::vector<InfraEvent>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].kind != b[i].kind || a[i].scope != b[i].scope ||
        a[i].start != b[i].start || a[i].end != b[i].end ||
        a[i].severity != b[i].severity ||
        a[i].location != b[i].location) {
      return false;
    }
  }
  return true;
}

SimConfig event_config() {
  SimConfig cfg;
  cfg.seed = 99;
  cfg.topology.n_lines = 800;
  cfg.infra.dslam_outages_per_dslam_year = 1.2;
  cfg.infra.crossbox_events_per_crossbox_year = 0.4;
  cfg.infra.weather_bursts_per_region_year = 2.0;
  cfg.infra.firmware_rollout_start = util::day_from_date(5, 1);
  return cfg;
}

TEST(InfraEvents, DefaultConfigIsInert) {
  SimConfig cfg;
  cfg.seed = 7;
  cfg.topology.n_lines = 200;
  const SimDataset data = Simulator(cfg).run();
  EXPECT_TRUE(data.infra_events().empty());
  for (LineId u = 0; u < data.n_lines(); ++u) {
    EXPECT_FALSE(data.infra_active(u, 180));
  }
}

TEST(InfraEvents, DeterministicAcrossThreadCounts) {
  const SimConfig cfg = event_config();
  const SimDataset serial = Simulator(cfg).run(exec::ExecContext());
  const SimDataset threaded = Simulator(cfg).run(exec::ExecContext(8));
  ASSERT_FALSE(serial.infra_events().empty());
  EXPECT_TRUE(same_events(serial.infra_events(), threaded.infra_events()));
  ASSERT_EQ(serial.tickets().size(), threaded.tickets().size());
  for (int week : {10, 25, 40}) {
    for (LineId u = 0; u < serial.n_lines(); ++u) {
      ASSERT_TRUE(same_metrics(serial.measurement(week, u),
                               threaded.measurement(week, u)))
          << "week " << week << " line " << u;
    }
  }
}

TEST(InfraEvents, RerunIsBitIdentical) {
  const SimConfig cfg = event_config();
  const SimDataset a = Simulator(cfg).run();
  const SimDataset b = Simulator(cfg).run();
  EXPECT_TRUE(same_events(a.infra_events(), b.infra_events()));
  EXPECT_EQ(a.tickets().size(), b.tickets().size());
}

TEST(InfraEvents, ScriptedDslamOutageScopesToItsSubtree) {
  SimConfig base;
  base.seed = 31;
  base.topology.n_lines = 600;

  SimConfig scripted = base;
  const util::Day start = util::saturday_of_week(30) - 1;
  scripted.scripted_infra.push_back(
      {InfraEventKind::kDslamOutage, 1, start, start + 4, 1.5F});

  const SimDataset control = Simulator(base).run();
  const SimDataset outage = Simulator(scripted).run();
  ASSERT_EQ(outage.infra_events().size(), 1U);
  const auto& topo = outage.topology();

  bool affected_changed = false;
  for (int week = 0; week < outage.n_weeks(); ++week) {
    for (LineId u = 0; u < outage.n_lines(); ++u) {
      const bool in_scope = topo.dslam_of(u) == 1;
      const bool identical = same_metrics(control.measurement(week, u),
                                          outage.measurement(week, u));
      if (!in_scope) {
        // Everything outside the event's subtree is byte-identical to
        // the control run — the event consumed no shared randomness.
        ASSERT_TRUE(identical) << "week " << week << " line " << u;
      } else if (!identical) {
        affected_changed = true;
        // The covered Saturday is week 30; rolling counters (cell
        // counts) legitimately carry the perturbation forward, so
        // later weeks may differ too — but never earlier ones.
        EXPECT_GE(week, 30) << "line " << u;
      }
    }
  }
  EXPECT_TRUE(affected_changed);

  for (LineId u = 0; u < outage.n_lines(); ++u) {
    EXPECT_EQ(outage.infra_active(u, start + 1), topo.dslam_of(u) == 1)
        << "line " << u;
  }
}

TEST(InfraEvents, CrossboxEventScopesToItsCrossbox) {
  SimConfig cfg;
  cfg.seed = 32;
  cfg.topology.n_lines = 600;
  const util::Day start = util::saturday_of_week(20) - 12;
  cfg.scripted_infra.push_back(
      {InfraEventKind::kCrossboxDegradation, 5, start, start + 30, 1.2F});
  const SimDataset data = Simulator(cfg).run();
  ASSERT_EQ(data.infra_events().size(), 1U);
  EXPECT_EQ(data.infra_events()[0].location, MajorLocation::kF1);
  const auto& topo = data.topology();
  std::size_t in_scope = 0;
  for (LineId u = 0; u < data.n_lines(); ++u) {
    const bool active = data.infra_active(u, start + 13);
    EXPECT_EQ(active, topo.crossbox_of(u) == 5) << "line " << u;
    in_scope += active ? 1 : 0;
  }
  EXPECT_GT(in_scope, 0U);
  EXPECT_LT(in_scope, data.n_lines());
}

TEST(InfraEvents, OutOfRangeScriptedScopeIsDropped) {
  SimConfig cfg;
  cfg.seed = 33;
  cfg.topology.n_lines = 200;
  cfg.scripted_infra.push_back(
      {InfraEventKind::kDslamOutage, 10'000, 100, 104, 1.0F});
  const SimDataset data = Simulator(cfg).run();
  EXPECT_TRUE(data.infra_events().empty());
}

TEST(InfraEvents, EventsGenerateTicketsInTheirWindow) {
  // A hard multi-day DSLAM outage over hundreds of lines should make
  // at least some customers call; every such ticket must be reported
  // inside the event window and dispatched to the event's location.
  SimConfig base;
  base.seed = 34;
  base.topology.n_lines = 800;
  SimConfig scripted = base;
  const util::Day start = util::saturday_of_week(26) - 2;
  scripted.scripted_infra.push_back(
      {InfraEventKind::kDslamOutage, 0, start, start + 6, 2.0F});
  const SimDataset control = Simulator(base).run();
  const SimDataset outage = Simulator(scripted).run();
  EXPECT_GT(outage.tickets().size(), control.tickets().size());
}

}  // namespace
}  // namespace nevermind::dslsim
