#include "core/atds.hpp"

#include <gtest/gtest.h>

namespace nevermind::core {
namespace {

class AtdsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dslsim::SimConfig cfg;
    cfg.seed = 41;
    cfg.topology.n_lines = 5000;
    data_ = new dslsim::SimDataset(dslsim::Simulator(cfg).run());

    PredictorConfig pcfg;
    pcfg.top_n = 50;
    pcfg.boost_iterations = 80;
    pcfg.use_derived_features = false;
    predictor_ = new TicketPredictor(pcfg);
    predictor_->train(*data_, 30, 38);

    LocatorConfig lcfg;
    lcfg.min_occurrences = 8;
    lcfg.boost_iterations = 40;
    locator_ = new TroubleLocator(lcfg);
    locator_->train(*data_, 20, 38);

    predictions_ = new std::vector<Prediction>(
        predictor_->predict_week(*data_, 43));
  }
  static void TearDownTestSuite() {
    delete predictions_;
    delete locator_;
    delete predictor_;
    delete data_;
    predictions_ = nullptr;
    locator_ = nullptr;
    predictor_ = nullptr;
    data_ = nullptr;
  }
  static const dslsim::SimDataset* data_;
  static TicketPredictor* predictor_;
  static TroubleLocator* locator_;
  static std::vector<Prediction>* predictions_;
};

const dslsim::SimDataset* AtdsTest::data_ = nullptr;
TicketPredictor* AtdsTest::predictor_ = nullptr;
TroubleLocator* AtdsTest::locator_ = nullptr;
std::vector<Prediction>* AtdsTest::predictions_ = nullptr;

TEST_F(AtdsTest, RespectsCapacity) {
  AtdsConfig cfg;
  cfg.weekly_capacity = 25;
  const auto report =
      run_proactive_week(*data_, *predictions_, *locator_, cfg, 43);
  EXPECT_EQ(report.submitted, 25U);
  EXPECT_EQ(report.week, 43);
}

TEST_F(AtdsTest, CountsAreConsistent) {
  AtdsConfig cfg;
  cfg.weekly_capacity = 50;
  const auto report =
      run_proactive_week(*data_, *predictions_, *locator_, cfg, 43);
  EXPECT_EQ(report.with_live_fault + report.clean_dispatches,
            report.submitted);
  EXPECT_LE(report.tickets_prevented + report.silent_fixed,
            report.with_live_fault);
  EXPECT_LE(report.would_ticket, report.submitted);
}

TEST_F(AtdsTest, FindsFaultsWellAboveBaseRate) {
  AtdsConfig cfg;
  cfg.weekly_capacity = 50;
  const auto report =
      run_proactive_week(*data_, *predictions_, *locator_, cfg, 43);
  // Top-ranked lines should mostly have live faults.
  EXPECT_GT(report.with_live_fault, report.submitted / 3);
}

TEST_F(AtdsTest, LocatorSavesDispatchTime) {
  AtdsConfig cfg;
  cfg.weekly_capacity = 50;
  const auto report =
      run_proactive_week(*data_, *predictions_, *locator_, cfg, 43);
  EXPECT_GT(report.locator_minutes, 0.0);
  EXPECT_LE(report.locator_minutes, report.experience_minutes * 1.05);
}

TEST_F(AtdsTest, EmptyPredictionsYieldEmptyReport) {
  AtdsConfig cfg;
  const auto report = run_proactive_week(*data_, {}, *locator_, cfg, 43);
  EXPECT_EQ(report.submitted, 0U);
  EXPECT_EQ(report.locator_minutes, 0.0);
}

TEST_F(AtdsTest, MoreCapacityFindsMoreFaultsAtLowerPrecision) {
  AtdsConfig small;
  small.weekly_capacity = 20;
  AtdsConfig large;
  large.weekly_capacity = 200;
  const auto rs = run_proactive_week(*data_, *predictions_, *locator_, small, 43);
  const auto rl = run_proactive_week(*data_, *predictions_, *locator_, large, 43);
  EXPECT_GE(rl.with_live_fault, rs.with_live_fault);
  const double prec_small = static_cast<double>(rs.would_ticket) /
                            static_cast<double>(rs.submitted);
  const double prec_large = static_cast<double>(rl.would_ticket) /
                            static_cast<double>(rl.submitted);
  EXPECT_GE(prec_small, prec_large - 0.1);
}

TEST_F(AtdsTest, FasterFixPreventsMoreTickets) {
  AtdsConfig fast;
  fast.weekly_capacity = 100;
  fast.days_to_fix = 1;
  AtdsConfig slow = fast;
  slow.days_to_fix = 10;
  const auto rf = run_proactive_week(*data_, *predictions_, *locator_, fast, 43);
  const auto rs = run_proactive_week(*data_, *predictions_, *locator_, slow, 43);
  EXPECT_GE(rf.tickets_prevented, rs.tickets_prevented);
}

}  // namespace
}  // namespace nevermind::core
