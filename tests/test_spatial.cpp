// Spatial localization: per-line anomaly evidence aggregated up the
// line -> crossbox -> DSLAM -> ATM hierarchy into network-vs-premise
// verdicts. Covers the single shared evaluate_line implementation, the
// group verdict logic against scripted shared-plant events, and the
// offline (SimDataset walk) vs online (LineStateStore snapshot) parity
// the serving layer depends on.
#include "spatial/aggregator.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "dslsim/simulator.hpp"
#include "serve/line_state_store.hpp"
#include "serve/replay.hpp"
#include "util/calendar.hpp"

namespace nevermind::spatial {
namespace {

using dslsim::LineMetric;
using dslsim::MetricVector;

/// A healthy, fully present Saturday record with mild per-week wobble.
MetricVector healthy_record(int week) {
  MetricVector m{};
  m.fill(0.0F);
  const float wobble = (week % 2 == 0) ? 0.5F : -0.5F;
  m[static_cast<std::size_t>(LineMetric::kState)] = 1.0F;
  m[static_cast<std::size_t>(LineMetric::kDnBitRate)] = 6000.0F + wobble;
  m[static_cast<std::size_t>(LineMetric::kUpBitRate)] = 800.0F + wobble;
  m[static_cast<std::size_t>(LineMetric::kDnNoiseMargin)] = 12.0F + wobble;
  m[static_cast<std::size_t>(LineMetric::kUpNoiseMargin)] = 11.0F + wobble;
  m[static_cast<std::size_t>(LineMetric::kDnAttenuation)] = 30.0F + wobble;
  m[static_cast<std::size_t>(LineMetric::kUpAttenuation)] = 18.0F + wobble;
  m[static_cast<std::size_t>(LineMetric::kDnCvCnt1)] = 4.0F + wobble;
  m[static_cast<std::size_t>(LineMetric::kDnEsCnt1)] = 2.0F + wobble;
  m[static_cast<std::size_t>(LineMetric::kDnFecCnt1)] = 10.0F + wobble;
  m[static_cast<std::size_t>(LineMetric::kDnRelCap)] = 80.0F + wobble;
  m[static_cast<std::size_t>(LineMetric::kUpRelCap)] = 78.0F + wobble;
  m[static_cast<std::size_t>(LineMetric::kDnMaxAttainBr)] = 7000.0F + wobble;
  m[static_cast<std::size_t>(LineMetric::kUpMaxAttainBr)] = 900.0F + wobble;
  return m;
}

MetricVector modem_off_record() {
  MetricVector m{};
  m.fill(std::numeric_limits<float>::quiet_NaN());
  m[static_cast<std::size_t>(LineMetric::kState)] = 0.0F;
  return m;
}

features::LineWindow history_of(int weeks, int off_weeks = 0) {
  features::LineWindow window;
  for (int w = 0; w < weeks; ++w) window.update(healthy_record(w));
  for (int w = 0; w < off_weeks; ++w) window.update(modem_off_record());
  return window;
}

TEST(EvaluateLine, StableLineIsNotAnomalous) {
  const auto window = history_of(10);
  const auto evidence =
      evaluate_line(window, healthy_record(10), SpatialConfig{});
  EXPECT_TRUE(evidence.evaluated);
  EXPECT_FALSE(evidence.anomalous);
  EXPECT_FALSE(evidence.missing);
}

TEST(EvaluateLine, InsufficientHistoryIsNotEvaluated) {
  const auto window = history_of(2);  // below min_history_weeks = 4
  MetricVector bad = healthy_record(2);
  bad[static_cast<std::size_t>(LineMetric::kDnCvCnt1)] = 500.0F;
  const auto evidence = evaluate_line(window, bad, SpatialConfig{});
  EXPECT_FALSE(evidence.evaluated);
  EXPECT_FALSE(evidence.anomalous);
}

TEST(EvaluateLine, BadDirectionSpikeIsAnomalous) {
  const auto window = history_of(10);
  MetricVector bad = healthy_record(10);
  bad[static_cast<std::size_t>(LineMetric::kDnCvCnt1)] = 500.0F;
  const auto evidence = evaluate_line(window, bad, SpatialConfig{});
  EXPECT_TRUE(evidence.evaluated);
  EXPECT_TRUE(evidence.anomalous);
  EXPECT_GT(evidence.anomaly, 3.0F);
}

TEST(EvaluateLine, GoodDirectionSpikeIsNotAnomalous) {
  // A big move in the *good* direction (bit rate way up, error counts
  // way down) is not a problem signal.
  const auto window = history_of(10);
  MetricVector good = healthy_record(10);
  good[static_cast<std::size_t>(LineMetric::kDnBitRate)] = 20000.0F;
  good[static_cast<std::size_t>(LineMetric::kDnCvCnt1)] = 0.0F;
  const auto evidence = evaluate_line(window, good, SpatialConfig{});
  EXPECT_TRUE(evidence.evaluated);
  EXPECT_FALSE(evidence.anomalous);
}

TEST(EvaluateLine, UnreachableUsuallyReachableModemIsAnomalous) {
  const auto window = history_of(10);  // never off before
  const auto evidence =
      evaluate_line(window, modem_off_record(), SpatialConfig{});
  EXPECT_TRUE(evidence.evaluated);
  EXPECT_TRUE(evidence.anomalous);
  EXPECT_TRUE(evidence.missing);
}

TEST(EvaluateLine, ChronicallyOffModemIsNotAnomalous) {
  // Half the history is modem-off: unreachability is this line's
  // normal, not evidence of a fresh network event. Such a line carries
  // no information this week, so it is excluded from evaluation
  // entirely (`missing` is reserved for usually-reachable lines).
  const auto window = history_of(6, 6);
  const auto evidence =
      evaluate_line(window, modem_off_record(), SpatialConfig{});
  EXPECT_FALSE(evidence.evaluated);
  EXPECT_FALSE(evidence.anomalous);
  EXPECT_FALSE(evidence.missing);
}

class SpatialSimTest : public ::testing::Test {
 protected:
  static constexpr int kEventWeek = 30;

  static void SetUpTestSuite() {
    dslsim::SimConfig cfg;
    cfg.seed = 55;
    cfg.topology.n_lines = 1200;
    const util::Day day = util::saturday_of_week(kEventWeek);
    cfg.scripted_infra.push_back(
        {dslsim::InfraEventKind::kDslamOutage, 2, day - 1, day + 3, 1.5F});
    cfg.scripted_infra.push_back({dslsim::InfraEventKind::kCrossboxDegradation,
                                  1, day - 20, day + 8, 1.4F});
    data_ = new dslsim::SimDataset(dslsim::Simulator(cfg).run());
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }

  static const dslsim::SimDataset* data_;
};

const dslsim::SimDataset* SpatialSimTest::data_ = nullptr;

TEST_F(SpatialSimTest, FlagsScriptedEventsAsNetworkSide) {
  const SpatialAggregator aggregator(data_->topology());
  const auto report = aggregator.analyze_week(*data_, kEventWeek);

  bool dslam2_flagged = false;
  for (const auto& f : report.network_findings) {
    if (f.scope == GroupScope::kDslam && f.id == 2) dslam2_flagged = true;
  }
  EXPECT_TRUE(dslam2_flagged);
  bool crossbox1_flagged = false;
  for (const auto& f : report.network_findings) {
    if (f.scope == GroupScope::kCrossbox && f.id == 1) {
      crossbox1_flagged = true;
    }
  }
  EXPECT_TRUE(crossbox1_flagged);

  // Most lines under the dead DSLAM carry a network verdict...
  const auto& topo = data_->topology();
  std::size_t network = 0, total = 0;
  for (dslsim::LineId u = 0; u < data_->n_lines(); ++u) {
    if (topo.dslam_of(u) != 2) continue;
    ++total;
    network += report.verdicts[u] == LineVerdict::kNetwork ? 1 : 0;
  }
  ASSERT_GT(total, 0U);
  EXPECT_GT(network * 2, total);

  // ...and the findings are ranked by confidence.
  for (std::size_t i = 1; i < report.network_findings.size(); ++i) {
    EXPECT_GE(report.network_findings[i - 1].confidence,
              report.network_findings[i].confidence);
  }
}

TEST_F(SpatialSimTest, QuietWeekHasNoDslamFinding) {
  const SpatialAggregator aggregator(data_->topology());
  const auto report = aggregator.analyze_week(*data_, 20);
  for (const auto& f : report.network_findings) {
    EXPECT_FALSE(f.scope == GroupScope::kDslam && f.id == 2)
        << "DSLAM 2 flagged 10 weeks before its outage";
  }
}

TEST_F(SpatialSimTest, OfflineAndStoreFedReportsAgree) {
  const SpatialAggregator aggregator(data_->topology());
  const auto offline = aggregator.analyze_week(*data_, kEventWeek);

  serve::LineStateStore store(8);
  serve::ReplayDriver replay(*data_, store);
  replay.feed_through(kEventWeek);
  const auto online = aggregator.analyze_store(store);

  ASSERT_EQ(online.week, offline.week);
  ASSERT_EQ(online.verdicts.size(), offline.verdicts.size());
  for (std::size_t u = 0; u < offline.verdicts.size(); ++u) {
    ASSERT_EQ(online.verdicts[u], offline.verdicts[u]) << "line " << u;
    ASSERT_EQ(online.line_confidence[u], offline.line_confidence[u])
        << "line " << u;
    ASSERT_EQ(online.lines[u].anomaly, offline.lines[u].anomaly)
        << "line " << u;
  }
  EXPECT_EQ(online.baseline_rate, offline.baseline_rate);
  EXPECT_EQ(online.evaluated, offline.evaluated);
  EXPECT_EQ(online.anomalous_lines, offline.anomalous_lines);
  ASSERT_EQ(online.network_findings.size(), offline.network_findings.size());
  for (std::size_t i = 0; i < offline.network_findings.size(); ++i) {
    const auto& a = online.network_findings[i];
    const auto& b = offline.network_findings[i];
    EXPECT_EQ(a.scope, b.scope);
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.zscore, b.zscore);
    EXPECT_EQ(a.confidence, b.confidence);
  }
}

TEST_F(SpatialSimTest, LocatorPriorsLiftConfidence) {
  const SpatialAggregator aggregator(data_->topology());
  const auto plain = aggregator.analyze_week(*data_, kEventWeek);
  // Feed a uniform strong "network" prior: flagged-group confidence
  // blends it in, so every finding's confidence must not decrease.
  const std::vector<float> priors(data_->n_lines(), 1.0F);
  const auto primed = aggregator.analyze_week(*data_, kEventWeek, priors);
  ASSERT_EQ(primed.network_findings.size(), plain.network_findings.size());
  for (std::size_t i = 0; i < plain.network_findings.size(); ++i) {
    EXPECT_GE(primed.network_findings[i].confidence,
              plain.network_findings[i].confidence - 1e-9);
  }
}

}  // namespace
}  // namespace nevermind::spatial
