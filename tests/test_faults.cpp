#include "dslsim/faults.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace nevermind::dslsim {
namespace {

TEST(FaultCatalog, CanonicalCodesPresent) {
  const FaultCatalog cat(1, 0);
  EXPECT_EQ(cat.size(), cat.canonical_count());
  EXPECT_EQ(cat.canonical_count(), 24U);
  std::set<std::string> codes;
  for (const auto& s : cat.signatures()) codes.insert(s.code);
  EXPECT_TRUE(codes.count("HN-MODEM"));
  EXPECT_TRUE(codes.count("F1-CUT"));
  EXPECT_TRUE(codes.count("DS-SPEED"));
  EXPECT_TRUE(codes.count("F2-PROT"));
}

TEST(FaultCatalog, MinorVariantsExtendCatalogue) {
  const FaultCatalog cat(1, 7);
  EXPECT_EQ(cat.size(), 24U + 4U * 7U);  // 52, matching the paper
  // Generated variants are individually rarer than canonical codes.
  for (std::size_t i = cat.canonical_count(); i < cat.size(); ++i) {
    EXPECT_LT(cat.signature(static_cast<DispositionId>(i)).frequency_weight,
              0.5);
  }
}

TEST(FaultCatalog, DeterministicForSeed) {
  const FaultCatalog a(42, 5);
  const FaultCatalog b(42, 5);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto id = static_cast<DispositionId>(i);
    EXPECT_EQ(a.signature(id).code, b.signature(id).code);
    EXPECT_EQ(a.signature(id).effects.cv_rate, b.signature(id).effects.cv_rate);
  }
}

TEST(FaultCatalog, EveryLocationHasCodes) {
  const FaultCatalog cat(1, 3);
  std::map<MajorLocation, int> counts;
  for (const auto& s : cat.signatures()) ++counts[s.location];
  EXPECT_EQ(counts.size(), kNumMajorLocations);
  for (const auto& [loc, count] : counts) EXPECT_GE(count, 5) << static_cast<int>(loc);
}

TEST(FaultCatalog, SampleRespectsFrequencyWeights) {
  const FaultCatalog cat(1, 0);
  util::Rng rng(9);
  std::map<DispositionId, int> counts;
  for (int i = 0; i < 50000; ++i) ++counts[cat.sample(rng)];
  // HN-MODEM (weight 3.2) must be sampled far more often than DS-ATM
  // (weight 0.5).
  DispositionId modem = 0;
  DispositionId atm = 0;
  for (std::size_t i = 0; i < cat.size(); ++i) {
    const auto id = static_cast<DispositionId>(i);
    if (cat.signature(id).code == "HN-MODEM") modem = id;
    if (cat.signature(id).code == "DS-ATM") atm = id;
  }
  EXPECT_GT(counts[modem], counts[atm] * 3);
}

TEST(FaultCatalog, SampleWithinLocationStaysThere) {
  const FaultCatalog cat(1, 7);
  util::Rng rng(10);
  for (int i = 0; i < 200; ++i) {
    const auto id = cat.sample_within_location(rng, MajorLocation::kF2);
    EXPECT_EQ(cat.signature(id).location, MajorLocation::kF2);
  }
}

TEST(FaultCatalog, ProximityOrderMatchesPhysicalLayout) {
  // Fig 2: HN at the customer, then the F2 drop, then F1, then DSLAM.
  EXPECT_LT(end_host_proximity(MajorLocation::kHomeNetwork),
            end_host_proximity(MajorLocation::kF2));
  EXPECT_LT(end_host_proximity(MajorLocation::kF2),
            end_host_proximity(MajorLocation::kF1));
  EXPECT_LT(end_host_proximity(MajorLocation::kF1),
            end_host_proximity(MajorLocation::kDslam));
}

TEST(FaultCatalog, LocationNames) {
  EXPECT_STREQ(major_location_name(MajorLocation::kHomeNetwork), "HN");
  EXPECT_STREQ(major_location_name(MajorLocation::kF1), "F1");
  EXPECT_STREQ(major_location_name(MajorLocation::kDslam), "DS");
  EXPECT_STREQ(major_location_name(MajorLocation::kF2), "F2");
}

TEST(FaultCatalog, EffectsArePhysicallySane) {
  const FaultCatalog cat(1, 7);
  for (const auto& s : cat.signatures()) {
    EXPECT_GE(s.effects.rate_mult, 0.0) << s.code;
    EXPECT_LE(s.effects.rate_mult, 1.0) << s.code;
    EXPECT_GE(s.effects.modem_off_prob, 0.0) << s.code;
    EXPECT_LE(s.effects.modem_off_prob, 1.0) << s.code;
    EXPECT_GE(s.effects.cv_rate, 0.0) << s.code;
    EXPECT_GE(s.effects.atten_db, 0.0) << s.code;
    EXPECT_GT(s.frequency_weight, 0.0) << s.code;
    EXPECT_GT(s.duty_cycle, 0.0) << s.code;
    EXPECT_LE(s.duty_cycle, 1.0) << s.code;
  }
}

TEST(FaultCatalog, CodesAreUnique) {
  const FaultCatalog cat(1, 7);
  std::set<std::string> codes;
  for (const auto& s : cat.signatures()) {
    EXPECT_TRUE(codes.insert(s.code).second) << "duplicate " << s.code;
  }
}

}  // namespace
}  // namespace nevermind::dslsim
