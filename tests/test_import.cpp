#include "dslsim/import.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "dslsim/export.hpp"
#include "ml/dataset.hpp"

namespace nevermind::dslsim {
namespace {

class ImportTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SimConfig cfg;
    cfg.seed = 91;
    cfg.topology.n_lines = 500;
    data_ = new SimDataset(Simulator(cfg).run());
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }
  static const SimDataset* data_;
};

const SimDataset* ImportTest::data_ = nullptr;

TEST_F(ImportTest, MeasurementsRoundTrip) {
  std::stringstream ss;
  export_measurements_csv(*data_, ss, 10, 12);
  const auto imported = import_measurements_csv(ss);
  ASSERT_TRUE(imported.has_value());
  ASSERT_EQ(imported->size(), 3U * data_->n_lines());

  for (std::size_t k = 0; k < imported->size(); k += 97) {
    const auto& m = (*imported)[k];
    const auto& original = data_->measurement(m.week, m.line);
    for (std::size_t i = 0; i < kNumLineMetrics; ++i) {
      if (ml::is_missing(original[i])) {
        if (i == metric_index(LineMetric::kState)) {
          EXPECT_EQ(m.metrics[i], 0.0F);
        } else {
          EXPECT_TRUE(ml::is_missing(m.metrics[i]));
        }
      } else {
        // std::to_string prints 6 decimals; accept that rounding.
        EXPECT_NEAR(m.metrics[i], original[i],
                    std::max(1e-4F, std::fabs(original[i]) * 1e-5F));
      }
    }
  }
}

TEST_F(ImportTest, TicketsRoundTrip) {
  std::stringstream ss;
  export_tickets_csv(*data_, ss);
  const auto imported = import_tickets_csv(ss);
  ASSERT_TRUE(imported.has_value());
  ASSERT_EQ(imported->size(), data_->tickets().size());
  for (std::size_t k = 0; k < imported->size(); k += 13) {
    const auto& t = (*imported)[k];
    const auto& original = data_->tickets()[k];
    EXPECT_EQ(t.id, original.id);
    EXPECT_EQ(t.line, original.line);
    EXPECT_EQ(t.reported, original.reported);
    EXPECT_EQ(t.resolved, original.resolved);
    EXPECT_EQ(t.category, original.category);
    EXPECT_EQ(t.disposition.empty(), original.note == kNoTicket);
  }
}

TEST(Import, ParseDateKnownValues) {
  EXPECT_EQ(parse_date("01/01/09"), 0);
  EXPECT_EQ(parse_date("08/01/09"), util::day_from_date(8, 1));
  EXPECT_EQ(parse_date("01/01/10"), 365);
}

TEST(Import, ParseDateRejectsGarbage) {
  EXPECT_FALSE(parse_date("2009-01-01").has_value());
  EXPECT_FALSE(parse_date("xx/yy/zz").has_value());
  EXPECT_FALSE(parse_date("").has_value());
}

TEST(Import, RejectsWrongHeader) {
  std::istringstream is("foo,bar\n1,2\n");
  EXPECT_FALSE(import_measurements_csv(is).has_value());
  std::istringstream is2("a,b,c,d,e,f\n");
  EXPECT_FALSE(import_tickets_csv(is2).has_value());
}

TEST(Import, SkipsMalformedRows) {
  std::stringstream header;
  {
    SimConfig cfg;
    cfg.topology.n_lines = 10;
    const SimDataset tiny = Simulator(cfg).run();
    export_measurements_csv(tiny, header, 0, 0);
  }
  std::string text = header.str();
  text += "not,a,valid,row\n";
  std::istringstream is(text);
  const auto imported = import_measurements_csv(is);
  ASSERT_TRUE(imported.has_value());
  EXPECT_EQ(imported->size(), 10U);
}

TEST(Import, EmptyStreamRejected) {
  std::istringstream is("");
  EXPECT_FALSE(import_measurements_csv(is).has_value());
}

}  // namespace
}  // namespace nevermind::dslsim
