// nmarena v1 feature store: bit-exact round trips across the three
// access paths (streaming writer -> eager reader, mmap reader, text
// fallback), writer misuse, the read-only fence on file-backed arenas,
// and the table-driven corruption taxonomy — every damaged file must
// come back as its distinct typed error, never UB (this test runs in
// the ASan/UBSan job like the rest of the suite).
#include "ml/feature_store.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

namespace nevermind::ml {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "nm_feature_store_" + name;
}

/// Arena with adversarial float content: NaN (missing), signed zero,
/// denormal, huge, and values that truncate badly at low precision.
FeatureArena tricky_arena() {
  FeatureArena arena(
      {{"alpha", false}, {"beta", true}, {"gamma", false}}, 5);
  const float rows[5][3] = {
      {1.0F, 2.0F, kMissing},
      {-0.0F, std::numeric_limits<float>::denorm_min(), 0.1F},
      {3.4e38F, -3.4e38F, 1.0F / 3.0F},
      {kMissing, 42.5F, -7.25F},
      {0.30000001F, 5.0F, 1e-30F},
  };
  const bool labels[5] = {true, false, false, true, false};
  for (std::size_t r = 0; r < 5; ++r) arena.add_row(rows[r], labels[r]);
  return arena;
}

std::vector<std::vector<std::uint32_t>> tricky_aux() {
  return {{10, 11, 12, 13, 14}, {0, 0, 1, 1, 2}};
}
const std::vector<std::string> kAuxNames = {"line", "week"};
constexpr const char* kMeta = "nmdataset predictor\nencoder v1 stub\n";

/// Bitwise float equality — NaN payloads and signed zeros must survive
/// every round trip, so EXPECT_EQ on the value is not enough.
void expect_bit_identical(const FeatureArena& a, const FeatureArena& b) {
  ASSERT_EQ(a.n_rows(), b.n_rows());
  ASSERT_EQ(a.n_cols(), b.n_cols());
  EXPECT_EQ(a.positives(), b.positives());
  for (std::size_t j = 0; j < a.n_cols(); ++j) {
    EXPECT_EQ(a.column_info(j).name, b.column_info(j).name);
    EXPECT_EQ(a.column_info(j).categorical, b.column_info(j).categorical);
    for (std::size_t r = 0; r < a.n_rows(); ++r) {
      EXPECT_EQ(std::bit_cast<std::uint32_t>(a.value(r, j)),
                std::bit_cast<std::uint32_t>(b.value(r, j)))
          << "row " << r << " col " << j;
    }
  }
  for (std::size_t r = 0; r < a.n_rows(); ++r) {
    EXPECT_EQ(a.label(r), b.label(r));
  }
}

void expect_sidecar_identical(const StoredArena& got) {
  EXPECT_EQ(got.aux_names, kAuxNames);
  EXPECT_EQ(got.aux, tricky_aux());
  EXPECT_EQ(got.meta, kMeta);
}

std::string write_tricky(const std::string& name) {
  const std::string path = temp_path(name);
  const StoreStatus st =
      save_arena(path, tricky_arena(), kAuxNames, tricky_aux(), kMeta);
  EXPECT_TRUE(st.ok()) << st.message;
  return path;
}

/// The histogram-path quantization of the tricky arena, as written into
/// v2 artefacts. Deterministic: same arena -> same bins.
BinnedColumns tricky_bins() { return BinnedColumns(tricky_arena(), {}); }

void expect_bins_identical(const BinnedColumns& a, const BinnedColumns& b) {
  ASSERT_EQ(a.n_rows(), b.n_rows());
  ASSERT_EQ(a.n_cols(), b.n_cols());
  EXPECT_EQ(a.max_bins(), b.max_bins());
  for (std::size_t j = 0; j < a.n_cols(); ++j) {
    const BinnedColumns::Column& x = a.column(j);
    const BinnedColumns::Column& y = b.column(j);
    EXPECT_EQ(x.categorical, y.categorical) << "col " << j;
    EXPECT_EQ(x.overflow, y.overflow) << "col " << j;
    EXPECT_EQ(x.n_finite, y.n_finite) << "col " << j;
    ASSERT_EQ(x.split_values.size(), y.split_values.size()) << "col " << j;
    for (std::size_t k = 0; k < x.split_values.size(); ++k) {
      EXPECT_EQ(std::bit_cast<std::uint32_t>(x.split_values[k]),
                std::bit_cast<std::uint32_t>(y.split_values[k]))
          << "col " << j << " split " << k;
    }
    ASSERT_EQ(x.category_values.size(), y.category_values.size())
        << "col " << j;
    for (std::size_t k = 0; k < x.category_values.size(); ++k) {
      EXPECT_EQ(std::bit_cast<std::uint32_t>(x.category_values[k]),
                std::bit_cast<std::uint32_t>(y.category_values[k]))
          << "col " << j << " category " << k;
    }
    ASSERT_EQ(x.codes.size(), y.codes.size()) << "col " << j;
    for (std::size_t r = 0; r < x.codes.size(); ++r) {
      EXPECT_EQ(x.codes[r], y.codes[r]) << "col " << j << " row " << r;
    }
  }
}

TEST(FeatureStore, EagerRoundTripIsBitExact) {
  const std::string path = write_tricky("eager.nmarena");
  StoreStatus st;
  auto got = load_arena(path, {.mode = ArenaLoadMode::kEager}, &st);
  ASSERT_TRUE(got.has_value()) << st.message;
  EXPECT_FALSE(got->arena.file_backed());
  expect_bit_identical(tricky_arena(), got->arena);
  expect_sidecar_identical(*got);
  std::remove(path.c_str());
}

TEST(FeatureStore, MmapRoundTripIsBitExactAndReadOnly) {
  const std::string path = write_tricky("mmap.nmarena");
  StoreStatus st;
  auto got = load_arena(
      path, {.mode = ArenaLoadMode::kMapped, .verify_payload = true}, &st);
  ASSERT_TRUE(got.has_value()) << st.message;
  EXPECT_TRUE(got->arena.file_backed());
  EXPECT_EQ(got->arena.backing(), FeatureArena::Backing::kMapped);
  expect_bit_identical(tricky_arena(), got->arena);
  expect_sidecar_identical(*got);
  // The mutation API is fenced off the file-backed path.
  const float row[3] = {1.0F, 2.0F, 3.0F};
  EXPECT_THROW(got->arena.add_row(row, false), std::logic_error);
  // Copies share the mapping keepalive; the original can go away.
  FeatureArena copy = got->arena;
  got.reset();
  EXPECT_EQ(copy.value(2, 2), 1.0F / 3.0F);
  std::remove(path.c_str());
}

TEST(FeatureStore, TextRoundTripIsBitExact) {
  std::stringstream ss;
  save_arena_text(ss, tricky_arena(), kAuxNames, tricky_aux(), kMeta);
  StoreStatus st;
  auto got = load_arena_text(ss, &st);
  ASSERT_TRUE(got.has_value()) << st.message;
  expect_bit_identical(tricky_arena(), got->arena);
  expect_sidecar_identical(*got);
}

TEST(FeatureStore, BinsRoundTripWritesV2AndIsBitExact) {
  const std::string path = temp_path("v2.nmarena");
  const BinnedColumns bins = tricky_bins();
  const StoreStatus wrote =
      save_arena(path, tricky_arena(), kAuxNames, tricky_aux(), kMeta, &bins);
  ASSERT_TRUE(wrote.ok()) << wrote.message;
  {
    std::ifstream is(path, std::ios::binary);
    char preamble[16] = {};
    is.read(preamble, sizeof(preamble));
    EXPECT_EQ(preamble[8], 2) << "bins-carrying artefacts are version 2";
  }
  for (const auto mode : {ArenaLoadMode::kEager, ArenaLoadMode::kMapped}) {
    StoreStatus st;
    auto got = load_arena(path, {.mode = mode, .verify_payload = true}, &st);
    ASSERT_TRUE(got.has_value()) << st.message;
    // The arena itself round-trips exactly as in v1...
    expect_bit_identical(tricky_arena(), got->arena);
    expect_sidecar_identical(*got);
    // ...and the quantization comes back bit for bit: codes, split
    // thresholds, category values, flags, max_bins.
    ASSERT_NE(got->bins, nullptr)
        << "v2 load must surface the stored bins (mode "
        << static_cast<int>(mode) << ")";
    expect_bins_identical(bins, *got->bins);
  }
  std::remove(path.c_str());
}

TEST(FeatureStore, NoBinsWriteStaysVersionOneByteIdentical) {
  // The v2 extension must not perturb bins-free artefacts at all:
  // writers without set_bins emit version 1, byte-identical to the
  // pre-extension format, and v1 loads report no bins.
  const std::string path = write_tricky("still_v1.nmarena");
  {
    std::ifstream is(path, std::ios::binary);
    char preamble[16] = {};
    is.read(preamble, sizeof(preamble));
    EXPECT_EQ(preamble[8], 1);
  }
  StoreStatus st;
  auto got = load_arena(path, {.mode = ArenaLoadMode::kEager}, &st);
  ASSERT_TRUE(got.has_value()) << st.message;
  EXPECT_EQ(got->bins, nullptr);
  std::remove(path.c_str());
}

TEST(FeatureStore, StreamingWriterMatchesBulkSaveByteForByte) {
  // Chunk size 3 does not divide 5 rows: the tail flush and the
  // per-column scatter seeks must still produce the identical file.
  const std::string bulk_path = write_tricky("bulk.nmarena");
  const std::string stream_path = temp_path("stream.nmarena");
  const FeatureArena arena = tricky_arena();
  ArenaStreamWriter writer(stream_path, arena.columns(), arena.n_rows(), 3);
  std::vector<float> row(arena.n_cols());
  for (std::size_t r = 0; r < arena.n_rows(); ++r) {
    for (std::size_t j = 0; j < arena.n_cols(); ++j) row[j] = arena.value(r, j);
    writer.append(row, arena.label(r));
  }
  const auto aux = tricky_aux();
  writer.add_aux(kAuxNames[0], aux[0]);
  writer.add_aux(kAuxNames[1], aux[1]);
  writer.set_meta(kMeta);
  const StoreStatus st = writer.finish();
  ASSERT_TRUE(st.ok()) << st.message;

  const auto slurp = [](const std::string& p) {
    std::ifstream is(p, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(is), {});
  };
  EXPECT_EQ(slurp(bulk_path), slurp(stream_path));
  std::remove(bulk_path.c_str());
  std::remove(stream_path.c_str());
}

TEST(FeatureStore, WriterMisuseThrowsAndShortfallIsTyped) {
  const std::string path = temp_path("misuse.nmarena");
  {
    ArenaStreamWriter writer(path, {{"a", false}, {"b", false}}, 3);
    const float narrow[1] = {1.0F};
    EXPECT_THROW(writer.append(narrow, false), std::logic_error);
    const float ok[2] = {1.0F, 2.0F};
    writer.append(ok, false);
    const std::vector<std::uint32_t> short_aux = {1, 2};
    EXPECT_THROW(writer.add_aux("x", short_aux), std::logic_error);
    // Fewer rows than declared: a typed error, not a corrupt file.
    const StoreStatus st = writer.finish();
    EXPECT_EQ(st.code, StoreError::kRowCountMismatch);
    EXPECT_THROW(writer.append(ok, false), std::logic_error);
  }
  {
    ArenaStreamWriter writer(path, {{"a", false}}, 1);
    const float one[1] = {1.0F};
    writer.append(one, true);
    EXPECT_THROW(writer.append(one, true), std::logic_error);  // over-append
    ASSERT_TRUE(writer.finish().ok());
  }
  std::remove(path.c_str());
}

TEST(FeatureStore, ZeroRowArtefactRoundTrips) {
  const std::string path = temp_path("empty.nmarena");
  const FeatureArena empty({{"only", false}}, 0);
  ASSERT_TRUE(save_arena(path, empty).ok());
  for (const auto mode : {ArenaLoadMode::kEager, ArenaLoadMode::kMapped}) {
    StoreStatus st;
    auto got = load_arena(path, {.mode = mode, .verify_payload = true}, &st);
    ASSERT_TRUE(got.has_value()) << st.message;
    EXPECT_EQ(got->arena.n_rows(), 0U);
    EXPECT_EQ(got->arena.n_cols(), 1U);
  }
  std::remove(path.c_str());
}

TEST(FeatureStore, AutoLoadSniffsBinaryAndText) {
  const std::string bin_path = write_tricky("auto.nmarena");
  EXPECT_TRUE(is_arena_file(bin_path));
  StoreStatus st;
  auto bin = load_arena_auto(bin_path, {.mode = ArenaLoadMode::kMapped}, &st);
  ASSERT_TRUE(bin.has_value()) << st.message;
  EXPECT_TRUE(bin->arena.file_backed());

  const std::string text_path = temp_path("auto.txt");
  {
    std::ofstream os(text_path);
    save_arena_text(os, tricky_arena(), kAuxNames, tricky_aux(), kMeta);
  }
  EXPECT_FALSE(is_arena_file(text_path));
  auto text = load_arena_auto(text_path, {}, &st);
  ASSERT_TRUE(text.has_value()) << st.message;
  expect_bit_identical(bin->arena, text->arena);

  auto missing = load_arena_auto(temp_path("does_not_exist"), {}, &st);
  EXPECT_FALSE(missing.has_value());
  EXPECT_EQ(st.code, StoreError::kIoError);
  std::remove(bin_path.c_str());
  std::remove(text_path.c_str());
}

// ---------------------------------------------------------------------------
// Corruption taxonomy — table-driven over both readers
// ---------------------------------------------------------------------------

std::vector<unsigned char> slurp_bytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(is), {}};
}

void dump_bytes(const std::string& path,
                const std::vector<unsigned char>& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(reinterpret_cast<const char*>(bytes.data()),
           static_cast<std::streamsize>(bytes.size()));
}

/// FNV-1a mirror of the format constant, for forging header checksums
/// in the malformed-header case.
std::uint64_t fnv1a(const unsigned char* p, std::size_t n) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (std::size_t i = 0; i < n; ++i) {
    hash ^= p[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

struct CorruptionCase {
  const char* name;
  StoreError expected;
  void (*mutate)(std::vector<unsigned char>&);
};

const CorruptionCase kCorruptionCases[] = {
    {"truncated_header", StoreError::kTruncatedHeader,
     [](std::vector<unsigned char>& b) { b.resize(64); }},
    {"wrong_magic", StoreError::kBadMagic,
     [](std::vector<unsigned char>& b) { b[0] = 'X'; }},
    {"future_version", StoreError::kBadVersion,
     [](std::vector<unsigned char>& b) { b[8] = 99; }},
    {"foreign_endian", StoreError::kBadEndian,
     [](std::vector<unsigned char>& b) { std::swap(b[12], b[15]); }},
    {"header_bit_flip", StoreError::kChecksumMismatch,
     // Bytes [16,120) are header fields under the header checksum.
     [](std::vector<unsigned char>& b) { b[40] ^= 0x01; }},
    {"inconsistent_header", StoreError::kMalformedHeader,
     [](std::vector<unsigned char>& b) {
       // Forge n_rows (header offset 16) += 1 WITH a valid checksum:
       // the recomputed section layout no longer matches.
       std::uint64_t n_rows = 0;
       std::memcpy(&n_rows, b.data() + 16, 8);
       ++n_rows;
       std::memcpy(b.data() + 16, &n_rows, 8);
       const std::uint64_t sum = fnv1a(b.data(), 120);
       std::memcpy(b.data() + 120, &sum, 8);
     }},
    {"short_file", StoreError::kShortFile,
     // Drop the trailing meta section: declared extents exceed the file.
     [](std::vector<unsigned char>& b) { b.resize(b.size() - 8); }},
    {"payload_bit_flip", StoreError::kChecksumMismatch,
     [](std::vector<unsigned char>& b) { b[128 + 5] ^= 0x80; }},
    {"label_bit_flip", StoreError::kChecksumMismatch,
     // Labels sit immediately after the 5x3-float payload.
     [](std::vector<unsigned char>& b) { b[128 + 5 * 3 * 4 + 2] ^= 0x01; }},
    {"meta_bit_flip", StoreError::kChecksumMismatch,
     // The meta section is the file tail.
     [](std::vector<unsigned char>& b) { b[b.size() - 1] ^= 0x01; }},
};

TEST(FeatureStoreCorruption, EveryDamageModeYieldsItsTypedError) {
  const std::string good_path = write_tricky("corrupt_src.nmarena");
  const std::vector<unsigned char> good = slurp_bytes(good_path);
  ASSERT_GE(good.size(), 128U);
  std::remove(good_path.c_str());

  for (const auto& c : kCorruptionCases) {
    std::vector<unsigned char> bytes = good;
    c.mutate(bytes);
    const std::string path =
        temp_path(std::string("corrupt_") + c.name + ".nmarena");
    dump_bytes(path, bytes);
    for (const auto mode : {ArenaLoadMode::kEager, ArenaLoadMode::kMapped}) {
      StoreStatus st;
      // verify_payload on: the mapped reader must detect payload damage
      // when asked, exactly like the eager reader always does.
      auto got = load_arena(path, {.mode = mode, .verify_payload = true}, &st);
      EXPECT_FALSE(got.has_value())
          << c.name << " loaded successfully in mode "
          << static_cast<int>(mode);
      EXPECT_EQ(st.code, c.expected)
          << c.name << " mode " << static_cast<int>(mode) << ": got "
          << store_error_name(st.code) << " (" << st.message << ")";
      EXPECT_FALSE(st.message.empty()) << c.name;
    }
    std::remove(path.c_str());
  }
}

TEST(FeatureStoreCorruption, V2BinsDamageModesYieldTypedErrors) {
  // Version-negotiation hardening around the v2 bin-code section. The
  // v1 and v2 artefacts of the same arena share their leading sections
  // byte for byte (only the version field and header checksum differ),
  // so the v1 file size IS the v2 bins-subheader offset.
  const std::string v1_path = write_tricky("v2src_v1.nmarena");
  const std::vector<unsigned char> v1 = slurp_bytes(v1_path);
  std::remove(v1_path.c_str());

  const std::string v2_path = temp_path("v2src_v2.nmarena");
  const BinnedColumns bins = tricky_bins();
  ASSERT_TRUE(
      save_arena(v2_path, tricky_arena(), kAuxNames, tricky_aux(), kMeta, &bins)
          .ok());
  const std::vector<unsigned char> v2 = slurp_bytes(v2_path);
  std::remove(v2_path.c_str());
  const std::size_t sub = v1.size();  // [u64 size][u64 checksum][content]
  ASSERT_GT(v2.size(), sub + 16);
  {
    // Sanity-check the shared-prefix assumption: the declared bins size
    // at that offset must match the actual tail length.
    std::uint64_t declared = 0;
    std::memcpy(&declared, v2.data() + sub, 8);
    ASSERT_EQ(declared, v2.size() - sub - 16);
  }

  struct Damage {
    const char* name;
    StoreError expected;
    std::vector<unsigned char> bytes;
  };
  std::vector<Damage> damages;

  // A v1 file with appended trailing bytes: the strict end check must
  // refuse it — old-format files cannot smuggle an unverified bins
  // section past the reader.
  {
    std::vector<unsigned char> b = v1;
    b.insert(b.end(), {'b', 'o', 'n', 'u', 's'});
    damages.push_back({"v1_trailing_garbage", StoreError::kMalformedHeader, b});
  }
  // Truncation inside the bins content, and truncation so deep the
  // declared subheader itself is gone.
  {
    std::vector<unsigned char> b = v2;
    b.resize(b.size() - 4);
    damages.push_back({"v2_truncated_in_bins", StoreError::kShortFile, b});
  }
  {
    std::vector<unsigned char> b = v2;
    b.resize(sub + 8);
    damages.push_back({"v2_missing_subheader", StoreError::kShortFile, b});
  }
  // A flipped bit in the bins content with the stored checksum left
  // alone: checksum mismatch, same as payload damage in v1.
  {
    std::vector<unsigned char> b = v2;
    b.back() ^= 0x01;
    damages.push_back({"v2_bins_bit_flip", StoreError::kChecksumMismatch, b});
  }
  // Content damage WITH a forged (valid) checksum: the parser itself
  // must reject it — the final byte is the last column's last bin code;
  // 0xFF is past every column's missing bin.
  {
    std::vector<unsigned char> b = v2;
    b.back() = 0xFF;
    const std::uint64_t sum = fnv1a(b.data() + sub + 16, b.size() - sub - 16);
    std::memcpy(b.data() + sub + 8, &sum, 8);
    damages.push_back({"v2_malformed_bins", StoreError::kMalformedBins, b});
  }
  // An implausibly huge declared bins size is malformed, not a short
  // file (no attempt to allocate or seek terabytes).
  {
    std::vector<unsigned char> b = v2;
    const std::uint64_t huge = std::uint64_t{1} << 41;
    std::memcpy(b.data() + sub, &huge, 8);
    damages.push_back({"v2_implausible_size", StoreError::kMalformedBins, b});
  }

  for (const auto& d : damages) {
    const std::string path =
        temp_path(std::string("corrupt_") + d.name + ".nmarena");
    dump_bytes(path, d.bytes);
    for (const auto mode : {ArenaLoadMode::kEager, ArenaLoadMode::kMapped}) {
      StoreStatus st;
      auto got = load_arena(path, {.mode = mode, .verify_payload = true}, &st);
      EXPECT_FALSE(got.has_value())
          << d.name << " loaded successfully in mode "
          << static_cast<int>(mode);
      EXPECT_EQ(st.code, d.expected)
          << d.name << " mode " << static_cast<int>(mode) << ": got "
          << store_error_name(st.code) << " (" << st.message << ")";
      EXPECT_FALSE(st.message.empty()) << d.name;
    }
    std::remove(path.c_str());
  }
}

TEST(FeatureStoreCorruption, TextReaderRejectsForeignAndTruncatedInput) {
  StoreStatus st;
  std::istringstream not_ours("kernel v1 whatever");
  EXPECT_FALSE(load_arena_text(not_ours, &st).has_value());
  EXPECT_EQ(st.code, StoreError::kBadMagic);

  std::istringstream future("nmdataset v9\nmeta 0\n");
  EXPECT_FALSE(load_arena_text(future, &st).has_value());
  EXPECT_EQ(st.code, StoreError::kBadVersion);

  std::stringstream full;
  save_arena_text(full, tricky_arena(), kAuxNames, tricky_aux(), kMeta);
  const std::string text = full.str();
  std::istringstream truncated(text.substr(0, text.size() - 10));
  EXPECT_FALSE(load_arena_text(truncated, &st).has_value());
  EXPECT_EQ(st.code, StoreError::kShortFile);
}

}  // namespace
}  // namespace nevermind::ml
