#include "dslsim/customer.hpp"

#include <gtest/gtest.h>

namespace nevermind::dslsim {
namespace {

TEST(Customer, SampleWithinConfiguredBounds) {
  util::Rng rng(1);
  const CustomerModelConfig cfg;
  for (int i = 0; i < 500; ++i) {
    const CustomerBehavior c = sample_customer(rng, cfg);
    EXPECT_GE(c.usage_intensity_mb, 1.0F);
    EXPECT_LE(c.usage_intensity_mb, 20000.0F);
    EXPECT_GE(c.report_propensity, 0.2F);
    EXPECT_LE(c.report_propensity, 4.0F);
    EXPECT_GE(c.modem_off_base, 0.0F);
    EXPECT_LE(c.modem_off_base, static_cast<float>(cfg.modem_off_base_max));
  }
}

TEST(Customer, VacationMakesAway) {
  CustomerBehavior c;
  c.vacations = {{10, 20}};
  EXPECT_FALSE(is_away(c, 9));
  EXPECT_TRUE(is_away(c, 10));
  EXPECT_TRUE(is_away(c, 19));
  EXPECT_FALSE(is_away(c, 20));
}

TEST(Customer, MultipleVacationsSorted) {
  CustomerBehavior c;
  c.vacations = {{10, 12}, {30, 35}};
  EXPECT_TRUE(is_away(c, 11));
  EXPECT_FALSE(is_away(c, 20));
  EXPECT_TRUE(is_away(c, 34));
}

TEST(Customer, UsageZeroWhenAway) {
  CustomerBehavior c;
  c.usage_intensity_mb = 200.0F;
  c.vacations = {{5, 8}};
  EXPECT_EQ(usage_on_day(c, 6), 0.0);
  EXPECT_GT(usage_on_day(c, 4), 0.0);
}

TEST(Customer, WeekendUsageBoosted) {
  CustomerBehavior c;
  c.usage_intensity_mb = 100.0F;
  c.weekend_factor = 1.5F;
  // Day 2 is Saturday (2009-01-03); day 5 is Tuesday.
  EXPECT_NEAR(usage_on_day(c, 2), 150.0, 1e-6);
  EXPECT_NEAR(usage_on_day(c, 5), 100.0, 1e-6);
}

TEST(Customer, CallWeightsPeakMondayBottomWeekend) {
  // Paper: ticket arrivals peak on Monday and bottom out over the
  // weekend.
  double monday = 0.0;
  double saturday = 0.0;
  double sunday = 0.0;
  for (util::Day d = 0; d < 7; ++d) {
    switch (util::weekday_of(d)) {
      case util::Weekday::kMonday: monday = call_day_weight(d); break;
      case util::Weekday::kSaturday: saturday = call_day_weight(d); break;
      case util::Weekday::kSunday: sunday = call_day_weight(d); break;
      default: break;
    }
  }
  EXPECT_GT(monday, 0.9);
  EXPECT_LT(saturday, 0.5);
  EXPECT_LT(sunday, 0.5);
  for (util::Day d = 0; d < 7; ++d) {
    EXPECT_LE(call_day_weight(d), monday);
  }
}

TEST(Customer, SamplingDeterministic) {
  const CustomerModelConfig cfg;
  util::Rng a(42);
  util::Rng b(42);
  const CustomerBehavior ca = sample_customer(a, cfg);
  const CustomerBehavior cb = sample_customer(b, cfg);
  EXPECT_EQ(ca.usage_intensity_mb, cb.usage_intensity_mb);
  EXPECT_EQ(ca.vacations, cb.vacations);
}

TEST(Customer, PopulationUsageIsHeavyTailed) {
  util::Rng rng(2);
  const CustomerModelConfig cfg;
  double max_usage = 0.0;
  double sum = 0.0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const CustomerBehavior c = sample_customer(rng, cfg);
    max_usage = std::max(max_usage, static_cast<double>(c.usage_intensity_mb));
    sum += c.usage_intensity_mb;
  }
  // Log-normal: the max dwarfs the mean.
  EXPECT_GT(max_usage, 10.0 * sum / n);
}

}  // namespace
}  // namespace nevermind::dslsim
