// The streaming pipeline's identity anchor: every streamed producer or
// consumer must be byte-identical to its materialized counterpart at 1
// and 8 threads — Simulator::stream_weeks vs run()'s measurement table
// (including a correlated infra-fault run), the WeekWindowBuffer's
// eviction/straddle semantics, the streamed dataset artefacts vs the
// materialized savers, the full streamed training chain
// (plan_full_encoder + train_from_block) vs train(), and the serving
// replay fed chunk-wise vs week-by-week from a materialized dataset.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/ticket_predictor.hpp"
#include "core/trouble_locator.hpp"
#include "features/dataset_io.hpp"
#include "features/stream_buffer.hpp"
#include "serve/line_state_store.hpp"
#include "serve/replay.hpp"
#include "util/calendar.hpp"

namespace nevermind {
namespace {

constexpr int kTrainFrom = 20;
constexpr int kTrainTo = 27;
constexpr int kLocFrom = 12;
constexpr int kLocTo = 34;
constexpr int kServeWeek = 31;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "nm_stream_pipeline_" +
         std::to_string(::getpid()) + "_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream buf;
  buf << is.rdbuf();
  return buf.str();
}

bool same_week(std::span<const dslsim::MetricVector> a,
               std::span<const dslsim::MetricVector> b) {
  // Bytewise: missing metrics are NaN, which == would treat as unequal.
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(),
                     a.size() * sizeof(dslsim::MetricVector)) == 0;
}

dslsim::SimConfig small_config(std::uint32_t lines = 600,
                               std::uint64_t seed = 91) {
  dslsim::SimConfig cfg;
  cfg.seed = seed;
  cfg.topology.n_lines = lines;
  return cfg;
}

features::EncoderConfig base_config() {
  features::EncoderConfig cfg;
  cfg.include_quadratic = false;
  cfg.product_pairs.clear();
  return cfg;
}

// ---------------------------------------------------------------------
// Producer: stream_weeks vs the materialized measurement table.
// ---------------------------------------------------------------------

void expect_chunks_match_run(const dslsim::SimConfig& cfg) {
  const dslsim::Simulator sim(cfg);
  const dslsim::SimDataset reference = sim.run();
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    const exec::ExecContext exec(threads);
    const dslsim::SimDataset tables = sim.build_tables(exec);
    EXPECT_FALSE(tables.has_measurements());
    int expected_week = 0;
    sim.stream_weeks(tables, exec, [&](const dslsim::WeekChunk& chunk) {
      ASSERT_EQ(chunk.week, expected_week);
      EXPECT_EQ(chunk.day, util::saturday_of_week(chunk.week));
      EXPECT_TRUE(same_week(chunk.measurements,
                            reference.week_measurements(chunk.week)))
          << "week " << chunk.week << " at " << threads << " thread(s)";
      ++expected_week;
    });
    EXPECT_EQ(expected_week, reference.n_weeks());
  }
}

TEST(StreamWeeks, ChunksMatchMaterializedRun) {
  expect_chunks_match_run(small_config());
}

TEST(StreamWeeks, InfraFaultRunMatches) {
  // The PR 9 correlated-fault layer perturbs whole plant subtrees; the
  // week-major streamed sweep must reproduce those metrics too.
  dslsim::SimConfig cfg = small_config(700, 99);
  cfg.infra.dslam_outages_per_dslam_year = 1.2;
  cfg.infra.crossbox_events_per_crossbox_year = 0.4;
  cfg.infra.weather_bursts_per_region_year = 2.0;
  cfg.infra.firmware_rollout_start = util::day_from_date(5, 1);
  expect_chunks_match_run(cfg);
}

TEST(StreamWeeks, ThroughWeekStopsEarly) {
  const dslsim::SimConfig cfg = small_config(200, 17);
  const dslsim::Simulator sim(cfg);
  const exec::ExecContext exec = exec::ExecContext::serial();
  const dslsim::SimDataset tables = sim.build_tables(exec);
  int last_week = -1;
  sim.stream_weeks(tables, exec,
                   [&](const dslsim::WeekChunk& chunk) {
                     last_week = chunk.week;
                   },
                   /*through_week=*/kServeWeek);
  EXPECT_EQ(last_week, kServeWeek);
}

// ---------------------------------------------------------------------
// The rolling window: eviction, straddle, producer-contract errors.
// ---------------------------------------------------------------------

TEST(WeekWindowBuffer, EvictsBeyondWindowAndKeepsBytes) {
  const dslsim::SimConfig cfg = small_config(150, 5);
  const dslsim::SimDataset data = dslsim::Simulator(cfg).run();
  features::WeekWindowBuffer buffer(cfg.topology.n_lines, 4);
  EXPECT_EQ(buffer.newest_week(), -1);
  EXPECT_EQ(buffer.oldest_week(), -1);
  for (int w = 0; w < 10; ++w) {
    buffer.push(w, data.week_measurements(w));
    // The window straddles pushes: everything in (w-4, w] stays
    // readable bit-for-bit, anything older is gone.
    EXPECT_EQ(buffer.newest_week(), w);
    EXPECT_EQ(buffer.oldest_week(), std::max(0, w - 3));
    for (int back = 0; back < 4; ++back) {
      const int resident = w - back;
      if (resident < 0) break;
      ASSERT_TRUE(buffer.contains(resident));
      EXPECT_TRUE(same_week(buffer.week(resident),
                            data.week_measurements(resident)));
    }
    if (w >= 4) {
      EXPECT_FALSE(buffer.contains(w - 4));
      EXPECT_THROW((void)buffer.week(w - 4), std::out_of_range);
    }
  }
  // Residency is the window, not the history that flowed through.
  EXPECT_EQ(buffer.resident_bytes(),
            4 * static_cast<std::size_t>(cfg.topology.n_lines) *
                sizeof(dslsim::MetricVector));
}

TEST(WeekWindowBuffer, EnforcesProducerContract) {
  const dslsim::SimConfig cfg = small_config(80, 6);
  const dslsim::SimDataset data = dslsim::Simulator(cfg).run();
  features::WeekWindowBuffer buffer(cfg.topology.n_lines, 3);
  EXPECT_THROW(features::WeekWindowBuffer(10, 0), std::invalid_argument);
  // Weeks must arrive in order with no gaps...
  EXPECT_THROW(buffer.push(1, data.week_measurements(1)), std::logic_error);
  buffer.push(0, data.week_measurements(0));
  EXPECT_THROW(buffer.push(2, data.week_measurements(2)), std::logic_error);
  EXPECT_THROW(buffer.push(0, data.week_measurements(0)), std::logic_error);
  // ...and sized to the line population.
  const std::vector<dslsim::MetricVector> wrong(17);
  EXPECT_THROW(buffer.push(1, {wrong.data(), wrong.size()}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------
// Streamed dataset artefacts vs the materialized savers.
// ---------------------------------------------------------------------

class StreamArtefactTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_ = new dslsim::SimDataset(dslsim::Simulator(small_config()).run());
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }
  static const dslsim::SimDataset* data_;
};

const dslsim::SimDataset* StreamArtefactTest::data_ = nullptr;

TEST_F(StreamArtefactTest, PredictorArtefactByteIdentical) {
  const dslsim::Simulator sim(small_config());
  const features::TicketLabeler labeler{28};
  const std::string mat_path = temp_path("pred_mat.nmarena");
  ASSERT_TRUE(features::save_predictor_dataset(mat_path, *data_, kTrainFrom,
                                               kTrainTo, base_config(),
                                               labeler)
                  .ok());
  const std::string reference = slurp(mat_path);
  std::filesystem::remove(mat_path);
  ASSERT_FALSE(reference.empty());

  // Windows both wider and narrower than the emit span: a narrow
  // window forces emitted weeks to be encoded and evicted while later
  // chunks are still arriving (the straddle case).
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    for (const int window : {1, 3, 16}) {
      const exec::ExecContext exec(threads);
      const dslsim::SimDataset tables = sim.build_tables(exec);
      features::StreamPipelineOptions opts;
      opts.window_weeks = window;
      const std::string path = temp_path("pred_stream.nmarena");
      ASSERT_TRUE(features::stream_save_predictor_dataset(
                      path, sim, tables, exec, kTrainFrom, kTrainTo,
                      base_config(), labeler, opts)
                      .ok());
      EXPECT_EQ(slurp(path), reference)
          << threads << " thread(s), window " << window;
      std::filesystem::remove(path);
    }
  }
}

TEST_F(StreamArtefactTest, PredictorArtefactFinalWeekOfYear) {
  // Emit range butting against the last simulated week: the stream
  // ends exactly at the final chunk, with no trailing weeks to flush
  // the window.
  const dslsim::Simulator sim(small_config());
  const features::TicketLabeler labeler{28};
  const int last = data_->n_weeks() - 1;
  const std::string mat_path = temp_path("pred_tail_mat.nmarena");
  ASSERT_TRUE(features::save_predictor_dataset(mat_path, *data_, last - 2,
                                               last, base_config(), labeler)
                  .ok());
  const std::string reference = slurp(mat_path);
  std::filesystem::remove(mat_path);

  const exec::ExecContext exec = exec::ExecContext::serial();
  const dslsim::SimDataset tables = sim.build_tables(exec);
  features::StreamPipelineOptions opts;
  opts.window_weeks = 2;
  const std::string path = temp_path("pred_tail_stream.nmarena");
  ASSERT_TRUE(features::stream_save_predictor_dataset(
                  path, sim, tables, exec, last - 2, last, base_config(),
                  labeler, opts)
                  .ok());
  EXPECT_EQ(slurp(path), reference);
  std::filesystem::remove(path);
}

TEST_F(StreamArtefactTest, LocatorArtefactByteIdentical) {
  const dslsim::Simulator sim(small_config());
  const std::string mat_path = temp_path("loc_mat.nmarena");
  ASSERT_TRUE(features::save_locator_dataset(mat_path, *data_, kLocFrom,
                                             kLocTo, base_config())
                  .ok());
  const std::string reference = slurp(mat_path);
  std::filesystem::remove(mat_path);
  ASSERT_FALSE(reference.empty());

  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    const exec::ExecContext exec(threads);
    const dslsim::SimDataset tables = sim.build_tables(exec);
    features::StreamPipelineOptions opts;
    opts.window_weeks = 4;
    const std::string path = temp_path("loc_stream.nmarena");
    ASSERT_TRUE(features::stream_save_locator_dataset(path, sim, tables,
                                                      exec, kLocFrom, kLocTo,
                                                      base_config(), opts)
                    .ok());
    EXPECT_EQ(slurp(path), reference) << threads << " thread(s)";
    std::filesystem::remove(path);
  }
}

// ---------------------------------------------------------------------
// Streamed training chain vs train().
// ---------------------------------------------------------------------

TEST(StreamTraining, PredictorKernelMatchesTrain) {
  const dslsim::SimConfig cfg = small_config(900, 23);
  const dslsim::Simulator sim(cfg);
  const dslsim::SimDataset reference = sim.run();

  core::PredictorConfig pc;
  pc.boost_iterations = 30;
  pc.top_n = 25;
  core::TicketPredictor trained(pc);
  trained.train(reference, kTrainFrom, kTrainTo);
  std::ostringstream want;
  trained.kernel().save(want);

  const features::TicketLabeler labeler{pc.horizon_days};
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    core::PredictorConfig tpc = pc;
    tpc.exec = exec::ExecContext(threads);
    core::TicketPredictor predictor(tpc);
    const dslsim::SimDataset tables = sim.build_tables(tpc.exec);
    features::StreamPipelineOptions opts;
    opts.window_weeks = 4;

    // Pass 1: base matrix, mmap'ed for stage-1 planning.
    const std::string base_path = temp_path("chain_base.nmarena");
    features::EncoderConfig base_cfg = predictor.config().encoder;
    base_cfg.include_quadratic = false;
    base_cfg.product_pairs.clear();
    ASSERT_TRUE(features::stream_save_predictor_dataset(
                    base_path, sim, tables, tpc.exec, kTrainFrom, kTrainTo,
                    base_cfg, labeler, opts)
                    .ok());
    features::EncoderConfig full_cfg;
    {
      auto base = features::load_predictor_dataset(base_path,
                                                   ml::ArenaLoadMode::kMapped);
      ASSERT_TRUE(base.has_value());
      full_cfg = predictor.plan_full_encoder(base->block);
    }
    std::filesystem::remove(base_path);
    EXPECT_EQ(features::all_columns(full_cfg).size(),
              features::all_columns(trained.full_encoder_config()).size());

    // Pass 2: full derived-feature matrix, mmap'ed into train_from_block.
    const std::string full_path = temp_path("chain_full.nmarena");
    ASSERT_TRUE(features::stream_save_predictor_dataset(
                    full_path, sim, tables, tpc.exec, kTrainFrom, kTrainTo,
                    full_cfg, labeler, opts)
                    .ok());
    {
      auto full = features::load_predictor_dataset(full_path,
                                                   ml::ArenaLoadMode::kMapped);
      ASSERT_TRUE(full.has_value());
      EXPECT_TRUE(full->block.dataset.file_backed());
      predictor.train_from_block(full->block, full->encoder);
    }
    std::filesystem::remove(full_path);

    std::ostringstream got;
    predictor.kernel().save(got);
    EXPECT_EQ(got.str(), want.str()) << threads << " thread(s)";
  }
}

TEST(StreamTraining, LocatorMatchesTrain) {
  const dslsim::SimConfig cfg = small_config(900, 23);
  const dslsim::Simulator sim(cfg);
  const dslsim::SimDataset reference = sim.run();

  core::LocatorConfig lc;
  lc.boost_iterations = 20;
  lc.min_occurrences = 5;
  core::TroubleLocator trained(lc);
  trained.train(reference, kLocFrom, kLocTo);
  std::ostringstream want;
  trained.save(want);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    core::LocatorConfig tlc = lc;
    tlc.exec = exec::ExecContext(threads);
    core::TroubleLocator locator(tlc);
    const dslsim::SimDataset tables = sim.build_tables(tlc.exec);
    features::StreamPipelineOptions opts;
    opts.window_weeks = 4;
    const std::string path = temp_path("loc_chain.nmarena");
    ASSERT_TRUE(features::stream_save_locator_dataset(
                    path, sim, tables, tlc.exec, kLocFrom, kLocTo,
                    locator.encoder_config(), opts)
                    .ok());
    {
      auto loaded = features::load_locator_dataset(path,
                                                   ml::ArenaLoadMode::kMapped);
      ASSERT_TRUE(loaded.has_value());
      locator.train_from_block(tables, loaded->block);
    }
    std::filesystem::remove(path);

    std::ostringstream got;
    locator.save(got);
    EXPECT_EQ(got.str(), want.str()) << threads << " thread(s)";
  }
}

// ---------------------------------------------------------------------
// Serving replay fed chunk-wise vs from a materialized dataset.
// ---------------------------------------------------------------------

TEST(StreamReplay, FeedWeekChunkMatchesFeedNextWeek) {
  const dslsim::SimConfig cfg = small_config(400, 31);
  const dslsim::Simulator sim(cfg);
  const dslsim::SimDataset reference = sim.run();

  serve::LineStateStore want_store(4);
  serve::ReplayDriver want_replay(reference, want_store);
  want_replay.feed_through(kServeWeek);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    const exec::ExecContext exec(threads);
    const dslsim::SimDataset tables = sim.build_tables(exec);
    serve::LineStateStore store(4);
    serve::ReplayDriver replay(tables, store);
    sim.stream_weeks(tables, exec,
                     [&](const dslsim::WeekChunk& chunk) {
                       replay.feed_week_chunk(chunk, exec);
                     },
                     /*through_week=*/kServeWeek);
    EXPECT_EQ(replay.next_week(), want_replay.next_week());
    EXPECT_EQ(replay.measurements_fed(), want_replay.measurements_fed());

    // Compare the stores through the one shared encoding: identical
    // encoded rows mean identical served scores under any kernel.
    const features::EncoderConfig enc;
    const std::size_t n_base = features::base_columns(enc).size();
    const std::size_t n_cols = features::all_columns(enc).size();
    ASSERT_EQ(store.line_ids(), want_store.line_ids());
    std::vector<float> got_row(n_cols);
    std::vector<float> want_row(n_cols);
    for (const dslsim::LineId line : want_store.line_ids()) {
      const auto got = store.snapshot(line);
      const auto want = want_store.snapshot(line);
      ASSERT_TRUE(got.has_value() && want.has_value());
      ASSERT_EQ(got->week, want->week);
      ASSERT_EQ(got->profile, want->profile);
      ASSERT_EQ(got->last_ticket, want->last_ticket);
      const util::Day day = util::saturday_of_week(want->week);
      features::encode_window_row(got->window, got->current,
                                  dslsim::profile(got->profile),
                                  got->last_ticket, day, enc, n_base,
                                  got_row);
      features::encode_window_row(want->window, want->current,
                                  dslsim::profile(want->profile),
                                  want->last_ticket, day, enc, n_base,
                                  want_row);
      ASSERT_EQ(std::memcmp(got_row.data(), want_row.data(),
                            n_cols * sizeof(float)),
                0)
          << "line " << line << " at " << threads << " thread(s)";
    }
  }
}

}  // namespace
}  // namespace nevermind
