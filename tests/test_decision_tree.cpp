#include "ml/decision_tree.hpp"

#include <gtest/gtest.h>

#include "ml/adaboost.hpp"
#include "ml/metrics.hpp"
#include "util/rng.hpp"

namespace nevermind::ml {
namespace {

std::vector<double> uniform_weights(std::size_t n) {
  return std::vector<double>(n, 1.0 / static_cast<double>(n));
}

/// Conjunction problem: positive iff (a > 0 AND b > 0) — an
/// interaction a single stump cannot express but a greedy depth-2 tree
/// carves exactly (root on a, child on b). Pure XOR defeats *greedy*
/// root selection (no single split has gain), so the solvable tests
/// use the AND form and XOR only demonstrates stump limits.
FeatureArena make_and(std::size_t n, util::Rng& rng, double flip = 0.0) {
  FeatureArena d({{"a", false}, {"b", false}});
  for (std::size_t i = 0; i < n; ++i) {
    const float a = static_cast<float>(rng.normal());
    const float b = static_cast<float>(rng.normal());
    bool positive = a > 0.0F && b > 0.0F;
    if (flip > 0.0 && rng.bernoulli(flip)) positive = !positive;
    const float row[2] = {a, b};
    d.add_row(row, positive);
  }
  return d;
}

FeatureArena make_xor(std::size_t n, util::Rng& rng) {
  FeatureArena d({{"a", false}, {"b", false}});
  for (std::size_t i = 0; i < n; ++i) {
    const float a = static_cast<float>(rng.normal());
    const float b = static_cast<float>(rng.normal());
    const bool positive = (a > 0.0F) != (b > 0.0F);
    const float row[2] = {a, b};
    d.add_row(row, positive);
  }
  return d;
}

TEST(DecisionTree, EmptyTreeScoresZero) {
  const DecisionTree tree;
  const float row[1] = {1.0F};
  EXPECT_EQ(tree.score_features(row), 0.0);
}

TEST(DecisionTree, DepthOneEqualsStumpBehaviour) {
  util::Rng rng(1);
  FeatureArena d({{"x", false}});
  for (int i = 0; i < 200; ++i) {
    const float x = static_cast<float>(i);
    d.add_row({&x, 1}, i >= 100);
  }
  TreeConfig cfg;
  cfg.max_depth = 1;
  const DecisionTree tree = train_tree(d, uniform_weights(200), cfg);
  ASSERT_EQ(tree.nodes().size(), 1U);
  const float lo = 0.0F;
  const float hi = 199.0F;
  EXPECT_LT(tree.score_features({&lo, 1}), 0.0);
  EXPECT_GT(tree.score_features({&hi, 1}), 0.0);
}

TEST(DecisionTree, DepthTwoSolvesConjunction) {
  util::Rng rng(2);
  const FeatureArena train = make_and(3000, rng);
  const FeatureArena test = make_and(1500, rng);
  TreeConfig cfg;
  cfg.max_depth = 2;
  const DecisionTree tree = train_tree(train, uniform_weights(3000), cfg);
  std::vector<double> scores(test.n_rows());
  for (std::size_t r = 0; r < test.n_rows(); ++r) {
    scores[r] = tree.score_row(test, r);
  }
  EXPECT_GT(auc(scores, test.labels()), 0.9);
}

TEST(DecisionTree, StumpCannotSolveXor) {
  // Depth 1 stays near chance on XOR (no single informative split).
  util::Rng rng(3);
  const FeatureArena train = make_xor(3000, rng);
  TreeConfig cfg;
  cfg.max_depth = 1;
  const DecisionTree tree = train_tree(train, uniform_weights(3000), cfg);
  std::vector<double> scores(train.n_rows());
  for (std::size_t r = 0; r < train.n_rows(); ++r) {
    scores[r] = tree.score_row(train, r);
  }
  EXPECT_LT(auc(scores, train.labels()), 0.6);
}

TEST(DecisionTree, MissingValuesAbstainAtEachNode) {
  FeatureArena d({{"x", false}});
  for (int i = 0; i < 100; ++i) {
    const float x = static_cast<float>(i);
    d.add_row({&x, 1}, i >= 50);
  }
  TreeConfig cfg;
  cfg.max_depth = 2;
  const DecisionTree tree = train_tree(d, uniform_weights(100), cfg);
  const float missing = kMissing;
  // A missing value must return the root's abstain score (finite).
  EXPECT_TRUE(std::isfinite(tree.score_features({&missing, 1})));
}

TEST(DecisionTree, ScoreRowMatchesScoreFeatures) {
  util::Rng rng(4);
  const FeatureArena d = make_and(500, rng);
  TreeConfig cfg;
  cfg.max_depth = 3;
  const DecisionTree tree = train_tree(d, uniform_weights(500), cfg);
  std::vector<float> row(2);
  for (std::size_t r = 0; r < d.n_rows(); r += 41) {
    row[0] = d.at(r, 0);
    row[1] = d.at(r, 1);
    EXPECT_EQ(tree.score_row(d, r), tree.score_features(row));
  }
}

TEST(BoostedTrees, LearnsConjunction) {
  util::Rng rng(5);
  const FeatureArena train = make_and(3000, rng);
  const FeatureArena test = make_and(1500, rng);
  BoostedTreesConfig cfg;
  cfg.iterations = 20;
  cfg.tree.max_depth = 2;
  const BoostedTreesModel model = train_boosted_trees(train, cfg);
  EXPECT_FALSE(model.empty());
  EXPECT_GT(auc(model.score_dataset(test), test.labels()), 0.95);
}

TEST(BoostedTrees, EmptyDatasetSafe) {
  const FeatureArena d({{"x", false}});
  const BoostedTreesModel model = train_boosted_trees(d, {});
  EXPECT_TRUE(model.empty());
}

TEST(BoostedTrees, OverfitsNoisyLabelsMoreThanStumps) {
  // The paper's §4.4 claim, in miniature: under heavy label noise the
  // deeper model fits the noise and generalizes no better (usually
  // worse) than the stump-linear ensemble with the same budget of
  // weak-learner evaluations.
  util::Rng rng(6);
  FeatureArena train({{"a", false}, {"b", false}});
  FeatureArena test({{"a", false}, {"b", false}});
  for (int i = 0; i < 6000; ++i) {
    const bool y = rng.bernoulli(0.5);
    const float row[2] = {
        static_cast<float>(rng.normal(y ? 0.8 : 0.0, 1.0)),
        static_cast<float>(rng.normal(y ? 0.5 : 0.0, 1.0))};
    bool label = y;
    const bool is_train = i % 2 == 0;
    if (is_train && rng.bernoulli(0.35)) label = !label;  // noisy train
    (is_train ? train : test).add_row(row, label);
  }
  BStumpConfig stump_cfg;
  stump_cfg.iterations = 60;
  const auto stump_auc =
      auc(train_bstump(train, stump_cfg).score_dataset(test), test.labels());

  BoostedTreesConfig tree_cfg;
  tree_cfg.iterations = 60;
  tree_cfg.tree.max_depth = 4;
  const auto tree_auc = auc(train_boosted_trees(train, tree_cfg)
                                .score_dataset(test),
                            test.labels());
  // Stumps must hold up at least as well as deep trees under noise.
  EXPECT_GE(stump_auc, tree_auc - 0.01);
}

TEST(BoostedTrees, TrainingErrorDropsFasterThanStumps) {
  // The flip side: trees are the stronger learner on clean data.
  util::Rng rng(7);
  const FeatureArena train = make_and(2000, rng);
  // One weak learner each: the depth-2 tree expresses the AND, the
  // stump cannot.
  BStumpConfig stump_cfg;
  stump_cfg.iterations = 1;
  BoostedTreesConfig tree_cfg;
  tree_cfg.iterations = 1;
  tree_cfg.tree.max_depth = 2;
  const auto stump_auc =
      auc(train_bstump(train, stump_cfg).score_dataset(train),
          train.labels());
  const auto tree_auc =
      auc(train_boosted_trees(train, tree_cfg).score_dataset(train),
          train.labels());
  EXPECT_GT(tree_auc, stump_auc);
}

}  // namespace
}  // namespace nevermind::ml
