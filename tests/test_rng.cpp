#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace nevermind::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next() ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(Rng, ZeroSeedIsNotDegenerate) {
  Rng r(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(r.next());
  EXPECT_GT(seen.size(), 95U);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(7);
  Rng child = parent.fork();
  // The fork must not replay the parent's stream.
  Rng parent2(7);
  parent2.next();  // fork consumed one draw
  int same = 0;
  for (int i = 0; i < 100; ++i) same += child.next() == parent2.next() ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(12);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.5, 2.5);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 2.5);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng r(13);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversRangeUniformly) {
  Rng r(14);
  std::vector<int> counts(7, 0);
  const int n = 70000;
  for (int i = 0; i < n; ++i) ++counts[r.uniform_index(7)];
  for (int c : counts) EXPECT_NEAR(c, n / 7, n / 7 / 5);
}

TEST(Rng, UniformIndexZeroIsZero) {
  Rng r(15);
  EXPECT_EQ(r.uniform_index(0), 0U);
  EXPECT_EQ(r.uniform_index(1), 0U);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r(16);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = r.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsMatch) {
  Rng r(17);
  const int n = 200000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalShiftScale) {
  Rng r(18);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += r.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, LognormalIsPositive) {
  Rng r(19);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(r.lognormal(0.0, 1.0), 0.0);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng r(20);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += r.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, PoissonMeanMatches) {
  Rng r(21);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(r.poisson(3.5));
  EXPECT_NEAR(sum / n, 3.5, 0.1);
}

TEST(Rng, PoissonZeroMean) {
  Rng r(22);
  EXPECT_EQ(r.poisson(0.0), 0U);
  EXPECT_EQ(r.poisson(-1.0), 0U);
}

TEST(Rng, PoissonLargeMeanUsesApproximation) {
  Rng r(23);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(r.poisson(100.0));
  EXPECT_NEAR(sum / n, 100.0, 1.0);
}

TEST(Rng, BernoulliFrequency) {
  Rng r(24);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, GeometricMean) {
  Rng r(25);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(r.geometric(0.5));
  EXPECT_NEAR(sum / n, 1.0, 0.05);  // failures before success: (1-p)/p
}

TEST(Rng, GeometricEdgeCases) {
  Rng r(26);
  EXPECT_EQ(r.geometric(1.0), 0U);
  EXPECT_EQ(r.geometric(1.5), 0U);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng r(27);
  const double weights[] = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[r.categorical(weights)];
  EXPECT_NEAR(counts[0], n * 0.1, n * 0.02);
  EXPECT_NEAR(counts[1], n * 0.3, n * 0.02);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[3], n * 0.6, n * 0.02);
}

TEST(Rng, CategoricalAllZeroWeights) {
  Rng r(28);
  const double weights[] = {0.0, 0.0};
  EXPECT_EQ(r.categorical(weights), 0U);
}

TEST(Rng, CategoricalNegativeWeightsTreatedAsZero) {
  Rng r(29);
  const double weights[] = {-5.0, 1.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.categorical(weights), 1U);
}

TEST(Rng, ParetoLowerBound) {
  Rng r(30);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(r.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, ParetoHeavyTailMean) {
  // E[X] = xm * a / (a - 1) for a > 1.
  Rng r(33);
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += r.pareto(1.0, 3.0);
  EXPECT_NEAR(sum / n, 1.5, 0.05);
}

TEST(Rng, ForkChainsAreDeterministic) {
  Rng a(5);
  Rng b(5);
  Rng a1 = a.fork();
  Rng a2 = a1.fork();
  Rng b1 = b.fork();
  Rng b2 = b1.fork();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a2.next(), b2.next());
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(31);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto copy = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(Rng, ShuffleChangesOrder) {
  Rng r(32);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto original = v;
  r.shuffle(v);
  EXPECT_NE(v, original);
}

/// Property sweep: distribution moments hold across seeds.
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformMomentsStableAcrossSeeds) {
  Rng r(GetParam());
  const int n = 50000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double u = r.uniform();
    sum += u;
    sq += u * u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
  EXPECT_NEAR(sq / n - (sum / n) * (sum / n), 1.0 / 12.0, 0.01);
}

TEST_P(RngSeedSweep, NormalTailsNotFat) {
  Rng r(GetParam() ^ 0xABCDEF);
  int beyond3 = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) beyond3 += std::fabs(r.normal()) > 3.0 ? 1 : 0;
  // P(|Z|>3) ~ 0.27%; allow generous slack.
  EXPECT_LT(beyond3, n / 100);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(1, 7, 42, 1234, 99999, 0));

}  // namespace
}  // namespace nevermind::util
