#include "core/workforce.hpp"

#include <gtest/gtest.h>

namespace nevermind::core {
namespace {

dslsim::FaultCatalog catalog() { return dslsim::FaultCatalog(1, 0); }

std::vector<RankedDisposition> simple_plan(
    const dslsim::FaultCatalog& cat, std::initializer_list<double> probs) {
  std::vector<RankedDisposition> plan;
  dslsim::DispositionId id = 0;
  for (double p : probs) {
    plan.push_back({id++, p});
  }
  (void)cat;
  return plan;
}

TEST(Workforce, LocationTestFactorsOrdered) {
  // Home checks are the quickest, buried F1 plant the slowest.
  EXPECT_LT(location_test_factor(dslsim::MajorLocation::kHomeNetwork),
            location_test_factor(dslsim::MajorLocation::kF2));
  EXPECT_LT(location_test_factor(dslsim::MajorLocation::kF2),
            location_test_factor(dslsim::MajorLocation::kF1));
}

TEST(Workforce, SampleTechnicianWithinBounds) {
  util::Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const TechnicianProfile t = sample_technician(rng);
    EXPECT_GE(t.skill, 0.5);
    EXPECT_LE(t.skill, 2.5);
    EXPECT_GT(t.minutes_per_test, 0.0);
    EXPECT_GT(t.overhead_minutes, 0.0);
  }
}

TEST(Workforce, DispatchStopsAtTruth) {
  const auto cat = catalog();
  const auto plan = simple_plan(cat, {0.5, 0.3, 0.2});
  TechnicianProfile tech;
  const auto result = simulate_dispatch(plan, 1, cat, tech);
  EXPECT_TRUE(result.found);
  EXPECT_EQ(result.tests_run, 2U);
}

TEST(Workforce, DispatchExhaustsPlanWhenTruthAbsent) {
  const auto cat = catalog();
  const auto plan = simple_plan(cat, {0.5, 0.3});
  TechnicianProfile tech;
  const auto result = simulate_dispatch(plan, 9999, cat, tech);
  EXPECT_FALSE(result.found);
  EXPECT_EQ(result.tests_run, 2U);
}

TEST(Workforce, MinutesIncludeOverheadAndGrowWithTests) {
  const auto cat = catalog();
  TechnicianProfile tech;
  const auto plan = simple_plan(cat, {0.5, 0.3, 0.2});
  const auto one = simulate_dispatch(plan, 0, cat, tech);
  const auto three = simulate_dispatch(plan, 2, cat, tech);
  EXPECT_GE(one.minutes, tech.overhead_minutes);
  EXPECT_GT(three.minutes, one.minutes);
}

TEST(Workforce, SkilledTechniciansAreFaster) {
  const auto cat = catalog();
  const auto plan = simple_plan(cat, {0.4, 0.3, 0.2, 0.1});
  TechnicianProfile rookie;
  rookie.skill = 0.6;
  TechnicianProfile veteran;
  veteran.skill = 2.0;
  const auto slow = simulate_dispatch(plan, 3, cat, rookie);
  const auto fast = simulate_dispatch(plan, 3, cat, veteran);
  EXPECT_GT(slow.minutes, fast.minutes);
}

TEST(Workforce, TravelChargedOnLocationChange) {
  const auto cat = catalog();
  // Dispositions 0.. are the HN block in the canonical catalogue;
  // find one HN and one DS code to force a hop.
  dslsim::DispositionId hn = 0;
  dslsim::DispositionId ds = 0;
  for (dslsim::DispositionId i = 0; i < cat.size(); ++i) {
    if (cat.signature(i).location == dslsim::MajorLocation::kHomeNetwork) {
      hn = i;
    }
    if (cat.signature(i).location == dslsim::MajorLocation::kDslam) ds = i;
  }
  std::vector<RankedDisposition> plan = {{hn, 0.5}, {ds, 0.4}};
  TechnicianProfile tech;
  const auto result = simulate_dispatch(plan, ds, cat, tech);
  EXPECT_EQ(result.location_changes, 1U);
}

TEST(Workforce, CostAwarePlanIsPermutation) {
  const auto cat = catalog();
  std::vector<RankedDisposition> ranked;
  for (dslsim::DispositionId i = 0; i < cat.size(); ++i) {
    ranked.push_back({i, 1.0 / (1.0 + i)});
  }
  TechnicianProfile tech;
  const auto plan = plan_cost_aware(ranked, cat, tech);
  ASSERT_EQ(plan.size(), ranked.size());
  std::vector<bool> seen(cat.size(), false);
  for (const auto& c : plan) {
    EXPECT_FALSE(seen[c.disposition]);
    seen[c.disposition] = true;
  }
}

TEST(Workforce, CostAwarePrefersQuickHighProbabilityTests) {
  const auto cat = catalog();
  // Equal probabilities: the cheaper (HN) tests should come first.
  std::vector<RankedDisposition> ranked;
  dslsim::DispositionId hn = 0;
  dslsim::DispositionId f1 = 0;
  for (dslsim::DispositionId i = 0; i < cat.size(); ++i) {
    if (cat.signature(i).location == dslsim::MajorLocation::kHomeNetwork) {
      hn = i;
    }
    if (cat.signature(i).location == dslsim::MajorLocation::kF1) f1 = i;
  }
  ranked.push_back({f1, 0.30});
  ranked.push_back({hn, 0.30});
  TechnicianProfile tech;
  const auto plan = plan_cost_aware(ranked, cat, tech);
  EXPECT_EQ(plan.front().disposition, hn);
}

TEST(Workforce, CostAwareEmptyPlanSafe) {
  const auto cat = catalog();
  TechnicianProfile tech;
  EXPECT_TRUE(plan_cost_aware({}, cat, tech).empty());
  const auto result = simulate_dispatch({}, 0, cat, tech);
  EXPECT_FALSE(result.found);
  EXPECT_EQ(result.tests_run, 0U);
  EXPECT_NEAR(result.minutes, tech.overhead_minutes, 1e-9);
}

TEST(Workforce, CostAwareReducesExpectedMinutes) {
  // Statistical check: over many synthetic dispatches, the cost-aware
  // ordering should not be slower on average than raw probability
  // order.
  const auto cat = catalog();
  util::Rng rng(7);
  TechnicianProfile tech;
  double prob_minutes = 0.0;
  double cost_minutes = 0.0;
  for (int trial = 0; trial < 300; ++trial) {
    // Random plausible posterior over all dispositions.
    std::vector<RankedDisposition> ranked;
    std::vector<double> weights;
    for (dslsim::DispositionId i = 0; i < cat.size(); ++i) {
      const double p = rng.uniform() * rng.uniform();
      ranked.push_back({i, p});
      weights.push_back(p);
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const RankedDisposition& a, const RankedDisposition& b) {
                return a.probability > b.probability;
              });
    const auto truth =
        static_cast<dslsim::DispositionId>(rng.categorical(weights));
    prob_minutes += simulate_dispatch(ranked, truth, cat, tech).minutes;
    const auto plan = plan_cost_aware(ranked, cat, tech);
    cost_minutes += simulate_dispatch(plan, truth, cat, tech).minutes;
  }
  EXPECT_LT(cost_minutes, prob_minutes * 1.02);
}

}  // namespace
}  // namespace nevermind::core
