#include "ml/pca.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace nevermind::ml {
namespace {

TEST(Pca, RecoversPrincipalDirection) {
  util::Rng rng(1);
  FeatureArena d({{"x", false}, {"y", false}});
  for (int i = 0; i < 3000; ++i) {
    const double t = rng.normal();
    const float row[2] = {static_cast<float>(t + 0.1 * rng.normal()),
                          static_cast<float>(t + 0.1 * rng.normal())};
    d.add_row(row, false);
  }
  const PcaResult pca = fit_pca(d);
  ASSERT_EQ(pca.eigenvalues.size(), 2U);
  // Standardized, nearly perfectly correlated pair: eigenvalues ~ (2, 0).
  EXPECT_GT(pca.eigenvalues[0], 1.8);
  EXPECT_LT(pca.eigenvalues[1], 0.2);
  // Leading component loads equally on both (up to sign).
  EXPECT_NEAR(std::fabs(pca.components.at(0, 0)),
              std::fabs(pca.components.at(1, 0)), 0.05);
}

TEST(Pca, IndependentColumnsGiveFlatSpectrum) {
  util::Rng rng(2);
  FeatureArena d({{"a", false}, {"b", false}, {"c", false}});
  for (int i = 0; i < 3000; ++i) {
    const float row[3] = {static_cast<float>(rng.normal()),
                          static_cast<float>(rng.normal()),
                          static_cast<float>(rng.normal())};
    d.add_row(row, false);
  }
  const PcaResult pca = fit_pca(d);
  for (double ev : pca.eigenvalues) EXPECT_NEAR(ev, 1.0, 0.15);
}

TEST(Pca, EigenvaluesDescending) {
  util::Rng rng(3);
  FeatureArena d({{"a", false}, {"b", false}, {"c", false}, {"d", false}});
  for (int i = 0; i < 1000; ++i) {
    const double t = rng.normal();
    const float row[4] = {static_cast<float>(t),
                          static_cast<float>(t + rng.normal()),
                          static_cast<float>(rng.normal()),
                          static_cast<float>(rng.normal() * 0.1)};
    d.add_row(row, false);
  }
  const PcaResult pca = fit_pca(d);
  for (std::size_t i = 1; i < pca.eigenvalues.size(); ++i) {
    EXPECT_GE(pca.eigenvalues[i - 1], pca.eigenvalues[i] - 1e-9);
  }
}

TEST(Pca, MissingValuesImputedToMean) {
  util::Rng rng(4);
  FeatureArena d({{"x", false}, {"y", false}});
  for (int i = 0; i < 500; ++i) {
    const double t = rng.normal();
    const float row[2] = {
        i % 10 == 0 ? kMissing : static_cast<float>(t),
        static_cast<float>(t)};
    d.add_row(row, false);
  }
  const PcaResult pca = fit_pca(d);
  EXPECT_TRUE(std::isfinite(pca.eigenvalues[0]));
  EXPECT_GT(pca.eigenvalues[0], 1.5);  // correlation survives imputation
}

TEST(Pca, SubsamplingApproximatesFull) {
  util::Rng rng(5);
  FeatureArena d({{"x", false}, {"y", false}});
  for (int i = 0; i < 4000; ++i) {
    const double t = rng.normal();
    const float row[2] = {static_cast<float>(t),
                          static_cast<float>(-t + 0.2 * rng.normal())};
    d.add_row(row, false);
  }
  const PcaResult full = fit_pca(d);
  const PcaResult sub = fit_pca(d, 500);
  EXPECT_NEAR(full.eigenvalues[0], sub.eigenvalues[0], 0.1);
}

TEST(Pca, FeatureScoresFavorLoadedColumns) {
  util::Rng rng(6);
  FeatureArena d({{"signal1", false}, {"signal2", false}, {"noise", false}});
  for (int i = 0; i < 2000; ++i) {
    const double t = rng.normal();
    const float row[3] = {static_cast<float>(t + 0.1 * rng.normal()),
                          static_cast<float>(t + 0.1 * rng.normal()),
                          static_cast<float>(rng.normal())};
    d.add_row(row, false);
  }
  const PcaResult pca = fit_pca(d);
  const auto scores = pca_feature_scores(pca, 1);
  EXPECT_GT(scores[0], scores[2]);
  EXPECT_GT(scores[1], scores[2]);
}

TEST(Pca, EmptyDatasetSafe) {
  const FeatureArena d({{"x", false}});
  const PcaResult pca = fit_pca(d);
  EXPECT_EQ(pca.column_means.size(), 1U);
  const auto scores = pca_feature_scores(pca, 3);
  EXPECT_EQ(scores.size(), 1U);
}

TEST(Pca, ConstantColumnHandled) {
  FeatureArena d({{"const", false}, {"var", false}});
  util::Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const float row[2] = {5.0F, static_cast<float>(rng.normal())};
    d.add_row(row, false);
  }
  const PcaResult pca = fit_pca(d);
  for (double ev : pca.eigenvalues) EXPECT_TRUE(std::isfinite(ev));
}

}  // namespace
}  // namespace nevermind::ml
