#include "features/encoder.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace nevermind::features {
namespace {

using dslsim::SimConfig;
using dslsim::SimDataset;
using dslsim::Simulator;

class EncoderTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SimConfig cfg;
    cfg.seed = 11;
    cfg.topology.n_lines = 1200;
    data_ = new SimDataset(Simulator(cfg).run());
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }
  static const SimDataset* data_;
};

const SimDataset* EncoderTest::data_ = nullptr;

TEST_F(EncoderTest, BaseColumnCount) {
  EncoderConfig cfg;
  const auto cols = base_columns(cfg);
  // 25 basic + 25 delta + 25 time-series + 4 profile + ticket + modem.
  EXPECT_EQ(cols.size(), 81U);
}

TEST_F(EncoderTest, ColumnCountRespectsFlags) {
  EncoderConfig cfg;
  cfg.include_delta = false;
  cfg.include_customer = false;
  EXPECT_EQ(base_columns(cfg).size(), 50U);
  cfg.include_timeseries = false;
  EXPECT_EQ(base_columns(cfg).size(), 25U);
}

TEST_F(EncoderTest, DerivedColumnsAppended) {
  EncoderConfig cfg;
  cfg.include_quadratic = true;
  cfg.product_pairs = {{0, 1}, {2, 3}};
  const auto cols = all_columns(cfg);
  EXPECT_EQ(cols.size(), 81U + 81U + 2U);
  EXPECT_EQ(cols[81].name.substr(0, 2), "q.");
  EXPECT_EQ(cols.back().name.substr(0, 2), "p.");
}

TEST_F(EncoderTest, OutOfRangeProductPairsDropped) {
  EncoderConfig cfg;
  cfg.product_pairs = {{0, 1}, {500, 1}};
  EXPECT_EQ(all_columns(cfg).size(), 82U);
}

TEST_F(EncoderTest, RowsCoverAllLinesAndWeeks) {
  EncoderConfig cfg;
  const TicketLabeler labeler{28};
  const auto block = encode_weeks(*data_, 10, 12, cfg, labeler);
  EXPECT_EQ(block.dataset.n_rows(), data_->n_lines() * 3U);
  EXPECT_EQ(block.line_of_row.size(), block.dataset.n_rows());
  EXPECT_EQ(block.week_of_row.front(), 10);
  EXPECT_EQ(block.week_of_row.back(), 12);
}

TEST_F(EncoderTest, BasicFeaturesMatchMeasurements) {
  EncoderConfig cfg;
  const TicketLabeler labeler{28};
  const auto block = encode_weeks(*data_, 20, 20, cfg, labeler);
  for (dslsim::LineId u = 0; u < data_->n_lines(); u += 37) {
    const auto& m = data_->measurement(20, u);
    for (std::size_t j = 0; j < dslsim::kNumLineMetrics; ++j) {
      const float got = block.dataset.at(u, j);
      if (ml::is_missing(m[j])) {
        EXPECT_TRUE(ml::is_missing(got));
      } else {
        EXPECT_EQ(got, m[j]);
      }
    }
  }
}

TEST_F(EncoderTest, DeltaIsWeekOverWeekDifference) {
  EncoderConfig cfg;
  const TicketLabeler labeler{28};
  const auto block = encode_weeks(*data_, 21, 21, cfg, labeler);
  std::size_t checked = 0;
  for (dslsim::LineId u = 0; u < data_->n_lines() && checked < 50; ++u) {
    const auto& cur = data_->measurement(21, u);
    const auto& prev = data_->measurement(20, u);
    if (!dslsim::record_present(cur) || !dslsim::record_present(prev)) continue;
    const std::size_t dn_br = 1;  // dnbr metric index
    const float delta = block.dataset.at(u, 25 + dn_br);
    EXPECT_NEAR(delta, cur[dn_br] - prev[dn_br], 1e-3);
    ++checked;
  }
  EXPECT_GT(checked, 10U);
}

TEST_F(EncoderTest, DeltaMissingWhenPreviousWeekMissing) {
  EncoderConfig cfg;
  const TicketLabeler labeler{28};
  const auto block = encode_weeks(*data_, 21, 21, cfg, labeler);
  for (dslsim::LineId u = 0; u < data_->n_lines(); ++u) {
    if (dslsim::record_present(data_->measurement(20, u))) continue;
    for (std::size_t j = 25; j < 50; ++j) {
      EXPECT_TRUE(ml::is_missing(block.dataset.at(u, j)));
    }
  }
}

TEST_F(EncoderTest, TimeSeriesRoughlyStandardizedForHealthyLines) {
  EncoderConfig cfg;
  const TicketLabeler labeler{28};
  const auto block = encode_weeks(*data_, 40, 40, cfg, labeler);
  // Pooled z-scores of the attenuation metric: near zero mean, near
  // unit variance.
  double sum = 0.0;
  double sq = 0.0;
  std::size_t n = 0;
  const std::size_t ts_atten = 50 + 7;  // ts block + dnaten index
  for (dslsim::LineId u = 0; u < data_->n_lines(); ++u) {
    const float z = block.dataset.at(u, ts_atten);
    if (ml::is_missing(z)) continue;
    sum += z;
    sq += static_cast<double>(z) * z;
    ++n;
  }
  ASSERT_GT(n, 500U);
  EXPECT_NEAR(sum / static_cast<double>(n), 0.0, 0.25);
  EXPECT_NEAR(sq / static_cast<double>(n), 1.0, 0.6);
}

TEST_F(EncoderTest, ModemFractionWithinUnitInterval) {
  EncoderConfig cfg;
  const TicketLabeler labeler{28};
  const auto block = encode_weeks(*data_, 30, 30, cfg, labeler);
  const std::size_t modem_col = 80;
  for (dslsim::LineId u = 0; u < data_->n_lines(); ++u) {
    const float f = block.dataset.at(u, modem_col);
    EXPECT_GE(f, 0.0F);
    EXPECT_LE(f, 1.0F);
  }
}

TEST_F(EncoderTest, TicketRecencyDefaultsWhenNoHistory) {
  EncoderConfig cfg;
  const TicketLabeler labeler{28};
  const auto block = encode_weeks(*data_, 5, 5, cfg, labeler);
  const std::size_t ticket_col = 79;
  std::size_t defaults = 0;
  for (dslsim::LineId u = 0; u < data_->n_lines(); ++u) {
    if (block.dataset.at(u, ticket_col) == cfg.no_ticket_days) ++defaults;
  }
  // Early in the year most lines have never had a ticket.
  EXPECT_GT(defaults, data_->n_lines() * 9 / 10);
}

TEST_F(EncoderTest, QuadraticColumnsAreSquares) {
  EncoderConfig cfg;
  cfg.include_quadratic = true;
  const TicketLabeler labeler{28};
  const auto block = encode_weeks(*data_, 25, 25, cfg, labeler);
  for (dslsim::LineId u = 0; u < data_->n_lines(); u += 61) {
    for (std::size_t j = 0; j < 10; ++j) {
      const float base = block.dataset.at(u, j);
      const float quad = block.dataset.at(u, 81 + j);
      if (ml::is_missing(base)) {
        EXPECT_TRUE(ml::is_missing(quad));
      } else {
        EXPECT_NEAR(quad, base * base, std::fabs(base) * 1e-2 + 1e-3);
      }
    }
  }
}

TEST_F(EncoderTest, ProductColumnsAreProducts) {
  EncoderConfig cfg;
  cfg.product_pairs = {{1, 2}};
  const TicketLabeler labeler{28};
  const auto block = encode_weeks(*data_, 25, 25, cfg, labeler);
  const std::size_t pcol = 81;
  for (dslsim::LineId u = 0; u < data_->n_lines(); u += 71) {
    const float a = block.dataset.at(u, 1);
    const float b = block.dataset.at(u, 2);
    const float p = block.dataset.at(u, pcol);
    if (ml::is_missing(a) || ml::is_missing(b)) {
      EXPECT_TRUE(ml::is_missing(p));
    } else {
      EXPECT_NEAR(p, a * b, std::fabs(a * b) * 1e-3 + 1e-3);
    }
  }
}

TEST_F(EncoderTest, LabelsMatchTicketQueries) {
  EncoderConfig cfg;
  const TicketLabeler labeler{28};
  const auto block = encode_weeks(*data_, 30, 30, cfg, labeler);
  const util::Day day = util::saturday_of_week(30);
  for (dslsim::LineId u = 0; u < data_->n_lines(); u += 13) {
    const auto next = data_->next_edge_ticket_after(u, day);
    const bool expect_positive = next.has_value() && *next <= day + 28;
    EXPECT_EQ(block.dataset.label(u), expect_positive) << u;
  }
}

TEST_F(EncoderTest, EmitRangeClampedToSimulation) {
  EncoderConfig cfg;
  const TicketLabeler labeler{28};
  const auto block = encode_weeks(*data_, -5, 1, cfg, labeler);
  EXPECT_EQ(block.dataset.n_rows(), data_->n_lines() * 2U);
}

TEST_F(EncoderTest, DispatchEncodingCoversNotesInRange) {
  EncoderConfig cfg;
  const auto block = encode_at_dispatch(*data_, 30, 36, cfg);
  EXPECT_GT(block.dataset.n_rows(), 0U);
  EXPECT_EQ(block.note_of_row.size(), block.dataset.n_rows());
  for (std::uint32_t idx : block.note_of_row) {
    const auto& note = data_->notes()[idx];
    const int w = util::test_week_of(note.dispatch_day);
    EXPECT_GE(std::min(w, data_->n_weeks() - 1), 30);
    EXPECT_LE(std::min(w, data_->n_weeks() - 1), 36);
  }
}

TEST_F(EncoderTest, DispatchWeeksBeyondSimulationClamp) {
  // Tickets resolved after the last Saturday still get rows, encoded
  // against the final week's measurement.
  EncoderConfig cfg;
  const auto block =
      encode_at_dispatch(*data_, data_->n_weeks() - 2, data_->n_weeks() + 5,
                         cfg);
  for (std::uint32_t idx : block.note_of_row) {
    const int w = util::test_week_of(data_->notes()[idx].dispatch_day);
    EXPECT_GE(w, data_->n_weeks() - 2);
  }
}

TEST_F(EncoderTest, EmptyEmitRangeGivesEmptyBlock) {
  EncoderConfig cfg;
  const TicketLabeler labeler{28};
  const auto block = encode_weeks(*data_, 12, 10, cfg, labeler);
  EXPECT_EQ(block.dataset.n_rows(), 0U);
}

TEST_F(EncoderTest, HorizonChangesLabelDensity) {
  EncoderConfig cfg;
  const auto short_block = encode_weeks(*data_, 30, 30, cfg, TicketLabeler{7});
  const auto long_block = encode_weeks(*data_, 30, 30, cfg, TicketLabeler{56});
  EXPECT_GT(long_block.dataset.positives(), short_block.dataset.positives());
}

TEST_F(EncoderTest, DispatchRowsMatchSaturdayMeasurement) {
  EncoderConfig cfg;
  const auto block = encode_at_dispatch(*data_, 30, 36, cfg);
  for (std::size_t r = 0; r < block.dataset.n_rows(); r += 7) {
    const auto& note = data_->notes()[block.note_of_row[r]];
    const int w =
        std::min(util::test_week_of(note.dispatch_day), data_->n_weeks() - 1);
    const auto& m = data_->measurement(w, note.line);
    const float got = block.dataset.at(r, 1);
    if (ml::is_missing(m[1])) {
      EXPECT_TRUE(ml::is_missing(got));
    } else {
      EXPECT_EQ(got, m[1]);
    }
  }
}

}  // namespace
}  // namespace nevermind::features
