// Tests for the zero-copy data plane: DatasetView composition over a
// FeatureArena must reproduce the semantics the old copying
// select_rows/select_columns had, and the whole pipeline must stay
// byte-identical across thread counts when it runs on views.
#include "ml/dataset.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/nevermind.hpp"
#include "dslsim/simulator.hpp"
#include "exec/exec.hpp"

namespace nevermind::ml {
namespace {

FeatureArena make_reference() {
  // 6x4 reference matrix with a missing cell and mixed labels.
  FeatureArena d(
      {{"a", false}, {"b", false}, {"c", true}, {"d", false}});
  const float rows[][4] = {
      {1.0F, 10.0F, 0.0F, -1.0F},  {2.0F, 20.0F, 1.0F, -2.0F},
      {3.0F, kMissing, 0.0F, -3.0F}, {4.0F, 40.0F, 1.0F, -4.0F},
      {5.0F, 50.0F, 2.0F, -5.0F},  {6.0F, 60.0F, 0.0F, -6.0F}};
  const bool labels[] = {false, true, false, true, true, false};
  for (int i = 0; i < 6; ++i) d.add_row(rows[i], labels[i]);
  return d;
}

/// The old copy semantics, spelled out: gather the listed rows then the
/// listed columns into a fresh owning matrix.
FeatureArena copy_select(const FeatureArena& d,
                         const std::vector<std::size_t>& rows,
                         const std::vector<std::size_t>& cols) {
  std::vector<ColumnInfo> infos;
  for (std::size_t j : cols) infos.push_back(d.columns()[j]);
  FeatureArena out(std::move(infos), rows.size());
  std::vector<float> row(cols.size());
  for (std::size_t i : rows) {
    for (std::size_t k = 0; k < cols.size(); ++k) {
      row[k] = d.at(i, cols[k]);
    }
    out.add_row(row, d.label(i) != 0);
  }
  return out;
}

void expect_view_equals_arena(const DatasetView& view,
                              const FeatureArena& expected) {
  ASSERT_EQ(view.n_rows(), expected.n_rows());
  ASSERT_EQ(view.n_cols(), expected.n_cols());
  for (std::size_t j = 0; j < view.n_cols(); ++j) {
    EXPECT_EQ(view.column_info(j).name, expected.column_info(j).name);
    EXPECT_EQ(view.column_info(j).categorical,
              expected.column_info(j).categorical);
    const ColumnView col = view.column(j);
    ASSERT_EQ(col.size(), expected.n_rows());
    for (std::size_t i = 0; i < view.n_rows(); ++i) {
      const float a = view.at(i, j);
      const float b = expected.at(i, j);
      if (is_missing(b)) {
        EXPECT_TRUE(is_missing(a)) << "row " << i << " col " << j;
        EXPECT_TRUE(is_missing(col[i]));
      } else {
        EXPECT_EQ(a, b) << "row " << i << " col " << j;
        EXPECT_EQ(col[i], b);
      }
    }
  }
  for (std::size_t i = 0; i < view.n_rows(); ++i) {
    EXPECT_EQ(view.label(i) != 0, expected.label(i) != 0) << "row " << i;
  }
  EXPECT_EQ(view.positives(), expected.positives());
}

TEST(DatasetView, IdentityViewSeesWholeArena) {
  const FeatureArena d = make_reference();
  const DatasetView v(d);
  expect_view_equals_arena(
      v, copy_select(d, {0, 1, 2, 3, 4, 5}, {0, 1, 2, 3}));
}

TEST(DatasetView, RowThenColumnCompositionMatchesCopySemantics) {
  const FeatureArena d = make_reference();
  const std::vector<std::size_t> rows = {5, 1, 3};
  const std::vector<std::size_t> cols = {2, 0};
  const DatasetView v = DatasetView(d).rows(rows).cols(cols);
  expect_view_equals_arena(v, copy_select(d, rows, cols));
  // And the other composition order.
  const DatasetView w = DatasetView(d).cols(cols).rows(rows);
  expect_view_equals_arena(w, copy_select(d, rows, cols));
}

TEST(DatasetView, ViewOfViewComposesWithoutMaterializing) {
  const FeatureArena d = make_reference();
  // Row indices of the second selection are positions WITHIN the first
  // view, exactly like chaining two copying select_rows calls.
  const std::vector<std::size_t> outer = {5, 4, 3, 2};
  const std::vector<std::size_t> inner = {3, 0};  // arena rows 2, 5
  const DatasetView v = DatasetView(d).rows(outer).rows(inner);
  expect_view_equals_arena(v, copy_select(d, {2, 5}, {0, 1, 2, 3}));
  EXPECT_EQ(&v.arena(), &d);
}

TEST(DatasetView, MaterializeRoundTripsTheView) {
  const FeatureArena d = make_reference();
  const std::vector<std::size_t> rows = {4, 0, 2};
  const std::vector<std::size_t> cols = {3, 1};
  const DatasetView v = DatasetView(d).rows(rows).cols(cols);
  const FeatureArena copy = materialize(v);
  expect_view_equals_arena(v, copy);
  expect_view_equals_arena(DatasetView(copy), copy_select(d, rows, cols));
}

TEST(DatasetView, EmptyFullAndSingletonIndexSets) {
  const FeatureArena d = make_reference();
  const DatasetView none = DatasetView(d).rows(std::vector<std::size_t>{});
  EXPECT_EQ(none.n_rows(), 0U);
  EXPECT_EQ(none.n_cols(), 4U);
  EXPECT_EQ(none.positives(), 0U);
  EXPECT_TRUE(none.labels_copy().empty());

  const std::vector<std::size_t> all = {0, 1, 2, 3, 4, 5};
  expect_view_equals_arena(DatasetView(d).rows(all),
                           copy_select(d, all, {0, 1, 2, 3}));

  const DatasetView one =
      DatasetView(d).rows(std::vector<std::size_t>{3}).cols(
          std::vector<std::size_t>{1});
  ASSERT_EQ(one.n_rows(), 1U);
  ASSERT_EQ(one.n_cols(), 1U);
  EXPECT_EQ(one.at(0, 0), 40.0F);
  EXPECT_EQ(one.positives(), 1U);

  const DatasetView no_cols = DatasetView(d).cols(std::vector<std::size_t>{});
  EXPECT_EQ(no_cols.n_rows(), 6U);
  EXPECT_EQ(no_cols.n_cols(), 0U);
}

TEST(DatasetView, OutOfRangeIndicesThrow) {
  const FeatureArena d = make_reference();
  EXPECT_THROW((void)DatasetView(d).rows(std::vector<std::size_t>{6}),
               std::out_of_range);
  EXPECT_THROW((void)DatasetView(d).cols(std::vector<std::size_t>{4}),
               std::out_of_range);
  // Indices of a sub-view are view-local: row 2 of a 2-row view is out
  // of range even though the arena has 6 rows.
  const DatasetView v = DatasetView(d).rows(std::vector<std::size_t>{0, 1});
  EXPECT_THROW((void)v.rows(std::vector<std::size_t>{2}), std::out_of_range);
  EXPECT_THROW((void)v.at(2, 0), std::out_of_range);
}

TEST(DatasetView, RelabelThroughViewForOneVsRestTargets) {
  // The trouble locator trains 52 one-vs-rest problems against one
  // shared matrix, each with its own label vector. Relabel must not
  // disturb the arena and must survive further row composition.
  const FeatureArena d = make_reference();
  const std::vector<std::uint8_t> target = {1, 0, 1, 0, 0, 1};
  const DatasetView v = DatasetView(d).relabel(target);

  EXPECT_EQ(v.positives(), 3U);
  std::vector<std::uint8_t> storage;
  const auto labels = v.labels(storage);
  ASSERT_EQ(labels.size(), 6U);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(labels[i], target[i]);
  // Arena labels untouched.
  EXPECT_EQ(d.positives(), 3U);
  EXPECT_EQ(d.label(0), 0);

  // Row selection carries the override through in view order.
  const DatasetView sub = v.rows(std::vector<std::size_t>{5, 1, 0});
  EXPECT_EQ(sub.label(0), 1);
  EXPECT_EQ(sub.label(1), 0);
  EXPECT_EQ(sub.label(2), 1);
  EXPECT_EQ(sub.positives(), 2U);

  EXPECT_THROW((void)v.relabel(std::vector<std::uint8_t>{1}),
               std::invalid_argument);
}

TEST(DatasetView, LabelsSpanIsZeroCopyOnIdentityRows) {
  const FeatureArena d = make_reference();
  const DatasetView v(d);
  std::vector<std::uint8_t> storage;
  const auto labels = v.labels(storage);
  EXPECT_TRUE(storage.empty());  // no gather happened
  EXPECT_EQ(labels.data(), d.labels().data());
}

// ---------------------------------------------------------------------
// Pipeline-level guarantee: training, locating and ranking through the
// view-based data plane stays byte-identical at threads {1, 8}.
// ---------------------------------------------------------------------

TEST(DatasetViewDeterminism, RunWeekByteIdenticalAcrossThreadCounts) {
  dslsim::SimConfig sim_cfg;
  sim_cfg.seed = 77;
  sim_cfg.topology.n_lines = 1500;
  const dslsim::SimDataset data = dslsim::Simulator(sim_cfg).run();

  const auto run_pipeline = [&](std::size_t threads) {
    core::NevermindConfig cfg;
    cfg.exec = threads > 1 ? exec::ExecContext(threads) : exec::ExecContext();
    cfg.predictor.top_n = 30;
    cfg.predictor.boost_iterations = 40;
    cfg.locator.min_occurrences = 6;
    cfg.locator.boost_iterations = 20;
    cfg.atds.weekly_capacity = 30;
    core::Nevermind system(cfg);
    system.train(data, 30, 38, 20, 36);
    return system.run_week(data, 43);
  };

  const core::WeeklyCycle serial = run_pipeline(1);
  const core::WeeklyCycle wide = run_pipeline(8);

  ASSERT_EQ(serial.predictions.size(), wide.predictions.size());
  for (std::size_t i = 0; i < serial.predictions.size(); ++i) {
    ASSERT_EQ(serial.predictions[i].line, wide.predictions[i].line)
        << "rank " << i;
    ASSERT_EQ(serial.predictions[i].score, wide.predictions[i].score)
        << "rank " << i;
    ASSERT_EQ(serial.predictions[i].probability,
              wide.predictions[i].probability)
        << "rank " << i;
  }
  EXPECT_EQ(serial.atds.submitted, wide.atds.submitted);
}

}  // namespace
}  // namespace nevermind::ml
