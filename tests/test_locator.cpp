#include "core/trouble_locator.hpp"

#include <gtest/gtest.h>

#include "util/stats.hpp"

namespace nevermind::core {
namespace {

class LocatorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dslsim::SimConfig cfg;
    cfg.seed = 31;
    cfg.topology.n_lines = 8000;
    data_ = new dslsim::SimDataset(dslsim::Simulator(cfg).run());

    LocatorConfig lcfg;
    lcfg.min_occurrences = 8;
    lcfg.boost_iterations = 60;
    locator_ = new TroubleLocator(lcfg);
    locator_->train(*data_, 20, 36);

    test_block_ = new features::LocatorBlock(
        features::encode_at_dispatch(*data_, 37, 48, lcfg.encoder));
  }
  static void TearDownTestSuite() {
    delete test_block_;
    delete locator_;
    delete data_;
    test_block_ = nullptr;
    locator_ = nullptr;
    data_ = nullptr;
  }

  static bool covered(dslsim::DispositionId d) {
    for (auto c : locator_->covered()) {
      if (c == d) return true;
    }
    return false;
  }

  static std::vector<float> row(std::size_t r) {
    std::vector<float> out(test_block_->dataset.n_cols());
    for (std::size_t j = 0; j < out.size(); ++j) {
      out[j] = test_block_->dataset.at(r, j);
    }
    return out;
  }

  static const dslsim::SimDataset* data_;
  static TroubleLocator* locator_;
  static features::LocatorBlock* test_block_;
};

const dslsim::SimDataset* LocatorTest::data_ = nullptr;
TroubleLocator* LocatorTest::locator_ = nullptr;
features::LocatorBlock* LocatorTest::test_block_ = nullptr;

TEST_F(LocatorTest, CoversCommonDispositions) {
  EXPECT_TRUE(locator_->trained());
  EXPECT_GE(locator_->covered().size(), 10U);
  // The most frequent canonical faults must be covered.
  bool has_modem = false;
  for (auto d : locator_->covered()) {
    if (data_->catalog().signature(d).code == "HN-MODEM") has_modem = true;
  }
  EXPECT_TRUE(has_modem);
}

TEST_F(LocatorTest, RankReturnsAllCoveredSortedByProbability) {
  const auto r = row(0);
  for (const auto kind :
       {LocatorModelKind::kExperience, LocatorModelKind::kFlat,
        LocatorModelKind::kCombined}) {
    const auto ranking = locator_->rank(r, kind);
    ASSERT_EQ(ranking.size(), locator_->covered().size());
    for (std::size_t i = 1; i < ranking.size(); ++i) {
      EXPECT_GE(ranking[i - 1].probability, ranking[i].probability);
    }
    for (const auto& rd : ranking) {
      EXPECT_GE(rd.probability, 0.0);
      EXPECT_LE(rd.probability, 1.0);
    }
  }
}

TEST_F(LocatorTest, ExperienceRankingIsInputIndependent) {
  const auto ranking_a = locator_->rank(row(0), LocatorModelKind::kExperience);
  const auto ranking_b = locator_->rank(row(1), LocatorModelKind::kExperience);
  ASSERT_EQ(ranking_a.size(), ranking_b.size());
  for (std::size_t i = 0; i < ranking_a.size(); ++i) {
    EXPECT_EQ(ranking_a[i].disposition, ranking_b[i].disposition);
  }
}

TEST_F(LocatorTest, ExperiencePriorsSumToCoverage) {
  double total = 0.0;
  for (const auto& rd : locator_->rank(row(0), LocatorModelKind::kExperience)) {
    total += rd.probability;
  }
  EXPECT_GT(total, 0.5);
  EXPECT_LE(total, 1.0 + 1e-9);
}

TEST_F(LocatorTest, RankOfUncoveredIsListSizePlusOne) {
  // A disposition id beyond the catalogue is never covered.
  const auto r = row(0);
  const auto rank = locator_->rank_of(
      r, static_cast<dslsim::DispositionId>(9999), LocatorModelKind::kFlat);
  EXPECT_EQ(rank, locator_->covered().size() + 1);
}

TEST_F(LocatorTest, ModelsBeatExperienceOnAverage) {
  std::vector<double> exp_ranks;
  std::vector<double> flat_ranks;
  std::vector<double> comb_ranks;
  for (std::size_t r = 0; r < test_block_->dataset.n_rows(); ++r) {
    const auto& note = data_->notes()[test_block_->note_of_row[r]];
    if (!covered(note.disposition)) continue;
    const auto features_row = row(r);
    exp_ranks.push_back(static_cast<double>(locator_->rank_of(
        features_row, note.disposition, LocatorModelKind::kExperience)));
    flat_ranks.push_back(static_cast<double>(locator_->rank_of(
        features_row, note.disposition, LocatorModelKind::kFlat)));
    comb_ranks.push_back(static_cast<double>(locator_->rank_of(
        features_row, note.disposition, LocatorModelKind::kCombined)));
  }
  ASSERT_GT(exp_ranks.size(), 100U);
  EXPECT_LT(util::mean(flat_ranks), util::mean(exp_ranks));
  EXPECT_LT(util::mean(comb_ranks), util::mean(exp_ranks));
}

TEST_F(LocatorTest, CombinedCompetitiveWithFlatOverall) {
  // The rare-disposition advantage of the combined model (the paper's
  // motivation for Eq. 2) is a population-scale effect, demonstrated by
  // bench_fig10_rank_change and bench_ablation_combined_model at 40K
  // lines. At this unit-test scale we assert the robust invariant: the
  // hierarchy stacking never costs much against the flat model on
  // average.
  std::vector<double> flat_ranks;
  std::vector<double> comb_ranks;
  for (std::size_t r = 0; r < test_block_->dataset.n_rows(); ++r) {
    const auto& note = data_->notes()[test_block_->note_of_row[r]];
    if (!covered(note.disposition)) continue;
    const auto features_row = row(r);
    flat_ranks.push_back(static_cast<double>(locator_->rank_of(
        features_row, note.disposition, LocatorModelKind::kFlat)));
    comb_ranks.push_back(static_cast<double>(locator_->rank_of(
        features_row, note.disposition, LocatorModelKind::kCombined)));
  }
  ASSERT_GT(flat_ranks.size(), 50U);
  EXPECT_LT(util::mean(comb_ranks), util::mean(flat_ranks) + 1.0);
}

TEST_F(LocatorTest, LocationRankingIsProbabilityDistribution) {
  const auto locations = locator_->rank_locations(row(0));
  ASSERT_EQ(locations.size(), dslsim::kNumMajorLocations);
  double total = 0.0;
  for (std::size_t i = 0; i < locations.size(); ++i) {
    EXPECT_GE(locations[i].probability, 0.0);
    EXPECT_LE(locations[i].probability, 1.0);
    if (i > 0) {
      EXPECT_GE(locations[i - 1].probability, locations[i].probability);
    }
    total += locations[i].probability;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_F(LocatorTest, LocationRankingBeatsUniformGuessing) {
  // The top-ranked major location should contain the true one far more
  // often than the 25% a uniform guess would achieve.
  std::size_t hits = 0;
  std::size_t n = 0;
  for (std::size_t r = 0; r < test_block_->dataset.n_rows(); ++r) {
    const auto& note = data_->notes()[test_block_->note_of_row[r]];
    const auto locations = locator_->rank_locations(row(r));
    hits += locations.front().location == note.location ? 1 : 0;
    ++n;
  }
  ASSERT_GT(n, 100U);
  EXPECT_GT(static_cast<double>(hits) / static_cast<double>(n), 0.35);
}

TEST_F(LocatorTest, NoDispatchesThrows) {
  LocatorConfig cfg;
  TroubleLocator fresh(cfg);
  dslsim::SimConfig scfg;
  scfg.topology.n_lines = 200;
  scfg.weekly_fault_rate = 0.0;
  scfg.billing_tickets_per_line_year = 0.0;
  const auto empty = dslsim::Simulator(scfg).run();
  EXPECT_THROW(fresh.train(empty, 0, 10), std::invalid_argument);
}

TEST_F(LocatorTest, ModelNames) {
  EXPECT_STREQ(locator_model_name(LocatorModelKind::kExperience),
               "experience");
  EXPECT_STREQ(locator_model_name(LocatorModelKind::kFlat), "flat");
  EXPECT_STREQ(locator_model_name(LocatorModelKind::kCombined), "combined");
}

}  // namespace
}  // namespace nevermind::core
