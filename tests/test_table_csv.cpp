#include <gtest/gtest.h>

#include <sstream>

#include "util/csv.hpp"
#include "util/table.hpp"

namespace nevermind::util {
namespace {

TEST(Table, AlignsColumns) {
  Table t({"a", "long-header"});
  t.add_row({"xx", "y"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("a  | long-header"), std::string::npos);
  EXPECT_NE(out.find("---+"), std::string::npos);
  EXPECT_NE(out.find("xx | y"), std::string::npos);
}

TEST(Table, PadsShortRows) {
  Table t({"a", "b", "c"});
  t.add_row({"1"});
  std::ostringstream os;
  t.print(os);
  EXPECT_EQ(t.rows(), 1U);
}

TEST(Table, TruncatesLongRows) {
  Table t({"a"});
  t.add_row({"1", "spillover"});
  std::ostringstream os;
  t.print(os);
  EXPECT_EQ(os.str().find("spillover"), std::string::npos);
}

TEST(FmtDouble, Precision) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(2.0, 0), "2");
  EXPECT_EQ(fmt_double(-1.5, 1), "-1.5");
}

TEST(FmtPercent, Formats) {
  EXPECT_EQ(fmt_percent(0.378), "37.8%");
  EXPECT_EQ(fmt_percent(1.0, 0), "100%");
}

TEST(Banner, ContainsTitle) {
  std::ostringstream os;
  print_banner(os, "My Title");
  EXPECT_NE(os.str().find("My Title"), std::string::npos);
}

TEST(Csv, WritesPlainRow) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row({"a", "b", "c"});
  EXPECT_EQ(os.str(), "a,b,c\n");
}

TEST(Csv, QuotesSpecialCharacters) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row({"has,comma", "has\"quote", "plain"});
  EXPECT_EQ(os.str(), "\"has,comma\",\"has\"\"quote\",plain\n");
}

TEST(Csv, ParseSimpleLine) {
  const auto cells = parse_csv_line("a,b,c");
  ASSERT_EQ(cells.size(), 3U);
  EXPECT_EQ(cells[0], "a");
  EXPECT_EQ(cells[2], "c");
}

TEST(Csv, ParseQuotedComma) {
  const auto cells = parse_csv_line("\"x,y\",z");
  ASSERT_EQ(cells.size(), 2U);
  EXPECT_EQ(cells[0], "x,y");
}

TEST(Csv, ParseDoubledQuote) {
  const auto cells = parse_csv_line("\"say \"\"hi\"\"\"");
  ASSERT_EQ(cells.size(), 1U);
  EXPECT_EQ(cells[0], "say \"hi\"");
}

TEST(Csv, ParseEmptyFields) {
  const auto cells = parse_csv_line("a,,b,");
  ASSERT_EQ(cells.size(), 4U);
  EXPECT_EQ(cells[1], "");
  EXPECT_EQ(cells[3], "");
}

TEST(Csv, RoundTrip) {
  std::ostringstream os;
  CsvWriter w(os);
  const std::vector<std::string> original = {"plain", "with,comma",
                                             "with\"quote", ""};
  w.write_row(original);
  std::istringstream is(os.str());
  const auto rows = read_csv(is);
  ASSERT_EQ(rows.size(), 1U);
  EXPECT_EQ(rows[0], original);
}

TEST(Csv, ReadSkipsEmptyLines) {
  std::istringstream is("a,b\n\nc,d\n");
  const auto rows = read_csv(is);
  EXPECT_EQ(rows.size(), 2U);
}

TEST(Csv, StripsCarriageReturns) {
  const auto cells = parse_csv_line("a,b\r");
  ASSERT_EQ(cells.size(), 2U);
  EXPECT_EQ(cells[1], "b");
}

}  // namespace
}  // namespace nevermind::util
