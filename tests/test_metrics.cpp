#include "ml/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace nevermind::ml {
namespace {

TEST(RankByScore, DescendingWithStableTies) {
  const std::vector<double> scores = {0.5, 0.9, 0.5, 0.1};
  const auto order = rank_by_score(scores);
  ASSERT_EQ(order.size(), 4U);
  EXPECT_EQ(order[0], 1U);
  EXPECT_EQ(order[1], 0U);  // tie broken by original index
  EXPECT_EQ(order[2], 2U);
  EXPECT_EQ(order[3], 3U);
}

TEST(PrecisionAtK, HandComputed) {
  const std::vector<double> scores = {0.9, 0.8, 0.7, 0.6};
  const std::vector<std::uint8_t> labels = {1, 0, 1, 0};
  EXPECT_NEAR(precision_at_k(scores, labels, 1), 1.0, 1e-12);
  EXPECT_NEAR(precision_at_k(scores, labels, 2), 0.5, 1e-12);
  EXPECT_NEAR(precision_at_k(scores, labels, 3), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(precision_at_k(scores, labels, 4), 0.5, 1e-12);
}

TEST(PrecisionAtK, KBeyondSizeUsesAll) {
  const std::vector<double> scores = {0.9, 0.1};
  const std::vector<std::uint8_t> labels = {1, 1};
  EXPECT_NEAR(precision_at_k(scores, labels, 100), 1.0, 1e-12);
}

TEST(PrecisionAtK, ZeroKIsZero) {
  const std::vector<double> scores = {0.9};
  const std::vector<std::uint8_t> labels = {1};
  EXPECT_EQ(precision_at_k(scores, labels, 0), 0.0);
}

TEST(PrecisionCurve, MultipleCutoffsConsistent) {
  util::Rng rng(1);
  std::vector<double> scores(500);
  std::vector<std::uint8_t> labels(500);
  for (std::size_t i = 0; i < 500; ++i) {
    scores[i] = rng.uniform();
    labels[i] = rng.bernoulli(0.3) ? 1 : 0;
  }
  const std::size_t cutoffs[] = {10, 50, 200};
  const auto curve = precision_curve(scores, labels, cutoffs);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(curve[i], precision_at_k(scores, labels, cutoffs[i]), 1e-12);
  }
}

TEST(TopNAp, PaperDefinitionHandComputed) {
  // Ranking: [1, 0, 1], N = 3.
  // AP(3) = (Prec(1)*1 + Prec(3)*1) / 3 = (1 + 2/3) / 3.
  const std::vector<double> scores = {0.9, 0.8, 0.7};
  const std::vector<std::uint8_t> labels = {1, 0, 1};
  EXPECT_NEAR(top_n_average_precision(scores, labels, 3),
              (1.0 + 2.0 / 3.0) / 3.0, 1e-12);
}

TEST(TopNAp, DividesByNNotByPositives) {
  // One positive at rank 1, N = 10: AP = 1/10 (favors dense hits).
  std::vector<double> scores(10);
  std::vector<std::uint8_t> labels(10, 0);
  for (std::size_t i = 0; i < 10; ++i) scores[i] = 1.0 - 0.01 * static_cast<double>(i);
  labels[0] = 1;
  EXPECT_NEAR(top_n_average_precision(scores, labels, 10), 0.1, 1e-12);
}

TEST(TopNAp, PerfectRankingApproachesOne) {
  std::vector<double> scores;
  std::vector<std::uint8_t> labels;
  for (int i = 0; i < 100; ++i) {
    scores.push_back(100.0 - i);
    labels.push_back(i < 50 ? 1 : 0);
  }
  EXPECT_NEAR(top_n_average_precision(scores, labels, 50), 1.0, 1e-12);
}

TEST(TopNAp, RewardsEarlyPositives) {
  // Same positives, better placement -> higher AP(N).
  const std::vector<std::uint8_t> early = {1, 1, 0, 0};
  const std::vector<std::uint8_t> late = {0, 0, 1, 1};
  const std::vector<double> scores = {0.9, 0.8, 0.7, 0.6};
  EXPECT_GT(top_n_average_precision(scores, early, 4),
            top_n_average_precision(scores, late, 4));
}

TEST(TopNAp, ZeroNIsZero) {
  const std::vector<double> scores = {1.0};
  const std::vector<std::uint8_t> labels = {1};
  EXPECT_EQ(top_n_average_precision(scores, labels, 0), 0.0);
}

TEST(AveragePrecision, HandComputed) {
  // Ranking [1, 0, 1]: AP = (1 + 2/3) / 2.
  const std::vector<double> scores = {0.9, 0.8, 0.7};
  const std::vector<std::uint8_t> labels = {1, 0, 1};
  EXPECT_NEAR(average_precision(scores, labels), (1.0 + 2.0 / 3.0) / 2.0,
              1e-12);
}

TEST(AveragePrecision, NoPositivesIsZero) {
  const std::vector<double> scores = {0.5, 0.4};
  const std::vector<std::uint8_t> labels = {0, 0};
  EXPECT_EQ(average_precision(scores, labels), 0.0);
}

TEST(Auc, PerfectRanking) {
  const std::vector<double> scores = {0.9, 0.8, 0.2, 0.1};
  const std::vector<std::uint8_t> labels = {1, 1, 0, 0};
  EXPECT_NEAR(auc(scores, labels), 1.0, 1e-12);
}

TEST(Auc, InvertedRanking) {
  const std::vector<double> scores = {0.1, 0.2, 0.8, 0.9};
  const std::vector<std::uint8_t> labels = {1, 1, 0, 0};
  EXPECT_NEAR(auc(scores, labels), 0.0, 1e-12);
}

TEST(Auc, RandomScoresNearHalf) {
  util::Rng rng(2);
  std::vector<double> scores(20000);
  std::vector<std::uint8_t> labels(20000);
  for (std::size_t i = 0; i < scores.size(); ++i) {
    scores[i] = rng.uniform();
    labels[i] = rng.bernoulli(0.2) ? 1 : 0;
  }
  EXPECT_NEAR(auc(scores, labels), 0.5, 0.02);
}

TEST(Auc, TiesContributeHalf) {
  // All scores equal: AUC must be exactly 0.5.
  const std::vector<double> scores = {1.0, 1.0, 1.0, 1.0};
  const std::vector<std::uint8_t> labels = {1, 0, 1, 0};
  EXPECT_NEAR(auc(scores, labels), 0.5, 1e-12);
}

TEST(Auc, DegenerateSingleClassIsHalf) {
  const std::vector<double> scores = {0.1, 0.9};
  const std::vector<std::uint8_t> all_pos = {1, 1};
  const std::vector<std::uint8_t> all_neg = {0, 0};
  EXPECT_EQ(auc(scores, all_pos), 0.5);
  EXPECT_EQ(auc(scores, all_neg), 0.5);
}

/// Property: AUC is invariant under strictly monotone score transforms.
class AucInvariance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AucInvariance, MonotoneTransformInvariant) {
  util::Rng rng(GetParam());
  std::vector<double> scores(300);
  std::vector<double> transformed(300);
  std::vector<std::uint8_t> labels(300);
  for (std::size_t i = 0; i < scores.size(); ++i) {
    scores[i] = rng.normal();
    transformed[i] = std::exp(scores[i] * 0.5) * 3.0 + 7.0;
    labels[i] = rng.bernoulli(0.4) ? 1 : 0;
  }
  EXPECT_NEAR(auc(scores, labels), auc(transformed, labels), 1e-12);
}

TEST_P(AucInvariance, TopNApBoundedByPrecision) {
  // AP(N) <= Prec@N is not generally true, but AP(N) <= 1 and >= 0 is;
  // also AP(N) >= Prec@N^2 / e is too loose to assert — instead check
  // AP(N) == 0 iff the top N contain no positive.
  util::Rng rng(GetParam() ^ 0x55);
  std::vector<double> scores(200);
  std::vector<std::uint8_t> labels(200);
  for (std::size_t i = 0; i < scores.size(); ++i) {
    scores[i] = rng.uniform();
    labels[i] = rng.bernoulli(0.1) ? 1 : 0;
  }
  const double ap = top_n_average_precision(scores, labels, 50);
  const double prec = precision_at_k(scores, labels, 50);
  EXPECT_GE(ap, 0.0);
  EXPECT_LE(ap, 1.0);
  EXPECT_EQ(ap == 0.0, prec == 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AucInvariance,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace nevermind::ml
