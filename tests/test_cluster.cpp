// Cluster-layer tests: the fake-clock membership ladder, the pure
// shard-map construction/rebuild functions, bitwise wire round-trips
// (plus adversarial truncated/garbage decodes) for every protocol-v2
// payload, the exact export/import line-state transfer, and a small
// live two-node cluster driven through the ShardRouter — ingest fan-
// out, byte-identical scores, failover after a hard kill, and HANDOFF
// rejoin.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "cluster/membership.hpp"
#include "cluster/node.hpp"
#include "cluster/router.hpp"
#include "cluster/types.hpp"
#include "core/ticket_predictor.hpp"
#include "dslsim/simulator.hpp"
#include "net/protocol.hpp"
#include "serve/line_state_store.hpp"
#include "serve/model_registry.hpp"
#include "serve/scoring_service.hpp"
#include "util/rng.hpp"

namespace nevermind::cluster {
namespace {

using namespace std::chrono_literals;
using TimePoint = Membership::TimePoint;

// ---- membership: fake-clock ladder -------------------------------------

MembershipConfig fast_config() {
  MembershipConfig cfg;
  cfg.suspect_after = 100ms;
  cfg.dead_after = 300ms;
  return cfg;
}

TEST(Membership, UpSuspectDeadRejoinLadder) {
  const TimePoint t0{};
  Membership m(fast_config());
  m.add_peer(7, t0);
  EXPECT_EQ(m.state_of(7), PeerState::kUp);

  // Heartbeats keep it up forever.
  EXPECT_TRUE(m.tick(t0 + 90ms).empty());
  EXPECT_TRUE(m.record_heartbeat(7, t0 + 90ms).empty());
  EXPECT_TRUE(m.tick(t0 + 180ms).empty());

  // Silence: suspect after suspect_after, dead after dead_after.
  auto tr = m.tick(t0 + 200ms);
  ASSERT_EQ(tr.size(), 1U);
  EXPECT_EQ(tr[0].node, 7U);
  EXPECT_EQ(tr[0].from, PeerState::kUp);
  EXPECT_EQ(tr[0].to, PeerState::kSuspect);
  EXPECT_EQ(m.state_of(7), PeerState::kSuspect);
  EXPECT_TRUE(m.dead_peers().empty());

  tr = m.tick(t0 + 500ms);
  ASSERT_EQ(tr.size(), 1U);
  EXPECT_EQ(tr[0].from, PeerState::kSuspect);
  EXPECT_EQ(tr[0].to, PeerState::kDead);
  EXPECT_EQ(m.state_of(7), PeerState::kDead);
  EXPECT_EQ(m.dead_peers(), std::vector<NodeId>{7});

  // A heartbeat resurrects it immediately.
  tr = m.record_heartbeat(7, t0 + 600ms);
  ASSERT_EQ(tr.size(), 1U);
  EXPECT_EQ(tr[0].from, PeerState::kDead);
  EXPECT_EQ(tr[0].to, PeerState::kUp);
  EXPECT_EQ(m.state_of(7), PeerState::kUp);
  EXPECT_TRUE(m.dead_peers().empty());
}

TEST(Membership, FakeClockJumpWalksTheWholeLadderInOneTick) {
  const TimePoint t0{};
  Membership m(fast_config());
  m.add_peer(1, t0);
  const auto tr = m.tick(t0 + 10s);
  ASSERT_EQ(tr.size(), 2U);  // up -> suspect and suspect -> dead
  EXPECT_EQ(tr[0].to, PeerState::kSuspect);
  EXPECT_EQ(tr[1].to, PeerState::kDead);
  EXPECT_EQ(m.state_of(1), PeerState::kDead);
}

TEST(Membership, TransitionsReportAscendingAndVersionBumps) {
  const TimePoint t0{};
  Membership m(fast_config());
  m.add_peer(9, t0);
  m.add_peer(2, t0);
  m.add_peer(5, t0);
  const std::uint64_t v0 = m.version();
  const auto tr = m.tick(t0 + 150ms);
  ASSERT_EQ(tr.size(), 3U);
  EXPECT_EQ(tr[0].node, 2U);
  EXPECT_EQ(tr[1].node, 5U);
  EXPECT_EQ(tr[2].node, 9U);
  EXPECT_EQ(m.version(), v0 + 3);
  const auto snap = m.snapshot();
  ASSERT_EQ(snap.size(), 3U);
  EXPECT_EQ(snap[0].node, 2U);
  EXPECT_EQ(snap[2].node, 9U);
}

TEST(Membership, PeerAddedDeadStaysDeadUntilAHeartbeat) {
  // Adopting a map that already records a death must not resurrect the
  // node locally.
  const TimePoint t0{};
  Membership m(fast_config());
  m.add_peer(3, t0, /*alive=*/false);
  EXPECT_EQ(m.state_of(3), PeerState::kDead);
  EXPECT_TRUE(m.tick(t0 + 10s).empty());
  // add_peer is idempotent: re-announcing the peer keeps its state.
  m.add_peer(3, t0 + 10s);
  EXPECT_EQ(m.state_of(3), PeerState::kDead);
  EXPECT_FALSE(m.record_heartbeat(3, t0 + 11s).empty());
  EXPECT_EQ(m.state_of(3), PeerState::kUp);
}

TEST(Membership, UnknownAndRemovedPeersReadDead) {
  const TimePoint t0{};
  Membership m(fast_config());
  EXPECT_EQ(m.state_of(42), PeerState::kDead);
  EXPECT_FALSE(m.knows(42));
  m.add_peer(42, t0);
  EXPECT_TRUE(m.knows(42));
  m.remove_peer(42);
  EXPECT_FALSE(m.knows(42));
  EXPECT_EQ(m.state_of(42), PeerState::kDead);
}

// ---- shard map: construction + deterministic rebuild -------------------

std::vector<Endpoint> three_nodes() {
  return {{0, "127.0.0.1", 7000, true},
          {1, "127.0.0.1", 7001, true},
          {2, "127.0.0.1", 7002, true}};
}

TEST(ShardMapTest, MakeSpreadsPrimariesRoundRobin) {
  const ShardMap map = make_shard_map(three_nodes(), 12, 2);
  ASSERT_TRUE(map.valid());
  EXPECT_EQ(map.epoch, 1U);
  EXPECT_EQ(map.n_shards, 12U);
  EXPECT_EQ(map.replication, 2U);
  for (std::uint32_t s = 0; s < map.n_shards; ++s) {
    ASSERT_EQ(map.replicas[s].size(), 2U);
    EXPECT_EQ(map.replicas[s][0], s % 3);
    EXPECT_EQ(map.replicas[s][1], (s + 1) % 3);
    EXPECT_EQ(map.primary_of(s), s % 3);
  }
  EXPECT_EQ(map.index_of(2), 2U);
  EXPECT_EQ(map.index_of(99), std::nullopt);
}

TEST(ShardMapTest, RebuildIsPureAndMinimallyRotates) {
  const ShardMap base = make_shard_map(three_nodes(), 12, 2);
  const ShardMap a = rebuild_shard_map(base, {1});
  const ShardMap b = rebuild_shard_map(base, {1});
  // Pure function: two independent observers derive identical maps.
  EXPECT_EQ(a.epoch, base.epoch + 1);
  EXPECT_EQ(b.epoch, a.epoch);
  ASSERT_EQ(a.replicas, b.replicas);
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_EQ(a.nodes[i].alive, b.nodes[i].alive);
  }
  EXPECT_FALSE(a.nodes[1].alive);
  // Shards node 1 led fail over to their backup; shards merely backed
  // by node 1 keep their primary.
  for (std::uint32_t s = 0; s < a.n_shards; ++s) {
    if (base.replicas[s][0] == 1) {
      EXPECT_EQ(a.replicas[s][0], base.replicas[s][1]) << "shard " << s;
    } else {
      EXPECT_EQ(a.replicas[s][0], base.replicas[s][0]) << "shard " << s;
    }
    EXPECT_NE(a.primary_of(s), 1U);
  }
}

TEST(ShardMapTest, RevivedNodeDoesNotStealPrimaryshipBack) {
  ShardMap dead1 = rebuild_shard_map(make_shard_map(three_nodes(), 12, 2),
                                     {1});
  dead1.nodes[1].alive = true;  // readmitted
  const ShardMap revived = rebuild_shard_map(dead1, {});
  for (std::uint32_t s = 0; s < revived.n_shards; ++s) {
    // The promoted primaries keep leading; node 1 serves as backup.
    EXPECT_EQ(revived.replicas[s][0], dead1.replicas[s][0]) << "shard " << s;
  }
  const ShardMap all_dead = rebuild_shard_map(dead1, {0, 1, 2});
  for (std::uint32_t s = 0; s < all_dead.n_shards; ++s) {
    EXPECT_EQ(all_dead.primary_of(s), std::nullopt);
  }
}

TEST(ShardMapTest, ShardOfLineIsStableAndCoversAllShards) {
  std::vector<std::uint32_t> hits(12, 0);
  for (dslsim::LineId l = 0; l < 10000; ++l) {
    const std::uint32_t s = shard_of_line(l, 12);
    ASSERT_LT(s, 12U);
    ASSERT_EQ(s, shard_of_line(l, 12));  // pure
    ++hits[s];
  }
  for (std::uint32_t s = 0; s < 12; ++s) {
    EXPECT_GT(hits[s], 0U) << "shard " << s << " never hit";
  }
}

// ---- wire round-trips + adversarial decodes ----------------------------

/// Serialize with the payload writer and return the bytes.
template <typename T, typename WriteFn>
std::vector<std::uint8_t> wire_bytes(const T& value, WriteFn write) {
  net::PayloadWriter w;
  write(w, value);
  return w.take();
}

/// Every strict prefix of a valid payload must fail its typed read —
/// the reader latches on underflow, never crashes, never reads past.
template <typename T, typename ReadFn>
void expect_truncations_fail(const std::vector<std::uint8_t>& bytes,
                             ReadFn read) {
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    net::PayloadReader r(std::span<const std::uint8_t>(bytes).first(len));
    T out;
    EXPECT_FALSE(read(r, out) && r.done()) << "prefix length " << len;
  }
}

TEST(ClusterWire, ShardMapRoundTripsBitwise) {
  ShardMap map = make_shard_map(three_nodes(), 8, 2);
  map.epoch = 41;
  map.nodes[2].alive = false;
  const auto bytes = wire_bytes(map, write_shard_map);

  net::PayloadReader r(bytes);
  ShardMap out;
  ASSERT_TRUE(read_shard_map(r, out));
  EXPECT_TRUE(r.done());
  // Re-serialization byte-compares the whole structure at once.
  EXPECT_EQ(wire_bytes(out, write_shard_map), bytes);
  EXPECT_EQ(out.epoch, 41U);
  EXPECT_FALSE(out.nodes[2].alive);
  EXPECT_EQ(out.nodes[1].host, "127.0.0.1");

  expect_truncations_fail<ShardMap>(bytes, read_shard_map);
}

TEST(ClusterWire, InvalidShardMapRejectedOnRead) {
  ShardMap map = make_shard_map(three_nodes(), 4, 2);
  map.replicas[2] = {9};  // replica index out of range
  const auto bytes = wire_bytes(map, write_shard_map);
  net::PayloadReader r(bytes);
  ShardMap out;
  EXPECT_FALSE(read_shard_map(r, out));
}

TEST(ClusterWire, HeartbeatAndHealthRoundTrip) {
  const Heartbeat hb{3, 17, 999};
  const auto hb_bytes = wire_bytes(hb, write_heartbeat);
  net::PayloadReader r(hb_bytes);
  Heartbeat hb_out;
  ASSERT_TRUE(read_heartbeat(r, hb_out));
  EXPECT_TRUE(r.done());
  EXPECT_EQ(hb_out.from, 3U);
  EXPECT_EQ(hb_out.map_epoch, 17U);
  EXPECT_EQ(hb_out.seq, 999U);
  expect_truncations_fail<Heartbeat>(hb_bytes, read_heartbeat);

  NodeHealth h;
  h.node = 1;
  h.map_epoch = 5;
  h.model_version = 2;
  h.n_lines = 100;
  h.measurements = 4400;
  h.tickets = 12;
  h.peers = {{0, PeerState::kUp}, {2, PeerState::kDead}};
  const auto h_bytes = wire_bytes(h, write_node_health);
  net::PayloadReader hr(h_bytes);
  NodeHealth h_out;
  ASSERT_TRUE(read_node_health(hr, h_out));
  EXPECT_TRUE(hr.done());
  EXPECT_EQ(wire_bytes(h_out, write_node_health), h_bytes);
  ASSERT_EQ(h_out.peers.size(), 2U);
  EXPECT_EQ(h_out.peers[1].state, PeerState::kDead);
  expect_truncations_fail<NodeHealth>(h_bytes, read_node_health);
}

TEST(ClusterWire, HandoffAndTopNShardsRequestsRoundTrip) {
  const HandoffRequest req{1, 6, 12, 512, 128};
  const auto bytes = wire_bytes(req, write_handoff_request);
  net::PayloadReader r(bytes);
  HandoffRequest out;
  ASSERT_TRUE(read_handoff_request(r, out));
  EXPECT_TRUE(r.done());
  EXPECT_EQ(out.push, 1);
  EXPECT_EQ(out.shard, 6U);
  EXPECT_EQ(out.n_shards, 12U);
  EXPECT_EQ(out.cursor, 512U);
  EXPECT_EQ(out.max_lines, 128U);
  expect_truncations_fail<HandoffRequest>(bytes, read_handoff_request);

  TopNShardsRequest tq;
  tq.n = 25;
  tq.n_shards = 12;
  tq.shards = {0, 3, 6, 9};
  const auto tq_bytes = wire_bytes(tq, write_top_n_shards);
  net::PayloadReader tr(tq_bytes);
  TopNShardsRequest tq_out;
  ASSERT_TRUE(read_top_n_shards(tr, tq_out));
  EXPECT_TRUE(tr.done());
  EXPECT_EQ(tq_out.shards, tq.shards);
  expect_truncations_fail<TopNShardsRequest>(tq_bytes, read_top_n_shards);
}

TEST(ClusterWire, GarbagePayloadsNeverCrashTypedReads) {
  util::Rng rng = util::Rng::stream(4321, 0);
  for (int round = 0; round < 300; ++round) {
    std::vector<std::uint8_t> buf(rng.uniform_index(96));
    for (auto& b : buf) {
      b = static_cast<std::uint8_t>(rng.uniform_index(256));
    }
    // The property under test: bounded reads, no crash, no huge
    // count-driven allocations. Any return value is legal.
    {
      net::PayloadReader r(buf);
      ShardMap out;
      (void)read_shard_map(r, out);
    }
    {
      net::PayloadReader r(buf);
      NodeHealth out;
      (void)read_node_health(r, out);
    }
    {
      net::PayloadReader r(buf);
      HandoffPage out;
      (void)read_handoff_page(r, out);
    }
    {
      net::PayloadReader r(buf);
      serve::ExportedLine out;
      (void)read_exported_line(r, out);
    }
    {
      net::PayloadReader r(buf);
      TopNShardsRequest out;
      (void)read_top_n_shards(r, out);
    }
  }
}

// ---- export/import: the exact-state handoff primitive ------------------

void seed_store(serve::LineStateStore& store, int weeks) {
  for (dslsim::LineId line = 0; line < 5; ++line) {
    for (int week = 0; week < weeks; ++week) {
      serve::LineMeasurement m;
      m.line = line;
      m.week = week;
      m.profile = static_cast<dslsim::ProfileId>(1 + line % 3);
      for (std::size_t i = 0; i < m.metrics.size(); ++i) {
        m.metrics[i] = 0.25F * static_cast<float>(i + 1) +
                       0.125F * static_cast<float>(week) +
                       0.0625F * static_cast<float>(line);
      }
      store.ingest(m);
    }
  }
  store.ingest_ticket(2, 100);
  store.ingest_ticket(4, 55);
}

TEST(ClusterHandoff, ExportWireImportReExportIsBitExact) {
  serve::LineStateStore source(4);
  seed_store(source, 12);
  serve::LineStateStore target(8);  // different store sharding is fine
  for (const dslsim::LineId line : source.line_ids()) {
    const auto exported = source.export_line(line);
    ASSERT_TRUE(exported.has_value());
    const auto bytes = wire_bytes(*exported, write_exported_line);

    net::PayloadReader r(bytes);
    serve::ExportedLine decoded;
    ASSERT_TRUE(read_exported_line(r, decoded));
    EXPECT_TRUE(r.done());
    target.import_line(decoded);

    const auto re = target.export_line(line);
    ASSERT_TRUE(re.has_value());
    // The full Welford accumulators, window, ring, and ticket state
    // must survive the trip bit for bit.
    EXPECT_EQ(wire_bytes(*re, write_exported_line), bytes);
    expect_truncations_fail<serve::ExportedLine>(bytes, read_exported_line);
  }
  EXPECT_EQ(target.n_lines(), source.n_lines());
}

TEST(ClusterHandoff, TicketOnlyLinesExportToo) {
  serve::LineStateStore store(2);
  store.ingest_ticket(11, 77);
  const auto exported = store.export_line(11);
  ASSERT_TRUE(exported.has_value());
  EXPECT_EQ(exported->week, -1);
  EXPECT_TRUE(exported->has_ticket);
  EXPECT_EQ(exported->last_ticket, 77);
  EXPECT_FALSE(store.export_line(12).has_value());
}

TEST(ClusterHandoff, HandoffPageRoundTrips) {
  serve::LineStateStore source(4);
  seed_store(source, 3);
  HandoffPage page;
  page.next_cursor = 5;
  page.done = 0;
  for (const dslsim::LineId line : source.line_ids()) {
    page.lines.push_back(*source.export_line(line));
  }
  const auto bytes = wire_bytes(page, write_handoff_page);
  net::PayloadReader r(bytes);
  HandoffPage out;
  ASSERT_TRUE(read_handoff_page(r, out));
  EXPECT_TRUE(r.done());
  EXPECT_EQ(out.next_cursor, 5U);
  EXPECT_EQ(out.done, 0);
  ASSERT_EQ(out.lines.size(), page.lines.size());
  EXPECT_EQ(wire_bytes(out, write_handoff_page), bytes);
}

// ---- live two-node cluster through the router --------------------------

class ClusterEndToEnd : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dslsim::SimConfig cfg;
    cfg.seed = 77;
    cfg.topology.n_lines = 200;
    data_ = new dslsim::SimDataset(dslsim::Simulator(cfg).run());
    core::PredictorConfig pcfg;
    pcfg.top_n = 10;
    pcfg.boost_iterations = 8;
    pcfg.use_derived_features = false;
    predictor_ = new core::TicketPredictor(pcfg);
    predictor_->train(*data_, 20, 30);
  }
  static void TearDownTestSuite() {
    delete predictor_;
    delete data_;
    predictor_ = nullptr;
    data_ = nullptr;
  }

  static ClusterNodeConfig node_config(NodeId id) {
    ClusterNodeConfig cfg;
    cfg.node_id = id;
    cfg.heartbeat_interval = 20ms;
    cfg.membership.suspect_after = 80ms;
    cfg.membership.dead_after = 200ms;
    return cfg;
  }

  static const dslsim::SimDataset* data_;
  static core::TicketPredictor* predictor_;
};

const dslsim::SimDataset* ClusterEndToEnd::data_ = nullptr;
core::TicketPredictor* ClusterEndToEnd::predictor_ = nullptr;

TEST_F(ClusterEndToEnd, ReplicatedServeSurvivesAKillByteIdentically) {
  constexpr int kWeeks = 8;  // score at week 7
  // Reference: one plain store fed the same stream.
  serve::LineStateStore ref_store;
  serve::ModelRegistry ref_registry;
  ref_registry.publish(predictor_->kernel());
  serve::ScoringService ref_service(ref_store, ref_registry);

  auto node0 = std::make_unique<ClusterNode>(node_config(0));
  auto node1 = std::make_unique<ClusterNode>(node_config(1));
  std::string error;
  ASSERT_TRUE(node0->start(&error)) << error;
  ASSERT_TRUE(node1->start(&error)) << error;
  const ShardMap map = make_shard_map(
      {{0, "127.0.0.1", node0->port(), true},
       {1, "127.0.0.1", node1->port(), true}},
      4, 2);

  ShardRouter router(map, {});
  ASSERT_TRUE(router.connect_all()) << router.last_error();
  ASSERT_TRUE(router.push_model(predictor_->kernel()));
  ASSERT_TRUE(router.broadcast_map());

  for (int week = 0; week < kWeeks; ++week) {
    for (std::size_t l = 0; l < data_->n_lines(); ++l) {
      serve::LineMeasurement m;
      m.line = static_cast<dslsim::LineId>(l);
      m.week = week;
      m.profile = data_->plant(m.line).profile;
      m.metrics = data_->measurement(week, m.line);
      ref_store.ingest(m);
      ASSERT_TRUE(router.ingest(m)) << router.last_error();
    }
  }
  ref_store.ingest_ticket(3, 40);
  ASSERT_TRUE(router.ingest_ticket(3, 40));

  // Replication 2 over 2 nodes: both hold every line.
  const auto h0 = router.health(0);
  const auto h1 = router.health(1);
  ASSERT_TRUE(h0.has_value() && h1.has_value());
  EXPECT_EQ(h0->n_lines, data_->n_lines());
  EXPECT_EQ(h1->n_lines, data_->n_lines());
  EXPECT_EQ(h0->measurements, h1->measurements);
  EXPECT_GE(h0->model_version, 1U);

  const auto expect_identical = [&] {
    for (std::size_t l = 0; l < data_->n_lines(); ++l) {
      const auto got = router.score(static_cast<dslsim::LineId>(l));
      const auto want = ref_service.score(static_cast<dslsim::LineId>(l));
      ASSERT_TRUE(got.has_value()) << router.last_error();
      ASSERT_TRUE(got->valid);
      ASSERT_EQ(got->week, want.week) << "line " << l;
      ASSERT_EQ(got->score, want.score) << "line " << l;
      ASSERT_EQ(got->probability, want.probability) << "line " << l;
    }
    const auto ranked = router.top_n(25);
    const auto ref_ranked = ref_service.top_n(25);
    ASSERT_TRUE(ranked.has_value()) << router.last_error();
    ASSERT_EQ(ranked->size(), ref_ranked.size());
    for (std::size_t i = 0; i < ranked->size(); ++i) {
      ASSERT_EQ((*ranked)[i].line, ref_ranked[i].line) << "rank " << i;
      ASSERT_EQ((*ranked)[i].score, ref_ranked[i].score) << "rank " << i;
    }
  };
  expect_identical();

  // Hard-kill node 1: every shard's surviving replica is node 0, and
  // nothing served may change by a single bit.
  const std::uint64_t epoch_before = router.map().epoch;
  node1->kill();
  expect_identical();
  EXPECT_GT(router.map().epoch, epoch_before);
  EXPECT_FALSE(router.map().nodes[1].alive);
  EXPECT_GE(router.stats().nodes_marked_dead, 1U);

  // Readmit a fresh node 1 via HANDOFF and verify the copy is exact by
  // re-exporting from both sides.
  auto node1b = std::make_unique<ClusterNode>(node_config(1));
  ASSERT_TRUE(node1b->start(&error)) << error;
  std::size_t restored = 0;
  const core::ScoringKernel& kernel = predictor_->kernel();
  ASSERT_TRUE(router.readmit({1, "127.0.0.1", node1b->port(), true}, &kernel,
                             &restored))
      << router.last_error();
  EXPECT_EQ(restored, data_->n_lines());
  EXPECT_EQ(node1b->store().n_lines(), data_->n_lines());
  for (const dslsim::LineId line : {dslsim::LineId{0}, dslsim::LineId{3},
                                    dslsim::LineId{199}}) {
    const auto a = node0->store().export_line(line);
    const auto b = node1b->store().export_line(line);
    ASSERT_TRUE(a.has_value() && b.has_value());
    EXPECT_EQ(wire_bytes(*a, write_exported_line),
              wire_bytes(*b, write_exported_line))
        << "line " << line;
  }

  node0->stop();
  node1b->stop();
}

TEST_F(ClusterEndToEnd, SurvivorsConvergeOnTheSameRebuiltMap) {
  auto node0 = std::make_unique<ClusterNode>(node_config(0));
  auto node1 = std::make_unique<ClusterNode>(node_config(1));
  auto node2 = std::make_unique<ClusterNode>(node_config(2));
  std::string error;
  ASSERT_TRUE(node0->start(&error)) << error;
  ASSERT_TRUE(node1->start(&error)) << error;
  ASSERT_TRUE(node2->start(&error)) << error;
  const ShardMap map = make_shard_map(
      {{0, "127.0.0.1", node0->port(), true},
       {1, "127.0.0.1", node1->port(), true},
       {2, "127.0.0.1", node2->port(), true}},
      6, 2);
  ShardRouter router(map, {});
  ASSERT_TRUE(router.broadcast_map());

  node2->kill();
  // Both survivors' failure detectors must notice and derive the same
  // epoch+1 map independently (pure rebuild of the same dead set).
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  ShardMap m0, m1;
  while (std::chrono::steady_clock::now() < deadline) {
    m0 = node0->map_snapshot();
    m1 = node1->map_snapshot();
    if (m0.epoch > map.epoch && m1.epoch == m0.epoch) break;
    std::this_thread::sleep_for(10ms);
  }
  ASSERT_GT(m0.epoch, map.epoch) << "node 0 never detected the death";
  ASSERT_EQ(m1.epoch, m0.epoch) << "survivors diverged";
  EXPECT_EQ(wire_bytes(m0, write_shard_map), wire_bytes(m1, write_shard_map));
  EXPECT_FALSE(m0.nodes[2].alive);

  node0->stop();
  node1->stop();
}

}  // namespace
}  // namespace nevermind::cluster
