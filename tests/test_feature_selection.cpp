#include "ml/feature_selection.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace nevermind::ml {
namespace {

/// Train/test pair with one strong, one weak and one useless feature.
struct Problem {
  FeatureArena train{std::vector<ColumnInfo>{
      {"strong", false}, {"weak", false}, {"noise", false}}};
  FeatureArena test{std::vector<ColumnInfo>{
      {"strong", false}, {"weak", false}, {"noise", false}}};
};

Problem make_problem(std::uint64_t seed, std::size_t n = 4000) {
  util::Rng rng(seed);
  Problem p;
  for (std::size_t i = 0; i < 2 * n; ++i) {
    const bool y = rng.bernoulli(0.1);
    const float row[3] = {
        static_cast<float>(rng.normal(y ? 2.0 : 0.0, 1.0)),
        static_cast<float>(rng.normal(y ? 0.6 : 0.0, 1.0)),
        static_cast<float>(rng.normal())};
    (i % 2 == 0 ? p.train : p.test).add_row(row, y);
  }
  return p;
}

class MethodSweep : public ::testing::TestWithParam<SelectionMethod> {};

TEST_P(MethodSweep, StrongFeatureRankedAboveNoise) {
  const Problem p = make_problem(11);
  FeatureScoringConfig cfg;
  cfg.top_n = 400;
  const auto scores = score_features(p.train, p.test, GetParam(), cfg);
  ASSERT_EQ(scores.size(), 3U);
  EXPECT_GT(scores[0], scores[2]);
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, MethodSweep,
    ::testing::Values(SelectionMethod::kTopNAp, SelectionMethod::kAuc,
                      SelectionMethod::kAveragePrecision,
                      SelectionMethod::kGainRatio));

TEST(FeatureSelection, TopNApFullOrdering) {
  const Problem p = make_problem(12);
  FeatureScoringConfig cfg;
  cfg.top_n = 400;
  const auto scores =
      score_features(p.train, p.test, SelectionMethod::kTopNAp, cfg);
  EXPECT_GT(scores[0], scores[1]);
  EXPECT_GT(scores[1], scores[2]);
}

TEST(FeatureSelection, FirstColumnSkipsScoring) {
  const Problem p = make_problem(13);
  FeatureScoringConfig cfg;
  cfg.top_n = 400;
  const auto scores =
      score_features(p.train, p.test, SelectionMethod::kTopNAp, cfg, 2);
  EXPECT_EQ(scores[0], 0.0);
  EXPECT_EQ(scores[1], 0.0);
  EXPECT_GE(scores[2], 0.0);
}

TEST(FeatureSelection, WrapperRequiresMatchingTest) {
  const Problem p = make_problem(14);
  const FeatureArena other({{"x", false}});
  FeatureScoringConfig cfg;
  EXPECT_THROW(
      (void)score_features(p.train, other, SelectionMethod::kAuc, cfg),
      std::invalid_argument);
}

TEST(FeatureSelection, PcaIsFilterOnly) {
  // PCA scoring ignores the test set entirely (filter method).
  const Problem p = make_problem(15);
  const FeatureArena empty_test({{"strong", false}, {"weak", false},
                            {"noise", false}});
  FeatureScoringConfig cfg;
  const auto scores =
      score_features(p.train, empty_test, SelectionMethod::kPca, cfg);
  EXPECT_EQ(scores.size(), 3U);
}

TEST(SelectTopK, OrdersDescendingByScore) {
  const std::vector<double> scores = {0.1, 0.9, 0.5};
  const auto sel = select_top_k(scores, 2);
  ASSERT_EQ(sel.size(), 2U);
  EXPECT_EQ(sel[0], 1U);
  EXPECT_EQ(sel[1], 2U);
}

TEST(SelectTopK, KLargerThanSizeReturnsAll) {
  const std::vector<double> scores = {0.1, 0.2};
  EXPECT_EQ(select_top_k(scores, 10).size(), 2U);
}

TEST(SelectTopK, StableForTies) {
  const std::vector<double> scores = {0.5, 0.5, 0.5};
  const auto sel = select_top_k(scores, 2);
  EXPECT_EQ(sel[0], 0U);
  EXPECT_EQ(sel[1], 1U);
}

TEST(SelectAboveThreshold, StrictInequality) {
  const std::vector<double> scores = {0.2, 0.21, 0.19};
  const auto sel = select_above_threshold(scores, 0.2);
  ASSERT_EQ(sel.size(), 1U);
  EXPECT_EQ(sel[0], 1U);
}

TEST(SelectAboveThreshold, EmptyWhenAllBelow) {
  const std::vector<double> scores = {0.1, 0.05};
  EXPECT_TRUE(select_above_threshold(scores, 0.5).empty());
}

TEST(SelectionMethodNames, AllDistinct) {
  EXPECT_STRNE(selection_method_name(SelectionMethod::kTopNAp),
               selection_method_name(SelectionMethod::kAuc));
  EXPECT_STRNE(selection_method_name(SelectionMethod::kPca),
               selection_method_name(SelectionMethod::kGainRatio));
}

}  // namespace
}  // namespace nevermind::ml
