// Cross-module property tests: invariants that must hold by *theory*,
// checked over randomized instances. These guard the ML core against
// subtle regressions that example-based tests miss.
#include <gtest/gtest.h>

#include <cmath>

#include "core/monitoring.hpp"
#include "ml/adaboost.hpp"
#include "ml/metrics.hpp"
#include "ml/stump.hpp"
#include "util/rng.hpp"

namespace nevermind {
namespace {

using ml::FeatureArena;

FeatureArena random_problem(util::Rng& rng, std::size_t n, double positive_rate,
                       double signal) {
  FeatureArena d({{"a", false}, {"b", false}, {"c", false}});
  for (std::size_t i = 0; i < n; ++i) {
    const bool y = rng.bernoulli(positive_rate);
    const float row[3] = {
        static_cast<float>(rng.normal(y ? signal : 0.0, 1.0)),
        static_cast<float>(rng.normal(y ? signal * 0.5 : 0.0, 1.0)),
        static_cast<float>(rng.normal())};
    d.add_row(row, y);
  }
  return d;
}

class PropertySweep : public ::testing::TestWithParam<std::uint64_t> {};

/// Schapire–Singer theorem: the training error of the thresholded
/// ensemble is bounded by the product of the per-round normalizers Z_t.
TEST_P(PropertySweep, AdaBoostTrainingErrorBoundedByProductOfZ) {
  util::Rng rng(GetParam());
  const FeatureArena d = random_problem(rng, 1500, 0.3, 1.0);
  ml::BStumpConfig cfg;
  cfg.iterations = 40;
  ml::TrainDiagnostics diag;
  (void)ml::train_bstump(d, cfg, &diag);
  double bound = 1.0;
  for (double z : diag.z_per_round) bound *= z;
  EXPECT_LE(diag.final_training_error, bound + 1e-9);
}

/// The Z values reported per round never exceed 1 (a weak learner that
/// is at least as good as abstaining always exists).
TEST_P(PropertySweep, AdaBoostZNeverExceedsOne) {
  util::Rng rng(GetParam() ^ 0x1111);
  const FeatureArena d = random_problem(rng, 800, 0.2, 0.5);
  ml::BStumpConfig cfg;
  cfg.iterations = 25;
  ml::TrainDiagnostics diag;
  (void)ml::train_bstump(d, cfg, &diag);
  for (double z : diag.z_per_round) EXPECT_LE(z, 1.0 + 1e-12);
}

/// The exhaustive stump search returns a split at least as good (lower
/// Z) as any randomly sampled competitor on the same weights.
TEST_P(PropertySweep, BestStumpBeatsRandomStumps) {
  util::Rng rng(GetParam() ^ 0x2222);
  const FeatureArena d = random_problem(rng, 600, 0.4, 0.8);
  const std::vector<double> w(d.n_rows(), 1.0 / static_cast<double>(d.n_rows()));
  const ml::SortedColumns sorted(d);
  const auto best = ml::find_best_stump(d, sorted, w, 0.01);

  for (int trial = 0; trial < 30; ++trial) {
    // A random competitor: the best threshold search restricted to one
    // random feature cannot beat searching all features.
    const auto feature = rng.uniform_index(d.n_cols());
    const auto candidate = ml::find_best_stump_for_feature(
        d, sorted, w, 0.01, feature);
    EXPECT_LE(best.z, candidate.z + 1e-12);
  }
}

/// AP(N) and AUC are invariant under strictly increasing transforms of
/// the scores.
TEST_P(PropertySweep, RankingMetricsMonotoneInvariant) {
  util::Rng rng(GetParam() ^ 0x3333);
  std::vector<double> scores(400);
  std::vector<double> transformed(400);
  std::vector<std::uint8_t> labels(400);
  for (std::size_t i = 0; i < scores.size(); ++i) {
    scores[i] = rng.normal();
    transformed[i] = std::tanh(scores[i]) * 2.0 + 11.0;
    labels[i] = rng.bernoulli(0.15) ? 1 : 0;
  }
  EXPECT_NEAR(ml::top_n_average_precision(scores, labels, 50),
              ml::top_n_average_precision(transformed, labels, 50), 1e-12);
  EXPECT_NEAR(ml::average_precision(scores, labels),
              ml::average_precision(transformed, labels), 1e-12);
  EXPECT_NEAR(ml::auc(scores, labels), ml::auc(transformed, labels), 1e-12);
}

/// Precision@k of the reversed ranking plus the original cannot both
/// be above the base rate by much, and each stays within [0, 1].
TEST_P(PropertySweep, PrecisionBoundedAndComplementary) {
  util::Rng rng(GetParam() ^ 0x4444);
  std::vector<double> scores(500);
  std::vector<std::uint8_t> labels(500);
  std::size_t positives = 0;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    scores[i] = rng.normal();
    labels[i] = rng.bernoulli(0.3) ? 1 : 0;
    positives += labels[i];
  }
  const double p = ml::precision_at_k(scores, labels, 100);
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
  // Total positives constrain any cutoff's hit count.
  EXPECT_LE(p * 100.0, static_cast<double>(positives) + 1e-9);
}

/// PSI is non-negative and zero against itself.
TEST_P(PropertySweep, PsiNonNegativeAndReflexiveZero) {
  util::Rng rng(GetParam() ^ 0x5555);
  std::vector<float> ref(3000);
  std::vector<float> cur(3000);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ref[i] = static_cast<float>(rng.lognormal(0.0, 1.0));
    cur[i] = static_cast<float>(rng.lognormal(0.3, 1.2));
  }
  EXPECT_GE(core::population_stability_index(ref, cur), 0.0);
  EXPECT_LT(core::population_stability_index(ref, ref), 1e-9);
}

/// Boosting margins: adding rounds never increases the exponential
/// loss on the training set (that is exactly what each round greedily
/// minimizes).
TEST_P(PropertySweep, ExponentialLossNonIncreasingInRounds) {
  util::Rng rng(GetParam() ^ 0x6666);
  const FeatureArena d = random_problem(rng, 1000, 0.3, 0.9);
  ml::BStumpConfig small;
  small.iterations = 5;
  ml::BStumpConfig large;
  large.iterations = 40;
  const auto exp_loss = [&](const ml::BStumpModel& m) {
    const auto scores = m.score_dataset(d);
    double loss = 0.0;
    for (std::size_t i = 0; i < scores.size(); ++i) {
      const double y = d.label(i) ? 1.0 : -1.0;
      loss += std::exp(-y * scores[i]);
    }
    return loss;
  };
  EXPECT_LE(exp_loss(ml::train_bstump(d, large)),
            exp_loss(ml::train_bstump(d, small)) + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySweep,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace nevermind
