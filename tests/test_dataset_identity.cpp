// The feature-store identity anchor: training from a persisted dataset
// artefact — text, eager-binary, or mmap'ed — must reproduce the
// kernel trained straight off the simulator byte for byte, at 1 and 8
// threads, for both the ticket predictor and the trouble locator; and
// a served ranking computed from an artefact-trained kernel must match
// the reference ranking entry for entry.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "core/ticket_predictor.hpp"
#include "core/trouble_locator.hpp"
#include "features/dataset_io.hpp"
#include "serve/line_state_store.hpp"
#include "serve/model_registry.hpp"
#include "serve/replay.hpp"
#include "serve/scoring_service.hpp"

namespace nevermind {
namespace {

constexpr int kTrainFrom = 20;
constexpr int kTrainTo = 27;
constexpr int kLocFrom = 12;
constexpr int kLocTo = 34;
constexpr int kServeWeek = 31;

std::string temp_path(const std::string& name) {
  // Per-process prefix: ctest runs every case of this suite as its own
  // process, and each one re-runs SetUpTestSuite — without the pid the
  // processes race on the same artefact files under `ctest -j`.
  return ::testing::TempDir() + "nm_dataset_identity_" +
         std::to_string(::getpid()) + "_" + name;
}

core::PredictorConfig predictor_config(std::size_t threads) {
  core::PredictorConfig cfg;
  cfg.top_n = 25;
  cfg.boost_iterations = 50;
  if (threads > 1) cfg.exec = exec::ExecContext(threads);
  return cfg;
}

core::LocatorConfig locator_config(std::size_t threads) {
  core::LocatorConfig cfg;
  cfg.min_occurrences = 5;
  cfg.boost_iterations = 40;
  if (threads > 1) cfg.exec = exec::ExecContext(threads);
  return cfg;
}

class DatasetIdentityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dslsim::SimConfig cfg;
    cfg.seed = 57;
    cfg.topology.n_lines = 2000;
    data_ = new dslsim::SimDataset(dslsim::Simulator(cfg).run());

    reference_ = new core::TicketPredictor(predictor_config(1));
    reference_->train(*data_, kTrainFrom, kTrainTo);

    ref_locator_ = new core::TroubleLocator(locator_config(1));
    ref_locator_->train(*data_, kLocFrom, kLocTo);

    // Persist both matrices once, in both formats, with the exact
    // encoder layouts the reference models trained under.
    const features::TicketLabeler labeler{predictor_config(1).horizon_days};
    for (const char* name : {"pred.nmarena", "pred.txt"}) {
      const auto st = features::save_predictor_dataset(
          temp_path(name), *data_, kTrainFrom, kTrainTo,
          reference_->full_encoder_config(), labeler);
      ASSERT_TRUE(st.ok()) << st.message;
    }
    for (const char* name : {"loc.nmarena", "loc.txt"}) {
      const auto st = features::save_locator_dataset(
          temp_path(name), *data_, kLocFrom, kLocTo,
          ref_locator_->encoder_config());
      ASSERT_TRUE(st.ok()) << st.message;
    }
  }
  static void TearDownTestSuite() {
    for (const char* name : {"pred.nmarena", "pred.txt", "loc.nmarena",
                             "loc.txt"}) {
      std::remove(temp_path(name).c_str());
    }
    delete ref_locator_;
    delete reference_;
    delete data_;
    ref_locator_ = nullptr;
    reference_ = nullptr;
    data_ = nullptr;
  }

  static std::string kernel_string(const core::ScoringKernel& kernel) {
    std::stringstream ss;
    kernel.save(ss);
    return ss.str();
  }

  static std::string locator_string(const core::TroubleLocator& locator) {
    std::stringstream ss;
    locator.save(ss);
    return ss.str();
  }

  struct LoadCase {
    const char* label;
    const char* file;
    ml::ArenaLoadMode mode;
  };
  static constexpr LoadCase kPredictorCases[] = {
      {"text", "pred.txt", ml::ArenaLoadMode::kEager},
      {"eager-binary", "pred.nmarena", ml::ArenaLoadMode::kEager},
      {"mmap", "pred.nmarena", ml::ArenaLoadMode::kMapped},
  };
  static constexpr LoadCase kLocatorCases[] = {
      {"text", "loc.txt", ml::ArenaLoadMode::kEager},
      {"eager-binary", "loc.nmarena", ml::ArenaLoadMode::kEager},
      {"mmap", "loc.nmarena", ml::ArenaLoadMode::kMapped},
  };

  static const dslsim::SimDataset* data_;
  static core::TicketPredictor* reference_;
  static core::TroubleLocator* ref_locator_;
};

const dslsim::SimDataset* DatasetIdentityTest::data_ = nullptr;
core::TicketPredictor* DatasetIdentityTest::reference_ = nullptr;
core::TroubleLocator* DatasetIdentityTest::ref_locator_ = nullptr;
constexpr DatasetIdentityTest::LoadCase DatasetIdentityTest::kPredictorCases[];
constexpr DatasetIdentityTest::LoadCase DatasetIdentityTest::kLocatorCases[];

TEST_F(DatasetIdentityTest, PredictorKernelIdenticalAcrossLoadPathsAndThreads) {
  const std::string want = kernel_string(reference_->kernel());
  for (const auto& c : kPredictorCases) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
      SCOPED_TRACE(std::string(c.label) +
                   " threads=" + std::to_string(threads));
      ml::StoreStatus st;
      auto loaded =
          features::load_predictor_dataset(temp_path(c.file), c.mode, &st);
      ASSERT_TRUE(loaded.has_value()) << st.message;
      EXPECT_EQ(loaded->block.dataset.file_backed(),
                c.mode == ml::ArenaLoadMode::kMapped &&
                    std::string(c.label) != "text");

      core::TicketPredictor predictor(predictor_config(threads));
      predictor.train_from_block(loaded->block, loaded->encoder);
      EXPECT_EQ(kernel_string(predictor.kernel()), want);
    }
  }
}

TEST_F(DatasetIdentityTest, LocatorIdenticalAcrossLoadPathsAndThreads) {
  const std::string want = locator_string(*ref_locator_);
  for (const auto& c : kLocatorCases) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
      SCOPED_TRACE(std::string(c.label) +
                   " threads=" + std::to_string(threads));
      ml::StoreStatus st;
      auto loaded =
          features::load_locator_dataset(temp_path(c.file), c.mode, &st);
      ASSERT_TRUE(loaded.has_value()) << st.message;

      core::TroubleLocator locator(locator_config(threads));
      locator.train_from_block(*data_, loaded->block);
      EXPECT_EQ(locator_string(locator), want);
    }
  }
}

TEST_F(DatasetIdentityTest, LocatorStoredBinsMatchRebinnedTraining) {
  // A v2 artefact carries the histogram-path quantization; training
  // from its stored bin codes must be byte-identical to re-binning the
  // loaded matrix from scratch. Both locators run histogram binning —
  // the stored bins are only consumed on that path.
  core::LocatorConfig cfg = locator_config(1);
  cfg.binning = ml::BinningMode::kHistogram;
  core::TroubleLocator rebinned(cfg);
  rebinned.train(*data_, kLocFrom, kLocTo);
  const std::string want = locator_string(rebinned);

  const std::string path = temp_path("loc_bins.nmarena");
  const auto st_save = features::save_locator_dataset(
      path, *data_, kLocFrom, kLocTo, rebinned.encoder_config(),
      /*with_bins=*/true);
  ASSERT_TRUE(st_save.ok()) << st_save.message;
  for (const auto mode :
       {ml::ArenaLoadMode::kEager, ml::ArenaLoadMode::kMapped}) {
    SCOPED_TRACE(mode == ml::ArenaLoadMode::kEager ? "eager" : "mmap");
    ml::StoreStatus st;
    auto loaded = features::load_locator_dataset(path, mode, &st);
    ASSERT_TRUE(loaded.has_value()) << st.message;
    // The stored quantization must actually be surfaced — otherwise the
    // comparison below would silently test the re-binning path twice.
    ASSERT_NE(loaded->block.bins, nullptr);
    core::TroubleLocator locator(cfg);
    locator.train_from_block(*data_, loaded->block);
    EXPECT_EQ(locator_string(locator), want);
  }
  std::remove(path.c_str());
}

TEST_F(DatasetIdentityTest, ServedRankingFromMmapTrainedKernelMatches) {
  // Train off the mmap'ed artefact, publish the kernel, replay the
  // measurement stream, and compare the served ranking against the
  // reference kernel's — the full predict/serve surface, not just the
  // artefact bytes.
  ml::StoreStatus st;
  auto loaded = features::load_predictor_dataset(
      temp_path("pred.nmarena"), ml::ArenaLoadMode::kMapped, &st);
  ASSERT_TRUE(loaded.has_value()) << st.message;
  core::TicketPredictor predictor(predictor_config(8));
  predictor.train_from_block(loaded->block, loaded->encoder);

  const auto rank_with = [&](const core::ScoringKernel& kernel) {
    serve::LineStateStore store(4);
    serve::ModelRegistry registry;
    registry.publish(kernel);
    serve::ScoringService service(store, registry);
    serve::ReplayDriver replay(*data_, store);
    replay.feed_through(kServeWeek, predictor_config(8).exec);
    return service.top_n(50);
  };
  const auto want = rank_with(reference_->kernel());
  const auto got = rank_with(predictor.kernel());
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].line, want[i].line) << "rank " << i;
    EXPECT_EQ(got[i].score, want[i].score) << "rank " << i;
    EXPECT_EQ(got[i].probability, want[i].probability) << "rank " << i;
  }
}

TEST_F(DatasetIdentityTest, MismatchedArtefactsAreRefused) {
  ml::StoreStatus st;
  // A locator artefact is not a predictor dataset (and vice versa).
  EXPECT_FALSE(features::load_predictor_dataset(temp_path("loc.nmarena"),
                                                ml::ArenaLoadMode::kEager, &st)
                   .has_value());
  EXPECT_EQ(st.code, ml::StoreError::kMalformedMeta);
  EXPECT_FALSE(features::load_locator_dataset(temp_path("pred.txt"),
                                              ml::ArenaLoadMode::kEager, &st)
                   .has_value());
  EXPECT_EQ(st.code, ml::StoreError::kMalformedMeta);

  // A predictor configured differently from the artefact must refuse
  // to train rather than silently use the wrong columns.
  auto loaded = features::load_predictor_dataset(
      temp_path("pred.nmarena"), ml::ArenaLoadMode::kEager, &st);
  ASSERT_TRUE(loaded.has_value()) << st.message;
  core::PredictorConfig other = predictor_config(1);
  other.product_pool = 4;  // implies a different derived layout
  core::TicketPredictor predictor(other);
  EXPECT_THROW(predictor.train_from_block(loaded->block, loaded->encoder),
               std::invalid_argument);
}

}  // namespace
}  // namespace nevermind
