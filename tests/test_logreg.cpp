#include "ml/logreg.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/mathx.hpp"
#include "util/rng.hpp"

namespace nevermind::ml {
namespace {

TEST(Logreg, RecoversCoefficients) {
  util::Rng rng(1);
  std::vector<double> rows;
  std::vector<std::uint8_t> labels;
  const double b0 = -1.0;
  const double b1 = 2.0;
  const double b2 = -0.5;
  for (int i = 0; i < 30000; ++i) {
    const double x1 = rng.normal();
    const double x2 = rng.normal();
    rows.push_back(x1);
    rows.push_back(x2);
    labels.push_back(
        rng.bernoulli(util::sigmoid(b0 + b1 * x1 + b2 * x2)) ? 1 : 0);
  }
  const LogisticModel m = fit_logistic(rows, 2, labels);
  EXPECT_TRUE(m.converged);
  EXPECT_NEAR(m.coefficients[0], b0, 0.1);
  EXPECT_NEAR(m.coefficients[1], b1, 0.1);
  EXPECT_NEAR(m.coefficients[2], b2, 0.1);
}

TEST(Logreg, SignificantEffectHasSmallPValue) {
  util::Rng rng(2);
  std::vector<double> x;
  std::vector<std::uint8_t> labels;
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.normal();
    x.push_back(v);
    labels.push_back(rng.bernoulli(util::sigmoid(1.0 * v)) ? 1 : 0);
  }
  const LogisticModel m = fit_logistic_simple(x, labels);
  EXPECT_LT(m.p_values[1], 0.001);
  EXPECT_GT(m.z_values[1], 3.0);
}

TEST(Logreg, NullEffectHasLargePValue) {
  util::Rng rng(3);
  std::vector<double> x;
  std::vector<std::uint8_t> labels;
  for (int i = 0; i < 5000; ++i) {
    x.push_back(rng.normal());
    labels.push_back(rng.bernoulli(0.3) ? 1 : 0);
  }
  const LogisticModel m = fit_logistic_simple(x, labels);
  EXPECT_GT(m.p_values[1], 0.01);
}

TEST(Logreg, InterceptOnlyMatchesBaseRate) {
  util::Rng rng(4);
  std::vector<std::uint8_t> labels;
  for (int i = 0; i < 10000; ++i) labels.push_back(rng.bernoulli(0.2) ? 1 : 0);
  const LogisticModel m = fit_logistic({}, 0, labels);
  EXPECT_NEAR(util::sigmoid(m.coefficients[0]), 0.2, 0.02);
}

TEST(Logreg, PredictUsesCovariates) {
  LogisticModel m;
  m.coefficients = {0.0, 1.0};
  const double hi[] = {3.0};
  const double lo[] = {-3.0};
  EXPECT_GT(m.predict(hi), 0.9);
  EXPECT_LT(m.predict(lo), 0.1);
}

TEST(Logreg, PredictEmptyModelIsHalf) {
  const LogisticModel m;
  EXPECT_EQ(m.predict({}), 0.5);
}

TEST(Logreg, ShapeMismatchThrows) {
  const std::vector<double> rows = {1.0, 2.0, 3.0};
  const std::vector<std::uint8_t> labels = {0, 1};
  EXPECT_THROW((void)fit_logistic(rows, 2, labels), std::invalid_argument);
}

TEST(Logreg, RidgeKeepsSeparableFitFinite) {
  // Perfectly separable data: without regularization coefficients
  // diverge; the ridge keeps them finite.
  std::vector<double> x;
  std::vector<std::uint8_t> labels;
  for (int i = 0; i < 100; ++i) {
    x.push_back(i < 50 ? -1.0 : 1.0);
    labels.push_back(i < 50 ? 0 : 1);
  }
  const LogisticModel m = fit_logistic(x, 1, labels, 1e-3);
  EXPECT_TRUE(std::isfinite(m.coefficients[1]));
  EXPECT_GT(m.coefficients[1], 0.0);
}

TEST(Logreg, StdErrorsShrinkWithMoreData) {
  util::Rng rng(5);
  auto fit_with_n = [&](int n) {
    std::vector<double> x;
    std::vector<std::uint8_t> labels;
    for (int i = 0; i < n; ++i) {
      const double v = rng.normal();
      x.push_back(v);
      labels.push_back(rng.bernoulli(util::sigmoid(v)) ? 1 : 0);
    }
    return fit_logistic_simple(x, labels);
  };
  const LogisticModel small = fit_with_n(500);
  const LogisticModel large = fit_with_n(20000);
  EXPECT_LT(large.std_errors[1], small.std_errors[1]);
}

/// Table-5 style regression: outage indicator vs per-DSLAM prediction
/// counts, checked end-to-end on synthetic data with a known effect.
TEST(Logreg, Table5StyleCountRegression) {
  util::Rng rng(6);
  std::vector<double> counts;
  std::vector<std::uint8_t> outage;
  for (int i = 0; i < 4000; ++i) {
    const bool has_outage = rng.bernoulli(0.1);
    // DSLAMs with outages attract more predictions.
    const double count = static_cast<double>(
        rng.poisson(has_outage ? 3.0 : 1.0));
    counts.push_back(count);
    outage.push_back(has_outage ? 1 : 0);
  }
  const LogisticModel m = fit_logistic_simple(counts, outage);
  EXPECT_GT(m.coefficients[1], 0.0);
  EXPECT_LT(m.p_values[1], 0.05);
}

}  // namespace
}  // namespace nevermind::ml
