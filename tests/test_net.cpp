// Protocol and server robustness tests for the network front-end.
//
// Codec half: round-trip every op, then adversarial decodes — truncated
// prefixes, wrong magic, wrong version, oversized length prefixes, and
// garbage streams must come back as kNeedMore or a typed WireError,
// never a crash or an out-of-bounds read.
//
// Server half: a live epoll server on an ephemeral port, poked with raw
// bytes through the client's escape hatches. Framing errors must get a
// typed error reply followed by a close; unknown-op and bad-payload
// errors must answer that one request and leave the connection usable;
// idle and slow-draining connections must be killed; a requested stop
// must drain every buffered request before the loop exits.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "serve/line_state_store.hpp"
#include "serve/model_registry.hpp"
#include "serve/scoring_service.hpp"
#include "util/rng.hpp"

namespace nevermind::net {
namespace {

using namespace std::chrono_literals;

// ---- codec: round-trips ------------------------------------------------

TEST(Codec, RoundTripsEveryOp) {
  const Codec codec;
  const std::vector<std::uint8_t> payload = {0xDE, 0xAD, 0xBE, 0xEF};
  for (const Op op : {Op::kPing, Op::kScore, Op::kTopN,
                      Op::kIngestMeasurement, Op::kIngestTicket,
                      Op::kModelInfo, Op::kError, reply_op(Op::kScore)}) {
    const auto bytes = codec.encode(op, 0xA1B2C3D4, payload);
    ASSERT_EQ(bytes.size(), kHeaderSize + payload.size());
    const auto d = codec.decode(bytes);
    ASSERT_EQ(d.status, Codec::DecodeStatus::kFrame);
    EXPECT_EQ(d.frame.op, op);
    EXPECT_EQ(d.frame.request_id, 0xA1B2C3D4U);
    EXPECT_EQ(d.frame.payload, payload);
    EXPECT_EQ(d.consumed, bytes.size());
  }
}

TEST(Codec, RoundTripsEmptyPayloadAndBackToBackFrames) {
  const Codec codec;
  auto bytes = codec.encode(Op::kPing, 1, {});
  const auto second = codec.encode(Op::kModelInfo, 2, {});
  bytes.insert(bytes.end(), second.begin(), second.end());

  const auto first = codec.decode(bytes);
  ASSERT_EQ(first.status, Codec::DecodeStatus::kFrame);
  EXPECT_TRUE(first.frame.payload.empty());
  EXPECT_EQ(first.consumed, kHeaderSize);

  const auto rest = codec.decode(
      std::span<const std::uint8_t>(bytes).subspan(first.consumed));
  ASSERT_EQ(rest.status, Codec::DecodeStatus::kFrame);
  EXPECT_EQ(rest.frame.op, Op::kModelInfo);
  EXPECT_EQ(rest.frame.request_id, 2U);
}

TEST(Codec, TypedPayloadsRoundTripBitwise) {
  // Scores whose doubles exercise non-trivial mantissa bits: equality
  // below is bitwise through operator== on doubles with identical bits.
  serve::ServeScore s;
  s.line = 4242;
  s.week = 43;
  s.score = 0.1 + 0.2;  // famously not 0.3
  s.probability = 1.0 / 3.0;
  s.model_version = 7;
  s.reason = serve::ScoreReason::kOk;
  s.valid = true;
  PayloadWriter w;
  write_score(w, s);
  PayloadReader r(w.data());
  serve::ServeScore out;
  ASSERT_TRUE(read_score(r, out));
  EXPECT_TRUE(r.done());
  EXPECT_EQ(out.line, s.line);
  EXPECT_EQ(out.week, s.week);
  EXPECT_EQ(out.score, s.score);
  EXPECT_EQ(out.probability, s.probability);
  EXPECT_EQ(out.model_version, s.model_version);
  EXPECT_EQ(out.reason, s.reason);
  EXPECT_EQ(out.valid, s.valid);

  serve::LineMeasurement m;
  m.line = 9;
  m.week = 12;
  m.profile = 3;
  for (std::size_t i = 0; i < m.metrics.size(); ++i) {
    m.metrics[i] = 0.1F * static_cast<float>(i + 1);
  }
  PayloadWriter wm;
  write_measurement(wm, m);
  PayloadReader rm(wm.data());
  serve::LineMeasurement mo;
  ASSERT_TRUE(read_measurement(rm, mo));
  EXPECT_TRUE(rm.done());
  EXPECT_EQ(mo.line, m.line);
  EXPECT_EQ(mo.week, m.week);
  EXPECT_EQ(mo.profile, m.profile);
  EXPECT_EQ(mo.metrics, m.metrics);

  const ModelInfoReply info{11, 22, 33, 44, 55};
  PayloadWriter wi;
  write_model_info(wi, info);
  PayloadReader ri(wi.data());
  ModelInfoReply io;
  ASSERT_TRUE(read_model_info(ri, io));
  EXPECT_EQ(io.model_version, info.model_version);
  EXPECT_EQ(io.swap_count, info.swap_count);
  EXPECT_EQ(io.n_lines, info.n_lines);
  EXPECT_EQ(io.measurements, info.measurements);
  EXPECT_EQ(io.tickets, info.tickets);

  const auto err = encode_error_payload(WireError::kBadPayload, "short read");
  WireError code{};
  std::string message;
  ASSERT_TRUE(decode_error_payload(err, code, message));
  EXPECT_EQ(code, WireError::kBadPayload);
  EXPECT_EQ(message, "short read");
}

// ---- codec: adversarial decodes ----------------------------------------

TEST(Codec, TruncatedValidFrameAsksForMore) {
  const Codec codec;
  const auto bytes = codec.encode(Op::kScore, 7, std::vector<std::uint8_t>(5));
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const auto d = codec.decode(
        std::span<const std::uint8_t>(bytes).first(len));
    EXPECT_EQ(d.status, Codec::DecodeStatus::kNeedMore) << "len=" << len;
  }
}

TEST(Codec, WrongMagicRejectedBeforeFullHeader) {
  const Codec codec;
  const std::vector<std::uint8_t> garbage = {'G', 'E'};  // "GET ..."
  const auto d = codec.decode(garbage);
  ASSERT_EQ(d.status, Codec::DecodeStatus::kError);
  EXPECT_EQ(d.error, WireError::kMalformedFrame);
}

TEST(Codec, WrongVersionRejected) {
  const Codec codec;
  auto bytes = codec.encode(Op::kPing, 1, {});
  bytes[2] = kProtocolVersion + 1;
  const auto d = codec.decode(
      std::span<const std::uint8_t>(bytes).first(3));  // before full header
  ASSERT_EQ(d.status, Codec::DecodeStatus::kError);
  EXPECT_EQ(d.error, WireError::kVersionMismatch);
}

TEST(Codec, OversizedLengthPrefixRejected) {
  const Codec codec(1024);
  auto bytes = codec.encode(Op::kPing, 1, {});
  bytes[8] = 0xFF;  // payload_len = 0x....FF > 1024
  bytes[9] = 0xFF;
  const auto d = codec.decode(bytes);
  ASSERT_EQ(d.status, Codec::DecodeStatus::kError);
  EXPECT_EQ(d.error, WireError::kOversizedPayload);
}

TEST(Codec, GarbageStreamsNeverCrash) {
  const Codec codec(4096);
  util::Rng rng = util::Rng::stream(1234, 0);
  for (int round = 0; round < 200; ++round) {
    std::vector<std::uint8_t> buf(rng.uniform_index(64));
    for (auto& b : buf) {
      b = static_cast<std::uint8_t>(rng.uniform_index(256));
    }
    const auto d = codec.decode(buf);
    // Any status is legal; the property under test is bounded reads and
    // a sane `consumed`.
    if (d.status == Codec::DecodeStatus::kFrame) {
      EXPECT_LE(d.consumed, buf.size());
      EXPECT_GE(d.consumed, kHeaderSize);
    }
  }
}

TEST(Codec, RoundTripsEveryClusterOp) {
  // The v2 extension ops frame exactly like the v1 ops — same header,
  // same reply-bit convention.
  const Codec codec;
  const std::vector<std::uint8_t> payload = {0x01, 0x02, 0x03};
  for (const Op op : {Op::kModelPush, Op::kShardMap, Op::kHeartbeat,
                      Op::kHealth, Op::kHandoff, Op::kTopNShards}) {
    ASSERT_TRUE(is_cluster_request(op));
    ASSERT_TRUE(is_known_request(op));
    ASSERT_FALSE(is_reply(op));
    for (const Op framed : {op, reply_op(op)}) {
      const auto bytes = codec.encode(framed, 0x0BADF00D, payload);
      ASSERT_EQ(bytes.size(), kHeaderSize + payload.size());
      EXPECT_EQ(bytes[2], kProtocolVersion);
      const auto d = codec.decode(bytes);
      ASSERT_EQ(d.status, Codec::DecodeStatus::kFrame);
      EXPECT_EQ(d.frame.op, framed);
      EXPECT_EQ(d.frame.request_id, 0x0BADF00DU);
      EXPECT_EQ(d.frame.payload, payload);
      EXPECT_EQ(d.consumed, bytes.size());
    }
  }
}

TEST(Codec, TruncatedClusterFramesAskForMore) {
  const Codec codec;
  for (const Op op : {Op::kModelPush, Op::kShardMap, Op::kHeartbeat,
                      Op::kHealth, Op::kHandoff, Op::kTopNShards}) {
    const auto bytes = codec.encode(op, 3, std::vector<std::uint8_t>(9));
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      const auto d = codec.decode(
          std::span<const std::uint8_t>(bytes).first(len));
      EXPECT_EQ(d.status, Codec::DecodeStatus::kNeedMore)
          << "op=" << static_cast<int>(op) << " len=" << len;
    }
  }
}

TEST(Codec, VersionMismatchSurfacesThePeersVersionByte) {
  const Codec codec;
  auto bytes = codec.encode(Op::kPing, 1, {});
  bytes[2] = 1;  // a v1 peer
  const auto d = codec.decode(bytes);
  ASSERT_EQ(d.status, Codec::DecodeStatus::kError);
  EXPECT_EQ(d.error, WireError::kVersionMismatch);
  // peer_version lets the server stamp the rejection with the peer's
  // own dialect so the v1 side can decode it.
  EXPECT_EQ(d.peer_version, 1);
}

TEST(Codec, EncodeWithExplicitVersionStampsThatByte) {
  const Codec codec;
  const auto bytes = codec.encode(Op::kError, 5, {}, /*version=*/1);
  EXPECT_EQ(bytes[2], 1);
  // The v1 frame layout is identical, so a v1 decoder (here: ours, fed
  // a doctored expectation) sees magic/op/id/len in the same offsets.
  EXPECT_EQ(bytes[3], static_cast<std::uint8_t>(Op::kError));
}

TEST(Codec, PayloadReaderLatchesOnUnderflow) {
  const std::vector<std::uint8_t> three = {1, 2, 3};
  PayloadReader r(three);
  EXPECT_EQ(r.u16(), 0x0201U);
  EXPECT_EQ(r.u32(), 0U);  // underflow: latched zero
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.done());
  EXPECT_EQ(r.u64(), 0U);  // stays latched
  EXPECT_FALSE(r.ok());
}

// ---- live server -------------------------------------------------------

/// One ephemeral-port server (no model published — protocol behaviour
/// does not need a trained kernel) running on a background thread.
class ServerHarness {
 public:
  explicit ServerHarness(ServerConfig config = {})
      : service_(store_, registry_),
        server_(store_, service_, registry_, std::move(config)) {
    std::string error;
    if (!server_.start(&error)) {
      ADD_FAILURE() << "server start failed: " << error;
      return;
    }
    thread_ = std::thread([this] { server_.run(); });
  }

  ~ServerHarness() { stop(); }

  void stop() {
    if (thread_.joinable()) {
      server_.request_stop();
      thread_.join();
    }
  }

  [[nodiscard]] std::uint16_t port() const { return server_.port(); }
  [[nodiscard]] const ServerStats& stats_after_stop() {
    stop();
    return server_.stats();
  }
  [[nodiscard]] serve::ModelRegistry& registry() { return registry_; }

 private:
  serve::LineStateStore store_{4};
  serve::ModelRegistry registry_;
  serve::ScoringService service_;
  Server server_;
  std::thread thread_;
};

std::optional<WireError> read_error_reply(Client& client,
                                          std::uint32_t expect_id = 0) {
  const auto frame = client.read_frame();
  if (!frame.has_value() || frame->op != Op::kError) return std::nullopt;
  EXPECT_EQ(frame->request_id, expect_id);
  WireError code{};
  std::string message;
  if (!decode_error_payload(frame->payload, code, message)) {
    return std::nullopt;
  }
  return code;
}

TEST(NetServer, FramingErrorGetsTypedReplyThenClose) {
  ServerHarness harness;
  Client client;
  ASSERT_TRUE(client.connect("127.0.0.1", harness.port()));
  const std::vector<std::uint8_t> http = {'G', 'E', 'T', ' ', '/'};
  ASSERT_TRUE(client.send_raw(http));
  EXPECT_EQ(read_error_reply(client), WireError::kMalformedFrame);
  // The stream is poisoned: the server closes after flushing the error.
  EXPECT_FALSE(client.read_frame().has_value());
  const auto& stats = harness.stats_after_stop();
  EXPECT_EQ(stats.protocol_errors, 1U);
}

TEST(NetServer, VersionMismatchGetsTypedReplyThenClose) {
  // The rejection is framed in the *peer's* version (so the peer can
  // decode it), which means our v2 read_frame refuses it — decode the
  // reply manually instead.
  ServerHarness harness;
  Client client;
  ASSERT_TRUE(client.connect("127.0.0.1", harness.port()));
  Codec codec;
  auto bytes = codec.encode(Op::kPing, 9, {});
  bytes[2] = kProtocolVersion + 3;
  ASSERT_TRUE(client.send_raw(bytes));
  EXPECT_FALSE(client.read_frame().has_value());  // v5-framed reply + close
}

TEST(NetServer, OversizedLengthPrefixGetsTypedReplyThenClose) {
  ServerConfig config;
  config.max_payload = 1024;
  ServerHarness harness(config);
  Client client;
  ASSERT_TRUE(client.connect("127.0.0.1", harness.port()));
  Codec codec;
  auto bytes = codec.encode(Op::kPing, 9, {});
  bytes[8] = 0xFF;
  bytes[9] = 0xFF;
  bytes[10] = 0xFF;
  ASSERT_TRUE(client.send_raw(bytes));
  EXPECT_EQ(read_error_reply(client), WireError::kOversizedPayload);
  EXPECT_FALSE(client.read_frame().has_value());
}

TEST(NetServer, UnknownOpAnswersAndKeepsConnection) {
  ServerHarness harness;
  Client client;
  ASSERT_TRUE(client.connect("127.0.0.1", harness.port()));
  Codec codec;
  ASSERT_TRUE(client.send_raw(
      codec.encode(static_cast<Op>(0x20), 77, {})));
  EXPECT_EQ(read_error_reply(client, 77), WireError::kUnknownOp);
  // Same connection still serves well-formed requests.
  EXPECT_TRUE(client.ping());
}

TEST(NetServer, BadPayloadAnswersAndKeepsConnection) {
  ServerHarness harness;
  Client client;
  ASSERT_TRUE(client.connect("127.0.0.1", harness.port()));
  Codec codec;
  // SCORE wants a u32 line id; one byte cannot decode.
  ASSERT_TRUE(client.send_raw(
      codec.encode(Op::kScore, 5, std::vector<std::uint8_t>(1))));
  EXPECT_EQ(read_error_reply(client, 5), WireError::kBadPayload);
  EXPECT_TRUE(client.ping());
}

TEST(NetServer, IngestAndModelInfoCountersFlowThrough) {
  ServerHarness harness;
  Client client;
  ASSERT_TRUE(client.connect("127.0.0.1", harness.port()));

  serve::LineMeasurement m;
  m.line = 3;
  m.week = 0;
  m.profile = 1;
  m.metrics.fill(0.5F);
  ASSERT_TRUE(client.ingest(m));
  m.week = 1;
  ASSERT_TRUE(client.ingest(m));
  ASSERT_TRUE(client.ingest_ticket(3, 10));

  const auto info = client.model_info();
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->model_version, 0U);  // nothing published
  EXPECT_EQ(info->n_lines, 1U);
  EXPECT_EQ(info->measurements, 2U);
  EXPECT_EQ(info->tickets, 1U);

  // With no model published the line scores invalid with kNoModel.
  const auto s = client.score(3);
  ASSERT_TRUE(s.has_value());
  EXPECT_FALSE(s->valid);
  EXPECT_EQ(s->reason, serve::ScoreReason::kNoModel);
}

TEST(NetServer, IdleConnectionsAreKilled) {
  ServerConfig config;
  config.idle_timeout = 100ms;
  config.tick = 20ms;
  ServerHarness harness(config);
  Client client;
  ASSERT_TRUE(client.connect("127.0.0.1", harness.port()));
  ASSERT_TRUE(client.ping());
  // Go quiet; the server must hang up on us.
  EXPECT_FALSE(client.read_frame().has_value());
  const auto& stats = harness.stats_after_stop();
  EXPECT_GE(stats.idle_closed, 1U);
}

TEST(NetServer, SlowDrainingClientIsKilled) {
  ServerConfig config;
  config.so_sndbuf = 4096;
  config.write_high_watermark = 16 * 1024;
  config.drain_timeout = 200ms;
  config.tick = 20ms;
  ServerHarness harness(config);

  // Raw socket with a tiny receive buffer that never reads: ping echoes
  // pile up in the server's send buffer until the slow-client reaper
  // fires. SO_RCVBUF must be set before connect to cap the window.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  int rcvbuf = 2048;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(harness.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);

  const Codec codec;
  const std::vector<std::uint8_t> blob(32 * 1024, 0xAB);
  std::vector<std::uint8_t> wire;
  for (std::uint32_t i = 0; i < 8; ++i) {
    codec.encode_into(Op::kPing, i + 1, blob, wire);
  }
  // 8 x 32 KiB of echo replies dwarf every buffer involved; the send may
  // legitimately stop short once the server applies backpressure.
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const auto n = ::send(fd, wire.data() + sent, wire.size() - sent,
                          MSG_DONTWAIT | MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }

  // Do not read AT ALL while the kill window passes — any draining
  // counts as write progress on the server and resets its clock.
  std::this_thread::sleep_for(config.drain_timeout + 4 * config.tick +
                              200ms);
  // Now drain; the reaped connection surfaces as EOF or ECONNRESET
  // once the buffered bytes are consumed.
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  bool reset = false;
  while (std::chrono::steady_clock::now() < deadline) {
    char sink[4096];
    const auto n = ::recv(fd, sink, sizeof(sink), MSG_DONTWAIT);
    if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK)) {
      reset = true;
      break;
    }
    if (n < 0) std::this_thread::sleep_for(10ms);
  }
  ::close(fd);
  EXPECT_TRUE(reset) << "slow client was never disconnected";
  const auto& stats = harness.stats_after_stop();
  EXPECT_GE(stats.slow_closed, 1U);
}

TEST(NetServer, RequestedStopDrainsBufferedRequests) {
  ServerHarness harness;
  Client client;
  ASSERT_TRUE(client.connect("127.0.0.1", harness.port()));

  constexpr std::uint32_t kPings = 50;
  const Codec codec;
  std::vector<std::uint8_t> wire;
  for (std::uint32_t i = 0; i < kPings; ++i) {
    codec.encode_into(Op::kPing, i + 1, {}, wire);
  }
  ASSERT_TRUE(client.send_raw(wire));
  std::this_thread::sleep_for(50ms);  // let the batch reach the server
  // Stop while replies are (at latest) still in flight: every ping must
  // still be answered, then the server hangs up.
  std::thread stopper([&harness] { harness.stop(); });
  for (std::uint32_t i = 0; i < kPings; ++i) {
    const auto frame = client.read_frame();
    ASSERT_TRUE(frame.has_value()) << "reply " << i << " lost in shutdown";
    EXPECT_EQ(frame->op, reply_op(Op::kPing));
    EXPECT_EQ(frame->request_id, i + 1);
  }
  EXPECT_FALSE(client.read_frame().has_value());
  stopper.join();
  const auto& stats = harness.stats_after_stop();
  EXPECT_EQ(stats.frames_in, stats.replies_out);
  EXPECT_EQ(stats.frames_in, kPings);
}

TEST(NetServer, V1PeerGetsARejectionItCanDecode) {
  // A v1 client must receive the kVersionMismatch reply framed with
  // *its* version byte — v2 in the reply header would read as a version
  // mismatch on the v1 side and poison the rejection itself.
  ServerHarness harness;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(harness.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);

  Codec codec;
  auto bytes = codec.encode(Op::kPing, 9, {});
  bytes[2] = 1;  // v1 dialect
  ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(bytes.size()));

  std::vector<std::uint8_t> reply;
  std::uint8_t chunk[512];
  while (true) {
    const auto n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;  // the server closes after flushing the error
    reply.insert(reply.end(), chunk, chunk + n);
  }
  ::close(fd);

  ASSERT_GE(reply.size(), kHeaderSize);
  EXPECT_EQ(reply[0], bytes[0]);  // same magic
  EXPECT_EQ(reply[1], bytes[1]);
  EXPECT_EQ(reply[2], 1) << "rejection not stamped with the peer's version";
  EXPECT_EQ(reply[3], static_cast<std::uint8_t>(Op::kError));
  WireError code{};
  std::string message;
  ASSERT_TRUE(decode_error_payload(
      std::span<const std::uint8_t>(reply).subspan(kHeaderSize), code,
      message));
  EXPECT_EQ(code, WireError::kVersionMismatch);
}

// ---- client: timeouts + bounded-backoff reconnects ---------------------

TEST(NetClient, BackoffIsBoundedExponentialAndResets) {
  Backoff backoff(10ms, 80ms);
  EXPECT_EQ(backoff.next(), 10ms);
  EXPECT_EQ(backoff.next(), 20ms);
  EXPECT_EQ(backoff.next(), 40ms);
  EXPECT_EQ(backoff.next(), 80ms);
  EXPECT_EQ(backoff.next(), 80ms);  // capped
  EXPECT_EQ(backoff.attempts(), 5U);
  backoff.reset();
  EXPECT_EQ(backoff.attempts(), 0U);
  EXPECT_EQ(backoff.next(), 10ms);
}

TEST(NetClient, ConnectWithBackoffEventuallyGivesUp) {
  // Nothing listens on a fresh ephemeral port we bind and close.
  const int probe = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(probe, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(probe, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(probe, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  const std::uint16_t dead_port = ntohs(addr.sin_port);
  ::close(probe);

  ClientOptions options;
  options.connect_timeout = 100ms;
  Client client(options);
  Backoff backoff(1ms, 4ms);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(client.connect_with_backoff("127.0.0.1", dead_port, 3,
                                           backoff));
  EXPECT_FALSE(client.connected());
  EXPECT_EQ(backoff.attempts(), 3U);
  EXPECT_FALSE(client.last_error().empty());
  // 3 refused connects + 2 sleeps (1ms, 2ms) stay well under a second.
  EXPECT_LT(std::chrono::steady_clock::now() - start, 5s);
}

TEST(NetClient, RequestTimeoutClosesTheConnection) {
  // A listener that accepts and then never replies: the request must
  // come back empty within the deadline, and the client must close the
  // socket — a late reply would desync the id-checked stream.
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(
      ::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(listener, 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(
      ::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len), 0);

  ClientOptions options;
  options.connect_timeout = 500ms;
  options.request_timeout = 100ms;
  Client client(options);
  ASSERT_TRUE(client.connect("127.0.0.1", ntohs(addr.sin_port)));
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(client.request(Op::kPing, {}).has_value());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, 80ms);
  EXPECT_LT(elapsed, 5s);
  EXPECT_FALSE(client.connected());
  ::close(listener);
}

TEST(NetClient, TypedErrorRepliesKeepTheConnectionUsable) {
  ServerHarness harness;
  ClientOptions options;
  options.request_timeout = 2000ms;
  Client client(options);
  ASSERT_TRUE(client.connect("127.0.0.1", harness.port()));
  // Unknown op: the typed kError reply fails the call (recorded) but
  // the connection stays up — unlike a timeout, the stream is intact.
  EXPECT_FALSE(client.request(static_cast<Op>(0x20), {}).has_value());
  EXPECT_EQ(client.last_wire_error(), WireError::kUnknownOp);
  EXPECT_TRUE(client.connected());
  // ...and the same connection still serves real requests.
  EXPECT_TRUE(client.ping());
}

}  // namespace
}  // namespace nevermind::net
