#include "util/calendar.hpp"

#include <gtest/gtest.h>

namespace nevermind::util {
namespace {

TEST(Calendar, Day0IsThursday) {
  // 2009-01-01 was a Thursday.
  EXPECT_EQ(weekday_of(0), Weekday::kThursday);
}

TEST(Calendar, FirstSaturday) {
  EXPECT_EQ(kFirstSaturday, 2);
  EXPECT_TRUE(is_saturday(kFirstSaturday));
  EXPECT_FALSE(is_saturday(kFirstSaturday + 1));
}

TEST(Calendar, EverySeventhDayIsSaturday) {
  for (int w = 0; w < 60; ++w) {
    EXPECT_TRUE(is_saturday(saturday_of_week(w))) << "week " << w;
  }
}

TEST(Calendar, TestWeekRoundTrip) {
  for (int w = 0; w < 52; ++w) {
    EXPECT_EQ(test_week_of(saturday_of_week(w)), w);
    // Days in the following week map back to the preceding Saturday.
    EXPECT_EQ(test_week_of(saturday_of_week(w) + 6), w);
  }
}

TEST(Calendar, DaysBeforeFirstSaturdayAreWeekMinusOne) {
  EXPECT_EQ(test_week_of(0), -1);
  EXPECT_EQ(test_week_of(1), -1);
}

TEST(Calendar, WeeksInYear) {
  // Saturdays 01/03 through 12/26 -> 52 test weeks.
  EXPECT_EQ(test_weeks_in_year(), 52);
}

TEST(Calendar, DayFromDateKnownValues) {
  EXPECT_EQ(day_from_date(1, 1), 0);
  EXPECT_EQ(day_from_date(2, 1), 31);
  EXPECT_EQ(day_from_date(12, 31), 364);
  EXPECT_EQ(day_from_date(8, 1), 212);
}

TEST(Calendar, DayFromDateClampsBadInput) {
  EXPECT_EQ(day_from_date(0, 1), 0);
  EXPECT_EQ(day_from_date(13, 40), 364);
  EXPECT_EQ(day_from_date(2, 31), day_from_date(2, 28));
}

TEST(Calendar, FormatDateKnownValues) {
  EXPECT_EQ(format_date(0), "01/01/09");
  EXPECT_EQ(format_date(212), "08/01/09");
  EXPECT_EQ(format_date(364), "12/31/09");
  EXPECT_EQ(format_date(365), "01/01/10");
}

TEST(Calendar, FormatAndParseAgree) {
  for (int m = 1; m <= 12; ++m) {
    const Day d = day_from_date(m, 15);
    char expect[16];
    std::snprintf(expect, sizeof(expect), "%02d/15/09", m);
    EXPECT_EQ(format_date(d), expect);
  }
}

TEST(Calendar, PaperSplitWeeks) {
  // The experiment calendar the benches rely on: training (08/01) is
  // week 30, testing starts 10/31 = week 43.
  EXPECT_EQ(test_week_of(day_from_date(8, 1)), 30);
  EXPECT_EQ(test_week_of(day_from_date(10, 31)), 43);
}

TEST(Calendar, WeekdayNames) {
  EXPECT_STREQ(weekday_name(Weekday::kMonday), "Mon");
  EXPECT_STREQ(weekday_name(Weekday::kSunday), "Sun");
}

TEST(Calendar, WeekdayCycles) {
  for (Day d = 0; d < 28; ++d) {
    EXPECT_EQ(weekday_of(d), weekday_of(d + 7));
  }
}

}  // namespace
}  // namespace nevermind::util
