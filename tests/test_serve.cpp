// Serving-layer tests: the byte-identity anchor (served scores ==
// offline batch scores at every shard/thread configuration, including
// across a model hot-swap), the versioned artefact round-trips, and the
// store/batcher/registry unit semantics.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <sstream>
#include <thread>
#include <vector>

#include "core/scoring_kernel.hpp"
#include "core/ticket_predictor.hpp"
#include "core/trouble_locator.hpp"
#include "serve/line_state_store.hpp"
#include "serve/micro_batcher.hpp"
#include "serve/model_registry.hpp"
#include "serve/replay.hpp"
#include "serve/scoring_service.hpp"
#include "util/calendar.hpp"

namespace nevermind::serve {
namespace {

constexpr int kWeek = 43;

class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dslsim::SimConfig cfg;
    cfg.seed = 31;
    cfg.topology.n_lines = 2500;
    data_ = new dslsim::SimDataset(dslsim::Simulator(cfg).run());

    core::PredictorConfig pcfg;
    pcfg.top_n = 25;
    pcfg.boost_iterations = 60;
    predictor_ = new core::TicketPredictor(pcfg);
    predictor_->train(*data_, 30, 38);
    batch_ = new std::vector<core::Prediction>(
        predictor_->predict_week(*data_, kWeek));
  }
  static void TearDownTestSuite() {
    delete batch_;
    delete predictor_;
    delete data_;
    batch_ = nullptr;
    predictor_ = nullptr;
    data_ = nullptr;
  }

  /// Replay through kWeek at the given sharding/threading and return
  /// the full served ranking.
  static std::vector<ServeScore> replay_and_rank(std::size_t shards,
                                                 std::size_t threads,
                                                 bool swap_mid_stream) {
    const exec::ExecContext exec =
        threads > 1 ? exec::ExecContext(threads) : exec::ExecContext();
    LineStateStore store(shards);
    ModelRegistry registry;
    registry.publish(predictor_->kernel());
    ServiceConfig cfg;
    cfg.exec = exec;
    ScoringService service(store, registry, cfg);
    ReplayDriver replay(*data_, store);
    replay.feed_through(kWeek / 2, exec);
    if (swap_mid_stream) registry.publish(predictor_->kernel());
    replay.feed_through(kWeek, exec);
    return service.top_n(data_->n_lines());
  }

  static void expect_identical(const std::vector<ServeScore>& served) {
    ASSERT_EQ(served.size(), batch_->size());
    for (std::size_t i = 0; i < served.size(); ++i) {
      ASSERT_TRUE(served[i].valid);
      ASSERT_EQ(served[i].week, kWeek);
      // EQ, not NEAR: the served path must reproduce the batch path's
      // bits, not approximate them.
      ASSERT_EQ(served[i].line, (*batch_)[i].line) << "rank " << i;
      ASSERT_EQ(served[i].score, (*batch_)[i].score) << "rank " << i;
      ASSERT_EQ(served[i].probability, (*batch_)[i].probability)
          << "rank " << i;
    }
  }

  static const dslsim::SimDataset* data_;
  static core::TicketPredictor* predictor_;
  static std::vector<core::Prediction>* batch_;
};

const dslsim::SimDataset* ServeTest::data_ = nullptr;
core::TicketPredictor* ServeTest::predictor_ = nullptr;
std::vector<core::Prediction>* ServeTest::batch_ = nullptr;

TEST_F(ServeTest, ServedRankingIsByteIdenticalAtEveryConfiguration) {
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " threads=" + std::to_string(threads));
      expect_identical(replay_and_rank(shards, threads, false));
    }
  }
}

TEST_F(ServeTest, HotSwapMidReplayPreservesByteIdentity) {
  const auto served = replay_and_rank(4, 8, true);
  expect_identical(served);
  // The republished bundle's version is what answered the queries.
  EXPECT_EQ(served.front().model_version, 2U);
}

TEST_F(ServeTest, PointQueryMatchesRankedEntry) {
  LineStateStore store(4);
  ModelRegistry registry;
  registry.publish(predictor_->kernel());
  ScoringService service(store, registry);
  ReplayDriver replay(*data_, store);
  replay.feed_through(kWeek);

  for (std::size_t i = 0; i < batch_->size(); i += 311) {
    const auto s = service.score((*batch_)[i].line);
    ASSERT_TRUE(s.valid);
    EXPECT_EQ(s.score, (*batch_)[i].score);
    EXPECT_EQ(s.probability, (*batch_)[i].probability);
  }
}

TEST_F(ServeTest, TopNTruncatesTheFullRanking) {
  LineStateStore store(4);
  ModelRegistry registry;
  registry.publish(predictor_->kernel());
  ScoringService service(store, registry);
  ReplayDriver replay(*data_, store);
  replay.feed_through(kWeek);

  const auto top10 = service.top_n(10);
  ASSERT_EQ(top10.size(), 10U);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(top10[i].line, (*batch_)[i].line);
    EXPECT_EQ(top10[i].score, (*batch_)[i].score);
  }
}

TEST_F(ServeTest, KernelArtifactRoundTripsBitExactly) {
  std::stringstream ss;
  predictor_->kernel().save(ss);
  std::string error;
  const auto loaded = core::ScoringKernel::load(ss, &error);
  ASSERT_TRUE(loaded.has_value()) << error;

  LineStateStore store(4);
  ModelRegistry registry;
  registry.publish(*loaded);  // serve from the *loaded* artefact
  ScoringService service(store, registry);
  ReplayDriver replay(*data_, store);
  replay.feed_through(kWeek);
  expect_identical(service.top_n(data_->n_lines()));
}

TEST_F(ServeTest, KernelLoadDistinguishesVersionMismatchFromCorruption) {
  std::stringstream ss;
  predictor_->kernel().save(ss);
  std::string text = ss.str();

  {
    std::stringstream bad("nmkernel v99" + text.substr(text.find('\n')));
    std::string error;
    EXPECT_FALSE(core::ScoringKernel::load(bad, &error).has_value());
    EXPECT_NE(error.find("version"), std::string::npos) << error;
    EXPECT_NE(error.find("v99"), std::string::npos) << error;
  }
  {
    std::stringstream bad("garbage " + text);
    std::string error;
    EXPECT_FALSE(core::ScoringKernel::load(bad, &error).has_value());
    EXPECT_NE(error.find("nmkernel"), std::string::npos) << error;
  }
  {
    std::stringstream truncated(text.substr(0, text.size() / 2));
    std::string error;
    EXPECT_FALSE(core::ScoringKernel::load(truncated, &error).has_value());
    EXPECT_EQ(error.find("version"), std::string::npos) << error;
  }
}

TEST(ServeLocatorArtifact, RoundTripsAndRanksIdentically) {
  dslsim::SimConfig cfg;
  cfg.seed = 33;
  cfg.topology.n_lines = 1500;
  const dslsim::SimDataset data = dslsim::Simulator(cfg).run();

  core::LocatorConfig lcfg;
  lcfg.boost_iterations = 20;
  lcfg.min_occurrences = 5;
  core::TroubleLocator locator(lcfg);
  locator.train(data, 20, 40);
  ASSERT_TRUE(locator.trained());

  std::stringstream ss;
  locator.save(ss);
  std::string error;
  const auto loaded = core::TroubleLocator::load(ss, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  ASSERT_EQ(loaded->covered().size(), locator.covered().size());

  const auto block = features::encode_at_dispatch(data, 41, 45,
                                                  locator.encoder_config());
  ASSERT_GT(block.dataset.n_rows(), 0U);
  std::vector<float> row(block.dataset.n_cols());
  for (std::size_t j = 0; j < row.size(); ++j) row[j] = block.dataset.at(0, j);
  for (const auto kind :
       {core::LocatorModelKind::kExperience, core::LocatorModelKind::kFlat,
        core::LocatorModelKind::kCombined}) {
    const auto a = locator.rank(row, kind);
    const auto b = loaded->rank(row, kind);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].disposition, b[i].disposition);
      EXPECT_EQ(a[i].probability, b[i].probability);
    }
  }

  std::stringstream bad("nmlocator v7\nrest");
  EXPECT_FALSE(core::TroubleLocator::load(bad, &error).has_value());
  EXPECT_NE(error.find("version"), std::string::npos) << error;
}

// ---- store semantics -------------------------------------------------

dslsim::MetricVector metrics_with_state(float state, float fill) {
  dslsim::MetricVector m;
  m.fill(fill);
  m[0] = state;  // LineMetric::kState
  return m;
}

TEST(LineStateStore, SnapshotBeforeAnyMeasurementIsEmpty) {
  LineStateStore store(4);
  EXPECT_FALSE(store.snapshot(7).has_value());
  EXPECT_EQ(store.n_lines(), 0U);
  // A ticket alone does not make the line scorable.
  store.ingest_ticket(7, 100);
  EXPECT_FALSE(store.snapshot(7).has_value());
  EXPECT_TRUE(store.line_ids().empty());
}

TEST(LineStateStore, IngestFoldsPreviousWeekIntoTheWindow) {
  LineStateStore store(4);
  store.ingest({5, 0, 1, metrics_with_state(1.0F, 10.0F)});
  auto snap = store.snapshot(5);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->week, 0);
  // Week 0 is still "current": nothing folded yet (matches the offline
  // emit-then-update order).
  EXPECT_EQ(snap->window.tests_seen, 0U);
  EXPECT_FALSE(snap->window.has_prev);

  store.ingest({5, 1, 1, metrics_with_state(1.0F, 12.0F)});
  snap = store.snapshot(5);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->week, 1);
  EXPECT_EQ(snap->window.tests_seen, 1U);
  EXPECT_TRUE(snap->window.has_prev);
  EXPECT_EQ(snap->window.prev[3], 10.0F);
  EXPECT_EQ(snap->current[3], 12.0F);
}

TEST(LineStateStore, StaleWeekIsDroppedNotFolded) {
  LineStateStore store(1);
  store.ingest({9, 5, 1, metrics_with_state(1.0F, 1.0F)});
  store.ingest({9, 3, 1, metrics_with_state(1.0F, 99.0F)});  // stale
  const auto snap = store.snapshot(9);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->week, 5);
  EXPECT_EQ(snap->current[3], 1.0F);
  EXPECT_EQ(snap->window.tests_seen, 0U);
}

TEST(LineStateStore, TicketRecencyKeepsTheLatestDay) {
  LineStateStore store(4);
  store.ingest({2, 0, 1, metrics_with_state(1.0F, 0.0F)});
  store.ingest_ticket(2, 50);
  store.ingest_ticket(2, 30);  // older report arriving late
  const auto snap = store.snapshot(2);
  ASSERT_TRUE(snap.has_value());
  ASSERT_TRUE(snap->last_ticket.has_value());
  EXPECT_EQ(*snap->last_ticket, 50);
}

TEST(LineStateStore, LineIdsAscendAcrossShardsAndRecentRingIsBounded) {
  LineStateStore store(3, 4);
  for (const dslsim::LineId u : {17U, 3U, 11U, 5U}) {
    for (int w = 0; w < 6; ++w) {
      store.ingest({u, w, 1, metrics_with_state(1.0F, static_cast<float>(w))});
    }
  }
  const auto ids = store.line_ids();
  ASSERT_EQ(ids.size(), 4U);
  EXPECT_EQ(ids, (std::vector<dslsim::LineId>{3, 5, 11, 17}));
  EXPECT_EQ(store.n_lines(), 4U);
  EXPECT_EQ(store.measurements_ingested(), 24U);

  const auto recent = store.recent(17);
  ASSERT_EQ(recent.size(), 4U);  // capacity-bounded, oldest first
  EXPECT_EQ(recent.front().first, 2);
  EXPECT_EQ(recent.back().first, 5);
}

// ---- micro-batcher and registry --------------------------------------

TEST(MicroBatcher, RoutesEachResultToItsCaller) {
  MicroBatcher batcher(
      [](std::span<const dslsim::LineId> lines) {
        std::vector<ServeScore> out(lines.size());
        for (std::size_t i = 0; i < lines.size(); ++i) {
          out[i].line = lines[i];
          out[i].score = static_cast<double>(lines[i]) * 2.0;
          out[i].valid = true;
        }
        return out;
      },
      8);
  for (const dslsim::LineId u : {4U, 9U, 1U}) {
    const auto s = batcher.score(u);
    EXPECT_TRUE(s.valid);
    EXPECT_EQ(s.line, u);
    EXPECT_EQ(s.score, static_cast<double>(u) * 2.0);
  }
  const auto stats = batcher.stats();
  EXPECT_EQ(stats.requests, 3U);
  EXPECT_EQ(stats.batches, 3U);  // sequential callers: batches of one
  EXPECT_EQ(stats.batch_size_counts[0], 3U);
}

TEST(MicroBatcher, FollowerDeadlineSurfacesAsTimeoutReason) {
  // An executor that wedges on its first batch until released: the
  // leader (who runs the executor on its own thread) cannot time out,
  // but a follower with a deadline must come back invalid/kTimeout
  // instead of blocking forever.
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  std::atomic<bool> leader_entered{false};
  MicroBatcher batcher(
      [&](std::span<const dslsim::LineId> lines) {
        leader_entered.store(true, std::memory_order_release);
        released.wait();
        std::vector<ServeScore> out(lines.size());
        for (std::size_t i = 0; i < lines.size(); ++i) {
          out[i].line = lines[i];
          out[i].valid = true;
        }
        return out;
      },
      8);

  std::thread leader([&] {
    const auto s = batcher.score(1);
    EXPECT_TRUE(s.valid);  // the wedge releases before the leader returns
  });
  while (!leader_entered.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }

  // The leader is inside the wedged executor, so this caller queues as
  // a follower of the NEXT batch — which can never start — and its
  // deadline must fire.
  const auto t0 = std::chrono::steady_clock::now();
  const auto s = batcher.score(2, std::chrono::milliseconds(50));
  const auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_FALSE(s.valid);
  EXPECT_EQ(s.line, 2U);
  EXPECT_EQ(s.reason, ScoreReason::kTimeout);
  EXPECT_GE(waited, std::chrono::milliseconds(50));

  release.set_value();
  leader.join();
  EXPECT_STREQ(score_reason_name(ScoreReason::kTimeout), "deadline exceeded");
}

TEST_F(ServeTest, ReasonsDistinguishNoModelFromNoMeasurement) {
  LineStateStore store(2);
  store.ingest({1, 0, 1, metrics_with_state(1.0F, 5.0F)});
  ModelRegistry registry;
  ScoringService service(store, registry);

  // Nothing published (an untrained kernel counts as nothing): kNoModel.
  EXPECT_EQ(service.score(1).reason, ScoreReason::kNoModel);

  // Trained model published: the measured line scores kOk, while a
  // line that has never reported a measurement says so.
  registry.publish(predictor_->kernel());
  const auto known = service.score(1);
  EXPECT_TRUE(known.valid);
  EXPECT_EQ(known.reason, ScoreReason::kOk);
  const auto unknown = service.score(9);
  EXPECT_FALSE(unknown.valid);
  EXPECT_EQ(unknown.reason, ScoreReason::kNoMeasurement);
}

TEST(ModelRegistry, VersionsAdvanceAndAcquireIsStable) {
  ModelRegistry registry;
  EXPECT_EQ(registry.current_version(), 0U);
  EXPECT_EQ(registry.acquire(), nullptr);

  EXPECT_EQ(registry.publish(core::ScoringKernel{}), 1U);
  const auto v1 = registry.acquire();
  ASSERT_NE(v1, nullptr);
  EXPECT_EQ(v1->version, 1U);

  EXPECT_EQ(registry.publish(core::ScoringKernel{}), 2U);
  EXPECT_EQ(registry.current_version(), 2U);
  EXPECT_EQ(registry.swap_count(), 2U);
  // The old acquisition still points at its immutable bundle.
  EXPECT_EQ(v1->version, 1U);
}

TEST(ScoringServiceEdge, UnpublishedModelYieldsInvalidScores) {
  LineStateStore store(2);
  store.ingest({1, 0, 1, metrics_with_state(1.0F, 5.0F)});
  ModelRegistry registry;
  ScoringService service(store, registry);
  const auto s = service.score(1);
  EXPECT_FALSE(s.valid);
  EXPECT_EQ(s.line, 1U);
  EXPECT_TRUE(service.top_n(5).empty() || !service.top_n(5).front().valid);
}

}  // namespace
}  // namespace nevermind::serve
