#include "dslsim/line.hpp"

#include <gtest/gtest.h>

#include "ml/dataset.hpp"
#include "util/stats.hpp"

namespace nevermind::dslsim {
namespace {

LinePlant typical_plant(float loop_ft = 6000.0F) {
  LinePlant p;
  p.loop_length_ft = loop_ft;
  p.gauge_db_per_kft = 5.0F;
  p.inherent_bridge_tap = false;
  p.crosstalk_propensity = 0.1F;
  p.noise_floor_db = 0.0F;
  p.profile = 1;  // basic 768/384
  return p;
}

/// Average a metric over repeated measurements.
double avg_metric(const LinePlant& plant, const MeasurementContext& ctx,
                  LineMetric metric, int n = 300, std::uint64_t seed = 1) {
  util::Rng rng(seed);
  util::RunningStats rs;
  for (int i = 0; i < n; ++i) {
    const MetricVector m = measure_line(plant, ctx, rng);
    rs.add(m[metric_index(metric)]);
  }
  return rs.mean();
}

TEST(Line, AttenuationGrowsWithLoopLength) {
  const MeasurementContext ctx;
  const double short_loop =
      avg_metric(typical_plant(3000.0F), ctx, LineMetric::kDnAttenuation);
  const double long_loop =
      avg_metric(typical_plant(15000.0F), ctx, LineMetric::kDnAttenuation);
  EXPECT_GT(long_loop, short_loop + 30.0);
}

TEST(Line, RateCappedByProfile) {
  const MeasurementContext ctx;
  const LinePlant p = typical_plant(3000.0F);  // short loop, huge capacity
  util::Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const MetricVector m = measure_line(p, ctx, rng);
    EXPECT_LE(m[metric_index(LineMetric::kDnBitRate)],
              profile(p.profile).down_kbps + 50.0);
  }
}

TEST(Line, LongLoopCannotReachEliteRate) {
  MeasurementContext ctx;
  LinePlant p = typical_plant(16000.0F);
  p.profile = 4;  // elite 6000 kbps
  const double rate = avg_metric(p, ctx, LineMetric::kDnBitRate);
  EXPECT_LT(rate, 4000.0);
}

TEST(Line, HealthyLineHasFewCodeViolations) {
  const MeasurementContext ctx;
  const double cv =
      avg_metric(typical_plant(), ctx, LineMetric::kDnCvCnt1);
  EXPECT_LT(cv, 15.0);
}

TEST(Line, FaultEffectsRaiseCodeViolations) {
  MeasurementContext faulty;
  faulty.fx.cv_rate = 60.0;
  const double healthy =
      avg_metric(typical_plant(), MeasurementContext{}, LineMetric::kDnCvCnt1);
  const double sick =
      avg_metric(typical_plant(), faulty, LineMetric::kDnCvCnt1);
  EXPECT_GT(sick, healthy + 40.0);
}

TEST(Line, RateMultiplierCutsDeliveredRate) {
  MeasurementContext faulty;
  faulty.fx.rate_mult = 0.3;
  const double healthy =
      avg_metric(typical_plant(), MeasurementContext{}, LineMetric::kDnBitRate);
  const double sick =
      avg_metric(typical_plant(), faulty, LineMetric::kDnBitRate);
  EXPECT_LT(sick, healthy * 0.5);
}

TEST(Line, AddedNoiseCutsMarginAndAttainableRate) {
  MeasurementContext noisy;
  noisy.fx.noise_db = 12.0;
  const double attain_healthy = avg_metric(typical_plant(), MeasurementContext{},
                                           LineMetric::kDnMaxAttainBr);
  const double attain_noisy =
      avg_metric(typical_plant(), noisy, LineMetric::kDnMaxAttainBr);
  EXPECT_LT(attain_noisy, attain_healthy);
}

TEST(Line, AttenuationShiftInflatesLoopEstimate) {
  // The loop-length estimate is derived from attenuation; wire faults
  // make the loop "look longer" (the paper's >15 kft rule artefact).
  MeasurementContext faulty;
  faulty.fx.atten_db = 20.0;
  const double est_healthy = avg_metric(typical_plant(), MeasurementContext{},
                                        LineMetric::kLoopLength);
  const double est_faulty =
      avg_metric(typical_plant(), faulty, LineMetric::kLoopLength);
  EXPECT_GT(est_faulty, est_healthy + 2000.0);
}

TEST(Line, InstabilityInflatesRateVariance) {
  MeasurementContext unstable;
  unstable.fx.instability = 1.5;
  util::Rng rng(3);
  util::RunningStats healthy_rs;
  util::RunningStats unstable_rs;
  const LinePlant p = typical_plant();
  for (int i = 0; i < 400; ++i) {
    healthy_rs.add(measure_line(p, MeasurementContext{}, rng)
                       [metric_index(LineMetric::kDnBitRate)]);
    unstable_rs.add(measure_line(p, unstable, rng)
                        [metric_index(LineMetric::kDnBitRate)]);
  }
  EXPECT_GT(unstable_rs.stddev(), healthy_rs.stddev() * 2.0);
}

TEST(Line, CellsTrackUsage) {
  MeasurementContext light;
  light.usage_mb_week = 50.0;
  MeasurementContext heavy;
  heavy.usage_mb_week = 5000.0;
  const double cells_light =
      avg_metric(typical_plant(), light, LineMetric::kDnCells);
  const double cells_heavy =
      avg_metric(typical_plant(), heavy, LineMetric::kDnCells);
  EXPECT_GT(cells_heavy, cells_light * 10.0);
}

TEST(Line, BridgeTapFlagFollowsPlantAndFault) {
  util::Rng rng(4);
  LinePlant tapped = typical_plant();
  tapped.inherent_bridge_tap = true;
  const MetricVector m = measure_line(tapped, MeasurementContext{}, rng);
  EXPECT_EQ(m[metric_index(LineMetric::kBridgeTap)], 1.0F);

  MeasurementContext fault_tap;
  fault_tap.fx.bridge_tap_prob = 1.0;
  const MetricVector m2 =
      measure_line(typical_plant(), fault_tap, rng);
  EXPECT_EQ(m2[metric_index(LineMetric::kBridgeTap)], 1.0F);
}

TEST(Line, MissingRecordShape) {
  const MetricVector m = missing_record();
  EXPECT_FALSE(record_present(m));
  EXPECT_EQ(m[metric_index(LineMetric::kState)], 0.0F);
  for (std::size_t i = 1; i < kNumLineMetrics; ++i) {
    EXPECT_TRUE(ml::is_missing(m[i])) << metric_name(i);
  }
}

TEST(Line, PresentRecordHasStateOne) {
  util::Rng rng(5);
  const MetricVector m =
      measure_line(typical_plant(), MeasurementContext{}, rng);
  EXPECT_TRUE(record_present(m));
  for (std::size_t i = 0; i < kNumLineMetrics; ++i) {
    EXPECT_FALSE(ml::is_missing(m[i])) << metric_name(i);
  }
}

TEST(AccumulateEffects, AdditiveChannelsAdd) {
  FaultEffects total;
  FaultEffects a;
  a.atten_db = 3.0;
  a.cv_rate = 10.0;
  accumulate_effects(total, a, 1.0);
  accumulate_effects(total, a, 0.5);
  EXPECT_NEAR(total.atten_db, 4.5, 1e-12);
  EXPECT_NEAR(total.cv_rate, 15.0, 1e-12);
}

TEST(AccumulateEffects, MultiplicativeChannelsCompose) {
  FaultEffects total;
  FaultEffects half;
  half.rate_mult = 0.5;
  accumulate_effects(total, half, 1.0);
  accumulate_effects(total, half, 1.0);
  EXPECT_NEAR(total.rate_mult, 0.25, 1e-12);
}

TEST(AccumulateEffects, ProbabilityChannelsCombineAsIndependent) {
  FaultEffects total;
  FaultEffects fx;
  fx.modem_off_prob = 0.5;
  accumulate_effects(total, fx, 1.0);
  accumulate_effects(total, fx, 1.0);
  EXPECT_NEAR(total.modem_off_prob, 0.75, 1e-12);
}

TEST(AccumulateEffects, ZeroScaleIsNoOp) {
  FaultEffects total;
  FaultEffects fx;
  fx.atten_db = 100.0;
  fx.rate_mult = 0.0;
  accumulate_effects(total, fx, 0.0);
  EXPECT_EQ(total.atten_db, 0.0);
  EXPECT_EQ(total.rate_mult, 1.0);
}

TEST(ModemOffProbability, CombinesCustomerAndFault) {
  FaultEffects fx;
  fx.modem_off_prob = 0.4;
  EXPECT_NEAR(modem_off_probability(0.5, fx), 0.7, 1e-12);
  EXPECT_NEAR(modem_off_probability(0.0, FaultEffects{}), 0.0, 1e-12);
  EXPECT_NEAR(modem_off_probability(1.0, FaultEffects{}), 1.0, 1e-12);
}

TEST(PerceivedSeverity, TracksCustomerVisibleSymptoms) {
  FaultEffects silent;
  silent.fec_rate = 500.0;  // FEC churn is invisible to the customer
  FaultEffects dead;
  dead.rate_mult = 0.0;
  dead.modem_off_prob = 0.9;
  EXPECT_GT(perceived_severity(dead), perceived_severity(silent) + 1.0);
  EXPECT_EQ(perceived_severity(FaultEffects{}), 0.0);
}

TEST(SamplePlant, WithinPhysicalBounds) {
  util::Rng rng(6);
  for (int i = 0; i < 500; ++i) {
    const LinePlant p = sample_plant(rng);
    EXPECT_GE(p.loop_length_ft, 1200.0F);
    EXPECT_LE(p.loop_length_ft, 19500.0F);
    EXPECT_GE(p.gauge_db_per_kft, 4.2F);
    EXPECT_LE(p.gauge_db_per_kft, 6.4F);
  }
}

TEST(SampleProfile, LongLoopsAvoidEliteTiers) {
  util::Rng rng(7);
  int elite_on_long = 0;
  int elite_on_short = 0;
  for (int i = 0; i < 2000; ++i) {
    LinePlant lp = typical_plant(17000.0F);
    LinePlant sp = typical_plant(2500.0F);
    if (sample_profile(lp, rng) == 4) ++elite_on_long;
    if (sample_profile(sp, rng) == 4) ++elite_on_short;
  }
  EXPECT_LT(elite_on_long, elite_on_short / 2 + 10);
}

}  // namespace
}  // namespace nevermind::dslsim
