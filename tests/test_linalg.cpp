#include "ml/linalg.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace nevermind::ml {
namespace {

TEST(Matrix, Identity) {
  const Matrix m = Matrix::identity(3);
  EXPECT_EQ(m.at(0, 0), 1.0);
  EXPECT_EQ(m.at(0, 1), 0.0);
  EXPECT_EQ(m.at(2, 2), 1.0);
}

TEST(Matrix, AtBoundsChecked) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW(m.at(0, 2), std::out_of_range);
}

TEST(SolveLinearSystem, Solves2x2) {
  Matrix a(2, 2);
  a.at(0, 0) = 2.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 3.0;
  std::vector<double> x;
  ASSERT_TRUE(solve_linear_system(a, {5.0, 10.0}, x));
  EXPECT_NEAR(x[0], 1.0, 1e-10);
  EXPECT_NEAR(x[1], 3.0, 1e-10);
}

TEST(SolveLinearSystem, RequiresPivoting) {
  // Zero on the diagonal forces a row swap.
  Matrix a(2, 2);
  a.at(0, 0) = 0.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 0.0;
  std::vector<double> x;
  ASSERT_TRUE(solve_linear_system(a, {2.0, 3.0}, x));
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SolveLinearSystem, SingularFails) {
  Matrix a(2, 2);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 2.0;
  a.at(1, 1) = 4.0;
  std::vector<double> x;
  EXPECT_FALSE(solve_linear_system(a, {1.0, 2.0}, x));
}

TEST(SolveLinearSystem, ShapeMismatchFails) {
  Matrix a(2, 3);
  std::vector<double> x;
  EXPECT_FALSE(solve_linear_system(a, {1.0, 2.0}, x));
}

TEST(InvertSpd, InvertsDiagonal) {
  Matrix a(2, 2);
  a.at(0, 0) = 4.0;
  a.at(1, 1) = 2.0;
  Matrix inv;
  ASSERT_TRUE(invert_spd(a, inv));
  EXPECT_NEAR(inv.at(0, 0), 0.25, 1e-12);
  EXPECT_NEAR(inv.at(1, 1), 0.5, 1e-12);
  EXPECT_NEAR(inv.at(0, 1), 0.0, 1e-12);
}

TEST(InvertSpd, ProductIsIdentity) {
  Matrix a(3, 3);
  // SPD matrix: A = B^T B + I for a fixed B.
  const double b[3][3] = {{1, 2, 0}, {0, 1, 1}, {2, 0, 1}};
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      double s = i == j ? 1.0 : 0.0;
      for (int k = 0; k < 3; ++k) s += b[k][i] * b[k][j];
      a.at(i, j) = s;
    }
  }
  Matrix inv;
  ASSERT_TRUE(invert_spd(a, inv));
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      double s = 0.0;
      for (int k = 0; k < 3; ++k) s += a.at(i, k) * inv.at(k, j);
      EXPECT_NEAR(s, i == j ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(SymmetricEigen, DiagonalMatrix) {
  Matrix a(3, 3);
  a.at(0, 0) = 1.0;
  a.at(1, 1) = 5.0;
  a.at(2, 2) = 3.0;
  const EigenResult r = symmetric_eigen(a);
  ASSERT_EQ(r.eigenvalues.size(), 3U);
  EXPECT_NEAR(r.eigenvalues[0], 5.0, 1e-10);
  EXPECT_NEAR(r.eigenvalues[1], 3.0, 1e-10);
  EXPECT_NEAR(r.eigenvalues[2], 1.0, 1e-10);
}

TEST(SymmetricEigen, KnownTwoByTwo) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  Matrix a(2, 2);
  a.at(0, 0) = 2.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 2.0;
  const EigenResult r = symmetric_eigen(a);
  EXPECT_NEAR(r.eigenvalues[0], 3.0, 1e-10);
  EXPECT_NEAR(r.eigenvalues[1], 1.0, 1e-10);
  // Leading eigenvector is (1,1)/sqrt(2) up to sign.
  const double v0 = r.eigenvectors.at(0, 0);
  const double v1 = r.eigenvectors.at(1, 0);
  EXPECT_NEAR(std::fabs(v0), std::sqrt(0.5), 1e-8);
  EXPECT_NEAR(v0, v1, 1e-8);
}

TEST(SymmetricEigen, EigenvectorsAreOrthonormal) {
  Matrix a(3, 3);
  const double vals[3][3] = {{4, 1, 0.5}, {1, 3, 0.2}, {0.5, 0.2, 2}};
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) a.at(i, j) = vals[i][j];
  }
  const EigenResult r = symmetric_eigen(a);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      double dot = 0.0;
      for (int k = 0; k < 3; ++k) {
        dot += r.eigenvectors.at(k, i) * r.eigenvectors.at(k, j);
      }
      EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST(SymmetricEigen, TraceIsPreserved) {
  Matrix a(4, 4);
  double trace = 0.0;
  for (int i = 0; i < 4; ++i) {
    for (int j = i; j < 4; ++j) {
      a.at(i, j) = 1.0 / (1.0 + i + j);
      a.at(j, i) = a.at(i, j);
    }
    trace += a.at(i, i);
  }
  const EigenResult r = symmetric_eigen(a);
  double sum = 0.0;
  for (double ev : r.eigenvalues) sum += ev;
  EXPECT_NEAR(sum, trace, 1e-9);
}

}  // namespace
}  // namespace nevermind::ml
