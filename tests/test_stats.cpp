#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace nevermind::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0U);
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_EQ(rs.stddev(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats rs;
  rs.add(5.0);
  EXPECT_EQ(rs.count(), 1U);
  EXPECT_EQ(rs.mean(), 5.0);
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_EQ(rs.min(), 5.0);
  EXPECT_EQ(rs.max(), 5.0);
}

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0, -3.0};
  RunningStats rs;
  for (double x : xs) rs.add(x);
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(rs.variance(), variance(xs), 1e-12);
  EXPECT_EQ(rs.min(), -3.0);
  EXPECT_EQ(rs.max(), 16.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(5);
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2U);
  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2U);
  EXPECT_NEAR(b.mean(), 1.5, 1e-12);
}

TEST(RunningStats, NumericallyStableForLargeOffsets) {
  RunningStats rs;
  for (int i = 0; i < 1000; ++i) rs.add(1e9 + (i % 2 == 0 ? 0.5 : -0.5));
  EXPECT_NEAR(rs.variance(), 0.25 * 1000.0 / 999.0, 1e-3);
}

TEST(Quantile, EmptyIsZero) {
  EXPECT_EQ(quantile({}, 0.5), 0.0);
}

TEST(Quantile, MedianOfOddCount) {
  const std::vector<double> xs = {5.0, 1.0, 3.0};
  EXPECT_EQ(quantile(xs, 0.5), 3.0);
}

TEST(Quantile, Interpolates) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_NEAR(quantile(xs, 0.25), 2.5, 1e-12);
}

TEST(Quantile, ClampsOutOfRangeQ) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  EXPECT_EQ(quantile(xs, -1.0), 1.0);
  EXPECT_EQ(quantile(xs, 2.0), 3.0);
}

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const std::vector<double> ys = {2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson_correlation(xs, ys), 1.0, 1e-12);
}

TEST(Pearson, PerfectAnticorrelation) {
  const std::vector<double> xs = {1, 2, 3};
  const std::vector<double> ys = {3, 2, 1};
  EXPECT_NEAR(pearson_correlation(xs, ys), -1.0, 1e-12);
}

TEST(Pearson, ConstantSeriesIsZero) {
  const std::vector<double> xs = {1, 1, 1};
  const std::vector<double> ys = {1, 2, 3};
  EXPECT_EQ(pearson_correlation(xs, ys), 0.0);
}

TEST(Pearson, IndependentNearZero) {
  Rng rng(9);
  std::vector<double> xs(5000);
  std::vector<double> ys(5000);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.normal();
    ys[i] = rng.normal();
  }
  EXPECT_NEAR(pearson_correlation(xs, ys), 0.0, 0.05);
}

TEST(Histogram, RejectsBadArguments) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
}

TEST(Histogram, BinsValuesCorrectly) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(5.0);
  EXPECT_EQ(h.bin_count(0), 1U);
  EXPECT_EQ(h.bin_count(9), 1U);
  EXPECT_EQ(h.bin_count(5), 1U);
  EXPECT_EQ(h.total(), 3U);
}

TEST(Histogram, ClampsOutliersIntoEdgeBins) {
  Histogram h(0.0, 1.0, 4);
  h.add(-100.0);
  h.add(100.0);
  EXPECT_EQ(h.bin_count(0), 1U);
  EXPECT_EQ(h.bin_count(3), 1U);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_NEAR(h.bin_low(0), 0.0, 1e-12);
  EXPECT_NEAR(h.bin_high(0), 0.25, 1e-12);
  EXPECT_NEAR(h.bin_low(3), 0.75, 1e-12);
  EXPECT_NEAR(h.bin_high(3), 1.0, 1e-12);
}

TEST(EmpiricalCdf, EmptyIsZero) {
  EmpiricalCdf cdf({});
  EXPECT_EQ(cdf.at(0.0), 0.0);
}

TEST(EmpiricalCdf, StepFunction) {
  EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(cdf.at(0.5), 0.0);
  EXPECT_EQ(cdf.at(1.0), 0.25);
  EXPECT_EQ(cdf.at(2.5), 0.5);
  EXPECT_EQ(cdf.at(4.0), 1.0);
  EXPECT_EQ(cdf.at(100.0), 1.0);
}

TEST(EmpiricalCdf, UnsortedInputHandled) {
  EmpiricalCdf cdf({3.0, 1.0, 2.0});
  EXPECT_NEAR(cdf.at(1.5), 1.0 / 3.0, 1e-12);
}

/// Property: the CDF is monotone non-decreasing.
class CdfMonotone : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CdfMonotone, MonotoneNonDecreasing) {
  Rng rng(GetParam());
  std::vector<double> xs(200);
  for (auto& x : xs) x = rng.normal(0.0, 5.0);
  EmpiricalCdf cdf(xs);
  double prev = -1.0;
  for (double q = -15.0; q <= 15.0; q += 0.5) {
    const double v = cdf.at(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CdfMonotone, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace nevermind::util
