#include "core/monitoring.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace nevermind::core {
namespace {

std::vector<float> sample_normal(util::Rng& rng, std::size_t n, double mean,
                                 double sd, double missing_rate = 0.0) {
  std::vector<float> out(n);
  for (auto& v : out) {
    v = rng.bernoulli(missing_rate)
            ? ml::kMissing
            : static_cast<float>(rng.normal(mean, sd));
  }
  return out;
}

TEST(Psi, IdenticalDistributionsNearZero) {
  util::Rng rng(1);
  const auto ref = sample_normal(rng, 20000, 0.0, 1.0);
  const auto cur = sample_normal(rng, 20000, 0.0, 1.0);
  EXPECT_LT(population_stability_index(ref, cur), 0.02);
}

TEST(Psi, ShiftedDistributionFlagged) {
  util::Rng rng(2);
  const auto ref = sample_normal(rng, 20000, 0.0, 1.0);
  const auto shifted = sample_normal(rng, 20000, 1.5, 1.0);
  EXPECT_GT(population_stability_index(ref, shifted), 0.25);
}

TEST(Psi, VarianceChangeFlagged) {
  util::Rng rng(3);
  const auto ref = sample_normal(rng, 20000, 0.0, 1.0);
  const auto wide = sample_normal(rng, 20000, 0.0, 3.0);
  EXPECT_GT(population_stability_index(ref, wide), 0.25);
}

TEST(Psi, MissingRateChangeFlagged) {
  util::Rng rng(4);
  const auto ref = sample_normal(rng, 20000, 0.0, 1.0, 0.02);
  const auto gappy = sample_normal(rng, 20000, 0.0, 1.0, 0.5);
  EXPECT_GT(population_stability_index(ref, gappy), 0.25);
}

TEST(Psi, SymmetricInMagnitude) {
  // PSI(shift up) and PSI(shift down) should both alarm.
  util::Rng rng(5);
  const auto ref = sample_normal(rng, 20000, 0.0, 1.0);
  const auto up = sample_normal(rng, 20000, 1.0, 1.0);
  const auto down = sample_normal(rng, 20000, -1.0, 1.0);
  EXPECT_GT(population_stability_index(ref, up), 0.1);
  EXPECT_GT(population_stability_index(ref, down), 0.1);
}

TEST(Psi, ConstantColumnSafe) {
  const std::vector<float> ref(1000, 5.0F);
  const std::vector<float> cur(1000, 5.0F);
  EXPECT_LT(population_stability_index(ref, cur), 1e-9);
}

ml::FeatureArena make_block(util::Rng& rng, std::size_t n, double shift_b) {
  ml::FeatureArena d({{"a", false}, {"b", false}});
  for (std::size_t i = 0; i < n; ++i) {
    const float row[2] = {
        static_cast<float>(rng.normal()),
        static_cast<float>(rng.normal(shift_b, 1.0))};
    d.add_row(row, false);
  }
  return d;
}

TEST(DriftMonitor, FlagsOnlyDriftedColumn) {
  util::Rng rng(6);
  const ml::FeatureArena reference = make_block(rng, 10000, 0.0);
  const ml::FeatureArena drifted = make_block(rng, 10000, 2.0);
  DriftMonitor monitor;
  monitor.fit(reference);
  ASSERT_TRUE(monitor.fitted());
  const auto psi = monitor.column_psi(drifted);
  ASSERT_EQ(psi.size(), 2U);
  EXPECT_LT(psi[0], 0.1);
  EXPECT_GT(psi[1], 0.25);

  const auto alerts = monitor.alerts(drifted);
  ASSERT_EQ(alerts.size(), 1U);
  EXPECT_EQ(alerts[0].name, "b");
}

TEST(DriftMonitor, NoAlertsOnStableStream) {
  util::Rng rng(7);
  const ml::FeatureArena reference = make_block(rng, 10000, 0.0);
  const ml::FeatureArena fresh = make_block(rng, 10000, 0.0);
  DriftMonitor monitor;
  monitor.fit(reference);
  EXPECT_TRUE(monitor.alerts(fresh).empty());
}

TEST(DriftMonitor, AlertsSortedBySeverity) {
  util::Rng rng(8);
  ml::FeatureArena reference({{"a", false}, {"b", false}});
  ml::FeatureArena drifted({{"a", false}, {"b", false}});
  for (int i = 0; i < 8000; ++i) {
    const float ref_row[2] = {static_cast<float>(rng.normal()),
                              static_cast<float>(rng.normal())};
    reference.add_row(ref_row, false);
    const float drift_row[2] = {static_cast<float>(rng.normal(1.0, 1.0)),
                                static_cast<float>(rng.normal(3.0, 1.0))};
    drifted.add_row(drift_row, false);
  }
  DriftMonitor monitor;
  monitor.fit(reference);
  const auto alerts = monitor.alerts(drifted, 0.1);
  ASSERT_EQ(alerts.size(), 2U);
  EXPECT_EQ(alerts[0].name, "b");
  EXPECT_GE(alerts[0].psi, alerts[1].psi);
}

TEST(DriftMonitor, UnfittedIsEmpty) {
  DriftMonitor monitor;
  EXPECT_FALSE(monitor.fitted());
  util::Rng rng(9);
  const ml::FeatureArena block = make_block(rng, 100, 0.0);
  EXPECT_TRUE(monitor.column_psi(block).empty());
}

}  // namespace
}  // namespace nevermind::core
