#include "core/monitoring.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace nevermind::core {
namespace {

std::vector<float> sample_normal(util::Rng& rng, std::size_t n, double mean,
                                 double sd, double missing_rate = 0.0) {
  std::vector<float> out(n);
  for (auto& v : out) {
    v = rng.bernoulli(missing_rate)
            ? ml::kMissing
            : static_cast<float>(rng.normal(mean, sd));
  }
  return out;
}

TEST(Psi, IdenticalDistributionsNearZero) {
  util::Rng rng(1);
  const auto ref = sample_normal(rng, 20000, 0.0, 1.0);
  const auto cur = sample_normal(rng, 20000, 0.0, 1.0);
  EXPECT_LT(population_stability_index(ref, cur), 0.02);
}

TEST(Psi, ShiftedDistributionFlagged) {
  util::Rng rng(2);
  const auto ref = sample_normal(rng, 20000, 0.0, 1.0);
  const auto shifted = sample_normal(rng, 20000, 1.5, 1.0);
  EXPECT_GT(population_stability_index(ref, shifted), 0.25);
}

TEST(Psi, VarianceChangeFlagged) {
  util::Rng rng(3);
  const auto ref = sample_normal(rng, 20000, 0.0, 1.0);
  const auto wide = sample_normal(rng, 20000, 0.0, 3.0);
  EXPECT_GT(population_stability_index(ref, wide), 0.25);
}

TEST(Psi, MissingRateChangeFlagged) {
  util::Rng rng(4);
  const auto ref = sample_normal(rng, 20000, 0.0, 1.0, 0.02);
  const auto gappy = sample_normal(rng, 20000, 0.0, 1.0, 0.5);
  EXPECT_GT(population_stability_index(ref, gappy), 0.25);
}

TEST(Psi, SymmetricInMagnitude) {
  // PSI(shift up) and PSI(shift down) should both alarm.
  util::Rng rng(5);
  const auto ref = sample_normal(rng, 20000, 0.0, 1.0);
  const auto up = sample_normal(rng, 20000, 1.0, 1.0);
  const auto down = sample_normal(rng, 20000, -1.0, 1.0);
  EXPECT_GT(population_stability_index(ref, up), 0.1);
  EXPECT_GT(population_stability_index(ref, down), 0.1);
}

TEST(Psi, ConstantColumnSafe) {
  const std::vector<float> ref(1000, 5.0F);
  const std::vector<float> cur(1000, 5.0F);
  EXPECT_LT(population_stability_index(ref, cur), 1e-9);
}

ml::FeatureArena make_block(util::Rng& rng, std::size_t n, double shift_b) {
  ml::FeatureArena d({{"a", false}, {"b", false}});
  for (std::size_t i = 0; i < n; ++i) {
    const float row[2] = {
        static_cast<float>(rng.normal()),
        static_cast<float>(rng.normal(shift_b, 1.0))};
    d.add_row(row, false);
  }
  return d;
}

TEST(DriftMonitor, FlagsOnlyDriftedColumn) {
  util::Rng rng(6);
  const ml::FeatureArena reference = make_block(rng, 10000, 0.0);
  const ml::FeatureArena drifted = make_block(rng, 10000, 2.0);
  DriftMonitor monitor;
  monitor.fit(reference);
  ASSERT_TRUE(monitor.fitted());
  const auto psi = monitor.column_psi(drifted);
  ASSERT_EQ(psi.size(), 2U);
  EXPECT_LT(psi[0], 0.1);
  EXPECT_GT(psi[1], 0.25);

  const auto alerts = monitor.alerts(drifted);
  ASSERT_EQ(alerts.size(), 1U);
  EXPECT_EQ(alerts[0].name, "b");
}

TEST(DriftMonitor, NoAlertsOnStableStream) {
  util::Rng rng(7);
  const ml::FeatureArena reference = make_block(rng, 10000, 0.0);
  const ml::FeatureArena fresh = make_block(rng, 10000, 0.0);
  DriftMonitor monitor;
  monitor.fit(reference);
  EXPECT_TRUE(monitor.alerts(fresh).empty());
}

TEST(DriftMonitor, AlertsSortedBySeverity) {
  util::Rng rng(8);
  ml::FeatureArena reference({{"a", false}, {"b", false}});
  ml::FeatureArena drifted({{"a", false}, {"b", false}});
  for (int i = 0; i < 8000; ++i) {
    const float ref_row[2] = {static_cast<float>(rng.normal()),
                              static_cast<float>(rng.normal())};
    reference.add_row(ref_row, false);
    const float drift_row[2] = {static_cast<float>(rng.normal(1.0, 1.0)),
                                static_cast<float>(rng.normal(3.0, 1.0))};
    drifted.add_row(drift_row, false);
  }
  DriftMonitor monitor;
  monitor.fit(reference);
  const auto alerts = monitor.alerts(drifted, 0.1);
  ASSERT_EQ(alerts.size(), 2U);
  EXPECT_EQ(alerts[0].name, "b");
  EXPECT_GE(alerts[0].psi, alerts[1].psi);
}

TEST(Psi, DirectionSwapBothFlag) {
  // PSI is computed against bins fitted on whichever sample plays the
  // reference role; a real shift must alarm from either side.
  util::Rng rng(20);
  const auto a = sample_normal(rng, 20000, 0.0, 1.0);
  const auto b = sample_normal(rng, 20000, 1.5, 1.0);
  EXPECT_GT(population_stability_index(a, b), 0.25);
  EXPECT_GT(population_stability_index(b, a), 0.25);
}

TEST(DriftMonitor, EmptyCurrentBlockIsFinite) {
  // Week with no rows at all (e.g. a feed outage): PSI must stay
  // finite — the kFloor clamp keeps the logs defined — and register as
  // a large shift rather than crashing or returning NaN.
  util::Rng rng(21);
  const ml::FeatureArena reference = make_block(rng, 5000, 0.0);
  DriftMonitor monitor;
  monitor.fit(reference);
  const ml::FeatureArena empty({{"a", false}, {"b", false}});
  const auto psi = monitor.column_psi(empty);
  ASSERT_EQ(psi.size(), 2U);
  for (const double p : psi) {
    EXPECT_TRUE(std::isfinite(p));
    EXPECT_GE(p, 0.0);
  }
}

TEST(DriftMonitor, AllMissingColumnHandled) {
  // A column that is missing in every reference row has no quantile
  // edges; its whole expected mass sits in the missing bin. Staying
  // all-missing is stable, values appearing is a flagged shift.
  ml::FeatureArena reference({{"a", false}, {"gone", false}});
  ml::FeatureArena still_missing({{"a", false}, {"gone", false}});
  ml::FeatureArena now_present({{"a", false}, {"gone", false}});
  util::Rng rng(22);
  for (int i = 0; i < 4000; ++i) {
    const auto a = static_cast<float>(rng.normal());
    const float ref_row[2] = {a, ml::kMissing};
    reference.add_row(ref_row, false);
    still_missing.add_row(ref_row, false);
    const float present_row[2] = {a, static_cast<float>(rng.normal())};
    now_present.add_row(present_row, false);
  }
  DriftMonitor monitor;
  monitor.fit(reference);
  const auto stable = monitor.column_psi(still_missing);
  ASSERT_EQ(stable.size(), 2U);
  EXPECT_LT(stable[1], 0.02);
  const auto shifted = monitor.column_psi(now_present);
  EXPECT_GT(shifted[1], 0.25);
}

TEST(DriftMonitor, FewerDistinctValuesThanBins) {
  // A near-binary column cannot fill 10 equal-frequency bins; the
  // deduplicated edges must still give PSI ~ 0 on the same
  // distribution and alarm when the class balance flips.
  ml::FeatureArena reference({{"flag", false}});
  ml::FeatureArena same({{"flag", false}});
  ml::FeatureArena flipped({{"flag", false}});
  util::Rng rng(23);
  for (int i = 0; i < 8000; ++i) {
    const float ref_row[1] = {rng.bernoulli(0.2) ? 1.0F : 0.0F};
    reference.add_row(ref_row, false);
    const float same_row[1] = {rng.bernoulli(0.2) ? 1.0F : 0.0F};
    same.add_row(same_row, false);
    const float flip_row[1] = {rng.bernoulli(0.8) ? 1.0F : 0.0F};
    flipped.add_row(flip_row, false);
  }
  DriftMonitor monitor;
  monitor.fit(reference);
  EXPECT_LT(monitor.column_psi(same)[0], 0.05);
  EXPECT_GT(monitor.column_psi(flipped)[0], 0.25);
}

TEST(DriftMonitor, UnfittedIsEmpty) {
  DriftMonitor monitor;
  EXPECT_FALSE(monitor.fitted());
  util::Rng rng(9);
  const ml::FeatureArena block = make_block(rng, 100, 0.0);
  EXPECT_TRUE(monitor.column_psi(block).empty());
}

}  // namespace
}  // namespace nevermind::core
