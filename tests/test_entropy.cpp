#include "ml/entropy.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "ml/dataset.hpp"
#include "util/rng.hpp"

namespace nevermind::ml {
namespace {

TEST(BinaryEntropy, KnownValues) {
  EXPECT_NEAR(binary_entropy(1, 2), 1.0, 1e-12);
  EXPECT_EQ(binary_entropy(0, 10), 0.0);
  EXPECT_EQ(binary_entropy(10, 10), 0.0);
  EXPECT_EQ(binary_entropy(0, 0), 0.0);
}

TEST(BinaryEntropy, SymmetricAndBounded) {
  for (std::size_t k = 1; k < 10; ++k) {
    EXPECT_NEAR(binary_entropy(k, 10), binary_entropy(10 - k, 10), 1e-12);
    EXPECT_LE(binary_entropy(k, 10), 1.0);
    EXPECT_GT(binary_entropy(k, 10), 0.0);
  }
}

TEST(GainRatio, InformativeFeatureScoresHigher) {
  util::Rng rng(1);
  std::vector<float> informative;
  std::vector<float> noise;
  std::vector<std::uint8_t> labels;
  for (int i = 0; i < 2000; ++i) {
    const bool y = rng.bernoulli(0.5);
    labels.push_back(y ? 1 : 0);
    informative.push_back(static_cast<float>(rng.normal(y ? 2.0 : -2.0, 1.0)));
    noise.push_back(static_cast<float>(rng.normal()));
  }
  const auto gi = gain_ratio(informative, labels);
  const auto gn = gain_ratio(noise, labels);
  EXPECT_GT(gi.gain_ratio, gn.gain_ratio * 3.0);
  EXPECT_GT(gi.information_gain, 0.5);
}

TEST(GainRatio, ConstantLabelsGiveZeroGain) {
  std::vector<float> x = {1.0F, 2.0F, 3.0F, 4.0F};
  std::vector<std::uint8_t> labels = {1, 1, 1, 1};
  const auto g = gain_ratio(x, labels);
  EXPECT_EQ(g.information_gain, 0.0);
  EXPECT_EQ(g.gain_ratio, 0.0);
}

TEST(GainRatio, EmptyInputSafe) {
  const auto g = gain_ratio({}, {});
  EXPECT_EQ(g.gain_ratio, 0.0);
}

TEST(GainRatio, MissingValuesFormOwnBin) {
  // Missingness itself carries the label signal.
  std::vector<float> x;
  std::vector<std::uint8_t> labels;
  util::Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const bool y = rng.bernoulli(0.5);
    labels.push_back(y ? 1 : 0);
    x.push_back(y ? kMissing : static_cast<float>(rng.normal()));
  }
  const auto g = gain_ratio(x, labels);
  EXPECT_GT(g.information_gain, 0.5);
}

TEST(GainRatio, IntrinsicValuePenalizesManySplits) {
  // A unique-value feature has maximal split entropy; gain ratio
  // discounts it relative to the raw gain.
  std::vector<float> x;
  std::vector<std::uint8_t> labels;
  for (int i = 0; i < 64; ++i) {
    x.push_back(static_cast<float>(i));
    labels.push_back(i % 2 == 0 ? 1 : 0);
  }
  const auto g = gain_ratio(x, labels, 32);
  EXPECT_GT(g.intrinsic_value, 1.0);
  EXPECT_LT(g.gain_ratio, g.information_gain + 1e-12);
}

TEST(GainRatio, EqualValuesStayInOneBin) {
  // Value 5 dominates and must not be split across bins: its bin purity
  // then determines the gain.
  std::vector<float> x;
  std::vector<std::uint8_t> labels;
  for (int i = 0; i < 100; ++i) {
    x.push_back(5.0F);
    labels.push_back(1);
  }
  for (int i = 0; i < 100; ++i) {
    x.push_back(1.0F);
    labels.push_back(0);
  }
  const auto g = gain_ratio(x, labels, 10);
  EXPECT_NEAR(g.information_gain, 1.0, 1e-6);
}

TEST(GainRatio, MoreBinsDoNotReduceGain) {
  util::Rng rng(3);
  std::vector<float> x;
  std::vector<std::uint8_t> labels;
  for (int i = 0; i < 3000; ++i) {
    const bool y = rng.bernoulli(0.4);
    labels.push_back(y ? 1 : 0);
    x.push_back(static_cast<float>(rng.normal(y ? 1.0 : 0.0, 1.0)));
  }
  const auto coarse = gain_ratio(x, labels, 2);
  const auto fine = gain_ratio(x, labels, 20);
  EXPECT_GE(fine.information_gain, coarse.information_gain - 0.01);
}

}  // namespace
}  // namespace nevermind::ml
