// Concurrency smoke for the network front-end, built to run under
// -DNEVERMIND_SANITIZE=thread (ctest -L tsan): the epoll loop on its
// own thread, a fleet of client threads ingesting and querying over
// real sockets, and a publisher thread hot-swapping the model registry
// underneath the running server. Server stats are only read after
// run() returns — the counters are loop-thread-local by design.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/ticket_predictor.hpp"
#include "dslsim/simulator.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "serve/line_state_store.hpp"
#include "serve/model_registry.hpp"
#include "serve/scoring_service.hpp"

namespace nevermind::net {
namespace {

TEST(NetConcurrency, ManyClientsWithHotSwapUnderneath) {
  dslsim::SimConfig cfg;
  cfg.seed = 77;
  cfg.topology.n_lines = 200;
  const dslsim::SimDataset data = dslsim::Simulator(cfg).run();

  core::PredictorConfig pcfg;
  pcfg.top_n = 10;
  pcfg.boost_iterations = 8;
  pcfg.use_derived_features = false;
  core::TicketPredictor predictor(pcfg);
  predictor.train(data, 20, 30);

  serve::LineStateStore store(8);
  serve::ModelRegistry registry;
  registry.publish(predictor.kernel());
  serve::ScoringService service(store, registry);
  Server server(store, service, registry);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  std::thread loop([&server] { server.run(); });

  constexpr std::size_t kClients = 6;
  constexpr int kWeeks = 8;
  std::atomic<bool> clients_done{false};
  std::atomic<std::uint64_t> scored{0};

  // Publisher: hot-swaps the model while requests are in flight.
  std::thread publisher([&] {
    while (!clients_done.load(std::memory_order_acquire)) {
      registry.publish(predictor.kernel());
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client;
      ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
      // Partitioned replay (same discipline as LoadGen), interleaved
      // with queries so ingest and score race across connections.
      for (int week = 0; week < kWeeks; ++week) {
        for (std::size_t l = c; l < data.n_lines(); l += kClients) {
          serve::LineMeasurement m;
          m.line = static_cast<dslsim::LineId>(l);
          m.week = week;
          m.profile = data.plant(m.line).profile;
          m.metrics = data.measurement(week, m.line);
          ASSERT_TRUE(client.ingest(m));
        }
        for (std::size_t l = c; l < data.n_lines(); l += kClients) {
          const auto s = client.score(static_cast<dslsim::LineId>(l));
          ASSERT_TRUE(s.has_value());
          EXPECT_EQ(s->line, l);
          if (s->valid) {
            EXPECT_GE(s->probability, 0.0);
            EXPECT_LE(s->probability, 1.0);
            EXPECT_GE(s->model_version, 1U);
          }
          scored.fetch_add(1, std::memory_order_relaxed);
        }
        ASSERT_TRUE(client.ping());
      }
      const auto ranked = client.top_n(10);
      ASSERT_TRUE(ranked.has_value());
      EXPECT_LE(ranked->size(), 10U);
    });
  }

  for (auto& t : clients) t.join();
  clients_done.store(true, std::memory_order_release);
  publisher.join();
  server.request_stop();
  loop.join();

  // Each week every line is scored exactly once across the partition.
  EXPECT_EQ(scored.load(), static_cast<std::uint64_t>(kWeeks) *
                               data.n_lines());
  const ServerStats& stats = server.stats();
  EXPECT_EQ(stats.accepted, kClients);
  EXPECT_EQ(stats.frames_in, stats.replies_out);
  EXPECT_EQ(stats.protocol_errors, 0U);
  EXPECT_GE(registry.swap_count(), 2U);
}

}  // namespace
}  // namespace nevermind::net
