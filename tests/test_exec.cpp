// Tests for the shared execution engine: pool lifecycle, the
// parallel_for / parallel_reduce / parallel_stable_sort determinism
// contract (chunking, ordering, exception selection), per-task RNG
// streams, and the end-to-end guarantee the rest of the codebase
// depends on — simulator output and weekly predictions byte-identical
// at every thread count.
#include "exec/exec.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/nevermind.hpp"
#include "dslsim/simulator.hpp"
#include "exec/thread_pool.hpp"
#include "util/rng.hpp"

namespace nevermind::exec {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    EXPECT_EQ(pool.n_workers(), 3U);
    for (int i = 0; i < 200; ++i) {
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    // Destructor drains the queue and joins; nothing may be dropped.
  }
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, SurvivesImmediateDestruction) {
  // Construct-and-destroy with no work must join cleanly.
  for (int i = 0; i < 5; ++i) {
    ThreadPool pool(2);
  }
}

TEST(ExecContext, DefaultAndSingleThreadAreSerial) {
  EXPECT_FALSE(ExecContext().parallel());
  EXPECT_EQ(ExecContext().threads(), 1U);
  EXPECT_FALSE(ExecContext(1).parallel());
  EXPECT_FALSE(ExecContext::serial().parallel());
  EXPECT_TRUE(ExecContext(4).parallel());
  EXPECT_EQ(ExecContext(4).threads(), 4U);
}

TEST(ExecContext, ParallelForEmptyRangeNeverCallsFn) {
  const ExecContext exec(4);
  int calls = 0;
  exec.parallel_for(5, 5, 1, [&](std::size_t, std::size_t) { ++calls; });
  exec.parallel_for(7, 3, 1, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ExecContext, ParallelForRangeSmallerThanGrainIsOneChunk) {
  const ExecContext exec(4);
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  std::mutex m;
  exec.parallel_for(10, 13, 100, [&](std::size_t b, std::size_t e) {
    const std::lock_guard<std::mutex> lock(m);
    chunks.emplace_back(b, e);
  });
  ASSERT_EQ(chunks.size(), 1U);
  EXPECT_EQ(chunks[0].first, 10U);
  EXPECT_EQ(chunks[0].second, 13U);
}

TEST(ExecContext, ParallelForCoversEveryIndexExactlyOnce) {
  const ExecContext exec(8);
  for (const std::size_t grain : {std::size_t{0}, std::size_t{1},
                                  std::size_t{3}, std::size_t{64}}) {
    std::vector<int> hits(257, 0);
    exec.parallel_for(0, hits.size(), grain,
                      [&](std::size_t b, std::size_t e) {
                        for (std::size_t i = b; i < e; ++i) ++hits[i];
                      });
    EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                            [](int h) { return h == 1; }))
        << "grain " << grain;
  }
}

TEST(ExecContext, ChunkDecompositionIgnoresThreadCount) {
  // The determinism contract: identical (range, grain) -> identical
  // chunks, whether the context is serial or parallel.
  const auto chunks_of = [](const ExecContext& exec, std::size_t n,
                            std::size_t grain) {
    std::vector<std::pair<std::size_t, std::size_t>> chunks;
    std::mutex m;
    exec.parallel_for(0, n, grain, [&](std::size_t b, std::size_t e) {
      const std::lock_guard<std::mutex> lock(m);
      chunks.emplace_back(b, e);
    });
    std::sort(chunks.begin(), chunks.end());
    return chunks;
  };
  for (const std::size_t n : {1UL, 63UL, 64UL, 65UL, 1000UL}) {
    for (const std::size_t grain : {0UL, 1UL, 7UL}) {
      EXPECT_EQ(chunks_of(ExecContext(), n, grain),
                chunks_of(ExecContext(8), n, grain))
          << "n=" << n << " grain=" << grain;
    }
  }
}

TEST(ExecContext, LowestIndexExceptionWinsInParallel) {
  const ExecContext exec(8);
  try {
    exec.parallel_for(0, 16, 1, [&](std::size_t b, std::size_t) {
      if (b == 3 || b == 11) {
        throw std::runtime_error("chunk " + std::to_string(b));
      }
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk 3");
  }
}

TEST(ExecContext, SerialExceptionPropagatesNaturally) {
  const ExecContext exec;
  EXPECT_THROW(exec.parallel_for(0, 4, 1,
                                 [](std::size_t b, std::size_t) {
                                   if (b == 2) throw std::logic_error("boom");
                                 }),
               std::logic_error);
}

TEST(ExecContext, PoolUsableAfterThrowingRegion) {
  const ExecContext exec(4);
  EXPECT_THROW(exec.parallel_for(0, 8, 1,
                                 [](std::size_t, std::size_t) {
                                   throw std::runtime_error("x");
                                 }),
               std::runtime_error);
  std::atomic<std::size_t> sum{0};
  exec.parallel_for(0, 100, 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(sum.load(), 4950U);
}

TEST(ExecContext, ParallelReduceCombinesInChunkOrder) {
  // String concatenation is order-sensitive: any scheduling leak into
  // the combine order would scramble the result.
  const ExecContext exec(8);
  const auto concat = [&](const ExecContext& e) {
    return e.parallel_reduce(
        0, 26, 3, std::string{},
        [](std::size_t b, std::size_t en) {
          std::string s;
          for (std::size_t i = b; i < en; ++i) {
            s.push_back(static_cast<char>('a' + i));
          }
          return s;
        },
        [](std::string acc, std::string chunk) { return acc + chunk; });
  };
  EXPECT_EQ(concat(exec), "abcdefghijklmnopqrstuvwxyz");
  EXPECT_EQ(concat(ExecContext::serial()), concat(exec));
}

TEST(ExecContext, ParallelReduceFloatingPointMatchesSerialBitExactly) {
  std::vector<double> xs(10'000);
  util::Rng rng(99);
  for (auto& x : xs) x = rng.uniform() * 1e6 - 5e5;
  const auto sum_with = [&](const ExecContext& e) {
    return e.parallel_reduce(
        0, xs.size(), 0, 0.0,
        [&](std::size_t b, std::size_t en) {
          double s = 0.0;
          for (std::size_t i = b; i < en; ++i) s += xs[i];
          return s;
        },
        [](double acc, double chunk) { return acc + chunk; });
  };
  const double serial = sum_with(ExecContext::serial());
  const double parallel = sum_with(ExecContext(8));
  EXPECT_EQ(serial, parallel);  // bit-exact, not just approximately
}

TEST(ExecContext, ParallelReduceEmptyRangeReturnsInit) {
  const ExecContext exec(4);
  const int out = exec.parallel_reduce(
      9, 9, 1, 42, [](std::size_t, std::size_t) { return 7; },
      [](int a, int b) { return a + b; });
  EXPECT_EQ(out, 42);
}

TEST(ExecContext, ParallelStableSortMatchesStdStableSort) {
  util::Rng rng(7);
  std::vector<std::pair<int, int>> base(5000);
  for (int i = 0; i < static_cast<int>(base.size()); ++i) {
    base[i] = {static_cast<int>(rng.uniform_index(40)), i};  // heavy key ties
  }
  const auto by_key = [](const auto& a, const auto& b) {
    return a.first < b.first;
  };
  auto expected = base;
  std::stable_sort(expected.begin(), expected.end(), by_key);

  const ExecContext exec(8);
  for (const std::size_t grain : {std::size_t{0}, std::size_t{1},
                                  std::size_t{17}, std::size_t{4096}}) {
    auto got = base;
    exec.parallel_stable_sort(got.begin(), got.end(), by_key, grain);
    EXPECT_EQ(got, expected) << "grain " << grain;
  }
}

TEST(ExecContext, TaskRngStreamsKeyedByIndexNotThreadCount) {
  const ExecContext serial1(1, 123);
  const ExecContext wide(8, 123);
  const ExecContext other_seed(8, 124);
  for (std::uint64_t i : {0ULL, 1ULL, 51ULL, 1'000'000ULL}) {
    util::Rng a = serial1.task_rng(i);
    util::Rng b = wide.task_rng(i);
    for (int d = 0; d < 16; ++d) EXPECT_EQ(a.next(), b.next());
  }
  util::Rng a = wide.task_rng(3);
  util::Rng b = wide.task_rng(4);
  util::Rng c = other_seed.task_rng(3);
  EXPECT_NE(a.next(), b.next());
  EXPECT_NE(wide.task_rng(3).next(), c.next());
}

TEST(ExecContext, NestedParallelRegionsComplete) {
  // The caller always drains its own chunks, so a parallel region
  // started from inside another one must finish even when every pool
  // worker is already busy.
  const ExecContext exec(4);
  std::atomic<std::size_t> total{0};
  exec.parallel_for(0, 8, 1, [&](std::size_t, std::size_t) {
    exec.parallel_for(0, 8, 1, [&](std::size_t b, std::size_t e) {
      total.fetch_add(e - b, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 64U);
}

// ---------------------------------------------------------------------
// End-to-end determinism: the pipeline-level guarantee. The simulator,
// the trained models, and the weekly ranking must be byte-identical at
// threads=1 and threads=8.
// ---------------------------------------------------------------------

dslsim::SimConfig small_sim_config() {
  dslsim::SimConfig cfg;
  cfg.seed = 77;
  cfg.topology.n_lines = 1500;
  return cfg;
}

TEST(ExecDeterminism, SimulatorOutputInvariantToThreadCount) {
  const dslsim::SimConfig cfg = small_sim_config();
  const dslsim::SimDataset serial = dslsim::Simulator(cfg).run();
  const dslsim::SimDataset wide =
      dslsim::Simulator(cfg).run(ExecContext(8));

  ASSERT_EQ(serial.n_lines(), wide.n_lines());
  ASSERT_EQ(serial.tickets().size(), wide.tickets().size());
  ASSERT_EQ(serial.episodes().size(), wide.episodes().size());
  for (int week = 0; week < serial.n_weeks(); ++week) {
    for (dslsim::LineId u = 0; u < serial.n_lines(); ++u) {
      const auto& a = serial.measurement(week, u);
      const auto& b = wide.measurement(week, u);
      for (std::size_t m = 0; m < a.size(); ++m) {
        // Bit-level compare: missing metrics are NaN, and NaN != NaN.
        std::uint32_t abits = 0;
        std::uint32_t bbits = 0;
        std::memcpy(&abits, &a[m], sizeof(abits));
        std::memcpy(&bbits, &b[m], sizeof(bbits));
        ASSERT_EQ(abits, bbits) << "week " << week << " line " << u
                                << " metric " << m;
      }
    }
  }
  for (dslsim::LineId u = 0; u < serial.n_lines(); ++u) {
    ASSERT_EQ(serial.in_byte_feed(u), wide.in_byte_feed(u));
    if (!serial.in_byte_feed(u)) continue;
    for (util::Day d = 0; d < 21; ++d) {
      ASSERT_EQ(serial.bytes_on_day(u, d), wide.bytes_on_day(u, d))
          << "line " << u << " day " << d;
    }
  }
}

TEST(ExecDeterminism, RunWeekPredictionsByteIdenticalAcrossThreadCounts) {
  const dslsim::SimDataset data =
      dslsim::Simulator(small_sim_config()).run();

  const auto run_pipeline = [&](std::size_t threads) {
    core::NevermindConfig cfg;
    cfg.exec = threads > 1 ? ExecContext(threads) : ExecContext();
    cfg.predictor.top_n = 30;
    cfg.predictor.boost_iterations = 40;
    cfg.locator.min_occurrences = 6;
    cfg.locator.boost_iterations = 20;
    cfg.atds.weekly_capacity = 30;
    core::Nevermind system(cfg);
    system.train(data, 30, 38, 20, 36);
    return system.run_week(data, 43);
  };

  const core::WeeklyCycle serial = run_pipeline(1);
  const core::WeeklyCycle wide = run_pipeline(8);

  ASSERT_EQ(serial.predictions.size(), wide.predictions.size());
  for (std::size_t i = 0; i < serial.predictions.size(); ++i) {
    ASSERT_EQ(serial.predictions[i].line, wide.predictions[i].line)
        << "rank " << i;
    ASSERT_EQ(serial.predictions[i].score, wide.predictions[i].score)
        << "rank " << i;
    ASSERT_EQ(serial.predictions[i].probability,
              wide.predictions[i].probability)
        << "rank " << i;
  }
  EXPECT_EQ(serial.atds.submitted, wide.atds.submitted);
}

}  // namespace
}  // namespace nevermind::exec
