#include "exec/thread_pool.hpp"

#include <utility>

namespace nevermind::exec {

ThreadPool::ThreadPool(std::size_t n_workers) {
  workers_.reserve(n_workers);
  for (std::size_t i = 0; i < n_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace nevermind::exec
