// Fixed-size worker pool underlying nevermind::exec. Deliberately
// simple — a single locked queue, no work stealing — because every
// consumer in this codebase submits a handful of long-running chunk
// tasks per parallel region, not fine-grained task graphs. Determinism
// never depends on the pool: chunk decomposition is fixed by the caller
// and results land in pre-assigned slots, so scheduling order is
// invisible to the output.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nevermind::exec {

class ThreadPool {
 public:
  /// Spawns `n_workers` threads. Zero workers is allowed: submit() then
  /// runs nothing until a worker exists, so callers must not rely on
  /// the pool for forward progress (parallel_for never does — the
  /// calling thread always drains its own chunks).
  explicit ThreadPool(std::size_t n_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t n_workers() const noexcept {
    return workers_.size();
  }

  /// Enqueue a task. Tasks must not throw (parallel regions catch
  /// exceptions before they reach the pool).
  void submit(std::function<void()> task);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace nevermind::exec
