// Shared execution engine for every bulk loop in NEVERMIND (weekly
// re-scoring of the whole line population, 52 one-vs-rest locator
// problems, per-feature stump search, simulator measurement sweeps).
//
// The determinism contract, which the rest of the codebase relies on:
//
//  * Chunk decomposition depends only on (range, grain) — never on the
//    thread count — and auto-grain is derived from the range size
//    alone. The same call therefore produces the same chunks whether it
//    runs on 1 thread or 64.
//  * parallel_for chunks write to disjoint, pre-assigned outputs, so
//    scheduling order is invisible.
//  * parallel_reduce combines chunk results strictly in chunk-index
//    order on the calling thread, so floating-point accumulation order
//    is fixed.
//  * Per-task randomness comes from ExecContext::task_rng(i), an
//    independent util::Rng stream keyed by task index — not by thread —
//    so stochastic loops (the simulator's per-line measurement streams)
//    are invariant to the thread count too.
//
// threads <= 1 (or a defaulted ExecContext) runs every chunk inline on
// the calling thread in chunk order: the exact serial path, with no
// pool, no synchronization, and natural exception propagation.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <vector>

#include "exec/thread_pool.hpp"
#include "util/rng.hpp"

namespace nevermind::exec {

class ExecContext {
 public:
  /// Serial context: all parallel_* calls degrade to plain loops.
  ExecContext() = default;

  /// Context targeting `threads` concurrent lanes. The pool holds
  /// threads - 1 workers; the calling thread always participates, so a
  /// parallel region makes progress even on an exhausted pool (and
  /// nested regions cannot deadlock: every caller can drain its own
  /// chunks). `seed` keys task_rng streams.
  explicit ExecContext(std::size_t threads,
                       std::uint64_t seed = 0x5EEDED5EEDED5EEDULL)
      : threads_(std::max<std::size_t>(threads, 1)), seed_(seed) {
    if (threads_ > 1) pool_ = std::make_shared<ThreadPool>(threads_ - 1);
  }

  /// The shared serial context — the default for every config knob.
  [[nodiscard]] static const ExecContext& serial() {
    static const ExecContext ctx;
    return ctx;
  }

  [[nodiscard]] std::size_t threads() const noexcept { return threads_; }
  [[nodiscard]] bool parallel() const noexcept { return pool_ != nullptr; }

  /// Independent deterministic RNG stream for logical task `index`.
  /// Streams are keyed by task identity, never by executing thread, so
  /// random draws are reproducible at any thread count.
  [[nodiscard]] util::Rng task_rng(std::uint64_t index) const noexcept {
    return util::Rng::stream(seed_, index);
  }

  /// Run fn(chunk_begin, chunk_end) over [begin, end) split into
  /// grain-sized chunks (grain 0 = auto, derived from the range size
  /// only). Chunks may run concurrently; the call returns after every
  /// chunk finished. If chunks throw, the exception of the
  /// lowest-indexed throwing chunk is rethrown (deterministic).
  template <typename Fn>
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const Fn& fn) const {
    if (end <= begin) return;
    const std::size_t n = end - begin;
    const std::size_t g = effective_grain(n, grain);
    const std::size_t n_chunks = (n + g - 1) / g;
    run_chunks(n_chunks, [&](std::size_t chunk) {
      const std::size_t b = begin + chunk * g;
      fn(b, std::min(b + g, end));
    });
  }

  /// Ordered reduction: map(chunk_begin, chunk_end) -> T per chunk,
  /// then acc = combine(std::move(acc), chunk_result) strictly in chunk
  /// order starting from `init`. The combine order is independent of
  /// the thread count, so floating-point results are reproducible.
  template <typename T, typename Map, typename Combine>
  [[nodiscard]] T parallel_reduce(std::size_t begin, std::size_t end,
                                  std::size_t grain, T init, const Map& map,
                                  const Combine& combine) const {
    T acc = std::move(init);
    if (end <= begin) return acc;
    const std::size_t n = end - begin;
    const std::size_t g = effective_grain(n, grain);
    const std::size_t n_chunks = (n + g - 1) / g;
    std::vector<T> results(n_chunks);
    run_chunks(n_chunks, [&](std::size_t chunk) {
      const std::size_t b = begin + chunk * g;
      results[chunk] = map(b, std::min(b + g, end));
    });
    for (auto& r : results) acc = combine(std::move(acc), std::move(r));
    return acc;
  }

  /// Stable sort of [first, last): grain-sized runs are sorted
  /// concurrently, then stably merged pairwise in index order. A stable
  /// order is unique, so the result is byte-identical to
  /// std::stable_sort at every thread count and grain.
  template <typename RandomIt, typename Compare>
  void parallel_stable_sort(RandomIt first, RandomIt last, Compare comp,
                            std::size_t grain = 0) const {
    const auto n = static_cast<std::size_t>(last - first);
    if (n < 2) return;
    const std::size_t g = effective_grain(n, grain);
    parallel_for(0, (n + g - 1) / g, 1, [&](std::size_t cb, std::size_t ce) {
      for (std::size_t chunk = cb; chunk < ce; ++chunk) {
        const std::size_t b = chunk * g;
        std::stable_sort(first + static_cast<std::ptrdiff_t>(b),
                         first + static_cast<std::ptrdiff_t>(std::min(b + g, n)),
                         comp);
      }
    });
    for (std::size_t width = g; width < n; width *= 2) {
      const std::size_t n_pairs = (n + 2 * width - 1) / (2 * width);
      parallel_for(0, n_pairs, 1, [&](std::size_t pb, std::size_t pe) {
        for (std::size_t pair = pb; pair < pe; ++pair) {
          const std::size_t lo = pair * 2 * width;
          const std::size_t mid = std::min(lo + width, n);
          const std::size_t hi = std::min(lo + 2 * width, n);
          if (mid < hi) {
            std::inplace_merge(first + static_cast<std::ptrdiff_t>(lo),
                               first + static_cast<std::ptrdiff_t>(mid),
                               first + static_cast<std::ptrdiff_t>(hi), comp);
          }
        }
      });
    }
  }

 private:
  /// Auto-grain targets ~4 chunks per thread's worth of slack but is a
  /// pure function of the range size so decomposition never depends on
  /// the thread count.
  [[nodiscard]] static std::size_t effective_grain(std::size_t n,
                                                   std::size_t grain) noexcept {
    if (grain > 0) return grain;
    return std::max<std::size_t>(1, (n + 63) / 64);
  }

  /// Execute run(chunk_index) for every chunk in [0, n_chunks). Workers
  /// and the calling thread pull chunk indices from a shared counter;
  /// the caller keeps pulling until all chunks are claimed, then waits
  /// for stragglers, then rethrows the lowest-index chunk exception.
  template <typename Run>
  void run_chunks(std::size_t n_chunks, const Run& run) const {
    if (!pool_ || n_chunks <= 1) {
      for (std::size_t c = 0; c < n_chunks; ++c) run(c);
      return;
    }

    struct Invocation {
      std::atomic<std::size_t> next{0};
      std::atomic<std::size_t> done{0};
      std::size_t n_chunks = 0;
      std::vector<std::exception_ptr> errors;
      std::mutex mutex;
      std::condition_variable cv;
    };
    auto inv = std::make_shared<Invocation>();
    inv->n_chunks = n_chunks;
    inv->errors.assign(n_chunks, nullptr);

    const auto drain = [&run](const std::shared_ptr<Invocation>& state) {
      for (;;) {
        const std::size_t chunk =
            state->next.fetch_add(1, std::memory_order_relaxed);
        if (chunk >= state->n_chunks) return;
        try {
          run(chunk);
        } catch (...) {
          state->errors[chunk] = std::current_exception();
        }
        if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            state->n_chunks) {
          const std::lock_guard<std::mutex> lock(state->mutex);
          state->cv.notify_all();
        }
      }
    };

    const std::size_t helpers =
        std::min(pool_->n_workers(), n_chunks - 1);
    for (std::size_t h = 0; h < helpers; ++h) {
      // The helper shares ownership of the invocation state: it may run
      // after the caller already returned (nothing left to claim).
      pool_->submit([inv, drain] { drain(inv); });
    }
    drain(inv);
    {
      std::unique_lock<std::mutex> lock(inv->mutex);
      inv->cv.wait(lock, [&] {
        return inv->done.load(std::memory_order_acquire) == inv->n_chunks;
      });
    }
    for (const auto& e : inv->errors) {
      if (e) std::rethrow_exception(e);
    }
  }

  std::size_t threads_ = 1;
  std::uint64_t seed_ = 0x5EEDED5EEDED5EEDULL;
  std::shared_ptr<ThreadPool> pool_;
};

}  // namespace nevermind::exec
