// Table-3 feature encoding: turns the sparse weekly line-measurement
// time series plus customer context into the fixed-length vectors the
// ticket predictor and trouble locator learn from.
//
// Feature families (paper Section 4.2):
//   basic        l_i^K               current Saturday's 25 metrics
//   delta        l_i^K - l_i^{K-1}   change vs the previous week
//   time-series  (l_i^K - mean)/sd   deviation vs the long-term history
//   profile      l_i^K / profile     rates normalized by the subscribed tier
//   ticket       days since the line's most recent trouble ticket
//   modem        fraction of past tests with the modem off
//   quadratic    x^2 per base feature (models variance)
//   product      x_i * x_j for chosen pairs (models interactions the
//                stump-linear BStump cannot see on its own)
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "dslsim/simulator.hpp"
#include "ml/dataset.hpp"
#include "ml/feature_store.hpp"
#include "util/stats.hpp"

namespace nevermind::features {

struct EncoderConfig {
  bool include_basic = true;
  bool include_delta = true;
  bool include_timeseries = true;
  /// Profile, ticket-recency and modem features (the "customer
  /// features" of Table 3).
  bool include_customer = true;
  /// Derived features.
  bool include_quadratic = false;
  /// Product features x_i * x_j over *base* feature indices (into the
  /// base layout, i.e. the columns present before derived features).
  std::vector<std::pair<std::size_t, std::size_t>> product_pairs;
  /// Minimum history samples before time-series features are defined.
  int min_history_weeks = 4;
  /// Value used for "no previous ticket" in the ticket feature (days).
  float no_ticket_days = 400.0F;
};

/// Text round-trip of an EncoderConfig ("encoder v1 ..."), so a trained
/// model artefact can carry the exact feature layout (including the
/// chosen product pairs) it was trained with. Returns nullopt on a
/// wrong magic/version or a truncated record.
void save_encoder_config(std::ostream& os, const EncoderConfig& config);
[[nodiscard]] std::optional<EncoderConfig> load_encoder_config(
    std::istream& is);

/// Per-line accumulation state, advanced one Saturday test at a time in
/// week order. This is THE shared per-line window both scoring paths
/// build features from: encode_weeks walks it over a SimDataset, and
/// the serving layer's LineStateStore keeps one per line and folds
/// measurements in as they arrive. Welford updates are sequential, so
/// feeding the same measurements in the same week order reproduces the
/// offline state bit for bit.
struct LineWindow {
  std::array<util::RunningStats, dslsim::kNumLineMetrics> history;
  dslsim::MetricVector prev{};
  bool has_prev = false;
  std::uint32_t tests_seen = 0;
  std::uint32_t tests_off = 0;

  void update(const dslsim::MetricVector& current);
};

/// Fill one example's feature vector from the line's window state, the
/// current Saturday measurement and the customer context. `out` must be
/// sized to the full column count of `config`; `n_base` is
/// base_columns(config).size(). The single shared implementation behind
/// encode_weeks, encode_at_dispatch and the online scoring service —
/// served and batch scores agree byte for byte because there is only
/// one encoding.
void encode_window_row(const LineWindow& state,
                       const dslsim::MetricVector& current,
                       const dslsim::ServiceProfile& profile,
                       std::optional<util::Day> last_ticket, util::Day day,
                       const EncoderConfig& config, std::size_t n_base,
                       std::span<float> out);

/// Encoded examples for a span of weeks: one row per (line, week) with
/// the row->line/week mapping kept alongside the ml::FeatureArena.
struct EncodedBlock {
  ml::FeatureArena dataset;
  std::vector<dslsim::LineId> line_of_row;
  std::vector<int> week_of_row;
};

/// Number and names of base (non-derived) columns under `config`.
[[nodiscard]] std::vector<ml::ColumnInfo> base_columns(
    const EncoderConfig& config);

/// Full column layout including quadratic/product derived features.
[[nodiscard]] std::vector<ml::ColumnInfo> all_columns(
    const EncoderConfig& config);

/// Labeling for the ticket predictor: Tkt(u, t, T) = 1 iff a customer-
/// edge ticket arrives within `horizon_days` after the measurement day.
struct TicketLabeler {
  int horizon_days = 28;

  [[nodiscard]] bool operator()(const dslsim::SimDataset& data,
                                dslsim::LineId line, util::Day day) const;
};

/// Encode all lines for the weeks [emit_from, emit_to] (inclusive test-
/// week indices). History state (time-series means, modem-off rates) is
/// accumulated from week 0, exactly as an online deployment would have
/// seen it.
[[nodiscard]] EncodedBlock encode_weeks(const dslsim::SimDataset& data,
                                        int emit_from, int emit_to,
                                        const EncoderConfig& config,
                                        const TicketLabeler& labeler);

/// Exact number of rows encode_weeks would emit for this week span —
/// the streaming writer needs the row count before the first append.
[[nodiscard]] std::size_t count_week_rows(const dslsim::SimDataset& data,
                                          int emit_from, int emit_to);

/// Streaming encode: walks the same per-line windows as encode_weeks
/// but appends each row straight into `writer` (declared with
/// all_columns(config) and count_week_rows(...) rows) instead of
/// materializing a FeatureArena — peak memory is one row plus the
/// writer's bounded chunk. The row->line/week mapping is recorded as
/// aux arrays "line" and "week". The caller still owns set_meta() and
/// finish().
void encode_weeks_to_store(const dslsim::SimDataset& data, int emit_from,
                           int emit_to, const EncoderConfig& config,
                           const TicketLabeler& labeler,
                           ml::ArenaStreamWriter& writer);

/// Streaming form of the week walker: feed each week's measurements in
/// ascending order (starting at week 0) and rows for weeks in
/// [emit_from, emit_to] are emitted through the sink as the week
/// arrives. `data` may be a tables-only dataset from
/// Simulator::build_tables — only tickets, plants and the topology are
/// read from it; measurements come exclusively through on_week. This is
/// the ONE walker: encode_weeks / encode_weeks_to_store drive it over a
/// materialized dataset, the streaming pipeline drives it from
/// Simulator::stream_weeks chunks, so the two paths cannot drift.
/// Resident state is one LineWindow per line plus one row buffer —
/// independent of the number of weeks streamed.
class WeekEncoder {
 public:
  using RowSink = std::function<void(std::span<const float> row, bool label,
                                     dslsim::LineId line, int week)>;

  WeekEncoder(const dslsim::SimDataset& data, int emit_from, int emit_to,
              const EncoderConfig& config, const TicketLabeler& labeler,
              RowSink sink);

  /// Consume week `week`'s measurements (one MetricVector per line);
  /// `week` must equal next_week(). Weeks past emit_to() still advance
  /// the per-line windows (a later consumer — serving replay, a test
  /// tap — may need the post-training state) but emit nothing.
  void on_week(int week, std::span<const dslsim::MetricVector> measurements);

  [[nodiscard]] int next_week() const noexcept { return next_week_; }
  [[nodiscard]] int emit_from() const noexcept { return emit_from_; }
  [[nodiscard]] int emit_to() const noexcept { return emit_to_; }
  [[nodiscard]] std::size_t rows_emitted() const noexcept { return rows_; }

 private:
  const dslsim::SimDataset& data_;
  EncoderConfig config_;
  TicketLabeler labeler_;
  RowSink sink_;
  int emit_from_;
  int emit_to_;
  int next_week_ = 0;
  std::size_t n_base_;
  std::vector<LineWindow> states_;
  std::vector<float> row_;
  std::size_t rows_ = 0;
};

/// Encode feature rows at dispatch time for the trouble locator: one
/// row per disposition note whose dispatch lies in test weeks
/// [week_from, week_to], using the most recent measurement at or before
/// the dispatch. Labels are all zero; the locator relabels per class.
struct LocatorBlock {
  ml::FeatureArena dataset;
  std::vector<std::uint32_t> note_of_row;  // index into data.notes()
  /// Optional pre-computed histogram-path quantization of `dataset`
  /// (from a v2 nmarena artefact). Training consumes it instead of
  /// re-binning when its shape and max_bins match the requested
  /// configuration; null means bin on demand.
  std::shared_ptr<const ml::BinnedColumns> bins;
};

[[nodiscard]] LocatorBlock encode_at_dispatch(const dslsim::SimDataset& data,
                                              int week_from, int week_to,
                                              const EncoderConfig& config);

/// Exact number of rows encode_at_dispatch would emit for this span.
[[nodiscard]] std::size_t count_dispatch_rows(const dslsim::SimDataset& data,
                                              int week_from, int week_to);

/// Streaming counterpart of encode_at_dispatch: appends each dispatch
/// row into `writer` and records the row->note mapping as aux array
/// "note". The caller still owns set_meta() and finish().
void encode_dispatch_to_store(const dslsim::SimDataset& data, int week_from,
                              int week_to, const EncoderConfig& config,
                              ml::ArenaStreamWriter& writer);

/// Streaming form of the dispatch walker (trouble-locator rows): feed
/// weeks in ascending order from week 0; each week's dispatch rows are
/// emitted BEFORE that week's measurements fold into the per-line
/// windows (the dispatch sees the same Saturday record the predictor
/// saw). Notes are grouped from the tables up front, so `data` may be
/// tables-only. Like WeekEncoder, this is the one walker behind
/// encode_at_dispatch / encode_dispatch_to_store and the streamed path.
class DispatchEncoder {
 public:
  using RowSink =
      std::function<void(std::span<const float> row, std::uint32_t note_idx)>;

  DispatchEncoder(const dslsim::SimDataset& data, int week_from, int week_to,
                  const EncoderConfig& config, RowSink sink);

  void on_week(int week, std::span<const dslsim::MetricVector> measurements);

  [[nodiscard]] int next_week() const noexcept { return next_week_; }
  [[nodiscard]] int week_to() const noexcept { return week_to_; }
  [[nodiscard]] std::size_t rows_emitted() const noexcept { return rows_; }

 private:
  const dslsim::SimDataset& data_;
  EncoderConfig config_;
  RowSink sink_;
  int week_to_;
  int next_week_ = 0;
  std::size_t n_base_;
  std::vector<std::vector<std::uint32_t>> notes_by_week_;
  std::vector<LineWindow> states_;
  std::vector<float> row_;
  std::size_t rows_ = 0;
};

}  // namespace nevermind::features
