// Table-3 feature encoding: turns the sparse weekly line-measurement
// time series plus customer context into the fixed-length vectors the
// ticket predictor and trouble locator learn from.
//
// Feature families (paper Section 4.2):
//   basic        l_i^K               current Saturday's 25 metrics
//   delta        l_i^K - l_i^{K-1}   change vs the previous week
//   time-series  (l_i^K - mean)/sd   deviation vs the long-term history
//   profile      l_i^K / profile     rates normalized by the subscribed tier
//   ticket       days since the line's most recent trouble ticket
//   modem        fraction of past tests with the modem off
//   quadratic    x^2 per base feature (models variance)
//   product      x_i * x_j for chosen pairs (models interactions the
//                stump-linear BStump cannot see on its own)
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "dslsim/simulator.hpp"
#include "ml/dataset.hpp"

namespace nevermind::features {

struct EncoderConfig {
  bool include_basic = true;
  bool include_delta = true;
  bool include_timeseries = true;
  /// Profile, ticket-recency and modem features (the "customer
  /// features" of Table 3).
  bool include_customer = true;
  /// Derived features.
  bool include_quadratic = false;
  /// Product features x_i * x_j over *base* feature indices (into the
  /// base layout, i.e. the columns present before derived features).
  std::vector<std::pair<std::size_t, std::size_t>> product_pairs;
  /// Minimum history samples before time-series features are defined.
  int min_history_weeks = 4;
  /// Value used for "no previous ticket" in the ticket feature (days).
  float no_ticket_days = 400.0F;
};

/// Encoded examples for a span of weeks: one row per (line, week) with
/// the row->line/week mapping kept alongside the ml::Dataset.
struct EncodedBlock {
  ml::Dataset dataset;
  std::vector<dslsim::LineId> line_of_row;
  std::vector<int> week_of_row;
};

/// Number and names of base (non-derived) columns under `config`.
[[nodiscard]] std::vector<ml::ColumnInfo> base_columns(
    const EncoderConfig& config);

/// Full column layout including quadratic/product derived features.
[[nodiscard]] std::vector<ml::ColumnInfo> all_columns(
    const EncoderConfig& config);

/// Labeling for the ticket predictor: Tkt(u, t, T) = 1 iff a customer-
/// edge ticket arrives within `horizon_days` after the measurement day.
struct TicketLabeler {
  int horizon_days = 28;

  [[nodiscard]] bool operator()(const dslsim::SimDataset& data,
                                dslsim::LineId line, util::Day day) const;
};

/// Encode all lines for the weeks [emit_from, emit_to] (inclusive test-
/// week indices). History state (time-series means, modem-off rates) is
/// accumulated from week 0, exactly as an online deployment would have
/// seen it.
[[nodiscard]] EncodedBlock encode_weeks(const dslsim::SimDataset& data,
                                        int emit_from, int emit_to,
                                        const EncoderConfig& config,
                                        const TicketLabeler& labeler);

/// Encode feature rows at dispatch time for the trouble locator: one
/// row per disposition note whose dispatch lies in test weeks
/// [week_from, week_to], using the most recent measurement at or before
/// the dispatch. Labels are all zero; the locator relabels per class.
struct LocatorBlock {
  ml::Dataset dataset;
  std::vector<std::uint32_t> note_of_row;  // index into data.notes()
};

[[nodiscard]] LocatorBlock encode_at_dispatch(const dslsim::SimDataset& data,
                                              int week_from, int week_to,
                                              const EncoderConfig& config);

}  // namespace nevermind::features
