// Bounded rolling window over streamed week chunks: keeps the most
// recent `window_weeks` weeks of per-line measurements resident and
// evicts the rest, so a streaming consumer's memory is
// O(window_weeks × n_lines) — independent of how many weeks flow
// through. This is the residency bound behind the 1M-line pipeline:
// the encoder reads the current week (and any recent-history taps)
// through the buffer instead of a materialized SimDataset.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "dslsim/simulator.hpp"

namespace nevermind::features {

class WeekWindowBuffer {
 public:
  /// `window_weeks` >= 1 slots of `n_lines` measurements each.
  WeekWindowBuffer(std::uint32_t n_lines, int window_weeks)
      : n_lines_(n_lines),
        window_(window_weeks) {
    if (window_weeks < 1) {
      throw std::invalid_argument("WeekWindowBuffer: window_weeks must be >= 1");
    }
    ring_.resize(static_cast<std::size_t>(window_));
  }

  /// Copy week `chunk.week`'s measurements into the ring, evicting the
  /// slot `window_weeks` back. Weeks must arrive in ascending order
  /// with no gaps (the streaming producer's contract).
  void push(const dslsim::WeekChunk& chunk) { push(chunk.week, chunk.measurements); }

  void push(int week, std::span<const dslsim::MetricVector> measurements) {
    if (week != newest_ + 1) {
      throw std::logic_error("WeekWindowBuffer: expected week " +
                             std::to_string(newest_ + 1) + ", got " +
                             std::to_string(week));
    }
    if (measurements.size() != n_lines_) {
      throw std::invalid_argument("WeekWindowBuffer: chunk has " +
                                  std::to_string(measurements.size()) +
                                  " lines, buffer expects " +
                                  std::to_string(n_lines_));
    }
    auto& slot = ring_[slot_of(week)];
    slot.assign(measurements.begin(), measurements.end());
    newest_ = week;
  }

  [[nodiscard]] bool contains(int week) const noexcept {
    return week >= oldest_week() && week <= newest_;
  }

  /// The resident week's measurements; throws if it was never pushed or
  /// has already been evicted.
  [[nodiscard]] std::span<const dslsim::MetricVector> week(int week) const {
    if (!contains(week)) {
      throw std::out_of_range("WeekWindowBuffer: week " +
                              std::to_string(week) +
                              " is not resident (window [" +
                              std::to_string(oldest_week()) + ", " +
                              std::to_string(newest_) + "])");
    }
    const auto& slot = ring_[slot_of(week)];
    return {slot.data(), slot.size()};
  }

  [[nodiscard]] const dslsim::MetricVector& measurement(
      int at_week, dslsim::LineId line) const {
    return week(at_week)[line];
  }

  /// Oldest week still resident (-1 before the first push).
  [[nodiscard]] int oldest_week() const noexcept {
    if (newest_ < 0) return -1;
    return std::max(0, newest_ - window_ + 1);
  }
  [[nodiscard]] int newest_week() const noexcept { return newest_; }
  [[nodiscard]] int window_weeks() const noexcept { return window_; }
  [[nodiscard]] std::uint32_t n_lines() const noexcept { return n_lines_; }

  /// Bytes held by the resident measurement slots — what "bounded by
  /// the rolling window" means for bench_scale.
  [[nodiscard]] std::size_t resident_bytes() const noexcept {
    std::size_t total = 0;
    for (const auto& slot : ring_) {
      total += slot.capacity() * sizeof(dslsim::MetricVector);
    }
    return total;
  }

 private:
  [[nodiscard]] std::size_t slot_of(int week) const noexcept {
    return static_cast<std::size_t>(week % window_);
  }

  std::uint32_t n_lines_;
  int window_;
  int newest_ = -1;
  std::vector<dslsim::WeeklyMeasurements> ring_;
};

}  // namespace nevermind::features
