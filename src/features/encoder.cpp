#include "features/encoder.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <string>

#include "dslsim/profile.hpp"
#include "util/stats.hpp"

namespace nevermind::features {

namespace {

using dslsim::LineMetric;
using dslsim::MetricVector;
using dslsim::kNumLineMetrics;

void append_metric_columns(std::vector<ml::ColumnInfo>& cols,
                           const char* prefix, bool keep_categorical) {
  for (std::size_t i = 0; i < kNumLineMetrics; ++i) {
    ml::ColumnInfo info;
    info.name = std::string(prefix) + std::string(dslsim::metric_name(i));
    info.categorical = keep_categorical && dslsim::metric_is_categorical(i);
    cols.push_back(std::move(info));
  }
}

}  // namespace

std::vector<ml::ColumnInfo> base_columns(const EncoderConfig& config) {
  std::vector<ml::ColumnInfo> cols;
  if (config.include_basic) append_metric_columns(cols, "b.", true);
  if (config.include_delta) append_metric_columns(cols, "d.", false);
  if (config.include_timeseries) append_metric_columns(cols, "ts.", false);
  if (config.include_customer) {
    cols.push_back({"prof.dnbr", false});
    cols.push_back({"prof.upbr", false});
    cols.push_back({"prof.dnmaxattain", false});
    cols.push_back({"prof.upmaxattain", false});
    cols.push_back({"cust.ticket_days", false});
    cols.push_back({"cust.modem_off_frac", false});
  }
  return cols;
}

std::vector<ml::ColumnInfo> all_columns(const EncoderConfig& config) {
  std::vector<ml::ColumnInfo> cols = base_columns(config);
  const std::size_t n_base = cols.size();
  if (config.include_quadratic) {
    for (std::size_t i = 0; i < n_base; ++i) {
      cols.push_back({"q." + cols[i].name, false});
    }
  }
  for (const auto& [a, b] : config.product_pairs) {
    if (a < n_base && b < n_base) {
      cols.push_back({"p." + cols[a].name + "*" + cols[b].name, false});
    }
  }
  return cols;
}

bool TicketLabeler::operator()(const dslsim::SimDataset& data,
                               dslsim::LineId line, util::Day day) const {
  const auto next = data.next_edge_ticket_after(line, day);
  return next.has_value() && *next <= day + horizon_days;
}

void save_encoder_config(std::ostream& os, const EncoderConfig& config) {
  os.precision(std::numeric_limits<float>::max_digits10);
  os << "encoder v1 " << (config.include_basic ? 1 : 0) << ' '
     << (config.include_delta ? 1 : 0) << ' '
     << (config.include_timeseries ? 1 : 0) << ' '
     << (config.include_customer ? 1 : 0) << ' '
     << (config.include_quadratic ? 1 : 0) << ' ' << config.min_history_weeks
     << ' ' << config.no_ticket_days << ' ' << config.product_pairs.size()
     << '\n';
  for (const auto& [a, b] : config.product_pairs) {
    os << a << ' ' << b << '\n';
  }
}

std::optional<EncoderConfig> load_encoder_config(std::istream& is) {
  std::string magic;
  std::string version;
  int basic = 0;
  int delta = 0;
  int timeseries = 0;
  int customer = 0;
  int quadratic = 0;
  std::size_t n_pairs = 0;
  EncoderConfig config;
  if (!(is >> magic >> version >> basic >> delta >> timeseries >> customer >>
        quadratic >> config.min_history_weeks >> config.no_ticket_days >>
        n_pairs) ||
      magic != "encoder" || version != "v1") {
    return std::nullopt;
  }
  config.include_basic = basic != 0;
  config.include_delta = delta != 0;
  config.include_timeseries = timeseries != 0;
  config.include_customer = customer != 0;
  config.include_quadratic = quadratic != 0;
  config.product_pairs.reserve(n_pairs);
  for (std::size_t i = 0; i < n_pairs; ++i) {
    std::size_t a = 0;
    std::size_t b = 0;
    if (!(is >> a >> b)) return std::nullopt;
    config.product_pairs.emplace_back(a, b);
  }
  return config;
}

void LineWindow::update(const MetricVector& current) {
  ++tests_seen;
  if (!dslsim::record_present(current)) {
    ++tests_off;
    has_prev = false;  // a gap breaks the week-over-week delta
    return;
  }
  for (std::size_t i = 0; i < kNumLineMetrics; ++i) {
    if (!ml::is_missing(current[i])) history[i].add(current[i]);
  }
  prev = current;
  has_prev = true;
}

void encode_window_row(const LineWindow& state, const MetricVector& current,
                       const dslsim::ServiceProfile& profile,
                       std::optional<util::Day> last_ticket, util::Day day,
                       const EncoderConfig& config, std::size_t n_base,
                       std::span<float> out) {
  std::size_t k = 0;
  const bool present = dslsim::record_present(current);

  if (config.include_basic) {
    for (std::size_t i = 0; i < kNumLineMetrics; ++i) out[k++] = current[i];
  }
  if (config.include_delta) {
    for (std::size_t i = 0; i < kNumLineMetrics; ++i) {
      const bool ok = present && state.has_prev && !ml::is_missing(current[i]) &&
                      !ml::is_missing(state.prev[i]);
      out[k++] = ok ? current[i] - state.prev[i] : ml::kMissing;
    }
  }
  if (config.include_timeseries) {
    for (std::size_t i = 0; i < kNumLineMetrics; ++i) {
      const auto& h = state.history[i];
      if (present && !ml::is_missing(current[i]) &&
          h.count() >= static_cast<std::size_t>(config.min_history_weeks)) {
        const double sd = h.stddev();
        out[k++] = static_cast<float>(
            (current[i] - h.mean()) / (sd > 1e-6 ? sd : 1.0));
      } else {
        out[k++] = ml::kMissing;
      }
    }
  }
  if (config.include_customer) {
    const auto ratio = [&](LineMetric m, double expected) -> float {
      const float v = current[dslsim::metric_index(m)];
      if (!present || ml::is_missing(v) || expected <= 0.0) return ml::kMissing;
      return static_cast<float>(v / expected);
    };
    out[k++] = ratio(LineMetric::kDnBitRate, profile.down_kbps);
    out[k++] = ratio(LineMetric::kUpBitRate, profile.up_kbps);
    out[k++] = ratio(LineMetric::kDnMaxAttainBr, profile.down_kbps);
    out[k++] = ratio(LineMetric::kUpMaxAttainBr, profile.up_kbps);

    out[k++] = last_ticket.has_value() ? static_cast<float>(day - *last_ticket)
                                       : config.no_ticket_days;
    out[k++] = state.tests_seen > 0
                   ? static_cast<float>(state.tests_off) /
                         static_cast<float>(state.tests_seen)
                   : 0.0F;
  }

  // Derived features over the base block.
  if (config.include_quadratic) {
    for (std::size_t i = 0; i < n_base; ++i) {
      out[k++] = ml::is_missing(out[i]) ? ml::kMissing : out[i] * out[i];
    }
  }
  for (const auto& [a, b] : config.product_pairs) {
    if (a < n_base && b < n_base) {
      out[k++] = (ml::is_missing(out[a]) || ml::is_missing(out[b]))
                     ? ml::kMissing
                     : out[a] * out[b];
    }
  }
}

WeekEncoder::WeekEncoder(const dslsim::SimDataset& data, int emit_from,
                         int emit_to, const EncoderConfig& config,
                         const TicketLabeler& labeler, RowSink sink)
    : data_(data),
      config_(config),
      labeler_(labeler),
      sink_(std::move(sink)),
      emit_from_(std::max(emit_from, 0)),
      emit_to_(std::min(emit_to, data.n_weeks() - 1)),
      n_base_(base_columns(config).size()),
      states_(data.n_lines()),
      row_(all_columns(config).size()) {}

void WeekEncoder::on_week(int week,
                          std::span<const dslsim::MetricVector> measurements) {
  if (week != next_week_) {
    throw std::logic_error("WeekEncoder: expected week " +
                           std::to_string(next_week_) + ", got " +
                           std::to_string(week));
  }
  if (measurements.size() != states_.size()) {
    throw std::invalid_argument("WeekEncoder: chunk has " +
                                std::to_string(measurements.size()) +
                                " lines, dataset has " +
                                std::to_string(states_.size()));
  }
  const util::Day day = util::saturday_of_week(week);
  const bool emitting = week >= emit_from_ && week <= emit_to_;
  const auto n_lines = static_cast<dslsim::LineId>(states_.size());
  for (dslsim::LineId u = 0; u < n_lines; ++u) {
    const MetricVector& current = measurements[u];
    if (emitting) {
      encode_window_row(states_[u], current,
                        dslsim::profile(data_.plant(u).profile),
                        data_.last_edge_ticket_at_or_before(u, day), day,
                        config_, n_base_, row_);
      sink_(std::span<const float>(row_), labeler_(data_, u, day), u, week);
      ++rows_;
    }
    states_[u].update(current);
  }
  ++next_week_;
}

namespace {

/// Shared week walker behind encode_weeks and encode_weeks_to_store:
/// drives the streaming WeekEncoder over a materialized dataset's
/// weeks. One walker means the arena, store and streamed paths cannot
/// drift.
template <typename Emit>
void walk_week_rows(const dslsim::SimDataset& data, int emit_from, int emit_to,
                    const EncoderConfig& config, const TicketLabeler& labeler,
                    Emit&& emit) {
  WeekEncoder encoder(data, emit_from, emit_to, config, labeler,
                      [&emit](std::span<const float> row, bool label,
                              dslsim::LineId u, int w) { emit(row, label, u, w); });
  for (int w = 0; w <= encoder.emit_to(); ++w) {
    encoder.on_week(w, data.week_measurements(w));
  }
}

}  // namespace

std::size_t count_week_rows(const dslsim::SimDataset& data, int emit_from,
                            int emit_to) {
  emit_from = std::max(emit_from, 0);
  emit_to = std::min(emit_to, data.n_weeks() - 1);
  if (emit_to < emit_from) return 0;
  return data.n_lines() * static_cast<std::size_t>(emit_to - emit_from + 1);
}

EncodedBlock encode_weeks(const dslsim::SimDataset& data, int emit_from,
                          int emit_to, const EncoderConfig& config,
                          const TicketLabeler& labeler) {
  const std::size_t n_rows = count_week_rows(data, emit_from, emit_to);
  EncodedBlock block{ml::FeatureArena(all_columns(config), n_rows), {}, {}};
  block.line_of_row.reserve(n_rows);
  block.week_of_row.reserve(n_rows);
  walk_week_rows(data, emit_from, emit_to, config, labeler,
                 [&](std::span<const float> row, bool label, dslsim::LineId u,
                     int w) {
                   block.dataset.add_row(row, label);
                   block.line_of_row.push_back(u);
                   block.week_of_row.push_back(w);
                 });
  return block;
}

void encode_weeks_to_store(const dslsim::SimDataset& data, int emit_from,
                           int emit_to, const EncoderConfig& config,
                           const TicketLabeler& labeler,
                           ml::ArenaStreamWriter& writer) {
  const std::size_t n_rows = count_week_rows(data, emit_from, emit_to);
  std::vector<std::uint32_t> line_of_row;
  std::vector<std::uint32_t> week_of_row;
  line_of_row.reserve(n_rows);
  week_of_row.reserve(n_rows);
  walk_week_rows(data, emit_from, emit_to, config, labeler,
                 [&](std::span<const float> row, bool label, dslsim::LineId u,
                     int w) {
                   writer.append(row, label);
                   line_of_row.push_back(static_cast<std::uint32_t>(u));
                   week_of_row.push_back(static_cast<std::uint32_t>(w));
                 });
  writer.add_aux("line", line_of_row);
  writer.add_aux("week", week_of_row);
}

namespace {

/// Notes grouped by the test week of the most recent measurement at or
/// before the dispatch day, restricted to [week_from, week_to] after
/// clamping. Shared by the count, arena and streaming dispatch paths.
std::vector<std::vector<std::uint32_t>> group_notes_by_week(
    const dslsim::SimDataset& data, int week_from, int week_to) {
  week_from = std::max(week_from, 0);
  week_to = std::min(week_to, data.n_weeks() - 1);
  const auto& notes = data.notes();
  std::vector<std::vector<std::uint32_t>> notes_by_week(
      static_cast<std::size_t>(data.n_weeks()));
  for (std::uint32_t i = 0; i < notes.size(); ++i) {
    int w = util::test_week_of(notes[i].dispatch_day);
    w = std::min(w, data.n_weeks() - 1);
    if (w < week_from || w > week_to) continue;
    notes_by_week[static_cast<std::size_t>(w)].push_back(i);
  }
  return notes_by_week;
}

}  // namespace

DispatchEncoder::DispatchEncoder(const dslsim::SimDataset& data, int week_from,
                                 int week_to, const EncoderConfig& config,
                                 RowSink sink)
    : data_(data),
      config_(config),
      sink_(std::move(sink)),
      week_to_(std::min(week_to, data.n_weeks() - 1)),
      n_base_(base_columns(config).size()),
      notes_by_week_(group_notes_by_week(data, week_from, week_to)),
      states_(data.n_lines()),
      row_(all_columns(config).size()) {}

void DispatchEncoder::on_week(
    int week, std::span<const dslsim::MetricVector> measurements) {
  if (week != next_week_) {
    throw std::logic_error("DispatchEncoder: expected week " +
                           std::to_string(next_week_) + ", got " +
                           std::to_string(week));
  }
  if (measurements.size() != states_.size()) {
    throw std::invalid_argument("DispatchEncoder: chunk has " +
                                std::to_string(measurements.size()) +
                                " lines, dataset has " +
                                std::to_string(states_.size()));
  }
  const util::Day day = util::saturday_of_week(week);
  const auto& notes = data_.notes();
  if (week <= week_to_) {
    for (std::uint32_t note_idx :
         notes_by_week_[static_cast<std::size_t>(week)]) {
      const dslsim::LineId u = notes[note_idx].line;
      encode_window_row(states_[u], measurements[u],
                        dslsim::profile(data_.plant(u).profile),
                        data_.last_edge_ticket_at_or_before(u, day), day,
                        config_, n_base_, row_);
      sink_(std::span<const float>(row_), note_idx);
      ++rows_;
    }
  }
  const auto n_lines = static_cast<dslsim::LineId>(states_.size());
  for (dslsim::LineId u = 0; u < n_lines; ++u) {
    states_[u].update(measurements[u]);
  }
  ++next_week_;
}

namespace {

/// Shared dispatch walker behind encode_at_dispatch and
/// encode_dispatch_to_store: drives the streaming DispatchEncoder over
/// a materialized dataset's weeks.
template <typename Emit>
void walk_dispatch_rows(const dslsim::SimDataset& data, int week_from,
                        int week_to, const EncoderConfig& config,
                        Emit&& emit) {
  DispatchEncoder encoder(
      data, week_from, week_to, config,
      [&emit](std::span<const float> row, std::uint32_t note_idx) {
        emit(row, note_idx);
      });
  for (int w = 0; w <= encoder.week_to(); ++w) {
    encoder.on_week(w, data.week_measurements(w));
  }
}

}  // namespace

std::size_t count_dispatch_rows(const dslsim::SimDataset& data, int week_from,
                                int week_to) {
  std::size_t n = 0;
  for (const auto& week_notes : group_notes_by_week(data, week_from, week_to)) {
    n += week_notes.size();
  }
  return n;
}

LocatorBlock encode_at_dispatch(const dslsim::SimDataset& data, int week_from,
                                int week_to, const EncoderConfig& config) {
  const std::size_t n_rows = count_dispatch_rows(data, week_from, week_to);
  LocatorBlock block{ml::FeatureArena(all_columns(config), n_rows), {}};
  block.note_of_row.reserve(n_rows);
  walk_dispatch_rows(data, week_from, week_to, config,
                     [&](std::span<const float> row, std::uint32_t note_idx) {
                       block.dataset.add_row(row, false);
                       block.note_of_row.push_back(note_idx);
                     });
  return block;
}

void encode_dispatch_to_store(const dslsim::SimDataset& data, int week_from,
                              int week_to, const EncoderConfig& config,
                              ml::ArenaStreamWriter& writer) {
  std::vector<std::uint32_t> note_of_row;
  note_of_row.reserve(count_dispatch_rows(data, week_from, week_to));
  walk_dispatch_rows(data, week_from, week_to, config,
                     [&](std::span<const float> row, std::uint32_t note_idx) {
                       writer.append(row, false);
                       note_of_row.push_back(note_idx);
                     });
  writer.add_aux("note", note_of_row);
}

}  // namespace nevermind::features
