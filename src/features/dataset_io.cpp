#include "features/dataset_io.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <utility>

#include "features/stream_buffer.hpp"

namespace nevermind::features {

namespace {

constexpr const char* kPredictorKind = "predictor";
constexpr const char* kLocatorKind = "locator";

bool is_binary_path(const std::string& path) {
  constexpr std::string_view kExt = ".nmarena";
  return path.size() >= kExt.size() &&
         path.compare(path.size() - kExt.size(), kExt.size(), kExt) == 0;
}

std::string make_meta(const char* kind, const EncoderConfig& config) {
  std::ostringstream os;
  os << "nmdataset " << kind << '\n';
  save_encoder_config(os, config);
  return os.str();
}

/// Parse the meta blob; nullopt unless it names `kind` and carries a
/// valid encoder record.
std::optional<EncoderConfig> parse_meta(const std::string& meta,
                                        const char* kind) {
  std::istringstream is(meta);
  std::string magic;
  std::string got_kind;
  if (!(is >> magic >> got_kind) || magic != "nmdataset" || got_kind != kind) {
    return std::nullopt;
  }
  return load_encoder_config(is);
}

void set_status(ml::StoreStatus* status, ml::StoreError code,
                std::string message) {
  if (status != nullptr) {
    status->code = code;
    status->message = std::move(message);
  }
}

/// The aux array named `name`, or nullptr if the artefact lacks it.
const std::vector<std::uint32_t>* find_aux(const ml::StoredArena& stored,
                                           std::string_view name) {
  for (std::size_t a = 0; a < stored.aux_names.size(); ++a) {
    if (stored.aux_names[a] == name) return &stored.aux[a];
  }
  return nullptr;
}

}  // namespace

std::optional<std::string> dataset_kind(const std::string& meta) {
  std::istringstream is(meta);
  std::string magic;
  std::string kind;
  if (!(is >> magic >> kind) || magic != "nmdataset") return std::nullopt;
  return kind;
}

ml::StoreStatus save_predictor_dataset(const std::string& path,
                                       const dslsim::SimDataset& data,
                                       int emit_from, int emit_to,
                                       const EncoderConfig& config,
                                       const TicketLabeler& labeler) {
  if (is_binary_path(path)) {
    ml::ArenaStreamWriter writer(path, all_columns(config),
                                 count_week_rows(data, emit_from, emit_to));
    encode_weeks_to_store(data, emit_from, emit_to, config, labeler, writer);
    writer.set_meta(make_meta(kPredictorKind, config));
    return writer.finish();
  }
  const EncodedBlock block =
      encode_weeks(data, emit_from, emit_to, config, labeler);
  const std::vector<std::string> aux_names = {"line", "week"};
  std::vector<std::vector<std::uint32_t>> aux(2);
  aux[0].assign(block.line_of_row.begin(), block.line_of_row.end());
  aux[1].reserve(block.week_of_row.size());
  for (const int w : block.week_of_row) {
    aux[1].push_back(static_cast<std::uint32_t>(w));
  }
  std::ofstream os(path);
  if (!os) {
    return {ml::StoreError::kIoError, "cannot open " + path + " for writing"};
  }
  ml::save_arena_text(os, block.dataset, aux_names, aux,
                      make_meta(kPredictorKind, config));
  os.flush();
  if (!os) return {ml::StoreError::kIoError, "write failed for " + path};
  return {};
}

ml::StoreStatus save_locator_dataset(const std::string& path,
                                     const dslsim::SimDataset& data,
                                     int week_from, int week_to,
                                     const EncoderConfig& config,
                                     bool with_bins,
                                     const ml::BinningConfig& binning) {
  if (is_binary_path(path)) {
    if (with_bins) {
      // Quantization needs the whole matrix, which the streaming writer
      // never materializes — encode in memory and bulk-save (locator
      // matrices are dispatch-sized, not line-week-sized).
      const LocatorBlock block =
          encode_at_dispatch(data, week_from, week_to, config);
      const ml::BinnedColumns bins(block.dataset, binning);
      const std::vector<std::string> aux_names = {"note"};
      const std::vector<std::vector<std::uint32_t>> aux = {block.note_of_row};
      return ml::save_arena(path, block.dataset, aux_names, aux,
                            make_meta(kLocatorKind, config), &bins);
    }
    ml::ArenaStreamWriter writer(path, all_columns(config),
                                 count_dispatch_rows(data, week_from, week_to));
    encode_dispatch_to_store(data, week_from, week_to, config, writer);
    writer.set_meta(make_meta(kLocatorKind, config));
    return writer.finish();
  }
  const LocatorBlock block = encode_at_dispatch(data, week_from, week_to,
                                                config);
  const std::vector<std::string> aux_names = {"note"};
  std::vector<std::vector<std::uint32_t>> aux = {block.note_of_row};
  std::ofstream os(path);
  if (!os) {
    return {ml::StoreError::kIoError, "cannot open " + path + " for writing"};
  }
  ml::save_arena_text(os, block.dataset, aux_names, aux,
                      make_meta(kLocatorKind, config));
  os.flush();
  if (!os) return {ml::StoreError::kIoError, "write failed for " + path};
  return {};
}

std::optional<PredictorDataset> load_predictor_dataset(const std::string& path,
                                                       ml::ArenaLoadMode mode,
                                                       ml::StoreStatus* status) {
  auto stored = ml::load_arena_auto(path, {.mode = mode}, status);
  if (!stored.has_value()) return std::nullopt;
  auto config = parse_meta(stored->meta, kPredictorKind);
  if (!config.has_value()) {
    set_status(status, ml::StoreError::kMalformedMeta,
               path + " is not a predictor dataset artefact");
    return std::nullopt;
  }
  const auto* line = find_aux(*stored, "line");
  const auto* week = find_aux(*stored, "week");
  const std::size_t n_rows = stored->arena.n_rows();
  if (line == nullptr || week == nullptr || line->size() != n_rows ||
      week->size() != n_rows) {
    set_status(status, ml::StoreError::kMalformedMeta,
               path + " lacks the line/week row mappings");
    return std::nullopt;
  }
  if (stored->arena.n_cols() != all_columns(*config).size()) {
    set_status(status, ml::StoreError::kMalformedMeta,
               path + ": column count disagrees with the stored encoder");
    return std::nullopt;
  }
  PredictorDataset out;
  out.encoder = std::move(*config);
  out.block.line_of_row.assign(line->begin(), line->end());
  out.block.week_of_row.reserve(week->size());
  for (const std::uint32_t w : *week) {
    out.block.week_of_row.push_back(static_cast<int>(w));
  }
  out.block.dataset = std::move(stored->arena);
  return out;
}

ml::StoreStatus stream_save_predictor_dataset(
    const std::string& path, const dslsim::Simulator& sim,
    const dslsim::SimDataset& tables, const exec::ExecContext& exec,
    int emit_from, int emit_to, const EncoderConfig& config,
    const TicketLabeler& labeler, const StreamPipelineOptions& options) {
  if (!is_binary_path(path)) {
    return {ml::StoreError::kIoError,
            "streamed dataset save requires a .nmarena path: " + path};
  }
  const std::size_t n_rows = count_week_rows(tables, emit_from, emit_to);
  ml::ArenaStreamWriter writer(path, all_columns(config), n_rows);
  std::vector<std::uint32_t> line_of_row;
  std::vector<std::uint32_t> week_of_row;
  line_of_row.reserve(n_rows);
  week_of_row.reserve(n_rows);
  WeekEncoder encoder(tables, emit_from, emit_to, config, labeler,
                      [&](std::span<const float> row, bool label,
                          dslsim::LineId u, int w) {
                        writer.append(row, label);
                        line_of_row.push_back(static_cast<std::uint32_t>(u));
                        week_of_row.push_back(static_cast<std::uint32_t>(w));
                      });
  // The encoder reads each week through the rolling buffer — the
  // residency bound the 1M-line pipeline is built around — and the tap
  // sees the raw chunk afterwards.
  WeekWindowBuffer buffer(tables.n_lines(), options.window_weeks);
  const int through = std::max(encoder.emit_to(), options.stream_through);
  sim.stream_weeks(tables, exec,
                   [&](const dslsim::WeekChunk& chunk) {
                     buffer.push(chunk);
                     encoder.on_week(chunk.week, buffer.week(chunk.week));
                     if (options.tap) options.tap(chunk);
                   },
                   through);
  writer.add_aux("line", line_of_row);
  writer.add_aux("week", week_of_row);
  writer.set_meta(make_meta(kPredictorKind, config));
  return writer.finish();
}

ml::StoreStatus stream_save_locator_dataset(
    const std::string& path, const dslsim::Simulator& sim,
    const dslsim::SimDataset& tables, const exec::ExecContext& exec,
    int week_from, int week_to, const EncoderConfig& config,
    const StreamPipelineOptions& options) {
  if (!is_binary_path(path)) {
    return {ml::StoreError::kIoError,
            "streamed dataset save requires a .nmarena path: " + path};
  }
  const std::size_t n_rows = count_dispatch_rows(tables, week_from, week_to);
  ml::ArenaStreamWriter writer(path, all_columns(config), n_rows);
  std::vector<std::uint32_t> note_of_row;
  note_of_row.reserve(n_rows);
  DispatchEncoder encoder(tables, week_from, week_to, config,
                          [&](std::span<const float> row,
                              std::uint32_t note_idx) {
                            writer.append(row, false);
                            note_of_row.push_back(note_idx);
                          });
  WeekWindowBuffer buffer(tables.n_lines(), options.window_weeks);
  const int through = std::max(encoder.week_to(), options.stream_through);
  sim.stream_weeks(tables, exec,
                   [&](const dslsim::WeekChunk& chunk) {
                     buffer.push(chunk);
                     encoder.on_week(chunk.week, buffer.week(chunk.week));
                     if (options.tap) options.tap(chunk);
                   },
                   through);
  writer.add_aux("note", note_of_row);
  writer.set_meta(make_meta(kLocatorKind, config));
  return writer.finish();
}

std::optional<LocatorDataset> load_locator_dataset(const std::string& path,
                                                   ml::ArenaLoadMode mode,
                                                   ml::StoreStatus* status) {
  auto stored = ml::load_arena_auto(path, {.mode = mode}, status);
  if (!stored.has_value()) return std::nullopt;
  auto config = parse_meta(stored->meta, kLocatorKind);
  if (!config.has_value()) {
    set_status(status, ml::StoreError::kMalformedMeta,
               path + " is not a locator dataset artefact");
    return std::nullopt;
  }
  const auto* note = find_aux(*stored, "note");
  if (note == nullptr || note->size() != stored->arena.n_rows()) {
    set_status(status, ml::StoreError::kMalformedMeta,
               path + " lacks the note row mapping");
    return std::nullopt;
  }
  if (stored->arena.n_cols() != all_columns(*config).size()) {
    set_status(status, ml::StoreError::kMalformedMeta,
               path + ": column count disagrees with the stored encoder");
    return std::nullopt;
  }
  if (stored->bins != nullptr) {
    // The bins parser already validated shape against the header; also
    // require per-column kind agreement with the stored encoder layout
    // before handing them to training.
    for (std::size_t j = 0; j < stored->arena.n_cols(); ++j) {
      if (stored->bins->column(j).categorical !=
          stored->arena.column_info(j).categorical) {
        set_status(status, ml::StoreError::kMalformedBins,
                   path + ": bin-code section disagrees with column kinds");
        return std::nullopt;
      }
    }
  }
  LocatorDataset out;
  out.encoder = std::move(*config);
  out.block.note_of_row = *note;
  out.block.bins = stored->bins;
  out.block.dataset = std::move(stored->arena);
  return out;
}

}  // namespace nevermind::features
