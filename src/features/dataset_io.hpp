// Dataset artefact I/O for the two training matrices: persist an
// encoded block (features + labels + row mappings + the exact encoder
// configuration) and load it back for training without re-running the
// encoder.
//
// Format dispatch by path: "*.nmarena" saves the binary nmarena v1
// artefact through the streaming writer (the full matrix is never
// resident — encode_*_to_store appends chunk-wise); any other path
// saves the portable "nmdataset v1" text form. Loading sniffs the file
// magic, so either format loads through the same entry points; binary
// files honour the requested load mode (eager heap copy vs mmap'ed
// read-only arena), text always loads eagerly.
//
// The artefact's meta blob records the dataset kind ("predictor" or
// "locator") and the encoder configuration, so a loader can refuse a
// matrix encoded for the other model or under a different feature
// layout.
#pragma once

#include <optional>
#include <string>

#include "exec/exec.hpp"
#include "features/encoder.hpp"
#include "ml/feature_store.hpp"

namespace nevermind::features {

/// A persisted predictor training matrix: the encoded block plus the
/// encoder configuration it was produced with.
struct PredictorDataset {
  EncoderConfig encoder;
  EncodedBlock block;
};

/// A persisted locator training matrix.
struct LocatorDataset {
  EncoderConfig encoder;
  LocatorBlock block;
};

/// Encode weeks [emit_from, emit_to] and persist the matrix to `path`
/// (binary nmarena when the path ends in ".nmarena", text otherwise).
[[nodiscard]] ml::StoreStatus save_predictor_dataset(
    const std::string& path, const dslsim::SimDataset& data, int emit_from,
    int emit_to, const EncoderConfig& config, const TicketLabeler& labeler);

/// Encode dispatch rows for weeks [week_from, week_to] and persist.
/// `with_bins` (binary artefacts only — the text form never carries
/// bins) additionally quantizes the matrix and writes an nmarena v2
/// artefact whose bin-code section lets train_from_block skip
/// re-binning; this path encodes the matrix in memory instead of
/// streaming, which is fine at locator scale (dispatch rows only).
[[nodiscard]] ml::StoreStatus save_locator_dataset(
    const std::string& path, const dslsim::SimDataset& data, int week_from,
    int week_to, const EncoderConfig& config, bool with_bins = false,
    const ml::BinningConfig& binning = {});

/// Load a persisted predictor matrix. `mode` selects eager vs mmap for
/// binary artefacts (ignored for text). Returns nullopt with `status`
/// filled on IO/corruption errors or when the artefact is not a
/// predictor dataset.
[[nodiscard]] std::optional<PredictorDataset> load_predictor_dataset(
    const std::string& path, ml::ArenaLoadMode mode = ml::ArenaLoadMode::kEager,
    ml::StoreStatus* status = nullptr);

[[nodiscard]] std::optional<LocatorDataset> load_locator_dataset(
    const std::string& path, ml::ArenaLoadMode mode = ml::ArenaLoadMode::kEager,
    ml::StoreStatus* status = nullptr);

/// Kind recorded in a dataset artefact's meta blob ("predictor",
/// "locator"), or nullopt if the blob does not parse. Exposed for the
/// CLI `dataset` inspect subcommand.
[[nodiscard]] std::optional<std::string> dataset_kind(const std::string& meta);

/// Knobs for the streamed simulate→encode pipeline savers below.
struct StreamPipelineOptions {
  /// Rolling residency bound: the encoder reads each week through a
  /// WeekWindowBuffer holding at most this many weeks of measurements.
  int window_weeks = 8;
  /// Stream at least through this test week even when it lies past the
  /// last emitted week (a tap may need later weeks — e.g. the serving
  /// replay feeding the prediction week). -1 = stop at the last
  /// emitted/dispatch week.
  int stream_through = -1;
  /// Optional observer invoked with every week chunk after the encoder
  /// has consumed it: serving replay, CSV export, extra encoders,
  /// divergence hashing in tests and bench_scale. The chunk's span is
  /// only valid during the call.
  dslsim::WeekSink tap;
};

/// Stream-encode weeks [emit_from, emit_to] into a binary predictor
/// dataset at `path` (must end in ".nmarena") WITHOUT materialized
/// measurement tables: `tables` is a (possibly tables-only) dataset
/// from Simulator::build_tables or run, and the weekly measurements are
/// generated on the fly by sim.stream_weeks and consumed through a
/// bounded WeekWindowBuffer. The artefact is byte-identical to
/// save_predictor_dataset over a materialized run() at every thread
/// count. Peak residency: window_weeks chunks + one writer chunk + the
/// row mappings.
[[nodiscard]] ml::StoreStatus stream_save_predictor_dataset(
    const std::string& path, const dslsim::Simulator& sim,
    const dslsim::SimDataset& tables, const exec::ExecContext& exec,
    int emit_from, int emit_to, const EncoderConfig& config,
    const TicketLabeler& labeler, const StreamPipelineOptions& options = {});

/// Streamed counterpart of save_locator_dataset (always without bins —
/// quantization needs the whole matrix, which this path never holds).
/// Byte-identical to save_locator_dataset(..., with_bins=false).
[[nodiscard]] ml::StoreStatus stream_save_locator_dataset(
    const std::string& path, const dslsim::Simulator& sim,
    const dslsim::SimDataset& tables, const exec::ExecContext& exec,
    int week_from, int week_to, const EncoderConfig& config,
    const StreamPipelineOptions& options = {});

}  // namespace nevermind::features
