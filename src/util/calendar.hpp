// Simulation calendar for the study year 2009.
//
// The paper's datasets all live in calendar year 2009 and its splits are
// stated as dates ("train on 08/01/09–09/31/09, test 4 weeks from
// 10/31/09"). We model time as an integer day index with day 0 =
// 2009-01-01 (a Thursday) and provide the date arithmetic the simulator
// and the experiment harness need: day-of-week, the Saturday line-test
// schedule, week indexing, and month/day <-> index conversion.
#pragma once

#include <cstdint>
#include <string>

namespace nevermind::util {

/// Day index into the simulated year; 0 == 2009-01-01. Values past 364
/// are permitted (the 4-week test window from 10/31 ends in December,
/// and ticket horizons may extend slightly beyond).
using Day = std::int32_t;

enum class Weekday : std::uint8_t {
  kMonday = 0,
  kTuesday,
  kWednesday,
  kThursday,
  kFriday,
  kSaturday,
  kSunday,
};

inline constexpr int kDaysPerWeek = 7;
inline constexpr Day kFirstSaturday = 2;  // 2009-01-03

[[nodiscard]] Weekday weekday_of(Day day) noexcept;
[[nodiscard]] bool is_saturday(Day day) noexcept;

/// Index of the Saturday line test at or before `day` (0 for 01/03).
/// Days before the first Saturday map to week -1.
[[nodiscard]] int test_week_of(Day day) noexcept;

/// Day index of test week `w`'s Saturday.
[[nodiscard]] Day saturday_of_week(int week) noexcept;

/// Number of Saturday test weeks fully inside the simulated year.
[[nodiscard]] int test_weeks_in_year() noexcept;

/// Day index for a 2009 calendar date, month 1-12, day-of-month 1-31.
/// Out-of-range inputs are clamped to valid 2009 dates.
[[nodiscard]] Day day_from_date(int month, int day_of_month) noexcept;

/// "MM/DD/09" rendering; days beyond 2009 roll into "MM/DD/10".
[[nodiscard]] std::string format_date(Day day);

[[nodiscard]] const char* weekday_name(Weekday wd) noexcept;

}  // namespace nevermind::util
