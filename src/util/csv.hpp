// Minimal CSV writer/reader. The simulator can export its generated
// datasets (line measurements, tickets, disposition notes) so that the
// pipeline can also be studied outside C++ (e.g. plotting bench output).
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace nevermind::util {

/// Streaming CSV writer; quotes fields containing separators/quotes per
/// RFC 4180.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os);

  void write_row(const std::vector<std::string>& cells);

 private:
  std::ostream& os_;
};

/// Parse one CSV line (handles quoted fields with embedded commas and
/// doubled quotes). Exposed for tests.
[[nodiscard]] std::vector<std::string> parse_csv_line(std::string_view line);

/// Read an entire CSV stream into rows of cells.
[[nodiscard]] std::vector<std::vector<std::string>> read_csv(std::istream& is);

}  // namespace nevermind::util
