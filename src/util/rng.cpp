#include "util/rng.hpp"

#include <cmath>

namespace nevermind::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  // SplitMix64 expansion guarantees a non-degenerate state even for
  // seed == 0.
  for (auto& s : state_) s = splitmix64(seed);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Rng Rng::fork() noexcept { return Rng{next() ^ 0xD1B54A32D192ED03ULL}; }

Rng Rng::stream(std::uint64_t seed, std::uint64_t stream_index) noexcept {
  // Mix the stream index through SplitMix64 before combining so that
  // adjacent indices land in unrelated regions of the seed space.
  std::uint64_t s = stream_index + 0x9E3779B97F4A7C15ULL;
  s = (s ^ (s >> 30)) * 0xBF58476D1CE4E5B9ULL;
  s = (s ^ (s >> 27)) * 0x94D049BB133111EBULL;
  s ^= s >> 31;
  return Rng{seed ^ s ^ 0xA0761D6478BD642FULL};
}

double Rng::uniform() noexcept {
  // 53-bit mantissa: uniform double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  if (n == 0) return 0;
  // Lemire's nearly-divisionless bounded sampling with rejection.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  if (hi <= lo) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 is kept away from 0 so log() is finite.
  double u1 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double rate) noexcept {
  double u = uniform();
  if (u < 1e-300) u = 1e-300;
  return -std::log(u) / rate;
}

std::uint64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's product-of-uniforms method.
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation for large means; adequate for our workloads.
  const double x = normal(mean, std::sqrt(mean));
  return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
}

std::uint64_t Rng::geometric(double p) noexcept {
  if (p >= 1.0) return 0;
  if (p <= 0.0) return ~0ULL;
  double u = uniform();
  if (u < 1e-300) u = 1e-300;
  return static_cast<std::uint64_t>(std::log(u) / std::log1p(-p));
}

std::size_t Rng::categorical(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += w > 0.0 ? w : 0.0;
  if (total <= 0.0) return 0;
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (x < w) return i;
    x -= w;
  }
  return weights.size() - 1;
}

double Rng::pareto(double xm, double alpha) noexcept {
  double u = uniform();
  if (u < 1e-300) u = 1e-300;
  return xm / std::pow(u, 1.0 / alpha);
}

}  // namespace nevermind::util
