// Small numeric special-function toolbox used by the ML library:
// logistic/sigmoid helpers, the normal distribution (for Wald p-values
// of the Table-5 logistic regression), and numerically careful log/exp
// combinations.
#pragma once

#include <cstddef>
#include <span>

namespace nevermind::util {

/// Logistic sigmoid 1 / (1 + e^-x), stable for large |x|.
[[nodiscard]] double sigmoid(double x) noexcept;

/// log(1 + e^x) without overflow (the "softplus" of logistic loss).
[[nodiscard]] double log1p_exp(double x) noexcept;

/// Standard normal probability density.
[[nodiscard]] double normal_pdf(double x) noexcept;

/// Standard normal cumulative distribution function.
[[nodiscard]] double normal_cdf(double x) noexcept;

/// Two-sided p-value for a z statistic: P(|Z| >= |z|).
[[nodiscard]] double two_sided_p_value(double z) noexcept;

/// Clamp a probability into (eps, 1 - eps) for safe log/logit.
[[nodiscard]] double clamp_probability(double p, double eps = 1e-12) noexcept;

/// logit(p) = log(p / (1 - p)), with clamping.
[[nodiscard]] double logit(double p) noexcept;

/// Dot product over equal-length spans (caller guarantees sizes match).
[[nodiscard]] double dot(std::span<const double> a,
                         std::span<const double> b) noexcept;

}  // namespace nevermind::util
