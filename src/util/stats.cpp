#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nevermind::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const double pos = std::clamp(q, 0.0, 1.0) * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] + frac * (v[hi] - v[lo]);
}

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double pearson_correlation(std::span<const double> xs,
                           std::span<const double> ys) noexcept {
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return 0.0;
  const double mx = mean(xs.subspan(0, n));
  const double my = mean(ys.subspan(0, n));
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0 || !(hi > lo)) {
    throw std::invalid_argument("Histogram requires bins > 0 and hi > lo");
  }
}

void Histogram::add(double x) noexcept {
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<long long>(t * static_cast<double>(counts_.size()));
  idx = std::clamp<long long>(idx, 0,
                              static_cast<long long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t i) const { return counts_.at(i); }

double Histogram::bin_low(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_high(std::size_t i) const { return bin_low(i + 1); }

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::at(double x) const noexcept {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

}  // namespace nevermind::util
