#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace nevermind::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << " | ";
      os << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  print_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c != 0) os << "-+-";
    os << std::string(widths[c], '-');
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_percent(double fraction, int precision) {
  return fmt_double(fraction * 100.0, precision) + "%";
}

void print_banner(std::ostream& os, std::string_view title) {
  os << '\n' << std::string(72, '=') << '\n'
     << title << '\n'
     << std::string(72, '=') << '\n';
}

}  // namespace nevermind::util
