#include "util/mathx.hpp"

#include <algorithm>
#include <cmath>

namespace nevermind::util {

double sigmoid(double x) noexcept {
  if (x >= 0.0) {
    const double e = std::exp(-x);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}

double log1p_exp(double x) noexcept {
  if (x > 35.0) return x;            // e^-x below double epsilon
  if (x < -35.0) return std::exp(x);  // log1p(e^x) ~= e^x
  return std::log1p(std::exp(x));
}

double normal_pdf(double x) noexcept {
  constexpr double inv_sqrt_2pi = 0.3989422804014327;
  return inv_sqrt_2pi * std::exp(-0.5 * x * x);
}

double normal_cdf(double x) noexcept {
  return 0.5 * std::erfc(-x * 0.7071067811865475);
}

double two_sided_p_value(double z) noexcept {
  return 2.0 * normal_cdf(-std::fabs(z));
}

double clamp_probability(double p, double eps) noexcept {
  return std::clamp(p, eps, 1.0 - eps);
}

double logit(double p) noexcept {
  const double q = clamp_probability(p);
  return std::log(q / (1.0 - q));
}

double dot(std::span<const double> a, std::span<const double> b) noexcept {
  double s = 0.0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

}  // namespace nevermind::util
