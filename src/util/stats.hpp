// Descriptive statistics used across the simulator, the feature encoder
// (time-series z-scores need running mean/variance) and the benchmark
// harness (histograms, CDFs, correlation).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace nevermind::util {

/// Welford online mean/variance accumulator. Numerically stable; the
/// feature encoder keeps one of these per (line, metric) to turn the
/// sparse weekly time series into deviation features.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when fewer than 2 samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ > 0 ? max_ : 0.0; }

  /// Raw Welford M2 (sum of squared deviations) — exposed so an
  /// accumulator can be serialized exactly (cluster shard handoff).
  [[nodiscard]] double sum_sq_dev() const noexcept { return m2_; }
  /// Raw mean, without the n>0 guard — pairs with restore().
  [[nodiscard]] double raw_mean() const noexcept { return mean_; }
  [[nodiscard]] double raw_min() const noexcept { return min_; }
  [[nodiscard]] double raw_max() const noexcept { return max_; }

  /// Rebuild an accumulator from previously exported raw state. The
  /// round-trip restore(s.count(), s.raw_mean(), s.sum_sq_dev(),
  /// s.raw_min(), s.raw_max()) reproduces `s` bit for bit — which is
  /// what keeps scores identical across a cluster shard handoff.
  [[nodiscard]] static RunningStats restore(std::size_t n, double mean,
                                            double m2, double min,
                                            double max) noexcept {
    RunningStats s;
    s.n_ = n;
    s.mean_ = mean;
    s.m2_ = m2;
    s.min_ = min;
    s.max_ = max;
    return s;
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Quantile of a sample using linear interpolation between order
/// statistics; `q` in [0, 1]. Copies and sorts; intended for reporting,
/// not hot paths.
[[nodiscard]] double quantile(std::span<const double> xs, double q);

[[nodiscard]] double mean(std::span<const double> xs) noexcept;
[[nodiscard]] double variance(std::span<const double> xs) noexcept;
[[nodiscard]] double pearson_correlation(std::span<const double> xs,
                                         std::span<const double> ys) noexcept;

/// Fixed-width histogram over [lo, hi); values outside are clamped into
/// the first/last bin. Used to regenerate the paper's Fig 4 panels.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bin_count(std::size_t i) const;
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] double bin_low(std::size_t i) const;
  [[nodiscard]] double bin_high(std::size_t i) const;
  [[nodiscard]] std::size_t total() const noexcept { return total_; }

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Empirical CDF evaluated at caller-supplied points (e.g. "fraction of
/// predicted tickets arriving within d days" for Fig 8).
class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(std::vector<double> samples);

  /// P(X <= x); 0 for an empty sample.
  [[nodiscard]] double at(double x) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }

 private:
  std::vector<double> sorted_;
};

}  // namespace nevermind::util
