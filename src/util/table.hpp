// Console table printer for the benchmark harness: every bench binary
// prints paper-style rows (Table 1, Table 5, Fig 6 series, ...) through
// this, so all outputs share one aligned, greppable format.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace nevermind::util {

/// A simple right-padded text table. Columns are sized to the widest
/// cell; numeric formatting is the caller's job (use `fmt_double`).
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; short rows are padded with empty cells, long rows
  /// are truncated to the header width.
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Renders with a header rule, e.g.
  ///   name      | value
  ///   ----------+------
  ///   dnbr      | 768.0
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double formatting ("%.3f"-style) without sstream
/// boilerplate at call sites.
[[nodiscard]] std::string fmt_double(double v, int precision = 3);

/// Percentage with a '%' suffix, e.g. fmt_percent(0.378) == "37.8%".
[[nodiscard]] std::string fmt_percent(double fraction, int precision = 1);

/// Section banner used by bench binaries to label each reproduced
/// table/figure.
void print_banner(std::ostream& os, std::string_view title);

}  // namespace nevermind::util
