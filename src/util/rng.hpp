// Deterministic random number generation for the NEVERMIND simulator.
//
// Everything in this project that needs randomness takes an explicit
// `Rng&` (or a seed) — there is no global generator and no wall-clock
// seeding, so every simulation, test and benchmark is reproducible
// bit-for-bit from its seed.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace nevermind::util {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference
/// implementation), seeded through SplitMix64. Small, fast, and with
/// far better statistical quality than std::minstd; we avoid
/// std::mt19937 because its distributions are not portable across
/// standard libraries and we want cross-platform reproducibility.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept { return next(); }
  std::uint64_t next() noexcept;

  /// Derive an independent child stream; used to give each DSL line /
  /// subsystem its own generator so that changing one part of the
  /// simulation does not perturb the random draws of another.
  [[nodiscard]] Rng fork() noexcept;

  /// Independent stream keyed by (seed, stream index) without touching
  /// any parent state. This is how parallel loops get per-task
  /// generators: stream i draws the same sequence no matter which
  /// thread runs task i or how the range was chunked, which is the
  /// backbone of the exec layer's determinism contract.
  [[nodiscard]] static Rng stream(std::uint64_t seed,
                                  std::uint64_t stream_index) noexcept;

  /// Uniform real in [0, 1).
  double uniform() noexcept;
  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [0, n) for n > 0.
  std::uint64_t uniform_index(std::uint64_t n) noexcept;
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  bool bernoulli(double p) noexcept;
  /// Standard normal via Box–Muller (cached second draw).
  double normal() noexcept;
  double normal(double mean, double stddev) noexcept;
  double lognormal(double mu, double sigma) noexcept;
  double exponential(double rate) noexcept;
  /// Knuth / inversion Poisson; fine for the small means we use.
  std::uint64_t poisson(double mean) noexcept;
  /// Geometric: number of failures before first success, p in (0,1].
  std::uint64_t geometric(double p) noexcept;
  /// Sample an index proportionally to non-negative `weights`.
  std::size_t categorical(std::span<const double> weights) noexcept;
  /// Pareto (heavy tail) with scale xm > 0 and shape alpha > 0.
  double pareto(double xm, double alpha) noexcept;

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[uniform_index(i)]);
    }
  }

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace nevermind::util
