#include "util/calendar.hpp"

#include <algorithm>
#include <array>
#include <cstdio>

namespace nevermind::util {

namespace {

// 2009 is not a leap year.
constexpr std::array<int, 12> kDaysInMonth = {31, 28, 31, 30, 31, 30,
                                              31, 31, 30, 31, 30, 31};

constexpr std::array<int, 13> month_starts() {
  std::array<int, 13> starts{};
  int acc = 0;
  for (int m = 0; m < 12; ++m) {
    starts[static_cast<std::size_t>(m)] = acc;
    acc += kDaysInMonth[static_cast<std::size_t>(m)];
  }
  starts[12] = acc;
  return starts;
}

constexpr auto kMonthStarts = month_starts();

}  // namespace

Weekday weekday_of(Day day) noexcept {
  // Day 0 (2009-01-01) is a Thursday.
  int idx = (static_cast<int>(Weekday::kThursday) + day) % kDaysPerWeek;
  if (idx < 0) idx += kDaysPerWeek;
  return static_cast<Weekday>(idx);
}

bool is_saturday(Day day) noexcept {
  return weekday_of(day) == Weekday::kSaturday;
}

int test_week_of(Day day) noexcept {
  if (day < kFirstSaturday) return -1;
  return (day - kFirstSaturday) / kDaysPerWeek;
}

Day saturday_of_week(int week) noexcept {
  return kFirstSaturday + week * kDaysPerWeek;
}

int test_weeks_in_year() noexcept {
  // Saturdays 01/03 .. 12/26 inclusive.
  return test_week_of(364) + 1;
}

Day day_from_date(int month, int day_of_month) noexcept {
  month = std::clamp(month, 1, 12);
  const int dim = kDaysInMonth[static_cast<std::size_t>(month - 1)];
  day_of_month = std::clamp(day_of_month, 1, dim);
  return kMonthStarts[static_cast<std::size_t>(month - 1)] + day_of_month - 1;
}

std::string format_date(Day day) {
  int year = 9;
  int d = day;
  while (d >= 365) {
    d -= 365;  // treat subsequent years as non-leap; fine for reporting
    ++year;
  }
  while (d < 0) {
    d += 365;
    --year;
  }
  int month = 0;
  while (month < 11 && kMonthStarts[static_cast<std::size_t>(month + 1)] <= d) {
    ++month;
  }
  const int dom = d - kMonthStarts[static_cast<std::size_t>(month)] + 1;
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%02d/%02d/%02d", month + 1, dom, year);
  return buf;
}

const char* weekday_name(Weekday wd) noexcept {
  switch (wd) {
    case Weekday::kMonday: return "Mon";
    case Weekday::kTuesday: return "Tue";
    case Weekday::kWednesday: return "Wed";
    case Weekday::kThursday: return "Thu";
    case Weekday::kFriday: return "Fri";
    case Weekday::kSaturday: return "Sat";
    case Weekday::kSunday: return "Sun";
  }
  return "?";
}

}  // namespace nevermind::util
