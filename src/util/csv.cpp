#include "util/csv.hpp"

#include <istream>
#include <ostream>

namespace nevermind::util {

namespace {

bool needs_quoting(std::string_view s) {
  return s.find_first_of(",\"\n\r") != std::string_view::npos;
}

void write_field(std::ostream& os, std::string_view s) {
  if (!needs_quoting(s)) {
    os << s;
    return;
  }
  os << '"';
  for (char c : s) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}

}  // namespace

CsvWriter::CsvWriter(std::ostream& os) : os_(os) {}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) os_ << ',';
    write_field(os_, cells[i]);
  }
  os_ << '\n';
}

std::vector<std::string> parse_csv_line(std::string_view line) {
  std::vector<std::string> cells;
  std::string cur;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      cells.push_back(std::move(cur));
      cur.clear();
    } else if (c != '\r') {
      cur += c;
    }
  }
  cells.push_back(std::move(cur));
  return cells;
}

std::vector<std::vector<std::string>> read_csv(std::istream& is) {
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    rows.push_back(parse_csv_line(line));
  }
  return rows;
}

}  // namespace nevermind::util
