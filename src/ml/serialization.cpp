#include "ml/serialization.hpp"

#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

namespace nevermind::ml {

namespace {

/// Max-precision defaults so doubles/floats round-trip exactly.
void set_roundtrip_precision(std::ostream& os) {
  os.precision(std::numeric_limits<double>::max_digits10);
}

}  // namespace

void save_model(std::ostream& os, const BStumpModel& model) {
  set_roundtrip_precision(os);
  os << "bstump v1 " << model.stumps().size() << '\n';
  for (const auto& s : model.stumps()) {
    os << s.feature << ' ' << (s.categorical ? 1 : 0) << ' ' << s.threshold
       << ' ' << s.score_pass << ' ' << s.score_fail << ' ' << s.score_missing
       << '\n';
  }
}

std::optional<BStumpModel> load_model(std::istream& is) {
  std::string magic;
  std::string version;
  std::size_t count = 0;
  if (!(is >> magic >> version >> count) || magic != "bstump" ||
      version != "v1") {
    return std::nullopt;
  }
  std::vector<Stump> stumps;
  stumps.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Stump s;
    int categorical = 0;
    if (!(is >> s.feature >> categorical >> s.threshold >> s.score_pass >>
          s.score_fail >> s.score_missing)) {
      return std::nullopt;
    }
    s.categorical = categorical != 0;
    stumps.push_back(s);
  }
  return BStumpModel{std::move(stumps)};
}

void save_calibrator(std::ostream& os, const PlattCalibrator& calibrator) {
  set_roundtrip_precision(os);
  os << "platt v1 " << calibrator.a << ' ' << calibrator.b << '\n';
}

std::optional<PlattCalibrator> load_calibrator(std::istream& is) {
  std::string magic;
  std::string version;
  PlattCalibrator cal;
  if (!(is >> magic >> version >> cal.a >> cal.b) || magic != "platt" ||
      version != "v1") {
    return std::nullopt;
  }
  return cal;
}

void save_logistic(std::ostream& os, const LogisticModel& model) {
  set_roundtrip_precision(os);
  os << "logreg v1 " << model.coefficients.size();
  for (const double c : model.coefficients) os << ' ' << c;
  os << ' ' << (model.converged ? 1 : 0) << '\n';
}

std::optional<LogisticModel> load_logistic(std::istream& is) {
  std::string magic;
  std::string version;
  std::size_t count = 0;
  if (!(is >> magic >> version >> count) || magic != "logreg" ||
      version != "v1") {
    return std::nullopt;
  }
  LogisticModel model;
  model.coefficients.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (!(is >> model.coefficients[i])) return std::nullopt;
  }
  int converged = 0;
  if (!(is >> converged)) return std::nullopt;
  model.converged = converged != 0;
  return model;
}

void save_bundle(std::ostream& os, const ModelBundle& bundle) {
  os << "bundle v1 " << bundle.feature_names.size() << '\n';
  // Names may contain '*' and '.', never whitespace; one per line keeps
  // parsing trivial and diff-friendly.
  for (const auto& name : bundle.feature_names) os << name << '\n';
  save_model(os, bundle.model);
  save_calibrator(os, bundle.calibrator);
}

std::optional<ModelBundle> load_bundle(std::istream& is) {
  std::string magic;
  std::string version;
  std::size_t n_names = 0;
  if (!(is >> magic >> version >> n_names) || magic != "bundle" ||
      version != "v1") {
    return std::nullopt;
  }
  ModelBundle bundle;
  bundle.feature_names.reserve(n_names);
  for (std::size_t i = 0; i < n_names; ++i) {
    std::string name;
    if (!(is >> name)) return std::nullopt;
    bundle.feature_names.push_back(std::move(name));
  }
  auto model = load_model(is);
  if (!model.has_value()) return std::nullopt;
  bundle.model = std::move(*model);
  auto cal = load_calibrator(is);
  if (!cal.has_value()) return std::nullopt;
  bundle.calibrator = *cal;
  return bundle;
}

}  // namespace nevermind::ml
