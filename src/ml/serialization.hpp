// Model persistence: save/load trained models as a line-oriented text
// format. Operationally, NEVERMIND trains on a modeling server and
// scores weekly inside the provisioning systems — the artefact that
// crosses that boundary is the serialized model. The format is
// versioned, human-inspectable (stumps print as one line each), and
// round-trips bit-exactly through the decimal representation below.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "ml/adaboost.hpp"
#include "ml/calibration.hpp"
#include "ml/logreg.hpp"

namespace nevermind::ml {

/// Write a BStump ensemble. Format:
///   bstump v1 <n_stumps>
///   <feature> <categorical 0|1> <threshold> <pass> <fail> <missing>
///   ...
void save_model(std::ostream& os, const BStumpModel& model);

/// Read a model written by save_model. Returns nullopt on malformed
/// input (wrong magic, truncated rows, non-numeric fields).
[[nodiscard]] std::optional<BStumpModel> load_model(std::istream& is);

/// Write a Platt calibrator:  platt v1 <a> <b>
void save_calibrator(std::ostream& os, const PlattCalibrator& calibrator);
[[nodiscard]] std::optional<PlattCalibrator> load_calibrator(std::istream& is);

/// Write a fitted logistic model's prediction state (coefficients and
/// convergence flag; the Wald diagnostics are analysis-time artefacts
/// and are not persisted):  logreg v1 <n> <c0> ... <cn-1> <converged>
void save_logistic(std::ostream& os, const LogisticModel& model);
[[nodiscard]] std::optional<LogisticModel> load_logistic(std::istream& is);

/// A deployable predictor bundle: the ensemble, its calibrator, and
/// the names of the selected feature columns (so the scoring side can
/// verify it is feeding the right encoder layout).
struct ModelBundle {
  BStumpModel model;
  PlattCalibrator calibrator;
  std::vector<std::string> feature_names;
};

void save_bundle(std::ostream& os, const ModelBundle& bundle);
[[nodiscard]] std::optional<ModelBundle> load_bundle(std::istream& is);

}  // namespace nevermind::ml
