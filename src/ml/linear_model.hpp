// Regularized logistic regression over a full feature matrix — the
// classical linear baseline for the model zoo. BStump (stumps +
// boosting) is what the paper ships; this model answers "would plain
// logistic regression on the same selected features have sufficed?"
// (see bench_model_zoo). Features are standardized and missing values
// imputed to the column mean, since unlike stumps a linear model has no
// abstain branch.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/logreg.hpp"

namespace nevermind::ml {

struct LinearModelConfig {
  double ridge = 1.0;
  int max_iterations = 60;
};

/// Fitted standardize-impute-logistic pipeline.
class LinearModel {
 public:
  LinearModel() = default;

  [[nodiscard]] bool empty() const noexcept {
    return logistic_.coefficients.empty();
  }
  /// Decision-function score (the linear predictor eta; monotone in
  /// probability, comparable to BStump margins for ranking).
  [[nodiscard]] double score_features(std::span<const float> features) const;
  [[nodiscard]] std::vector<double> score_dataset(const DatasetView& data) const;
  [[nodiscard]] double probability(std::span<const float> features) const;

  [[nodiscard]] const LogisticModel& logistic() const noexcept {
    return logistic_;
  }

 private:
  friend LinearModel train_linear_model(const DatasetView&,
                                        const LinearModelConfig&);
  LogisticModel logistic_;
  std::vector<double> means_;
  std::vector<double> stddevs_;
};

[[nodiscard]] LinearModel train_linear_model(
    const DatasetView& data, const LinearModelConfig& config = {});

}  // namespace nevermind::ml
