#include "ml/metrics.hpp"

#include <algorithm>
#include <numeric>

namespace nevermind::ml {

std::vector<std::size_t> rank_by_score(std::span<const double> scores) {
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return scores[a] > scores[b];
                   });
  return order;
}

double precision_at_k(std::span<const double> scores,
                      std::span<const std::uint8_t> labels, std::size_t k) {
  const std::size_t cutoffs[] = {k};
  return precision_curve(scores, labels, cutoffs)[0];
}

std::vector<double> precision_curve(std::span<const double> scores,
                                    std::span<const std::uint8_t> labels,
                                    std::span<const std::size_t> cutoffs) {
  const auto order = rank_by_score(scores);
  std::vector<double> out(cutoffs.size(), 0.0);
  if (order.empty()) return out;

  // Prefix positive counts once, then answer each cutoff.
  std::vector<std::size_t> prefix(order.size() + 1, 0);
  for (std::size_t r = 0; r < order.size(); ++r) {
    prefix[r + 1] = prefix[r] + (labels[order[r]] != 0 ? 1 : 0);
  }
  for (std::size_t i = 0; i < cutoffs.size(); ++i) {
    const std::size_t k = std::min(cutoffs[i], order.size());
    out[i] = k == 0 ? 0.0
                    : static_cast<double>(prefix[k]) / static_cast<double>(k);
  }
  return out;
}

double top_n_average_precision(std::span<const double> scores,
                               std::span<const std::uint8_t> labels,
                               std::size_t n) {
  const auto order = rank_by_score(scores);
  const std::size_t limit = std::min(n, order.size());
  if (n == 0) return 0.0;
  double sum = 0.0;
  std::size_t positives = 0;
  for (std::size_t r = 0; r < limit; ++r) {
    if (labels[order[r]] != 0) {
      ++positives;
      sum += static_cast<double>(positives) / static_cast<double>(r + 1);
    }
  }
  return sum / static_cast<double>(n);
}

double average_precision(std::span<const double> scores,
                         std::span<const std::uint8_t> labels) {
  const auto order = rank_by_score(scores);
  double sum = 0.0;
  std::size_t positives = 0;
  for (std::size_t r = 0; r < order.size(); ++r) {
    if (labels[order[r]] != 0) {
      ++positives;
      sum += static_cast<double>(positives) / static_cast<double>(r + 1);
    }
  }
  return positives == 0 ? 0.0 : sum / static_cast<double>(positives);
}

double auc(std::span<const double> scores,
           std::span<const std::uint8_t> labels) {
  const std::size_t n = scores.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] < scores[b];
  });

  // Average ranks across ties, accumulate rank-sum of positives.
  double rank_sum_pos = 0.0;
  std::size_t n_pos = 0;
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double avg_rank = 0.5 * static_cast<double>(i + j) + 1.0;
    for (std::size_t k = i; k <= j; ++k) {
      if (labels[order[k]] != 0) {
        rank_sum_pos += avg_rank;
        ++n_pos;
      }
    }
    i = j + 1;
  }
  const std::size_t n_neg = n - n_pos;
  if (n_pos == 0 || n_neg == 0) return 0.5;
  const double u = rank_sum_pos -
                   static_cast<double>(n_pos) * (static_cast<double>(n_pos) + 1.0) / 2.0;
  return u / (static_cast<double>(n_pos) * static_cast<double>(n_neg));
}

}  // namespace nevermind::ml
