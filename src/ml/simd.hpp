// Runtime-dispatched kernels for the histogram training path.
//
// Two interchangeable kernel arms scan binned features for the best
// stump:
//   * scalar — portable fallback: one feature per pass, branchless
//     accumulation into split pos/neg histograms (w * label arithmetic
//     instead of a per-row branch);
//   * avx2 — AVX2+FMA build of the same math: an interleaved
//     label-selected (pos, neg) weight stream precomputed once per
//     round, several feature histograms built per pass over the rows
//     (weights are loaded once per row block instead of once per
//     feature), each row's histogram update a single 128-bit paired
//     add, and vectorized lane merge and split evaluation.
//
// Both arms accumulate into kLanes per-lane partial histograms (stream
// position i feeds lane i % kLanes) and merge them in fixed lane order
// ((l0 + l1) + l2) + l3, so the floating-point sum order is a property
// of the *data*, not of the kernel: scalar and AVX2 results are
// byte-identical, and the PR 1/2 determinism contract (byte-identical
// ensembles at any thread count) carries over unchanged.
//
// Dispatch: the active arm is chosen from an explicit override
// (set_mode / --simd / NEVERMIND_SIMD env var) or, under kAuto, from a
// runtime CPUID probe for AVX2+FMA. Builds without AVX2 codegen
// support compile the scalar arm only and report kAvx2 unavailable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

#include "ml/binning.hpp"

namespace nevermind::ml::simd {

/// User-facing dispatch preference.
enum class Mode : std::uint8_t { kAuto = 0, kScalar, kAvx2 };

/// Resolved kernel arm.
enum class Kernel : std::uint8_t { kScalar = 0, kAvx2 };

/// True when this build carries the AVX2 arm *and* the CPU reports
/// AVX2+FMA. Probed once, then cached.
[[nodiscard]] bool cpu_supports_avx2() noexcept;

/// Current dispatch preference. Starts from the NEVERMIND_SIMD
/// environment variable ("auto" | "scalar" | "avx2", default auto)
/// until set_mode overrides it.
[[nodiscard]] Mode mode() noexcept;

/// Overrides the dispatch preference process-wide (the CLI's --simd).
/// kAvx2 on a host without AVX2 support falls back to scalar at
/// resolution time rather than faulting.
void set_mode(Mode m) noexcept;

/// Parses "auto" | "scalar" | "avx2"; nullopt on anything else.
[[nodiscard]] std::optional<Mode> parse_mode(std::string_view text) noexcept;

[[nodiscard]] const char* mode_name(Mode m) noexcept;
[[nodiscard]] const char* kernel_name(Kernel k) noexcept;

/// The arm the next binned search will run: resolves kAuto (and an
/// unsatisfiable kAvx2 request) against cpu_supports_avx2().
[[nodiscard]] Kernel active_kernel() noexcept;

/// Shared argument block of the per-chunk kernel entry point. `labels`
/// spans the full source view; `weights[i]` belongs to subset position
/// i (`rows` empty means the subset is every view row). `wpn` is the
/// interleaved label-selected weight stream — wpn[2i] = weights[i] when
/// labels[row(i)] != 0 else +0.0, wpn[2i+1] the reverse — precomputed
/// once per search by the caller for the AVX2 arm, 16-byte aligned so
/// each (pos, neg) pair loads as one 128-bit vector; the scalar arm
/// ignores it, and an empty/mis-sized span makes the AVX2 arm build its
/// own (selection, not arithmetic, so values stay bit-equal).
struct ScanArgs {
  const BinnedColumns* bins = nullptr;
  std::span<const std::uint8_t> labels;
  std::span<const double> weights;
  std::span<const std::uint32_t> rows;
  std::span<const double> wpn;
  double smoothing = 0.0;
};

/// Scans features [first, last) of args.bins with the requested arm and
/// returns the chunk's best result (ties to the lowest bin/feature
/// index, exactly like the serial scan). Both arms return byte-identical
/// results for identical inputs.
[[nodiscard]] BinnedStumpResult scan_features(Kernel kernel,
                                              const ScanArgs& args,
                                              std::size_t first,
                                              std::size_t last);

}  // namespace nevermind::ml::simd
