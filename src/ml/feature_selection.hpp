// Feature selection for the ticket predictor (Section 4.3).
//
// The paper's novel criterion scores each candidate feature by the
// top-N average precision AP(N) of a predictor built on that feature
// alone ("we first construct a ticket predictor given each individual
// feature on a training dataset, and test the predictor on a separate
// test set"), then keeps the features above a threshold (0.2 for
// history/customer/quadratic features, 0.3 for product features, from
// the bimodal histograms of Fig 4). Table 4's baselines — AUC, standard
// average precision, PCA and gain ratio — are implemented for the Fig 6
// comparison.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "exec/exec.hpp"
#include "ml/dataset.hpp"

namespace nevermind::ml {

enum class SelectionMethod {
  kTopNAp,            // the paper's AP(N) criterion
  kAuc,               // maximum area under the ROC curve
  kAveragePrecision,  // AP over all samples
  kPca,               // loading on top principal components
  kGainRatio,         // entropy decrease normalized by split entropy
};

[[nodiscard]] const char* selection_method_name(SelectionMethod m) noexcept;

struct FeatureScoringConfig {
  /// Boosting rounds for the per-feature predictors. Single-feature
  /// ensembles saturate quickly; a handful of rounds yields the optimal
  /// piecewise-constant scorer on that feature.
  std::size_t boost_iterations = 12;
  /// N in AP(N); the ATDS weekly capacity (paper: 20,000).
  std::size_t top_n = 20000;
  /// Components used by the PCA criterion.
  std::size_t pca_components = 10;
  /// Bins for gain ratio discretization.
  std::size_t gain_bins = 10;
  /// Row cap for the PCA covariance estimate (0 = use everything).
  std::size_t pca_max_rows = 20000;
  /// Execution context: the wrapper criteria train one single-feature
  /// predictor per column, which parallelizes embarrassingly across
  /// columns (each score lands in its own slot — thread-count
  /// invariant).
  exec::ExecContext exec;
};

/// One score per feature, higher = better. Wrapper methods that need a
/// held-out evaluation (top-N AP, AUC, AP) train a single-feature
/// BStump on `train` and score it on `test`; PCA and gain ratio are
/// filter methods computed on `train` only.
/// `first_column` skips scoring for columns below it (their scores are
/// reported as 0) — callers that already scored a base block use this
/// to score only newly appended derived columns.
[[nodiscard]] std::vector<double> score_features(
    const DatasetView& train, const DatasetView& test, SelectionMethod method,
    const FeatureScoringConfig& config = {}, std::size_t first_column = 0);

/// Indices of the k highest-scoring features (descending score).
[[nodiscard]] std::vector<std::size_t> select_top_k(
    std::span<const double> scores, std::size_t k);

/// Indices of features whose score strictly exceeds `threshold`.
[[nodiscard]] std::vector<std::size_t> select_above_threshold(
    std::span<const double> scores, double threshold);

}  // namespace nevermind::ml
