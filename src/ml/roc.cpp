#include "ml/roc.hpp"

#include <algorithm>
#include <limits>

#include "ml/metrics.hpp"

namespace nevermind::ml {

std::vector<RocPoint> roc_curve(std::span<const double> scores,
                                std::span<const std::uint8_t> labels) {
  const auto order = rank_by_score(scores);
  std::size_t n_pos = 0;
  for (auto y : labels) n_pos += y != 0 ? 1U : 0U;
  const std::size_t n_neg = labels.size() - n_pos;

  std::vector<RocPoint> curve;
  curve.push_back({std::numeric_limits<double>::infinity(), 0.0, 0.0});
  std::size_t tp = 0;
  std::size_t fp = 0;
  for (std::size_t i = 0; i < order.size();) {
    const double score = scores[order[i]];
    // Consume the whole tie group before emitting a point.
    while (i < order.size() && scores[order[i]] == score) {
      if (labels[order[i]] != 0) {
        ++tp;
      } else {
        ++fp;
      }
      ++i;
    }
    RocPoint p;
    p.threshold = score;
    p.true_positive_rate =
        n_pos > 0 ? static_cast<double>(tp) / static_cast<double>(n_pos) : 0.0;
    p.false_positive_rate =
        n_neg > 0 ? static_cast<double>(fp) / static_cast<double>(n_neg) : 0.0;
    curve.push_back(p);
  }
  return curve;
}

std::vector<PrPoint> precision_recall_curve(
    std::span<const double> scores, std::span<const std::uint8_t> labels) {
  const auto order = rank_by_score(scores);
  std::size_t n_pos = 0;
  for (auto y : labels) n_pos += y != 0 ? 1U : 0U;

  std::vector<PrPoint> curve;
  std::size_t tp = 0;
  std::size_t predicted = 0;
  for (std::size_t i = 0; i < order.size();) {
    const double score = scores[order[i]];
    while (i < order.size() && scores[order[i]] == score) {
      tp += labels[order[i]] != 0 ? 1U : 0U;
      ++predicted;
      ++i;
    }
    PrPoint p;
    p.threshold = score;
    p.predicted_positive = predicted;
    p.precision = static_cast<double>(tp) / static_cast<double>(predicted);
    p.recall =
        n_pos > 0 ? static_cast<double>(tp) / static_cast<double>(n_pos) : 0.0;
    curve.push_back(p);
  }
  return curve;
}

double area_under(std::span<const RocPoint> curve) {
  double area = 0.0;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    const double dx =
        curve[i].false_positive_rate - curve[i - 1].false_positive_rate;
    area += dx * 0.5 *
            (curve[i].true_positive_rate + curve[i - 1].true_positive_rate);
  }
  // Close the curve to (1,1) if the last threshold left it short.
  if (!curve.empty()) {
    const auto& last = curve.back();
    area += (1.0 - last.false_positive_rate) * 0.5 *
            (1.0 + last.true_positive_rate);
  }
  return area;
}

}  // namespace nevermind::ml
