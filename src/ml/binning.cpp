#include "ml/binning.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ml/simd.hpp"

namespace nevermind::ml {

namespace {

/// Midpoint threshold between two adjacent observed values — the exact
/// float expression scan_continuous uses, so lossless bins reproduce
/// its thresholds bit for bit.
float midpoint(float lo, float hi) noexcept { return lo + (hi - lo) * 0.5F; }

void bin_continuous(const ColumnView& col, std::size_t max_finite,
                    BinnedColumns::Column& out) {
  std::vector<float> values;
  values.reserve(col.size());
  for (float v : col) {
    if (!is_missing(v)) values.push_back(v);
  }
  std::sort(values.begin(), values.end());

  std::vector<float> distinct;
  distinct.reserve(values.size());
  std::vector<std::size_t> count;  // per distinct value
  for (float v : values) {
    if (distinct.empty() || v > distinct.back()) {
      distinct.push_back(v);
      count.push_back(1);
    } else {
      ++count.back();
    }
  }

  // Bin id per distinct value: identity when everything fits (lossless
  // mode), otherwise the quantile rank of the value's midpoint so bins
  // carry roughly equal row counts even under heavy duplication.
  std::vector<std::size_t> bin_of_distinct(distinct.size());
  if (distinct.size() <= max_finite) {
    for (std::size_t i = 0; i < distinct.size(); ++i) bin_of_distinct[i] = i;
  } else {
    const double n = static_cast<double>(values.size());
    std::size_t before = 0;
    std::size_t next_id = 0;
    std::size_t prev_raw = 0;
    for (std::size_t i = 0; i < distinct.size(); ++i) {
      const double mid = static_cast<double>(before) +
                         static_cast<double>(count[i]) * 0.5;
      auto raw = static_cast<std::size_t>(mid * static_cast<double>(max_finite) / n);
      raw = std::min(raw, max_finite - 1);
      if (i > 0 && raw > prev_raw) ++next_id;
      bin_of_distinct[i] = next_id;
      prev_raw = raw;
      before += count[i];
    }
  }

  const std::size_t n_bins =
      distinct.empty() ? 0 : bin_of_distinct.back() + 1;
  out.n_finite = static_cast<std::uint16_t>(n_bins);

  // Upper bound (largest distinct value) per bin drives both code
  // assignment and the inter-bin split thresholds.
  std::vector<float> upper(n_bins);
  std::vector<float> lower(n_bins);
  for (std::size_t i = 0; i < distinct.size(); ++i) {
    const std::size_t b = bin_of_distinct[i];
    upper[b] = distinct[i];
    if (i == 0 || bin_of_distinct[i - 1] != b) lower[b] = distinct[i];
  }
  out.split_values.resize(n_bins > 0 ? n_bins - 1 : 0);
  for (std::size_t b = 0; b + 1 < n_bins; ++b) {
    out.split_values[b] = midpoint(upper[b], lower[b + 1]);
  }

  for (std::size_t r = 0; r < col.size(); ++r) {
    if (is_missing(col[r])) {
      out.codes[r] = out.missing_code();
    } else {
      const auto it = std::lower_bound(upper.begin(), upper.end(), col[r]);
      out.codes[r] = static_cast<std::uint8_t>(it - upper.begin());
    }
  }
}

void bin_categorical(const ColumnView& col, std::size_t max_finite,
                     BinnedColumns::Column& out) {
  out.categorical = true;
  std::vector<float> distinct;
  for (float v : col) {
    if (!is_missing(v)) distinct.push_back(v);
  }
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());

  std::size_t n_groups = distinct.size();
  if (n_groups > max_finite) {
    // Overflow values share the last bin; the search cannot propose it
    // as an equality split but its weight still counts as present.
    out.overflow = true;
    out.category_values.assign(distinct.begin(),
                               distinct.begin() +
                                   static_cast<std::ptrdiff_t>(max_finite - 1));
    n_groups = max_finite;
  } else {
    out.category_values = distinct;
  }
  out.n_finite = static_cast<std::uint16_t>(n_groups);

  for (std::size_t r = 0; r < col.size(); ++r) {
    if (is_missing(col[r])) {
      out.codes[r] = out.missing_code();
      continue;
    }
    const auto it = std::lower_bound(out.category_values.begin(),
                                     out.category_values.end(), col[r]);
    if (it != out.category_values.end() && *it == col[r]) {
      out.codes[r] =
          static_cast<std::uint8_t>(it - out.category_values.begin());
    } else {
      out.codes[r] = static_cast<std::uint8_t>(out.n_finite - 1);  // overflow
    }
  }
}

}  // namespace

BinnedColumns::BinnedColumns(const DatasetView& data, const BinningConfig& config,
                             std::span<const std::size_t> only,
                             const exec::ExecContext& exec)
    : n_rows_(data.n_rows()),
      max_bins_(std::min<std::size_t>(config.max_bins, 256)),
      columns_(data.n_cols()) {
  const std::size_t max_bins = max_bins_;
  const std::size_t max_finite = max_bins > 1 ? max_bins - 1 : 1;

  std::vector<std::size_t> all;
  if (only.empty()) {
    all.resize(data.n_cols());
    for (std::size_t j = 0; j < all.size(); ++j) all[j] = j;
    only = all;
  }
  exec.parallel_for(0, only.size(), 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      const std::size_t j = only[i];
      Column& out = columns_[j];
      out.codes.resize(n_rows_);
      if (data.column_info(j).categorical) {
        bin_categorical(data.column(j), max_finite, out);
      } else {
        bin_continuous(data.column(j), max_finite, out);
      }
    }
  });
}

BinnedStumpResult find_best_stump_binned(const BinnedColumns& bins,
                                         std::span<const std::uint8_t> labels,
                                         std::span<const double> weights,
                                         std::span<const std::uint32_t> rows,
                                         double smoothing,
                                         const exec::ExecContext& exec) {
  BinnedStumpResult init;
  init.z = std::numeric_limits<double>::infinity();

  // Resolve the kernel arm once per search so a concurrent set_mode
  // cannot mix arms inside one reduce (harmless for results — the arms
  // are byte-identical — but it would skew benchmarks).
  const simd::Kernel kernel = simd::active_kernel();

  simd::ScanArgs args;
  args.bins = &bins;
  args.labels = labels;
  args.weights = weights;
  args.rows = rows;
  args.smoothing = smoothing;

  // The AVX2 arm wants the interleaved label-selected (pos, neg) weight
  // stream; hoist it here so it is built once per search, not once per
  // chunk. Selection (not arithmetic), so values equal the scalar arm's
  // w * label bit for bit.
  AlignedDoubleVector wpn;
  if (kernel == simd::Kernel::kAvx2) {
    const std::size_t n = weights.size();
    wpn.resize(2 * n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t r =
          rows.empty() ? static_cast<std::uint32_t>(i) : rows[i];
      const bool positive = labels[r] != 0;
      wpn[2 * i] = positive ? weights[i] : 0.0;
      wpn[2 * i + 1] = positive ? 0.0 : weights[i];
    }
    args.wpn = wpn;
  }

  // One chunk per thread (not the default fine grain): wide chunks let
  // the AVX2 arm amortize each pass over the rows across many feature
  // histograms. Per-feature results are chunk-independent, so the
  // ordered reduce still picks the serial winner.
  const std::size_t threads = std::max<std::size_t>(exec.threads(), 1);
  const std::size_t grain =
      std::max<std::size_t>(1, (bins.n_cols() + threads - 1) / threads);

  // Strict `<` in-chunk and `chunk < acc` across chunks: ties resolve
  // to the lowest bin/feature index, the serial scan's winner.
  return exec.parallel_reduce(
      0, bins.n_cols(), grain, init,
      [&](std::size_t b, std::size_t e) {
        return simd::scan_features(kernel, args, b, e);
      },
      [](BinnedStumpResult acc, BinnedStumpResult chunk) {
        return chunk.z < acc.z ? chunk : acc;
      });
}

}  // namespace nevermind::ml
