#include "ml/binning.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

namespace nevermind::ml {

namespace {

/// Midpoint threshold between two adjacent observed values — the exact
/// float expression scan_continuous uses, so lossless bins reproduce
/// its thresholds bit for bit.
float midpoint(float lo, float hi) noexcept { return lo + (hi - lo) * 0.5F; }

void bin_continuous(const ColumnView& col, std::size_t max_finite,
                    BinnedColumns::Column& out) {
  std::vector<float> values;
  values.reserve(col.size());
  for (float v : col) {
    if (!is_missing(v)) values.push_back(v);
  }
  std::sort(values.begin(), values.end());

  std::vector<float> distinct;
  distinct.reserve(values.size());
  std::vector<std::size_t> count;  // per distinct value
  for (float v : values) {
    if (distinct.empty() || v > distinct.back()) {
      distinct.push_back(v);
      count.push_back(1);
    } else {
      ++count.back();
    }
  }

  // Bin id per distinct value: identity when everything fits (lossless
  // mode), otherwise the quantile rank of the value's midpoint so bins
  // carry roughly equal row counts even under heavy duplication.
  std::vector<std::size_t> bin_of_distinct(distinct.size());
  if (distinct.size() <= max_finite) {
    for (std::size_t i = 0; i < distinct.size(); ++i) bin_of_distinct[i] = i;
  } else {
    const double n = static_cast<double>(values.size());
    std::size_t before = 0;
    std::size_t next_id = 0;
    std::size_t prev_raw = 0;
    for (std::size_t i = 0; i < distinct.size(); ++i) {
      const double mid = static_cast<double>(before) +
                         static_cast<double>(count[i]) * 0.5;
      auto raw = static_cast<std::size_t>(mid * static_cast<double>(max_finite) / n);
      raw = std::min(raw, max_finite - 1);
      if (i > 0 && raw > prev_raw) ++next_id;
      bin_of_distinct[i] = next_id;
      prev_raw = raw;
      before += count[i];
    }
  }

  const std::size_t n_bins =
      distinct.empty() ? 0 : bin_of_distinct.back() + 1;
  out.n_finite = static_cast<std::uint16_t>(n_bins);

  // Upper bound (largest distinct value) per bin drives both code
  // assignment and the inter-bin split thresholds.
  std::vector<float> upper(n_bins);
  std::vector<float> lower(n_bins);
  for (std::size_t i = 0; i < distinct.size(); ++i) {
    const std::size_t b = bin_of_distinct[i];
    upper[b] = distinct[i];
    if (i == 0 || bin_of_distinct[i - 1] != b) lower[b] = distinct[i];
  }
  out.split_values.resize(n_bins > 0 ? n_bins - 1 : 0);
  for (std::size_t b = 0; b + 1 < n_bins; ++b) {
    out.split_values[b] = midpoint(upper[b], lower[b + 1]);
  }

  for (std::size_t r = 0; r < col.size(); ++r) {
    if (is_missing(col[r])) {
      out.codes[r] = out.missing_code();
    } else {
      const auto it = std::lower_bound(upper.begin(), upper.end(), col[r]);
      out.codes[r] = static_cast<std::uint8_t>(it - upper.begin());
    }
  }
}

void bin_categorical(const ColumnView& col, std::size_t max_finite,
                     BinnedColumns::Column& out) {
  out.categorical = true;
  std::vector<float> distinct;
  for (float v : col) {
    if (!is_missing(v)) distinct.push_back(v);
  }
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());

  std::size_t n_groups = distinct.size();
  if (n_groups > max_finite) {
    // Overflow values share the last bin; the search cannot propose it
    // as an equality split but its weight still counts as present.
    out.overflow = true;
    out.category_values.assign(distinct.begin(),
                               distinct.begin() +
                                   static_cast<std::ptrdiff_t>(max_finite - 1));
    n_groups = max_finite;
  } else {
    out.category_values = distinct;
  }
  out.n_finite = static_cast<std::uint16_t>(n_groups);

  for (std::size_t r = 0; r < col.size(); ++r) {
    if (is_missing(col[r])) {
      out.codes[r] = out.missing_code();
      continue;
    }
    const auto it = std::lower_bound(out.category_values.begin(),
                                     out.category_values.end(), col[r]);
    if (it != out.category_values.end() && *it == col[r]) {
      out.codes[r] =
          static_cast<std::uint8_t>(it - out.category_values.begin());
    } else {
      out.codes[r] = static_cast<std::uint8_t>(out.n_finite - 1);  // overflow
    }
  }
}

}  // namespace

BinnedColumns::BinnedColumns(const DatasetView& data, const BinningConfig& config,
                             std::span<const std::size_t> only,
                             const exec::ExecContext& exec)
    : n_rows_(data.n_rows()), columns_(data.n_cols()) {
  const std::size_t max_bins = std::min<std::size_t>(config.max_bins, 256);
  const std::size_t max_finite = max_bins > 1 ? max_bins - 1 : 1;

  std::vector<std::size_t> all;
  if (only.empty()) {
    all.resize(data.n_cols());
    for (std::size_t j = 0; j < all.size(); ++j) all[j] = j;
    only = all;
  }
  exec.parallel_for(0, only.size(), 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      const std::size_t j = only[i];
      Column& out = columns_[j];
      out.codes.resize(n_rows_);
      if (data.column_info(j).categorical) {
        bin_categorical(data.column(j), max_finite, out);
      } else {
        bin_continuous(data.column(j), max_finite, out);
      }
    }
  });
}

namespace {

struct WeightPair {
  double pos = 0.0;
  double neg = 0.0;

  void add(bool positive, double w) noexcept {
    if (positive) {
      pos += w;
    } else {
      neg += w;
    }
  }
  WeightPair operator-(const WeightPair& o) const noexcept {
    return {pos - o.pos, neg - o.neg};
  }
};

double block_z(const WeightPair& w) noexcept {
  const double p = std::max(w.pos, 0.0);
  const double n = std::max(w.neg, 0.0);
  return 2.0 * std::sqrt(p * n);
}

double block_score(const WeightPair& w, double eps) noexcept {
  return 0.5 * std::log((std::max(w.pos, 0.0) + eps) /
                        (std::max(w.neg, 0.0) + eps));
}

/// One weight histogram per feature: a single sequential pass over the
/// uint8 codes, then a scan over at most 256 bins.
BinnedStumpResult scan_feature(const BinnedColumns::Column& col,
                               std::span<const std::uint8_t> labels,
                               std::span<const double> weights,
                               std::span<const std::uint32_t> rows,
                               double smoothing, std::size_t feature) {
  std::array<WeightPair, 256> hist{};
  const std::uint8_t* codes = col.codes.data();
  if (rows.empty()) {
    for (std::size_t r = 0; r < col.codes.size(); ++r) {
      hist[codes[r]].add(labels[r] != 0, weights[r]);
    }
  } else {
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const std::uint32_t r = rows[i];
      hist[codes[r]].add(labels[r] != 0, weights[i]);
    }
  }

  const std::size_t n_finite = col.n_finite;
  WeightPair present;
  for (std::size_t b = 0; b < n_finite; ++b) {
    present.pos += hist[b].pos;
    present.neg += hist[b].neg;
  }
  const WeightPair missing = hist[n_finite];
  const double z_missing = block_z(missing);

  BinnedStumpResult best;
  best.z = std::numeric_limits<double>::infinity();
  best.stump.feature = feature;
  best.stump.categorical = col.categorical;

  if (col.categorical) {
    for (std::size_t g = 0; g < col.category_values.size(); ++g) {
      const WeightPair equal = hist[g];
      const WeightPair rest = present - equal;
      const double z = block_z(equal) + block_z(rest) + z_missing;
      if (z < best.z) {
        best.z = z;
        best.split_bin = static_cast<int>(g);
        best.stump.threshold = col.category_values[g];
        best.stump.score_pass = block_score(equal, smoothing);
        best.stump.score_fail = block_score(rest, smoothing);
        best.stump.score_missing = block_score(missing, smoothing);
      }
    }
    return best;
  }

  const auto consider = [&](float threshold, int split_bin,
                            const WeightPair& below) {
    const WeightPair above = present - below;
    const double z = block_z(below) + block_z(above) + z_missing;
    if (z < best.z) {
      best.z = z;
      best.split_bin = split_bin;
      best.stump.threshold = threshold;
      best.stump.score_fail = block_score(below, smoothing);
      best.stump.score_pass = block_score(above, smoothing);
      best.stump.score_missing = block_score(missing, smoothing);
    }
  };

  // The no-split stump (all present rows pass) first, matching the
  // exact scan's candidate order.
  consider(-std::numeric_limits<float>::infinity(), -1, WeightPair{});
  WeightPair below;
  for (std::size_t b = 0; b + 1 < n_finite; ++b) {
    below.pos += hist[b].pos;
    below.neg += hist[b].neg;
    consider(col.split_values[b], static_cast<int>(b), below);
  }
  return best;
}

}  // namespace

BinnedStumpResult find_best_stump_binned(const BinnedColumns& bins,
                                         std::span<const std::uint8_t> labels,
                                         std::span<const double> weights,
                                         std::span<const std::uint32_t> rows,
                                         double smoothing,
                                         const exec::ExecContext& exec) {
  BinnedStumpResult init;
  init.z = std::numeric_limits<double>::infinity();
  // Strict `<` in-chunk and `chunk < acc` across chunks: ties resolve
  // to the lowest bin/feature index, the serial scan's winner.
  return exec.parallel_reduce(
      0, bins.n_cols(), 0, init,
      [&](std::size_t b, std::size_t e) {
        BinnedStumpResult best;
        best.z = std::numeric_limits<double>::infinity();
        for (std::size_t j = b; j < e; ++j) {
          BinnedStumpResult candidate = scan_feature(
              bins.column(j), labels, weights, rows, smoothing, j);
          if (candidate.z < best.z) best = candidate;
        }
        return best;
      },
      [](BinnedStumpResult acc, BinnedStumpResult chunk) {
        return chunk.z < acc.z ? chunk : acc;
      });
}

}  // namespace nevermind::ml
