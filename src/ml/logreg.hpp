// Multivariate logistic regression via iteratively-reweighted least
// squares, with Wald standard errors and p-values.
//
// The paper uses logistic regression twice:
//   * Eq. 2 — the combined trouble-locator model stacks the disposition
//     classifier f_Cij and its parent-location classifier f_Ci· through
//     a 2-covariate logistic regression (coefficients gamma).
//   * Table 5 — `logit(#predictions) ~ outage(d, t, T)` quantifies the
//     correlation between per-DSLAM prediction counts and future outage
//     events, reporting coefficients and p-values.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace nevermind::ml {

struct LogisticModel {
  /// coefficients[0] is the intercept; the rest pair with covariates.
  std::vector<double> coefficients;
  std::vector<double> std_errors;
  std::vector<double> z_values;
  std::vector<double> p_values;
  bool converged = false;
  int iterations = 0;

  [[nodiscard]] double predict(std::span<const double> covariates) const;
};

/// Fit P(y=1 | x) = sigmoid(b0 + b . x). `rows` is row-major with
/// `n_covariates` entries per example. A small L2 ridge keeps the fit
/// defined under (quasi-)separation, which the Table-5 regressions can
/// exhibit on small DSLAM counts.
[[nodiscard]] LogisticModel fit_logistic(std::span<const double> rows,
                                         std::size_t n_covariates,
                                         std::span<const std::uint8_t> labels,
                                         double ridge = 1e-6,
                                         int max_iterations = 100);

/// Convenience for the common one-covariate case.
[[nodiscard]] LogisticModel fit_logistic_simple(
    std::span<const double> x, std::span<const std::uint8_t> labels);

}  // namespace nevermind::ml
