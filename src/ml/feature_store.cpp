#include "ml/feature_store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <memory>
#include <ostream>
#include <sstream>
#include <stdexcept>

// The payload is raw little-endian binary32/u32/u64; reading it back on
// a big-endian host would silently transpose every value, so the format
// is compiled out there rather than half-supported.
static_assert(std::endian::native == std::endian::little,
              "nmarena v1 is a little-endian format; port the byte-swapping "
              "before enabling it on this host");

namespace nevermind::ml {

namespace {

constexpr char kMagic[8] = {'N', 'M', 'A', 'R', 'E', 'N', 'A', '\0'};
/// v1: payload | labels | aux | meta. v2: v1 plus a trailing bin-code
/// section. A bin-less v2 write is forbidden by construction — writers
/// pick the version from whether set_bins was called, so files written
/// without bins stay byte-identical to pre-v2 builds.
constexpr std::uint32_t kVersionV1 = 1;
constexpr std::uint32_t kVersionBins = 2;
constexpr std::uint32_t kEndianTag = 0x01020304;
constexpr std::uint64_t kPayloadOffset = 128;  // preamble 16 + header 112
constexpr std::uint64_t kHeaderChecksumSpan = 120;  // bytes hashed into it

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a(const void* data, std::size_t n,
                    std::uint64_t hash = kFnvOffset) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    hash ^= p[i];
    hash *= kFnvPrime;
  }
  return hash;
}

/// Fixed header fields (bytes [16, 128) of the file). Section order is
/// payload | labels | aux | meta, every offset recorded explicitly so a
/// reader never has to trust arithmetic it did not verify.
struct Header {
  std::uint64_t n_rows = 0;
  std::uint64_t n_cols = 0;
  std::uint64_t n_aux = 0;
  std::uint64_t payload_offset = kPayloadOffset;
  std::uint64_t payload_size = 0;
  std::uint64_t labels_offset = 0;
  std::uint64_t aux_offset = 0;
  std::uint64_t meta_offset = 0;
  std::uint64_t meta_size = 0;
  std::uint64_t positives = 0;
  std::uint64_t labels_checksum = 0;
  std::uint64_t aux_checksum = 0;
  std::uint64_t meta_checksum = 0;
  std::uint64_t header_checksum = 0;  // FNV-1a of file bytes [0, 120)
};
static_assert(sizeof(Header) == 112, "header layout is part of the format");

void encode_head_block(const Header& header, std::uint32_t version,
                       unsigned char out[128]) {
  std::memcpy(out, kMagic, 8);
  std::memcpy(out + 8, &version, 4);
  std::memcpy(out + 12, &kEndianTag, 4);
  std::memcpy(out + 16, &header, sizeof(Header));
  const std::uint64_t checksum = fnv1a(out, kHeaderChecksumSpan);
  std::memcpy(out + kHeaderChecksumSpan, &checksum, 8);
}

void append_u16(std::string& out, std::uint16_t v) {
  out.append(reinterpret_cast<const char*>(&v), 2);
}
void append_u32(std::string& out, std::uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), 4);
}
void append_u64(std::string& out, std::uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), 8);
}

/// Serialized meta section: per-column (name, categorical, payload
/// checksum), aux names, opaque caller blob.
std::string encode_meta_section(const std::vector<ColumnInfo>& columns,
                                std::span<const std::uint64_t> col_hash,
                                std::span<const std::string> aux_names,
                                const std::string& meta) {
  std::string out;
  for (std::size_t j = 0; j < columns.size(); ++j) {
    append_u16(out, static_cast<std::uint16_t>(columns[j].name.size()));
    out.append(columns[j].name);
    out.push_back(columns[j].categorical ? '\1' : '\0');
    append_u64(out, col_hash[j]);
  }
  for (const std::string& name : aux_names) {
    append_u16(out, static_cast<std::uint16_t>(name.size()));
    out.append(name);
  }
  append_u32(out, static_cast<std::uint32_t>(meta.size()));
  out.append(meta);
  return out;
}

/// Serialized v2 bin-code section content (checksummed separately from
/// the meta section): u32 max_bins, u32 n_cols, then per column a u8
/// flag byte (bit0 categorical, bit1 overflow), u16 n_finite, the
/// length-prefixed split/category float lists, and n_rows uint8 codes.
std::string encode_bins_section(const BinnedColumns& bins) {
  std::string out;
  append_u32(out, static_cast<std::uint32_t>(bins.max_bins()));
  append_u32(out, static_cast<std::uint32_t>(bins.n_cols()));
  for (std::size_t j = 0; j < bins.n_cols(); ++j) {
    const BinnedColumns::Column& col = bins.column(j);
    const std::uint8_t flags = static_cast<std::uint8_t>(
        (col.categorical ? 1U : 0U) | (col.overflow ? 2U : 0U));
    out.push_back(static_cast<char>(flags));
    append_u16(out, col.n_finite);
    append_u32(out, static_cast<std::uint32_t>(col.split_values.size()));
    out.append(reinterpret_cast<const char*>(col.split_values.data()),
               col.split_values.size() * sizeof(float));
    append_u32(out, static_cast<std::uint32_t>(col.category_values.size()));
    out.append(reinterpret_cast<const char*>(col.category_values.data()),
               col.category_values.size() * sizeof(float));
    out.append(reinterpret_cast<const char*>(col.codes.data()),
               col.codes.size());
  }
  return out;
}

/// Cursor-checked parse + validation of a v2 bin-code section. Nullopt
/// on overrun, trailing garbage, dimensions that disagree with the
/// header, or codes outside a column's bin range.
std::optional<BinnedColumns> parse_bins_section(std::span<const char> bytes,
                                                std::size_t n_rows,
                                                std::size_t n_cols_expected) {
  std::size_t pos = 0;
  const auto take = [&](void* dst, std::size_t n) {
    if (n == 0) return true;  // empty float lists have a null data()
    if (bytes.size() - pos < n) return false;
    std::memcpy(dst, bytes.data() + pos, n);
    pos += n;
    return true;
  };
  std::uint32_t max_bins = 0;
  std::uint32_t n_cols = 0;
  if (!take(&max_bins, 4) || !take(&n_cols, 4)) return std::nullopt;
  if (max_bins == 0 || max_bins > 256 || n_cols != n_cols_expected) {
    return std::nullopt;
  }
  std::vector<BinnedColumns::Column> columns(n_cols);
  for (std::uint32_t j = 0; j < n_cols; ++j) {
    BinnedColumns::Column& col = columns[j];
    std::uint8_t flags = 0;
    std::uint16_t n_finite = 0;
    std::uint32_t n_split = 0;
    std::uint32_t n_cat = 0;
    if (!take(&flags, 1) || (flags & ~std::uint8_t{3}) != 0 ||
        !take(&n_finite, 2) || n_finite > 255) {
      return std::nullopt;
    }
    col.categorical = (flags & 1) != 0;
    col.overflow = (flags & 2) != 0;
    col.n_finite = n_finite;
    if (!take(&n_split, 4)) return std::nullopt;
    const std::uint32_t want_split =
        col.categorical ? 0U : (n_finite > 0 ? n_finite - 1U : 0U);
    if (n_split != want_split) return std::nullopt;
    col.split_values.resize(n_split);
    if (!take(col.split_values.data(), n_split * sizeof(float))) {
      return std::nullopt;
    }
    if (!take(&n_cat, 4)) return std::nullopt;
    if (col.categorical ? n_cat > n_finite : n_cat != 0) return std::nullopt;
    col.category_values.resize(n_cat);
    if (!take(col.category_values.data(), n_cat * sizeof(float))) {
      return std::nullopt;
    }
    if (bytes.size() - pos < n_rows) return std::nullopt;
    col.codes.assign(bytes.data() + pos, bytes.data() + pos + n_rows);
    pos += n_rows;
    for (const std::uint8_t code : col.codes) {
      if (code > n_finite) return std::nullopt;  // past the missing bin
    }
  }
  if (pos != bytes.size()) return std::nullopt;  // trailing garbage
  return BinnedColumns(n_rows, max_bins, std::move(columns));
}

struct MetaSection {
  std::vector<ColumnInfo> columns;
  std::vector<std::uint64_t> col_hash;
  std::vector<std::string> aux_names;
  std::string meta;
};

/// Cursor-checked parse of the meta section; nullopt on any overrun or
/// trailing garbage.
std::optional<MetaSection> parse_meta_section(std::span<const char> bytes,
                                              std::size_t n_cols,
                                              std::size_t n_aux) {
  MetaSection out;
  std::size_t pos = 0;
  const auto take = [&](void* dst, std::size_t n) {
    if (bytes.size() - pos < n) return false;
    std::memcpy(dst, bytes.data() + pos, n);
    pos += n;
    return true;
  };
  const auto take_string = [&](std::string& dst, std::size_t n) {
    if (bytes.size() - pos < n) return false;
    dst.assign(bytes.data() + pos, n);
    pos += n;
    return true;
  };
  for (std::size_t j = 0; j < n_cols; ++j) {
    std::uint16_t len = 0;
    ColumnInfo info;
    std::uint8_t categorical = 0;
    std::uint64_t hash = 0;
    if (!take(&len, 2) || !take_string(info.name, len) ||
        !take(&categorical, 1) || !take(&hash, 8)) {
      return std::nullopt;
    }
    info.categorical = categorical != 0;
    out.columns.push_back(std::move(info));
    out.col_hash.push_back(hash);
  }
  for (std::size_t a = 0; a < n_aux; ++a) {
    std::uint16_t len = 0;
    std::string name;
    if (!take(&len, 2) || !take_string(name, len)) return std::nullopt;
    out.aux_names.push_back(std::move(name));
  }
  std::uint32_t meta_len = 0;
  if (!take(&meta_len, 4) || !take_string(out.meta, meta_len)) {
    return std::nullopt;
  }
  if (pos != bytes.size()) return std::nullopt;  // trailing garbage
  return out;
}

void fail(StoreStatus* status, StoreError code, std::string message) {
  if (status != nullptr) {
    status->code = code;
    status->message = std::move(message);
  }
}

struct Fd {
  int fd = -1;
  ~Fd() {
    if (fd >= 0) ::close(fd);
  }
};

/// RAII mapping; shared_ptr copies of this keep a file-backed arena's
/// pages alive after the StoredArena (and the fd) are gone.
struct MappedFile {
  void* base = MAP_FAILED;
  std::size_t size = 0;
  ~MappedFile() {
    if (base != MAP_FAILED) ::munmap(base, size);
  }
};

bool pread_all(int fd, void* dst, std::size_t n, std::uint64_t offset) {
  auto* out = static_cast<unsigned char*>(dst);
  while (n > 0) {
    const ::ssize_t got = ::pread(fd, out, n, static_cast<::off_t>(offset));
    if (got <= 0) return false;
    out += got;
    offset += static_cast<std::uint64_t>(got);
    n -= static_cast<std::size_t>(got);
  }
  return true;
}

}  // namespace

const char* store_error_name(StoreError e) noexcept {
  switch (e) {
    case StoreError::kOk: return "ok";
    case StoreError::kIoError: return "io-error";
    case StoreError::kTruncatedHeader: return "truncated-header";
    case StoreError::kBadMagic: return "bad-magic";
    case StoreError::kBadVersion: return "bad-version";
    case StoreError::kBadEndian: return "bad-endian";
    case StoreError::kShortFile: return "short-file";
    case StoreError::kChecksumMismatch: return "checksum-mismatch";
    case StoreError::kMalformedHeader: return "malformed-header";
    case StoreError::kMalformedMeta: return "malformed-meta";
    case StoreError::kRowCountMismatch: return "row-count-mismatch";
    case StoreError::kMalformedBins: return "malformed-bins";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Streaming writer
// ---------------------------------------------------------------------------

ArenaStreamWriter::ArenaStreamWriter(std::string path,
                                     std::vector<ColumnInfo> columns,
                                     std::size_t n_rows,
                                     std::size_t chunk_rows)
    : path_(std::move(path)),
      columns_(std::move(columns)),
      n_rows_(n_rows),
      chunk_rows_(std::max<std::size_t>(chunk_rows, 1)) {
  if (n_rows_ > (std::uint64_t{1} << 40) ||
      columns_.size() > (std::uint64_t{1} << 24)) {
    throw std::invalid_argument("ArenaStreamWriter: implausible dimensions");
  }
  for (const ColumnInfo& col : columns_) {
    if (col.name.size() > std::numeric_limits<std::uint16_t>::max()) {
      throw std::invalid_argument("ArenaStreamWriter: column name too long");
    }
  }
  chunk_.resize(columns_.size() * chunk_rows_);
  labels_.reserve(n_rows_);
  col_hash_.assign(columns_.size(), kFnvOffset);
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  file_ = f;
  if (f == nullptr) {
    io_failed_ = true;
    return;
  }
  // Reserve the head block so the payload lands 64-byte aligned at 128;
  // the real header is rewritten over it by finish().
  const unsigned char zeros[kPayloadOffset] = {};
  io_failed_ = std::fwrite(zeros, 1, sizeof(zeros), f) != sizeof(zeros);
}

ArenaStreamWriter::~ArenaStreamWriter() {
  if (file_ != nullptr) std::fclose(static_cast<std::FILE*>(file_));
}

void ArenaStreamWriter::append(std::span<const float> features,
                               bool positive) {
  if (finished_) {
    throw std::logic_error("ArenaStreamWriter::append after finish");
  }
  if (features.size() != columns_.size()) {
    throw std::logic_error("ArenaStreamWriter::append: feature count mismatch");
  }
  if (appended_ == n_rows_) {
    throw std::logic_error(
        "ArenaStreamWriter::append: more rows than declared");
  }
  for (std::size_t j = 0; j < features.size(); ++j) {
    chunk_[j * chunk_rows_ + chunk_fill_] = features[j];
  }
  labels_.push_back(positive ? 1 : 0);
  ++appended_;
  if (++chunk_fill_ == chunk_rows_) flush_chunk();
}

void ArenaStreamWriter::flush_chunk() {
  if (chunk_fill_ == 0 || io_failed_) {
    chunk_fill_ = 0;
    return;
  }
  auto* f = static_cast<std::FILE*>(file_);
  for (std::size_t j = 0; j < columns_.size() && !io_failed_; ++j) {
    const std::uint64_t offset =
        kPayloadOffset +
        (static_cast<std::uint64_t>(j) * n_rows_ + flushed_) * sizeof(float);
    const float* src = chunk_.data() + j * chunk_rows_;
    io_failed_ = ::fseeko(f, static_cast<::off_t>(offset), SEEK_SET) != 0 ||
                 std::fwrite(src, sizeof(float), chunk_fill_, f) != chunk_fill_;
    col_hash_[j] = fnv1a(src, chunk_fill_ * sizeof(float), col_hash_[j]);
  }
  flushed_ += chunk_fill_;
  chunk_fill_ = 0;
}

void ArenaStreamWriter::set_meta(std::string meta) { meta_ = std::move(meta); }

void ArenaStreamWriter::add_aux(const std::string& name,
                                std::span<const std::uint32_t> values) {
  if (finished_) {
    throw std::logic_error("ArenaStreamWriter::add_aux after finish");
  }
  if (values.size() != n_rows_ ||
      name.size() > std::numeric_limits<std::uint16_t>::max()) {
    throw std::logic_error("ArenaStreamWriter::add_aux: bad aux array");
  }
  aux_names_.push_back(name);
  aux_.emplace_back(values.begin(), values.end());
}

void ArenaStreamWriter::set_bins(const BinnedColumns& bins) {
  if (finished_) {
    throw std::logic_error("ArenaStreamWriter::set_bins after finish");
  }
  if (bins.n_rows() != n_rows_ || bins.n_cols() != columns_.size()) {
    throw std::logic_error(
        "ArenaStreamWriter::set_bins: bins do not cover the declared matrix");
  }
  bins_section_ = encode_bins_section(bins);
  has_bins_ = true;
}

StoreStatus ArenaStreamWriter::finish() {
  if (finished_) {
    throw std::logic_error("ArenaStreamWriter::finish called twice");
  }
  finished_ = true;
  flush_chunk();
  auto* f = static_cast<std::FILE*>(file_);
  if (appended_ != n_rows_) {
    return {StoreError::kRowCountMismatch,
            "wrote " + std::to_string(appended_) + " rows, declared " +
                std::to_string(n_rows_)};
  }

  Header header;
  header.n_rows = n_rows_;
  header.n_cols = columns_.size();
  header.n_aux = aux_.size();
  header.payload_size =
      static_cast<std::uint64_t>(n_rows_) * columns_.size() * sizeof(float);
  header.labels_offset = kPayloadOffset + header.payload_size;
  header.aux_offset = header.labels_offset + n_rows_;
  header.meta_offset =
      header.aux_offset +
      static_cast<std::uint64_t>(aux_.size()) * n_rows_ * sizeof(std::uint32_t);
  for (const std::uint8_t l : labels_) header.positives += l != 0 ? 1 : 0;
  header.labels_checksum = fnv1a(labels_.data(), labels_.size());

  std::uint64_t aux_hash = kFnvOffset;
  const std::string meta_section =
      encode_meta_section(columns_, col_hash_, aux_names_, meta_);
  header.meta_size = meta_section.size();
  header.meta_checksum = fnv1a(meta_section.data(), meta_section.size());

  if (!io_failed_ && f != nullptr) {
    io_failed_ =
        ::fseeko(f, static_cast<::off_t>(header.labels_offset), SEEK_SET) != 0;
    if (!io_failed_ && !labels_.empty()) {
      io_failed_ =
          std::fwrite(labels_.data(), 1, labels_.size(), f) != labels_.size();
    }
    for (const auto& values : aux_) {
      if (io_failed_) break;
      aux_hash =
          fnv1a(values.data(), values.size() * sizeof(std::uint32_t), aux_hash);
      if (!values.empty()) {
        io_failed_ = std::fwrite(values.data(), sizeof(std::uint32_t),
                                 values.size(), f) != values.size();
      }
    }
    header.aux_checksum = aux_hash;
    if (!io_failed_ && !meta_section.empty()) {
      io_failed_ = std::fwrite(meta_section.data(), 1, meta_section.size(),
                               f) != meta_section.size();
    }
    if (!io_failed_ && has_bins_) {
      // v2 trailing section: [u64 size][u64 checksum][content], right
      // after the meta section (file position is already there).
      const std::uint64_t bins_size = bins_section_.size();
      const std::uint64_t bins_checksum =
          fnv1a(bins_section_.data(), bins_section_.size());
      io_failed_ = std::fwrite(&bins_size, 8, 1, f) != 1 ||
                   std::fwrite(&bins_checksum, 8, 1, f) != 1 ||
                   std::fwrite(bins_section_.data(), 1, bins_section_.size(),
                               f) != bins_section_.size();
    }
    unsigned char head[kPayloadOffset];
    encode_head_block(header, has_bins_ ? kVersionBins : kVersionV1, head);
    io_failed_ = io_failed_ || ::fseeko(f, 0, SEEK_SET) != 0 ||
                 std::fwrite(head, 1, sizeof(head), f) != sizeof(head) ||
                 std::fflush(f) != 0;
  }
  if (f != nullptr) {
    io_failed_ = (std::fclose(f) != 0) || io_failed_;
    file_ = nullptr;
  }
  if (io_failed_) {
    return {StoreError::kIoError, "write failed for " + path_ +
                                      (errno != 0 ? std::string(": ") +
                                                        std::strerror(errno)
                                                  : std::string())};
  }
  return {};
}

// ---------------------------------------------------------------------------
// Binary readers
// ---------------------------------------------------------------------------

std::optional<StoredArena> load_arena(const std::string& path,
                                      const ArenaLoadOptions& options,
                                      StoreStatus* status) {
  if (status != nullptr) *status = {};
  Fd file;
  file.fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (file.fd < 0) {
    fail(status, StoreError::kIoError,
         "cannot open " + path + ": " + std::strerror(errno));
    return std::nullopt;
  }
  struct ::stat st{};
  if (::fstat(file.fd, &st) != 0) {
    fail(status, StoreError::kIoError,
         "cannot stat " + path + ": " + std::strerror(errno));
    return std::nullopt;
  }
  const auto file_size = static_cast<std::uint64_t>(st.st_size);
  if (file_size < kPayloadOffset) {
    fail(status, StoreError::kTruncatedHeader,
         path + " is shorter than the nmarena header (" +
             std::to_string(file_size) + " bytes)");
    return std::nullopt;
  }

  unsigned char head[kPayloadOffset];
  if (!pread_all(file.fd, head, sizeof(head), 0)) {
    fail(status, StoreError::kIoError, "cannot read header of " + path);
    return std::nullopt;
  }
  if (std::memcmp(head, kMagic, sizeof(kMagic)) != 0) {
    fail(status, StoreError::kBadMagic,
         path + " is not an nmarena artefact (bad magic)");
    return std::nullopt;
  }
  std::uint32_t version = 0;
  std::uint32_t endian_tag = 0;
  std::memcpy(&version, head + 8, 4);
  std::memcpy(&endian_tag, head + 12, 4);
  if (version != kVersionV1 && version != kVersionBins) {
    fail(status, StoreError::kBadVersion,
         path + " is nmarena v" + std::to_string(version) +
             "; this build reads v1 and v2");
    return std::nullopt;
  }
  if (endian_tag != kEndianTag) {
    fail(status, StoreError::kBadEndian,
         path + " was written by a foreign-endian host");
    return std::nullopt;
  }
  Header header;
  std::memcpy(&header, head + 16, sizeof(Header));
  if (fnv1a(head, kHeaderChecksumSpan) != header.header_checksum) {
    fail(status, StoreError::kChecksumMismatch,
         "header checksum mismatch in " + path);
    return std::nullopt;
  }

  // Recompute every derived offset; a header that disagrees with its
  // own dimensions is malformed even with a valid checksum.
  const std::uint64_t n_rows = header.n_rows;
  const std::uint64_t n_cols = header.n_cols;
  const std::uint64_t n_aux = header.n_aux;
  if (n_rows > (std::uint64_t{1} << 40) || n_cols > (std::uint64_t{1} << 24) ||
      n_aux > (std::uint64_t{1} << 16) ||
      header.meta_size > (std::uint64_t{1} << 32)) {
    fail(status, StoreError::kMalformedHeader,
         "implausible dimensions in " + path);
    return std::nullopt;
  }
  const std::uint64_t payload_size = n_rows * n_cols * sizeof(float);
  if (header.payload_offset != kPayloadOffset ||
      header.payload_size != payload_size ||
      header.labels_offset != kPayloadOffset + payload_size ||
      header.aux_offset != header.labels_offset + n_rows ||
      header.meta_offset !=
          header.aux_offset + n_aux * n_rows * sizeof(std::uint32_t) ||
      header.positives > n_rows) {
    fail(status, StoreError::kMalformedHeader,
         "inconsistent section layout in " + path);
    return std::nullopt;
  }
  std::uint64_t expected_end = header.meta_offset + header.meta_size;
  std::uint64_t bins_offset = 0;
  std::uint64_t bins_size = 0;
  std::uint64_t bins_checksum = 0;
  if (version == kVersionBins) {
    // The v2 bins subheader sits right after the meta section.
    if (file_size < expected_end + 16) {
      fail(status, StoreError::kShortFile,
           path + " is " + std::to_string(file_size) +
               " bytes but declares a v2 bins subheader at " +
               std::to_string(expected_end));
      return std::nullopt;
    }
    unsigned char bins_head[16];
    if (!pread_all(file.fd, bins_head, sizeof(bins_head), expected_end)) {
      fail(status, StoreError::kIoError,
           "cannot read bins subheader of " + path);
      return std::nullopt;
    }
    std::memcpy(&bins_size, bins_head, 8);
    std::memcpy(&bins_checksum, bins_head + 8, 8);
    if (bins_size > (std::uint64_t{1} << 40)) {
      fail(status, StoreError::kMalformedBins,
           "implausible bins section size in " + path);
      return std::nullopt;
    }
    bins_offset = expected_end + 16;
    expected_end = bins_offset + bins_size;
  }
  if (file_size < expected_end) {
    fail(status, StoreError::kShortFile,
         path + " is " + std::to_string(file_size) + " bytes but declares " +
             std::to_string(expected_end));
    return std::nullopt;
  }
  if (file_size != expected_end) {
    // Strict end for every version: v1 files cannot carry trailing
    // (unverified) bytes — a would-be bins section on a v1 file is a
    // malformed artefact, not an ignorable extension.
    fail(status, StoreError::kMalformedHeader,
         path + " has " + std::to_string(file_size - expected_end) +
             " trailing bytes past its declared sections");
    return std::nullopt;
  }

  std::vector<char> meta_bytes(header.meta_size);
  if (!pread_all(file.fd, meta_bytes.data(), meta_bytes.size(),
                 header.meta_offset)) {
    fail(status, StoreError::kIoError, "cannot read meta section of " + path);
    return std::nullopt;
  }
  if (fnv1a(meta_bytes.data(), meta_bytes.size()) != header.meta_checksum) {
    fail(status, StoreError::kChecksumMismatch,
         "meta section checksum mismatch in " + path);
    return std::nullopt;
  }
  auto meta = parse_meta_section(meta_bytes, n_cols, n_aux);
  if (!meta.has_value()) {
    fail(status, StoreError::kMalformedMeta,
         "meta section of " + path + " does not parse");
    return std::nullopt;
  }

  // Aux arrays are always copied out (they are small and the file
  // section carries no alignment guarantee for in-place u32 reads).
  std::uint64_t aux_hash = kFnvOffset;
  std::vector<std::vector<std::uint32_t>> aux(n_aux);
  for (std::uint64_t a = 0; a < n_aux; ++a) {
    aux[a].resize(n_rows);
    const std::uint64_t offset =
        header.aux_offset + a * n_rows * sizeof(std::uint32_t);
    if (n_rows > 0 && !pread_all(file.fd, aux[a].data(),
                                 n_rows * sizeof(std::uint32_t), offset)) {
      fail(status, StoreError::kIoError, "cannot read aux section of " + path);
      return std::nullopt;
    }
    aux_hash =
        fnv1a(aux[a].data(), n_rows * sizeof(std::uint32_t), aux_hash);
  }
  if (aux_hash != header.aux_checksum) {
    fail(status, StoreError::kChecksumMismatch,
         "aux section checksum mismatch in " + path);
    return std::nullopt;
  }

  StoredArena out;
  out.aux_names = std::move(meta->aux_names);
  out.aux = std::move(aux);
  out.meta = std::move(meta->meta);

  if (version == kVersionBins) {
    // Bins are always copied out into aligned heap vectors (the kernel
    // arms want 64-byte-aligned code streams; the file section makes no
    // alignment promise), so eager and mapped loads share this path.
    std::vector<char> bins_bytes(bins_size);
    if (bins_size > 0 && !pread_all(file.fd, bins_bytes.data(),
                                    bins_bytes.size(), bins_offset)) {
      fail(status, StoreError::kIoError, "cannot read bins section of " + path);
      return std::nullopt;
    }
    if (fnv1a(bins_bytes.data(), bins_bytes.size()) != bins_checksum) {
      fail(status, StoreError::kChecksumMismatch,
           "bins section checksum mismatch in " + path);
      return std::nullopt;
    }
    auto bins = parse_bins_section(bins_bytes, n_rows, n_cols);
    if (!bins.has_value()) {
      fail(status, StoreError::kMalformedBins,
           "bins section of " + path + " does not parse");
      return std::nullopt;
    }
    out.bins = std::make_shared<const BinnedColumns>(std::move(*bins));
  }

  if (options.mode == ArenaLoadMode::kEager) {
    std::vector<std::uint8_t> labels(n_rows);
    if (n_rows > 0 && !pread_all(file.fd, labels.data(), labels.size(),
                                 header.labels_offset)) {
      fail(status, StoreError::kIoError, "cannot read labels of " + path);
      return std::nullopt;
    }
    if (fnv1a(labels.data(), labels.size()) != header.labels_checksum) {
      fail(status, StoreError::kChecksumMismatch,
           "label block checksum mismatch in " + path);
      return std::nullopt;
    }
    std::vector<float> payload(n_rows * n_cols);
    if (payload_size > 0 && !pread_all(file.fd, payload.data(), payload_size,
                                       kPayloadOffset)) {
      fail(status, StoreError::kIoError, "cannot read payload of " + path);
      return std::nullopt;
    }
    for (std::uint64_t j = 0; j < n_cols; ++j) {
      if (fnv1a(payload.data() + j * n_rows, n_rows * sizeof(float)) !=
          meta->col_hash[j]) {
        fail(status, StoreError::kChecksumMismatch,
             "payload checksum mismatch in column " + std::to_string(j) +
                 " ('" + meta->columns[j].name + "') of " + path);
        return std::nullopt;
      }
    }
    out.arena = FeatureArena(std::move(meta->columns), n_rows,
                             std::move(payload), std::move(labels));
  } else {
    auto mapping = std::make_shared<MappedFile>();
    mapping->size = file_size;
    mapping->base =
        ::mmap(nullptr, file_size, PROT_READ, MAP_PRIVATE, file.fd, 0);
    if (mapping->base == MAP_FAILED) {
      fail(status, StoreError::kIoError,
           "cannot mmap " + path + ": " + std::strerror(errno));
      return std::nullopt;
    }
    const auto* base = static_cast<const unsigned char*>(mapping->base);
    const auto* labels =
        reinterpret_cast<const std::uint8_t*>(base + header.labels_offset);
    if (fnv1a(labels, n_rows) != header.labels_checksum) {
      fail(status, StoreError::kChecksumMismatch,
           "label block checksum mismatch in " + path);
      return std::nullopt;
    }
    const auto* payload =
        reinterpret_cast<const float*>(base + kPayloadOffset);
    if (options.verify_payload) {
      for (std::uint64_t j = 0; j < n_cols; ++j) {
        if (fnv1a(payload + j * n_rows, n_rows * sizeof(float)) !=
            meta->col_hash[j]) {
          fail(status, StoreError::kChecksumMismatch,
               "payload checksum mismatch in column " + std::to_string(j) +
                   " ('" + meta->columns[j].name + "') of " + path);
          return std::nullopt;
        }
      }
    }
    out.arena = FeatureArena::map_external(std::move(meta->columns), n_rows,
                                           payload, labels,
                                           std::move(mapping));
  }
  if (out.arena.positives() != header.positives) {
    fail(status, StoreError::kMalformedHeader,
         "positive-label count disagrees with the header in " + path);
    return std::nullopt;
  }
  return out;
}

StoreStatus save_arena(const std::string& path, const FeatureArena& arena,
                       std::span<const std::string> aux_names,
                       std::span<const std::vector<std::uint32_t>> aux,
                       const std::string& meta, const BinnedColumns* bins) {
  ArenaStreamWriter writer(path, arena.columns(), arena.n_rows());
  std::vector<float> row(arena.n_cols());
  for (std::size_t r = 0; r < arena.n_rows(); ++r) {
    for (std::size_t j = 0; j < arena.n_cols(); ++j) {
      row[j] = arena.value(r, j);
    }
    writer.append(row, arena.label(r));
  }
  for (std::size_t a = 0; a < aux_names.size() && a < aux.size(); ++a) {
    writer.add_aux(aux_names[a], aux[a]);
  }
  writer.set_meta(meta);
  if (bins != nullptr) writer.set_bins(*bins);
  return writer.finish();
}

// ---------------------------------------------------------------------------
// Text fallback
// ---------------------------------------------------------------------------

void save_arena_text(std::ostream& os, const FeatureArena& arena,
                     std::span<const std::string> aux_names,
                     std::span<const std::vector<std::uint32_t>> aux,
                     const std::string& meta) {
  os << "nmdataset v1\n";
  os << "meta " << meta.size() << '\n';
  os.write(meta.data(), static_cast<std::streamsize>(meta.size()));
  os << '\n';
  os << "columns " << arena.n_cols() << '\n';
  for (std::size_t j = 0; j < arena.n_cols(); ++j) {
    const ColumnInfo& col = arena.column_info(j);
    os << col.name << ' ' << (col.categorical ? 1 : 0) << '\n';
  }
  const std::size_t n_aux = std::min(aux_names.size(), aux.size());
  os << "aux " << n_aux;
  for (std::size_t a = 0; a < n_aux; ++a) os << ' ' << aux_names[a];
  os << '\n';
  os << "rows " << arena.n_rows() << " positives " << arena.positives()
     << '\n';
  os.precision(std::numeric_limits<float>::max_digits10);
  for (std::size_t r = 0; r < arena.n_rows(); ++r) {
    os << (arena.label(r) ? 1 : 0);
    for (std::size_t a = 0; a < n_aux; ++a) os << ' ' << aux[a][r];
    for (std::size_t j = 0; j < arena.n_cols(); ++j) {
      const float v = arena.value(r, j);
      if (is_missing(v)) {
        os << " NA";
      } else {
        os << ' ' << v;
      }
    }
    os << '\n';
  }
}

std::optional<StoredArena> load_arena_text(std::istream& is,
                                           StoreStatus* status) {
  if (status != nullptr) *status = {};
  const auto give_up = [&](StoreError code, std::string message)
      -> std::optional<StoredArena> {
    fail(status, code, std::move(message));
    return std::nullopt;
  };
  std::string magic;
  std::string version;
  if (!(is >> magic >> version) || magic != "nmdataset") {
    return give_up(StoreError::kBadMagic,
                   "not an nmdataset text artefact (bad magic)");
  }
  if (version != "v1") {
    return give_up(StoreError::kBadVersion, "unsupported nmdataset version '" +
                                                version +
                                                "' (this build reads v1)");
  }
  std::string tag;
  std::size_t meta_len = 0;
  if (!(is >> tag >> meta_len) || tag != "meta" ||
      meta_len > (std::size_t{1} << 32)) {
    return give_up(StoreError::kMalformedMeta, "malformed meta header");
  }
  is.get();  // the newline after the byte count
  StoredArena out;
  out.meta.resize(meta_len);
  if (meta_len > 0 &&
      !is.read(out.meta.data(), static_cast<std::streamsize>(meta_len))) {
    return give_up(StoreError::kShortFile, "truncated meta blob");
  }

  std::size_t n_cols = 0;
  if (!(is >> tag >> n_cols) || tag != "columns" ||
      n_cols > (std::size_t{1} << 24)) {
    return give_up(StoreError::kMalformedMeta, "malformed column header");
  }
  std::vector<ColumnInfo> columns(n_cols);
  for (std::size_t j = 0; j < n_cols; ++j) {
    int categorical = 0;
    if (!(is >> columns[j].name >> categorical)) {
      return give_up(StoreError::kShortFile, "truncated column list");
    }
    columns[j].categorical = categorical != 0;
  }

  std::size_t n_aux = 0;
  if (!(is >> tag >> n_aux) || tag != "aux" || n_aux > (std::size_t{1} << 16)) {
    return give_up(StoreError::kMalformedMeta, "malformed aux header");
  }
  out.aux_names.resize(n_aux);
  for (std::size_t a = 0; a < n_aux; ++a) {
    if (!(is >> out.aux_names[a])) {
      return give_up(StoreError::kShortFile, "truncated aux name list");
    }
  }

  std::size_t n_rows = 0;
  std::size_t positives = 0;
  std::string positives_tag;
  if (!(is >> tag >> n_rows >> positives_tag >> positives) || tag != "rows" ||
      positives_tag != "positives" || n_rows > (std::size_t{1} << 40) ||
      positives > n_rows) {
    return give_up(StoreError::kMalformedMeta, "malformed row header");
  }

  std::vector<float> payload(n_cols * n_rows);
  std::vector<std::uint8_t> labels(n_rows);
  out.aux.assign(n_aux, std::vector<std::uint32_t>(n_rows));
  std::string token;
  for (std::size_t r = 0; r < n_rows; ++r) {
    int label = 0;
    if (!(is >> label) || (label != 0 && label != 1)) {
      return give_up(StoreError::kShortFile,
                     "truncated or malformed row " + std::to_string(r));
    }
    labels[r] = static_cast<std::uint8_t>(label);
    for (std::size_t a = 0; a < n_aux; ++a) {
      if (!(is >> out.aux[a][r])) {
        return give_up(StoreError::kShortFile,
                       "truncated aux values in row " + std::to_string(r));
      }
    }
    for (std::size_t j = 0; j < n_cols; ++j) {
      if (!(is >> token)) {
        return give_up(StoreError::kShortFile,
                       "truncated features in row " + std::to_string(r));
      }
      if (token == "NA") {
        payload[j * n_rows + r] = kMissing;
      } else {
        // strtof rather than std::stof: glibc flags subnormal results
        // with ERANGE even though the returned denormal is the correctly
        // rounded value, and stof turns that into a throw.
        char* end = nullptr;
        const float v = std::strtof(token.c_str(), &end);
        if (end != token.c_str() + token.size()) {
          // A half-parsed final token means the file was cut mid-number,
          // not that the content is foreign.
          if (is.eof()) {
            return give_up(StoreError::kShortFile,
                           "truncated features in row " + std::to_string(r));
          }
          return give_up(StoreError::kMalformedMeta,
                         "non-numeric feature value '" + token + "' in row " +
                             std::to_string(r));
        }
        payload[j * n_rows + r] = v;
      }
    }
  }
  out.arena = FeatureArena(std::move(columns), n_rows, std::move(payload),
                           std::move(labels));
  if (out.arena.positives() != positives) {
    return give_up(StoreError::kMalformedMeta,
                   "positive-label count disagrees with the row header");
  }
  return out;
}

// ---------------------------------------------------------------------------
// Format sniffing
// ---------------------------------------------------------------------------

bool is_arena_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  char magic[sizeof(kMagic)] = {};
  if (!is.read(magic, sizeof(magic))) return false;
  return std::memcmp(magic, kMagic, sizeof(kMagic)) == 0;
}

std::optional<StoredArena> load_arena_auto(const std::string& path,
                                           const ArenaLoadOptions& options,
                                           StoreStatus* status) {
  if (is_arena_file(path)) return load_arena(path, options, status);
  std::ifstream is(path);
  if (!is) {
    if (status != nullptr) {
      *status = {StoreError::kIoError,
                 "cannot open " + path + ": " + std::strerror(errno)};
    }
    return std::nullopt;
  }
  return load_arena_text(is, status);
}

}  // namespace nevermind::ml
