// k-fold cross-validation utilities.
//
// The paper fixes both of its capacity knobs by cross-validation: "The
// number of iterations is set to 800 based on cross-validation" for the
// ticket predictor and 200 for the locator. This module provides the
// fold machinery plus a ready-made boosting-rounds selector.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "ml/adaboost.hpp"
#include "ml/dataset.hpp"

namespace nevermind::ml {

struct Fold {
  std::vector<std::size_t> train_rows;
  std::vector<std::size_t> validation_rows;
};

/// Deterministic k folds: row i goes to validation fold (i * k) / n —
/// contiguous blocks, which respects the (line, week) ordering of
/// encoded blocks better than a random shuffle would (adjacent weeks
/// stay together instead of leaking across the split).
[[nodiscard]] std::vector<Fold> make_folds(std::size_t n_rows,
                                           std::size_t k_folds);

/// Mean validation metric of a model family across folds. `train_eval`
/// receives (train set, validation set) and returns the metric (higher
/// is better). Folds run in parallel under `exec` and their metrics are
/// summed in fold order, so the mean is byte-identical to serial
/// (train_eval must be safe to call concurrently on distinct folds).
[[nodiscard]] double cross_validate(
    const DatasetView& data, std::size_t k_folds,
    const std::function<double(const DatasetView&, const DatasetView&)>&
        train_eval,
    const exec::ExecContext& exec = exec::ExecContext::serial());

struct RoundsSelection {
  std::size_t best_rounds = 0;
  /// Mean validation metric per candidate, parallel to the input list.
  std::vector<double> metric_per_candidate;
};

/// Pick the boosting-rounds count the way the paper does: k-fold CV
/// over candidate values, scored by top-N average precision on the
/// held-out folds. `boost` carries the training knobs (its iteration
/// count is overridden by the largest candidate). On the histogram
/// path the bin codes are built ONCE on the full matrix and every fold
/// trains through a row subset of them; the exact path trains each
/// fold through a row-subset view — neither copies the matrix.
[[nodiscard]] RoundsSelection select_boosting_rounds(
    const DatasetView& data, std::span<const std::size_t> candidates,
    std::size_t top_n, std::size_t k_folds = 3,
    const exec::ExecContext& exec = exec::ExecContext::serial(),
    const BStumpConfig& boost = {});

}  // namespace nevermind::ml
