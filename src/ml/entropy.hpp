// Entropy-based feature scoring: the "Gain ratio" baseline of Table 4
// ("the total entropy decrease of the result attribute by knowing one
// particular feature", normalized by the feature's intrinsic value).
// Continuous features are discretized into equal-frequency bins.
#pragma once

#include <cstdint>
#include <span>

#include "ml/dataset.hpp"

namespace nevermind::ml {

/// Shannon entropy (bits) of a binary label distribution.
[[nodiscard]] double binary_entropy(std::size_t positives, std::size_t total);

struct GainScores {
  double information_gain = 0.0;
  double intrinsic_value = 0.0;
  double gain_ratio = 0.0;
};

/// Information gain / intrinsic value / gain ratio of one feature
/// against the labels. Missing values form their own bin. `bins` is the
/// number of equal-frequency bins for continuous features; categorical
/// callers should pre-map values to small integers and pass them as-is
/// (each distinct value lands in its own bin when bins >= cardinality).
[[nodiscard]] GainScores gain_ratio(const ColumnView& values,
                                    std::span<const std::uint8_t> labels,
                                    std::size_t bins = 10);

}  // namespace nevermind::ml
