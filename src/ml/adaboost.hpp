// BStump: confidence-rated AdaBoost over decision stumps, the paper's
// model of choice (Section 4.4; it cites Boostexter [16] as the
// implementation). The ensemble is a *linear* model over stump
// indicators, which is what makes it robust to the label noise inherent
// in using customer tickets as ground truth.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "ml/binning.hpp"
#include "ml/dataset.hpp"
#include "ml/stump.hpp"

namespace nevermind::ml {

/// Which per-round split search train_bstump runs.
enum class BinningMode : std::uint8_t {
  /// Full sorted-index scan per feature — the original path, kept the
  /// default and byte-identical to the pre-binning implementation.
  kExact = 0,
  /// Quantized columns + per-feature weight histograms: O(N) sequential
  /// adds over uint8 bin codes and a <=256-bin threshold scan per
  /// feature per round. Identical split candidates whenever a column
  /// has fewer distinct values than bins; otherwise quantile-binned.
  kHistogram,
};

struct BStumpConfig {
  /// Number of boosting rounds T (the paper uses 800 for the ticket
  /// predictor and 200 for the locator, both by cross-validation).
  std::size_t iterations = 200;
  /// Epsilon in the confidence-rated score 0.5 ln((W+ + eps)/(W- + eps)).
  /// Non-positive means "auto": 0.5 / n_rows, Boostexter's default scale.
  double smoothing = -1.0;
  /// Stop early if the best weak learner's Z exceeds this (no learner
  /// better than chance). 1.0 disables nothing since Z <= 1 for a
  /// useful stump on normalized weights.
  double z_stop = 0.999999;
  /// Split-search path; see BinningMode.
  BinningMode binning = BinningMode::kExact;
  /// Quantization knobs of the histogram path.
  BinningConfig binning_config;
  /// Execution context for column indexing and the per-round stump
  /// search. The ensemble is byte-identical at every thread count; the
  /// default serial context is the exact pre-exec-layer path.
  exec::ExecContext exec;
};

/// Immutable per-matrix training caches, built once and shared across
/// boosting rounds, CV folds and one-vs-rest tasks. Only the member
/// matching the config's binning mode is populated.
struct TrainCache {
  std::shared_ptr<const SortedColumns> sorted;   // exact path
  std::shared_ptr<const BinnedColumns> binned;   // histogram path
};

/// Builds the cache train_bstump would otherwise construct per call.
[[nodiscard]] TrainCache make_train_cache(const DatasetView& data,
                                          const BStumpConfig& config);

/// Trained ensemble: f(x) = sum_t g_t(x). Higher scores mean "more
/// likely positive" (a future ticket / the disposition in question).
class BStumpModel {
 public:
  BStumpModel() = default;
  explicit BStumpModel(std::vector<Stump> stumps);

  [[nodiscard]] double score_row(const DatasetView& data, std::size_t row) const;
  [[nodiscard]] double score_features(std::span<const float> features) const;
  /// Column-oriented scoring of a whole dataset; much faster than
  /// per-row loops for large datasets. Rows are independent, so a
  /// parallel context chunks them; every chunk walks the stumps in
  /// order, keeping per-row accumulation byte-identical to serial.
  [[nodiscard]] std::vector<double> score_dataset(
      const DatasetView& data,
      const exec::ExecContext& exec = exec::ExecContext::serial()) const;

  [[nodiscard]] const std::vector<Stump>& stumps() const noexcept {
    return stumps_;
  }
  [[nodiscard]] bool empty() const noexcept { return stumps_.empty(); }

  /// Sum of |score contributions| a feature can make — a crude but
  /// useful feature-importance measure for explaining a model (Fig 9).
  [[nodiscard]] std::vector<double> feature_influence(
      std::size_t n_features) const;

 private:
  std::vector<Stump> stumps_;
};

struct TrainDiagnostics {
  /// Z_t per boosting round; prod(Z_t) bounds training error.
  std::vector<double> z_per_round;
  /// Training error of the thresholded ensemble after the last round.
  double final_training_error = 0.0;
};

/// Train BStump on `data`. Optional per-example starting weights (e.g.
/// class re-balancing); defaults to uniform. `diagnostics` may be null.
[[nodiscard]] BStumpModel train_bstump(const DatasetView& data,
                                       const BStumpConfig& config,
                                       TrainDiagnostics* diagnostics = nullptr,
                                       std::span<const double> initial_weights = {});

/// Train a single-feature BStump (used by per-feature selection scores:
/// the paper builds "a ticket predictor given each individual feature").
[[nodiscard]] BStumpModel train_bstump_single_feature(
    const DatasetView& data, std::size_t feature, const BStumpConfig& config);

/// Train against a shared immutable matrix with externally supplied
/// labels — no dataset copies. `cache` comes from make_train_cache on
/// the same view. `rows` (histogram path only) restricts training to
/// a row subset, which is how CV folds share one set of bin codes; the
/// exact path requires `rows` to be empty. Labels are indexed by view
/// row.
[[nodiscard]] BStumpModel train_bstump_cached(
    const DatasetView& data, const TrainCache& cache,
    std::span<const std::uint8_t> labels, std::span<const std::uint32_t> rows,
    const BStumpConfig& config, TrainDiagnostics* diagnostics = nullptr,
    std::span<const double> initial_weights = {});

}  // namespace nevermind::ml
