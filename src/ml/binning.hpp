// Quantized (binned) column representation for histogram-based stump
// search — the training-side complement of SortedColumns.
//
// Each column is quantized ONCE into at most max_bins codes (quantile
// edges for continuous columns, one group id per value for categorical
// ones, missing always its own bin). Every boosting round then builds a
// per-feature weight histogram with a single cache-friendly pass over
// uint8_t codes and scans B bins for the best threshold, instead of
// walking a full sorted row index per feature per round. When a column
// has at most max_bins - 1 distinct present values the quantization is
// lossless: bin boundaries are exactly the midpoints the exact path
// considers, so the binned search examines the identical candidate set.
//
// BinnedColumns is immutable after construction and is shared across
// boosting rounds, CV folds (bin once, fold by row subset) and the
// trouble locator's 52 one-vs-rest tasks (one matrix, per-task labels).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "exec/exec.hpp"
#include "ml/aligned.hpp"
#include "ml/dataset.hpp"
#include "ml/stump.hpp"

namespace nevermind::ml {

struct BinningConfig {
  /// Maximum codes per column, including the dedicated missing bin.
  /// Must fit uint8_t codes: at most 256.
  std::size_t max_bins = 256;
};

class BinnedColumns {
 public:
  /// Quantizes every column of `data` (columns are independent, so a
  /// parallel context splits the work across them). `only` non-empty
  /// restricts to the listed columns, like SortedColumns. Codes are
  /// view-local — searches must run against the same view.
  explicit BinnedColumns(
      const DatasetView& data, const BinningConfig& config = {},
      std::span<const std::size_t> only = {},
      const exec::ExecContext& exec = exec::ExecContext::serial());

  struct Column {
    bool categorical = false;
    /// Finite bins are codes 0..n_finite-1 in ascending value order;
    /// code n_finite is the missing bin.
    std::uint16_t n_finite = 0;
    /// One code per row of the source view. Cache-line aligned: the
    /// kernel arms stream these, and the nmarena bin section keeps the
    /// same alignment discipline on load.
    AlignedCodeVector codes;
    /// Continuous columns: split_values[b] is the stump threshold
    /// between bin b and b+1 (size n_finite - 1) — the same midpoint
    /// float the exact scan computes between adjacent observed values.
    std::vector<float> split_values;
    /// Categorical columns: the value of group id g (ascending order).
    /// May be shorter than n_finite when `overflow` is set.
    std::vector<float> category_values;
    /// True for a categorical column with more distinct values than the
    /// code space: the overflow values share one trailing finite bin
    /// that the search never proposes as an equality split.
    bool overflow = false;

    [[nodiscard]] std::uint8_t missing_code() const noexcept {
      return static_cast<std::uint8_t>(n_finite);
    }
  };

  /// Rehydrates a quantization computed elsewhere (the nmarena bin-code
  /// section): columns must already carry codes of length `n_rows`.
  BinnedColumns(std::size_t n_rows, std::size_t max_bins,
                std::vector<Column> columns)
      : n_rows_(n_rows),
        max_bins_(std::min<std::size_t>(max_bins, 256)),
        columns_(std::move(columns)) {}

  [[nodiscard]] std::size_t n_rows() const noexcept { return n_rows_; }
  [[nodiscard]] std::size_t n_cols() const noexcept { return columns_.size(); }
  /// The max_bins this quantization was built with — stored artefact
  /// bins are only substitutable when this matches the requested config.
  [[nodiscard]] std::size_t max_bins() const noexcept { return max_bins_; }
  [[nodiscard]] const Column& column(std::size_t j) const {
    return columns_.at(j);
  }

 private:
  std::size_t n_rows_ = 0;
  std::size_t max_bins_ = 256;
  std::vector<Column> columns_;
};

/// Best-stump search result of the binned path. `split_bin` lets the
/// boosting loop re-evaluate the stump from bin codes alone:
/// continuous — pass iff code > split_bin (so -1 is the no-split stump
/// where every present row passes); categorical — pass iff
/// code == split_bin; missing iff code == missing_code().
struct BinnedStumpResult {
  Stump stump;
  double z = 1.0;
  int split_bin = -1;
};

/// Histogram-based best-stump search over all binned features.
/// `labels` spans the FULL source view (labels[view row]); `rows`
/// restricts training to a subset of view rows (empty = all rows);
/// `weights[i]` is the weight of subset position i (of row i when
/// `rows` is empty). Per-feature
/// histograms build in parallel under `exec`; the winner is picked by
/// an ordered reduce with ties to the lower bin/feature index, so the
/// result is byte-identical at any thread count.
[[nodiscard]] BinnedStumpResult find_best_stump_binned(
    const BinnedColumns& bins, std::span<const std::uint8_t> labels,
    std::span<const double> weights, std::span<const std::uint32_t> rows,
    double smoothing, const exec::ExecContext& exec = exec::ExecContext::serial());

}  // namespace nevermind::ml
