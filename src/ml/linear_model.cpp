#include "ml/linear_model.hpp"

#include <cmath>

#include "util/mathx.hpp"
#include "util/stats.hpp"

namespace nevermind::ml {

namespace {

double standardized(float v, double mean, double sd) {
  if (is_missing(v)) return 0.0;  // mean imputation after standardizing
  return (static_cast<double>(v) - mean) / sd;
}

}  // namespace

double LinearModel::score_features(std::span<const float> features) const {
  if (empty()) return 0.0;
  double eta = logistic_.coefficients[0];
  const std::size_t k = means_.size();
  for (std::size_t j = 0; j < k && j < features.size(); ++j) {
    eta += logistic_.coefficients[j + 1] *
           standardized(features[j], means_[j], stddevs_[j]);
  }
  return eta;
}

std::vector<double> LinearModel::score_dataset(const DatasetView& data) const {
  std::vector<double> scores(data.n_rows(),
                             empty() ? 0.0 : logistic_.coefficients[0]);
  if (empty()) return scores;
  const std::size_t k = std::min(means_.size(), data.n_cols());
  for (std::size_t j = 0; j < k; ++j) {
    const auto col = data.column(j);
    const double beta = logistic_.coefficients[j + 1];
    for (std::size_t r = 0; r < col.size(); ++r) {
      scores[r] += beta * standardized(col[r], means_[j], stddevs_[j]);
    }
  }
  return scores;
}

double LinearModel::probability(std::span<const float> features) const {
  return util::sigmoid(score_features(features));
}

LinearModel train_linear_model(const DatasetView& data,
                               const LinearModelConfig& config) {
  LinearModel model;
  const std::size_t n = data.n_rows();
  const std::size_t k = data.n_cols();
  if (n == 0 || k == 0) return model;

  model.means_.resize(k);
  model.stddevs_.resize(k);
  for (std::size_t j = 0; j < k; ++j) {
    util::RunningStats rs;
    for (float v : data.column(j)) {
      if (!is_missing(v)) rs.add(v);
    }
    model.means_[j] = rs.mean();
    model.stddevs_[j] = rs.stddev() > 1e-9 ? rs.stddev() : 1.0;
  }

  // Row-major standardized covariates for the IRLS core.
  std::vector<double> rows(n * k);
  for (std::size_t j = 0; j < k; ++j) {
    const auto col = data.column(j);
    for (std::size_t r = 0; r < n; ++r) {
      rows[r * k + j] =
          standardized(col[r], model.means_[j], model.stddevs_[j]);
    }
  }
  std::vector<std::uint8_t> label_storage;
  model.logistic_ = fit_logistic(rows, k, data.labels(label_storage),
                                 config.ridge, config.max_iterations);
  return model;
}

}  // namespace nevermind::ml
