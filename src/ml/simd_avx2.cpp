// AVX2+FMA arm of the binned stump search. Compiled as its own TU with
// -mavx2 -mfma (see src/ml/CMakeLists.txt); only reached after a
// runtime CPUID probe, so the rest of the library stays baseline
// x86-64.
//
// Where the time goes, and what this arm changes versus scalar:
//   * the label branch and multiply are hoisted out of the row loop
//     entirely — an interleaved (pos, neg) label-selected weight stream
//     is built once per search (selection, not arithmetic, so values
//     are bit-equal);
//   * the histogram layout interleaves (pos, neg) per bin and both the
//     weight pair and the histogram slot are 16-byte aligned, so each
//     row's update is ONE paired 128-bit load-add-store instead of two
//     scalar read-modify-write chains (vaddpd adds lane-wise — the same
//     two IEEE additions the scalar arm performs);
//   * several feature histograms build per pass over the rows (feature
//     blocks bounded by scratch size), so the weight stream is read
//     once per row block instead of once per feature;
//   * the per-lane partial histograms merge with 256-bit adds in the
//     fixed ((l0 + l1) + l2) + l3 lane order, and the per-split z
//     evaluation (max, mul, sqrt — all IEEE-exact instructions) runs
//     four candidates per iteration.
// The accumulation order is the canonical one of simd_internal.hpp, so
// results are byte-identical to the scalar arm.
#if defined(NEVERMIND_HAVE_AVX2)

#include <immintrin.h>

#include <algorithm>
#include <array>
#include <cstring>

#include "ml/aligned.hpp"
#include "ml/simd_internal.hpp"

namespace nevermind::ml::simd::detail {

namespace {

/// Rows scanned per feature-block pass. A multiple of kLanes, so lane
/// assignment (stream position mod kLanes) is block-invariant.
constexpr std::size_t kRowBlock = 4096;
/// Lane-partial scratch cap per feature block (128 KiB of doubles).
constexpr std::size_t kMaxScratchDoubles = 16384;
constexpr std::size_t kMaxFeatureBlock = 16;

static_assert(kRowBlock % kLanes == 0);

}  // namespace

BinnedStumpResult scan_features_avx2(const ScanArgs& args, std::size_t first,
                                     std::size_t last) {
  const BinnedColumns& bins = *args.bins;
  const std::span<const std::uint8_t> labels = args.labels;
  const std::span<const double> weights = args.weights;
  const std::span<const std::uint32_t> rows = args.rows;
  const std::size_t n = weights.size();

  // Interleaved label-selected weight stream; normally precomputed once
  // per search by find_best_stump_binned, rebuilt here only for direct
  // kernel calls (tests). Selection keeps values bit-equal to
  // w * label.
  AlignedDoubleVector wpn_local;
  std::span<const double> wpn = args.wpn;
  if (wpn.size() != 2 * n) {
    wpn_local.resize(2 * n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t r =
          rows.empty() ? static_cast<std::uint32_t>(i) : rows[i];
      const bool positive = labels[r] != 0;
      wpn_local[2 * i] = positive ? weights[i] : 0.0;
      wpn_local[2 * i + 1] = positive ? 0.0 : weights[i];
    }
    wpn = wpn_local;
  }

  BinnedStumpResult best;
  best.z = std::numeric_limits<double>::infinity();

  AlignedDoubleVector scratch;
  alignas(64) std::array<double, 2 * kMaxBins> merged;
  Candidates cand;
  std::array<const std::uint8_t*, kMaxFeatureBlock> codes{};
  std::array<std::size_t, kMaxFeatureBlock> offset{};
  std::array<std::size_t, kMaxFeatureBlock> stride{};

  std::size_t j = first;
  while (j < last) {
    // Greedy feature block under the scratch cap (always >= 1 feature).
    std::size_t fb = 0;
    std::size_t total = 0;
    while (j + fb < last && fb < kMaxFeatureBlock) {
      const BinnedColumns::Column& col = bins.column(j + fb);
      const std::size_t s = lane_stride(col);
      if (fb > 0 && total + kLanes * s > kMaxScratchDoubles) break;
      codes[fb] = col.codes.data();
      offset[fb] = total;
      stride[fb] = s;
      total += kLanes * s;
      ++fb;
    }
    scratch.assign(total, 0.0);

    // One pass over the rows builds every histogram in the block: the
    // weight streams stay cache-resident across the block's features.
    for (std::size_t r0 = 0; r0 < n; r0 += kRowBlock) {
      const std::size_t r1 = std::min(r0 + kRowBlock, n);
      for (std::size_t f = 0; f < fb; ++f) {
        const std::uint8_t* c = codes[f];
        const std::size_t s = stride[f];
        double* h0 = scratch.data() + offset[f];
        double* h1 = h0 + s;
        double* h2 = h1 + s;
        double* h3 = h2 + s;
        const double* w2 = wpn.data();
        // One paired add per row: the (pos, neg) weight pair meets the
        // feature's (pos, neg) histogram slot in a single addpd. The
        // four lanes write disjoint partial histograms, so the unrolled
        // updates never alias each other.
        const auto bump = [](double* h, const double* w) {
          _mm_store_pd(h, _mm_add_pd(_mm_load_pd(h), _mm_loadu_pd(w)));
        };
        std::size_t i = r0;
        if (rows.empty()) {
          // Eight lane codes load as one qword (the kernel is load-port
          // bound; byte extraction moves to ALU ports instead), feeding
          // two rounds of the four-lane update per iteration.
          for (; i + 2 * kLanes <= r1; i += 2 * kLanes) {
            std::uint64_t cc;
            std::memcpy(&cc, c + i, sizeof(cc));
            bump(h0 + 2 * static_cast<std::size_t>(cc & 0xFF), w2 + 2 * i);
            bump(h1 + 2 * static_cast<std::size_t>((cc >> 8) & 0xFF),
                 w2 + 2 * i + 2);
            bump(h2 + 2 * static_cast<std::size_t>((cc >> 16) & 0xFF),
                 w2 + 2 * i + 4);
            bump(h3 + 2 * static_cast<std::size_t>((cc >> 24) & 0xFF),
                 w2 + 2 * i + 6);
            bump(h0 + 2 * static_cast<std::size_t>((cc >> 32) & 0xFF),
                 w2 + 2 * i + 8);
            bump(h1 + 2 * static_cast<std::size_t>((cc >> 40) & 0xFF),
                 w2 + 2 * i + 10);
            bump(h2 + 2 * static_cast<std::size_t>((cc >> 48) & 0xFF),
                 w2 + 2 * i + 12);
            bump(h3 + 2 * static_cast<std::size_t>(cc >> 56),
                 w2 + 2 * i + 14);
          }
          for (; i + kLanes <= r1; i += kLanes) {
            std::uint32_t cc;
            std::memcpy(&cc, c + i, sizeof(cc));
            bump(h0 + 2 * static_cast<std::size_t>(cc & 0xFF), w2 + 2 * i);
            bump(h1 + 2 * static_cast<std::size_t>((cc >> 8) & 0xFF),
                 w2 + 2 * i + 2);
            bump(h2 + 2 * static_cast<std::size_t>((cc >> 16) & 0xFF),
                 w2 + 2 * i + 4);
            bump(h3 + 2 * static_cast<std::size_t>(cc >> 24), w2 + 2 * i + 6);
          }
          for (; i < r1; ++i) {
            bump(h0 + (i & (kLanes - 1)) * s +
                     2 * static_cast<std::size_t>(c[i]),
                 w2 + 2 * i);
          }
        } else {
          const std::uint32_t* rr = rows.data();
          for (; i + kLanes <= r1; i += kLanes) {
            bump(h0 + 2 * static_cast<std::size_t>(c[rr[i]]), w2 + 2 * i);
            bump(h1 + 2 * static_cast<std::size_t>(c[rr[i + 1]]),
                 w2 + 2 * i + 2);
            bump(h2 + 2 * static_cast<std::size_t>(c[rr[i + 2]]),
                 w2 + 2 * i + 4);
            bump(h3 + 2 * static_cast<std::size_t>(c[rr[i + 3]]),
                 w2 + 2 * i + 6);
          }
          for (; i < r1; ++i) {
            bump(h0 + (i & (kLanes - 1)) * s +
                     2 * static_cast<std::size_t>(c[rr[i]]),
                 w2 + 2 * i);
          }
        }
      }
    }

    for (std::size_t f = 0; f < fb; ++f) {
      const BinnedColumns::Column& col = bins.column(j + f);
      const std::size_t s = stride[f];
      const double* h0 = scratch.data() + offset[f];
      // Vector lane merge; per-bin order is the canonical
      // ((l0 + l1) + l2) + l3, four bins per iteration. Strides are
      // padded to a multiple of 4 doubles (padding stays zero).
      for (std::size_t k = 0; k < s; k += 4) {
        const __m256d l0 = _mm256_load_pd(h0 + k);
        const __m256d l1 = _mm256_load_pd(h0 + s + k);
        const __m256d l2 = _mm256_load_pd(h0 + 2 * s + k);
        const __m256d l3 = _mm256_load_pd(h0 + 3 * s + k);
        _mm256_store_pd(
            merged.data() + k,
            _mm256_add_pd(_mm256_add_pd(_mm256_add_pd(l0, l1), l2), l3));
      }

      build_candidates(col, merged.data(), cand);

      // Vectorized split evaluation: vmaxpd/vmulpd/vsqrtpd/vaddpd are
      // IEEE-exact, so z values are bit-equal to the scalar formula.
      const __m256d vzero = _mm256_setzero_pd();
      const __m256d vtwo = _mm256_set1_pd(2.0);
      const __m256d vpp = _mm256_set1_pd(cand.present_pos);
      const __m256d vpn = _mm256_set1_pd(cand.present_neg);
      const __m256d vzm = _mm256_set1_pd(cand.z_missing);
      std::size_t k = 0;
      for (; k + 4 <= cand.count; k += 4) {
        const __m256d bp = _mm256_load_pd(cand.pos.data() + k);
        const __m256d bn = _mm256_load_pd(cand.neg.data() + k);
        const __m256d ap = _mm256_sub_pd(vpp, bp);
        const __m256d an = _mm256_sub_pd(vpn, bn);
        const __m256d zb = _mm256_mul_pd(
            vtwo, _mm256_sqrt_pd(_mm256_mul_pd(_mm256_max_pd(bp, vzero),
                                               _mm256_max_pd(bn, vzero))));
        const __m256d za = _mm256_mul_pd(
            vtwo, _mm256_sqrt_pd(_mm256_mul_pd(_mm256_max_pd(ap, vzero),
                                               _mm256_max_pd(an, vzero))));
        _mm256_store_pd(cand.z.data() + k,
                        _mm256_add_pd(_mm256_add_pd(zb, za), vzm));
      }
      for (; k < cand.count; ++k) {
        cand.z[k] = (block_z(cand.pos[k], cand.neg[k]) +
                     block_z(cand.present_pos - cand.pos[k],
                             cand.present_neg - cand.neg[k])) +
                    cand.z_missing;
      }

      const BinnedStumpResult candidate =
          pick_winner(col, cand, args.smoothing, j + f);
      if (candidate.z < best.z) best = candidate;
    }
    j += fb;
  }
  return best;
}

}  // namespace nevermind::ml::simd::detail

#endif  // NEVERMIND_HAVE_AVX2
