#include "ml/feature_selection.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "ml/adaboost.hpp"
#include "ml/entropy.hpp"
#include "ml/metrics.hpp"
#include "ml/pca.hpp"

namespace nevermind::ml {

const char* selection_method_name(SelectionMethod m) noexcept {
  switch (m) {
    case SelectionMethod::kTopNAp: return "Top-N AP";
    case SelectionMethod::kAuc: return "AUC";
    case SelectionMethod::kAveragePrecision: return "Average precision";
    case SelectionMethod::kPca: return "PCA";
    case SelectionMethod::kGainRatio: return "Gain ratio";
  }
  return "?";
}

namespace {

/// Score of a single-feature predictor on the held-out set under one of
/// the wrapper criteria.
double wrapper_score(const DatasetView& train, const DatasetView& test,
                     std::span<const std::uint8_t> test_labels,
                     std::size_t feature, SelectionMethod method,
                     const FeatureScoringConfig& config) {
  BStumpConfig boost;
  boost.iterations = config.boost_iterations;
  const BStumpModel model = train_bstump_single_feature(train, feature, boost);
  if (model.empty()) return 0.0;

  // Only the single feature's column matters for scoring.
  const auto col = test.column(feature);
  std::vector<double> scores(col.size(), 0.0);
  for (const auto& stump : model.stumps()) {
    for (std::size_t r = 0; r < col.size(); ++r) {
      scores[r] += stump.evaluate(col[r]);
    }
  }
  switch (method) {
    case SelectionMethod::kTopNAp:
      return top_n_average_precision(scores, test_labels, config.top_n);
    case SelectionMethod::kAuc:
      return auc(scores, test_labels);
    case SelectionMethod::kAveragePrecision:
      return average_precision(scores, test_labels);
    default:
      throw std::logic_error("wrapper_score: not a wrapper method");
  }
}

}  // namespace

std::vector<double> score_features(const DatasetView& train,
                                   const DatasetView& test,
                                   SelectionMethod method,
                                   const FeatureScoringConfig& config,
                                   std::size_t first_column) {
  const std::size_t f = train.n_cols();
  std::vector<double> scores(f, 0.0);
  switch (method) {
    case SelectionMethod::kTopNAp:
    case SelectionMethod::kAuc:
    case SelectionMethod::kAveragePrecision: {
      if (test.n_cols() != f) {
        throw std::invalid_argument("score_features: train/test mismatch");
      }
      // Held-out labels gathered once, shared read-only by all columns.
      std::vector<std::uint8_t> test_label_storage;
      const std::span<const std::uint8_t> test_labels =
          test.labels(test_label_storage);
      // Every column trains its own single-feature predictor — the
      // dominant cost of selection — into its own output slot.
      config.exec.parallel_for(
          first_column, f, 1, [&](std::size_t b, std::size_t e) {
            for (std::size_t j = b; j < e; ++j) {
              scores[j] =
                  wrapper_score(train, test, test_labels, j, method, config);
            }
          });
      return scores;
    }
    case SelectionMethod::kPca: {
      const PcaResult pca = fit_pca(train, config.pca_max_rows);
      return pca_feature_scores(pca, config.pca_components);
    }
    case SelectionMethod::kGainRatio: {
      std::vector<std::uint8_t> train_label_storage;
      const std::span<const std::uint8_t> train_labels =
          train.labels(train_label_storage);
      config.exec.parallel_for(0, f, 0, [&](std::size_t b, std::size_t e) {
        for (std::size_t j = b; j < e; ++j) {
          scores[j] = gain_ratio(train.column(j), train_labels,
                                 config.gain_bins)
                          .gain_ratio;
        }
      });
      return scores;
    }
  }
  return scores;
}

std::vector<std::size_t> select_top_k(std::span<const double> scores,
                                      std::size_t k) {
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return scores[a] > scores[b];
                   });
  order.resize(std::min(k, order.size()));
  return order;
}

std::vector<std::size_t> select_above_threshold(std::span<const double> scores,
                                                double threshold) {
  std::vector<std::size_t> out;
  for (std::size_t j = 0; j < scores.size(); ++j) {
    if (scores[j] > threshold) out.push_back(j);
  }
  return out;
}

}  // namespace nevermind::ml
