// ROC and precision–recall curve extraction. The AUC scalar lives in
// metrics.hpp; this module produces the actual curve points for
// operating-point selection (an operator picking a submission budget is
// choosing a point on the precision–recall curve) and for exporting to
// plots.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace nevermind::ml {

struct RocPoint {
  double threshold = 0.0;        // score at/above which we predict positive
  double true_positive_rate = 0.0;
  double false_positive_rate = 0.0;
};

struct PrPoint {
  double threshold = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  std::size_t predicted_positive = 0;
};

/// ROC curve from (0,0) to (1,1), one point per distinct score plus the
/// endpoints; thresholds descend.
[[nodiscard]] std::vector<RocPoint> roc_curve(
    std::span<const double> scores, std::span<const std::uint8_t> labels);

/// Precision–recall curve, one point per distinct score; thresholds
/// descend (recall ascends).
[[nodiscard]] std::vector<PrPoint> precision_recall_curve(
    std::span<const double> scores, std::span<const std::uint8_t> labels);

/// Trapezoidal area under a ROC curve produced by roc_curve (equals
/// the rank-sum AUC of metrics.hpp up to floating error).
[[nodiscard]] double area_under(std::span<const RocPoint> curve);

}  // namespace nevermind::ml
