#include "ml/adaboost.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nevermind::ml {

BStumpModel::BStumpModel(std::vector<Stump> stumps)
    : stumps_(std::move(stumps)) {}

double BStumpModel::score_row(const DatasetView& data, std::size_t row) const {
  double s = 0.0;
  for (const auto& stump : stumps_) {
    s += stump.evaluate(data.value(row, stump.feature));
  }
  return s;
}

double BStumpModel::score_features(std::span<const float> features) const {
  double s = 0.0;
  for (const auto& stump : stumps_) {
    s += stump.evaluate(features[stump.feature]);
  }
  return s;
}

std::vector<double> BStumpModel::score_dataset(
    const DatasetView& data, const exec::ExecContext& exec) const {
  std::vector<double> scores(data.n_rows(), 0.0);
  // Chunk across rows, not stumps: each row's accumulator is touched by
  // exactly one chunk and adds stump contributions in stump order, so
  // the floating-point result matches serial exactly.
  exec.parallel_for(0, data.n_rows(), 0, [&](std::size_t b, std::size_t e) {
    for (const auto& stump : stumps_) {
      const auto col = data.column(stump.feature);
      for (std::size_t r = b; r < e; ++r) {
        scores[r] += stump.evaluate(col[r]);
      }
    }
  });
  return scores;
}

std::vector<double> BStumpModel::feature_influence(
    std::size_t n_features) const {
  std::vector<double> influence(n_features, 0.0);
  for (const auto& stump : stumps_) {
    if (stump.feature >= n_features) continue;
    influence[stump.feature] +=
        std::fabs(stump.score_pass - stump.score_fail);
  }
  return influence;
}

TrainCache make_train_cache(const DatasetView& data, const BStumpConfig& config) {
  TrainCache cache;
  if (config.binning == BinningMode::kHistogram) {
    cache.binned = std::make_shared<const BinnedColumns>(
        data, config.binning_config, std::span<const std::size_t>{},
        config.exec);
  } else {
    cache.sorted = std::make_shared<const SortedColumns>(
        data, std::span<const std::size_t>{}, config.exec);
  }
  return cache;
}

namespace {

/// Normalized starting weights (uniform, or the caller's re-balancing
/// weights), shared by both training paths.
std::vector<double> starting_weights(std::size_t n,
                                     std::span<const double> initial_weights) {
  if (!initial_weights.empty() && initial_weights.size() != n) {
    throw std::invalid_argument("train_bstump: weight size mismatch");
  }
  std::vector<double> weights(n, 1.0 / static_cast<double>(n));
  if (!initial_weights.empty()) {
    double total = 0.0;
    for (double w : initial_weights) total += std::max(w, 0.0);
    if (total <= 0.0) throw std::invalid_argument("train_bstump: zero weights");
    for (std::size_t i = 0; i < n; ++i) {
      weights[i] = std::max(initial_weights[i], 0.0) / total;
    }
  }
  return weights;
}

void finish_diagnostics(TrainDiagnostics* diagnostics,
                        std::span<const double> margins) {
  if (diagnostics == nullptr) return;
  std::size_t errors = 0;
  for (double m : margins) {
    if (m <= 0.0) ++errors;
  }
  diagnostics->final_training_error =
      static_cast<double>(errors) /
      static_cast<double>(std::max<std::size_t>(margins.size(), 1));
}

BStumpModel train_exact(const DatasetView& data,
                        std::span<const std::uint8_t> labels,
                        const SortedColumns& sorted,
                        const BStumpConfig& config,
                        TrainDiagnostics* diagnostics,
                        std::span<const double> initial_weights,
                        const std::size_t* single_feature) {
  const std::size_t n = data.n_rows();
  if (n == 0) return BStumpModel{};
  const double smoothing =
      config.smoothing > 0.0 ? config.smoothing : 0.5 / static_cast<double>(n);
  std::vector<double> weights = starting_weights(n, initial_weights);

  std::vector<Stump> stumps;
  stumps.reserve(config.iterations);
  std::vector<double> margins(n, 0.0);

  for (std::size_t t = 0; t < config.iterations; ++t) {
    const StumpSearchResult best =
        single_feature != nullptr
            ? find_best_stump_for_feature(data, sorted, labels, weights,
                                          smoothing, *single_feature)
            : find_best_stump(data, sorted, labels, weights, smoothing,
                              config.exec);
    if (!std::isfinite(best.z) || best.z > config.z_stop) break;
    if (diagnostics != nullptr) diagnostics->z_per_round.push_back(best.z);
    stumps.push_back(best.stump);

    // Reweight: w_i <- w_i * exp(-y_i h_t(x_i)), then normalize.
    const auto col = data.column(best.stump.feature);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double h = best.stump.evaluate(col[i]);
      const double y = labels[i] != 0 ? 1.0 : -1.0;
      margins[i] += y * h;
      weights[i] *= std::exp(-y * h);
      total += weights[i];
    }
    if (total <= 0.0) break;
    const double inv = 1.0 / total;
    for (auto& w : weights) w *= inv;
  }

  finish_diagnostics(diagnostics, margins);
  return BStumpModel{std::move(stumps)};
}

BStumpModel train_binned(const BinnedColumns& bins,
                         std::span<const std::uint8_t> labels,
                         std::span<const std::uint32_t> rows,
                         const BStumpConfig& config,
                         TrainDiagnostics* diagnostics,
                         std::span<const double> initial_weights) {
  const std::size_t n = rows.empty() ? bins.n_rows() : rows.size();
  if (n == 0) return BStumpModel{};
  const double smoothing =
      config.smoothing > 0.0 ? config.smoothing : 0.5 / static_cast<double>(n);
  std::vector<double> weights = starting_weights(n, initial_weights);

  std::vector<Stump> stumps;
  stumps.reserve(config.iterations);
  std::vector<double> margins(n, 0.0);

  for (std::size_t t = 0; t < config.iterations; ++t) {
    const BinnedStumpResult best = find_best_stump_binned(
        bins, labels, weights, rows, smoothing, config.exec);
    if (!std::isfinite(best.z) || best.z > config.z_stop) break;
    if (diagnostics != nullptr) diagnostics->z_per_round.push_back(best.z);
    stumps.push_back(best.stump);

    // Reweight straight from the bin codes — the code comparison is the
    // stump's predicate, so h matches Stump::evaluate on raw values.
    const auto& col = bins.column(best.stump.feature);
    const std::uint8_t missing = col.missing_code();
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t r =
          rows.empty() ? static_cast<std::uint32_t>(i) : rows[i];
      const std::uint8_t code = col.codes[r];
      double h;
      if (code == missing) {
        h = best.stump.score_missing;
      } else if (col.categorical ? static_cast<int>(code) == best.split_bin
                                 : static_cast<int>(code) > best.split_bin) {
        h = best.stump.score_pass;
      } else {
        h = best.stump.score_fail;
      }
      const double y = labels[r] != 0 ? 1.0 : -1.0;
      margins[i] += y * h;
      weights[i] *= std::exp(-y * h);
      total += weights[i];
    }
    if (total <= 0.0) break;
    const double inv = 1.0 / total;
    for (auto& w : weights) w *= inv;
  }

  finish_diagnostics(diagnostics, margins);
  return BStumpModel{std::move(stumps)};
}

}  // namespace

BStumpModel train_bstump(const DatasetView& data, const BStumpConfig& config,
                         TrainDiagnostics* diagnostics,
                         std::span<const double> initial_weights) {
  if (data.n_rows() == 0) return BStumpModel{};
  std::vector<std::uint8_t> label_storage;
  const std::span<const std::uint8_t> labels = data.labels(label_storage);
  if (config.binning == BinningMode::kHistogram) {
    const BinnedColumns bins(data, config.binning_config, {}, config.exec);
    return train_binned(bins, labels, {}, config, diagnostics,
                        initial_weights);
  }
  const SortedColumns sorted(data, {}, config.exec);
  return train_exact(data, labels, sorted, config, diagnostics,
                     initial_weights, nullptr);
}

BStumpModel train_bstump_single_feature(const DatasetView& data,
                                        std::size_t feature,
                                        const BStumpConfig& config) {
  if (feature >= data.n_cols()) {
    throw std::out_of_range("train_bstump_single_feature: bad feature");
  }
  if (data.n_rows() == 0) return BStumpModel{};
  const std::size_t only[] = {feature};
  // The single-feature search is already O(n) per round over one
  // column; the exact scan stays the sole implementation here.
  const SortedColumns sorted(data, only, config.exec);
  std::vector<std::uint8_t> label_storage;
  return train_exact(data, data.labels(label_storage), sorted, config, nullptr,
                     {}, &feature);
}

BStumpModel train_bstump_cached(const DatasetView& data, const TrainCache& cache,
                                std::span<const std::uint8_t> labels,
                                std::span<const std::uint32_t> rows,
                                const BStumpConfig& config,
                                TrainDiagnostics* diagnostics,
                                std::span<const double> initial_weights) {
  if (labels.size() != data.n_rows()) {
    throw std::invalid_argument("train_bstump_cached: label size mismatch");
  }
  if (config.binning == BinningMode::kHistogram) {
    if (!cache.binned) {
      throw std::invalid_argument("train_bstump_cached: cache lacks bins");
    }
    return train_binned(*cache.binned, labels, rows, config, diagnostics,
                        initial_weights);
  }
  if (!rows.empty()) {
    throw std::invalid_argument(
        "train_bstump_cached: row subsets need the histogram path");
  }
  if (!cache.sorted) {
    throw std::invalid_argument("train_bstump_cached: cache lacks index");
  }
  return train_exact(data, labels, *cache.sorted, config, diagnostics,
                     initial_weights, nullptr);
}

}  // namespace nevermind::ml
