#include "ml/adaboost.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nevermind::ml {

BStumpModel::BStumpModel(std::vector<Stump> stumps)
    : stumps_(std::move(stumps)) {}

double BStumpModel::score_row(const Dataset& data, std::size_t row) const {
  double s = 0.0;
  for (const auto& stump : stumps_) {
    s += stump.evaluate(data.at(row, stump.feature));
  }
  return s;
}

double BStumpModel::score_features(std::span<const float> features) const {
  double s = 0.0;
  for (const auto& stump : stumps_) {
    s += stump.evaluate(features[stump.feature]);
  }
  return s;
}

std::vector<double> BStumpModel::score_dataset(
    const Dataset& data, const exec::ExecContext& exec) const {
  std::vector<double> scores(data.n_rows(), 0.0);
  // Chunk across rows, not stumps: each row's accumulator is touched by
  // exactly one chunk and adds stump contributions in stump order, so
  // the floating-point result matches serial exactly.
  exec.parallel_for(0, data.n_rows(), 0, [&](std::size_t b, std::size_t e) {
    for (const auto& stump : stumps_) {
      const auto col = data.column(stump.feature);
      for (std::size_t r = b; r < e; ++r) {
        scores[r] += stump.evaluate(col[r]);
      }
    }
  });
  return scores;
}

std::vector<double> BStumpModel::feature_influence(
    std::size_t n_features) const {
  std::vector<double> influence(n_features, 0.0);
  for (const auto& stump : stumps_) {
    if (stump.feature >= n_features) continue;
    influence[stump.feature] +=
        std::fabs(stump.score_pass - stump.score_fail);
  }
  return influence;
}

namespace {

BStumpModel train_impl(const Dataset& data, const BStumpConfig& config,
                       TrainDiagnostics* diagnostics,
                       std::span<const double> initial_weights,
                       const std::size_t* single_feature) {
  const std::size_t n = data.n_rows();
  if (n == 0) return BStumpModel{};
  if (!initial_weights.empty() && initial_weights.size() != n) {
    throw std::invalid_argument("train_bstump: weight size mismatch");
  }

  const double smoothing =
      config.smoothing > 0.0 ? config.smoothing : 0.5 / static_cast<double>(n);

  std::vector<double> weights(n, 1.0 / static_cast<double>(n));
  if (!initial_weights.empty()) {
    double total = 0.0;
    for (double w : initial_weights) total += std::max(w, 0.0);
    if (total <= 0.0) throw std::invalid_argument("train_bstump: zero weights");
    for (std::size_t i = 0; i < n; ++i) {
      weights[i] = std::max(initial_weights[i], 0.0) / total;
    }
  }

  std::vector<std::size_t> only;
  if (single_feature != nullptr) only.push_back(*single_feature);
  const SortedColumns sorted(data, only, config.exec);
  std::vector<Stump> stumps;
  stumps.reserve(config.iterations);
  std::vector<double> margins(n, 0.0);

  for (std::size_t t = 0; t < config.iterations; ++t) {
    const StumpSearchResult best =
        single_feature != nullptr
            ? find_best_stump_for_feature(data, sorted, weights, smoothing,
                                          *single_feature)
            : find_best_stump(data, sorted, weights, smoothing, config.exec);
    if (!std::isfinite(best.z) || best.z > config.z_stop) break;
    if (diagnostics != nullptr) diagnostics->z_per_round.push_back(best.z);
    stumps.push_back(best.stump);

    // Reweight: w_i <- w_i * exp(-y_i h_t(x_i)), then normalize.
    const auto col = data.column(best.stump.feature);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double h = best.stump.evaluate(col[i]);
      const double y = data.label(i) ? 1.0 : -1.0;
      margins[i] += y * h;
      weights[i] *= std::exp(-y * h);
      total += weights[i];
    }
    if (total <= 0.0) break;
    const double inv = 1.0 / total;
    for (auto& w : weights) w *= inv;
  }

  if (diagnostics != nullptr) {
    std::size_t errors = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (margins[i] <= 0.0) ++errors;
    }
    diagnostics->final_training_error =
        static_cast<double>(errors) / static_cast<double>(n);
  }
  return BStumpModel{std::move(stumps)};
}

}  // namespace

BStumpModel train_bstump(const Dataset& data, const BStumpConfig& config,
                         TrainDiagnostics* diagnostics,
                         std::span<const double> initial_weights) {
  return train_impl(data, config, diagnostics, initial_weights, nullptr);
}

BStumpModel train_bstump_single_feature(const Dataset& data,
                                        std::size_t feature,
                                        const BStumpConfig& config) {
  if (feature >= data.n_cols()) {
    throw std::out_of_range("train_bstump_single_feature: bad feature");
  }
  return train_impl(data, config, nullptr, {}, &feature);
}

}  // namespace nevermind::ml
