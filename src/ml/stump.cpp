#include "ml/stump.hpp"

#include <algorithm>
#include <cmath>

namespace nevermind::ml {

namespace {

struct WeightPair {
  double pos = 0.0;
  double neg = 0.0;

  void add(bool positive, double w) noexcept {
    if (positive) {
      pos += w;
    } else {
      neg += w;
    }
  }
  WeightPair operator-(const WeightPair& o) const noexcept {
    return {pos - o.pos, neg - o.neg};
  }
};

double block_z(const WeightPair& w) noexcept {
  const double p = std::max(w.pos, 0.0);
  const double n = std::max(w.neg, 0.0);
  return 2.0 * std::sqrt(p * n);
}

double block_score(const WeightPair& w, double eps) noexcept {
  return 0.5 * std::log((std::max(w.pos, 0.0) + eps) /
                        (std::max(w.neg, 0.0) + eps));
}

}  // namespace

SortedColumns::SortedColumns(const DatasetView& data,
                             std::span<const std::size_t> only,
                             const exec::ExecContext& exec)
    : sorted_(data.n_cols()), groups_(data.n_cols()) {
  std::vector<std::size_t> all;
  if (only.empty()) {
    all.resize(data.n_cols());
    for (std::size_t j = 0; j < all.size(); ++j) all[j] = j;
    only = all;
  }
  // Each listed column is indexed independently into its own slot.
  exec.parallel_for(0, only.size(), 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      const std::size_t j = only[i];
      const auto col = data.column(j);
      if (data.column_info(j).categorical) {
        // Sort-then-group over one index vector: same group order as a
        // value-keyed map (ascending value, rows ascending within a
        // group thanks to stability), without a node per value.
        std::vector<std::uint32_t> idx;
        idx.reserve(col.size());
        for (std::uint32_t r = 0; r < col.size(); ++r) {
          if (!is_missing(col[r])) idx.push_back(r);
        }
        std::stable_sort(idx.begin(), idx.end(),
                         [&](std::uint32_t a, std::uint32_t b2) {
                           return col[a] < col[b2];
                         });
        auto& groups = groups_[j];
        for (std::size_t k = 0; k < idx.size();) {
          const float value = col[idx[k]];
          std::size_t e2 = k;
          while (e2 < idx.size() && col[idx[e2]] == value) ++e2;
          groups.push_back(
              {value, std::vector<std::uint32_t>(idx.begin() + k,
                                                 idx.begin() + e2)});
          k = e2;
        }
      } else {
        auto& idx = sorted_[j];
        idx.reserve(col.size());
        for (std::uint32_t r = 0; r < col.size(); ++r) {
          if (!is_missing(col[r])) idx.push_back(r);
        }
        std::sort(idx.begin(), idx.end(),
                  [&](std::uint32_t a, std::uint32_t b2) {
                    return col[a] < col[b2];
                  });
      }
    }
  });
}

namespace {

/// Per-scan gather buffers. The sorted row index makes every pass over
/// a feature a random-access walk of labels/weights/values; gathering
/// the triples into contiguous scratch ONCE (fused with the present
/// sum) turns the remaining passes into streaming reads. Pure memory
/// layout: the add order of every weight is unchanged, so results stay
/// byte-identical to the unblocked scans. Reused across the features
/// of a chunk, so it allocates once per chunk, not per feature.
struct GatherScratch {
  std::vector<float> values;
  std::vector<std::uint8_t> labels;
  std::vector<double> weights;
  std::vector<std::size_t> offsets;  // categorical group bounds
};

/// Scan one continuous feature: thresholds at value changes in the
/// sorted order; blocks are {below, at-or-above, missing}. Labels come
/// in as a span so one matrix can serve many relabelled problems.
StumpSearchResult scan_continuous(const ColumnView& col,
                                  std::span<const std::uint32_t> sorted,
                                  std::span<const std::uint8_t> labels,
                                  std::span<const double> weights,
                                  double smoothing, std::size_t feature,
                                  const WeightPair& total,
                                  GatherScratch& scratch) {
  const std::size_t n = sorted.size();
  scratch.values.resize(n);
  scratch.labels.resize(n);
  scratch.weights.resize(n);

  // Single gather through the sorted index, fused with the present sum
  // (same row order as the old present pass).
  WeightPair present;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t r = sorted[i];
    const bool positive = labels[r] != 0;
    scratch.values[i] = col[r];
    scratch.labels[i] = positive ? 1 : 0;
    scratch.weights[i] = weights[r];
    present.add(positive, weights[r]);
  }
  const WeightPair missing = total - present;
  const double z_missing = block_z(missing);

  StumpSearchResult best;
  best.z = std::numeric_limits<double>::infinity();

  auto consider = [&](float threshold, const WeightPair& below) {
    const WeightPair above = present - below;
    const double z = block_z(below) + block_z(above) + z_missing;
    if (z < best.z) {
      best.z = z;
      best.stump.feature = feature;
      best.stump.categorical = false;
      best.stump.threshold = threshold;
      best.stump.score_fail = block_score(below, smoothing);
      best.stump.score_pass = block_score(above, smoothing);
      best.stump.score_missing = block_score(missing, smoothing);
    }
  };

  // The no-split stump (all present rows on the "pass" side) is a valid
  // weak learner too — it votes a constant plus the missing branch.
  consider(-std::numeric_limits<float>::infinity(), WeightPair{});

  // The threshold scan streams the gathered triples instead of chasing
  // the sorted index again.
  WeightPair below;
  for (std::size_t i = 0; i < n; ++i) {
    below.add(scratch.labels[i] != 0, scratch.weights[i]);
    if (i + 1 < n) {
      const float v = scratch.values[i];
      const float next = scratch.values[i + 1];
      if (next > v) {
        // Midpoint threshold keeps evaluation robust to new data.
        consider(v + (next - v) * 0.5F, below);
      }
    }
  }
  return best;
}

StumpSearchResult scan_categorical(
    std::span<const SortedColumns::CategoricalGroup> groups,
    std::span<const std::uint8_t> labels, std::span<const double> weights,
    double smoothing, std::size_t feature, const WeightPair& total,
    GatherScratch& scratch) {
  std::size_t n = 0;
  for (const auto& g : groups) n += g.rows.size();
  scratch.labels.resize(n);
  scratch.weights.resize(n);
  scratch.offsets.clear();

  // Gather label/weight pairs in group-concatenated order, fused with
  // the present sum (same row order as the old present pass).
  WeightPair present;
  std::size_t k = 0;
  for (const auto& g : groups) {
    scratch.offsets.push_back(k);
    for (std::uint32_t r : g.rows) {
      const bool positive = labels[r] != 0;
      scratch.labels[k] = positive ? 1 : 0;
      scratch.weights[k] = weights[r];
      present.add(positive, weights[r]);
      ++k;
    }
  }
  scratch.offsets.push_back(k);
  const WeightPair missing = total - present;
  const double z_missing = block_z(missing);

  StumpSearchResult best;
  best.z = std::numeric_limits<double>::infinity();
  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    WeightPair equal;
    for (std::size_t i = scratch.offsets[gi]; i < scratch.offsets[gi + 1];
         ++i) {
      equal.add(scratch.labels[i] != 0, scratch.weights[i]);
    }
    const WeightPair rest = present - equal;
    const double z = block_z(equal) + block_z(rest) + z_missing;
    if (z < best.z) {
      best.z = z;
      best.stump.feature = feature;
      best.stump.categorical = true;
      best.stump.threshold = groups[gi].value;
      best.stump.score_pass = block_score(equal, smoothing);
      best.stump.score_fail = block_score(rest, smoothing);
      best.stump.score_missing = block_score(missing, smoothing);
    }
  }
  return best;
}

WeightPair total_weights(std::span<const std::uint8_t> labels,
                         std::span<const double> weights) {
  WeightPair total;
  for (std::size_t r = 0; r < labels.size(); ++r) {
    total.add(labels[r] != 0, weights[r]);
  }
  return total;
}

}  // namespace

StumpSearchResult find_best_stump_for_feature(
    const DatasetView& data, const SortedColumns& sorted,
    std::span<const std::uint8_t> labels, std::span<const double> weights,
    double smoothing, std::size_t feature) {
  const WeightPair total = total_weights(labels, weights);
  GatherScratch scratch;
  if (data.column_info(feature).categorical) {
    return scan_categorical(sorted.groups(feature), labels, weights, smoothing,
                            feature, total, scratch);
  }
  return scan_continuous(data.column(feature), sorted.sorted_rows(feature),
                         labels, weights, smoothing, feature, total, scratch);
}

StumpSearchResult find_best_stump_for_feature(const DatasetView& data,
                                              const SortedColumns& sorted,
                                              std::span<const double> weights,
                                              double smoothing,
                                              std::size_t feature) {
  std::vector<std::uint8_t> storage;
  return find_best_stump_for_feature(data, sorted, data.labels(storage),
                                     weights, smoothing, feature);
}

StumpSearchResult find_best_stump(const DatasetView& data,
                                  const SortedColumns& sorted,
                                  std::span<const std::uint8_t> labels,
                                  std::span<const double> weights,
                                  double smoothing,
                                  const exec::ExecContext& exec) {
  const WeightPair total = total_weights(labels, weights);
  StumpSearchResult init;
  init.z = std::numeric_limits<double>::infinity();
  // Strict `<` in both the in-chunk scan and the ordered combine means
  // ties always resolve to the lowest feature index — the same winner
  // the plain serial loop picks, for any chunking.
  return exec.parallel_reduce(
      0, data.n_cols(), 0, init,
      [&](std::size_t b, std::size_t e) {
        StumpSearchResult best;
        best.z = std::numeric_limits<double>::infinity();
        GatherScratch scratch;  // per-chunk: reused across its features
        for (std::size_t j = b; j < e; ++j) {
          StumpSearchResult candidate =
              data.column_info(j).categorical
                  ? scan_categorical(sorted.groups(j), labels, weights,
                                     smoothing, j, total, scratch)
                  : scan_continuous(data.column(j), sorted.sorted_rows(j),
                                    labels, weights, smoothing, j, total,
                                    scratch);
          if (candidate.z < best.z) best = candidate;
        }
        return best;
      },
      [](StumpSearchResult acc, StumpSearchResult chunk) {
        return chunk.z < acc.z ? chunk : acc;
      });
}

StumpSearchResult find_best_stump(const DatasetView& data,
                                  const SortedColumns& sorted,
                                  std::span<const double> weights,
                                  double smoothing,
                                  const exec::ExecContext& exec) {
  std::vector<std::uint8_t> storage;
  return find_best_stump(data, sorted, data.labels(storage), weights,
                         smoothing, exec);
}

}  // namespace nevermind::ml
