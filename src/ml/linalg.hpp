// Small dense linear algebra used by logistic regression (IRLS normal
// equations) and PCA (Jacobi eigendecomposition). Dimensions here are
// tiny — a handful of regression covariates, tens of principal
// components — so clarity beats cleverness.
#pragma once

#include <cstddef>
#include <vector>

namespace nevermind::ml {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] double& at(std::size_t r, std::size_t c);
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;

  [[nodiscard]] static Matrix identity(std::size_t n);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solve A x = b by Gaussian elimination with partial pivoting.
/// Returns false (and leaves x unspecified) if A is singular to working
/// precision. A and b are taken by value: elimination destroys them.
[[nodiscard]] bool solve_linear_system(Matrix a, std::vector<double> b,
                                       std::vector<double>& x);

/// Invert a symmetric positive-definite matrix (used for the Wald
/// covariance of logistic regression). Returns false if not invertible.
[[nodiscard]] bool invert_spd(const Matrix& a, Matrix& inv);

struct EigenResult {
  std::vector<double> eigenvalues;  // descending
  Matrix eigenvectors;              // column i pairs with eigenvalue i
};

/// Eigendecomposition of a symmetric matrix by cyclic Jacobi rotations.
[[nodiscard]] EigenResult symmetric_eigen(Matrix a, int max_sweeps = 64);

}  // namespace nevermind::ml
