// Shared internals of the simd kernel arms (not part of the public ml
// API). Everything in here is *order-defining*: the canonical
// floating-point sum order of the binned stump search is
//
//   1. per-lane partial histograms — stream position i accumulates into
//      lane i % kLanes, sequentially within a lane;
//   2. fixed lane merge ((l0 + l1) + l2) + l3 per bin;
//   3. sequential prefix/present sums over bins (b = 0, 1, ...);
//   4. per-candidate z = (block_z(below) + block_z(above)) + z_missing.
//
// Both kernel arms implement exactly this order, so their results are
// byte-identical; any new arm must too.
#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>

#include "ml/binning.hpp"
#include "ml/simd.hpp"

namespace nevermind::ml::simd::detail {

/// Lane count of the canonical partial-histogram decomposition. Fixed
/// by the format of the sum, not by the hardware: 4 doubles is one
/// 256-bit vector, and the scalar arm uses the same striping.
inline constexpr std::size_t kLanes = 4;

/// Upper bound on bins per column (uint8 codes, missing included).
inline constexpr std::size_t kMaxBins = 256;

/// Histogram entries for one feature: interleaved (pos, neg) pairs per
/// bin code, codes 0..n_finite (missing bin last).
[[nodiscard]] inline std::size_t interleaved_bins(
    const BinnedColumns::Column& col) noexcept {
  return 2 * (static_cast<std::size_t>(col.n_finite) + 1);
}

/// Per-lane stride in doubles, padded to a multiple of 4 so the vector
/// lane merge needs no tail handling. Padding entries stay zero.
[[nodiscard]] inline std::size_t lane_stride(
    const BinnedColumns::Column& col) noexcept {
  return (interleaved_bins(col) + 3) & ~std::size_t{3};
}

[[nodiscard]] inline double block_z(double pos, double neg) noexcept {
  const double p = std::max(pos, 0.0);
  const double n = std::max(neg, 0.0);
  return 2.0 * std::sqrt(p * n);
}

[[nodiscard]] inline double block_score(double pos, double neg,
                                        double eps) noexcept {
  return 0.5 * std::log((std::max(pos, 0.0) + eps) /
                        (std::max(neg, 0.0) + eps));
}

/// Split candidates of one feature, derived from its merged histogram.
/// Continuous: candidate 0 is the no-split stump (below empty) and
/// candidate k >= 1 puts bins 0..k-1 below the threshold
/// split_values[k-1]. Categorical: candidate g tests equality with
/// group g. pos/neg hold the below (continuous) or equal (categorical)
/// block; z is filled by the kernel arm.
struct Candidates {
  alignas(64) std::array<double, kMaxBins> pos;
  alignas(64) std::array<double, kMaxBins> neg;
  alignas(64) std::array<double, kMaxBins> z;
  std::size_t count = 0;
  double present_pos = 0.0;
  double present_neg = 0.0;
  double missing_pos = 0.0;
  double missing_neg = 0.0;
  double z_missing = 0.0;
};

/// Fills candidate blocks (everything except z) from a merged
/// interleaved histogram. The sequential bin order of the present and
/// prefix sums is part of the canonical sum order above.
inline void build_candidates(const BinnedColumns::Column& col,
                             const double* merged, Candidates& c) noexcept {
  const std::size_t n_finite = col.n_finite;
  double pp = 0.0;
  double pn = 0.0;
  for (std::size_t b = 0; b < n_finite; ++b) {
    pp += merged[2 * b];
    pn += merged[2 * b + 1];
  }
  c.present_pos = pp;
  c.present_neg = pn;
  c.missing_pos = merged[2 * n_finite];
  c.missing_neg = merged[2 * n_finite + 1];
  c.z_missing = block_z(c.missing_pos, c.missing_neg);

  if (col.categorical) {
    c.count = col.category_values.size();
    for (std::size_t g = 0; g < c.count; ++g) {
      c.pos[g] = merged[2 * g];
      c.neg[g] = merged[2 * g + 1];
    }
    return;
  }
  c.count = n_finite > 0 ? n_finite : 1;  // the no-split stump always exists
  c.pos[0] = 0.0;
  c.neg[0] = 0.0;
  double bp = 0.0;
  double bn = 0.0;
  for (std::size_t b = 0; b + 1 < n_finite; ++b) {
    bp += merged[2 * b];
    bn += merged[2 * b + 1];
    c.pos[b + 1] = bp;
    c.neg[b + 1] = bn;
  }
}

/// Strict-< winner scan over the candidate z array plus score
/// assembly — shared verbatim by both arms so ties, NaN skipping and
/// the dead-column case (no candidate beats +inf) behave identically.
[[nodiscard]] inline BinnedStumpResult pick_winner(
    const BinnedColumns::Column& col, const Candidates& c, double smoothing,
    std::size_t feature) noexcept {
  BinnedStumpResult best;
  best.z = std::numeric_limits<double>::infinity();
  best.stump.feature = feature;
  best.stump.categorical = col.categorical;

  std::ptrdiff_t k_best = -1;
  for (std::size_t k = 0; k < c.count; ++k) {
    if (c.z[k] < best.z) {
      best.z = c.z[k];
      k_best = static_cast<std::ptrdiff_t>(k);
    }
  }
  if (k_best < 0) return best;

  const auto k = static_cast<std::size_t>(k_best);
  const double bp = c.pos[k];
  const double bn = c.neg[k];
  const double ap = c.present_pos - bp;
  const double an = c.present_neg - bn;
  best.stump.score_missing = block_score(c.missing_pos, c.missing_neg,
                                         smoothing);
  if (col.categorical) {
    best.split_bin = static_cast<int>(k);
    best.stump.threshold = col.category_values[k];
    best.stump.score_pass = block_score(bp, bn, smoothing);   // equal block
    best.stump.score_fail = block_score(ap, an, smoothing);   // the rest
  } else {
    best.split_bin = static_cast<int>(k) - 1;
    best.stump.threshold =
        k == 0 ? -std::numeric_limits<float>::infinity() : col.split_values[k - 1];
    best.stump.score_fail = block_score(bp, bn, smoothing);   // below
    best.stump.score_pass = block_score(ap, an, smoothing);   // at or above
  }
  return best;
}

[[nodiscard]] BinnedStumpResult scan_features_scalar(const ScanArgs& args,
                                                     std::size_t first,
                                                     std::size_t last);
#if defined(NEVERMIND_HAVE_AVX2)
[[nodiscard]] BinnedStumpResult scan_features_avx2(const ScanArgs& args,
                                                   std::size_t first,
                                                   std::size_t last);
#endif

}  // namespace nevermind::ml::simd::detail
