#include "ml/pca.hpp"

#include <cmath>

#include "util/stats.hpp"

namespace nevermind::ml {

PcaResult fit_pca(const DatasetView& data, std::size_t max_rows) {
  const std::size_t f = data.n_cols();
  const std::size_t n = data.n_rows();
  PcaResult out;
  out.column_means.assign(f, 0.0);
  out.column_stddevs.assign(f, 1.0);
  if (f == 0 || n == 0) return out;

  const std::size_t stride =
      (max_rows > 0 && n > max_rows) ? (n + max_rows - 1) / max_rows : 1;

  // Per-column mean/stddev over present values.
  for (std::size_t j = 0; j < f; ++j) {
    util::RunningStats rs;
    const auto col = data.column(j);
    for (std::size_t r = 0; r < n; r += stride) {
      if (!is_missing(col[r])) rs.add(col[r]);
    }
    out.column_means[j] = rs.mean();
    out.column_stddevs[j] = rs.stddev() > 1e-12 ? rs.stddev() : 1.0;
  }

  // Correlation matrix with mean-imputed (-> zero after standardizing)
  // missing entries.
  Matrix corr(f, f);
  std::size_t used_rows = 0;
  std::vector<double> z(f);
  for (std::size_t r = 0; r < n; r += stride) {
    for (std::size_t j = 0; j < f; ++j) {
      const float v = data.value(r, j);
      z[j] = is_missing(v)
                 ? 0.0
                 : (static_cast<double>(v) - out.column_means[j]) /
                       out.column_stddevs[j];
    }
    for (std::size_t j = 0; j < f; ++j) {
      for (std::size_t k = j; k < f; ++k) {
        corr.at(j, k) += z[j] * z[k];
      }
    }
    ++used_rows;
  }
  if (used_rows > 1) {
    const double inv = 1.0 / static_cast<double>(used_rows - 1);
    for (std::size_t j = 0; j < f; ++j) {
      for (std::size_t k = j; k < f; ++k) {
        corr.at(j, k) *= inv;
        corr.at(k, j) = corr.at(j, k);
      }
    }
  }

  EigenResult eig = symmetric_eigen(corr);
  out.eigenvalues = std::move(eig.eigenvalues);
  out.components = std::move(eig.eigenvectors);
  return out;
}

std::vector<double> pca_feature_scores(const PcaResult& pca,
                                       std::size_t n_components) {
  const std::size_t f = pca.column_means.size();
  std::vector<double> scores(f, 0.0);
  const std::size_t k = std::min(n_components, pca.eigenvalues.size());
  for (std::size_t c = 0; c < k; ++c) {
    const double lambda = std::max(pca.eigenvalues[c], 0.0);
    for (std::size_t j = 0; j < f; ++j) {
      const double loading = pca.components.at(j, c);
      scores[j] += lambda * loading * loading;
    }
  }
  return scores;
}

}  // namespace nevermind::ml
