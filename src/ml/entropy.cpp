#include "ml/entropy.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "ml/dataset.hpp"

namespace nevermind::ml {

double binary_entropy(std::size_t positives, std::size_t total) {
  if (total == 0 || positives == 0 || positives == total) return 0.0;
  const double p = static_cast<double>(positives) / static_cast<double>(total);
  return -(p * std::log2(p) + (1.0 - p) * std::log2(1.0 - p));
}

GainScores gain_ratio(const ColumnView& values,
                      std::span<const std::uint8_t> labels, std::size_t bins) {
  GainScores out;
  const std::size_t n = values.size();
  if (n == 0 || bins == 0) return out;

  // Present rows sorted by value; missing rows form a separate bin.
  std::vector<std::uint32_t> present;
  present.reserve(n);
  std::size_t missing_total = 0;
  std::size_t missing_pos = 0;
  std::size_t total_pos = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (labels[i] != 0) ++total_pos;
    if (is_missing(values[i])) {
      ++missing_total;
      if (labels[i] != 0) ++missing_pos;
    } else {
      present.push_back(i);
    }
  }
  std::sort(present.begin(), present.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return values[a] < values[b];
            });

  struct Bin {
    std::size_t total = 0;
    std::size_t pos = 0;
  };
  std::vector<Bin> partition;
  // Equal-frequency binning that never splits runs of equal values (a
  // value must map to exactly one bin for the score to be meaningful).
  const std::size_t target = std::max<std::size_t>(1, present.size() / bins);
  std::size_t i = 0;
  while (i < present.size()) {
    Bin bin;
    while (i < present.size() &&
           (bin.total < target || partition.size() + 1 == bins)) {
      const float v = values[present[i]];
      // Consume the full run of equal values.
      while (i < present.size() && values[present[i]] == v) {
        ++bin.total;
        bin.pos += labels[present[i]] != 0 ? 1 : 0;
        ++i;
      }
    }
    if (bin.total > 0) partition.push_back(bin);
  }
  if (missing_total > 0) partition.push_back({missing_total, missing_pos});

  const double h_label = binary_entropy(total_pos, n);
  double h_cond = 0.0;
  double h_split = 0.0;
  for (const auto& bin : partition) {
    const double frac = static_cast<double>(bin.total) / static_cast<double>(n);
    h_cond += frac * binary_entropy(bin.pos, bin.total);
    if (frac > 0.0) h_split -= frac * std::log2(frac);
  }
  out.information_gain = std::max(0.0, h_label - h_cond);
  out.intrinsic_value = h_split;
  out.gain_ratio = h_split > 1e-12 ? out.information_gain / h_split : 0.0;
  return out;
}

}  // namespace nevermind::ml
