#include "ml/calibration.hpp"

#include <cmath>
#include <cstdint>

#include "util/mathx.hpp"

namespace nevermind::ml {

double PlattCalibrator::probability(double score) const noexcept {
  return util::sigmoid(a * score + b);
}

void PlattCalibrator::apply(std::span<const double> scores,
                            std::vector<double>& probabilities) const {
  probabilities.resize(scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i) {
    probabilities[i] = probability(scores[i]);
  }
}

PlattCalibrator fit_platt(std::span<const double> scores,
                          std::span<const std::uint8_t> labels,
                          int max_iterations) {
  const std::size_t n = scores.size();
  PlattCalibrator cal;
  if (n == 0 || labels.size() != n) return cal;

  std::size_t n_pos = 0;
  for (auto y : labels) n_pos += y != 0 ? 1U : 0U;
  const std::size_t n_neg = n - n_pos;
  const double t_pos = (static_cast<double>(n_pos) + 1.0) /
                       (static_cast<double>(n_pos) + 2.0);
  const double t_neg = 1.0 / (static_cast<double>(n_neg) + 2.0);

  double a = 1.0;
  double b = std::log((static_cast<double>(n_neg) + 1.0) /
                      (static_cast<double>(n_pos) + 1.0)) *
             -1.0;

  // Calibration negative log-likelihood under the smoothed targets;
  // used for the backtracking line search below (an undamped Newton
  // step can overshoot badly on heavily imbalanced score sets).
  const auto nll = [&](double aa, double bb) {
    double loss = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double t = labels[i] != 0 ? t_pos : t_neg;
      const double eta = aa * scores[i] + bb;
      // -[t log p + (1-t) log(1-p)] = log(1+e^eta) - t*eta, stably:
      loss += util::log1p_exp(eta) - t * eta;
    }
    return loss;
  };

  double current_nll = nll(a, b);
  for (int it = 0; it < max_iterations; ++it) {
    // Gradient and Hessian of sum_i [t_i log p_i + (1-t_i) log(1-p_i)].
    double g_a = 0.0;
    double g_b = 0.0;
    double h_aa = 0.0;
    double h_ab = 0.0;
    double h_bb = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double s = scores[i];
      const double p = util::sigmoid(a * s + b);
      const double t = labels[i] != 0 ? t_pos : t_neg;
      const double d = p - t;
      g_a += d * s;
      g_b += d;
      const double w = p * (1.0 - p);
      h_aa += w * s * s;
      h_ab += w * s;
      h_bb += w;
    }
    // Levenberg damping keeps the 2x2 solve well-posed.
    h_aa += 1e-9;
    h_bb += 1e-9;
    const double det = h_aa * h_bb - h_ab * h_ab;
    if (std::fabs(det) < 1e-18) break;
    const double da = (g_a * h_bb - g_b * h_ab) / det;
    const double db = (g_b * h_aa - g_a * h_ab) / det;
    // Backtracking: halve the Newton step until the loss improves.
    double step = 1.0;
    double next_nll = current_nll;
    bool accepted = false;
    for (int half = 0; half < 30; ++half) {
      next_nll = nll(a - step * da, b - step * db);
      if (next_nll <= current_nll + 1e-12) {
        accepted = true;
        break;
      }
      step *= 0.5;
    }
    if (!accepted) break;
    a -= step * da;
    b -= step * db;
    current_nll = next_nll;
    if (std::fabs(step * da) < 1e-10 && std::fabs(step * db) < 1e-10) break;
  }
  cal.a = a;
  cal.b = b;
  return cal;
}

}  // namespace nevermind::ml
