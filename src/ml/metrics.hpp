// Ranking metrics for predictor evaluation.
//
// The paper's headline metric is *accuracy of the top-N predictions*
// (precision@N: the fraction of the N highest-ranked lines whose
// customers issue a ticket within 4 weeks), and its novel selection
// criterion is the *top-N average precision* AP(N) of Section 4.3:
//     AP(N) = sum_{r=1..N} Prec(r) * Tkt(u_r) / N.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace nevermind::ml {

/// Indices of examples sorted by descending score. Ties are broken by
/// index so rankings are deterministic.
[[nodiscard]] std::vector<std::size_t> rank_by_score(
    std::span<const double> scores);

/// Precision within the top `k` of the ranking induced by `scores`.
[[nodiscard]] double precision_at_k(std::span<const double> scores,
                                    std::span<const std::uint8_t> labels,
                                    std::size_t k);

/// Precision@k for several cutoffs at once (one sort instead of many).
[[nodiscard]] std::vector<double> precision_curve(
    std::span<const double> scores, std::span<const std::uint8_t> labels,
    std::span<const std::size_t> cutoffs);

/// The paper's top-N average precision (Section 4.3).
[[nodiscard]] double top_n_average_precision(std::span<const double> scores,
                                             std::span<const std::uint8_t> labels,
                                             std::size_t n);

/// Standard average precision over the full ranking (the "Average
/// precision" baseline of Table 4): mean of Prec(r) over positive ranks.
[[nodiscard]] double average_precision(std::span<const double> scores,
                                       std::span<const std::uint8_t> labels);

/// Area under the ROC curve via the rank-sum (Mann–Whitney) statistic;
/// tied scores contribute 1/2.
[[nodiscard]] double auc(std::span<const double> scores,
                         std::span<const std::uint8_t> labels);

}  // namespace nevermind::ml
