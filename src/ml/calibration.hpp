// Logistic (Platt) calibration: maps raw BStump margins to posterior
// probabilities P(Tkt(u) | x). The paper converts ensemble scores "to
// the posterior probability using logistic calibration" for both the
// ticket predictor and the trouble locator's flat models.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace nevermind::ml {

/// Fitted sigmoid P(y=1 | s) = 1 / (1 + exp(-(a*s + b))).
struct PlattCalibrator {
  double a = 1.0;
  double b = 0.0;

  [[nodiscard]] double probability(double score) const noexcept;
  void apply(std::span<const double> scores,
             std::vector<double>& probabilities) const;
};

/// Fit by Newton iterations on the calibration log-loss with Platt's
/// smoothed targets ((N+ + 1)/(N+ + 2) and 1/(N- + 2)), which guard
/// against overconfident sigmoids on separable score sets.
[[nodiscard]] PlattCalibrator fit_platt(std::span<const double> scores,
                                        std::span<const std::uint8_t> labels,
                                        int max_iterations = 100);

}  // namespace nevermind::ml
