#include "ml/cross_validation.hpp"

#include <algorithm>

#include "ml/metrics.hpp"

namespace nevermind::ml {

std::vector<Fold> make_folds(std::size_t n_rows, std::size_t k_folds) {
  k_folds = std::max<std::size_t>(k_folds, 2);
  k_folds = std::min(k_folds, std::max<std::size_t>(n_rows, 2));
  std::vector<Fold> folds(k_folds);
  for (std::size_t i = 0; i < n_rows; ++i) {
    const std::size_t f = i * k_folds / std::max<std::size_t>(n_rows, 1);
    for (std::size_t j = 0; j < k_folds; ++j) {
      (j == f ? folds[j].validation_rows : folds[j].train_rows).push_back(i);
    }
  }
  return folds;
}

double cross_validate(
    const DatasetView& data, std::size_t k_folds,
    const std::function<double(const DatasetView&, const DatasetView&)>&
        train_eval,
    const exec::ExecContext& exec) {
  const auto folds = make_folds(data.n_rows(), k_folds);
  // One task per fold; metrics are summed in fold order by the ordered
  // reduce, matching the serial accumulation exactly.
  struct Acc {
    double sum = 0.0;
    std::size_t used = 0;
  };
  const Acc total = exec.parallel_reduce(
      0, folds.size(), 1, Acc{},
      [&](std::size_t b, std::size_t e) {
        Acc acc;
        for (std::size_t f = b; f < e; ++f) {
          const auto& fold = folds[f];
          if (fold.train_rows.empty() || fold.validation_rows.empty()) continue;
          const DatasetView train = data.rows(fold.train_rows);
          const DatasetView validation = data.rows(fold.validation_rows);
          acc.sum += train_eval(train, validation);
          ++acc.used;
        }
        return acc;
      },
      [](Acc acc, Acc chunk) {
        acc.sum += chunk.sum;
        acc.used += chunk.used;
        return acc;
      });
  return total.used > 0 ? total.sum / static_cast<double>(total.used) : 0.0;
}

RoundsSelection select_boosting_rounds(
    const DatasetView& data, std::span<const std::size_t> candidates,
    std::size_t top_n, std::size_t k_folds, const exec::ExecContext& exec,
    const BStumpConfig& boost) {
  RoundsSelection out;
  if (candidates.empty()) return out;

  // Train once per fold at the LARGEST candidate, then score truncated
  // prefixes of the ensemble — boosting is anytime, so every shorter
  // candidate is a prefix of the longest run.
  const std::size_t max_rounds =
      *std::max_element(candidates.begin(), candidates.end());
  const auto folds = make_folds(data.n_rows(), k_folds);

  // Histogram path: quantize the matrix once; folds train on row
  // subsets of the shared bin codes instead of copied datasets.
  const bool binned = boost.binning == BinningMode::kHistogram;
  TrainCache cache;
  std::vector<std::uint8_t> full_label_storage;
  std::span<const std::uint8_t> full_labels;
  if (binned) {
    cache = make_train_cache(data, boost);
    full_labels = data.labels(full_label_storage);
  }

  // Folds are independent; each produces its per-candidate metric
  // contributions, summed in fold order by the ordered reduce so the
  // means match the serial accumulation bit for bit.
  struct Acc {
    std::vector<double> metric;
    std::size_t used = 0;
  };
  Acc init;
  init.metric.assign(candidates.size(), 0.0);
  Acc total = exec.parallel_reduce(
      0, folds.size(), 1, std::move(init),
      [&](std::size_t fb, std::size_t fe) {
        Acc acc;
        acc.metric.assign(candidates.size(), 0.0);
        for (std::size_t f = fb; f < fe; ++f) {
          const auto& fold = folds[f];
          if (fold.train_rows.empty() || fold.validation_rows.empty()) continue;
          const DatasetView validation = data.rows(fold.validation_rows);
          std::vector<std::uint8_t> val_label_storage;
          const std::span<const std::uint8_t> val_labels =
              validation.labels(val_label_storage);
          BStumpConfig cfg = boost;
          cfg.iterations = max_rounds;
          BStumpModel full;
          if (binned) {
            std::vector<std::uint32_t> train_rows(fold.train_rows.begin(),
                                                  fold.train_rows.end());
            full = train_bstump_cached(data, cache, full_labels, train_rows,
                                       cfg);
          } else {
            full = train_bstump(data.rows(fold.train_rows), cfg);
          }

          // Incremental scoring: add stumps in order, snapshotting at
          // each candidate count.
          std::vector<double> scores(validation.n_rows(), 0.0);
          std::vector<std::pair<std::size_t, std::size_t>> checkpoints;
          for (std::size_t c = 0; c < candidates.size(); ++c) {
            checkpoints.emplace_back(candidates[c], c);
          }
          std::sort(checkpoints.begin(), checkpoints.end());
          std::size_t next_checkpoint = 0;
          for (std::size_t t = 0; t <= full.stumps().size(); ++t) {
            while (next_checkpoint < checkpoints.size() &&
                   checkpoints[next_checkpoint].first == t) {
              acc.metric[checkpoints[next_checkpoint].second] +=
                  top_n_average_precision(scores, val_labels, top_n);
              ++next_checkpoint;
            }
            if (t == full.stumps().size()) break;
            const auto& stump = full.stumps()[t];
            const auto col = validation.column(stump.feature);
            for (std::size_t r = 0; r < col.size(); ++r) {
              scores[r] += stump.evaluate(col[r]);
            }
          }
          // Candidates beyond the trained length score the full ensemble.
          while (next_checkpoint < checkpoints.size()) {
            acc.metric[checkpoints[next_checkpoint].second] +=
                top_n_average_precision(scores, val_labels, top_n);
            ++next_checkpoint;
          }
          ++acc.used;
        }
        return acc;
      },
      [](Acc acc, Acc chunk) {
        for (std::size_t c = 0; c < acc.metric.size(); ++c) {
          acc.metric[c] += chunk.metric[c];
        }
        acc.used += chunk.used;
        return acc;
      });
  out.metric_per_candidate = std::move(total.metric);
  if (total.used > 0) {
    for (auto& m : out.metric_per_candidate) {
      m /= static_cast<double>(total.used);
    }
  }
  std::size_t best = 0;
  for (std::size_t c = 1; c < candidates.size(); ++c) {
    if (out.metric_per_candidate[c] > out.metric_per_candidate[best]) best = c;
  }
  out.best_rounds = candidates[best];
  return out;
}

}  // namespace nevermind::ml
