#include "ml/simd.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "ml/simd_internal.hpp"

namespace nevermind::ml::simd {

namespace {

/// Dispatch preference; -1 until first read (then the env default or an
/// explicit set_mode sticks). Relaxed atomics: the value is a plain
/// flag, no data is published through it.
std::atomic<int> g_mode{-1};

}  // namespace

bool cpu_supports_avx2() noexcept {
#if defined(NEVERMIND_HAVE_AVX2)
  static const bool ok =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return ok;
#else
  return false;
#endif
}

Mode mode() noexcept {
  int m = g_mode.load(std::memory_order_relaxed);
  if (m < 0) {
    Mode env = Mode::kAuto;
    if (const char* text = std::getenv("NEVERMIND_SIMD")) {
      if (const auto parsed = parse_mode(text)) env = *parsed;
    }
    int expected = -1;
    g_mode.compare_exchange_strong(expected, static_cast<int>(env),
                                   std::memory_order_relaxed);
    m = g_mode.load(std::memory_order_relaxed);
  }
  return static_cast<Mode>(m);
}

void set_mode(Mode m) noexcept {
  g_mode.store(static_cast<int>(m), std::memory_order_relaxed);
}

std::optional<Mode> parse_mode(std::string_view text) noexcept {
  if (text == "auto") return Mode::kAuto;
  if (text == "scalar") return Mode::kScalar;
  if (text == "avx2") return Mode::kAvx2;
  return std::nullopt;
}

const char* mode_name(Mode m) noexcept {
  switch (m) {
    case Mode::kAuto: return "auto";
    case Mode::kScalar: return "scalar";
    case Mode::kAvx2: return "avx2";
  }
  return "?";
}

const char* kernel_name(Kernel k) noexcept {
  switch (k) {
    case Kernel::kScalar: return "scalar";
    case Kernel::kAvx2: return "avx2";
  }
  return "?";
}

Kernel active_kernel() noexcept {
  switch (mode()) {
    case Mode::kScalar: return Kernel::kScalar;
    case Mode::kAvx2:
    case Mode::kAuto:
      return cpu_supports_avx2() ? Kernel::kAvx2 : Kernel::kScalar;
  }
  return Kernel::kScalar;
}

BinnedStumpResult scan_features(Kernel kernel, const ScanArgs& args,
                                std::size_t first, std::size_t last) {
#if defined(NEVERMIND_HAVE_AVX2)
  if (kernel == Kernel::kAvx2 && cpu_supports_avx2()) {
    return detail::scan_features_avx2(args, first, last);
  }
#else
  (void)kernel;
#endif
  return detail::scan_features_scalar(args, first, last);
}

namespace detail {

/// Portable fallback arm. One feature per pass; the per-row label
/// branch of the old scan is gone — weights route into the pos/neg
/// histograms arithmetically (w * label and w * (1 - label), both
/// bit-identical to the branchy add because the unused side contributes
/// +0.0 to a non-negative accumulator).
BinnedStumpResult scan_features_scalar(const ScanArgs& args,
                                       std::size_t first, std::size_t last) {
  const BinnedColumns& bins = *args.bins;
  const std::span<const std::uint8_t> labels = args.labels;
  const std::span<const double> weights = args.weights;
  const std::span<const std::uint32_t> rows = args.rows;

  BinnedStumpResult best;
  best.z = std::numeric_limits<double>::infinity();

  alignas(64) std::array<double, kLanes * 2 * kMaxBins> lanes;
  alignas(64) std::array<double, 2 * kMaxBins> merged;
  Candidates cand;

  for (std::size_t j = first; j < last; ++j) {
    const BinnedColumns::Column& col = bins.column(j);
    const std::size_t nb2 = interleaved_bins(col);
    const std::size_t stride = lane_stride(col);
    std::fill_n(lanes.data(), kLanes * stride, 0.0);

    const std::uint8_t* codes = col.codes.data();
    if (rows.empty()) {
      const std::size_t n = weights.size();
      for (std::size_t i = 0; i < n; ++i) {
        const double w = weights[i];
        const double lab = labels[i] != 0 ? 1.0 : 0.0;
        const double wp = w * lab;
        const double wn = w * (1.0 - lab);
        double* h = lanes.data() + (i & (kLanes - 1)) * stride +
                    2 * static_cast<std::size_t>(codes[i]);
        h[0] += wp;
        h[1] += wn;
      }
    } else {
      for (std::size_t i = 0; i < rows.size(); ++i) {
        const std::uint32_t r = rows[i];
        const double w = weights[i];
        const double lab = labels[r] != 0 ? 1.0 : 0.0;
        const double wp = w * lab;
        const double wn = w * (1.0 - lab);
        double* h = lanes.data() + (i & (kLanes - 1)) * stride +
                    2 * static_cast<std::size_t>(codes[r]);
        h[0] += wp;
        h[1] += wn;
      }
    }

    // Fixed lane order; this is the canonical merge both arms share.
    for (std::size_t k = 0; k < nb2; ++k) {
      merged[k] = ((lanes[k] + lanes[stride + k]) + lanes[2 * stride + k]) +
                  lanes[3 * stride + k];
    }

    build_candidates(col, merged.data(), cand);
    for (std::size_t k = 0; k < cand.count; ++k) {
      cand.z[k] = (block_z(cand.pos[k], cand.neg[k]) +
                   block_z(cand.present_pos - cand.pos[k],
                           cand.present_neg - cand.neg[k])) +
                  cand.z_missing;
    }
    const BinnedStumpResult candidate =
        pick_winner(col, cand, args.smoothing, j);
    if (candidate.z < best.z) best = candidate;
  }
  return best;
}

}  // namespace detail

}  // namespace nevermind::ml::simd
