// Minimal over-aligned allocator so hot byte/double arrays (bin codes,
// kernel scratch) start on cache-line boundaries — the same 64-byte
// alignment discipline the nmarena payload keeps on disk and in memory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace nevermind::ml {

template <typename T, std::size_t Alignment>
struct AlignedAlloc {
  static_assert(Alignment >= alignof(T) && (Alignment & (Alignment - 1)) == 0,
                "alignment must be a power of two covering alignof(T)");
  using value_type = T;

  /// Explicit rebind: the default rebind_alloc cannot re-instantiate a
  /// template with a non-type (alignment) parameter.
  template <typename U>
  struct rebind {
    using other = AlignedAlloc<U, Alignment>;
  };

  AlignedAlloc() noexcept = default;
  template <typename U>
  AlignedAlloc(const AlignedAlloc<U, Alignment>&) noexcept {}  // NOLINT

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t{Alignment});
  }

  template <typename U>
  bool operator==(const AlignedAlloc<U, Alignment>&) const noexcept {
    return true;
  }
};

/// Cache-line-aligned storage for per-row uint8 bin codes.
using AlignedCodeVector = std::vector<std::uint8_t, AlignedAlloc<std::uint8_t, 64>>;

/// Cache-line-aligned double buffers (kernel weight/histogram scratch).
using AlignedDoubleVector = std::vector<double, AlignedAlloc<double, 64>>;

}  // namespace nevermind::ml
