#include "ml/dataset.hpp"

#include <algorithm>
#include <stdexcept>

namespace nevermind::ml {

FeatureArena::FeatureArena(std::vector<ColumnInfo> columns,
                           std::size_t expected_rows)
    : columns_(std::move(columns)), row_capacity_(expected_rows) {
  data_.resize(columns_.size() * row_capacity_);
  labels_.reserve(row_capacity_);
}

FeatureArena::FeatureArena(std::vector<ColumnInfo> columns, std::size_t n_rows,
                           std::vector<float> column_major,
                           std::vector<std::uint8_t> labels)
    : columns_(std::move(columns)),
      data_(std::move(column_major)),
      labels_(std::move(labels)),
      n_rows_(n_rows),
      row_capacity_(n_rows) {
  if (data_.size() != columns_.size() * n_rows_ || labels_.size() != n_rows_) {
    throw std::invalid_argument("FeatureArena: buffer/label size mismatch");
  }
  for (const std::uint8_t l : labels_) positives_ += l != 0 ? 1 : 0;
}

FeatureArena FeatureArena::map_external(std::vector<ColumnInfo> columns,
                                        std::size_t n_rows, const float* data,
                                        const std::uint8_t* labels,
                                        std::shared_ptr<const void> keepalive) {
  FeatureArena arena;
  arena.columns_ = std::move(columns);
  arena.n_rows_ = n_rows;
  arena.row_capacity_ = n_rows;
  arena.external_data_ = data;
  arena.external_labels_ = labels;
  arena.keepalive_ = std::move(keepalive);
  for (std::size_t r = 0; r < n_rows; ++r) {
    arena.positives_ += labels[r] != 0 ? 1 : 0;
  }
  return arena;
}

void FeatureArena::restride(std::size_t new_capacity) {
  std::vector<float> grown(columns_.size() * new_capacity);
  for (std::size_t j = 0; j < columns_.size(); ++j) {
    std::copy_n(data_.data() + j * row_capacity_, n_rows_,
                grown.data() + j * new_capacity);
  }
  data_ = std::move(grown);
  row_capacity_ = new_capacity;
}

void FeatureArena::add_row(std::span<const float> features, bool positive) {
  if (file_backed()) {
    throw std::logic_error(
        "FeatureArena::add_row: file-backed arenas are read-only");
  }
  if (features.size() != columns_.size()) {
    throw std::invalid_argument("FeatureArena::add_row: feature count mismatch");
  }
  if (n_rows_ == row_capacity_) {
    restride(std::max<std::size_t>(16, row_capacity_ * 2));
  }
  for (std::size_t j = 0; j < features.size(); ++j) {
    data_[j * row_capacity_ + n_rows_] = features[j];
  }
  ++n_rows_;
  labels_.push_back(positive ? 1 : 0);
  if (positive) ++positives_;
}

float FeatureArena::at(std::size_t row, std::size_t col) const {
  if (row >= n_rows_ || col >= columns_.size()) {
    throw std::out_of_range("FeatureArena::at");
  }
  return data_base()[col * row_capacity_ + row];
}

std::vector<ColumnInfo> DatasetView::columns_copy() const {
  if (cols_ == nullptr) return arena_->columns();
  std::vector<ColumnInfo> out;
  out.reserve(cols_->size());
  for (const std::uint32_t j : *cols_) out.push_back(arena_->columns()[j]);
  return out;
}

float DatasetView::at(std::size_t i, std::size_t j) const {
  if (i >= n_rows() || j >= n_cols()) {
    throw std::out_of_range("DatasetView::at");
  }
  return value(i, j);
}

std::span<const std::uint8_t> DatasetView::labels(
    std::vector<std::uint8_t>& storage) const {
  if (labels_override_) return *labels_override_;
  if (rows_ == nullptr) return arena_->labels();
  storage.resize(rows_->size());
  const std::span<const std::uint8_t> base = arena_->labels();
  for (std::size_t i = 0; i < rows_->size(); ++i) {
    storage[i] = base[(*rows_)[i]];
  }
  return storage;
}

std::vector<std::uint8_t> DatasetView::labels_copy() const {
  std::vector<std::uint8_t> storage;
  const auto span = labels(storage);
  if (storage.empty()) storage.assign(span.begin(), span.end());
  return storage;
}

std::size_t DatasetView::positives() const noexcept {
  if (labels_override_ == nullptr && rows_ == nullptr) {
    return arena_->positives();
  }
  std::size_t count = 0;
  const std::size_t n = n_rows();
  for (std::size_t i = 0; i < n; ++i) count += label(i) ? 1 : 0;
  return count;
}

template <typename Index>
DatasetView DatasetView::rows_impl(std::span<const Index> idx) const {
  const std::size_t n = n_rows();
  auto composed = std::make_shared<std::vector<std::uint32_t>>();
  composed->reserve(idx.size());
  std::shared_ptr<std::vector<std::uint8_t>> relabelled;
  if (labels_override_) {
    relabelled = std::make_shared<std::vector<std::uint8_t>>();
    relabelled->reserve(idx.size());
  }
  for (const Index i : idx) {
    if (static_cast<std::size_t>(i) >= n) {
      throw std::out_of_range("DatasetView::rows");
    }
    composed->push_back(row_id(static_cast<std::size_t>(i)));
    if (relabelled) {
      relabelled->push_back((*labels_override_)[static_cast<std::size_t>(i)]);
    }
  }
  DatasetView out = *this;
  out.rows_ = std::move(composed);
  out.labels_override_ = std::move(relabelled);
  return out;
}

DatasetView DatasetView::rows(std::span<const std::size_t> idx) const {
  return rows_impl(idx);
}

DatasetView DatasetView::rows(std::span<const std::uint32_t> idx) const {
  return rows_impl(idx);
}

DatasetView DatasetView::cols(std::span<const std::size_t> idx) const {
  const std::size_t k = n_cols();
  auto composed = std::make_shared<std::vector<std::uint32_t>>();
  composed->reserve(idx.size());
  for (const std::size_t j : idx) {
    if (j >= k) throw std::out_of_range("DatasetView::cols");
    composed->push_back(static_cast<std::uint32_t>(col_id(j)));
  }
  DatasetView out = *this;
  out.cols_ = std::move(composed);
  return out;
}

DatasetView DatasetView::relabel(std::span<const std::uint8_t> labels) const {
  if (labels.size() != n_rows()) {
    throw std::invalid_argument("DatasetView::relabel: size mismatch");
  }
  DatasetView out = *this;
  out.labels_override_ = std::make_shared<const std::vector<std::uint8_t>>(
      labels.begin(), labels.end());
  return out;
}

FeatureArena materialize(const DatasetView& view) {
  FeatureArena out(view.columns_copy(), view.n_rows());
  const std::size_t k = view.n_cols();
  std::vector<float> row(k);
  for (std::size_t i = 0; i < view.n_rows(); ++i) {
    for (std::size_t j = 0; j < k; ++j) row[j] = view.value(i, j);
    out.add_row(row, view.label(i));
  }
  return out;
}

}  // namespace nevermind::ml
