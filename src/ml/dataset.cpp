#include "ml/dataset.hpp"

#include <stdexcept>

namespace nevermind::ml {

Dataset::Dataset(std::vector<ColumnInfo> columns, std::size_t expected_rows)
    : columns_(std::move(columns)), data_(columns_.size()) {
  for (auto& col : data_) col.reserve(expected_rows);
  labels_.reserve(expected_rows);
}

void Dataset::add_row(std::span<const float> features, bool positive) {
  if (features.size() != columns_.size()) {
    throw std::invalid_argument("Dataset::add_row: feature count mismatch");
  }
  for (std::size_t j = 0; j < features.size(); ++j) {
    data_[j].push_back(features[j]);
  }
  labels_.push_back(positive ? 1 : 0);
  if (positive) ++positives_;
}

Dataset Dataset::select_columns(std::span<const std::size_t> cols) const {
  std::vector<ColumnInfo> infos;
  infos.reserve(cols.size());
  for (std::size_t j : cols) infos.push_back(columns_.at(j));
  Dataset out(std::move(infos), n_rows());
  out.labels_ = labels_;
  out.positives_ = positives_;
  out.data_.clear();
  out.data_.reserve(cols.size());
  for (std::size_t j : cols) out.data_.push_back(data_.at(j));
  return out;
}

Dataset Dataset::select_rows(std::span<const std::size_t> rows) const {
  Dataset out(columns_, rows.size());
  for (std::size_t r : rows) {
    if (r >= n_rows()) throw std::out_of_range("Dataset::select_rows");
    for (std::size_t j = 0; j < data_.size(); ++j) {
      out.data_[j].push_back(data_[j][r]);
    }
    out.labels_.push_back(labels_[r]);
    if (labels_[r] != 0) ++out.positives_;
  }
  return out;
}

void Dataset::relabel(std::span<const std::uint8_t> labels) {
  if (labels.size() != labels_.size()) {
    throw std::invalid_argument("Dataset::relabel: size mismatch");
  }
  labels_.assign(labels.begin(), labels.end());
  positives_ = 0;
  for (auto v : labels_) positives_ += v != 0 ? 1U : 0U;
}

}  // namespace nevermind::ml
