// Principal component analysis (the "PCA" feature-selection baseline of
// Table 4: "top principal components"). We standardize columns, build
// the correlation matrix, eigendecompose it (Jacobi), and rank features
// by their eigenvalue-weighted loading on the leading components.
#pragma once

#include <cstddef>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/linalg.hpp"

namespace nevermind::ml {

struct PcaResult {
  std::vector<double> eigenvalues;  // descending
  Matrix components;                // column i = loading vector of PC i
  std::vector<double> column_means;
  std::vector<double> column_stddevs;
};

/// PCA over the dataset's feature columns; missing entries are replaced
/// by the column mean (standard mean-imputation for covariance
/// estimation). `max_rows` subsamples deterministically (every k-th row)
/// to bound the O(F^2 n) covariance cost.
[[nodiscard]] PcaResult fit_pca(const DatasetView& data,
                                std::size_t max_rows = 0);

/// Feature importance for selection: sum over the top `n_components`
/// of eigenvalue * loading^2 — a feature scores high when it carries a
/// lot of the leading variance directions.
[[nodiscard]] std::vector<double> pca_feature_scores(const PcaResult& pca,
                                                     std::size_t n_components);

}  // namespace nevermind::ml
