#include "ml/linalg.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace nevermind::ml {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return data_[r * cols_ + c];
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

bool solve_linear_system(Matrix a, std::vector<double> b,
                         std::vector<double>& x) {
  const std::size_t n = a.rows();
  if (a.cols() != n || b.size() != n) return false;
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a.at(r, col)) > std::fabs(a.at(pivot, col))) pivot = r;
    }
    if (std::fabs(a.at(pivot, col)) < 1e-12) return false;
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a.at(col, c), a.at(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    const double d = a.at(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a.at(r, col) / d;
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a.at(r, c) -= factor * a.at(col, c);
      b[r] -= factor * b[col];
    }
  }
  x.assign(n, 0.0);
  for (std::size_t ri = n; ri-- > 0;) {
    double s = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) s -= a.at(ri, c) * x[c];
    x[ri] = s / a.at(ri, ri);
  }
  return true;
}

bool invert_spd(const Matrix& a, Matrix& inv) {
  const std::size_t n = a.rows();
  if (a.cols() != n) return false;
  inv = Matrix(n, n);
  // Solve A e_i = col_i for each basis vector.
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> e(n, 0.0);
    e[i] = 1.0;
    std::vector<double> col;
    if (!solve_linear_system(a, std::move(e), col)) return false;
    for (std::size_t r = 0; r < n; ++r) inv.at(r, i) = col[r];
  }
  return true;
}

EigenResult symmetric_eigen(Matrix a, int max_sweeps) {
  const std::size_t n = a.rows();
  Matrix v = Matrix::identity(n);
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) off += a.at(p, q) * a.at(p, q);
    }
    if (off < 1e-20) break;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a.at(p, q);
        if (std::fabs(apq) < 1e-15) continue;
        const double app = a.at(p, p);
        const double aqq = a.at(q, q);
        const double theta = 0.5 * (aqq - app) / apq;
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a.at(k, p);
          const double akq = a.at(k, q);
          a.at(k, p) = c * akp - s * akq;
          a.at(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a.at(p, k);
          const double aqk = a.at(q, k);
          a.at(p, k) = c * apk - s * aqk;
          a.at(q, k) = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v.at(k, p);
          const double vkq = v.at(k, q);
          v.at(k, p) = c * vkp - s * vkq;
          v.at(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  // Sort eigenpairs by descending eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t i, std::size_t j) {
    return a.at(i, i) > a.at(j, j);
  });
  EigenResult out;
  out.eigenvalues.resize(n);
  out.eigenvectors = Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    out.eigenvalues[i] = a.at(order[i], order[i]);
    for (std::size_t r = 0; r < n; ++r) {
      out.eigenvectors.at(r, i) = v.at(r, order[i]);
    }
  }
  return out;
}

}  // namespace nevermind::ml
