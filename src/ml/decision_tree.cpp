#include "ml/decision_tree.hpp"

#include <cmath>

namespace nevermind::ml {

DecisionTree::DecisionTree(std::vector<TreeNode> nodes)
    : nodes_(std::move(nodes)) {}

double DecisionTree::score_features(std::span<const float> features) const {
  if (nodes_.empty()) return 0.0;
  std::size_t idx = 0;
  for (;;) {
    const TreeNode& node = nodes_[idx];
    const float v = features[node.feature];
    if (is_missing(v)) return node.missing_score;
    const bool pass =
        node.categorical ? v == node.threshold : v >= node.threshold;
    const std::uint32_t child = pass ? node.pass_child : node.fail_child;
    if (child == 0) return pass ? node.pass_score : node.fail_score;
    idx = child;
  }
}

double DecisionTree::score_row(const DatasetView& data, std::size_t row) const {
  if (nodes_.empty()) return 0.0;
  std::size_t idx = 0;
  for (;;) {
    const TreeNode& node = nodes_[idx];
    const float v = data.value(row, node.feature);
    if (is_missing(v)) return node.missing_score;
    const bool pass =
        node.categorical ? v == node.threshold : v >= node.threshold;
    const std::uint32_t child = pass ? node.pass_child : node.fail_child;
    if (child == 0) return pass ? node.pass_score : node.fail_score;
    idx = child;
  }
}

namespace {

struct TreeBuilder {
  const DatasetView& data;
  const SortedColumns& sorted;
  const TreeConfig& config;
  double smoothing;
  std::vector<TreeNode> nodes;

  /// Grows a node over the rows whose `node_weights` are non-zero.
  /// Returns the node index, or 0 when no useful split exists (callers
  /// then keep their leaf scores).
  std::uint32_t grow(std::vector<double>& node_weights, double total_weight,
                     std::size_t depth) {
    if (depth >= config.max_depth ||
        total_weight < config.min_node_weight) {
      return 0;
    }
    const StumpSearchResult best =
        find_best_stump(data, sorted, node_weights, smoothing);
    if (!std::isfinite(best.z)) return 0;

    const auto index = static_cast<std::uint32_t>(nodes.size());
    nodes.push_back(TreeNode{});
    // Fill after recursion (vector may reallocate).
    TreeNode node;
    node.feature = best.stump.feature;
    node.categorical = best.stump.categorical;
    node.threshold = best.stump.threshold;
    node.pass_score = best.stump.score_pass;
    node.fail_score = best.stump.score_fail;
    node.missing_score = best.stump.score_missing;

    if (depth + 1 < config.max_depth) {
      // Partition weights into the two branches; missing rows stay at
      // this node (abstain), so both children get zero weight for them.
      std::vector<double> pass_weights(node_weights.size(), 0.0);
      std::vector<double> fail_weights(node_weights.size(), 0.0);
      double pass_total = 0.0;
      double fail_total = 0.0;
      const auto col = data.column(node.feature);
      for (std::size_t r = 0; r < node_weights.size(); ++r) {
        const double w = node_weights[r];
        if (w <= 0.0) continue;
        const float v = col[r];
        if (is_missing(v)) continue;
        const bool pass =
            node.categorical ? v == node.threshold : v >= node.threshold;
        if (pass) {
          pass_weights[r] = w;
          pass_total += w;
        } else {
          fail_weights[r] = w;
          fail_total += w;
        }
      }
      node.pass_child = grow(pass_weights, pass_total, depth + 1);
      node.fail_child = grow(fail_weights, fail_total, depth + 1);
    }
    nodes[index] = node;
    return index;
  }
};

}  // namespace

DecisionTree train_tree(const DatasetView& data, std::span<const double> weights,
                        const TreeConfig& config) {
  const std::size_t n = data.n_rows();
  if (n == 0 || weights.size() != n) return DecisionTree{};
  const double smoothing =
      config.smoothing > 0.0 ? config.smoothing : 0.5 / static_cast<double>(n);

  const SortedColumns sorted(data);
  std::vector<double> w(weights.begin(), weights.end());
  double total = 0.0;
  for (double x : w) total += x > 0.0 ? x : 0.0;
  // At least one level so the root always exists.
  TreeConfig root_cfg = config;
  root_cfg.max_depth = std::max<std::size_t>(config.max_depth, 1);
  TreeBuilder builder{data, sorted, root_cfg, smoothing, {}};
  builder.grow(w, total, 0);
  return DecisionTree{std::move(builder.nodes)};
}

BoostedTreesModel::BoostedTreesModel(std::vector<DecisionTree> trees)
    : trees_(std::move(trees)) {}

double BoostedTreesModel::score_features(
    std::span<const float> features) const {
  double s = 0.0;
  for (const auto& tree : trees_) s += tree.score_features(features);
  return s;
}

std::vector<double> BoostedTreesModel::score_dataset(
    const DatasetView& data) const {
  std::vector<double> scores(data.n_rows(), 0.0);
  for (const auto& tree : trees_) {
    for (std::size_t r = 0; r < data.n_rows(); ++r) {
      scores[r] += tree.score_row(data, r);
    }
  }
  return scores;
}

BoostedTreesModel train_boosted_trees(const DatasetView& data,
                                      const BoostedTreesConfig& config) {
  const std::size_t n = data.n_rows();
  if (n == 0) return BoostedTreesModel{};

  std::vector<double> weights(n, 1.0 / static_cast<double>(n));
  std::vector<DecisionTree> trees;
  trees.reserve(config.iterations);

  for (std::size_t t = 0; t < config.iterations; ++t) {
    DecisionTree tree = train_tree(data, weights, config.tree);
    if (tree.empty()) break;
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double h = tree.score_row(data, i);
      const double y = data.label(i) ? 1.0 : -1.0;
      weights[i] *= std::exp(-y * h);
      total += weights[i];
    }
    trees.push_back(std::move(tree));
    if (total <= 0.0) break;
    const double inv = 1.0 / total;
    for (auto& w : weights) w *= inv;
  }
  return BoostedTreesModel{std::move(trees)};
}

}  // namespace nevermind::ml
