// CART-style decision trees and a boosted-tree ensemble.
//
// The paper justifies its stump-linear BStump by arguing that, under
// the label noise inherent in ticket data, "sophisticated non-linear
// models overfit easily" (Section 4.4). This module supplies exactly
// such a non-linear comparator — depth-d trees greedily grown on the
// same weighted Z-criterion, boosted the same way — so the claim can be
// tested rather than assumed (see bench_ablation_boosting).
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/stump.hpp"

namespace nevermind::ml {

/// A binary tree over feature tests. Nodes are stored in a flat vector;
/// children indices of 0 mean "leaf" (node 0 is always the root, which
/// is never a child).
struct TreeNode {
  std::size_t feature = 0;
  bool categorical = false;
  float threshold = 0.0F;
  /// Child indices into DecisionTree::nodes (0 = none -> use scores).
  std::uint32_t pass_child = 0;
  std::uint32_t fail_child = 0;
  /// Confidence-rated leaf scores when the corresponding child is 0.
  double pass_score = 0.0;
  double fail_score = 0.0;
  /// Missing values abstain at this node.
  double missing_score = 0.0;
};

class DecisionTree {
 public:
  DecisionTree() = default;
  explicit DecisionTree(std::vector<TreeNode> nodes);

  [[nodiscard]] bool empty() const noexcept { return nodes_.empty(); }
  [[nodiscard]] const std::vector<TreeNode>& nodes() const noexcept {
    return nodes_;
  }

  /// Confidence-rated score of one example.
  [[nodiscard]] double score_features(std::span<const float> features) const;
  [[nodiscard]] double score_row(const DatasetView& data, std::size_t row) const;

 private:
  std::vector<TreeNode> nodes_;
};

struct TreeConfig {
  /// Levels of splits; 1 reproduces a decision stump.
  std::size_t max_depth = 3;
  /// Do not split nodes carrying less than this weight fraction.
  double min_node_weight = 1e-3;
  /// Smoothing epsilon for leaf scores (auto: 0.5 / n when <= 0).
  double smoothing = -1.0;
};

/// Grow one tree on weighted data (weights need not be normalized).
[[nodiscard]] DecisionTree train_tree(const DatasetView& data,
                                      std::span<const double> weights,
                                      const TreeConfig& config);

/// AdaBoost over depth-d trees — the "sophisticated non-linear model"
/// of the paper's argument. Interface mirrors BStump.
struct BoostedTreesConfig {
  std::size_t iterations = 100;
  TreeConfig tree;
};

class BoostedTreesModel {
 public:
  BoostedTreesModel() = default;
  explicit BoostedTreesModel(std::vector<DecisionTree> trees);

  [[nodiscard]] bool empty() const noexcept { return trees_.empty(); }
  [[nodiscard]] const std::vector<DecisionTree>& trees() const noexcept {
    return trees_;
  }
  [[nodiscard]] double score_features(std::span<const float> features) const;
  [[nodiscard]] std::vector<double> score_dataset(const DatasetView& data) const;

 private:
  std::vector<DecisionTree> trees_;
};

[[nodiscard]] BoostedTreesModel train_boosted_trees(
    const DatasetView& data, const BoostedTreesConfig& config);

}  // namespace nevermind::ml
