// Column-major labelled dataset for the ML library.
//
// Both stump search (AdaBoost) and per-feature selection operate on one
// feature column at a time — sorting it, scanning it with weights — so
// the matrix is stored column-major. Missing measurements (modem off
// during the Saturday test) are encoded as NaN; every algorithm in this
// library treats NaN as "abstain" rather than imputing, matching the
// Boostexter behaviour the paper relies on.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace nevermind::ml {

/// Value used for absent measurements.
inline constexpr float kMissing = std::numeric_limits<float>::quiet_NaN();

[[nodiscard]] inline bool is_missing(float v) noexcept {
  return std::isnan(v);
}

struct ColumnInfo {
  std::string name;
  /// Categorical columns use equality stumps; continuous use thresholds.
  bool categorical = false;
};

/// Labelled dataset: an n_rows x n_cols feature matrix plus binary
/// labels (1 = positive: "a ticket arrives within T", or "disposition is
/// C_ij"). Rows are example indices; the caller keeps any mapping from
/// row to (line, week) outside the dataset.
class Dataset {
 public:
  Dataset() = default;
  Dataset(std::vector<ColumnInfo> columns, std::size_t expected_rows = 0);

  /// Appends one example. `features.size()` must equal `n_cols()`.
  void add_row(std::span<const float> features, bool positive);

  [[nodiscard]] std::size_t n_rows() const noexcept { return labels_.size(); }
  [[nodiscard]] std::size_t n_cols() const noexcept { return columns_.size(); }

  [[nodiscard]] std::span<const float> column(std::size_t j) const {
    return data_.at(j);
  }
  [[nodiscard]] const ColumnInfo& column_info(std::size_t j) const {
    return columns_.at(j);
  }
  [[nodiscard]] const std::vector<ColumnInfo>& columns() const noexcept {
    return columns_;
  }
  [[nodiscard]] float at(std::size_t row, std::size_t col) const {
    return data_.at(col).at(row);
  }
  [[nodiscard]] bool label(std::size_t row) const {
    return labels_.at(row) != 0;
  }
  [[nodiscard]] std::span<const std::uint8_t> labels() const noexcept {
    return labels_;
  }
  [[nodiscard]] std::size_t positives() const noexcept { return positives_; }

  /// Dataset restricted to the given columns (copies those columns).
  [[nodiscard]] Dataset select_columns(std::span<const std::size_t> cols) const;

  /// Dataset with the same columns but only the given rows.
  [[nodiscard]] Dataset select_rows(std::span<const std::size_t> rows) const;

  /// Replaces all labels (size must match n_rows). Used by the trouble
  /// locator to retarget one feature matrix at 52 one-vs-rest problems
  /// without copying the features.
  void relabel(std::span<const std::uint8_t> labels);

 private:
  std::vector<ColumnInfo> columns_;
  std::vector<std::vector<float>> data_;  // column-major
  std::vector<std::uint8_t> labels_;
  std::size_t positives_ = 0;
};

}  // namespace nevermind::ml
