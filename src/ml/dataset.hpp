// Arena-backed column-major data plane for the ML library.
//
// Both stump search (AdaBoost) and per-feature selection operate on one
// feature column at a time — sorting it, scanning it with weights — so
// the matrix is stored column-major in ONE contiguous buffer (the
// FeatureArena). Missing measurements (modem off during the Saturday
// test) are encoded as NaN; every algorithm in this library treats NaN
// as "abstain" rather than imputing, matching the Boostexter behaviour
// the paper relies on.
//
// Training never copies the matrix: CV folds, week-range splits and
// column-subset selections are DatasetViews — an arena pointer plus
// row-index and column-index vectors — composable (view of view)
// without touching the float data. A view must not outlive its arena;
// see DESIGN.md §10 for the lifetime rules and why the determinism
// contract survives the indirection.
#pragma once

#include <cassert>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace nevermind::ml {

/// Value used for absent measurements.
inline constexpr float kMissing = std::numeric_limits<float>::quiet_NaN();

[[nodiscard]] inline bool is_missing(float v) noexcept {
  return std::isnan(v);
}

struct ColumnInfo {
  std::string name;
  /// Categorical columns use equality stumps; continuous use thresholds.
  bool categorical = false;
};

/// Owning arena: an n_rows x n_cols feature matrix in one contiguous
/// column-major buffer (column j occupies [j * row_capacity, j *
/// row_capacity + n_rows)), plus binary labels (1 = positive: "a ticket
/// arrives within T", or "disposition is C_ij"). Rows are example
/// indices; the caller keeps any mapping from row to (line, week)
/// outside the arena. Splits and subsets are DatasetViews, never
/// copies.
///
/// Two backings share this one type so every consumer (views, binning,
/// stump search, scoring) is backing-agnostic:
///   * heap    — the classic growable arena filled by add_row;
///   * mapped  — a read-only arena whose column-major payload and label
///     bytes live in externally owned pages (an mmap'ed nmarena v1
///     artefact, see ml/feature_store.hpp). The mutation API (add_row,
///     and with it restride) is runtime-fenced off this path: mutating
///     a file-backed arena throws std::logic_error.
class FeatureArena {
 public:
  enum class Backing : std::uint8_t { kHeap = 0, kMapped };

  FeatureArena() = default;
  FeatureArena(std::vector<ColumnInfo> columns, std::size_t expected_rows = 0);

  /// Heap arena adopting a fully materialized column-major buffer with
  /// stride == n_rows (the eager binary reader's payload). Throws
  /// std::invalid_argument on size mismatches.
  FeatureArena(std::vector<ColumnInfo> columns, std::size_t n_rows,
               std::vector<float> column_major,
               std::vector<std::uint8_t> labels);

  /// Read-only arena over externally owned column-major pages with
  /// stride == n_rows (the mmap path). `keepalive` owns the mapping and
  /// is shared by copies of the arena; `data` and `labels` must stay
  /// valid for its lifetime.
  [[nodiscard]] static FeatureArena map_external(
      std::vector<ColumnInfo> columns, std::size_t n_rows, const float* data,
      const std::uint8_t* labels, std::shared_ptr<const void> keepalive);

  /// Appends one example. `features.size()` must equal `n_cols()`.
  /// Restrides the buffer when full — size the arena up front (the
  /// encoder counts its rows before allocating) to append in place.
  /// Throws std::logic_error on a file-backed (mapped) arena.
  void add_row(std::span<const float> features, bool positive);

  [[nodiscard]] Backing backing() const noexcept {
    return external_data_ != nullptr ? Backing::kMapped : Backing::kHeap;
  }
  [[nodiscard]] bool file_backed() const noexcept {
    return external_data_ != nullptr;
  }

  [[nodiscard]] std::size_t n_rows() const noexcept { return n_rows_; }
  [[nodiscard]] std::size_t n_cols() const noexcept { return columns_.size(); }

  /// Contiguous column span — the hot read path (unchecked; debug
  /// builds assert).
  [[nodiscard]] std::span<const float> column(std::size_t j) const noexcept {
    assert(j < columns_.size());
    return {data_base() + j * row_capacity_, n_rows_};
  }
  [[nodiscard]] const ColumnInfo& column_info(std::size_t j) const noexcept {
    assert(j < columns_.size());
    return columns_[j];
  }
  [[nodiscard]] const std::vector<ColumnInfo>& columns() const noexcept {
    return columns_;
  }
  /// Unchecked element access for hot loops (debug builds assert).
  [[nodiscard]] float value(std::size_t row, std::size_t col) const noexcept {
    assert(row < n_rows_ && col < columns_.size());
    return data_base()[col * row_capacity_ + row];
  }
  /// Checked element access for API boundaries.
  [[nodiscard]] float at(std::size_t row, std::size_t col) const;
  [[nodiscard]] bool label(std::size_t row) const noexcept {
    assert(row < n_rows_);
    return labels_base()[row] != 0;
  }
  [[nodiscard]] std::span<const std::uint8_t> labels() const noexcept {
    return {labels_base(), n_rows_};
  }
  [[nodiscard]] std::size_t positives() const noexcept { return positives_; }

 private:
  void restride(std::size_t new_capacity);
  [[nodiscard]] const float* data_base() const noexcept {
    return external_data_ != nullptr ? external_data_ : data_.data();
  }
  [[nodiscard]] const std::uint8_t* labels_base() const noexcept {
    return external_labels_ != nullptr ? external_labels_ : labels_.data();
  }

  std::vector<ColumnInfo> columns_;
  std::vector<float> data_;  // column-major, stride row_capacity_ (heap)
  std::vector<std::uint8_t> labels_;
  std::size_t n_rows_ = 0;
  std::size_t row_capacity_ = 0;
  std::size_t positives_ = 0;
  // Mapped backing: non-null pointers into `keepalive_`-owned pages.
  const float* external_data_ = nullptr;
  const std::uint8_t* external_labels_ = nullptr;
  std::shared_ptr<const void> keepalive_;
};

/// One logical feature column of a view: a base pointer into the arena
/// plus an optional row-index indirection. Identity views (rows ==
/// nullptr) read the arena span directly; subset views gather through
/// the index. Access is unchecked (debug builds assert) — this is the
/// innermost read of every sort, scan and scoring loop.
class ColumnView {
 public:
  ColumnView() = default;
  // Implicit on purpose: span-based helpers keep working unchanged.
  ColumnView(std::span<const float> direct) noexcept  // NOLINT
      : base_(direct.data()), n_(direct.size()) {}
  ColumnView(const std::vector<float>& direct) noexcept  // NOLINT
      : base_(direct.data()), n_(direct.size()) {}
  ColumnView(const float* base, const std::uint32_t* rows,
             std::size_t n) noexcept
      : base_(base), rows_(rows), n_(n) {}

  [[nodiscard]] float operator[](std::size_t i) const noexcept {
    assert(i < n_);
    return rows_ == nullptr ? base_[i] : base_[rows_[i]];
  }
  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }

  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = float;
    using difference_type = std::ptrdiff_t;

    iterator() = default;
    iterator(const ColumnView* col, std::size_t i) : col_(col), i_(i) {}
    float operator*() const { return (*col_)[i_]; }
    iterator& operator++() {
      ++i_;
      return *this;
    }
    iterator operator++(int) {
      iterator tmp = *this;
      ++i_;
      return tmp;
    }
    bool operator==(const iterator& o) const { return i_ == o.i_; }
    bool operator!=(const iterator& o) const { return i_ != o.i_; }

   private:
    const ColumnView* col_ = nullptr;
    std::size_t i_ = 0;
  };

  [[nodiscard]] iterator begin() const noexcept { return {this, 0}; }
  [[nodiscard]] iterator end() const noexcept { return {this, n_}; }

 private:
  const float* base_ = nullptr;
  const std::uint32_t* rows_ = nullptr;  // nullptr = identity
  std::size_t n_ = 0;
};

/// Non-owning window onto a FeatureArena: a row-index subset, a
/// column-index subset, and optionally overridden labels (the locator
/// retargets one matrix at 52 one-vs-rest problems this way). Views are
/// cheap to copy (three shared_ptrs and a raw pointer), compose without
/// materializing data (rows-of-rows, cols-of-cols in any order), and
/// MUST NOT outlive the arena they point into.
class DatasetView {
 public:
  DatasetView() = default;
  // Implicit on purpose: every training entry point takes a view, and
  // whole-arena callers should not need ceremony.
  DatasetView(const FeatureArena& arena) noexcept  // NOLINT
      : arena_(&arena) {}

  [[nodiscard]] std::size_t n_rows() const noexcept {
    return rows_ ? rows_->size() : arena_->n_rows();
  }
  [[nodiscard]] std::size_t n_cols() const noexcept {
    return cols_ ? cols_->size() : arena_->n_cols();
  }

  /// Arena row behind view position i / arena column behind view
  /// column j (unchecked; debug builds assert).
  [[nodiscard]] std::uint32_t row_id(std::size_t i) const noexcept {
    assert(i < n_rows());
    return rows_ ? (*rows_)[i] : static_cast<std::uint32_t>(i);
  }
  [[nodiscard]] std::size_t col_id(std::size_t j) const noexcept {
    assert(j < n_cols());
    return cols_ ? (*cols_)[j] : j;
  }

  [[nodiscard]] ColumnView column(std::size_t j) const noexcept {
    const std::span<const float> base = arena_->column(col_id(j));
    if (rows_ == nullptr) return {base};
    return {base.data(), rows_->data(), rows_->size()};
  }
  [[nodiscard]] const ColumnInfo& column_info(std::size_t j) const noexcept {
    return arena_->column_info(col_id(j));
  }
  /// Materialized column metadata in view order (metadata only — no
  /// float data is copied).
  [[nodiscard]] std::vector<ColumnInfo> columns_copy() const;

  /// Unchecked element access for hot loops (debug builds assert).
  [[nodiscard]] float value(std::size_t i, std::size_t j) const noexcept {
    return arena_->value(row_id(i), col_id(j));
  }
  /// Checked element access for API boundaries.
  [[nodiscard]] float at(std::size_t i, std::size_t j) const;

  [[nodiscard]] bool label(std::size_t i) const noexcept {
    assert(i < n_rows());
    return labels_override_ ? (*labels_override_)[i] != 0
                            : arena_->label(row_id(i));
  }
  /// Labels in view order as a contiguous span. Zero-copy when the view
  /// keeps the arena's row order or carries an override; otherwise
  /// gathered into `storage`.
  [[nodiscard]] std::span<const std::uint8_t> labels(
      std::vector<std::uint8_t>& storage) const;
  [[nodiscard]] std::vector<std::uint8_t> labels_copy() const;
  [[nodiscard]] std::size_t positives() const noexcept;

  /// View restricted to the listed view-local rows / columns (indices
  /// are validated — this is an API boundary). Only the uint32 index
  /// vector is materialized, never data.
  [[nodiscard]] DatasetView rows(std::span<const std::size_t> idx) const;
  [[nodiscard]] DatasetView rows(std::span<const std::uint32_t> idx) const;
  [[nodiscard]] DatasetView cols(std::span<const std::size_t> idx) const;

  /// View with replaced labels (one per view row, in view order). The
  /// arena's labels are untouched — 52 one-vs-rest problems can share
  /// one matrix.
  [[nodiscard]] DatasetView relabel(std::span<const std::uint8_t> labels) const;

  [[nodiscard]] const FeatureArena& arena() const noexcept { return *arena_; }

 private:
  template <typename Index>
  DatasetView rows_impl(std::span<const Index> idx) const;

  const FeatureArena* arena_ = nullptr;
  std::shared_ptr<const std::vector<std::uint32_t>> rows_;  // null = all
  std::shared_ptr<const std::vector<std::uint32_t>> cols_;  // null = all
  // Labels in view order when the view was relabelled; null = arena's.
  std::shared_ptr<const std::vector<std::uint8_t>> labels_override_;
};

/// Copies a view into a standalone arena — the reference semantics the
/// old copying row/column-subset APIs had. Tests compare views against
/// this; production code never needs it.
[[nodiscard]] FeatureArena materialize(const DatasetView& view);

}  // namespace nevermind::ml
