// Decision stumps — the weak learners of BStump (Section 4.4 of the
// paper; Fig 5 shows one). A stump tests a single line feature against a
// threshold delta (continuous) or a value (categorical) and emits a
// confidence-rated score S+ or S- (Schapire & Singer real AdaBoost).
// Missing measurements fall into their own abstain branch.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "exec/exec.hpp"
#include "ml/dataset.hpp"

namespace nevermind::ml {

struct Stump {
  std::size_t feature = 0;
  bool categorical = false;
  /// Continuous: predicate is x >= threshold. Categorical: x == threshold.
  float threshold = 0.0F;
  /// Score when the predicate holds (the "S+" arrow of Fig 5).
  double score_pass = 0.0;
  /// Score when the predicate fails ("S-").
  double score_fail = 0.0;
  /// Score for a missing value (Boostexter abstains by default, but the
  /// weight statistics can justify a non-zero vote).
  double score_missing = 0.0;

  [[nodiscard]] double evaluate(float value) const noexcept {
    if (is_missing(value)) return score_missing;
    const bool pass = categorical ? value == threshold : value >= threshold;
    return pass ? score_pass : score_fail;
  }
};

/// Per-column preprocessing shared by every boosting iteration: row
/// indices sorted by feature value for continuous columns, and rows
/// grouped by value for categorical columns. Building this once turns
/// each boosting iteration into a linear scan per feature. Indices are
/// view-local positions — searches must run against the same view the
/// index was built on.
class SortedColumns {
 public:
  /// Indexes every column, or — when `only` is non-empty — just the
  /// listed columns (single-feature training indexes one column instead
  /// of paying O(F n log n) per call). Columns are independent, so a
  /// parallel context splits the work across them.
  explicit SortedColumns(
      const DatasetView& data, std::span<const std::size_t> only = {},
      const exec::ExecContext& exec = exec::ExecContext::serial());

  struct CategoricalGroup {
    float value;
    std::vector<std::uint32_t> rows;
  };

  [[nodiscard]] std::span<const std::uint32_t> sorted_rows(std::size_t col) const {
    return sorted_[col];
  }
  [[nodiscard]] std::span<const CategoricalGroup> groups(std::size_t col) const {
    return groups_[col];
  }

 private:
  std::vector<std::vector<std::uint32_t>> sorted_;       // continuous cols
  std::vector<std::vector<CategoricalGroup>> groups_;    // categorical cols
};

struct StumpSearchResult {
  Stump stump;
  /// Schapire–Singer normalizer Z = sum_b 2 sqrt(W+_b W-_b); smaller is
  /// a stronger weak learner.
  double z = 1.0;
};

/// Exhaustive best-stump search over all features given the current
/// boosting weights. `weights[i]` must be non-negative; labels come from
/// `data`. `smoothing` is the epsilon in S = 0.5 ln((W+ + eps)/(W- + eps)).
/// Per-feature scans run in parallel under `exec`; the winner is picked
/// by an ordered reduce (ties go to the lowest feature index), so the
/// result is byte-identical to the serial scan at any thread count.
[[nodiscard]] StumpSearchResult find_best_stump(
    const DatasetView& data, const SortedColumns& sorted,
    std::span<const double> weights, double smoothing,
    const exec::ExecContext& exec = exec::ExecContext::serial());

/// Same search with externally supplied labels (labels[i], one per view
/// row): one shared feature matrix + sorted index can serve many
/// relabelled one-vs-rest problems without copying the dataset.
[[nodiscard]] StumpSearchResult find_best_stump(
    const DatasetView& data, const SortedColumns& sorted,
    std::span<const std::uint8_t> labels, std::span<const double> weights,
    double smoothing,
    const exec::ExecContext& exec = exec::ExecContext::serial());

/// Best stump restricted to one feature (used by the per-feature AP(N)
/// selection, which trains single-feature predictors).
[[nodiscard]] StumpSearchResult find_best_stump_for_feature(
    const DatasetView& data, const SortedColumns& sorted,
    std::span<const double> weights, double smoothing, std::size_t feature);

/// Single-feature search with externally supplied labels.
[[nodiscard]] StumpSearchResult find_best_stump_for_feature(
    const DatasetView& data, const SortedColumns& sorted,
    std::span<const std::uint8_t> labels, std::span<const double> weights,
    double smoothing, std::size_t feature);

}  // namespace nevermind::ml
