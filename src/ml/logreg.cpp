#include "ml/logreg.hpp"

#include <cmath>
#include <stdexcept>

#include "ml/linalg.hpp"
#include "util/mathx.hpp"

namespace nevermind::ml {

double LogisticModel::predict(std::span<const double> covariates) const {
  if (coefficients.empty()) return 0.5;
  double eta = coefficients[0];
  const std::size_t k = coefficients.size() - 1;
  for (std::size_t j = 0; j < k && j < covariates.size(); ++j) {
    eta += coefficients[j + 1] * covariates[j];
  }
  return util::sigmoid(eta);
}

LogisticModel fit_logistic(std::span<const double> rows,
                           std::size_t n_covariates,
                           std::span<const std::uint8_t> labels,
                           double ridge, int max_iterations) {
  LogisticModel model;
  const std::size_t n = labels.size();
  const std::size_t p = n_covariates + 1;  // + intercept
  if (n == 0 || (n_covariates > 0 && rows.size() != n * n_covariates)) {
    throw std::invalid_argument("fit_logistic: shape mismatch");
  }
  model.coefficients.assign(p, 0.0);

  auto covariate = [&](std::size_t i, std::size_t j) -> double {
    return j == 0 ? 1.0 : rows[i * n_covariates + (j - 1)];
  };

  Matrix hessian(p, p);
  for (int it = 0; it < max_iterations; ++it) {
    std::vector<double> gradient(p, 0.0);
    hessian = Matrix(p, p);
    for (std::size_t i = 0; i < n; ++i) {
      double eta = model.coefficients[0];
      for (std::size_t j = 1; j < p; ++j) {
        eta += model.coefficients[j] * covariate(i, j);
      }
      const double mu = util::sigmoid(eta);
      const double resid = (labels[i] != 0 ? 1.0 : 0.0) - mu;
      const double w = std::max(mu * (1.0 - mu), 1e-12);
      for (std::size_t j = 0; j < p; ++j) {
        const double xj = covariate(i, j);
        gradient[j] += resid * xj;
        for (std::size_t k = j; k < p; ++k) {
          hessian.at(j, k) += w * xj * covariate(i, k);
        }
      }
    }
    for (std::size_t j = 0; j < p; ++j) {
      hessian.at(j, j) += ridge;
      gradient[j] -= ridge * model.coefficients[j];
      for (std::size_t k = 0; k < j; ++k) hessian.at(j, k) = hessian.at(k, j);
    }
    std::vector<double> delta;
    if (!solve_linear_system(hessian, gradient, delta)) break;
    double max_step = 0.0;
    for (std::size_t j = 0; j < p; ++j) {
      model.coefficients[j] += delta[j];
      max_step = std::max(max_step, std::fabs(delta[j]));
    }
    model.iterations = it + 1;
    if (max_step < 1e-9) {
      model.converged = true;
      break;
    }
  }

  // Wald statistics from the observed information at the optimum.
  Matrix cov;
  model.std_errors.assign(p, 0.0);
  model.z_values.assign(p, 0.0);
  model.p_values.assign(p, 1.0);
  if (invert_spd(hessian, cov)) {
    for (std::size_t j = 0; j < p; ++j) {
      const double var = cov.at(j, j);
      if (var > 0.0) {
        model.std_errors[j] = std::sqrt(var);
        model.z_values[j] = model.coefficients[j] / model.std_errors[j];
        model.p_values[j] = util::two_sided_p_value(model.z_values[j]);
      }
    }
  }
  return model;
}

LogisticModel fit_logistic_simple(std::span<const double> x,
                                  std::span<const std::uint8_t> labels) {
  return fit_logistic(x, 1, labels);
}

}  // namespace nevermind::ml
