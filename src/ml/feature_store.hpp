// Persistent columnar feature store: the "nmarena" binary artefact
// (extending the nmkernel/nmlocator artefact taxonomy) plus a portable
// text fallback ("nmdataset v1").
//
// The binary layout is built for mmap loading:
//
//   [  0,  16)  preamble: magic "NMARENA\0", u32 version, u32 endian tag
//   [ 16, 128)  fixed header: section offsets/sizes, row/col/aux counts,
//               positives, per-section checksums, header checksum
//   [128,  ..)  payload: n_cols x n_rows floats, column-major, stride
//               n_rows — 64-byte aligned so a page-aligned mmap yields
//               aligned column starts
//   labels      n_rows bytes (0/1)
//   aux         n_aux arrays of n_rows u32 each (row->line/week/note
//               mappings; always copied out on load, so no alignment
//               requirement on the file section)
//   meta        column metadata (name, categorical flag, per-column
//               payload checksum), aux names, and an opaque caller blob
//               (the features layer stores the encoder configuration
//               there)
//   bins        v2 only: [u64 size][u64 FNV-1a checksum][content] — the
//               histogram-path quantization (per-column bin metadata
//               plus one uint8 code per row), so training from a loaded
//               artefact can skip re-binning entirely. Writers emit v1
//               when no bins are attached (existing artefacts stay
//               byte-identical) and v2 otherwise; v1-only readers
//               reject v2 files with kBadVersion. Both versions are
//               strict about their end: a file longer than its declared
//               sections is kMalformedHeader, so v1 files cannot smuggle
//               an unverified bins section past an old reader. The text
//               fallback never carries bins (it re-bins on use).
//
// All integers and floats are little-endian; the build refuses exotic
// hosts at compile time and the reader refuses foreign files at run
// time (kBadEndian). Checksums are 64-bit FNV-1a, per section, with
// payload integrity tracked per column so the streaming writer can
// accumulate them chunk by chunk.
//
// Three access paths, byte-identical by construction:
//   * ArenaStreamWriter — the encoder appends rows chunk-wise; only one
//     bounded chunk is in flight, never the full matrix;
//   * eager reader — materializes a heap FeatureArena, verifying every
//     checksum;
//   * mmap reader — maps the file MAP_PRIVATE/PROT_READ and wraps the
//     payload in a read-only file-backed FeatureArena; header, meta,
//     labels and aux are verified eagerly (they are small), payload
//     checksums only on demand (verify_payload) because verifying them
//     faults in every page and defeats lazy loading.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "ml/binning.hpp"
#include "ml/dataset.hpp"

namespace nevermind::ml {

/// Corruption/IO taxonomy of the nmarena readers. Every failure mode is
/// a distinct code so callers (and the table-driven corruption tests)
/// can tell a stale-format file from a damaged one.
enum class StoreError : std::uint8_t {
  kOk = 0,
  kIoError,           // open/read/map/write syscall failure
  kTruncatedHeader,   // file shorter than the fixed 128-byte header
  kBadMagic,          // not an nmarena artefact
  kBadVersion,        // artefact version this build does not read
  kBadEndian,         // written by a foreign-endian host
  kShortFile,         // file shorter than its declared sections
  kChecksumMismatch,  // a section checksum does not match its bytes
  kMalformedHeader,   // header fields internally inconsistent
  kMalformedMeta,     // metadata section does not parse
  kRowCountMismatch,  // writer finished with a different row count
  kMalformedBins,     // v2 bin-code section does not parse / validate
};

[[nodiscard]] const char* store_error_name(StoreError e) noexcept;

struct StoreStatus {
  StoreError code = StoreError::kOk;
  std::string message;
  [[nodiscard]] bool ok() const noexcept { return code == StoreError::kOk; }
};

/// A loaded dataset artefact: the feature matrix plus the row-mapping
/// aux arrays and the opaque metadata blob the writer recorded.
struct StoredArena {
  FeatureArena arena;
  std::vector<std::string> aux_names;
  std::vector<std::vector<std::uint32_t>> aux;  // each n_rows() long
  std::string meta;
  /// v2 artefacts only: the stored histogram-path quantization (always
  /// materialized into aligned heap vectors, even under mmap loads).
  /// Null for v1 files and the text fallback.
  std::shared_ptr<const BinnedColumns> bins;
};

/// Streaming nmarena writer: rows are appended in encode order and
/// flushed in bounded chunks (chunk_rows x n_cols floats buffered, then
/// scattered to the column-major payload with one seek per column), so
/// peak memory is O(chunk + labels), never the full matrix. The exact
/// row count must be known up front — both encoders pre-count their
/// rows — and finish() fails with kRowCountMismatch otherwise.
class ArenaStreamWriter {
 public:
  ArenaStreamWriter(std::string path, std::vector<ColumnInfo> columns,
                    std::size_t n_rows, std::size_t chunk_rows = 4096);
  ~ArenaStreamWriter();
  ArenaStreamWriter(const ArenaStreamWriter&) = delete;
  ArenaStreamWriter& operator=(const ArenaStreamWriter&) = delete;

  /// Appends one example. Throws std::logic_error on misuse (wrong
  /// feature count, more rows than declared, append after finish); IO
  /// errors are deferred to finish().
  void append(std::span<const float> features, bool positive);

  /// Opaque caller blob stored in the meta section (the features layer
  /// records the dataset kind + encoder configuration).
  void set_meta(std::string meta);

  /// Named per-row u32 aux array (row->line/week/note mapping). Must be
  /// called after all rows are appended; `values.size()` must equal the
  /// declared row count.
  void add_aux(const std::string& name, std::span<const std::uint32_t> values);

  /// Attaches the histogram-path quantization: the artefact is written
  /// as nmarena v2 with a trailing bin-code section (without this call
  /// the writer emits v1, byte-identical to previous builds). The bins
  /// must cover exactly the declared matrix (n_rows x n_cols) and are
  /// serialized immediately, so the reference need not outlive the
  /// call. Throws std::logic_error on misuse.
  void set_bins(const BinnedColumns& bins);

  /// Flushes the tail chunk, writes labels/aux/meta and the final
  /// header, and closes the file. Returns the first error encountered.
  [[nodiscard]] StoreStatus finish();

  [[nodiscard]] std::size_t rows_appended() const noexcept { return appended_; }

 private:
  void flush_chunk();

  std::string path_;
  std::vector<ColumnInfo> columns_;
  std::size_t n_rows_ = 0;
  std::size_t chunk_rows_ = 0;
  std::size_t appended_ = 0;
  std::size_t flushed_ = 0;
  std::size_t chunk_fill_ = 0;
  bool finished_ = false;
  bool io_failed_ = false;
  std::vector<float> chunk_;            // column-major, stride chunk_rows_
  std::vector<std::uint8_t> labels_;    // buffered whole (1 byte/row)
  std::vector<std::uint64_t> col_hash_;  // running FNV-1a per column
  std::vector<std::string> aux_names_;
  std::vector<std::vector<std::uint32_t>> aux_;
  std::string meta_;
  std::string bins_section_;  // serialized by set_bins; empty = write v1
  bool has_bins_ = false;
  void* file_ = nullptr;  // std::FILE*, opaque to keep <cstdio> out
};

enum class ArenaLoadMode : std::uint8_t { kEager = 0, kMapped };

struct ArenaLoadOptions {
  ArenaLoadMode mode = ArenaLoadMode::kEager;
  /// Verify per-column payload checksums. Eager loads always verify
  /// (the payload is being read anyway). Mapped loads skip it unless
  /// set — verification touches every payload page.
  bool verify_payload = false;
};

/// Load an nmarena v1/v2 file. Returns nullopt with `status` filled on
/// any failure; never throws on malformed input.
[[nodiscard]] std::optional<StoredArena> load_arena(
    const std::string& path, const ArenaLoadOptions& options = {},
    StoreStatus* status = nullptr);

/// Convenience non-streaming save of an in-memory arena (tests/tools).
/// Passing `bins` writes a v2 artefact with the bin-code section.
[[nodiscard]] StoreStatus save_arena(
    const std::string& path, const FeatureArena& arena,
    std::span<const std::string> aux_names = {},
    std::span<const std::vector<std::uint32_t>> aux = {},
    const std::string& meta = {}, const BinnedColumns* bins = nullptr);

/// Portable text fallback ("nmdataset v1"): same contents as the binary
/// artefact, floats at max_digits10 so binary32 values round-trip bit
/// for bit, missing values spelled "NA". Loading a text artefact yields
/// a heap arena byte-identical to the binary readers'.
void save_arena_text(std::ostream& os, const FeatureArena& arena,
                     std::span<const std::string> aux_names = {},
                     std::span<const std::vector<std::uint32_t>> aux = {},
                     const std::string& meta = {});
[[nodiscard]] std::optional<StoredArena> load_arena_text(
    std::istream& is, StoreStatus* status = nullptr);

/// Format sniff + load: nmarena magic -> binary reader (honouring
/// `options`), otherwise the text reader (always an eager heap arena).
[[nodiscard]] std::optional<StoredArena> load_arena_auto(
    const std::string& path, const ArenaLoadOptions& options = {},
    StoreStatus* status = nullptr);

/// True when `path` names a binary nmarena file (by magic sniff).
[[nodiscard]] bool is_arena_file(const std::string& path);

}  // namespace nevermind::ml
