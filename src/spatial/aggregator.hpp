// Spatial localization: separate network-side from premise-side
// problems by aggregating per-line evidence up the line -> crossbox ->
// DSLAM -> ATM hierarchy of Fig 1.
//
// The paper's per-line locator sees one line at a time; a flooded
// crossbox or a dying DSLAM shelf degrades *dozens* of lines at once,
// and that co-impairment is visible long before any single line's
// evidence is conclusive (TelApart and the Duke proactive-network-
// maintenance work cluster subscribers the same way — see PAPERS.md).
// The aggregator scores every line's Saturday test against its own
// history (bad-direction z-scores plus unreachable-though-usually-
// reachable modems), counts anomalous lines per shared-plant group,
// and flags groups whose anomaly rate is binomially incompatible with
// the population baseline as network-side events.
//
// Two entry points share one per-line evaluation:
//   * analyze_week  — offline batch over a SimDataset, walking the same
//     features::LineWindow state the encoder builds;
//   * analyze_store — online, snapshotting serve's LineStateStore.
// After ReplayDriver::feed_through(w) both paths see bit-identical
// window state, so their reports agree exactly.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dslsim/simulator.hpp"
#include "exec/exec.hpp"
#include "features/encoder.hpp"
#include "serve/line_state_store.hpp"

namespace nevermind::spatial {

enum class GroupScope : std::uint8_t { kCrossbox = 0, kDslam, kAtm };
[[nodiscard]] const char* group_scope_name(GroupScope scope) noexcept;

enum class LineVerdict : std::uint8_t { kHealthy = 0, kPremise, kNetwork };
[[nodiscard]] const char* line_verdict_name(LineVerdict v) noexcept;

struct SpatialConfig {
  /// A line counts as anomalous when its worst bad-direction z-score
  /// against its own history reaches this.
  double line_z_threshold = 3.0;
  /// Minimum history samples before a line can be judged at all.
  int min_history_weeks = 4;
  /// An unreachable modem only counts as anomalous when the line's
  /// historical off-rate is at most this (usually-reachable lines).
  double max_historic_off_rate = 0.3;
  /// A group flags as network-side when its anomaly count is this many
  /// binomial standard deviations above the population baseline...
  double group_alert_z = 3.0;
  /// ...and its anomaly rate exceeds the baseline by at least this.
  double min_excess_rate = 0.08;
  /// Groups smaller than this never flag (one noisy line is not plant).
  std::size_t min_group_lines = 4;
};

/// Evidence extracted from one line's current Saturday test.
struct LineEvidence {
  float anomaly = 0.0F;        // worst bad-direction z (capped)
  float network_prior = 0.0F;  // optional locator P(network) evidence
  bool evaluated = false;      // enough history to judge
  bool anomalous = false;
  bool missing = false;        // unreachable though usually reachable
};

/// One shared-plant group's verdict.
struct GroupFinding {
  GroupScope scope = GroupScope::kDslam;
  std::uint32_t id = 0;
  std::uint32_t lines = 0;      // evaluated lines in the group
  std::uint32_t anomalous = 0;  // of which anomalous (incl. missing)
  double rate = 0.0;
  double baseline = 0.0;
  double zscore = 0.0;
  double confidence = 0.0;  // in [0, 1); 0 unless network_side
  bool network_side = false;
};

struct SpatialReport {
  int week = -1;
  std::vector<LineEvidence> lines;      // indexed by LineId
  std::vector<LineVerdict> verdicts;    // indexed by LineId
  std::vector<float> line_confidence;   // network confidence per line
  std::vector<GroupFinding> crossboxes;  // all groups, by id
  std::vector<GroupFinding> dslams;
  std::vector<GroupFinding> atms;
  /// Flagged groups only, highest confidence first.
  std::vector<GroupFinding> network_findings;
  double baseline_rate = 0.0;
  std::size_t evaluated = 0;
  std::size_t anomalous_lines = 0;
};

/// Score one line's current measurement against its window history —
/// THE single per-line evidence implementation both the offline and the
/// store-fed paths use. Pure; no RNG.
[[nodiscard]] LineEvidence evaluate_line(const features::LineWindow& window,
                                         const dslsim::MetricVector& current,
                                         const SpatialConfig& config);

class SpatialAggregator {
 public:
  /// Borrows the topology; it must outlive the aggregator.
  explicit SpatialAggregator(const dslsim::Topology& topology,
                             SpatialConfig config = {});

  /// Offline batch: walk every line's window through week-1 (exactly as
  /// the feature encoder does) and judge week `week`'s measurements.
  /// `network_priors`, when non-empty, carries per-line P(network-side)
  /// evidence from the trouble locator (indexed by LineId, negative =
  /// no evidence) folded into group confidence. Deterministic at every
  /// thread count.
  [[nodiscard]] SpatialReport analyze_week(
      const dslsim::SimDataset& data, int week,
      std::span<const float> network_priors = {},
      const exec::ExecContext& exec = exec::ExecContext::serial()) const;

  /// Online: snapshot the live store (fed by ReplayDriver or the real
  /// feed handlers) and judge each line's current week. Lines the store
  /// has never seen stay unevaluated.
  [[nodiscard]] SpatialReport analyze_store(
      const serve::LineStateStore& store,
      std::span<const float> network_priors = {},
      const exec::ExecContext& exec = exec::ExecContext::serial()) const;

  /// Group per-line evidence up the hierarchy — exposed so callers with
  /// their own evidence source (tests, replays) can reuse the verdict
  /// logic. `lines` must be indexed by LineId over the full topology.
  [[nodiscard]] SpatialReport aggregate(std::vector<LineEvidence> lines,
                                        int week) const;

  [[nodiscard]] const SpatialConfig& config() const noexcept { return config_; }
  [[nodiscard]] const dslsim::Topology& topology() const noexcept {
    return topology_;
  }

 private:
  const dslsim::Topology& topology_;
  SpatialConfig config_;
};

}  // namespace nevermind::spatial
