#include "spatial/aggregator.hpp"

#include <algorithm>
#include <cmath>

namespace nevermind::spatial {

namespace {

using dslsim::LineMetric;
using dslsim::metric_index;

/// Metrics watched for anomalies, with the direction that is "bad":
/// error counters and attenuation rise under a fault; rates, margins
/// and relative capacity fall.
struct WatchedMetric {
  LineMetric metric;
  bool higher_is_bad;
};
constexpr WatchedMetric kWatched[] = {
    {LineMetric::kDnCvCnt1, true},      {LineMetric::kDnCvCnt2, true},
    {LineMetric::kDnCvCnt3, true},      {LineMetric::kDnEsCnt1, true},
    {LineMetric::kDnEsCnt2, true},      {LineMetric::kDnFecCnt1, true},
    {LineMetric::kDnAttenuation, true}, {LineMetric::kUpAttenuation, true},
    {LineMetric::kDnBitRate, false},    {LineMetric::kUpBitRate, false},
    {LineMetric::kDnNoiseMargin, false}, {LineMetric::kUpNoiseMargin, false},
    {LineMetric::kDnRelCap, false},     {LineMetric::kUpRelCap, false},
    {LineMetric::kDnMaxAttainBr, false}, {LineMetric::kUpMaxAttainBr, false},
};

constexpr double kZCap = 20.0;

}  // namespace

const char* group_scope_name(GroupScope scope) noexcept {
  switch (scope) {
    case GroupScope::kCrossbox:
      return "crossbox";
    case GroupScope::kDslam:
      return "dslam";
    case GroupScope::kAtm:
      return "atm";
  }
  return "?";
}

const char* line_verdict_name(LineVerdict v) noexcept {
  switch (v) {
    case LineVerdict::kHealthy:
      return "healthy";
    case LineVerdict::kPremise:
      return "premise";
    case LineVerdict::kNetwork:
      return "network";
  }
  return "?";
}

LineEvidence evaluate_line(const features::LineWindow& window,
                           const dslsim::MetricVector& current,
                           const SpatialConfig& config) {
  LineEvidence ev;
  const std::uint32_t seen = window.tests_seen;
  if (seen < static_cast<std::uint32_t>(config.min_history_weeks)) {
    return ev;  // not enough history to judge anything
  }

  if (!dslsim::record_present(current)) {
    // Unreachable modem: strong evidence only when this line usually
    // answers (a DSLAM outage turns a whole shelf dark at once).
    const double off_rate =
        static_cast<double>(window.tests_off) / static_cast<double>(seen);
    if (off_rate <= config.max_historic_off_rate) {
      ev.evaluated = true;
      ev.missing = true;
      ev.anomalous = true;
      ev.anomaly = static_cast<float>(kZCap);
    }
    return ev;
  }

  double worst = 0.0;
  bool any_metric = false;
  for (const auto& w : kWatched) {
    const std::size_t i = metric_index(w.metric);
    const float x = current[i];
    if (std::isnan(x)) continue;
    const util::RunningStats& h = window.history[i];
    if (h.count() < static_cast<std::size_t>(config.min_history_weeks)) {
      continue;
    }
    any_metric = true;
    // Floor the spread so near-constant counters (healthy lines report
    // mostly zeros) still produce finite, capped z-scores.
    const double sd =
        std::max(h.stddev(), 1e-3 + 0.02 * std::abs(h.mean()));
    const double z = (static_cast<double>(x) - h.mean()) / sd;
    const double bad = w.higher_is_bad ? z : -z;
    worst = std::max(worst, std::min(bad, kZCap));
  }
  if (!any_metric) return ev;
  ev.evaluated = true;
  ev.anomaly = static_cast<float>(worst);
  ev.anomalous = worst >= config.line_z_threshold;
  return ev;
}

SpatialAggregator::SpatialAggregator(const dslsim::Topology& topology,
                                     SpatialConfig config)
    : topology_(topology), config_(config) {}

SpatialReport SpatialAggregator::aggregate(std::vector<LineEvidence> lines,
                                           int week) const {
  const dslsim::Topology& topo = topology_;
  SpatialReport report;
  report.week = week;
  report.lines = std::move(lines);
  report.verdicts.assign(topo.n_lines(), LineVerdict::kHealthy);
  report.line_confidence.assign(topo.n_lines(), 0.0F);

  for (const LineEvidence& ev : report.lines) {
    if (!ev.evaluated) continue;
    ++report.evaluated;
    if (ev.anomalous) ++report.anomalous_lines;
  }
  report.baseline_rate =
      report.evaluated > 0
          ? static_cast<double>(report.anomalous_lines) /
                static_cast<double>(report.evaluated)
          : 0.0;
  // The binomial baseline: at least a whisper of noise so a perfectly
  // quiet population still yields finite z-scores.
  const double p = std::clamp(report.baseline_rate, 1e-4, 0.9);

  const auto judge = [&](GroupScope scope, std::uint32_t id,
                         std::span<const dslsim::LineId> members) {
    GroupFinding g;
    g.scope = scope;
    g.id = id;
    double prior_sum = 0.0;
    std::uint32_t prior_n = 0;
    for (dslsim::LineId u : members) {
      const LineEvidence& ev = report.lines[u];
      if (!ev.evaluated) continue;
      ++g.lines;
      if (ev.anomalous) {
        ++g.anomalous;
        if (ev.network_prior > 0.0F) {
          prior_sum += ev.network_prior;
          ++prior_n;
        }
      }
    }
    if (g.lines == 0) return g;
    const double n = g.lines;
    g.rate = static_cast<double>(g.anomalous) / n;
    g.baseline = report.baseline_rate;
    g.zscore = (static_cast<double>(g.anomalous) - n * p) /
               std::sqrt(n * p * (1.0 - p));
    g.network_side = g.lines >= config_.min_group_lines && g.anomalous >= 2 &&
                     g.rate - report.baseline_rate >= config_.min_excess_rate &&
                     g.zscore >= config_.group_alert_z;
    if (g.network_side) {
      const double conf_z =
          1.0 - std::exp(-(g.zscore - config_.group_alert_z + 1.0) / 4.0);
      if (prior_n > 0) {
        // Locator evidence available on dispatched lines in the group:
        // blend it with the co-impairment evidence.
        g.confidence = std::clamp(
            0.5 * conf_z + 0.5 * (prior_sum / static_cast<double>(prior_n)),
            0.0, 1.0);
      } else {
        g.confidence = std::clamp(conf_z, 0.0, 1.0);
      }
    }
    return g;
  };

  report.crossboxes.reserve(topo.n_crossboxes());
  for (std::uint32_t c = 0; c < topo.n_crossboxes(); ++c) {
    report.crossboxes.push_back(
        judge(GroupScope::kCrossbox, c, topo.lines_of_crossbox(c)));
  }
  report.dslams.reserve(topo.n_dslams());
  for (std::uint32_t d = 0; d < topo.n_dslams(); ++d) {
    report.dslams.push_back(
        judge(GroupScope::kDslam, d, topo.lines_of_dslam(d)));
  }
  report.atms.reserve(topo.n_atms());
  for (std::uint32_t a = 0; a < topo.n_atms(); ++a) {
    std::vector<dslsim::LineId> members;
    const auto [first, last] = topo.dslam_range_of_atm(a);
    for (std::uint32_t d = first; d < last; ++d) {
      const auto span = topo.lines_of_dslam(d);
      members.insert(members.end(), span.begin(), span.end());
    }
    report.atms.push_back(judge(GroupScope::kAtm, a, members));
  }

  for (const auto* groups : {&report.crossboxes, &report.dslams, &report.atms}) {
    for (const GroupFinding& g : *groups) {
      if (g.network_side) report.network_findings.push_back(g);
    }
  }
  std::sort(report.network_findings.begin(), report.network_findings.end(),
            [](const GroupFinding& a, const GroupFinding& b) {
              if (a.confidence != b.confidence) {
                return a.confidence > b.confidence;
              }
              if (a.scope != b.scope) return a.scope < b.scope;
              return a.id < b.id;
            });

  // Per-line verdict: network when any enclosing group flagged (with
  // the strongest enclosing confidence), else premise when the line
  // itself is anomalous, else healthy.
  for (dslsim::LineId u = 0; u < topo.n_lines(); ++u) {
    const LineEvidence& ev = report.lines[u];
    if (!ev.evaluated) continue;
    double conf = 0.0;
    const GroupFinding& cb = report.crossboxes[topo.crossbox_of(u)];
    if (cb.network_side) conf = std::max(conf, cb.confidence);
    const GroupFinding& ds = report.dslams[topo.dslam_of(u)];
    if (ds.network_side) conf = std::max(conf, ds.confidence);
    const GroupFinding& at = report.atms[topo.atm_of_line(u)];
    if (at.network_side) conf = std::max(conf, at.confidence);
    if (conf > 0.0) {
      report.verdicts[u] = LineVerdict::kNetwork;
      report.line_confidence[u] = static_cast<float>(conf);
    } else if (ev.anomalous) {
      report.verdicts[u] = LineVerdict::kPremise;
    }
  }
  return report;
}

SpatialReport SpatialAggregator::analyze_week(
    const dslsim::SimDataset& data, int week,
    std::span<const float> network_priors,
    const exec::ExecContext& exec) const {
  std::vector<LineEvidence> evidence(topology_.n_lines());
  exec.parallel_for(0, topology_.n_lines(), 0,
                    [&](std::size_t ub, std::size_t ue) {
    for (auto u = static_cast<dslsim::LineId>(ub); u < ue; ++u) {
      features::LineWindow window;
      for (int w = 0; w < week; ++w) window.update(data.measurement(w, u));
      evidence[u] =
          evaluate_line(window, data.measurement(week, u), config_);
      if (u < network_priors.size() && network_priors[u] > 0.0F) {
        evidence[u].network_prior = network_priors[u];
      }
    }
  });
  return aggregate(std::move(evidence), week);
}

SpatialReport SpatialAggregator::analyze_store(
    const serve::LineStateStore& store, std::span<const float> network_priors,
    const exec::ExecContext& exec) const {
  const std::vector<dslsim::LineId> ids = store.line_ids();
  std::vector<LineEvidence> evidence(topology_.n_lines());
  std::vector<int> weeks(ids.size(), -1);
  exec.parallel_for(0, ids.size(), 0, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      const dslsim::LineId u = ids[i];
      if (u >= evidence.size()) continue;
      const auto snap = store.snapshot(u);
      if (!snap) continue;
      evidence[u] = evaluate_line(snap->window, snap->current, config_);
      if (u < network_priors.size() && network_priors[u] > 0.0F) {
        evidence[u].network_prior = network_priors[u];
      }
      weeks[i] = snap->week;
    }
  });
  int week = -1;
  for (int w : weeks) week = std::max(week, w);
  return aggregate(std::move(evidence), week);
}

}  // namespace nevermind::spatial
