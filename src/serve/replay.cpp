#include "serve/replay.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "util/calendar.hpp"

namespace nevermind::serve {

ReplayDriver::ReplayDriver(const dslsim::SimDataset& data,
                           LineStateStore& store)
    : data_(data), store_(store) {
  tickets_.reserve(data.tickets().size());
  for (const auto& ticket : data.tickets()) {
    if (ticket.category == dslsim::TicketCategory::kCustomerEdge) {
      tickets_.emplace_back(ticket.reported, ticket.line);
    }
  }
  std::stable_sort(tickets_.begin(), tickets_.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
}

int ReplayDriver::feed_next_week(const exec::ExecContext& exec) {
  if (exhausted()) return -1;
  const int week = next_week_;
  const util::Day day = util::saturday_of_week(week);

  // Tickets first: week w's feature row sees every ticket reported at
  // or before w's Saturday.
  while (ticket_cursor_ < tickets_.size() &&
         tickets_[ticket_cursor_].first <= day) {
    store_.ingest_ticket(tickets_[ticket_cursor_].second,
                         tickets_[ticket_cursor_].first);
    ++ticket_cursor_;
  }

  const std::size_t n_lines = data_.n_lines();
  exec.parallel_for(0, n_lines, 0, [&](std::size_t b, std::size_t e) {
    for (std::size_t u = b; u < e; ++u) {
      const auto line = static_cast<dslsim::LineId>(u);
      LineMeasurement m;
      m.line = line;
      m.week = week;
      m.profile = data_.plant(line).profile;
      m.metrics = data_.measurement(week, line);
      store_.ingest(m);
    }
  });
  measurements_fed_ += n_lines;
  ++next_week_;
  return week;
}

void ReplayDriver::feed_week_chunk(const dslsim::WeekChunk& chunk,
                                   const exec::ExecContext& exec) {
  if (chunk.week != next_week_) {
    throw std::logic_error("ReplayDriver: expected week " +
                           std::to_string(next_week_) + ", got chunk for " +
                           std::to_string(chunk.week));
  }
  const util::Day day = chunk.day;
  while (ticket_cursor_ < tickets_.size() &&
         tickets_[ticket_cursor_].first <= day) {
    store_.ingest_ticket(tickets_[ticket_cursor_].second,
                         tickets_[ticket_cursor_].first);
    ++ticket_cursor_;
  }

  const std::size_t n_lines = chunk.measurements.size();
  exec.parallel_for(0, n_lines, 0, [&](std::size_t b, std::size_t e) {
    for (std::size_t u = b; u < e; ++u) {
      const auto line = static_cast<dslsim::LineId>(u);
      LineMeasurement m;
      m.line = line;
      m.week = chunk.week;
      m.profile = data_.plant(line).profile;
      m.metrics = chunk.measurements[u];
      store_.ingest(m);
    }
  });
  measurements_fed_ += n_lines;
  ++next_week_;
}

void ReplayDriver::feed_through(int week, const exec::ExecContext& exec) {
  while (!exhausted() && next_week_ <= week) feed_next_week(exec);
}

}  // namespace nevermind::serve
