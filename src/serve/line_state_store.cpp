#include "serve/line_state_store.hpp"

#include <algorithm>

namespace nevermind::serve {

namespace {

/// splitmix64 finalizer — line ids are dense sequential integers, so a
/// plain modulo would put contiguous id ranges on the same shard and
/// serialize bulk replays. The mix spreads neighbours uniformly.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

LineStateStore::LineStateStore(std::size_t n_shards,
                               std::size_t window_capacity)
    : window_capacity_(std::max<std::size_t>(window_capacity, 1)),
      shards_(std::max<std::size_t>(n_shards, 1)) {}

std::size_t LineStateStore::shard_of(dslsim::LineId line) const noexcept {
  return static_cast<std::size_t>(mix64(line)) % shards_.size();
}

void LineStateStore::ingest(const LineMeasurement& m) {
  Shard& shard = shards_[shard_of(m.line)];
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    Entry& entry = shard.lines[m.line];
    if (m.week < entry.week) return;  // stale delivery: drop
    if (m.week > entry.week && entry.week >= 0) {
      // The previously current Saturday test is now history: fold it
      // into the window exactly when the offline encoder would (after
      // emitting that week's row, before seeing the next week's).
      entry.window.update(entry.current);
    }
    entry.current = m.metrics;
    entry.week = m.week;
    entry.profile = m.profile;
    if (entry.ring.size() < window_capacity_) {
      entry.ring.emplace_back(m.week, m.metrics);
      entry.ring_next = entry.ring.size() % window_capacity_;
    } else {
      entry.ring[entry.ring_next] = {m.week, m.metrics};
      entry.ring_next = (entry.ring_next + 1) % window_capacity_;
    }
  }
  n_measurements_.fetch_add(1, std::memory_order_relaxed);
}

void LineStateStore::ingest_ticket(dslsim::LineId line, util::Day day) {
  Shard& shard = shards_[shard_of(line)];
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    Entry& entry = shard.lines[line];
    if (!entry.has_ticket || day > entry.last_ticket) {
      entry.has_ticket = true;
      entry.last_ticket = day;
    }
  }
  n_tickets_.fetch_add(1, std::memory_order_relaxed);
}

std::optional<LineSnapshot> LineStateStore::snapshot(
    dslsim::LineId line) const {
  const Shard& shard = shards_[shard_of(line)];
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.lines.find(line);
  if (it == shard.lines.end() || it->second.week < 0) return std::nullopt;
  const Entry& entry = it->second;
  LineSnapshot snap;
  snap.window = entry.window;
  snap.current = entry.current;
  snap.week = entry.week;
  snap.profile = entry.profile;
  if (entry.has_ticket) snap.last_ticket = entry.last_ticket;
  return snap;
}

std::vector<std::pair<int, dslsim::MetricVector>> LineStateStore::recent(
    dslsim::LineId line) const {
  const Shard& shard = shards_[shard_of(line)];
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.lines.find(line);
  if (it == shard.lines.end()) return {};
  const Entry& entry = it->second;
  std::vector<std::pair<int, dslsim::MetricVector>> out;
  out.reserve(entry.ring.size());
  // Oldest first: the ring cursor points at the oldest slot once full.
  const std::size_t start =
      entry.ring.size() < window_capacity_ ? 0 : entry.ring_next;
  for (std::size_t i = 0; i < entry.ring.size(); ++i) {
    out.push_back(entry.ring[(start + i) % entry.ring.size()]);
  }
  return out;
}

std::optional<ExportedLine> LineStateStore::export_line(
    dslsim::LineId line) const {
  const Shard& shard = shards_[shard_of(line)];
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.lines.find(line);
  if (it == shard.lines.end()) return std::nullopt;
  const Entry& entry = it->second;
  ExportedLine e;
  e.line = line;
  e.window = entry.window;
  e.current = entry.current;
  e.week = entry.week;
  e.profile = entry.profile;
  e.has_ticket = entry.has_ticket;
  e.last_ticket = entry.last_ticket;
  e.ring.reserve(entry.ring.size());
  const std::size_t start =
      entry.ring.size() < window_capacity_ ? 0 : entry.ring_next;
  for (std::size_t i = 0; i < entry.ring.size(); ++i) {
    e.ring.push_back(entry.ring[(start + i) % entry.ring.size()]);
  }
  return e;
}

void LineStateStore::import_line(const ExportedLine& e) {
  Shard& shard = shards_[shard_of(e.line)];
  const std::lock_guard<std::mutex> lock(shard.mutex);
  Entry& entry = shard.lines[e.line];
  entry.window = e.window;
  entry.current = e.current;
  entry.week = e.week;
  entry.profile = e.profile;
  entry.has_ticket = e.has_ticket;
  entry.last_ticket = e.last_ticket;
  // Rebuild the ring oldest-first from slot 0; if the exporter kept a
  // deeper window, keep only the newest window_capacity_ entries.
  entry.ring.assign(
      e.ring.size() <= window_capacity_
          ? e.ring.begin()
          : e.ring.end() - static_cast<std::ptrdiff_t>(window_capacity_),
      e.ring.end());
  entry.ring_next = entry.ring.size() % window_capacity_;
}

std::vector<dslsim::LineId> LineStateStore::line_ids() const {
  std::vector<dslsim::LineId> out;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [line, entry] : shard.lines) {
      if (entry.week >= 0) out.push_back(line);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t LineStateStore::n_lines() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [line, entry] : shard.lines) {
      if (entry.week >= 0) ++n;
    }
  }
  return n;
}

}  // namespace nevermind::serve
