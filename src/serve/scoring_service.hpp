// The online query surface: score(line) point queries coalesced through
// the micro-batcher, and top_n(N) population rankings — both computed
// from LineStateStore snapshots against the ModelRegistry's current
// kernel. Served scores are byte-identical to the offline batch path
// (TicketPredictor::predict_week) because both run the same
// features::encode_window_row + core::ScoringKernel::score_row code on
// the same per-line window state.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "exec/exec.hpp"
#include "serve/line_state_store.hpp"
#include "serve/micro_batcher.hpp"
#include "serve/model_registry.hpp"

namespace nevermind::serve {

struct ServiceConfig {
  /// Pool used for batch encoding/scoring and the top-N sort.
  exec::ExecContext exec;
  /// Upper bound on how many concurrent point queries one model
  /// invocation coalesces.
  std::size_t max_batch = 64;
  /// Per-request deadline for point queries queued behind the
  /// micro-batcher (0 = wait forever). A wedged batch executor then
  /// surfaces as an invalid ServeScore with reason kTimeout instead of
  /// hanging the caller.
  std::chrono::milliseconds deadline{0};
};

class ScoringService {
 public:
  /// The service borrows the store and registry; both must outlive it.
  ScoringService(const LineStateStore& store, const ModelRegistry& registry,
                 ServiceConfig config = {});

  /// Score one line now, coalescing with concurrent callers into a
  /// micro-batch. `valid` is false when the line has no measurement,
  /// no model is published, or config.deadline expired while queued —
  /// `reason` distinguishes the three.
  [[nodiscard]] ServeScore score(dslsim::LineId line);

  /// Score a batch of lines directly (no batching queue). One model
  /// version is acquired for the whole batch; rows encode and score in
  /// parallel under config.exec, byte-identical at any thread count.
  [[nodiscard]] std::vector<ServeScore> score_lines(
      std::span<const dslsim::LineId> lines) const;

  /// The N highest-scoring lines, ranked exactly as the offline
  /// predictor ranks a week: stable sort by descending score over
  /// ascending line ids, then truncate. With the store replayed through
  /// week w this matches predict_week(w)'s head byte for byte.
  [[nodiscard]] std::vector<ServeScore> top_n(std::size_t n) const;

  /// top_n restricted to an explicit ascending-line-id subset — the
  /// cluster layer ranks each node's primary shards with this and
  /// merges; because lines are unique, merging per-subset rankings by
  /// (score desc, line asc) reproduces the global top_n exactly.
  [[nodiscard]] std::vector<ServeScore> top_n_of(
      std::size_t n, std::span<const dslsim::LineId> lines) const;

  [[nodiscard]] MicroBatcher::Stats batch_stats() const {
    return batcher_.stats();
  }
  [[nodiscard]] const LineStateStore& store() const noexcept {
    return store_;
  }

 private:
  const LineStateStore& store_;
  const ModelRegistry& registry_;
  ServiceConfig config_;
  MicroBatcher batcher_;
};

}  // namespace nevermind::serve
