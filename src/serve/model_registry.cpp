#include "serve/model_registry.hpp"

#include <utility>

namespace nevermind::serve {

std::uint64_t ModelRegistry::publish(core::ScoringKernel kernel) {
  auto model = std::make_shared<ServeModel>();
  const std::uint64_t version =
      next_version_.fetch_add(1, std::memory_order_relaxed);
  model->version = version;
  model->kernel = std::move(kernel);
  std::shared_ptr<const ServeModel> ready(std::move(model));
#if defined(__SANITIZE_THREAD__)
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    model_ = std::move(ready);
  }
#else
  model_.store(std::move(ready), std::memory_order_release);
#endif
  swaps_.fetch_add(1, std::memory_order_relaxed);
  return version;
}

std::shared_ptr<const ServeModel> ModelRegistry::acquire() const noexcept {
#if defined(__SANITIZE_THREAD__)
  const std::lock_guard<std::mutex> lock(mutex_);
  return model_;
#else
  return model_.load(std::memory_order_acquire);
#endif
}

std::uint64_t ModelRegistry::current_version() const noexcept {
  const auto model = acquire();
  return model ? model->version : 0;
}

}  // namespace nevermind::serve
