#include "serve/micro_batcher.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace nevermind::serve {

MicroBatcher::MicroBatcher(Executor executor, std::size_t max_batch)
    : executor_(std::move(executor)),
      max_batch_(std::max<std::size_t>(max_batch, 1)),
      batch_size_counts_(max_batch_, 0) {
  if (!executor_) {
    throw std::invalid_argument("MicroBatcher: null executor");
  }
}

const char* score_reason_name(ScoreReason reason) noexcept {
  switch (reason) {
    case ScoreReason::kOk:
      return "ok";
    case ScoreReason::kNoModel:
      return "no model published";
    case ScoreReason::kNoMeasurement:
      return "no measurement for line";
    case ScoreReason::kTimeout:
      return "deadline exceeded";
  }
  return "unknown";
}

ServeScore MicroBatcher::score(dslsim::LineId line,
                               std::chrono::milliseconds deadline) {
  std::future<ServeScore> future;
  bool is_leader = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    Request req;
    req.line = line;
    future = req.promise.get_future();
    pending_.push_back(std::move(req));
    ++n_requests_;
    if (!leader_active_) {
      leader_active_ = true;
      is_leader = true;
    }
  }

  if (is_leader) {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!pending_.empty()) {
      const std::size_t take = std::min(pending_.size(), max_batch_);
      std::vector<Request> batch;
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(pending_.front()));
        pending_.pop_front();
      }
      ++n_batches_;
      ++batch_size_counts_[take - 1];
      lock.unlock();

      std::vector<dslsim::LineId> lines(batch.size());
      for (std::size_t i = 0; i < batch.size(); ++i) lines[i] = batch[i].line;
      std::vector<ServeScore> scores;
      try {
        scores = executor_(lines);
      } catch (...) {
        for (auto& req : batch) {
          req.promise.set_exception(std::current_exception());
        }
        lock.lock();
        continue;
      }
      for (std::size_t i = 0; i < batch.size(); ++i) {
        batch[i].promise.set_value(i < scores.size() ? scores[i]
                                                     : ServeScore{});
      }
      lock.lock();
    }
    // Step down under the lock: any caller that enqueued after this
    // point sees leader_active_ == false and becomes the next leader.
    leader_active_ = false;
  }

  // The leader just produced (or failed) its own batch, so its future
  // is ready; only followers can still be waiting on a wedged leader.
  if (!is_leader && deadline.count() > 0 &&
      future.wait_for(deadline) != std::future_status::ready) {
    ServeScore timed_out;
    timed_out.line = line;
    timed_out.reason = ScoreReason::kTimeout;
    return timed_out;
  }
  return future.get();
}

MicroBatcher::Stats MicroBatcher::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Stats s;
  s.requests = n_requests_;
  s.batches = n_batches_;
  s.batch_size_counts = batch_size_counts_;
  return s;
}

}  // namespace nevermind::serve
