#include "serve/scoring_service.hpp"

#include <algorithm>

#include "dslsim/profile.hpp"
#include "util/calendar.hpp"

namespace nevermind::serve {

ScoringService::ScoringService(const LineStateStore& store,
                               const ModelRegistry& registry,
                               ServiceConfig config)
    : store_(store),
      registry_(registry),
      config_(std::move(config)),
      batcher_(
          [this](std::span<const dslsim::LineId> lines) {
            return score_lines(lines);
          },
          config_.max_batch) {}

ServeScore ScoringService::score(dslsim::LineId line) {
  return batcher_.score(line, config_.deadline);
}

std::vector<ServeScore> ScoringService::score_lines(
    std::span<const dslsim::LineId> lines) const {
  std::vector<ServeScore> out(lines.size());
  const std::shared_ptr<const ServeModel> model = registry_.acquire();
  if (!model || !model->kernel.trained()) {
    for (std::size_t i = 0; i < lines.size(); ++i) {
      out[i].line = lines[i];
      out[i].reason = ScoreReason::kNoModel;
    }
    return out;
  }
  const core::ScoringKernel& kernel = model->kernel;
  const std::size_t n_cols = features::all_columns(kernel.encoder).size();
  const std::size_t n_base = features::base_columns(kernel.encoder).size();

  config_.exec.parallel_for(
      0, lines.size(), 0, [&](std::size_t b, std::size_t e) {
        std::vector<float> row(n_cols);
        for (std::size_t r = b; r < e; ++r) {
          ServeScore& s = out[r];
          s.line = lines[r];
          s.reason = ScoreReason::kNoMeasurement;
          const auto snap = store_.snapshot(lines[r]);
          if (!snap.has_value()) continue;  // no measurement yet: invalid
          features::encode_window_row(
              snap->window, snap->current, dslsim::profile(snap->profile),
              snap->last_ticket, util::saturday_of_week(snap->week),
              kernel.encoder, n_base, row);
          s.week = snap->week;
          s.score = kernel.score_row(row);
          s.probability = kernel.probability(s.score);
          s.model_version = model->version;
          s.reason = ScoreReason::kOk;
          s.valid = true;
        }
      });
  return out;
}

std::vector<ServeScore> ScoringService::top_n(std::size_t n) const {
  return top_n_of(n, store_.line_ids());
}

std::vector<ServeScore> ScoringService::top_n_of(
    std::size_t n, std::span<const dslsim::LineId> lines) const {
  std::vector<ServeScore> scored = score_lines(lines);
  // Same comparator and stable merge as the offline weekly ranking
  // (TicketPredictor::predict_week), over the same ascending-line-id
  // initial order — the resulting ranking is the batch ranking.
  config_.exec.parallel_stable_sort(
      scored.begin(), scored.end(),
      [](const ServeScore& a, const ServeScore& b) {
        return a.score > b.score;
      });
  if (scored.size() > n) scored.resize(n);
  return scored;
}

}  // namespace nevermind::serve
