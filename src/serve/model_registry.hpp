// Versioned model registry with atomic hot-swap. Training publishes an
// immutable ScoringKernel bundle; serving threads acquire() the current
// bundle at the start of a batch and keep scoring against it even while
// a newer version is published mid-flight — RCU in miniature. The old
// bundle is destroyed when the last in-flight batch drops its
// shared_ptr; no reader ever blocks a publisher or vice versa.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "core/scoring_kernel.hpp"

namespace nevermind::serve {

/// One immutable published model version. Everything reachable from
/// here is frozen at publish time; concurrent readers share it freely.
struct ServeModel {
  std::uint64_t version = 0;
  core::ScoringKernel kernel;
};

class ModelRegistry {
 public:
  ModelRegistry() = default;
  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Install `kernel` as the new current model and return its version.
  /// Versions increase monotonically from 1. Release-store: a reader
  /// that acquires the new pointer sees the fully built bundle.
  std::uint64_t publish(core::ScoringKernel kernel);

  /// The current model, or nullptr before the first publish. Acquire-
  /// load; callers hold the shared_ptr for the duration of one batch so
  /// every row of the batch scores under one consistent version.
  [[nodiscard]] std::shared_ptr<const ServeModel> acquire() const noexcept;

  /// Version of the current model (0 before the first publish).
  [[nodiscard]] std::uint64_t current_version() const noexcept;

  /// Number of publishes so far.
  [[nodiscard]] std::uint64_t swap_count() const noexcept {
    return swaps_.load(std::memory_order_relaxed);
  }

 private:
#if defined(__SANITIZE_THREAD__)
  // TSan builds swap under a mutex: libstdc++'s _Sp_atomic::load
  // releases its embedded spinlock with a relaxed store, so TSan cannot
  // form the happens-before edge and reports a false race inside the
  // standard library. The mutex guards only the pointer copy
  // (nanoseconds); the serving semantics are identical.
  mutable std::mutex mutex_;
  std::shared_ptr<const ServeModel> model_;
#else
  std::atomic<std::shared_ptr<const ServeModel>> model_;
#endif
  std::atomic<std::uint64_t> next_version_{1};
  std::atomic<std::uint64_t> swaps_{0};
};

}  // namespace nevermind::serve
