// Leader-based micro-batching for point queries. Concurrent score(line)
// callers enqueue their request; the first caller to find no active
// leader becomes the leader, drains the queue in batches of up to
// max_batch, runs the batch executor (which scores all lines of the
// batch under one model version on the shared exec pool), fulfils the
// promises, and re-checks the queue before stepping down — so a request
// enqueued while a batch was in flight is always picked up, either by
// the still-active leader or by its own caller becoming the next
// leader. Followers just wait on their future.
//
// Batching converts N concurrent single-line queries into ~N/max_batch
// model invocations that amortize snapshotting and encoding across the
// exec pool; the batch-size histogram records how well queries
// coalesce under load.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <span>
#include <vector>

#include "dslsim/topology.hpp"

namespace nevermind::serve {

/// Why a ServeScore is (in)valid. Distinct codes let callers — and the
/// wire protocol — tell "line unknown" from "no model yet" from "the
/// batch executor blew its deadline".
enum class ScoreReason : std::uint8_t {
  kOk = 0,
  kNoModel = 1,        // nothing published in the registry yet
  kNoMeasurement = 2,  // the line has no ingested measurement
  kTimeout = 3,        // the per-request deadline expired while queued
};
[[nodiscard]] const char* score_reason_name(ScoreReason reason) noexcept;

/// Result of scoring one line. `valid` is false when the line has no
/// measurement yet, no model is published, or the request timed out
/// (`reason` says which); `model_version` records which registry
/// version produced the score (so a mid-stream hot-swap is observable).
struct ServeScore {
  dslsim::LineId line = 0;
  int week = -1;
  double score = 0.0;
  double probability = 0.0;
  std::uint64_t model_version = 0;
  ScoreReason reason = ScoreReason::kOk;
  bool valid = false;
};

class MicroBatcher {
 public:
  /// Scores one batch of lines; must return exactly one ServeScore per
  /// input line, in input order.
  using Executor =
      std::function<std::vector<ServeScore>(std::span<const dslsim::LineId>)>;

  MicroBatcher(Executor executor, std::size_t max_batch);

  /// Score one line, coalescing with concurrent callers. Blocks until
  /// the owning batch completes — or until `deadline` expires (0 =
  /// wait forever), in which case an invalid ServeScore with reason
  /// kTimeout comes back and the eventual batch result is discarded.
  /// The caller that became the batch leader executes the batch itself
  /// and therefore cannot time out; the deadline protects followers
  /// from a wedged executor.
  [[nodiscard]] ServeScore score(
      dslsim::LineId line,
      std::chrono::milliseconds deadline = std::chrono::milliseconds{0});

  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t batches = 0;
    /// batch_size_counts[s] = number of executed batches of size s+1.
    std::vector<std::uint64_t> batch_size_counts;
  };
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] std::size_t max_batch() const noexcept { return max_batch_; }

 private:
  struct Request {
    dslsim::LineId line = 0;
    std::promise<ServeScore> promise;
  };

  Executor executor_;
  std::size_t max_batch_;

  mutable std::mutex mutex_;
  std::deque<Request> pending_;
  bool leader_active_ = false;
  std::uint64_t n_requests_ = 0;
  std::uint64_t n_batches_ = 0;
  std::vector<std::uint64_t> batch_size_counts_;
};

}  // namespace nevermind::serve
