// Closed-loop replay: streams a SimDataset's weekly measurements and
// customer-edge tickets through a LineStateStore in arrival order, as a
// live deployment's feed handlers would. After feed_through(w) the
// store holds exactly the state the offline encoder has when it emits
// week w's rows — which is what the byte-identity tests and the serve
// bench replay against.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "dslsim/simulator.hpp"
#include "exec/exec.hpp"
#include "serve/line_state_store.hpp"

namespace nevermind::serve {

class ReplayDriver {
 public:
  /// Borrows both; they must outlive the driver.
  ReplayDriver(const dslsim::SimDataset& data, LineStateStore& store);

  /// Feed the next week: first every customer-edge ticket reported at
  /// or before that week's Saturday (the offline encoder's ticket
  /// horizon), then every line's Saturday measurement, ingested in
  /// parallel under `exec` (different lines never contend for state, so
  /// the store contents are independent of the thread count).
  /// Returns the week index just fed, or -1 when the dataset is
  /// exhausted.
  int feed_next_week(
      const exec::ExecContext& exec = exec::ExecContext::serial());

  /// Feed weeks [next_week(), week] inclusive.
  void feed_through(int week, const exec::ExecContext& exec =
                                  exec::ExecContext::serial());

  /// Streamed counterpart of feed_next_week: ingest a week chunk from
  /// Simulator::stream_weeks instead of reading data.measurement().
  /// Tickets still come from the (tables-only) dataset, measurements
  /// from the chunk, so the store ends in exactly the state
  /// feed_next_week leaves it in. chunk.week must equal next_week();
  /// throws std::logic_error otherwise. Use as the streamed pipeline's
  /// tap: `[&](const dslsim::WeekChunk& c) { driver.feed_week_chunk(c,
  /// exec); }`.
  void feed_week_chunk(const dslsim::WeekChunk& chunk,
                       const exec::ExecContext& exec =
                           exec::ExecContext::serial());

  /// The week the next feed_next_week() call will ingest.
  [[nodiscard]] int next_week() const noexcept { return next_week_; }
  [[nodiscard]] bool exhausted() const noexcept {
    return next_week_ >= data_.n_weeks();
  }
  [[nodiscard]] std::size_t measurements_fed() const noexcept {
    return measurements_fed_;
  }

 private:
  const dslsim::SimDataset& data_;
  LineStateStore& store_;
  /// Customer-edge tickets as (reported day, line), sorted by day.
  std::vector<std::pair<util::Day, dslsim::LineId>> tickets_;
  std::size_t ticket_cursor_ = 0;
  int next_week_ = 0;
  std::size_t measurements_fed_ = 0;
};

}  // namespace nevermind::serve
