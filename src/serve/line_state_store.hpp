// Sharded per-line state store — the online half of the feature
// encoder. The offline pipeline walks a whole SimDataset and advances
// one features::LineWindow per line, week by week; this store keeps the
// same LineWindow per line and folds measurements in as they arrive
// through ingest(). Because the window update is the shared
// implementation, a store fed a dataset's measurements in week order
// holds bit-identical encoder state to the offline pass — which is what
// makes served scores byte-identical to batch scores.
//
// Concurrency: lines are hashed onto shards; each shard owns a mutex
// and a hash map. Ingest and snapshot take exactly one shard lock —
// there is no global lock on the hot path, so writers on different
// shards never contend. Aggregate counters are relaxed atomics.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dslsim/profile.hpp"
#include "dslsim/records.hpp"
#include "features/encoder.hpp"
#include "util/calendar.hpp"

namespace nevermind::serve {

/// One line-test result arriving at the service — the online equivalent
/// of one (line, week) cell of a SimDataset, plus the profile field the
/// encoder's customer features need.
struct LineMeasurement {
  dslsim::LineId line = 0;
  int week = 0;
  dslsim::ProfileId profile = 1;
  dslsim::MetricVector metrics{};
};

/// Consistent copy of one line's serving state, taken under the shard
/// lock and encoded outside it. `window` holds history folded through
/// week-1; `current` is week's Saturday test, not yet folded — exactly
/// the (state, current) pair the offline encoder sees when it emits the
/// row for `week`.
struct LineSnapshot {
  features::LineWindow window;
  dslsim::MetricVector current{};
  int week = -1;
  dslsim::ProfileId profile = 1;
  std::optional<util::Day> last_ticket;
};

/// Exact copy of one line's full serving state — everything the store
/// keeps per line, in a public shape the cluster handoff can
/// serialize. The export_line/import_line round trip is bit-exact: an
/// imported line scores byte-identically to the original, which is the
/// determinism contract a rejoining replica relies on.
struct ExportedLine {
  dslsim::LineId line = 0;
  features::LineWindow window;
  dslsim::MetricVector current{};
  int week = -1;
  dslsim::ProfileId profile = 1;
  bool has_ticket = false;
  util::Day last_ticket = 0;
  /// Raw recent measurements, oldest first (same order recent() uses).
  std::vector<std::pair<int, dslsim::MetricVector>> ring;
};

class LineStateStore {
 public:
  /// `window_capacity` bounds the ring of raw recent measurements kept
  /// per line (for inspection/debugging; the encoder state itself is a
  /// constant-size summary).
  explicit LineStateStore(std::size_t n_shards = 16,
                          std::size_t window_capacity = 8);

  /// Fold a measurement in. Weeks must arrive in non-decreasing order
  /// per line (the weekly test schedule guarantees this); a stale week
  /// older than the line's current one is dropped. Takes one shard
  /// lock.
  void ingest(const LineMeasurement& m);

  /// Record a customer-edge ticket for the line's recency feature. Only
  /// feed tickets up to the scoring horizon (the replay driver feeds
  /// tickets reported at or before the Saturday being scored).
  void ingest_ticket(dslsim::LineId line, util::Day day);

  /// Consistent snapshot of one line, or nullopt when the line has no
  /// measurement yet.
  [[nodiscard]] std::optional<LineSnapshot> snapshot(
      dslsim::LineId line) const;

  /// Raw recent (week, metrics) pairs, oldest first, at most
  /// window_capacity of them.
  [[nodiscard]] std::vector<std::pair<int, dslsim::MetricVector>> recent(
      dslsim::LineId line) const;

  /// Every line with at least one measurement, ascending — the serving
  /// equivalent of the offline encoder's line iteration order, which is
  /// what keeps top_n rankings byte-identical to predict_week.
  [[nodiscard]] std::vector<dslsim::LineId> line_ids() const;

  /// Full state of one line for the cluster handoff, or nullopt when
  /// the line is unknown. Ticket-only lines (week still -1) export too.
  [[nodiscard]] std::optional<ExportedLine> export_line(
      dslsim::LineId line) const;

  /// Install exported state, overwriting any existing entry for the
  /// line. Does not count as ingest (the measurement/ticket counters
  /// track traffic, not replication). Takes one shard lock.
  void import_line(const ExportedLine& e);

  [[nodiscard]] std::size_t n_lines() const;
  [[nodiscard]] std::size_t n_shards() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] std::uint64_t measurements_ingested() const noexcept {
    return n_measurements_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t tickets_ingested() const noexcept {
    return n_tickets_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    features::LineWindow window;
    dslsim::MetricVector current{};
    int week = -1;  // week of `current`; -1 = no measurement yet
    dslsim::ProfileId profile = 1;
    bool has_ticket = false;
    util::Day last_ticket = 0;
    std::vector<std::pair<int, dslsim::MetricVector>> ring;  // bounded
    std::size_t ring_next = 0;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<dslsim::LineId, Entry> lines;
  };

  [[nodiscard]] std::size_t shard_of(dslsim::LineId line) const noexcept;

  std::size_t window_capacity_;
  std::vector<Shard> shards_;
  std::atomic<std::uint64_t> n_measurements_{0};
  std::atomic<std::uint64_t> n_tickets_{0};
};

}  // namespace nevermind::serve
