#include "net/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

namespace nevermind::net {

namespace {

/// Upper bound on bytes pulled off one socket per readable event, so a
/// firehose sender cannot starve the other connections in the loop.
constexpr std::size_t kMaxReadPerEvent = 256 * 1024;

}  // namespace

struct Server::Connection {
  int fd = -1;
  std::vector<std::uint8_t> read_buf;
  std::size_t read_off = 0;  // bytes of read_buf already decoded
  std::vector<std::uint8_t> write_buf;
  std::size_t write_off = 0;  // bytes of write_buf already sent
  Clock::time_point last_activity{};
  Clock::time_point last_write_progress{};
  bool reads_paused = false;
  bool peer_closed = false;
  /// Set on fatal framing errors and peer EOF: flush what we owe, then
  /// close; never read again.
  bool close_after_flush = false;
  /// Consecutive SCORE requests of one read pass, answered as a single
  /// score_lines() batch — wire-level micro-batching.
  std::vector<std::pair<std::uint32_t, dslsim::LineId>> score_batch;

  [[nodiscard]] std::size_t write_pending() const noexcept {
    return write_buf.size() - write_off;
  }
};

Server::Server(serve::LineStateStore& store, serve::ScoringService& service,
               const serve::ModelRegistry& registry, ServerConfig config)
    : store_(store),
      service_(service),
      registry_(registry),
      config_(std::move(config)),
      codec_(config_.max_payload) {}

Server::~Server() {
  for (auto& [fd, conn] : connections_) ::close(fd);
  connections_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

bool Server::start(std::string* error) {
  const auto fail = [&](const std::string& what) {
    if (error) *error = what + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };
  if (!loop_.valid()) return fail("event loop setup");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return fail("inet_pton(" + config_.bind_address + ")");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    return fail("bind");
  }
  if (::listen(listen_fd_, 128) != 0) return fail("listen");

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    return fail("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  loop_.add(listen_fd_, EPOLLIN, [this](std::uint32_t) { on_acceptable(); });
  return true;
}

void Server::run() {
  loop_.run(config_.tick, [this] { on_tick(); });
}

void Server::request_stop() noexcept {
  stop_requested_.store(true, std::memory_order_release);
  loop_.wake();
}

void Server::stop_now() noexcept {
  stop_requested_.store(true, std::memory_order_release);
  loop_.stop();
}

void Server::on_acceptable() {
  while (true) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;
    }
    if (connections_.size() >= config_.max_connections) {
      ++stats_.rejected_at_capacity;
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    if (config_.so_sndbuf > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &config_.so_sndbuf,
                   sizeof config_.so_sndbuf);
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->last_activity = Clock::now();
    conn->last_write_progress = conn->last_activity;
    connections_.emplace(fd, std::move(conn));
    ++stats_.accepted;
    stats_.open_connections = connections_.size();
    loop_.add(fd, EPOLLIN,
              [this, fd](std::uint32_t events) {
                on_connection_event(fd, events);
              });
  }
}

void Server::on_connection_event(int fd, std::uint32_t events) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& c = *it->second;
  if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    close_connection(fd);
    return;
  }
  if ((events & EPOLLOUT) != 0) {
    flush_writes(c);
    if (!loop_.watching(fd)) return;  // flush decided to close
  }
  if ((events & EPOLLIN) != 0) handle_readable(c);
}

void Server::handle_readable(Connection& c) {
  std::size_t pulled = 0;
  char chunk[16384];
  while (pulled < kMaxReadPerEvent) {
    const ssize_t n = ::recv(c.fd, chunk, sizeof chunk, 0);
    if (n > 0) {
      c.read_buf.insert(c.read_buf.end(), chunk, chunk + n);
      pulled += static_cast<std::size_t>(n);
      c.last_activity = Clock::now();
      continue;
    }
    if (n == 0) {
      c.peer_closed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_connection(c.fd);
    return;
  }
  process_frames(c);
  if (!loop_.watching(c.fd)) return;  // a framing error closed it
  if (c.peer_closed) {
    if (c.write_pending() == 0) {
      close_connection(c.fd);
      return;
    }
    c.close_after_flush = true;  // still owe replies: flush then close
  }
  flush_writes(c);
}

void Server::process_frames(Connection& c) {
  while (!c.close_after_flush) {
    const auto d = codec_.decode(std::span<const std::uint8_t>(
        c.read_buf.data() + c.read_off, c.read_buf.size() - c.read_off));
    if (d.status == Codec::DecodeStatus::kNeedMore) break;
    if (d.status == Codec::DecodeStatus::kError) {
      // The byte stream is poisoned — reply with the typed error and
      // shut the connection down once the reply flushes. A
      // version-mismatched peer gets the rejection stamped with *its*
      // version byte (the frame layout is shared across versions), so
      // a v1 client sees a decodable typed error, not garbage.
      ++stats_.protocol_errors;
      flush_score_batch(c);
      reply_error(c, 0, d.error,
                  d.error == WireError::kVersionMismatch ? d.peer_version
                                                         : kProtocolVersion);
      c.close_after_flush = true;
      c.read_buf.clear();
      c.read_off = 0;
      break;
    }
    c.read_off += d.consumed;
    ++stats_.frames_in;
    c.last_activity = Clock::now();
    if (d.frame.op == Op::kScore) {
      PayloadReader r(d.frame.payload);
      const dslsim::LineId line = r.u32();
      if (r.done()) {
        c.score_batch.emplace_back(d.frame.request_id, line);
      } else {
        flush_score_batch(c);
        reply_error(c, d.frame.request_id, WireError::kBadPayload);
      }
      continue;
    }
    // Any non-SCORE op cuts the batch so replies keep request order.
    flush_score_batch(c);
    dispatch(c, d.frame);
  }
  flush_score_batch(c);
  if (c.read_off == c.read_buf.size()) {
    c.read_buf.clear();
    c.read_off = 0;
  } else if (c.read_off > 64 * 1024) {
    c.read_buf.erase(c.read_buf.begin(),
                     c.read_buf.begin() +
                         static_cast<std::ptrdiff_t>(c.read_off));
    c.read_off = 0;
  }
}

void Server::flush_score_batch(Connection& c) {
  if (c.score_batch.empty()) return;
  std::vector<dslsim::LineId> lines;
  lines.reserve(c.score_batch.size());
  for (const auto& [id, line] : c.score_batch) lines.push_back(line);
  const std::vector<serve::ServeScore> scores = service_.score_lines(lines);
  for (std::size_t i = 0; i < c.score_batch.size(); ++i) {
    PayloadWriter w;
    write_score(w, scores[i]);
    reply(c, Op::kScore, c.score_batch[i].first, w.data());
  }
  c.score_batch.clear();
}

void Server::dispatch(Connection& c, const Frame& frame) {
  switch (frame.op) {
    case Op::kPing:
      // Echoes its payload — a transparent liveness + latency probe.
      reply(c, Op::kPing, frame.request_id, frame.payload);
      return;
    case Op::kTopN: {
      PayloadReader r(frame.payload);
      const std::uint32_t n = r.u32();
      if (!r.done()) break;
      const std::vector<serve::ServeScore> ranked = service_.top_n(n);
      PayloadWriter w;
      w.u32(static_cast<std::uint32_t>(ranked.size()));
      for (const auto& s : ranked) write_score(w, s);
      reply(c, Op::kTopN, frame.request_id, w.data());
      return;
    }
    case Op::kIngestMeasurement: {
      PayloadReader r(frame.payload);
      serve::LineMeasurement m;
      if (!read_measurement(r, m) || !r.done()) break;
      store_.ingest(m);
      PayloadWriter w;
      w.u64(store_.measurements_ingested());
      reply(c, Op::kIngestMeasurement, frame.request_id, w.data());
      return;
    }
    case Op::kIngestTicket: {
      PayloadReader r(frame.payload);
      const dslsim::LineId line = r.u32();
      const util::Day day = r.i32();
      if (!r.done()) break;
      store_.ingest_ticket(line, day);
      PayloadWriter w;
      w.u64(store_.tickets_ingested());
      reply(c, Op::kIngestTicket, frame.request_id, w.data());
      return;
    }
    case Op::kModelInfo: {
      ModelInfoReply info;
      info.model_version = registry_.current_version();
      info.swap_count = registry_.swap_count();
      info.n_lines = store_.n_lines();
      info.measurements = store_.measurements_ingested();
      info.tickets = store_.tickets_ingested();
      PayloadWriter w;
      write_model_info(w, info);
      reply(c, Op::kModelInfo, frame.request_id, w.data());
      return;
    }
    default: {
      if (op_handler_ && !is_reply(frame.op)) {
        PayloadWriter w;
        switch (op_handler_(frame, w)) {
          case OpOutcome::kReply:
            reply(c, frame.op, frame.request_id, w.data());
            return;
          case OpOutcome::kBadPayload:
            reply_error(c, frame.request_id, WireError::kBadPayload);
            return;
          case OpOutcome::kUnhandled:
            break;
        }
      }
      reply_error(c, frame.request_id, WireError::kUnknownOp);
      return;
    }
  }
  // Known op, payload failed its typed decode: request-scoped error.
  reply_error(c, frame.request_id, WireError::kBadPayload);
}

void Server::reply(Connection& c, Op request_op, std::uint32_t request_id,
                   std::span<const std::uint8_t> payload) {
  codec_.encode_into(reply_op(request_op), request_id, payload, c.write_buf);
  ++stats_.replies_out;
}

void Server::reply_error(Connection& c, std::uint32_t request_id,
                         WireError code, std::uint8_t version) {
  const auto payload = encode_error_payload(code, wire_error_name(code));
  codec_.encode_into(Op::kError, request_id, payload, c.write_buf, version);
  ++stats_.replies_out;
}

void Server::flush_writes(Connection& c) {
  while (c.write_pending() > 0) {
    const ssize_t n = ::send(c.fd, c.write_buf.data() + c.write_off,
                             c.write_pending(), MSG_NOSIGNAL);
    if (n > 0) {
      c.write_off += static_cast<std::size_t>(n);
      c.last_write_progress = Clock::now();
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_connection(c.fd);
    return;
  }
  if (c.write_pending() == 0) {
    c.write_buf.clear();
    c.write_off = 0;
    c.last_write_progress = Clock::now();
    if (c.close_after_flush) {
      close_connection(c.fd);
      return;
    }
  } else if (c.write_off > 256 * 1024) {
    c.write_buf.erase(c.write_buf.begin(),
                      c.write_buf.begin() +
                          static_cast<std::ptrdiff_t>(c.write_off));
    c.write_off = 0;
  }
  update_interest(c);
}

void Server::update_interest(Connection& c) {
  // Backpressure: past the high watermark the connection stops reading
  // until the peer drains below half of it.
  if (!c.reads_paused && c.write_pending() > config_.write_high_watermark) {
    c.reads_paused = true;
  } else if (c.reads_paused &&
             c.write_pending() <= config_.write_high_watermark / 2) {
    c.reads_paused = false;
  }
  std::uint32_t events = 0;
  if (!c.reads_paused && !c.close_after_flush && !draining_ &&
      !c.peer_closed) {
    events |= EPOLLIN;
  }
  if (c.write_pending() > 0) events |= EPOLLOUT;
  loop_.modify(c.fd, events);
}

void Server::close_connection(int fd) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  loop_.remove(fd);
  connections_.erase(it);
  stats_.open_connections = connections_.size();
  // The fd number must not be reused by an accept earlier in the same
  // event batch's queue, so the close itself is deferred.
  loop_.defer([fd] { ::close(fd); });
}

void Server::begin_drain() {
  draining_ = true;
  drain_deadline_ = Clock::now() + config_.drain_timeout;
  if (listen_fd_ >= 0) {
    loop_.remove(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Answer what is already buffered, then flush; no further reads.
  std::vector<int> fds;
  fds.reserve(connections_.size());
  for (const auto& [fd, conn] : connections_) fds.push_back(fd);
  for (const int fd : fds) {
    const auto it = connections_.find(fd);
    if (it == connections_.end()) continue;
    Connection& c = *it->second;
    process_frames(c);
    if (!loop_.watching(fd)) continue;
    c.close_after_flush = true;
    flush_writes(c);
  }
}

void Server::on_tick() {
  if (stop_requested() && !draining_) begin_drain();

  const auto now = Clock::now();
  std::vector<int> to_close;
  for (const auto& [fd, conn] : connections_) {
    const Connection& c = *conn;
    if (draining_ && now >= drain_deadline_) {
      to_close.push_back(fd);
      continue;
    }
    if (c.write_pending() > 0 &&
        now - c.last_write_progress > config_.drain_timeout) {
      ++stats_.slow_closed;
      to_close.push_back(fd);
      continue;
    }
    if (!draining_ && config_.idle_timeout.count() > 0 &&
        now - c.last_activity > config_.idle_timeout) {
      ++stats_.idle_closed;
      to_close.push_back(fd);
    }
  }
  for (const int fd : to_close) close_connection(fd);

  if (draining_ && connections_.empty()) loop_.stop();
}

}  // namespace nevermind::net
