// Minimal epoll reactor for the network front-end. One thread calls
// run(); fds are registered with a callback that fires with the epoll
// event mask. A nonblocking eventfd doubles as the wakeup/stop channel:
// stop() is a relaxed atomic store plus an 8-byte write, both
// async-signal-safe, so SIGINT/SIGTERM handlers may call it directly.
//
// Callbacks may add/modify/remove fds freely, including their own.
// Teardown work that must not run until the current event batch is
// dispatched (closing an fd whose number could be reused by an accept
// in the same batch) goes through defer().
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

namespace nevermind::net {

class EventLoop {
 public:
  using Callback = std::function<void(std::uint32_t events)>;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// True when both epoll and the wakeup eventfd came up.
  [[nodiscard]] bool valid() const noexcept;

  void add(int fd, std::uint32_t events, Callback cb);
  void modify(int fd, std::uint32_t events);
  void remove(int fd);
  [[nodiscard]] bool watching(int fd) const;
  [[nodiscard]] std::size_t watched() const noexcept;

  /// Dispatch events until stop(). `tick` runs after every wait round
  /// and at least every `tick_every` even when the loop is idle — the
  /// server hangs its timeout scans and drain logic on it.
  void run(std::chrono::milliseconds tick_every,
           const std::function<void()>& tick);

  /// Signal-safe: ends run() from any thread or signal handler.
  void stop() noexcept;
  /// Signal-safe: forces one wait round to return without stopping.
  void wake() noexcept;

  /// Run `fn` after the current event batch finishes dispatching.
  void defer(std::function<void()> fn);

 private:
  /// Drain the deferred queue (including work deferred while draining).
  void run_deferred();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::unordered_map<int, Callback> callbacks_;
  std::vector<std::function<void()>> deferred_;
};

}  // namespace nevermind::net
