#include "net/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>
#include <utility>

namespace nevermind::net {

std::chrono::milliseconds Backoff::next() noexcept {
  const std::chrono::milliseconds delay = next_;
  ++attempts_;
  const double scaled =
      static_cast<double>(next_.count()) * (multiplier_ < 1.0 ? 1.0 : multiplier_);
  const auto capped = static_cast<std::chrono::milliseconds::rep>(
      scaled > static_cast<double>(max_.count())
          ? static_cast<double>(max_.count())
          : scaled);
  next_ = std::chrono::milliseconds(capped);
  return delay;
}

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      next_id_(other.next_id_),
      options_(other.options_),
      codec_(other.codec_),
      rx_(std::move(other.rx_)),
      rx_off_(other.rx_off_),
      error_(std::move(other.error_)),
      wire_error_(other.wire_error_),
      deadline_armed_(other.deadline_armed_),
      deadline_(other.deadline_) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    next_id_ = other.next_id_;
    options_ = other.options_;
    codec_ = other.codec_;
    rx_ = std::move(other.rx_);
    rx_off_ = other.rx_off_;
    error_ = std::move(other.error_);
    wire_error_ = other.wire_error_;
    deadline_armed_ = other.deadline_armed_;
    deadline_ = other.deadline_;
  }
  return *this;
}

void Client::fail(std::string message) { error_ = std::move(message); }

namespace {

[[nodiscard]] bool set_nonblocking(int fd, bool on) noexcept {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int next = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return ::fcntl(fd, F_SETFL, next) == 0;
}

}  // namespace

bool Client::connect(const std::string& host, std::uint16_t port) {
  close();
  wire_error_.reset();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    fail(std::string("socket: ") + std::strerror(errno));
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    fail("bad host address: " + host);
    close();
    return false;
  }
  const bool timed = options_.connect_timeout.count() > 0;
  if (timed && !set_nonblocking(fd_, true)) {
    fail(std::string("fcntl: ") + std::strerror(errno));
    close();
    return false;
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    if (!timed || errno != EINPROGRESS) {
      fail(std::string("connect: ") + std::strerror(errno));
      close();
      return false;
    }
    pollfd p{fd_, POLLOUT, 0};
    const int rc =
        ::poll(&p, 1, static_cast<int>(options_.connect_timeout.count()));
    if (rc <= 0) {
      fail(rc == 0 ? "connect timed out"
                   : std::string("poll: ") + std::strerror(errno));
      close();
      return false;
    }
    int soerr = 0;
    socklen_t len = sizeof soerr;
    if (::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &soerr, &len) != 0 ||
        soerr != 0) {
      fail(std::string("connect: ") + std::strerror(soerr ? soerr : errno));
      close();
      return false;
    }
  }
  if (timed && !set_nonblocking(fd_, false)) {
    fail(std::string("fcntl: ") + std::strerror(errno));
    close();
    return false;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return true;
}

bool Client::connect_with_backoff(const std::string& host, std::uint16_t port,
                                  std::size_t max_attempts, Backoff& backoff) {
  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    if (connect(host, port)) {
      backoff.reset();
      return true;
    }
    if (attempt + 1 < max_attempts) {
      std::this_thread::sleep_for(backoff.next());
    } else {
      (void)backoff.next();  // keep the schedule advancing across calls
    }
  }
  return false;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  rx_.clear();
  rx_off_ = 0;
  deadline_armed_ = false;
}

bool Client::send_raw(std::span<const std::uint8_t> bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail(std::string("send: ") + std::strerror(errno));
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool Client::wait_readable() {
  if (!deadline_armed_) return true;
  const auto now = Clock::now();
  if (now >= deadline_) {
    fail("request timed out");
    return false;
  }
  const auto left =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline_ - now);
  pollfd p{fd_, POLLIN, 0};
  const int rc = ::poll(&p, 1, static_cast<int>(left.count()) + 1);
  if (rc > 0) return true;
  if (rc == 0) {
    fail("request timed out");
  } else {
    fail(std::string("poll: ") + std::strerror(errno));
  }
  return false;
}

std::optional<Frame> Client::read_frame() {
  while (true) {
    const auto d = codec_.decode(std::span<const std::uint8_t>(
        rx_.data() + rx_off_, rx_.size() - rx_off_));
    if (d.status == Codec::DecodeStatus::kFrame) {
      rx_off_ += d.consumed;
      if (rx_off_ == rx_.size()) {
        rx_.clear();
        rx_off_ = 0;
      }
      return d.frame;
    }
    if (d.status == Codec::DecodeStatus::kError) {
      fail(std::string("undecodable reply: ") + wire_error_name(d.error));
      return std::nullopt;
    }
    if (!wait_readable()) return std::nullopt;
    char chunk[16384];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n > 0) {
      rx_.insert(rx_.end(), chunk, chunk + n);
      continue;
    }
    if (n == 0) {
      fail("connection closed by server");
      return std::nullopt;
    }
    if (errno == EINTR) continue;
    fail(std::string("recv: ") + std::strerror(errno));
    return std::nullopt;
  }
}

bool Client::roundtrip(Op op, std::span<const std::uint8_t> payload,
                       Frame& reply) {
  wire_error_.reset();
  if (fd_ < 0) {
    fail("not connected");
    return false;
  }
  if (options_.request_timeout.count() > 0) {
    deadline_armed_ = true;
    deadline_ = Clock::now() + options_.request_timeout;
  } else {
    deadline_armed_ = false;
  }
  const std::uint32_t id = next_id_++;
  if (!send_raw(codec_.encode(op, id, payload))) {
    close();  // stream state unknown after a partial send
    return false;
  }
  auto frame = read_frame();
  deadline_armed_ = false;
  if (!frame.has_value()) {
    // Transport failure or deadline expiry: a late reply would desync
    // the id-checked stream, so the connection cannot be reused.
    close();
    return false;
  }
  if (frame->op == Op::kError) {
    WireError code = WireError::kMalformedFrame;
    std::string message;
    if (decode_error_payload(frame->payload, code, message)) {
      wire_error_ = code;
      fail("server error: " + message);
    } else {
      fail("server error (undecodable payload)");
    }
    return false;
  }
  if (frame->op != reply_op(op) || frame->request_id != id) {
    fail("reply does not match request");
    close();
    return false;
  }
  reply = std::move(*frame);
  return true;
}

bool Client::ping() {
  Frame reply;
  return roundtrip(Op::kPing, {}, reply);
}

std::optional<serve::ServeScore> Client::score(dslsim::LineId line) {
  PayloadWriter w;
  w.u32(line);
  Frame reply;
  if (!roundtrip(Op::kScore, w.data(), reply)) return std::nullopt;
  PayloadReader r(reply.payload);
  serve::ServeScore s;
  if (!read_score(r, s) || !r.done()) {
    fail("bad SCORE reply payload");
    return std::nullopt;
  }
  return s;
}

std::optional<std::vector<serve::ServeScore>> Client::top_n(std::uint32_t n) {
  PayloadWriter w;
  w.u32(n);
  Frame reply;
  if (!roundtrip(Op::kTopN, w.data(), reply)) return std::nullopt;
  PayloadReader r(reply.payload);
  const std::uint32_t count = r.u32();
  std::vector<serve::ServeScore> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    serve::ServeScore s;
    if (!read_score(r, s)) break;
    out.push_back(s);
  }
  if (!r.done() || out.size() != count) {
    fail("bad TOP_N reply payload");
    return std::nullopt;
  }
  return out;
}

bool Client::ingest(const serve::LineMeasurement& m) {
  PayloadWriter w;
  write_measurement(w, m);
  Frame reply;
  return roundtrip(Op::kIngestMeasurement, w.data(), reply);
}

bool Client::ingest_ticket(dslsim::LineId line, util::Day day) {
  PayloadWriter w;
  w.u32(line);
  w.i32(day);
  Frame reply;
  return roundtrip(Op::kIngestTicket, w.data(), reply);
}

std::optional<ModelInfoReply> Client::model_info() {
  Frame reply;
  if (!roundtrip(Op::kModelInfo, {}, reply)) return std::nullopt;
  PayloadReader r(reply.payload);
  ModelInfoReply info;
  if (!read_model_info(r, info) || !r.done()) {
    fail("bad MODEL_INFO reply payload");
    return std::nullopt;
  }
  return info;
}

std::optional<Frame> Client::request(Op op,
                                     std::span<const std::uint8_t> payload) {
  Frame reply;
  if (!roundtrip(op, payload, reply)) return std::nullopt;
  return reply;
}

}  // namespace nevermind::net
