#include "net/protocol.hpp"

#include <bit>
#include <cstring>

namespace nevermind::net {

const char* wire_error_name(WireError code) noexcept {
  switch (code) {
    case WireError::kMalformedFrame:
      return "malformed frame";
    case WireError::kVersionMismatch:
      return "protocol version mismatch";
    case WireError::kOversizedPayload:
      return "oversized payload";
    case WireError::kUnknownOp:
      return "unknown op";
    case WireError::kBadPayload:
      return "bad payload";
  }
  return "unknown error";
}

namespace {

void put_le16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_le32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

[[nodiscard]] std::uint16_t get_le16(const std::uint8_t* p) noexcept {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

[[nodiscard]] std::uint32_t get_le32(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

void Codec::encode_into(Op op, std::uint32_t request_id,
                        std::span<const std::uint8_t> payload,
                        std::vector<std::uint8_t>& out,
                        std::uint8_t version) const {
  out.reserve(out.size() + kHeaderSize + payload.size());
  put_le16(out, kMagic);
  out.push_back(version);
  out.push_back(static_cast<std::uint8_t>(op));
  put_le32(out, request_id);
  put_le32(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
}

std::vector<std::uint8_t> Codec::encode(Op op, std::uint32_t request_id,
                                        std::span<const std::uint8_t> payload,
                                        std::uint8_t version) const {
  std::vector<std::uint8_t> out;
  encode_into(op, request_id, payload, out, version);
  return out;
}

Codec::Decoded Codec::decode(std::span<const std::uint8_t> buffer) const {
  Decoded d;
  // Magic and version are rejected as soon as their bytes are present:
  // a peer speaking a different protocol should get its typed error
  // from the first bytes it sends, not after a full sham header.
  if (buffer.size() >= 2 && get_le16(buffer.data()) != kMagic) {
    d.status = DecodeStatus::kError;
    d.error = WireError::kMalformedFrame;
    return d;
  }
  if (buffer.size() >= 3) d.peer_version = buffer[2];
  if (buffer.size() >= 3 && buffer[2] != kProtocolVersion) {
    d.status = DecodeStatus::kError;
    d.error = WireError::kVersionMismatch;
    return d;
  }
  if (buffer.size() < kHeaderSize) return d;  // kNeedMore
  const std::uint32_t payload_len = get_le32(buffer.data() + 8);
  if (payload_len > max_payload_) {
    d.status = DecodeStatus::kError;
    d.error = WireError::kOversizedPayload;
    return d;
  }
  if (buffer.size() < kHeaderSize + payload_len) return d;  // kNeedMore
  d.status = DecodeStatus::kFrame;
  d.frame.op = static_cast<Op>(buffer[3]);
  d.frame.request_id = get_le32(buffer.data() + 4);
  d.frame.payload.assign(buffer.begin() + kHeaderSize,
                         buffer.begin() + kHeaderSize + payload_len);
  d.consumed = kHeaderSize + payload_len;
  return d;
}

// ---- PayloadWriter -----------------------------------------------------

void PayloadWriter::u16(std::uint16_t v) { put_le16(buf_, v); }
void PayloadWriter::u32(std::uint32_t v) { put_le32(buf_, v); }

void PayloadWriter::u64(std::uint64_t v) {
  put_le32(buf_, static_cast<std::uint32_t>(v));
  put_le32(buf_, static_cast<std::uint32_t>(v >> 32));
}

void PayloadWriter::f32(float v) { u32(std::bit_cast<std::uint32_t>(v)); }
void PayloadWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void PayloadWriter::bytes(std::span<const std::uint8_t> v) {
  buf_.insert(buf_.end(), v.begin(), v.end());
}

// ---- PayloadReader -----------------------------------------------------

bool PayloadReader::take(std::size_t n) noexcept {
  if (!ok_ || buf_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t PayloadReader::u8() {
  if (!take(1)) return 0;
  return buf_[pos_++];
}

std::uint16_t PayloadReader::u16() {
  if (!take(2)) return 0;
  const std::uint16_t v = get_le16(buf_.data() + pos_);
  pos_ += 2;
  return v;
}

std::uint32_t PayloadReader::u32() {
  if (!take(4)) return 0;
  const std::uint32_t v = get_le32(buf_.data() + pos_);
  pos_ += 4;
  return v;
}

std::uint64_t PayloadReader::u64() {
  const std::uint64_t lo = u32();
  const std::uint64_t hi = u32();
  return lo | (hi << 32);
}

float PayloadReader::f32() { return std::bit_cast<float>(u32()); }
double PayloadReader::f64() { return std::bit_cast<double>(u64()); }

// ---- typed payloads ----------------------------------------------------

void write_score(PayloadWriter& w, const serve::ServeScore& s) {
  w.u32(s.line);
  w.i32(s.week);
  w.f64(s.score);
  w.f64(s.probability);
  w.u64(s.model_version);
  w.u8(s.valid ? 1 : 0);
  w.u8(static_cast<std::uint8_t>(s.reason));
}

bool read_score(PayloadReader& r, serve::ServeScore& s) {
  s.line = r.u32();
  s.week = r.i32();
  s.score = r.f64();
  s.probability = r.f64();
  s.model_version = r.u64();
  s.valid = r.u8() != 0;
  s.reason = static_cast<serve::ScoreReason>(r.u8());
  return r.ok();
}

void write_measurement(PayloadWriter& w, const serve::LineMeasurement& m) {
  w.u32(m.line);
  w.i32(m.week);
  w.u8(m.profile);
  for (const float v : m.metrics) w.f32(v);
}

bool read_measurement(PayloadReader& r, serve::LineMeasurement& m) {
  m.line = r.u32();
  m.week = r.i32();
  m.profile = r.u8();
  for (float& v : m.metrics) v = r.f32();
  return r.ok();
}

void write_model_info(PayloadWriter& w, const ModelInfoReply& info) {
  w.u64(info.model_version);
  w.u64(info.swap_count);
  w.u64(info.n_lines);
  w.u64(info.measurements);
  w.u64(info.tickets);
}

bool read_model_info(PayloadReader& r, ModelInfoReply& info) {
  info.model_version = r.u64();
  info.swap_count = r.u64();
  info.n_lines = r.u64();
  info.measurements = r.u64();
  info.tickets = r.u64();
  return r.ok();
}

std::vector<std::uint8_t> encode_error_payload(WireError code,
                                               std::string_view message) {
  PayloadWriter w;
  w.u8(static_cast<std::uint8_t>(code));
  const auto len =
      static_cast<std::uint16_t>(std::min<std::size_t>(message.size(), 512));
  w.u16(len);
  w.bytes(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(message.data()), len));
  return w.take();
}

bool decode_error_payload(std::span<const std::uint8_t> payload,
                          WireError& code, std::string& message) {
  PayloadReader r(payload);
  code = static_cast<WireError>(r.u8());
  const std::uint16_t len = r.u16();
  if (!r.ok() || r.remaining() < len) return false;
  message.assign(reinterpret_cast<const char*>(payload.data()) + 3, len);
  return true;
}

}  // namespace nevermind::net
