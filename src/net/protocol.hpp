// The wire boundary of the serving stack: a length-prefixed, versioned
// binary protocol over TCP. Every frame is
//
//   offset 0  u16  magic        0x4D4E ("NM" on the wire, little-endian)
//   offset 2  u8   version      kProtocolVersion (currently 2)
//   offset 3  u8   op           request Op, reply Op (request | kReplyBit),
//                               or kError
//   offset 4  u32  request_id   echoed verbatim in the reply
//   offset 8  u32  payload_len  bytes following the 12-byte header
//   offset 12      payload
//
// All integers are little-endian; floats travel as their raw IEEE-754
// bits (std::bit_cast), which is what lets a score fetched over the
// wire stay byte-identical to the offline batch path. The Codec is a
// pure function of bytes — no sockets — so the decoder can be fuzzed
// with truncated/garbage input in unit tests: it either asks for more
// bytes, yields a frame, or yields a typed WireError; it never throws
// and never reads past the buffer.
//
// v2 keeps the v1 frame layout and ops byte-for-byte and adds the
// cluster ops (0x10-0x15). A v1 peer talking to a v2 endpoint gets a
// typed kVersionMismatch rejection encoded with *its* version byte
// (Decoded::peer_version + the encode version parameter) so it can
// decode the error instead of seeing a poisoned stream.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "serve/line_state_store.hpp"
#include "serve/micro_batcher.hpp"
#include "util/calendar.hpp"

namespace nevermind::net {

inline constexpr std::uint16_t kMagic = 0x4D4E;  // 'N','M' on the wire
inline constexpr std::uint8_t kProtocolVersion = 2;
inline constexpr std::size_t kHeaderSize = 12;
inline constexpr std::size_t kDefaultMaxPayload = 1U << 20;

/// Request opcodes. A reply carries the request's op with kReplyBit set;
/// typed failures use kError regardless of the request op.
enum class Op : std::uint8_t {
  kPing = 0x01,
  kScore = 0x02,
  kTopN = 0x03,
  kIngestMeasurement = 0x04,
  kIngestTicket = 0x05,
  kModelInfo = 0x06,
  // v2 cluster ops (src/cluster/). kReplyBit (0x40) must stay clear.
  kModelPush = 0x10,   // kernel artefact -> every replica, RCU hot-swap
  kShardMap = 0x11,    // versioned line->shard->node map, epoch-ordered
  kHeartbeat = 0x12,   // periodic peer announcement, echoed back
  kHealth = 0x13,      // node + membership snapshot for operators
  kHandoff = 0x14,     // paginated exact line-state transfer on rejoin
  kTopNShards = 0x15,  // kTopN restricted to a set of cluster shards
  kError = 0x7F,
};
inline constexpr std::uint8_t kReplyBit = 0x40;

[[nodiscard]] constexpr Op reply_op(Op request) noexcept {
  return static_cast<Op>(static_cast<std::uint8_t>(request) | kReplyBit);
}
[[nodiscard]] constexpr bool is_reply(Op op) noexcept {
  return (static_cast<std::uint8_t>(op) & kReplyBit) != 0 || op == Op::kError;
}
/// True for the cluster extension ops a plain scoring server only
/// serves when a ClusterNode installed its op handler.
[[nodiscard]] constexpr bool is_cluster_request(Op op) noexcept {
  switch (op) {
    case Op::kModelPush:
    case Op::kShardMap:
    case Op::kHeartbeat:
    case Op::kHealth:
    case Op::kHandoff:
    case Op::kTopNShards:
      return true;
    default:
      return false;
  }
}
/// True for ops any server — clustered or not — knows how to serve.
[[nodiscard]] constexpr bool is_known_request(Op op) noexcept {
  switch (op) {
    case Op::kPing:
    case Op::kScore:
    case Op::kTopN:
    case Op::kIngestMeasurement:
    case Op::kIngestTicket:
    case Op::kModelInfo:
      return true;
    default:
      return is_cluster_request(op);
  }
}

/// Typed protocol failures. Framing errors (the first three) poison the
/// byte stream — the server replies and closes; request-scoped errors
/// (unknown op, bad payload) answer one request and keep the
/// connection.
enum class WireError : std::uint8_t {
  kMalformedFrame = 1,   // bad magic / garbage where a header should be
  kVersionMismatch = 2,  // peer speaks a different protocol version
  kOversizedPayload = 3, // length prefix beyond the configured maximum
  kUnknownOp = 4,        // framing fine, op not in the server's table
  kBadPayload = 5,       // op known, payload failed its typed decode
};
[[nodiscard]] const char* wire_error_name(WireError code) noexcept;

/// One decoded frame. `payload` is a copy — safe to keep after the
/// receive buffer is compacted.
struct Frame {
  Op op = Op::kPing;
  std::uint32_t request_id = 0;
  std::vector<std::uint8_t> payload;
};

class Codec {
 public:
  explicit Codec(std::size_t max_payload = kDefaultMaxPayload) noexcept
      : max_payload_(max_payload) {}

  [[nodiscard]] std::size_t max_payload() const noexcept {
    return max_payload_;
  }

  /// Append one framed message to `out`. `version` is the version byte
  /// stamped on the frame; the non-default use is replying to a
  /// version-mismatched peer in *its* dialect (frame layout is shared
  /// across versions) so the rejection is decodable on its side.
  void encode_into(Op op, std::uint32_t request_id,
                   std::span<const std::uint8_t> payload,
                   std::vector<std::uint8_t>& out,
                   std::uint8_t version = kProtocolVersion) const;
  [[nodiscard]] std::vector<std::uint8_t> encode(
      Op op, std::uint32_t request_id, std::span<const std::uint8_t> payload,
      std::uint8_t version = kProtocolVersion) const;

  enum class DecodeStatus : std::uint8_t {
    kNeedMore,  // buffer holds a prefix of a valid frame; read more
    kFrame,     // one frame decoded; `consumed` bytes may be discarded
    kError,     // stream is poisoned; reply with `error` and close
  };
  struct Decoded {
    DecodeStatus status = DecodeStatus::kNeedMore;
    Frame frame;                              // when kFrame
    WireError error = WireError::kMalformedFrame;  // when kError
    std::size_t consumed = 0;                 // when kFrame
    /// Version byte the peer sent (valid once >= 3 bytes arrived) —
    /// lets a kVersionMismatch reply be encoded in the peer's dialect.
    std::uint8_t peer_version = kProtocolVersion;
  };
  /// Decode the first frame of `buffer`. Never throws, never reads past
  /// the span.
  [[nodiscard]] Decoded decode(std::span<const std::uint8_t> buffer) const;

 private:
  std::size_t max_payload_;
};

// ---- little-endian payload (de)serialization ---------------------------

class PayloadWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void f32(float v);
  void f64(double v);
  void bytes(std::span<const std::uint8_t> v);

  [[nodiscard]] const std::vector<std::uint8_t>& data() const noexcept {
    return buf_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked reader: every getter returns 0 once the buffer
/// underflows and latches ok() false — callers decode the whole payload
/// unconditionally and test done() once at the end.
class PayloadReader {
 public:
  explicit PayloadReader(std::span<const std::uint8_t> buf) noexcept
      : buf_(buf) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int32_t i32() {
    return static_cast<std::int32_t>(u32());
  }
  [[nodiscard]] float f32();
  [[nodiscard]] double f64();

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  /// ok and every byte consumed — the payload was exactly one message.
  [[nodiscard]] bool done() const noexcept {
    return ok_ && pos_ == buf_.size();
  }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return buf_.size() - pos_;
  }

 private:
  [[nodiscard]] bool take(std::size_t n) noexcept;

  std::span<const std::uint8_t> buf_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// ---- typed payloads ----------------------------------------------------

/// MODEL_INFO reply: registry + store counters.
struct ModelInfoReply {
  std::uint64_t model_version = 0;
  std::uint64_t swap_count = 0;
  std::uint64_t n_lines = 0;
  std::uint64_t measurements = 0;
  std::uint64_t tickets = 0;
};

void write_score(PayloadWriter& w, const serve::ServeScore& s);
[[nodiscard]] bool read_score(PayloadReader& r, serve::ServeScore& s);

void write_measurement(PayloadWriter& w, const serve::LineMeasurement& m);
[[nodiscard]] bool read_measurement(PayloadReader& r,
                                    serve::LineMeasurement& m);

void write_model_info(PayloadWriter& w, const ModelInfoReply& info);
[[nodiscard]] bool read_model_info(PayloadReader& r, ModelInfoReply& info);

/// Error reply payload: u8 code + u16 message length + message bytes.
[[nodiscard]] std::vector<std::uint8_t> encode_error_payload(
    WireError code, std::string_view message);
[[nodiscard]] bool decode_error_payload(std::span<const std::uint8_t> payload,
                                        WireError& code, std::string& message);

}  // namespace nevermind::net
