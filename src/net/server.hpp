// Non-blocking epoll TCP server exposing the scoring service over the
// framed binary protocol. One event-loop thread owns every connection;
// request handling calls straight into ScoringService::score_lines /
// top_n and LineStateStore::ingest, so a score served over the wire is
// the same bytes the in-process batch path produces.
//
// Robustness is part of the design, not a wrapper:
//   - bounded per-connection buffers: the receive buffer can never grow
//     past one max-size frame, and once the send buffer passes the high
//     watermark the connection stops reading (backpressure) until the
//     peer drains it;
//   - a peer that stops draining its replies for drain_timeout is
//     killed (slow-client protection), as is any connection idle past
//     idle_timeout;
//   - at max_connections further accepts are closed on the spot;
//   - framing errors (bad magic, wrong version, oversized length
//     prefix) get a typed error reply and the connection is closed —
//     the stream cannot be resynchronized; unknown-op / bad-payload
//     errors answer that request and keep the connection;
//   - request_stop() (async-signal-safe, wired to SIGINT/SIGTERM by the
//     CLI) drains: accepts stop, buffered requests are answered,
//     replies flush, then the loop exits — with drain_timeout as the
//     hard deadline.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>

#include "net/event_loop.hpp"
#include "net/protocol.hpp"
#include "serve/line_state_store.hpp"
#include "serve/model_registry.hpp"
#include "serve/scoring_service.hpp"

namespace nevermind::net {

struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  /// 0 = kernel-assigned ephemeral port; read the result from port().
  std::uint16_t port = 0;
  std::size_t max_connections = 256;
  std::size_t max_payload = kDefaultMaxPayload;
  /// Send-buffer size above which the connection stops reading.
  std::size_t write_high_watermark = 256 * 1024;
  /// Kill a connection idle this long (0 = never).
  std::chrono::milliseconds idle_timeout{0};
  /// Kill a connection whose send buffer makes no progress this long;
  /// also the hard deadline for the graceful-shutdown drain.
  std::chrono::milliseconds drain_timeout{2000};
  /// Period of the timeout scan.
  std::chrono::milliseconds tick{50};
  /// >0 shrinks SO_SNDBUF per connection — tests use it to trip the
  /// slow-client path without megabytes of traffic.
  int so_sndbuf = 0;
};

/// What an extension-op handler did with a frame.
enum class OpOutcome : std::uint8_t {
  kReply,       // handler filled the reply payload
  kBadPayload,  // op recognized, payload failed its typed decode
  kUnhandled,   // not this handler's op -> kUnknownOp to the peer
};

struct ServerStats {
  std::uint64_t accepted = 0;
  std::uint64_t rejected_at_capacity = 0;
  std::uint64_t frames_in = 0;
  std::uint64_t replies_out = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t idle_closed = 0;
  std::uint64_t slow_closed = 0;
  std::size_t open_connections = 0;
};

class Server {
 public:
  /// Borrows store/service/registry; all must outlive the server. The
  /// store is mutable: INGEST_* ops write through to it.
  Server(serve::LineStateStore& store, serve::ScoringService& service,
         const serve::ModelRegistry& registry, ServerConfig config = {});
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen. False (with *error set) on failure.
  [[nodiscard]] bool start(std::string* error = nullptr);

  /// Actual listening port (after start()).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Run the event loop on the calling thread; returns once a
  /// requested stop has drained (or force-closed at the deadline).
  void run();

  /// Begin graceful shutdown. Async-signal-safe: an atomic store plus
  /// an eventfd write, so SIGINT/SIGTERM handlers may call it.
  void request_stop() noexcept;

  /// Abrupt stop: the loop exits at the next dispatch opportunity with
  /// no drain — buffered replies are dropped and connections are left
  /// to the destructor. This is the failure-injection path
  /// (ClusterNode::kill, bench_cluster's mid-run node death), not a
  /// shutdown API. Async-signal-safe like request_stop().
  void stop_now() noexcept;

  /// Install a handler for ops dispatch() itself does not know
  /// (the cluster ops). Runs on the event-loop thread. Must be set
  /// before run(); replies it produces are framed like any other.
  void set_op_handler(
      std::function<OpOutcome(const Frame&, PayloadWriter&)> handler) {
    op_handler_ = std::move(handler);
  }

  [[nodiscard]] bool stop_requested() const noexcept {
    return stop_requested_.load(std::memory_order_acquire);
  }

  /// Counters as of the last loop iteration (safe to read after run()
  /// returns; concurrent reads see a torn-but-monotonic view).
  [[nodiscard]] const ServerStats& stats() const noexcept { return stats_; }

 private:
  struct Connection;
  using Clock = std::chrono::steady_clock;

  void on_acceptable();
  void on_connection_event(int fd, std::uint32_t events);
  void on_tick();
  void begin_drain();

  void handle_readable(Connection& c);
  void process_frames(Connection& c);
  void dispatch(Connection& c, const Frame& frame);
  void flush_score_batch(Connection& c);
  void reply(Connection& c, Op request_op, std::uint32_t request_id,
             std::span<const std::uint8_t> payload);
  void reply_error(Connection& c, std::uint32_t request_id, WireError code,
                   std::uint8_t version = kProtocolVersion);
  void flush_writes(Connection& c);
  void update_interest(Connection& c);
  void close_connection(int fd);

  serve::LineStateStore& store_;
  serve::ScoringService& service_;
  const serve::ModelRegistry& registry_;
  ServerConfig config_;
  Codec codec_;
  std::function<OpOutcome(const Frame&, PayloadWriter&)> op_handler_;

  EventLoop loop_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::map<int, std::unique_ptr<Connection>> connections_;
  std::atomic<bool> stop_requested_{false};
  bool draining_ = false;
  Clock::time_point drain_deadline_{};
  ServerStats stats_;
};

}  // namespace nevermind::net
