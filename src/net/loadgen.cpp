#include "net/loadgen.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <utility>

#include "util/calendar.hpp"

namespace nevermind::net {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Merge one connection's samples into the shared op stats.
void merge(OpStats& into, std::uint64_t count, std::uint64_t failures,
           double wall_s, std::vector<double>&& latencies) {
  into.count += count;
  into.failures += failures;
  into.wall_s = std::max(into.wall_s, wall_s);
  into.latencies_s.insert(into.latencies_s.end(), latencies.begin(),
                          latencies.end());
}

}  // namespace

double OpStats::percentile_s(double p) const {
  if (latencies_s.empty()) return 0.0;
  std::vector<double> sorted = latencies_s;
  std::sort(sorted.begin(), sorted.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

LoadGen::LoadGen(const dslsim::SimDataset& data, LoadGenConfig config)
    : data_(data), config_(std::move(config)) {}

LoadGenReport LoadGen::run() const {
  LoadGenReport report;
  const std::size_t n_conns = std::max<std::size_t>(config_.connections, 1);
  const std::size_t n_lines = data_.n_lines();
  const int last_week =
      std::min(config_.through_week, data_.n_weeks() - 1);
  report.connections = n_conns;
  report.scores.resize(n_lines);

  std::mutex report_mutex;  // guards report merging from worker threads
  std::atomic<bool> failed{false};

  // Tickets reported at or before the scored week's Saturday, day
  // order — the same horizon ReplayDriver feeds.
  std::vector<std::pair<util::Day, dslsim::LineId>> tickets;
  const util::Day horizon = util::saturday_of_week(last_week);
  for (const auto& ticket : data_.tickets()) {
    if (ticket.category == dslsim::TicketCategory::kCustomerEdge &&
        ticket.reported <= horizon) {
      tickets.emplace_back(ticket.reported, ticket.line);
    }
  }
  std::stable_sort(
      tickets.begin(), tickets.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });

  const auto fail = [&](const std::string& what) {
    const std::lock_guard<std::mutex> lock(report_mutex);
    if (!failed.exchange(true)) report.error = what;
  };

  // ---- phase 1: ingest --------------------------------------------------
  {
    std::vector<std::thread> workers;
    workers.reserve(n_conns);
    for (std::size_t conn = 0; conn < n_conns; ++conn) {
      workers.emplace_back([&, conn] {
        Client client;
        if (!client.connect(config_.host, config_.port)) {
          fail("connect: " + client.last_error());
          return;
        }
        std::uint64_t count = 0;
        std::uint64_t failures = 0;
        std::vector<double> lat;
        const auto start = Clock::now();
        if (conn == 0) {
          for (const auto& [day, line] : tickets) {
            if (!client.ingest_ticket(line, day)) {
              fail("ingest_ticket: " + client.last_error());
              return;
            }
          }
        }
        for (int week = 0; week <= last_week; ++week) {
          for (std::size_t l = conn; l < n_lines; l += n_conns) {
            serve::LineMeasurement m;
            m.line = static_cast<dslsim::LineId>(l);
            m.week = week;
            m.profile = data_.plant(m.line).profile;
            m.metrics = data_.measurement(week, m.line);
            const auto t0 = Clock::now();
            if (!client.ingest(m)) {
              ++failures;
              fail("ingest: " + client.last_error());
              return;
            }
            lat.push_back(seconds_since(t0));
            ++count;
          }
        }
        const double wall = seconds_since(start);
        const std::lock_guard<std::mutex> lock(report_mutex);
        merge(report.ingest, count, failures, wall, std::move(lat));
      });
    }
    for (auto& w : workers) w.join();
  }
  if (failed.load()) return report;

  // ---- phase 2: queries (after every ingest finished) -------------------
  {
    std::vector<std::thread> workers;
    workers.reserve(n_conns);
    for (std::size_t conn = 0; conn < n_conns; ++conn) {
      workers.emplace_back([&, conn] {
        Client client;
        if (!client.connect(config_.host, config_.port)) {
          fail("connect: " + client.last_error());
          return;
        }
        std::uint64_t scores = 0;
        std::uint64_t score_failures = 0;
        std::vector<double> score_lat;
        const auto start = Clock::now();
        for (std::size_t l = conn; l < n_lines; l += n_conns) {
          const auto t0 = Clock::now();
          const auto s = client.score(static_cast<dslsim::LineId>(l));
          if (!s.has_value()) {
            ++score_failures;
            fail("score: " + client.last_error());
            return;
          }
          score_lat.push_back(seconds_since(t0));
          report.scores[l] = *s;  // partitioned by line: no contention
          ++scores;
        }
        const double score_wall = seconds_since(start);

        std::uint64_t pings = 0;
        std::uint64_t ping_failures = 0;
        std::vector<double> ping_lat;
        const auto ping_start = Clock::now();
        for (std::size_t i = 0; i < config_.pings_per_connection; ++i) {
          const auto t0 = Clock::now();
          if (!client.ping()) {
            ++ping_failures;
            fail("ping: " + client.last_error());
            return;
          }
          ping_lat.push_back(seconds_since(t0));
          ++pings;
        }
        const double ping_wall = seconds_since(ping_start);

        std::vector<serve::ServeScore> ranked;
        double topn_wall = 0;
        std::vector<double> topn_lat;
        if (conn == 0 && config_.top_n > 0) {
          const auto t0 = Clock::now();
          auto r = client.top_n(config_.top_n);
          topn_wall = seconds_since(t0);
          if (!r.has_value()) {
            fail("top_n: " + client.last_error());
            return;
          }
          topn_lat.push_back(topn_wall);
          ranked = std::move(*r);
        }

        const std::lock_guard<std::mutex> lock(report_mutex);
        merge(report.score, scores, score_failures, score_wall,
              std::move(score_lat));
        merge(report.ping, pings, ping_failures, ping_wall,
              std::move(ping_lat));
        if (!topn_lat.empty()) {
          merge(report.top_n, 1, 0, topn_wall, std::move(topn_lat));
          report.ranked = std::move(ranked);
        }
      });
    }
    for (auto& w : workers) w.join();
  }

  report.ok = !failed.load();
  return report;
}

}  // namespace nevermind::net
