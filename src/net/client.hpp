// Blocking client for the scoring-service wire protocol: one TCP
// connection, one in-flight request at a time, request ids checked
// against replies. Transport failures and typed server errors both
// land in last_error()/last_wire_error() instead of exceptions, so a
// load generator can keep per-op error counters cheaply.
//
// send_raw()/read_frame() bypass the typed layer — the protocol tests
// use them to feed the server garbage and observe the typed error
// replies.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/protocol.hpp"
#include "serve/line_state_store.hpp"
#include "serve/micro_batcher.hpp"
#include "util/calendar.hpp"

namespace nevermind::net {

class Client {
 public:
  Client() = default;
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  [[nodiscard]] bool connect(const std::string& host, std::uint16_t port);
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }
  void close();

  /// Liveness probe; true when the server echoed the ping.
  [[nodiscard]] bool ping();
  /// Score one line (valid/reason say whether it scored).
  [[nodiscard]] std::optional<serve::ServeScore> score(dslsim::LineId line);
  /// The server's current top-n ranking.
  [[nodiscard]] std::optional<std::vector<serve::ServeScore>> top_n(
      std::uint32_t n);
  [[nodiscard]] bool ingest(const serve::LineMeasurement& m);
  [[nodiscard]] bool ingest_ticket(dslsim::LineId line, util::Day day);
  [[nodiscard]] std::optional<ModelInfoReply> model_info();

  /// Human-readable cause of the last failed call.
  [[nodiscard]] const std::string& last_error() const noexcept {
    return error_;
  }
  /// Set when the failure was a typed server error reply.
  [[nodiscard]] std::optional<WireError> last_wire_error() const noexcept {
    return wire_error_;
  }

  /// Raw escape hatches for protocol tests.
  [[nodiscard]] bool send_raw(std::span<const std::uint8_t> bytes);
  /// Next frame off the wire, or nullopt on close/timeout/garbage.
  [[nodiscard]] std::optional<Frame> read_frame();

 private:
  /// Send `op` and block for its reply. False on transport failure,
  /// reply-id mismatch, or a typed error reply (recorded).
  [[nodiscard]] bool roundtrip(Op op, std::span<const std::uint8_t> payload,
                               Frame& reply);
  void fail(std::string message);

  int fd_ = -1;
  std::uint32_t next_id_ = 1;
  Codec codec_;
  std::vector<std::uint8_t> rx_;
  std::size_t rx_off_ = 0;
  std::string error_;
  std::optional<WireError> wire_error_;
};

}  // namespace nevermind::net
