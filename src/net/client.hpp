// Blocking client for the scoring-service wire protocol: one TCP
// connection, one in-flight request at a time, request ids checked
// against replies. Transport failures and typed server errors both
// land in last_error()/last_wire_error() instead of exceptions, so a
// load generator can keep per-op error counters cheaply.
//
// ClientOptions adds the two deadlines a failover router cannot live
// without: a connect timeout (non-blocking connect + poll) and a
// per-request reply timeout. A request timeout closes the connection —
// the stray reply would desynchronize the id-checked stream — so the
// caller reconnects, which is exactly the signal the cluster layer
// uses to mark a peer suspect. Backoff/connect_with_backoff give
// reconnect loops a bounded exponential schedule instead of a busy
// hammer.
//
// send_raw()/read_frame() bypass the typed layer — the protocol tests
// use them to feed the server garbage and observe the typed error
// replies.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/protocol.hpp"
#include "serve/line_state_store.hpp"
#include "serve/micro_batcher.hpp"
#include "util/calendar.hpp"

namespace nevermind::net {

struct ClientOptions {
  /// Deadline for connect(); zero keeps the historical blocking connect.
  std::chrono::milliseconds connect_timeout{0};
  /// Deadline for one request/reply roundtrip (covers send + reply
  /// wait); zero waits forever. Expiry fails the call and closes the
  /// connection.
  std::chrono::milliseconds request_timeout{0};
  /// Largest reply payload this client will accept.
  std::size_t max_payload = kDefaultMaxPayload;
};

/// Bounded exponential backoff: next() yields initial, initial*mult,
/// ... capped at max. Deterministic (no jitter) so tests and the
/// cluster bench can reason about reconnect schedules exactly.
class Backoff {
 public:
  Backoff(std::chrono::milliseconds initial, std::chrono::milliseconds max,
          double multiplier = 2.0) noexcept
      : initial_(initial), max_(max), multiplier_(multiplier), next_(initial) {}

  /// The delay to sleep before the upcoming attempt; advances the
  /// schedule.
  [[nodiscard]] std::chrono::milliseconds next() noexcept;
  /// Back to the initial delay (call after a success).
  void reset() noexcept {
    next_ = initial_;
    attempts_ = 0;
  }
  [[nodiscard]] std::uint32_t attempts() const noexcept { return attempts_; }
  /// The delay next() would return, without advancing.
  [[nodiscard]] std::chrono::milliseconds peek() const noexcept {
    return next_;
  }

 private:
  std::chrono::milliseconds initial_;
  std::chrono::milliseconds max_;
  double multiplier_;
  std::chrono::milliseconds next_;
  std::uint32_t attempts_ = 0;
};

class Client {
 public:
  Client() = default;
  explicit Client(ClientOptions options) noexcept
      : options_(options), codec_(options.max_payload) {}
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  [[nodiscard]] bool connect(const std::string& host, std::uint16_t port);
  /// Reconnect helper: up to `max_attempts` connects, sleeping
  /// `backoff.next()` between failures (not after the last). The
  /// backoff is caller-owned so its state spans calls — a peer that
  /// keeps refusing gets progressively rarer attempts.
  [[nodiscard]] bool connect_with_backoff(const std::string& host,
                                          std::uint16_t port,
                                          std::size_t max_attempts,
                                          Backoff& backoff);
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }
  void close();

  /// Liveness probe; true when the server echoed the ping.
  [[nodiscard]] bool ping();
  /// Score one line (valid/reason say whether it scored).
  [[nodiscard]] std::optional<serve::ServeScore> score(dslsim::LineId line);
  /// The server's current top-n ranking.
  [[nodiscard]] std::optional<std::vector<serve::ServeScore>> top_n(
      std::uint32_t n);
  [[nodiscard]] bool ingest(const serve::LineMeasurement& m);
  [[nodiscard]] bool ingest_ticket(dslsim::LineId line, util::Day day);
  [[nodiscard]] std::optional<ModelInfoReply> model_info();

  /// Generic typed roundtrip for extension ops (the cluster layer owns
  /// their payload formats). Returns the reply frame, or nullopt on
  /// transport failure / typed error reply (recorded as usual).
  [[nodiscard]] std::optional<Frame> request(
      Op op, std::span<const std::uint8_t> payload);

  /// Human-readable cause of the last failed call.
  [[nodiscard]] const std::string& last_error() const noexcept {
    return error_;
  }
  /// Set when the failure was a typed server error reply.
  [[nodiscard]] std::optional<WireError> last_wire_error() const noexcept {
    return wire_error_;
  }

  /// Raw escape hatches for protocol tests.
  [[nodiscard]] bool send_raw(std::span<const std::uint8_t> bytes);
  /// Next frame off the wire, or nullopt on close/timeout/garbage.
  [[nodiscard]] std::optional<Frame> read_frame();

 private:
  using Clock = std::chrono::steady_clock;

  /// Send `op` and block for its reply. False on transport failure,
  /// deadline expiry, reply-id mismatch, or a typed error reply
  /// (recorded).
  [[nodiscard]] bool roundtrip(Op op, std::span<const std::uint8_t> payload,
                               Frame& reply);
  /// Wait for readability until the roundtrip deadline. True when
  /// readable; false fails the call (and records the timeout).
  [[nodiscard]] bool wait_readable();
  void fail(std::string message);

  int fd_ = -1;
  std::uint32_t next_id_ = 1;
  ClientOptions options_;
  Codec codec_;
  std::vector<std::uint8_t> rx_;
  std::size_t rx_off_ = 0;
  std::string error_;
  std::optional<WireError> wire_error_;
  bool deadline_armed_ = false;
  Clock::time_point deadline_{};
};

}  // namespace nevermind::net
