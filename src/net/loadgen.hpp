// Multi-connection load generator: replays a SimDataset's feeds against
// a live server the way ReplayDriver replays them in-process, then
// fetches every line's score over the wire. Lines are partitioned
// across connections (line % connections), each connection walks its
// lines week by week, so the per-line week order the store requires is
// preserved no matter how the connections interleave — the final store
// state, and therefore every score, is connection-count invariant.
//
// The report carries per-op latency samples and the fetched scores +
// ranking so the caller (bench_net, the loadgen CLI) can assert
// byte-identity against the offline batch path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "dslsim/simulator.hpp"
#include "net/client.hpp"
#include "serve/micro_batcher.hpp"

namespace nevermind::net {

struct LoadGenConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Concurrent client connections (each on its own thread).
  std::size_t connections = 8;
  /// Replay measurements/tickets through this week before querying.
  int through_week = 43;
  /// Extra PING probes per connection (latency floor samples).
  std::size_t pings_per_connection = 64;
  /// When > 0, connection 0 also fetches a TOP_N of this size.
  std::uint32_t top_n = 0;
};

/// Latency samples for one op type across every connection.
struct OpStats {
  std::uint64_t count = 0;
  std::uint64_t failures = 0;
  double wall_s = 0;  // longest per-connection wall time for the phase
  std::vector<double> latencies_s;

  [[nodiscard]] double per_s() const noexcept {
    return wall_s > 0 ? static_cast<double>(count) / wall_s : 0.0;
  }
  /// p in [0,1]; sorts on demand.
  [[nodiscard]] double percentile_s(double p) const;
};

struct LoadGenReport {
  bool ok = false;
  std::string error;
  std::size_t connections = 0;
  OpStats ingest;
  OpStats score;
  OpStats ping;
  OpStats top_n;
  /// scores[line] = the SCORE reply for that line (every simulated
  /// line is fetched exactly once).
  std::vector<serve::ServeScore> scores;
  /// The TOP_N reply, when config.top_n > 0.
  std::vector<serve::ServeScore> ranked;
};

class LoadGen {
 public:
  /// Borrows the dataset; it must outlive run().
  LoadGen(const dslsim::SimDataset& data, LoadGenConfig config);

  /// Ingest phase (all connections replay their partition, one
  /// connection feeds tickets), barrier, then query phase (SCORE per
  /// line + PINGs + optional TOP_N). Blocks until both phases finish.
  [[nodiscard]] LoadGenReport run() const;

 private:
  const dslsim::SimDataset& data_;
  LoadGenConfig config_;
};

}  // namespace nevermind::net
