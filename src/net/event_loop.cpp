#include "net/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <utility>

namespace nevermind::net {

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ >= 0 && wake_fd_ >= 0) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = wake_fd_;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  }
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

bool EventLoop::valid() const noexcept {
  return epoll_fd_ >= 0 && wake_fd_ >= 0;
}

void EventLoop::add(int fd, std::uint32_t events, Callback cb) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0) {
    callbacks_[fd] = std::move(cb);
  }
}

void EventLoop::modify(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
}

void EventLoop::remove(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  callbacks_.erase(fd);
}

bool EventLoop::watching(int fd) const {
  return callbacks_.find(fd) != callbacks_.end();
}

std::size_t EventLoop::watched() const noexcept { return callbacks_.size(); }

void EventLoop::run(std::chrono::milliseconds tick_every,
                    const std::function<void()>& tick) {
  stop_.store(false, std::memory_order_relaxed);
  std::array<epoll_event, 64> events{};
  const int timeout_ms =
      tick_every.count() > 0 ? static_cast<int>(tick_every.count()) : -1;
  while (!stop_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t drain = 0;
        while (::read(wake_fd_, &drain, sizeof drain) > 0) {
        }
        continue;
      }
      // A callback earlier in this batch may have removed this fd —
      // the map lookup, not the stale epoll event, is authoritative.
      const auto it = callbacks_.find(fd);
      if (it != callbacks_.end()) it->second(events[i].events);
    }
    run_deferred();
    if (tick) tick();
    // The tick may defer work of its own (connection closes during a
    // drain) and then stop the loop — run it before the stop check so
    // nothing queued is abandoned.
    run_deferred();
  }
  run_deferred();
}

void EventLoop::run_deferred() {
  while (!deferred_.empty()) {
    std::vector<std::function<void()>> run_now;
    run_now.swap(deferred_);
    for (auto& fn : run_now) fn();
  }
}

void EventLoop::stop() noexcept {
  stop_.store(true, std::memory_order_release);
  wake();
}

void EventLoop::wake() noexcept {
  const std::uint64_t one = 1;
  [[maybe_unused]] const auto n = ::write(wake_fd_, &one, sizeof one);
}

void EventLoop::defer(std::function<void()> fn) {
  deferred_.push_back(std::move(fn));
}

}  // namespace nevermind::net
