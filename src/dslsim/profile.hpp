// Subscriber profiles (paper data source 4): the service tier a
// customer pays for, which fixes the expected bit rates the line should
// deliver. The profile features of Table 3 normalize the measured rates
// by these expectations — 128 kbps is healthy on a basic line and a
// severe fault on a high-speed one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace nevermind::dslsim {

struct ServiceProfile {
  std::string_view name;
  double down_kbps;      // advertised downstream rate
  double up_kbps;        // advertised upstream rate
  double min_down_kbps;  // below this the line is out of spec
  double min_up_kbps;
  /// Fraction of the subscriber population on this tier.
  double population_share;
};

/// The tier ladder; mirrors the paper's examples (basic 768/384,
/// advanced 2500/768) plus the surrounding tiers a real DSL footprint
/// carries.
[[nodiscard]] std::span<const ServiceProfile> service_profiles() noexcept;

/// Index into service_profiles(); kept small for storage in line state.
using ProfileId = std::uint8_t;

[[nodiscard]] const ServiceProfile& profile(ProfileId id) noexcept;

}  // namespace nevermind::dslsim
