// CSV export of the simulator's datasets, in the shape the paper's
// four data feeds would arrive in: weekly line measurements, customer
// tickets, disposition notes, subscriber profiles — plus outage events
// and the daily byte feed. Lets the synthetic data be inspected or
// consumed outside this library (plotting, spreadsheet checks,
// cross-language reimplementation).
#pragma once

#include <iosfwd>

#include "dslsim/simulator.hpp"

namespace nevermind::dslsim {

/// One row per (week, line): week, line, date, then the 25 Table-2
/// metrics (empty cells for missing). `week_from`/`week_to` bound the
/// export (inclusive); pass 0 / n_weeks()-1 for everything.
void export_measurements_csv(const SimDataset& data, std::ostream& os,
                             int week_from, int week_to);

/// Streamed counterpart of export_measurements_csv: write the header
/// once, then one chunk per week as Simulator::stream_weeks delivers
/// them. Chunks written in week order produce a byte-identical file
/// without a materialized measurement table.
void export_measurements_csv_header(std::ostream& os);
void export_measurements_csv_chunk(const WeekChunk& chunk, std::ostream& os);

/// One row per ticket: id, line, reported date, category, resolved
/// date, disposition code (empty when no dispatch ran).
void export_tickets_csv(const SimDataset& data, std::ostream& os);

/// One row per disposition note: ticket id, line, dispatch date,
/// disposition code, major location.
void export_notes_csv(const SimDataset& data, std::ostream& os);

/// One row per line: line, DSLAM, BRAS, profile name, advertised rates.
void export_profiles_csv(const SimDataset& data, std::ostream& os);

/// One row per outage event: dslam, precursor start, start, end dates.
void export_outages_csv(const SimDataset& data, std::ostream& os);

}  // namespace nevermind::dslsim
