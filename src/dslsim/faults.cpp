#include "dslsim/faults.hpp"

#include <algorithm>
#include <cmath>

namespace nevermind::dslsim {

const char* major_location_name(MajorLocation loc) noexcept {
  switch (loc) {
    case MajorLocation::kHomeNetwork: return "HN";
    case MajorLocation::kF1: return "F1";
    case MajorLocation::kDslam: return "DS";
    case MajorLocation::kF2: return "F2";
  }
  return "?";
}

int end_host_proximity(MajorLocation loc) noexcept {
  switch (loc) {
    case MajorLocation::kHomeNetwork: return 0;
    case MajorLocation::kF2: return 1;
    case MajorLocation::kF1: return 2;
    case MajorLocation::kDslam: return 3;
  }
  return 4;
}

namespace {

using D = FaultDynamics;
using L = MajorLocation;

FaultSignature sig(std::string code, std::string desc, L loc, D dyn,
                   double freq, FaultEffects fx, double perceived,
                   double sev_mu = -0.35, double sev_sigma = 0.45) {
  FaultSignature s;
  s.code = std::move(code);
  s.description = std::move(desc);
  s.location = loc;
  s.dynamics = dyn;
  s.frequency_weight = freq;
  s.effects = fx;
  s.perceived_weight = perceived;
  s.severity_mu = sev_mu;
  s.severity_sigma = sev_sigma;
  return s;
}

/// The canonical Table-1 dispositions. Effects encode the operational
/// folklore the paper describes: home-network device problems show up
/// as unreachable modems and collapsed rates; outside-plant wire
/// problems as attenuation/noise/code-violation growth; DSLAM equipment
/// problems as errored seconds and FEC churn with healthy loop metrics.
std::vector<FaultSignature> canonical_catalog() {
  std::vector<FaultSignature> v;

  // ---- Home network (HN) ------------------------------------------
  v.push_back(sig("HN-MODEM", "Defective DSL modem", L::kHomeNetwork,
                  D::kIntermittent, 3.2,
                  {.rate_mult = 0.45, .cv_rate = 18, .es_rate = 25,
                   .modem_off_prob = 0.45, .cells_mult = 0.5,
                   .instability = 0.9},
                  1.5));
  v.push_back(sig("HN-FILTER", "Filter issues", L::kHomeNetwork,
                  D::kSudden, 1.8,
                  {.noise_db = 5, .cv_rate = 45, .es_rate = 12,
                   .crosstalk_prob = 0.55, .cells_mult = 0.9},
                  0.9));
  v.push_back(sig("HN-SPLIT", "Splitter issues", L::kHomeNetwork,
                  D::kSudden, 1.1,
                  {.noise_db = 6, .cv_rate = 30, .es_rate = 20,
                   .crosstalk_prob = 0.3},
                  0.8));
  v.push_back(sig("HN-CABLE", "Network cable issues", L::kHomeNetwork,
                  D::kIntermittent, 1.4,
                  {.rate_mult = 0.7, .cv_rate = 10,
                   .modem_off_prob = 0.35, .cells_mult = 0.6,
                   .instability = 0.8},
                  1.1));
  v.push_back(sig("HN-IW", "Inside wire (wet, corroded, cut)",
                  L::kHomeNetwork, D::kDegrading, 2.4,
                  {.atten_db = 4, .noise_db = 7, .cv_rate = 60,
                   .es_rate = 30, .fec_rate = 40, .crosstalk_prob = 0.35},
                  1.0));
  v.push_back(sig("HN-JACK", "Jack, software, NIC, etc.", L::kHomeNetwork,
                  D::kIntermittent, 1.6,
                  {.rate_mult = 0.85, .modem_off_prob = 0.5,
                   .cells_mult = 0.4, .instability = 0.7},
                  1.2));

  // ---- F1: crossbox <-> DSLAM path --------------------------------
  v.push_back(sig("F1-XFER", "Transfer service to another cable pair",
                  L::kF1, D::kDegrading, 1.0,
                  {.atten_db = 6, .noise_db = 4, .attain_mult = 0.65,
                   .cv_rate = 25, .es_rate = 10},
                  0.8));
  v.push_back(sig("F1-BTAP", "Bridge tap of the customer's facilities",
                  L::kF1, D::kSudden, 0.8,
                  {.atten_db = 5, .attain_mult = 0.7, .cv_rate = 15,
                   .bridge_tap_prob = 0.9, .hicar_shift = -40},
                  0.6));
  v.push_back(sig("F1-WET", "Wet or corroded wire conductor", L::kF1,
                  D::kDegrading, 2.0,
                  {.atten_db = 8, .noise_db = 9, .rate_mult = 0.8,
                   .cv_rate = 90, .es_rate = 45, .fec_rate = 70},
                  1.0));
  v.push_back(sig("F1-XBOX", "Defect found in a crossbox", L::kF1,
                  D::kIntermittent, 1.2,
                  {.noise_db = 6, .rate_mult = 0.85, .cv_rate = 50,
                   .es_rate = 35, .modem_off_prob = 0.2, .instability = 0.6},
                  0.9));
  v.push_back(sig("F1-BRAT", "Defective buried ready access terminal",
                  L::kF1, D::kDegrading, 0.9,
                  {.atten_db = 6, .noise_db = 5, .cv_rate = 40,
                   .es_rate = 25, .crosstalk_prob = 0.25},
                  0.8));
  v.push_back(sig("F1-CUT", "Pair cut, defect cable, stub, etc.", L::kF1,
                  D::kSudden, 1.3,
                  {.rate_mult = 0.05, .modem_off_prob = 0.85,
                   .cells_mult = 0.05},
                  2.0, -0.1, 0.3));

  // ---- DSLAM (DS) ---------------------------------------------------
  v.push_back(sig("DS-SPEED", "Reduce speed to stabilize the line",
                  L::kDslam, D::kDegrading, 1.5,
                  {.noise_db = 5, .attain_mult = 0.75, .cv_rate = 70,
                   .es_rate = 30, .fec_rate = 90},
                  0.7));
  v.push_back(sig("DS-DST", "Digital stream transport", L::kDslam,
                  D::kSudden, 0.8,
                  {.rate_mult = 0.3, .es_rate = 60, .modem_off_prob = 0.4,
                   .cells_mult = 0.3},
                  1.4));
  v.push_back(sig("DS-WIRE", "Wiring at DSLAM", L::kDslam,
                  D::kIntermittent, 0.9,
                  {.cv_rate = 35, .es_rate = 70, .fec_rate = 50,
                   .modem_off_prob = 0.25},
                  1.0));
  v.push_back(sig("DS-CARD", "DSLAM pronto card ABCU/ADLU", L::kDslam,
                  D::kIntermittent, 1.1,
                  {.rate_mult = 0.8, .cv_rate = 20, .es_rate = 90,
                   .fec_rate = 120, .modem_off_prob = 0.3, .instability = 0.6},
                  1.2));
  v.push_back(sig("DS-PORT", "Porting", L::kDslam, D::kSudden, 0.6,
                  {.rate_mult = 0.1, .modem_off_prob = 0.7,
                   .cells_mult = 0.1},
                  1.6, -0.2, 0.35));
  v.push_back(sig("DS-ATM", "Digital stream, ATM switch, etc.", L::kDslam,
                  D::kSudden, 0.5,
                  {.rate_mult = 0.6, .es_rate = 50, .fec_rate = 60,
                   .cells_mult = 0.5},
                  1.1));

  // ---- F2: home <-> crossbox drop ----------------------------------
  v.push_back(sig("F2-AERIAL", "Aerial drop was replaced", L::kF2,
                  D::kDegrading, 1.4,
                  {.atten_db = 7, .noise_db = 6, .rate_mult = 0.85,
                   .cv_rate = 55, .es_rate = 25, .crosstalk_prob = 0.3},
                  1.0));
  v.push_back(sig("F2-DEMARC", "Access point (DEMARC) - outside", L::kF2,
                  D::kIntermittent, 1.2,
                  {.noise_db = 5, .rate_mult = 0.9, .cv_rate = 40,
                   .modem_off_prob = 0.3, .instability = 0.7},
                  0.9));
  v.push_back(sig("F2-BSW", "Repaired existing buried service wire",
                  L::kF2, D::kDegrading, 1.3,
                  {.atten_db = 8, .noise_db = 8, .cv_rate = 75,
                   .es_rate = 40, .fec_rate = 55},
                  1.0));
  v.push_back(sig("F2-PROT", "Defect in protector unit", L::kF2,
                  D::kSudden, 0.9,
                  {.noise_db = 10, .cv_rate = 65, .es_rate = 35,
                   .crosstalk_prob = 0.4},
                  0.9));
  v.push_back(sig("F2-PW", "Wire from protector to DEMARC", L::kF2,
                  D::kDegrading, 0.8,
                  {.atten_db = 5, .noise_db = 6, .cv_rate = 45,
                   .es_rate = 20},
                  0.8));
  v.push_back(sig("F2-MTU", "Jumper, defective MTU, etc.", L::kF2,
                  D::kIntermittent, 0.7,
                  {.rate_mult = 0.6, .cv_rate = 30, .modem_off_prob = 0.4,
                   .cells_mult = 0.5, .instability = 0.6},
                  1.1));

  return v;
}

/// Location style parameters for generated minor variants: variants
/// inherit the metric channels typical of their location with jittered
/// magnitudes, giving the locator a realistic rare tail whose members
/// resemble their siblings more than other locations' codes.
FaultEffects random_effects_for(L loc, util::Rng& rng) {
  FaultEffects fx;
  auto jitter = [&](double base) { return base * rng.uniform(0.5, 1.6); };
  switch (loc) {
    case L::kHomeNetwork:
      fx.rate_mult = 1.0 - jitter(0.3);
      fx.modem_off_prob = jitter(0.3);
      fx.cv_rate = jitter(25);
      fx.cells_mult = 1.0 - jitter(0.35);
      fx.noise_db = jitter(3);
      fx.instability = jitter(0.5);
      break;
    case L::kF1:
      fx.atten_db = jitter(6);
      fx.noise_db = jitter(6);
      fx.cv_rate = jitter(55);
      fx.es_rate = jitter(28);
      fx.rate_mult = 1.0 - jitter(0.15);
      fx.bridge_tap_prob = rng.bernoulli(0.25) ? jitter(0.5) : 0.0;
      break;
    case L::kDslam:
      fx.es_rate = jitter(70);
      fx.fec_rate = jitter(75);
      fx.cv_rate = jitter(25);
      fx.rate_mult = 1.0 - jitter(0.2);
      fx.modem_off_prob = jitter(0.2);
      fx.instability = jitter(0.35);
      break;
    case L::kF2:
      fx.atten_db = jitter(6);
      fx.noise_db = jitter(6);
      fx.cv_rate = jitter(50);
      fx.es_rate = jitter(25);
      fx.crosstalk_prob = rng.bernoulli(0.4) ? jitter(0.35) : 0.0;
      fx.rate_mult = 1.0 - jitter(0.12);
      fx.instability = jitter(0.4);
      break;
  }
  return fx;
}

}  // namespace

FaultCatalog::FaultCatalog(std::uint64_t seed,
                           std::size_t minor_variants_per_location) {
  signatures_ = canonical_catalog();
  canonical_count_ = signatures_.size();

  util::Rng rng(seed ^ 0xFA0175C47A106ULL);
  constexpr L kLocations[] = {L::kHomeNetwork, L::kF1, L::kDslam, L::kF2};
  for (L loc : kLocations) {
    for (std::size_t i = 0; i < minor_variants_per_location; ++i) {
      FaultSignature s;
      s.code = std::string(major_location_name(loc)) + "-MISC" +
               std::to_string(i + 1);
      s.description = std::string("Minor ") + major_location_name(loc) +
                      " disposition variant " + std::to_string(i + 1);
      s.location = loc;
      const double pick = rng.uniform();
      s.dynamics = pick < 0.35   ? D::kSudden
                   : pick < 0.70 ? D::kDegrading
                                 : D::kIntermittent;
      // Rare tail: individually far less frequent than canonical codes.
      s.frequency_weight = rng.uniform(0.04, 0.25);
      s.severity_mu = rng.uniform(-0.6, -0.1);
      s.severity_sigma = rng.uniform(0.3, 0.6);
      s.ramp_weeks = rng.uniform(1.5, 5.0);
      s.duty_cycle = rng.uniform(0.3, 0.8);
      s.effects = random_effects_for(loc, rng);
      s.perceived_weight = rng.uniform(0.6, 1.4);
      signatures_.push_back(std::move(s));
    }
  }

  weights_.reserve(signatures_.size());
  for (const auto& s : signatures_) weights_.push_back(s.frequency_weight);
}

DispositionId FaultCatalog::sample(util::Rng& rng) const {
  return static_cast<DispositionId>(rng.categorical(weights_));
}

DispositionId FaultCatalog::sample_within_location(util::Rng& rng,
                                                   MajorLocation loc) const {
  std::vector<double> w(weights_.size(), 0.0);
  for (std::size_t i = 0; i < signatures_.size(); ++i) {
    if (signatures_[i].location == loc) w[i] = weights_[i];
  }
  return static_cast<DispositionId>(rng.categorical(w));
}

}  // namespace nevermind::dslsim
