#include "dslsim/line.hpp"

#include <algorithm>
#include <cmath>

#include "util/mathx.hpp"

namespace nevermind::dslsim {

LinePlant sample_plant(util::Rng& rng) {
  LinePlant plant;
  // Log-normal loop length, mode ~7 kft, tail past 15 kft.
  plant.loop_length_ft =
      static_cast<float>(std::clamp(rng.lognormal(8.85, 0.42), 1200.0, 19500.0));
  plant.gauge_db_per_kft = static_cast<float>(rng.uniform(4.2, 6.4));
  plant.inherent_bridge_tap = rng.bernoulli(0.12);
  plant.crosstalk_propensity = static_cast<float>(rng.uniform(0.0, 0.35));
  plant.noise_floor_db = static_cast<float>(rng.normal(0.0, 2.0));
  plant.profile = 1;
  return plant;
}

ProfileId sample_profile(const LinePlant& plant, util::Rng& rng) {
  const auto profiles = service_profiles();
  // Base popularity, discounted by plant feasibility so long loops end
  // up on slow tiers — mostly.
  std::vector<double> weights(profiles.size());
  const double loop_kft = plant.loop_length_ft / 1000.0;
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const double atten = loop_kft * plant.gauge_db_per_kft;
    // Rough feasibility: a tier is attractive while its rate is well
    // below what the loop can carry (~ sigmoid in attenuation).
    const double feasibility =
        util::sigmoid((62.0 - atten - profiles[i].down_kbps / 200.0) / 6.0);
    // A small residue of sales ignores feasibility (mis-provisioning,
    // one source of DS-SPEED "downgrade to stabilize" dispositions).
    weights[i] = profiles[i].population_share * (0.005 + 0.995 * feasibility);
  }
  return static_cast<ProfileId>(rng.categorical(weights));
}

void accumulate_effects(FaultEffects& into, const FaultEffects& from,
                        double scale) noexcept {
  if (scale <= 0.0) return;
  into.atten_db += from.atten_db * scale;
  into.noise_db += from.noise_db * scale;
  into.cv_rate += from.cv_rate * scale;
  into.es_rate += from.es_rate * scale;
  into.fec_rate += from.fec_rate * scale;
  into.hicar_shift += from.hicar_shift * scale;
  into.instability += from.instability * scale;
  // Multiplicative channels: interpolate toward the fault's multiplier
  // with the episode scale, then compose multiplicatively.
  const auto scaled_mult = [scale](double mult) {
    return 1.0 + (mult - 1.0) * std::min(scale, 1.5);
  };
  into.rate_mult *= std::max(0.0, scaled_mult(from.rate_mult));
  into.attain_mult *= std::max(0.05, scaled_mult(from.attain_mult));
  into.cells_mult *= std::max(0.0, scaled_mult(from.cells_mult));
  // Probability channels: independent-event combination.
  const auto combine_prob = [scale](double into_p, double p) {
    const double q = std::clamp(p * scale, 0.0, 1.0);
    return 1.0 - (1.0 - into_p) * (1.0 - q);
  };
  into.modem_off_prob = combine_prob(into.modem_off_prob, from.modem_off_prob);
  into.crosstalk_prob = combine_prob(into.crosstalk_prob, from.crosstalk_prob);
  into.bridge_tap_prob =
      combine_prob(into.bridge_tap_prob, from.bridge_tap_prob);
}

double modem_off_probability(double customer_off_prob,
                             const FaultEffects& fx) noexcept {
  return 1.0 - (1.0 - std::clamp(customer_off_prob, 0.0, 1.0)) *
                   (1.0 - std::clamp(fx.modem_off_prob, 0.0, 1.0));
}

MetricVector missing_record() noexcept {
  MetricVector m;
  m.fill(std::numeric_limits<float>::quiet_NaN());
  m[metric_index(LineMetric::kState)] = 0.0F;
  return m;
}

namespace {

double poisson_metric(util::Rng& rng, double mean) {
  return static_cast<double>(rng.poisson(std::max(mean, 0.0)));
}

}  // namespace

MetricVector measure_line(const LinePlant& plant,
                          const MeasurementContext& ctx, util::Rng& rng) {
  const ServiceProfile& prof = profile(plant.profile);
  const double loop_kft = plant.loop_length_ft / 1000.0;

  // --- attenuation ---------------------------------------------------
  const double tap_penalty = plant.inherent_bridge_tap ? 3.0 : 0.0;
  const double dn_atten = std::max(
      1.0, loop_kft * plant.gauge_db_per_kft + tap_penalty + ctx.fx.atten_db +
               rng.normal(0.0, 0.8));
  const double up_atten = std::max(0.5, dn_atten * 0.55 + rng.normal(0.0, 0.6));

  // --- transmit power --------------------------------------------------
  const double dn_pwr =
      14.0 + rng.normal(0.0, 0.7) + rng.normal(0.0, 1.1) * std::min(ctx.fx.instability, 3.0);
  const double up_pwr =
      12.0 + rng.normal(0.0, 0.7) + rng.normal(0.0, 1.1) * std::min(ctx.fx.instability, 3.0);

  // --- SNR and attainable rate ----------------------------------------
  const double noise = plant.noise_floor_db + ctx.fx.noise_db +
                       plant.crosstalk_propensity * 3.0;
  const double dn_snr = 55.0 - 0.75 * dn_atten - noise + rng.normal(0.0, 1.2);
  const double up_snr = 52.0 - 0.85 * up_atten - noise + rng.normal(0.0, 1.2);

  const double dn_attain = std::max(
      0.0, 14000.0 * util::sigmoid((dn_snr - 12.0) / 6.0) * ctx.fx.attain_mult);
  const double up_attain = std::max(
      0.0, 1400.0 * util::sigmoid((up_snr - 10.0) / 6.0) * ctx.fx.attain_mult);

  // --- delivered rates -------------------------------------------------
  // Instability jitters the sync rate and margins in both directions: a
  // flapping line retrains at whatever speed the last resync got.
  const double jitter = std::min(ctx.fx.instability, 3.0);
  double dn_rate = std::min(prof.down_kbps, dn_attain * 0.92);
  double up_rate = std::min(prof.up_kbps, up_attain * 0.92);
  dn_rate = std::max(
      0.0, dn_rate * ctx.fx.rate_mult * (1.0 + rng.normal(0.0, 0.16) * jitter) +
               rng.normal(0.0, 8.0));
  up_rate = std::max(
      0.0, up_rate * ctx.fx.rate_mult * (1.0 + rng.normal(0.0, 0.16) * jitter) +
               rng.normal(0.0, 4.0));

  // --- margins: headroom between attainable and delivered --------------
  const auto margin = [&rng](double attain, double rate) {
    if (rate < 16.0) return 0.0;
    const double headroom_db = 10.0 * std::log2(std::max(attain, 16.0) / rate);
    return std::clamp(6.0 + headroom_db * 0.8 + rng.normal(0.0, 0.8), 0.0,
                      31.0);
  };
  const double dn_margin = std::clamp(
      margin(dn_attain, dn_rate) + rng.normal(0.0, 2.2) * jitter, 0.0, 31.0);
  const double up_margin = std::clamp(
      margin(up_attain, up_rate) + rng.normal(0.0, 2.2) * jitter, 0.0, 31.0);

  // --- relative capacity (% of attainable in use) ----------------------
  const auto relcap = [](double rate, double attain) {
    return attain > 1.0 ? std::clamp(100.0 * rate / attain, 0.0, 100.0) : 100.0;
  };

  // --- error counters ---------------------------------------------------
  const double margin_deficit = std::max(0.0, 7.0 - dn_margin);
  const double cv_mean = 2.0 + margin_deficit * 5.0 +
                         plant.crosstalk_propensity * 4.0 + ctx.fx.cv_rate;
  const double cv1 = poisson_metric(rng, cv_mean);
  const double cv2 = poisson_metric(rng, cv_mean * 0.35);
  const double cv3 = poisson_metric(rng, cv_mean * 0.12);
  const double es1 = poisson_metric(rng, 1.0 + margin_deficit * 2.0 + ctx.fx.es_rate);
  const double es2 = poisson_metric(rng, 0.3 + margin_deficit + ctx.fx.es_rate * 0.4);
  const double fec = poisson_metric(rng, 4.0 + margin_deficit * 6.0 + ctx.fx.fec_rate);

  // --- carriers, flags, loop estimate ----------------------------------
  const double hicar = std::clamp(
      230.0 - loop_kft * 7.5 - tap_penalty * 5.0 + ctx.fx.hicar_shift +
          rng.normal(0.0, 4.0),
      30.0, 255.0);
  const bool bt_flag =
      plant.inherent_bridge_tap || rng.bernoulli(ctx.fx.bridge_tap_prob);
  const bool xt_flag = rng.bernoulli(std::clamp(
      plant.crosstalk_propensity * 0.4 + ctx.fx.crosstalk_prob, 0.0, 1.0));
  // The loop estimate is derived from attenuation, so wire faults that
  // raise attenuation inflate it — exactly the artefact behind the
  // operators' ">15 kft means downgrade" rule of thumb.
  const double loop_est =
      std::max(500.0, dn_atten / plant.gauge_db_per_kft * 1000.0 +
                          rng.normal(0.0, 250.0));

  // --- usage counters ----------------------------------------------------
  const double cells_dn = std::max(
      0.0, ctx.usage_mb_week * 0.021 * ctx.fx.cells_mult *
               rng.lognormal(0.0, 0.3));
  const double cells_up = std::max(
      0.0, ctx.usage_mb_week * 0.004 * ctx.fx.cells_mult *
               rng.lognormal(0.0, 0.3));

  MetricVector m;
  m[metric_index(LineMetric::kState)] = 1.0F;
  m[metric_index(LineMetric::kDnBitRate)] = static_cast<float>(dn_rate);
  m[metric_index(LineMetric::kUpBitRate)] = static_cast<float>(up_rate);
  m[metric_index(LineMetric::kDnPower)] = static_cast<float>(dn_pwr);
  m[metric_index(LineMetric::kUpPower)] = static_cast<float>(up_pwr);
  m[metric_index(LineMetric::kDnNoiseMargin)] = static_cast<float>(dn_margin);
  m[metric_index(LineMetric::kUpNoiseMargin)] = static_cast<float>(up_margin);
  m[metric_index(LineMetric::kDnAttenuation)] = static_cast<float>(dn_atten);
  m[metric_index(LineMetric::kUpAttenuation)] = static_cast<float>(up_atten);
  m[metric_index(LineMetric::kDnRelCap)] =
      static_cast<float>(relcap(dn_rate, dn_attain));
  m[metric_index(LineMetric::kUpRelCap)] =
      static_cast<float>(relcap(up_rate, up_attain));
  m[metric_index(LineMetric::kDnCvCnt1)] = static_cast<float>(cv1);
  m[metric_index(LineMetric::kDnCvCnt2)] = static_cast<float>(cv2);
  m[metric_index(LineMetric::kDnCvCnt3)] = static_cast<float>(cv3);
  m[metric_index(LineMetric::kDnEsCnt1)] = static_cast<float>(es1);
  m[metric_index(LineMetric::kDnEsCnt2)] = static_cast<float>(es2);
  m[metric_index(LineMetric::kDnFecCnt1)] = static_cast<float>(fec);
  m[metric_index(LineMetric::kHiCarrier)] = static_cast<float>(hicar);
  m[metric_index(LineMetric::kBridgeTap)] = bt_flag ? 1.0F : 0.0F;
  m[metric_index(LineMetric::kCrosstalk)] = xt_flag ? 1.0F : 0.0F;
  m[metric_index(LineMetric::kLoopLength)] = static_cast<float>(loop_est);
  m[metric_index(LineMetric::kDnMaxAttainBr)] = static_cast<float>(dn_attain);
  m[metric_index(LineMetric::kUpMaxAttainBr)] = static_cast<float>(up_attain);
  m[metric_index(LineMetric::kDnCells)] = static_cast<float>(cells_dn);
  m[metric_index(LineMetric::kUpCells)] = static_cast<float>(cells_up);
  return m;
}

double perceived_severity(const FaultEffects& fx) noexcept {
  // What a customer feels: lost throughput, dead sessions, resyncs.
  const double rate_loss = 1.0 - std::clamp(fx.rate_mult, 0.0, 1.0);
  const double drops = std::clamp(fx.modem_off_prob, 0.0, 1.0);
  const double errors = 1.0 - std::exp(-(fx.cv_rate + 2.0 * fx.es_rate) / 120.0);
  return 1.6 * rate_loss + 1.9 * drops + 0.7 * errors;
}

}  // namespace nevermind::dslsim
