#include "dslsim/simulator.hpp"

#include <algorithm>
#include <cmath>

namespace nevermind::dslsim {

namespace {

/// Hash for the intermittent duty-cycle pattern: deterministic per
/// (episode seed, 4-day block), so the perception loop and the Saturday
/// measurement see the same on/off state.
double block_uniform(std::uint64_t seed, util::Day day) noexcept {
  std::uint64_t x = seed ^ (static_cast<std::uint64_t>(day / 4) * 0x9E3779B97F4A7C15ULL);
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

/// Outage effects applied to every line on the DSLAM during the hard
/// outage window.
FaultEffects outage_effects() noexcept {
  FaultEffects fx;
  fx.es_rate = 150.0;
  fx.fec_rate = 120.0;
  fx.cv_rate = 60.0;
  fx.rate_mult = 0.2;
  fx.modem_off_prob = 0.7;
  fx.cells_mult = 0.15;
  return fx;
}

/// Equipment degradation visible in line tests before the hard outage.
FaultEffects precursor_effects() noexcept {
  FaultEffects fx;
  fx.es_rate = 70.0;
  fx.fec_rate = 90.0;
  fx.cv_rate = 28.0;
  fx.rate_mult = 0.88;
  fx.modem_off_prob = 0.08;
  fx.instability = 0.3;
  return fx;
}

}  // namespace

const char* infra_event_kind_name(InfraEventKind kind) noexcept {
  switch (kind) {
    case InfraEventKind::kDslamOutage:
      return "dslam-outage";
    case InfraEventKind::kCrossboxDegradation:
      return "crossbox-degradation";
    case InfraEventKind::kWeatherBurst:
      return "weather-burst";
    case InfraEventKind::kFirmwareRegression:
      return "firmware-regression";
  }
  return "?";
}

FaultEffects infra_event_effects(InfraEventKind kind) noexcept {
  FaultEffects fx;
  switch (kind) {
    case InfraEventKind::kDslamOutage:
      // Hard loss of the shelf: most modems show unreachable, the rest
      // report a barely-alive line.
      fx.es_rate = 140.0;
      fx.fec_rate = 110.0;
      fx.cv_rate = 55.0;
      fx.rate_mult = 0.25;
      fx.modem_off_prob = 0.65;
      fx.cells_mult = 0.2;
      break;
    case InfraEventKind::kCrossboxDegradation:
      // Water in the cabinet: the whole F1 binder loses margin.
      fx.atten_db = 5.0;
      fx.noise_db = 4.0;
      fx.cv_rate = 26.0;
      fx.es_rate = 32.0;
      fx.fec_rate = 45.0;
      fx.rate_mult = 0.85;
      fx.instability = 0.35;
      break;
    case InfraEventKind::kWeatherBurst:
      fx.noise_db = 5.0;
      fx.es_rate = 38.0;
      fx.cv_rate = 20.0;
      fx.instability = 0.55;
      fx.modem_off_prob = 0.04;
      break;
    case InfraEventKind::kFirmwareRegression:
      fx.fec_rate = 70.0;
      fx.es_rate = 24.0;
      fx.rate_mult = 0.93;
      fx.attain_mult = 0.92;
      fx.instability = 0.45;
      break;
  }
  return fx;
}

double infra_activity(const InfraEvent& event, util::Day day) noexcept {
  if (day < event.start || day >= event.end) return 0.0;
  if (event.kind == InfraEventKind::kCrossboxDegradation) {
    return std::min(1.0, static_cast<double>(day - event.start + 1) / 10.0);
  }
  return 1.0;
}

std::vector<LineId> infra_event_lines(const Topology& topo,
                                      const InfraEvent& event) {
  std::vector<LineId> lines;
  switch (event.kind) {
    case InfraEventKind::kDslamOutage:
    case InfraEventKind::kFirmwareRegression: {
      const auto span = topo.lines_of_dslam(event.scope);
      lines.assign(span.begin(), span.end());
      break;
    }
    case InfraEventKind::kCrossboxDegradation: {
      const auto span = topo.lines_of_crossbox(event.scope);
      lines.assign(span.begin(), span.end());
      break;
    }
    case InfraEventKind::kWeatherBurst: {
      const auto [first, last] = topo.dslam_range_of_atm(event.scope);
      for (DslamId d = first; d < last; ++d) {
        const auto span = topo.lines_of_dslam(d);
        lines.insert(lines.end(), span.begin(), span.end());
      }
      break;
    }
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

double episode_activity(const FaultSignature& sig, const FaultEpisode& episode,
                        util::Day day) noexcept {
  if (day < episode.onset || day >= episode.cleared) return 0.0;
  switch (sig.dynamics) {
    case FaultDynamics::kSudden:
      return 1.0;
    case FaultDynamics::kDegrading: {
      const double ramp_days = std::max(sig.ramp_weeks, 0.25) * 7.0;
      return std::min(1.0, static_cast<double>(day - episode.onset + 1) /
                               ramp_days);
    }
    case FaultDynamics::kIntermittent:
      return block_uniform(episode.activity_seed, day) < sig.duty_cycle ? 1.0
                                                                        : 0.0;
  }
  return 0.0;
}

SimDataset::SimDataset(const SimConfig& config, Topology topology,
                       FaultCatalog catalog)
    : config_(config),
      topology_(std::move(topology)),
      catalog_(std::move(catalog)) {}

std::optional<util::Day> SimDataset::next_edge_ticket_after(
    LineId line, util::Day day) const {
  const auto& list = edge_tickets_.at(line);
  const auto it = std::upper_bound(
      list.begin(), list.end(), day,
      [](util::Day d, const auto& entry) { return d < entry.first; });
  if (it == list.end()) return std::nullopt;
  return it->first;
}

std::optional<util::Day> SimDataset::last_edge_ticket_at_or_before(
    LineId line, util::Day day) const {
  const auto& list = edge_tickets_.at(line);
  const auto it = std::upper_bound(
      list.begin(), list.end(), day,
      [](util::Day d, const auto& entry) { return d < entry.first; });
  if (it == list.begin()) return std::nullopt;
  return std::prev(it)->first;
}

bool SimDataset::dslam_outage_within(DslamId dslam, util::Day from,
                                     util::Day to) const {
  for (std::uint32_t idx : dslam_outages_.at(dslam)) {
    const auto& o = outages_[idx];
    if (o.outage_start <= to && o.outage_end > from) return true;
  }
  return false;
}

bool SimDataset::in_byte_feed(LineId line) const {
  return byte_feed_index_.at(line) >= 0;
}

std::optional<double> SimDataset::bytes_on_day(LineId line,
                                               util::Day day) const {
  const std::int32_t idx = byte_feed_index_.at(line);
  if (idx < 0) return std::nullopt;
  const auto& series = daily_mb_[static_cast<std::size_t>(idx)];
  if (day < 0 || static_cast<std::size_t>(day) >= series.size()) return 0.0;
  return static_cast<double>(series[static_cast<std::size_t>(day)]);
}

bool SimDataset::infra_active(LineId line, util::Day day) const {
  for (std::uint32_t idx : infra_by_dslam_.at(topology_.dslam_of(line))) {
    const auto& ev = infra_events_[idx];
    if (ev.kind == InfraEventKind::kCrossboxDegradation &&
        topology_.crossbox_of(line) != ev.scope) {
      continue;
    }
    if (infra_activity(ev, day) > 0.0) return true;
  }
  return false;
}

bool SimDataset::fault_active(LineId line, util::Day day) const {
  for (std::uint32_t idx : line_episodes_.at(line)) {
    const auto& e = episodes_[idx];
    if (day >= e.onset && day < e.cleared) return true;
  }
  return false;
}

SimDataset Simulator::build_tables(const exec::ExecContext& exec) const {
  util::Rng root(config_.seed);
  Topology topology(config_.topology, root.next());
  FaultCatalog catalog(config_.seed, config_.minor_variants_per_location);
  SimDataset data(config_, std::move(topology), std::move(catalog));
  const Topology& topo = data.topology_;
  const FaultCatalog& faults = data.catalog_;

  const util::Day last_test_day = util::saturday_of_week(config_.n_weeks - 1);
  // Tickets may arrive up to the prediction horizon past the last test.
  const util::Day horizon = last_test_day + 35;

  // ---- plants & customers --------------------------------------------
  util::Rng plant_rng = root.fork();
  util::Rng customer_rng = root.fork();
  data.plants_.resize(topo.n_lines());
  data.customers_.resize(topo.n_lines());
  for (LineId u = 0; u < topo.n_lines(); ++u) {
    data.plants_[u] = sample_plant(plant_rng);
    data.plants_[u].profile = sample_profile(data.plants_[u], plant_rng);
    data.customers_[u] = sample_customer(customer_rng, config_.customer);
  }

  // ---- DSLAM outages ----------------------------------------------------
  util::Rng outage_rng = root.fork();
  data.dslam_outages_.resize(topo.n_dslams());
  const double outage_rate_day = config_.outage_rate_per_dslam_year / 365.0;
  for (DslamId d = 0; d < topo.n_dslams(); ++d) {
    double day = outage_rng.exponential(std::max(outage_rate_day, 1e-9));
    while (day < static_cast<double>(horizon)) {
      OutageEvent o;
      o.dslam = d;
      o.outage_start = static_cast<util::Day>(day);
      o.precursor_start =
          o.outage_start - static_cast<util::Day>(outage_rng.uniform(10.0, 28.0));
      o.outage_end = o.outage_start + 1 +
                     static_cast<util::Day>(outage_rng.exponential(0.5));
      data.dslam_outages_[d].push_back(
          static_cast<std::uint32_t>(data.outages_.size()));
      data.outages_.push_back(o);
      day += outage_rng.exponential(std::max(outage_rate_day, 1e-9));
    }
  }

  auto outage_suppressed = [&](DslamId dslam, util::Day day,
                               util::Rng& rng) -> bool {
    for (std::uint32_t idx : data.dslam_outages_[dslam]) {
      const auto& o = data.outages_[idx];
      // IVR stays up a couple of days past restoration.
      if (day >= o.outage_start && day < o.outage_end + 2) {
        return rng.bernoulli(config_.outage_suppression);
      }
    }
    return false;
  };

  // ---- fault episodes & tickets ---------------------------------------
  util::Rng fault_rng = root.fork();
  data.line_episodes_.resize(topo.n_lines());
  data.edge_tickets_.resize(topo.n_lines());

  // Reserve from the arrival rates so the per-line loop never
  // re-allocates the shared tables mid-sweep at 1M lines.
  const double expected_episodes =
      static_cast<double>(topo.n_lines()) * config_.weekly_fault_rate *
          (static_cast<double>(horizon) / 7.0) +
      static_cast<double>(config_.scripted_faults.size());
  const double expected_billing = static_cast<double>(topo.n_lines()) *
                                  config_.billing_tickets_per_line_year *
                                  static_cast<double>(horizon) / 365.0;
  data.episodes_.reserve(
      static_cast<std::size_t>(expected_episodes * 1.1) + 16);

  struct PendingTicket {
    LineId line;
    util::Day reported;
    util::Day resolved;
    TicketCategory category;
    std::int32_t episode;  // index into episodes_, or -1
    DispositionId disposition;
    MajorLocation location;
    bool has_note;
  };
  std::vector<PendingTicket> pending;
  pending.reserve(
      static_cast<std::size_t>((expected_episodes + expected_billing) * 1.1) +
      16);

  // Life of one fault episode: notice -> call -> dispatch -> fix (or
  // silent self-clearing). Shared between random arrivals and any
  // scripted faults from the config.
  const auto run_episode = [&](LineId u, util::Day onset, DispositionId disp,
                               float severity, util::Rng& rng) {
    const CustomerBehavior& cust = data.customers_[u];
    const DslamId dslam = topo.dslam_of(u);
    const FaultSignature& sig = faults.signature(disp);

    FaultEpisode episode;
    episode.line = u;
    episode.disposition = disp;
    episode.severity = severity;
    episode.onset = onset;
    episode.activity_seed = rng.next();
    // Unreported faults eventually clear on their own (re-provisioning,
    // weather drying out a splice, customer swapping gear silently).
    episode.cleared =
        onset + 1 +
        static_cast<util::Day>(
            rng.exponential(1.0 / (config_.unreported_clear_mean_weeks * 7.0)));
    episode.cleared = std::min<util::Day>(episode.cleared, horizon + 60);

    const std::size_t episode_index = data.episodes_.size();

    // Perceived symptom strength at full activity.
    FaultEffects at_full;
    accumulate_effects(at_full, sig.effects, episode.severity);
    const double perceived_full =
        sig.perceived_weight * perceived_severity(at_full);

    double current_perceived = perceived_full;
    util::Day day = episode.onset;
    while (day < episode.cleared && day < horizon) {
      const double act = episode_activity(sig, episode, day);
      if (act > 0.0) {
        const double usage = usage_on_day(cust, day);
        const double usage_norm = std::min(usage / 150.0, 3.0);
        const double p_notice =
            1.0 - std::exp(-config_.notice_scale * current_perceived *
                           usage_norm * act * cust.report_propensity);
        if (rng.bernoulli(p_notice)) {
          // Noticed: find the day the call actually lands.
          util::Day call_day = day;
          while (call_day < horizon &&
                 !rng.bernoulli(config_.call_rate *
                                call_day_weight(call_day))) {
            ++call_day;
          }
          if (call_day >= horizon) break;
          if (outage_suppressed(dslam, call_day, rng)) {
            // IVR absorbed the call (§5.2); the customer may retry
            // later if the problem persists.
            day = call_day + 7;
            continue;
          }
          // A real ticket.
          PendingTicket t;
          t.line = u;
          t.reported = call_day;
          t.resolved =
              call_day + 1 +
              static_cast<util::Day>(std::min<std::uint64_t>(
                  rng.geometric(0.5), 4));
          t.category = TicketCategory::kCustomerEdge;
          t.episode = static_cast<std::int32_t>(episode_index);

          // Disposition note: blame the active fault closest to the
          // end host, then apply technician label noise.
          DispositionId blamed = disp;
          int best_prox = end_host_proximity(sig.location);
          for (std::uint32_t other : data.line_episodes_[u]) {
            const auto& oe = data.episodes_[other];
            if (t.resolved >= oe.onset && t.resolved < oe.cleared) {
              const auto& os = faults.signature(oe.disposition);
              const int prox = end_host_proximity(os.location);
              if (prox < best_prox) {
                best_prox = prox;
                blamed = oe.disposition;
              }
            }
          }
          if (rng.bernoulli(config_.label_noise_any)) {
            blamed = faults.sample(rng);
          } else if (rng.bernoulli(config_.label_noise_same_location)) {
            blamed = faults.sample_within_location(
                rng, faults.signature(blamed).location);
          }
          t.disposition = blamed;
          t.location = faults.signature(blamed).location;
          t.has_note = true;
          pending.push_back(t);

          if (rng.bernoulli(config_.misresolve_prob)) {
            // Dispatch replaced the wrong part: symptoms linger,
            // weaker, and a repeat ticket may follow.
            current_perceived *= 0.7;
            day = t.resolved + 2;
            continue;
          }
          episode.cleared = t.resolved;
          break;
        }
      }
      ++day;
    }

    data.line_episodes_[u].push_back(static_cast<std::uint32_t>(episode_index));
    data.episodes_.push_back(episode);
  };

  // Scripted faults grouped by line (controlled experiments, tests).
  // The per-line index is only built when scripts exist — the common
  // unscripted run pays nothing for it.
  std::vector<std::vector<std::uint32_t>> scripted_by_line;
  if (!config_.scripted_faults.empty()) {
    scripted_by_line.resize(topo.n_lines());
    for (std::uint32_t i = 0; i < config_.scripted_faults.size(); ++i) {
      const auto& sf = config_.scripted_faults[i];
      if (sf.line < topo.n_lines() && sf.disposition < faults.size()) {
        scripted_by_line[sf.line].push_back(i);
      }
    }
  }

  for (LineId u = 0; u < topo.n_lines(); ++u) {
    util::Rng rng = fault_rng.fork();

    if (!scripted_by_line.empty()) {
      for (std::uint32_t idx : scripted_by_line[u]) {
        const auto& sf = config_.scripted_faults[idx];
        run_episode(u, sf.onset, sf.disposition,
                    std::clamp(sf.severity, 0.15F, 2.5F), rng);
      }
    }

    double onset_f = rng.exponential(config_.weekly_fault_rate) * 7.0;
    while (onset_f < static_cast<double>(horizon)) {
      const auto onset = static_cast<util::Day>(onset_f);
      const DispositionId disp = faults.sample(rng);
      const FaultSignature& sig = faults.signature(disp);
      const auto severity = static_cast<float>(std::clamp(
          rng.lognormal(sig.severity_mu, sig.severity_sigma), 0.15, 2.5));
      run_episode(u, onset, disp, severity, rng);
      onset_f += rng.exponential(config_.weekly_fault_rate) * 7.0;
    }

    // Billing / non-technical tickets: present in the feed, filtered by
    // the coarse category label.
    const auto n_billing = rng.poisson(config_.billing_tickets_per_line_year *
                                       static_cast<double>(horizon) / 365.0);
    for (std::uint64_t i = 0; i < n_billing; ++i) {
      PendingTicket t;
      t.line = u;
      t.reported = static_cast<util::Day>(rng.uniform_index(
          static_cast<std::uint64_t>(horizon)));
      t.resolved = t.reported;
      t.category = TicketCategory::kBilling;
      t.episode = -1;
      t.disposition = 0;
      t.location = MajorLocation::kHomeNetwork;
      t.has_note = false;
      pending.push_back(t);
    }
  }
  // Per-line scratch is done; release it before the heavier phases.
  std::vector<std::vector<std::uint32_t>>().swap(scripted_by_line);

  // Fork the remaining root streams in one block, in the same order as
  // ever (plant, customer, outage, fault, measure, bytes) plus the new
  // infra stream LAST — existing streams, and therefore every dataset
  // with the infra layer off, stay bit-identical.
  util::Rng measure_rng = root.fork();
  util::Rng bytes_rng = root.fork();
  util::Rng infra_rng = root.fork();

  // ---- correlated infrastructure events --------------------------------
  // Scripted events first (fixed order), then random arrivals swept
  // serially per scope unit; both fully deterministic in the seed. The
  // per-line consequences (metric effects in the measurement sweep,
  // ticket draws below) are keyed per (event, line), so they are
  // independent of the thread count.
  data.infra_by_dslam_.resize(topo.n_dslams());
  const auto add_infra = [&](InfraEventKind kind, std::uint32_t scope,
                             util::Day start, util::Day end, float severity) {
    InfraEvent ev;
    ev.kind = kind;
    ev.scope = scope;
    ev.start = std::max<util::Day>(start, 0);
    ev.end = std::min<util::Day>(end, horizon);
    ev.severity = std::clamp(severity, 0.2F, 2.5F);
    ev.location = kind == InfraEventKind::kCrossboxDegradation
                      ? MajorLocation::kF1
                  : kind == InfraEventKind::kWeatherBurst
                      ? MajorLocation::kF1
                      : MajorLocation::kDslam;
    if (ev.end <= ev.start) return;
    data.infra_events_.push_back(ev);
  };

  for (const auto& se : config_.scripted_infra) {
    const std::uint32_t scope_limit =
        se.kind == InfraEventKind::kCrossboxDegradation ? topo.n_crossboxes()
        : se.kind == InfraEventKind::kWeatherBurst      ? topo.n_atms()
                                                        : topo.n_dslams();
    if (se.scope < scope_limit) {
      add_infra(se.kind, se.scope, se.start, se.end, se.severity);
    }
  }

  const auto infra_arrivals = [&](double per_unit_year, std::uint32_t n_units,
                                  auto&& emit) {
    if (per_unit_year <= 0.0) return;
    const double rate_day = per_unit_year / 365.0;
    for (std::uint32_t s = 0; s < n_units; ++s) {
      double day = infra_rng.exponential(rate_day);
      while (day < static_cast<double>(horizon)) {
        emit(s, static_cast<util::Day>(day));
        day += infra_rng.exponential(rate_day);
      }
    }
  };
  infra_arrivals(config_.infra.dslam_outages_per_dslam_year, topo.n_dslams(),
                 [&](std::uint32_t d, util::Day day) {
                   const auto dur = static_cast<util::Day>(
                       1 + infra_rng.exponential(1.0 / 1.5));
                   const auto sev = static_cast<float>(
                       infra_rng.lognormal(0.0, 0.3));
                   add_infra(InfraEventKind::kDslamOutage, d, day, day + dur,
                             sev);
                 });
  infra_arrivals(config_.infra.crossbox_events_per_crossbox_year,
                 topo.n_crossboxes(), [&](std::uint32_t c, util::Day day) {
                   const auto dur = static_cast<util::Day>(
                       7 + infra_rng.exponential(1.0 / 14.0));
                   const auto sev = static_cast<float>(
                       infra_rng.lognormal(0.0, 0.35));
                   add_infra(InfraEventKind::kCrossboxDegradation, c, day,
                             day + dur, sev);
                 });
  infra_arrivals(config_.infra.weather_bursts_per_region_year, topo.n_atms(),
                 [&](std::uint32_t a, util::Day day) {
                   const auto dur = static_cast<util::Day>(
                       2 + infra_rng.exponential(1.0 / 2.0));
                   const auto sev = static_cast<float>(
                       infra_rng.lognormal(0.0, 0.35));
                   add_infra(InfraEventKind::kWeatherBurst, a, day, day + dur,
                             sev);
                 });
  if (config_.infra.firmware_rollout_start >= 0) {
    const std::uint32_t per_wave =
        std::max<std::uint32_t>(config_.infra.firmware_dslams_per_wave, 1);
    for (DslamId d = 0; d < topo.n_dslams(); ++d) {
      const auto wave = static_cast<util::Day>(d / per_wave);
      const util::Day upgrade_day =
          config_.infra.firmware_rollout_start +
          wave * std::max(config_.infra.firmware_wave_days, 1);
      const bool regresses =
          infra_rng.bernoulli(config_.infra.firmware_regression_prob);
      if (!regresses || upgrade_day >= horizon) continue;
      const auto dur = static_cast<util::Day>(
          7 + infra_rng.exponential(1.0 / 10.0));
      add_infra(InfraEventKind::kFirmwareRegression, d, upgrade_day,
                upgrade_day + dur,
                static_cast<float>(infra_rng.lognormal(0.0, 0.25)));
    }
  }

  std::sort(data.infra_events_.begin(), data.infra_events_.end(),
            [](const InfraEvent& a, const InfraEvent& b) {
              if (a.start != b.start) return a.start < b.start;
              if (a.kind != b.kind) return a.kind < b.kind;
              if (a.scope != b.scope) return a.scope < b.scope;
              return a.end < b.end;
            });
  for (std::uint32_t ei = 0; ei < data.infra_events_.size(); ++ei) {
    const auto& ev = data.infra_events_[ei];
    switch (ev.kind) {
      case InfraEventKind::kDslamOutage:
      case InfraEventKind::kFirmwareRegression:
        data.infra_by_dslam_[ev.scope].push_back(ei);
        break;
      case InfraEventKind::kCrossboxDegradation:
        data.infra_by_dslam_[topo.dslam_of_crossbox(ev.scope)].push_back(ei);
        break;
      case InfraEventKind::kWeatherBurst: {
        const auto [first, last] = topo.dslam_range_of_atm(ev.scope);
        for (DslamId d = first; d < last; ++d) {
          data.infra_by_dslam_[d].push_back(ei);
        }
        break;
      }
    }
  }

  // Tickets raised by infrastructure events: every affected customer
  // may notice and call, keyed per (event, line) so the stream is
  // order-free. DSLAM outages are mostly absorbed by the IVR (§5.2);
  // the note blames the event's true location, with the usual
  // technician label noise.
  const std::uint64_t infra_ticket_seed = infra_rng.next();
  for (std::uint32_t ei = 0; ei < data.infra_events_.size(); ++ei) {
    const auto& ev = data.infra_events_[ei];
    const util::Day dur = ev.end - ev.start;
    if (dur <= 0) continue;
    FaultEffects at_full;
    accumulate_effects(at_full, infra_event_effects(ev.kind), ev.severity);
    const double perceived = perceived_severity(at_full);
    for (LineId u : infra_event_lines(topo, ev)) {
      util::Rng rng = util::Rng::stream(
          infra_ticket_seed,
          (static_cast<std::uint64_t>(ei) << 32) | u);
      const CustomerBehavior& cust = data.customers_[u];
      double p_call = 1.0 - std::exp(-config_.notice_scale * perceived *
                                     cust.report_propensity *
                                     std::min<double>(dur, 14.0) * 0.35);
      if (ev.kind == InfraEventKind::kDslamOutage) {
        p_call *= 1.0 - config_.outage_suppression;
      }
      if (!rng.bernoulli(p_call)) continue;
      PendingTicket t;
      t.line = u;
      t.reported = ev.start + static_cast<util::Day>(rng.uniform_index(
                                  static_cast<std::uint64_t>(dur)));
      t.resolved = t.reported + 1 +
                   static_cast<util::Day>(
                       std::min<std::uint64_t>(rng.geometric(0.5), 4));
      t.category = TicketCategory::kCustomerEdge;
      t.episode = -1;
      DispositionId blamed =
          faults.sample_within_location(rng, ev.location);
      if (rng.bernoulli(config_.label_noise_any)) {
        blamed = faults.sample(rng);
      }
      t.disposition = blamed;
      t.location = faults.signature(blamed).location;
      t.has_note = true;
      pending.push_back(t);
    }
  }

  // ---- materialize tickets in chronological order -----------------------
  std::sort(pending.begin(), pending.end(),
            [](const PendingTicket& a, const PendingTicket& b) {
              if (a.reported != b.reported) return a.reported < b.reported;
              return a.line < b.line;
            });
  data.tickets_.reserve(pending.size());
  data.notes_.reserve(static_cast<std::size_t>(
      std::count_if(pending.begin(), pending.end(),
                    [](const PendingTicket& p) { return p.has_note; })));
  for (const auto& p : pending) {
    Ticket t;
    t.id = static_cast<TicketId>(data.tickets_.size());
    t.line = p.line;
    t.reported = p.reported;
    t.category = p.category;
    t.resolved = p.resolved;
    if (p.has_note) {
      DispositionNote note;
      note.ticket_id = t.id;
      note.line = p.line;
      note.dispatch_day = p.resolved;
      note.disposition = p.disposition;
      note.location = p.location;
      t.note = static_cast<std::int32_t>(data.notes_.size());
      data.notes_.push_back(note);
    }
    if (p.category == TicketCategory::kCustomerEdge) {
      data.edge_tickets_[p.line].emplace_back(p.reported, t.id);
      if (p.episode >= 0) {
        auto& ep = data.episodes_[static_cast<std::size_t>(p.episode)];
        if (ep.first_ticket == kNoTicket) {
          ep.first_ticket = static_cast<std::int32_t>(t.id);
        }
      }
    }
    data.tickets_.push_back(t);
  }
  // The pending scratch is the last per-ticket intermediate; release it
  // before the byte-feed series allocate.
  std::vector<PendingTicket>().swap(pending);

  // Root of the per-line measurement streams. Drawn here — in the same
  // stream position as ever — but the sweep itself runs later, in run()
  // (line-major, materialized) or stream_weeks (week-major, chunked).
  data.measure_seed_ = measure_rng.next();

  // ---- daily byte feed (two BRAS servers) -------------------------------
  // Feed membership and slot order are fixed serially (they follow the
  // topology alone); the per-line series then fill in parallel from
  // per-line streams.
  const std::uint64_t bytes_seed = bytes_rng.next();
  data.byte_feed_index_.assign(topo.n_lines(), -1);
  std::vector<LineId> feed_lines;
  for (LineId u = 0; u < topo.n_lines(); ++u) {
    if (topo.bras_of_line(u) >= config_.byte_feed_bras) continue;
    data.byte_feed_index_[u] = static_cast<std::int32_t>(feed_lines.size());
    feed_lines.push_back(u);
  }
  data.daily_mb_.assign(feed_lines.size(), {});
  exec.parallel_for(
      0, feed_lines.size(), 0, [&](std::size_t fb, std::size_t fe) {
        for (std::size_t f = fb; f < fe; ++f) {
          const LineId u = feed_lines[f];
          util::Rng rng = util::Rng::stream(bytes_seed, u);
          std::vector<float> series(static_cast<std::size_t>(horizon), 0.0F);
          const CustomerBehavior& cust = data.customers_[u];
          for (util::Day d = 0; d < horizon; ++d) {
            const double base = usage_on_day(cust, d);
            series[static_cast<std::size_t>(d)] =
                base <= 0.0
                    ? 0.0F
                    : static_cast<float>(base * rng.lognormal(0.0, 0.5));
          }
          data.daily_mb_[f] = std::move(series);
        }
      });

  return data;
}

MetricVector Simulator::measure_cell(const SimDataset& data, LineId u,
                                     util::Day day, util::Rng& rng) {
  const SimConfig& config = data.config_;
  const Topology& topo = data.topology_;
  const FaultCatalog& faults = data.catalog_;
  const CustomerBehavior& cust = data.customers_[u];
  const bool away = is_away(cust, day);

  MeasurementContext ctx;
  for (std::uint32_t idx : data.line_episodes_[u]) {
    const auto& e = data.episodes_[idx];
    const double act =
        episode_activity(faults.signature(e.disposition), e, day);
    if (act > 0.0) {
      accumulate_effects(ctx.fx, faults.signature(e.disposition).effects,
                         e.severity * act);
    }
  }
  // DSLAM outage / precursor degradation.
  for (std::uint32_t idx : data.dslam_outages_[topo.dslam_of(u)]) {
    const auto& o = data.outages_[idx];
    if (day >= o.outage_start && day < o.outage_end) {
      accumulate_effects(ctx.fx, outage_effects(), 1.0);
    } else if (day >= o.precursor_start && day < o.outage_start) {
      const double ramp =
          static_cast<double>(day - o.precursor_start + 1) /
          static_cast<double>(o.outage_start - o.precursor_start + 1);
      accumulate_effects(ctx.fx, precursor_effects(), ramp);
    }
  }
  // Correlated infrastructure events covering this line's subtree.
  for (std::uint32_t idx : data.infra_by_dslam_[topo.dslam_of(u)]) {
    const auto& ev = data.infra_events_[idx];
    if (ev.kind == InfraEventKind::kCrossboxDegradation &&
        topo.crossbox_of(u) != ev.scope) {
      continue;
    }
    const double act = infra_activity(ev, day);
    if (act > 0.0) {
      accumulate_effects(ctx.fx, infra_event_effects(ev.kind),
                         ev.severity * act);
    }
  }
  // Environment drift: deterministic, RNG-free shifts shared by
  // the whole population (concept drift for bench_drift).
  if (config.drift.plant_aging_db_per_year > 0.0 &&
      day >= config.drift.onset_day) {
    ctx.fx.atten_db += config.drift.plant_aging_db_per_year *
                       static_cast<double>(day - config.drift.onset_day) /
                       365.0;
  }
  if (config.drift.seasonal_noise_amp_db > 0.0) {
    const double phase =
        2.0 * 3.14159265358979323846 *
        static_cast<double>(day - config.drift.seasonal_peak_day) / 365.25;
    ctx.fx.noise_db +=
        config.drift.seasonal_noise_amp_db * 0.5 * (1.0 + std::cos(phase));
  }

  // Away customers mostly leave the modem powered (the paper's
  // not-on-site lines still produce Saturday test records); a
  // modest share powers down before leaving.
  const double customer_off =
      std::min(1.0, cust.modem_off_base + (away ? 0.2 : 0.0));
  if (rng.bernoulli(modem_off_probability(customer_off, ctx.fx))) {
    return missing_record();
  }
  ctx.usage_mb_week = usage_on_day(cust, day) * 7.0 * rng.lognormal(0.0, 0.25);
  return measure_line(data.plants_[u], ctx, rng);
}

SimDataset Simulator::run(const exec::ExecContext& exec) const {
  SimDataset data = build_tables(exec);

  // ---- weekly Saturday measurements -------------------------------------
  // Line-major: every line owns an independent RNG stream keyed by
  // (measure_seed_, line) and sweeps its 52 Saturdays from it, so the
  // measurement tables are bit-identical no matter how many threads
  // sweep the lines (and the fault/ticket process above never sees
  // these draws). stream_weeks advances the same per-line streams in
  // the same order week-major, so the two sweeps agree byte for byte.
  const std::uint32_t n_lines = data.topology_.n_lines();
  data.weeks_.resize(static_cast<std::size_t>(config_.n_weeks));
  for (auto& week : data.weeks_) week.resize(n_lines);
  exec.parallel_for(0, n_lines, 0, [&](std::size_t ub, std::size_t ue) {
    for (LineId u = static_cast<LineId>(ub); u < ue; ++u) {
      util::Rng rng = util::Rng::stream(data.measure_seed_, u);
      for (int w = 0; w < config_.n_weeks; ++w) {
        data.weeks_[static_cast<std::size_t>(w)][u] =
            measure_cell(data, u, util::saturday_of_week(w), rng);
      }
    }
  });
  return data;
}

void Simulator::stream_weeks(const SimDataset& tables,
                             const exec::ExecContext& exec,
                             const WeekSink& sink, int through_week) const {
  const int last = through_week < 0
                       ? config_.n_weeks - 1
                       : std::min(through_week, config_.n_weeks - 1);
  const std::uint32_t n_lines = tables.topology_.n_lines();
  // Persistent per-line streams: util::Rng caches the second Box–Muller
  // normal across draws, so the week-major sweep must carry each line's
  // generator from week to week to match the line-major sweep exactly.
  std::vector<util::Rng> rngs;
  rngs.reserve(n_lines);
  for (LineId u = 0; u < n_lines; ++u) {
    rngs.push_back(util::Rng::stream(tables.measure_seed_, u));
  }
  WeeklyMeasurements buffer(n_lines);
  for (int w = 0; w <= last; ++w) {
    const util::Day day = util::saturday_of_week(w);
    // parallel_for returns only after every chunk has completed — the
    // barrier between week w's sweep and the sink (and week w+1).
    exec.parallel_for(0, n_lines, 0, [&](std::size_t ub, std::size_t ue) {
      for (LineId u = static_cast<LineId>(ub); u < ue; ++u) {
        buffer[u] = measure_cell(tables, u, day, rngs[u]);
      }
    });
    sink(WeekChunk{w, day, {buffer.data(), buffer.size()}});
  }
}

SimDataset Simulator::run_stream(const exec::ExecContext& exec,
                                 const WeekSink& sink) const {
  SimDataset tables = build_tables(exec);
  stream_weeks(tables, exec, sink);
  return tables;
}

}  // namespace nevermind::dslsim
