// Descriptive statistics over a simulated (or imported) dataset — the
// exploratory views the paper derives from its feeds in §2.2 and §3.3:
// ticket arrivals by weekday (the Monday peak that motivates running
// line tests on Saturdays), weekly ticket volume, disposition shares by
// major location, and missing-record rates.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "dslsim/simulator.hpp"

namespace nevermind::dslsim {

struct TicketSummary {
  /// Customer-edge ticket counts by weekday (index = util::Weekday).
  std::array<std::size_t, 7> by_weekday{};
  /// Weekly customer-edge ticket counts, indexed by test week of the
  /// reporting day (week -1 days are folded into week 0).
  std::vector<std::size_t> by_week;
  std::size_t edge_total = 0;
  std::size_t billing_total = 0;
  /// Tickets whose dispatch produced a disposition note.
  std::size_t dispatched = 0;
};

[[nodiscard]] TicketSummary summarize_tickets(const SimDataset& data);

struct LocationShare {
  MajorLocation location = MajorLocation::kHomeNetwork;
  std::size_t dispatches = 0;
  double share = 0.0;
  /// Share of the location's dispatches held by its most common
  /// disposition — the paper's "no dominant disposition" observation.
  double top_disposition_share = 0.0;
};

[[nodiscard]] std::array<LocationShare, kNumMajorLocations>
summarize_locations(const SimDataset& data);

struct MeasurementSummary {
  std::size_t records = 0;
  std::size_t missing = 0;  // modem off during the Saturday test
  double missing_rate = 0.0;
};

[[nodiscard]] MeasurementSummary summarize_measurements(const SimDataset& data);

}  // namespace nevermind::dslsim
