#include "dslsim/import.hpp"

#include <cstdlib>
#include <istream>
#include <string>

#include "ml/dataset.hpp"
#include "util/csv.hpp"

namespace nevermind::dslsim {

namespace {

std::optional<long> parse_long(const std::string& s) {
  if (s.empty()) return std::nullopt;
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return std::nullopt;
  return v;
}

float parse_metric(const std::string& s) {
  if (s.empty()) return ml::kMissing;
  char* end = nullptr;
  const float v = std::strtof(s.c_str(), &end);
  if (end == nullptr || *end != '\0') return ml::kMissing;
  return v;
}

}  // namespace

std::optional<util::Day> parse_date(const std::string& text) {
  // MM/DD/YY with YY = 09 + k mapping to year offset k.
  if (text.size() != 8 || text[2] != '/' || text[5] != '/') {
    return std::nullopt;
  }
  const auto month = parse_long(text.substr(0, 2));
  const auto dom = parse_long(text.substr(3, 2));
  const auto year = parse_long(text.substr(6, 2));
  if (!month || !dom || !year) return std::nullopt;
  const long year_offset = *year - 9;
  return util::day_from_date(static_cast<int>(*month),
                             static_cast<int>(*dom)) +
         static_cast<util::Day>(year_offset * 365);
}

std::optional<std::vector<ImportedMeasurement>> import_measurements_csv(
    std::istream& is) {
  const auto rows = util::read_csv(is);
  if (rows.empty()) return std::nullopt;
  const auto& header = rows.front();
  if (header.size() != 3 + kNumLineMetrics || header[0] != "week" ||
      header[1] != "line") {
    return std::nullopt;
  }
  std::vector<ImportedMeasurement> out;
  out.reserve(rows.size() - 1);
  for (std::size_t r = 1; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (row.size() != header.size()) continue;
    const auto week = parse_long(row[0]);
    const auto line = parse_long(row[1]);
    if (!week || !line || *week < 0 || *line < 0) continue;
    ImportedMeasurement m;
    m.week = static_cast<int>(*week);
    m.line = static_cast<LineId>(*line);
    for (std::size_t i = 0; i < kNumLineMetrics; ++i) {
      m.metrics[i] = parse_metric(row[3 + i]);
    }
    // Normalize the missing-record convention: absent state -> 0.
    if (ml::is_missing(m.metrics[metric_index(LineMetric::kState)])) {
      m.metrics[metric_index(LineMetric::kState)] = 0.0F;
    }
    out.push_back(m);
  }
  return out;
}

std::optional<std::vector<ImportedTicket>> import_tickets_csv(
    std::istream& is) {
  const auto rows = util::read_csv(is);
  if (rows.empty()) return std::nullopt;
  const auto& header = rows.front();
  if (header.size() != 6 || header[0] != "id" || header[3] != "category") {
    return std::nullopt;
  }
  std::vector<ImportedTicket> out;
  out.reserve(rows.size() - 1);
  for (std::size_t r = 1; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (row.size() != 6) continue;
    const auto id = parse_long(row[0]);
    const auto line = parse_long(row[1]);
    const auto reported = parse_date(row[2]);
    const auto resolved = parse_date(row[4]);
    if (!id || !line || !reported || !resolved) continue;
    ImportedTicket t;
    t.id = static_cast<TicketId>(*id);
    t.line = static_cast<LineId>(*line);
    t.reported = *reported;
    t.resolved = *resolved;
    if (row[3] == "billing") {
      t.category = TicketCategory::kBilling;
    } else if (row[3] == "other") {
      t.category = TicketCategory::kOther;
    } else {
      t.category = TicketCategory::kCustomerEdge;
    }
    t.disposition = row[5];
    out.push_back(t);
  }
  return out;
}

}  // namespace nevermind::dslsim
