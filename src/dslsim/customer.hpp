// Customer behaviour model: who uses their line how much, when they are
// away from home, and how readily they notice and report problems.
//
// This is what turns physical faults into (or not into) trouble
// tickets, and it encodes the paper's two classes of silent problems
// (§5.2): customers who are not on site when the fault is live, and
// light users who never feel an intermittent degradation.
#pragma once

#include <utility>
#include <vector>

#include "util/calendar.hpp"
#include "util/rng.hpp"

namespace nevermind::dslsim {

struct CustomerBehavior {
  /// Mean daily traffic when home (MB); log-normal across the base.
  float usage_intensity_mb = 150.0F;
  /// Multiplier on the probability of noticing a live symptom.
  float report_propensity = 1.0F;
  /// Chance the modem is powered off during a Saturday test even with
  /// no fault (paper: the modem feature "reflects the usage pattern").
  float modem_off_base = 0.05F;
  /// Weekend usage multiplier.
  float weekend_factor = 1.3F;
  /// Probability the customer goes online at all on a given day; light
  /// users are offline most days (their lines produce the zero-traffic
  /// stretches behind the §5.2 not-on-site analysis even outside
  /// vacations).
  float online_prob = 1.0F;
  /// Seed for the deterministic day-level online/offline pattern.
  std::uint64_t activity_seed = 0;
  /// Away-from-home intervals [start, end).
  std::vector<std::pair<util::Day, util::Day>> vacations;
};

struct CustomerModelConfig {
  double usage_mu = 4.6;            // ln MB/day; e^4.6 ~ 100 MB
  double usage_sigma = 1.1;
  double mean_vacations_per_year = 1.2;
  double vacation_min_days = 3;
  double vacation_max_days = 21;
  double modem_off_base_max = 0.12;
  /// Fraction of customers with one long seasonal absence (second
  /// homes, snowbirds) — the population behind the paper's §5.2
  /// "customer not on site" incorrect predictions. Their modems stay
  /// powered, so the line tests keep running while nobody is home to
  /// notice (or report) a fault.
  double seasonal_fraction = 0.10;
  double seasonal_min_days = 45;
  double seasonal_max_days = 150;
  /// Scale (MB/day) at which a customer is online nearly every day;
  /// online_prob = 1 - exp(-intensity / this).
  double daily_online_scale = 20.0;
};

[[nodiscard]] CustomerBehavior sample_customer(util::Rng& rng,
                                               const CustomerModelConfig& cfg);

[[nodiscard]] bool is_away(const CustomerBehavior& c, util::Day day) noexcept;

/// Expected traffic for the day: zero when away, weekday/weekend shaped
/// otherwise. Callers add their own multiplicative noise.
[[nodiscard]] double usage_on_day(const CustomerBehavior& c,
                                  util::Day day) noexcept;

/// Relative propensity to place a support call on a given weekday.
/// Produces the paper's observed arrival pattern: tickets peak on
/// Monday and bottom out over the weekend.
[[nodiscard]] double call_day_weight(util::Day day) noexcept;

}  // namespace nevermind::dslsim
