#include "dslsim/customer.hpp"

#include <algorithm>
#include <cmath>

namespace nevermind::dslsim {

CustomerBehavior sample_customer(util::Rng& rng,
                                 const CustomerModelConfig& cfg) {
  CustomerBehavior c;
  c.usage_intensity_mb = static_cast<float>(
      std::clamp(rng.lognormal(cfg.usage_mu, cfg.usage_sigma), 1.0, 20000.0));
  c.report_propensity = static_cast<float>(std::clamp(
      rng.lognormal(0.0, 0.45), 0.2, 4.0));
  c.modem_off_base = static_cast<float>(
      rng.uniform(0.0, cfg.modem_off_base_max));
  c.weekend_factor = static_cast<float>(rng.uniform(1.0, 1.7));
  c.online_prob = static_cast<float>(
      1.0 - std::exp(-c.usage_intensity_mb / cfg.daily_online_scale));
  c.activity_seed = rng.next();

  const auto n_vacations = rng.poisson(cfg.mean_vacations_per_year);
  for (std::uint64_t i = 0; i < n_vacations; ++i) {
    const auto start = static_cast<util::Day>(rng.uniform_index(400));
    const auto len = static_cast<util::Day>(rng.uniform(
        cfg.vacation_min_days, cfg.vacation_max_days));
    c.vacations.emplace_back(start, start + len);
  }
  if (rng.bernoulli(cfg.seasonal_fraction)) {
    const auto start = static_cast<util::Day>(rng.uniform_index(330));
    const auto len = static_cast<util::Day>(
        rng.uniform(cfg.seasonal_min_days, cfg.seasonal_max_days));
    c.vacations.emplace_back(start, start + len);
  }
  std::sort(c.vacations.begin(), c.vacations.end());
  return c;
}

bool is_away(const CustomerBehavior& c, util::Day day) noexcept {
  for (const auto& [start, end] : c.vacations) {
    if (day >= start && day < end) return true;
    if (start > day) break;
  }
  return false;
}

namespace {

/// Deterministic per-(customer, day) uniform for the online/offline
/// gate — stable across every consumer of the usage model.
double day_uniform(std::uint64_t seed, util::Day day) noexcept {
  std::uint64_t x =
      seed ^ (static_cast<std::uint64_t>(day) * 0x9E3779B97F4A7C15ULL);
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

}  // namespace

double usage_on_day(const CustomerBehavior& c, util::Day day) noexcept {
  if (is_away(c, day)) return 0.0;
  if (day_uniform(c.activity_seed, day) >= c.online_prob) return 0.0;
  const auto wd = util::weekday_of(day);
  const bool weekend =
      wd == util::Weekday::kSaturday || wd == util::Weekday::kSunday;
  return c.usage_intensity_mb * (weekend ? c.weekend_factor : 1.0);
}

double call_day_weight(util::Day day) noexcept {
  switch (util::weekday_of(day)) {
    case util::Weekday::kMonday: return 1.00;
    case util::Weekday::kTuesday: return 0.85;
    case util::Weekday::kWednesday: return 0.80;
    case util::Weekday::kThursday: return 0.75;
    case util::Weekday::kFriday: return 0.70;
    case util::Weekday::kSaturday: return 0.35;
    case util::Weekday::kSunday: return 0.30;
  }
  return 0.5;
}

}  // namespace nevermind::dslsim
