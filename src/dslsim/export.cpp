#include "dslsim/export.hpp"

#include <algorithm>
#include <ostream>
#include <string>

#include "dslsim/profile.hpp"
#include "ml/dataset.hpp"
#include "util/csv.hpp"

namespace nevermind::dslsim {

namespace {

std::string cell(float v) {
  return ml::is_missing(v) ? std::string{} : std::to_string(v);
}

const char* category_name(TicketCategory c) {
  switch (c) {
    case TicketCategory::kCustomerEdge: return "customer-edge";
    case TicketCategory::kBilling: return "billing";
    case TicketCategory::kOther: return "other";
  }
  return "?";
}

}  // namespace

void export_measurements_csv(const SimDataset& data, std::ostream& os,
                             int week_from, int week_to) {
  week_from = std::max(week_from, 0);
  week_to = std::min(week_to, data.n_weeks() - 1);
  export_measurements_csv_header(os);
  for (int w = week_from; w <= week_to; ++w) {
    export_measurements_csv_chunk(
        WeekChunk{w, util::saturday_of_week(w), data.week_measurements(w)},
        os);
  }
}

void export_measurements_csv_header(std::ostream& os) {
  util::CsvWriter csv(os);
  std::vector<std::string> header = {"week", "line", "date"};
  for (std::size_t i = 0; i < kNumLineMetrics; ++i) {
    header.emplace_back(metric_name(i));
  }
  csv.write_row(header);
}

void export_measurements_csv_chunk(const WeekChunk& chunk, std::ostream& os) {
  util::CsvWriter csv(os);
  std::vector<std::string> row;
  const std::string week_str = std::to_string(chunk.week);
  const std::string date_str = util::format_date(chunk.day);
  for (std::size_t u = 0; u < chunk.measurements.size(); ++u) {
    const MetricVector& m = chunk.measurements[u];
    row.clear();
    row.push_back(week_str);
    row.push_back(std::to_string(u));
    row.push_back(date_str);
    for (std::size_t i = 0; i < kNumLineMetrics; ++i) {
      row.push_back(cell(m[i]));
    }
    csv.write_row(row);
  }
}

void export_tickets_csv(const SimDataset& data, std::ostream& os) {
  util::CsvWriter csv(os);
  csv.write_row({"id", "line", "reported", "category", "resolved",
                 "disposition"});
  for (const auto& t : data.tickets()) {
    std::string disposition;
    if (t.note != kNoTicket) {
      disposition = data.catalog()
                        .signature(data.notes()[static_cast<std::size_t>(
                                                    t.note)]
                                       .disposition)
                        .code;
    }
    csv.write_row({std::to_string(t.id), std::to_string(t.line),
                   util::format_date(t.reported), category_name(t.category),
                   util::format_date(t.resolved), disposition});
  }
}

void export_notes_csv(const SimDataset& data, std::ostream& os) {
  util::CsvWriter csv(os);
  csv.write_row({"ticket_id", "line", "dispatch", "disposition", "location"});
  for (const auto& note : data.notes()) {
    csv.write_row({std::to_string(note.ticket_id), std::to_string(note.line),
                   util::format_date(note.dispatch_day),
                   data.catalog().signature(note.disposition).code,
                   major_location_name(note.location)});
  }
}

void export_profiles_csv(const SimDataset& data, std::ostream& os) {
  util::CsvWriter csv(os);
  csv.write_row({"line", "dslam", "bras", "profile", "down_kbps", "up_kbps"});
  for (LineId u = 0; u < data.n_lines(); ++u) {
    const ServiceProfile& prof = profile(data.plant(u).profile);
    csv.write_row({std::to_string(u),
                   std::to_string(data.topology().dslam_of(u)),
                   std::to_string(data.topology().bras_of_line(u)),
                   std::string(prof.name), std::to_string(prof.down_kbps),
                   std::to_string(prof.up_kbps)});
  }
}

void export_outages_csv(const SimDataset& data, std::ostream& os) {
  util::CsvWriter csv(os);
  csv.write_row({"dslam", "precursor_start", "outage_start", "outage_end"});
  for (const auto& o : data.outages()) {
    csv.write_row({std::to_string(o.dslam),
                   util::format_date(o.precursor_start),
                   util::format_date(o.outage_start),
                   util::format_date(o.outage_end)});
  }
}

}  // namespace nevermind::dslsim
