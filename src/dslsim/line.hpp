// Per-line physical plant and the Saturday line-test measurement model.
//
// A line's fixed plant (loop length, wire gauge, taps, ambient noise)
// plus the currently active fault effects determine the 25 Table-2
// metrics the DSLAM's remote test reports. The couplings follow DSL
// engineering folklore: attenuation grows with loop length; attainable
// rate falls with SNR; the delivered rate is capped by the subscriber
// profile; the noise margin is the headroom between the two; code
// violations explode when the margin evaporates.
#pragma once

#include "dslsim/faults.hpp"
#include "dslsim/metrics.hpp"
#include "dslsim/profile.hpp"
#include "util/rng.hpp"

namespace nevermind::dslsim {

/// Immutable physical characteristics of one subscriber loop.
struct LinePlant {
  float loop_length_ft = 8000.0F;   // true copper length
  float gauge_db_per_kft = 5.0F;    // attenuation slope of the cable
  bool inherent_bridge_tap = false; // legacy tap left in the plant
  float crosstalk_propensity = 0.1F;  // binder-group crosstalk exposure
  float noise_floor_db = 0.0F;      // ambient noise offset (dB, ~N(0,2))
  ProfileId profile = 1;
};

/// Sample a plant from the footprint distribution: loop lengths are
/// log-normal-ish with a long tail past 15 kft (where the paper's
/// manual rule says the profile is unsupportable).
[[nodiscard]] LinePlant sample_plant(util::Rng& rng);

/// Pick a service tier consistent with the plant: operators do not sell
/// elite tiers on 17 kft loops, but mis-provisioning happens and is one
/// source of "reduce speed to stabilize" dispositions.
[[nodiscard]] ProfileId sample_profile(const LinePlant& plant, util::Rng& rng);

/// Fault/outage effects aggregated over everything active on the line
/// at measurement time, plus the week's usage (cells counters).
struct MeasurementContext {
  FaultEffects fx;           // aggregated (see aggregate_effects)
  double usage_mb_week = 800.0;
};

/// Combine several active effect sets: additive channels add,
/// multiplicative channels multiply, probability channels combine as
/// independent events. `scale` multiplies the contribution (severity x
/// activity of the episode).
void accumulate_effects(FaultEffects& into, const FaultEffects& from,
                        double scale) noexcept;

/// Probability that the Saturday test finds the modem unreachable:
/// customer powered it off (base/away behaviour) or the fault killed it.
[[nodiscard]] double modem_off_probability(double customer_off_prob,
                                           const FaultEffects& fx) noexcept;

/// Produce one Saturday test result for a reachable modem.
[[nodiscard]] MetricVector measure_line(const LinePlant& plant,
                                        const MeasurementContext& ctx,
                                        util::Rng& rng);

/// A missing record (modem off): state = 0, everything else NaN.
[[nodiscard]] MetricVector missing_record() noexcept;

[[nodiscard]] inline bool record_present(const MetricVector& m) noexcept {
  return m[metric_index(LineMetric::kState)] >= 0.5F;
}

/// Severity the *customer* perceives from the aggregated effects — the
/// paper's observable symptoms (no sync, slow speed, drops), not raw
/// counters. Feeds the ticket-generation model.
[[nodiscard]] double perceived_severity(const FaultEffects& fx) noexcept;

}  // namespace nevermind::dslsim
