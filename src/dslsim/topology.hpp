// The hierarchical DSL access-network topology of Fig 1: BRAS servers
// aggregate ATM switches, which aggregate DSLAMs, which terminate the
// dedicated per-subscriber copper lines; between the DSLAM and the home
// sit the crossboxes that split the plant into the F1 and F2 segments
// of Fig 2. The hierarchy matters twice in the paper: outages live at
// the (BRAS, DSLAM) level and affect whole groups of lines, and the
// combined locator model exploits the location hierarchy.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace nevermind::dslsim {

using LineId = std::uint32_t;
using DslamId = std::uint32_t;
using AtmId = std::uint32_t;
using BrasId = std::uint32_t;
using CrossboxId = std::uint32_t;

struct TopologyConfig {
  std::uint32_t n_lines = 20000;
  /// "Each DSLAM typically terminates ... several tens of customers."
  std::uint32_t lines_per_dslam = 48;
  std::uint32_t dslams_per_atm = 24;
  std::uint32_t atms_per_bras = 8;
  std::uint32_t crossboxes_per_dslam = 6;
};

class Topology {
 public:
  explicit Topology(const TopologyConfig& config, std::uint64_t seed = 1);

  [[nodiscard]] std::uint32_t n_lines() const noexcept { return n_lines_; }
  [[nodiscard]] std::uint32_t n_dslams() const noexcept { return n_dslams_; }
  [[nodiscard]] std::uint32_t n_atms() const noexcept { return n_atms_; }
  [[nodiscard]] std::uint32_t n_bras() const noexcept { return n_bras_; }
  [[nodiscard]] std::uint32_t n_crossboxes() const noexcept {
    return n_crossboxes_;
  }

  [[nodiscard]] DslamId dslam_of(LineId line) const {
    return line_dslam_[line];
  }
  [[nodiscard]] CrossboxId crossbox_of(LineId line) const {
    return line_crossbox_[line];
  }
  [[nodiscard]] AtmId atm_of_dslam(DslamId d) const { return dslam_atm_[d]; }
  [[nodiscard]] AtmId atm_of_line(LineId line) const {
    return dslam_atm_[line_dslam_[line]];
  }
  [[nodiscard]] BrasId bras_of_dslam(DslamId d) const { return dslam_bras_[d]; }
  [[nodiscard]] BrasId bras_of_line(LineId line) const {
    return dslam_bras_[line_dslam_[line]];
  }
  /// Crossbox ids are global: DSLAM d owns [d*cpd, (d+1)*cpd).
  [[nodiscard]] DslamId dslam_of_crossbox(CrossboxId c) const noexcept {
    return c / crossboxes_per_dslam_;
  }
  [[nodiscard]] std::span<const LineId> lines_of_dslam(DslamId d) const;
  [[nodiscard]] std::span<const LineId> lines_of_crossbox(CrossboxId c) const;
  /// DSLAM ids are contiguous per ATM: [first, last) range of ATM a.
  [[nodiscard]] std::pair<DslamId, DslamId> dslam_range_of_atm(
      AtmId a) const noexcept;

 private:
  std::uint32_t n_lines_ = 0;
  std::uint32_t n_dslams_ = 0;
  std::uint32_t n_atms_ = 0;
  std::uint32_t n_bras_ = 0;
  std::uint32_t n_crossboxes_ = 0;
  std::uint32_t crossboxes_per_dslam_ = 6;
  std::uint32_t dslams_per_atm_ = 24;
  std::vector<DslamId> line_dslam_;
  std::vector<CrossboxId> line_crossbox_;
  std::vector<AtmId> dslam_atm_;
  std::vector<BrasId> dslam_bras_;
  std::vector<LineId> dslam_lines_flat_;   // grouped by DSLAM
  std::vector<std::uint32_t> dslam_lines_offset_;
  std::vector<LineId> crossbox_lines_flat_;  // grouped by crossbox
  std::vector<std::uint32_t> crossbox_lines_offset_;
};

}  // namespace nevermind::dslsim
