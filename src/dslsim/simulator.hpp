// Year-long DSL network simulation: generates every dataset the paper's
// evaluation consumes — weekly line tests, customer tickets, disposition
// notes, DSLAM outages, subscriber profiles, and the daily byte feed —
// from a seeded stochastic model of plant, faults and customers.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "dslsim/customer.hpp"
#include "dslsim/faults.hpp"
#include "dslsim/line.hpp"
#include "dslsim/records.hpp"
#include "dslsim/topology.hpp"
#include "exec/exec.hpp"
#include "util/calendar.hpp"
#include "util/rng.hpp"

namespace nevermind::dslsim {

struct SimConfig {
  std::uint64_t seed = 42;
  TopologyConfig topology;
  /// Saturday line tests simulated (2009 has 52).
  int n_weeks = 52;
  /// Customer-edge fault arrivals per line per week.
  double weekly_fault_rate = 0.0065;
  /// DSLAM outage episodes per DSLAM per year.
  double outage_rate_per_dslam_year = 0.42;
  /// Probability a call during an active outage is absorbed by the IVR
  /// (no ticket issued) — §5.2 scenario 1.
  double outage_suppression = 0.9;
  /// Scales the per-day probability that an affected customer notices a
  /// live symptom.
  double notice_scale = 0.17;
  /// Probability the customer actually places the call on a given day
  /// once they noticed (shaped further by call_day_weight).
  double call_rate = 0.45;
  /// Disposition-note label noise (paper: codes "can be very noisy").
  double label_noise_same_location = 0.12;
  double label_noise_any = 0.04;
  /// Dispatch fails to truly fix the fault (repeat tickets).
  double misresolve_prob = 0.12;
  /// Mean weeks until an unreported fault silently clears.
  double unreported_clear_mean_weeks = 12.0;
  /// Billing/other tickets per line per year (filtered by category).
  double billing_tickets_per_line_year = 0.05;
  /// Generated rare dispositions per major location; with the default 7,
  /// the catalogue has 24 canonical + 28 generated = 52 codes, matching
  /// the paper's 52 dispositions.
  std::size_t minor_variants_per_location = 7;
  /// The daily byte feed covers lines under this many BRAS servers
  /// (paper: two).
  std::uint32_t byte_feed_bras = 2;
  CustomerModelConfig customer;

  /// A fault injected deterministically in addition to the random
  /// arrival process — controlled experiments and tests pin exactly
  /// which line breaks, how, and when. The episode then flows through
  /// the same notice/report/dispatch machinery as random faults.
  struct ScriptedFault {
    LineId line = 0;
    DispositionId disposition = 0;
    util::Day onset = 0;
    float severity = 1.0F;
  };
  std::vector<ScriptedFault> scripted_faults;

  /// Correlated shared-infrastructure events (the spatial fault layer).
  /// All rates default to 0: the layer is fully inert unless asked for,
  /// so default-config datasets are bit-identical with or without it.
  struct InfraEventRates {
    /// Scheduled DSLAM outages per DSLAM per year (on top of the random
    /// OutageEvent process above, which models unscheduled failures).
    double dslam_outages_per_dslam_year = 0.0;
    /// Crossbox (F1 binder) degradation events per crossbox per year.
    double crossbox_events_per_crossbox_year = 0.0;
    /// Weather bursts per ATM region per year.
    double weather_bursts_per_region_year = 0.0;
    /// Staged firmware rollout: first wave upgrades on this day
    /// (negative = no rollout), each wave `firmware_wave_days` later
    /// covers the next `firmware_dslams_per_wave` DSLAMs, and each
    /// upgraded DSLAM regresses with `firmware_regression_prob`.
    util::Day firmware_rollout_start = -1;
    int firmware_wave_days = 7;
    std::uint32_t firmware_dslams_per_wave = 4;
    double firmware_regression_prob = 0.25;
  };
  InfraEventRates infra;

  /// An infrastructure event injected deterministically (controlled
  /// experiments, tests, bench_drift). Scope semantics as InfraEvent.
  struct ScriptedInfraEvent {
    InfraEventKind kind = InfraEventKind::kDslamOutage;
    std::uint32_t scope = 0;
    util::Day start = 0;
    util::Day end = 0;  // exclusive
    float severity = 1.0F;
  };
  std::vector<ScriptedInfraEvent> scripted_infra;

  /// Deterministic concept drift applied arithmetically in the
  /// measurement sweep (no RNG draws, so enabling it perturbs no other
  /// stream): slow plant aging plus a seasonal noise cycle. Both
  /// default off.
  struct EnvironmentDrift {
    /// Extra attenuation accumulating linearly from `onset_day` on
    /// every line (corroding plant), in dB per 365 days.
    double plant_aging_db_per_year = 0.0;
    util::Day onset_day = 0;
    /// Peak-to-trough amplitude of a seasonal noise-floor cycle (dB);
    /// maximum at `seasonal_peak_day` (day-of-sim, cosine-shaped).
    double seasonal_noise_amp_db = 0.0;
    int seasonal_peak_day = 240;
  };
  EnvironmentDrift drift;
};

/// One week of Saturday measurements handed to a streaming sink: the
/// test-week index, its Saturday, and one MetricVector per line (indexed
/// by LineId). The span aliases a buffer the producer reuses for the
/// next week — consumers must copy anything they keep.
struct WeekChunk {
  int week = 0;
  util::Day day = 0;
  std::span<const MetricVector> measurements;
};

/// Consumer callback for Simulator::stream_weeks / run_stream. Called
/// once per week, in ascending week order, after the week's parallel
/// sweep has fully completed (the parallel_for return is the barrier).
using WeekSink = std::function<void(const WeekChunk&)>;

/// Everything one simulation run produces. Downstream components (the
/// feature encoder, predictor, locator, benches) only read from this.
class SimDataset {
 public:
  SimDataset(const SimConfig& config, Topology topology, FaultCatalog catalog);

  [[nodiscard]] const SimConfig& config() const noexcept { return config_; }
  [[nodiscard]] const Topology& topology() const noexcept { return topology_; }
  [[nodiscard]] const FaultCatalog& catalog() const noexcept {
    return catalog_;
  }

  [[nodiscard]] std::uint32_t n_lines() const noexcept {
    return topology_.n_lines();
  }
  [[nodiscard]] int n_weeks() const noexcept { return config_.n_weeks; }

  [[nodiscard]] const MetricVector& measurement(int week, LineId line) const {
    return weeks_.at(static_cast<std::size_t>(week))[line];
  }

  /// The full week's measurement table, one MetricVector per line.
  [[nodiscard]] std::span<const MetricVector> week_measurements(
      int week) const {
    const auto& wk = weeks_.at(static_cast<std::size_t>(week));
    return {wk.data(), wk.size()};
  }

  /// False for a tables-only dataset from Simulator::build_tables /
  /// run_stream — every accessor except measurement/week_measurements
  /// works on one; measurements arrive through the week sink instead.
  [[nodiscard]] bool has_measurements() const noexcept {
    return !weeks_.empty();
  }

  [[nodiscard]] const LinePlant& plant(LineId line) const {
    return plants_.at(line);
  }
  [[nodiscard]] const CustomerBehavior& customer(LineId line) const {
    return customers_.at(line);
  }

  [[nodiscard]] const std::vector<Ticket>& tickets() const noexcept {
    return tickets_;
  }
  [[nodiscard]] const std::vector<DispositionNote>& notes() const noexcept {
    return notes_;
  }
  [[nodiscard]] const std::vector<OutageEvent>& outages() const noexcept {
    return outages_;
  }
  [[nodiscard]] const std::vector<FaultEpisode>& episodes() const noexcept {
    return episodes_;
  }

  /// Day of the first customer-edge ticket strictly after `day` for the
  /// line, if any — N T(u, t) of the problem definition (Section 4.1).
  [[nodiscard]] std::optional<util::Day> next_edge_ticket_after(
      LineId line, util::Day day) const;

  /// Day of the most recent customer-edge ticket at or before `day`
  /// (the "ticket" customer feature of Table 3).
  [[nodiscard]] std::optional<util::Day> last_edge_ticket_at_or_before(
      LineId line, util::Day day) const;

  /// True if the line's DSLAM has an outage (hard window) intersecting
  /// [from, to].
  [[nodiscard]] bool dslam_outage_within(DslamId dslam, util::Day from,
                                         util::Day to) const;

  /// Daily traffic (MB) for a line covered by the byte feed; nullopt if
  /// the line is not under one of the instrumented BRAS servers.
  [[nodiscard]] std::optional<double> bytes_on_day(LineId line,
                                                   util::Day day) const;
  [[nodiscard]] bool in_byte_feed(LineId line) const;

  /// Ground-truth: true if any fault episode is active on the line at
  /// `day` (used by analyses of "incorrect" predictions).
  [[nodiscard]] bool fault_active(LineId line, util::Day day) const;

  /// Indices into episodes() of every fault episode of the line.
  [[nodiscard]] std::span<const std::uint32_t> line_episode_indices(
      LineId line) const {
    const auto& v = line_episodes_.at(line);
    return {v.data(), v.size()};
  }

  /// Correlated infrastructure events, sorted by (start, kind, scope).
  [[nodiscard]] const std::vector<InfraEvent>& infra_events() const noexcept {
    return infra_events_;
  }

  /// Indices into infra_events() of every event that can touch lines of
  /// this DSLAM (crossbox events appear under their DSLAM; weather
  /// events under every DSLAM of the region).
  [[nodiscard]] std::span<const std::uint32_t> infra_events_of_dslam(
      DslamId dslam) const {
    const auto& v = infra_by_dslam_.at(dslam);
    return {v.data(), v.size()};
  }

  /// Ground truth: true if any infrastructure event covering this line
  /// is active on `day` — the network-side label the spatial stage is
  /// evaluated against.
  [[nodiscard]] bool infra_active(LineId line, util::Day day) const;

  // --- mutation hooks used only by the Simulator while building -------
  struct Builder;

 private:
  SimConfig config_;
  Topology topology_;
  FaultCatalog catalog_;
  std::vector<LinePlant> plants_;
  std::vector<CustomerBehavior> customers_;
  std::vector<WeeklyMeasurements> weeks_;
  std::vector<Ticket> tickets_;
  std::vector<DispositionNote> notes_;
  std::vector<OutageEvent> outages_;
  std::vector<FaultEpisode> episodes_;
  /// Per line: (day, ticket id) of edge tickets, sorted by day.
  std::vector<std::vector<std::pair<util::Day, TicketId>>> edge_tickets_;
  /// Per DSLAM: outage indices sorted by start.
  std::vector<std::vector<std::uint32_t>> dslam_outages_;
  /// Byte feed: per covered line, MB per day. Index -1 = not covered.
  std::vector<std::int32_t> byte_feed_index_;
  std::vector<std::vector<float>> daily_mb_;
  /// Per line: episode indices (for fault_active).
  std::vector<std::vector<std::uint32_t>> line_episodes_;
  /// Correlated infrastructure events and the per-DSLAM index the
  /// measurement sweep walks.
  std::vector<InfraEvent> infra_events_;
  std::vector<std::vector<std::uint32_t>> infra_by_dslam_;
  /// Root of the per-line measurement RNG streams; stored so the weekly
  /// sweep can run later (and repeatedly) against a tables-only dataset.
  std::uint64_t measure_seed_ = 0;

  friend class Simulator;
};

/// Activity level of a fault episode on a given day in [0, 1]:
/// 0 outside [onset, cleared); ramping for degrading faults; a seeded
/// duty-cycle block pattern for intermittent ones.
[[nodiscard]] double episode_activity(const FaultSignature& sig,
                                      const FaultEpisode& episode,
                                      util::Day day) noexcept;

/// Metric perturbations one infrastructure event kind applies at
/// severity 1.0 to every line in its scope.
[[nodiscard]] FaultEffects infra_event_effects(InfraEventKind kind) noexcept;

/// Activity of an infrastructure event on a day in [0, 1]: 0 outside
/// [start, end); crossbox degradations ramp over the first days, the
/// other kinds hit at full strength immediately.
[[nodiscard]] double infra_activity(const InfraEvent& event,
                                    util::Day day) noexcept;

/// Every line in an event's scope, ascending by id.
[[nodiscard]] std::vector<LineId> infra_event_lines(const Topology& topo,
                                                    const InfraEvent& event);

class Simulator {
 public:
  explicit Simulator(SimConfig config) : config_(std::move(config)) {}

  /// Run the full simulation; deterministic in config.seed.
  [[nodiscard]] SimDataset run() const { return run(exec::ExecContext::serial()); }

  /// Same, but with the weekly measurement sweep and the byte feed
  /// parallelized across lines under `exec`. Every line draws from its
  /// own util::Rng stream keyed by (seed, line), so the dataset is
  /// bit-identical at every thread count — including threads = 1.
  [[nodiscard]] SimDataset run(const exec::ExecContext& exec) const;

  /// Everything run() produces EXCEPT the weekly measurement tables:
  /// plants, customers, outages, fault episodes, tickets, notes, the
  /// infrastructure layer and the byte feed. The returned dataset has
  /// has_measurements() == false; stream_weeks sweeps the measurements
  /// against it on demand. All RNG streams are forked in run()'s order,
  /// so build_tables + a full sweep is bit-identical to run().
  [[nodiscard]] SimDataset build_tables(const exec::ExecContext& exec) const;

  /// Week-streaming measurement sweep over a dataset from build_tables
  /// (or run): for each week 0..through_week (default: all n_weeks), the
  /// per-line measurements are generated in parallel under `exec`, then
  /// — after the week's barrier — handed to `sink` as one WeekChunk.
  /// Every line keeps one persistent RNG advanced across the weeks, so
  /// the emitted chunks are bit-identical to run()'s measurement tables
  /// at every thread count, including the chunk a Box–Muller cache
  /// straddles. The chunk buffer is reused between weeks.
  void stream_weeks(const SimDataset& tables, const exec::ExecContext& exec,
                    const WeekSink& sink, int through_week = -1) const;

  /// Convenience: build_tables + stream_weeks over every week. Returns
  /// the tables-only dataset (no measurement tables resident).
  [[nodiscard]] SimDataset run_stream(const exec::ExecContext& exec,
                                      const WeekSink& sink) const;

 private:
  /// One (line, Saturday) measurement cell — THE shared implementation
  /// behind run()'s line-major sweep and stream_weeks' week-major sweep;
  /// both draw the same stream from `rng` in the same order.
  static MetricVector measure_cell(const SimDataset& data, LineId line,
                                   util::Day day, util::Rng& rng);

  SimConfig config_;
};

}  // namespace nevermind::dslsim
