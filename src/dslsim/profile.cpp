#include "dslsim/profile.hpp"

#include <array>
#include <cstdint>

namespace nevermind::dslsim {

namespace {

constexpr std::array<ServiceProfile, 5> kProfiles = {{
    // name        down     up    min_dn  min_up  share
    {"lite",       384.0,  128.0,  256.0,   96.0, 0.10},
    {"basic",      768.0,  384.0,  512.0,  256.0, 0.35},
    {"standard",  1536.0,  384.0, 1024.0,  256.0, 0.25},
    {"advanced",  2500.0,  768.0, 1800.0,  512.0, 0.20},
    {"elite",     6000.0,  768.0, 4200.0,  512.0, 0.10},
}};

}  // namespace

std::span<const ServiceProfile> service_profiles() noexcept {
  return kProfiles;
}

const ServiceProfile& profile(ProfileId id) noexcept {
  return kProfiles[id < kProfiles.size() ? id : 1];
}

}  // namespace nevermind::dslsim
