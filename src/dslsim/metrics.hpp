// The 25 physical-layer line metrics of Table 2 — the only view into a
// DSL line's health that NEVERMIND gets. Every Saturday the DSLAM runs
// a line test against each connected modem and records these values (or
// a missing record when the modem is off).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace nevermind::dslsim {

enum class LineMetric : std::uint8_t {
  kState = 0,        // 1 if the modem answered the test
  kDnBitRate,        // downstream bit rate (kbps)
  kUpBitRate,        // upstream bit rate (kbps)
  kDnPower,          // downstream signal power (dBm)
  kUpPower,          // upstream signal power (dBm)
  kDnNoiseMargin,    // downstream SNR margin (dB)
  kUpNoiseMargin,    // upstream SNR margin (dB)
  kDnAttenuation,    // downstream signal attenuation (dB)
  kUpAttenuation,    // upstream signal attenuation (dB)
  kDnRelCap,         // downstream relative capacity (%)
  kUpRelCap,         // upstream relative capacity (%)
  kDnCvCnt1,         // code-violation interval count, low threshold
  kDnCvCnt2,         // code-violation interval count, medium threshold
  kDnCvCnt3,         // code-violation interval count, high threshold
  kDnEsCnt1,         // seconds with code violations, threshold 1
  kDnEsCnt2,         // seconds with code violations, threshold 2
  kDnFecCnt1,        // FEC counts with value >= 50
  kHiCarrier,        // biggest usable carrier number
  kBridgeTap,        // bridge tap detected (0/1)
  kCrosstalk,        // crosstalk detected (0/1)
  kLoopLength,       // estimated loop length (ft)
  kDnMaxAttainBr,    // max attainable fast bit rate, downstream (kbps)
  kUpMaxAttainBr,    // max attainable fast bit rate, upstream (kbps)
  kDnCells,          // rolling count of downstream cells (millions)
  kUpCells,          // rolling count of upstream cells (millions)
};

inline constexpr std::size_t kNumLineMetrics = 25;

using MetricVector = std::array<float, kNumLineMetrics>;

[[nodiscard]] constexpr std::size_t metric_index(LineMetric m) noexcept {
  return static_cast<std::size_t>(m);
}

[[nodiscard]] std::string_view metric_name(LineMetric m) noexcept;
[[nodiscard]] std::string_view metric_name(std::size_t index) noexcept;

/// True for metrics a stump should treat as categorical (0/1 flags).
[[nodiscard]] bool metric_is_categorical(std::size_t index) noexcept;

}  // namespace nevermind::dslsim
