#include "dslsim/summary.hpp"

#include <algorithm>
#include <map>

namespace nevermind::dslsim {

TicketSummary summarize_tickets(const SimDataset& data) {
  TicketSummary out;
  int max_week = 0;
  for (const auto& t : data.tickets()) {
    if (t.category != TicketCategory::kCustomerEdge) {
      out.billing_total += t.category == TicketCategory::kBilling ? 1 : 0;
      continue;
    }
    ++out.edge_total;
    if (t.note != kNoTicket) ++out.dispatched;
    ++out.by_weekday[static_cast<std::size_t>(util::weekday_of(t.reported))];
    max_week = std::max(max_week, util::test_week_of(t.reported));
  }
  out.by_week.assign(static_cast<std::size_t>(max_week) + 1, 0);
  for (const auto& t : data.tickets()) {
    if (t.category != TicketCategory::kCustomerEdge) continue;
    const int w = std::max(util::test_week_of(t.reported), 0);
    ++out.by_week[static_cast<std::size_t>(w)];
  }
  return out;
}

std::array<LocationShare, kNumMajorLocations> summarize_locations(
    const SimDataset& data) {
  std::array<LocationShare, kNumMajorLocations> out{};
  std::array<std::map<DispositionId, std::size_t>, kNumMajorLocations> counts;
  std::size_t total = 0;
  for (const auto& note : data.notes()) {
    const auto loc = static_cast<std::size_t>(note.location);
    ++out[loc].dispatches;
    ++counts[loc][note.disposition];
    ++total;
  }
  for (std::size_t loc = 0; loc < kNumMajorLocations; ++loc) {
    out[loc].location = static_cast<MajorLocation>(loc);
    out[loc].share = total > 0 ? static_cast<double>(out[loc].dispatches) /
                                     static_cast<double>(total)
                               : 0.0;
    std::size_t top = 0;
    for (const auto& [disp, count] : counts[loc]) top = std::max(top, count);
    out[loc].top_disposition_share =
        out[loc].dispatches > 0
            ? static_cast<double>(top) /
                  static_cast<double>(out[loc].dispatches)
            : 0.0;
  }
  return out;
}

MeasurementSummary summarize_measurements(const SimDataset& data) {
  MeasurementSummary out;
  for (int w = 0; w < data.n_weeks(); ++w) {
    for (LineId u = 0; u < data.n_lines(); ++u) {
      ++out.records;
      if (!record_present(data.measurement(w, u))) ++out.missing;
    }
  }
  out.missing_rate = out.records > 0 ? static_cast<double>(out.missing) /
                                           static_cast<double>(out.records)
                                     : 0.0;
  return out;
}

}  // namespace nevermind::dslsim
