#include "dslsim/metrics.hpp"

namespace nevermind::dslsim {

namespace {

constexpr std::array<std::string_view, kNumLineMetrics> kNames = {
    "state",     "dnbr",      "upbr",      "dnpwr",         "uppwr",
    "dnnmr",     "upnmr",     "dnaten",    "upaten",        "dnrelcap",
    "uprelcap",  "dncvcnt1",  "dncvcnt2",  "dncvcnt3",      "dnescnt1",
    "dnescnt2",  "dnfeccnt1", "hicar",     "bt",            "crosstalk",
    "looplength", "dnmaxattainfbr", "upmaxattainfbr", "dncells", "upcells",
};

}  // namespace

std::string_view metric_name(LineMetric m) noexcept {
  return kNames[metric_index(m)];
}

std::string_view metric_name(std::size_t index) noexcept {
  return index < kNumLineMetrics ? kNames[index] : "?";
}

bool metric_is_categorical(std::size_t index) noexcept {
  const auto m = static_cast<LineMetric>(index);
  return m == LineMetric::kState || m == LineMetric::kBridgeTap ||
         m == LineMetric::kCrosstalk;
}

}  // namespace nevermind::dslsim
