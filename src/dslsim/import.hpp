// CSV import: the inverse of export.hpp. Parses the paper-shaped feeds
// back into plain record structures, so a deployment can run this
// library against files produced elsewhere (another simulator run, a
// data warehouse dump shaped like the paper's feeds) without going
// through dslsim::Simulator. Parsing is strict about shape (header and
// column counts) and lenient about content (bad numeric cells become
// missing values).
#pragma once

#include <iosfwd>
#include <optional>
#include <vector>

#include "dslsim/records.hpp"

namespace nevermind::dslsim {

struct ImportedMeasurement {
  int week = 0;
  LineId line = 0;
  MetricVector metrics{};  // missing cells -> NaN, state -> 0
};

/// Parse a stream written by export_measurements_csv. Returns nullopt
/// when the header is missing or malformed; rows with a wrong cell
/// count are skipped.
[[nodiscard]] std::optional<std::vector<ImportedMeasurement>>
import_measurements_csv(std::istream& is);

struct ImportedTicket {
  TicketId id = 0;
  LineId line = 0;
  util::Day reported = 0;
  TicketCategory category = TicketCategory::kCustomerEdge;
  util::Day resolved = 0;
  /// Disposition code string; empty when no dispatch ran.
  std::string disposition;
};

[[nodiscard]] std::optional<std::vector<ImportedTicket>> import_tickets_csv(
    std::istream& is);

/// Parse "MM/DD/YY" back into a day index (09 -> base year).
[[nodiscard]] std::optional<util::Day> parse_date(const std::string& text);

}  // namespace nevermind::dslsim
