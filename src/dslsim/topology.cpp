#include "dslsim/topology.hpp"

#include <algorithm>

namespace nevermind::dslsim {

Topology::Topology(const TopologyConfig& config, std::uint64_t seed) {
  n_lines_ = config.n_lines;
  const std::uint32_t lpd = config.lines_per_dslam > 0 ? config.lines_per_dslam : 48;
  n_dslams_ = (n_lines_ + lpd - 1) / lpd;
  if (n_dslams_ == 0) n_dslams_ = 1;
  const std::uint32_t dpa = config.dslams_per_atm > 0 ? config.dslams_per_atm : 24;
  n_atms_ = (n_dslams_ + dpa - 1) / dpa;
  const std::uint32_t apb = config.atms_per_bras > 0 ? config.atms_per_bras : 8;
  n_bras_ = (n_atms_ + apb - 1) / apb;
  const std::uint32_t cpd =
      config.crossboxes_per_dslam > 0 ? config.crossboxes_per_dslam : 6;
  n_crossboxes_ = n_dslams_ * cpd;
  crossboxes_per_dslam_ = cpd;
  dslams_per_atm_ = dpa;

  util::Rng rng(seed ^ 0x70B01061ULL);

  line_dslam_.resize(n_lines_);
  line_crossbox_.resize(n_lines_);
  for (LineId u = 0; u < n_lines_; ++u) {
    const DslamId d = u / lpd;
    line_dslam_[u] = d;
    // Lines scatter over the DSLAM's crossboxes (street cabinets).
    line_crossbox_[u] =
        d * cpd + static_cast<CrossboxId>(rng.uniform_index(cpd));
  }

  dslam_atm_.resize(n_dslams_);
  dslam_bras_.resize(n_dslams_);
  for (DslamId d = 0; d < n_dslams_; ++d) {
    const AtmId a = d / dpa;
    dslam_atm_[d] = a;
    dslam_bras_[d] = a / apb;
  }

  // Group lines by DSLAM for O(1) span lookups.
  dslam_lines_offset_.assign(n_dslams_ + 1, 0);
  for (LineId u = 0; u < n_lines_; ++u) ++dslam_lines_offset_[line_dslam_[u] + 1];
  for (std::uint32_t d = 0; d < n_dslams_; ++d) {
    dslam_lines_offset_[d + 1] += dslam_lines_offset_[d];
  }
  dslam_lines_flat_.resize(n_lines_);
  std::vector<std::uint32_t> cursor(dslam_lines_offset_.begin(),
                                    dslam_lines_offset_.end() - 1);
  for (LineId u = 0; u < n_lines_; ++u) {
    dslam_lines_flat_[cursor[line_dslam_[u]]++] = u;
  }

  // Same grouping at crossbox granularity (street cabinets), for the
  // spatial aggregation layer and crossbox-scoped infrastructure events.
  crossbox_lines_offset_.assign(n_crossboxes_ + 1, 0);
  for (LineId u = 0; u < n_lines_; ++u) {
    ++crossbox_lines_offset_[line_crossbox_[u] + 1];
  }
  for (std::uint32_t c = 0; c < n_crossboxes_; ++c) {
    crossbox_lines_offset_[c + 1] += crossbox_lines_offset_[c];
  }
  crossbox_lines_flat_.resize(n_lines_);
  std::vector<std::uint32_t> ccursor(crossbox_lines_offset_.begin(),
                                     crossbox_lines_offset_.end() - 1);
  for (LineId u = 0; u < n_lines_; ++u) {
    crossbox_lines_flat_[ccursor[line_crossbox_[u]]++] = u;
  }
}

std::span<const LineId> Topology::lines_of_dslam(DslamId d) const {
  const std::uint32_t begin = dslam_lines_offset_.at(d);
  const std::uint32_t end = dslam_lines_offset_.at(d + 1);
  return {dslam_lines_flat_.data() + begin, end - begin};
}

std::span<const LineId> Topology::lines_of_crossbox(CrossboxId c) const {
  const std::uint32_t begin = crossbox_lines_offset_.at(c);
  const std::uint32_t end = crossbox_lines_offset_.at(c + 1);
  return {crossbox_lines_flat_.data() + begin, end - begin};
}

std::pair<DslamId, DslamId> Topology::dslam_range_of_atm(
    AtmId a) const noexcept {
  const DslamId first = a * dslams_per_atm_;
  const DslamId last = std::min(n_dslams_, first + dslams_per_atm_);
  return {first, last};
}

}  // namespace nevermind::dslsim
