// Fault taxonomy and signatures for customer edge problems.
//
// Table 1 of the paper partitions field-technician dispositions into
// four major locations: the home network (HN), the crossbox-to-DSLAM
// path (F1), the DSLAM itself (DS), and the home-to-crossbox drop (F2).
// Section 6.3 works with 52 distinct dispositions (those seen more than
// 20 times). We model the 24 representative dispositions Table 1 names
// explicitly, plus per-location generated "minor" variants to reach a
// comparable catalogue size and the long rare tail the combined
// inference model exploits.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace nevermind::dslsim {

enum class MajorLocation : std::uint8_t {
  kHomeNetwork = 0,  // HN
  kF1,               // crossbox <-> DSLAM path
  kDslam,            // DS
  kF2,               // home <-> crossbox drop
};
inline constexpr std::size_t kNumMajorLocations = 4;

[[nodiscard]] const char* major_location_name(MajorLocation loc) noexcept;

/// How a fault expresses itself over time.
enum class FaultDynamics : std::uint8_t {
  kSudden,        // full effect from onset (e.g. pair cut)
  kDegrading,     // ramps up over weeks (e.g. corroding wire)
  kIntermittent,  // active only part of the time (e.g. loose jack)
};

/// Additive/multiplicative perturbations a fault applies to the healthy
/// line model, all scaled by the episode's severity in [0, ~2].
struct FaultEffects {
  double atten_db = 0.0;        // extra signal attenuation
  double noise_db = 0.0;        // raised noise floor (cuts margin)
  double rate_mult = 1.0;       // multiplies the delivered bit rate
  double attain_mult = 1.0;     // multiplies max attainable rate
  double cv_rate = 0.0;         // extra code violations per test window
  double es_rate = 0.0;         // extra errored seconds
  double fec_rate = 0.0;        // extra FEC events
  double modem_off_prob = 0.0;  // modem unreachable during the test
  double crosstalk_prob = 0.0;  // crosstalk flag raised
  double bridge_tap_prob = 0.0; // bridge tap flag raised
  double hicar_shift = 0.0;     // carriers lost at the top of the band
  double cells_mult = 1.0;      // usage impact (drops cut traffic)
  /// Two-sided metric jitter (loose contacts, flapping sync): inflates
  /// the *variance* of rates/margins/power without moving their means.
  /// Detectable via |delta| and |time-series z| — i.e. the quadratic
  /// derived features of Table 3.
  double instability = 0.0;
};

/// One disposition code: where the problem is fixed, how it behaves,
/// and what it does to the Table-2 metrics.
struct FaultSignature {
  std::string code;          // short disposition code, e.g. "HN-IW"
  std::string description;   // Table-1 style text
  MajorLocation location = MajorLocation::kHomeNetwork;
  FaultDynamics dynamics = FaultDynamics::kSudden;
  /// Relative arrival frequency (normalized within the catalogue).
  double frequency_weight = 1.0;
  /// Severity scale: episode severity ~ LogNormal(mu, sigma), clamped.
  double severity_mu = -0.35;
  double severity_sigma = 0.45;
  /// Weeks for a degrading fault to reach full effect.
  double ramp_weeks = 3.0;
  /// Duty cycle for intermittent faults (fraction of time active).
  double duty_cycle = 0.5;
  /// Metric perturbations at severity 1.0.
  FaultEffects effects;
  /// How strongly an active episode is felt by a customer actually
  /// using the line (drives ticket generation).
  double perceived_weight = 1.0;
};

using DispositionId = std::uint16_t;

/// The full disposition catalogue. Canonical Table-1 entries first,
/// then seeded minor variants; the composition is deterministic in the
/// seed so experiments are reproducible.
class FaultCatalog {
 public:
  /// `minor_variants_per_location` adds that many rare generated codes
  /// per major location (0 keeps only the canonical 23).
  explicit FaultCatalog(std::uint64_t seed = 7,
                        std::size_t minor_variants_per_location = 7);

  [[nodiscard]] std::span<const FaultSignature> signatures() const noexcept {
    return signatures_;
  }
  [[nodiscard]] const FaultSignature& signature(DispositionId id) const {
    return signatures_.at(id);
  }
  [[nodiscard]] std::size_t size() const noexcept { return signatures_.size(); }

  /// Sample a disposition proportionally to frequency weights.
  [[nodiscard]] DispositionId sample(util::Rng& rng) const;

  /// Any disposition uniformly within a location (label-noise model).
  [[nodiscard]] DispositionId sample_within_location(util::Rng& rng,
                                                     MajorLocation loc) const;

  /// Number of canonical (non-generated) codes.
  [[nodiscard]] std::size_t canonical_count() const noexcept {
    return canonical_count_;
  }

 private:
  std::vector<FaultSignature> signatures_;
  std::vector<double> weights_;
  std::size_t canonical_count_ = 0;
};

/// Proximity-to-end-host order used by technicians' disposition notes:
/// when several faults are active, the note blames the location closest
/// to the customer (paper: "the code is always associated with the
/// device closest to the end host"). Lower = closer.
[[nodiscard]] int end_host_proximity(MajorLocation loc) noexcept;

}  // namespace nevermind::dslsim
