// Record types for the simulator's output datasets — the synthetic
// equivalents of the paper's four information sources (Section 3.3):
// weekly line measurements, customer trouble tickets, ticket disposition
// notes, and subscriber profiles; plus DSLAM outage events and the
// daily per-customer byte feed used by the §5.2 analyses.
#pragma once

#include <cstdint>
#include <vector>

#include "dslsim/faults.hpp"
#include "dslsim/metrics.hpp"
#include "dslsim/topology.hpp"
#include "util/calendar.hpp"

namespace nevermind::dslsim {

using TicketId = std::uint32_t;
inline constexpr std::int32_t kNoTicket = -1;

enum class TicketCategory : std::uint8_t {
  kCustomerEdge = 0,  // the tickets NEVERMIND predicts
  kBilling,           // filtered out by the agents' coarse label
  kOther,
};

/// A customer trouble ticket as logged by the customer agents.
struct Ticket {
  TicketId id = 0;
  LineId line = 0;
  util::Day reported = 0;
  TicketCategory category = TicketCategory::kCustomerEdge;
  /// Day the dispatch resolved it (or the agent closed it).
  util::Day resolved = 0;
  /// Index into SimDataset::notes, or kNoTicket when no dispatch ran.
  std::int32_t note = kNoTicket;
};

/// A field technician's disposition note (paper data source 3). The
/// disposition code is ground truth *as recorded*: per the paper it is
/// noisy — blames the device closest to the end host and reflects
/// technician judgement.
struct DispositionNote {
  TicketId ticket_id = 0;
  LineId line = 0;
  util::Day dispatch_day = 0;
  DispositionId disposition = 0;
  MajorLocation location = MajorLocation::kHomeNetwork;
};

/// A DSLAM-level outage: `precursor_start` is when the equipment began
/// degrading (visible in line tests), [outage_start, outage_end) is the
/// hard outage during which the IVR absorbs customer calls.
struct OutageEvent {
  DslamId dslam = 0;
  util::Day precursor_start = 0;
  util::Day outage_start = 0;
  util::Day outage_end = 0;
};

/// Ground-truth fault episode (not visible to NEVERMIND; used by tests
/// and by the §5.2-style analyses of "incorrect" predictions).
struct FaultEpisode {
  LineId line = 0;
  DispositionId disposition = 0;
  float severity = 1.0F;
  util::Day onset = 0;
  util::Day cleared = 0;            // exclusive; may exceed the sim horizon
  std::int32_t first_ticket = kNoTicket;  // TicketId of first report
  std::uint64_t activity_seed = 0;  // drives intermittent duty cycles
};

/// One line's Saturday test for one week; state == 0 and NaN metrics
/// encode "modem off, missing record".
using WeeklyMeasurements = std::vector<MetricVector>;  // indexed by LineId

}  // namespace nevermind::dslsim
