// Record types for the simulator's output datasets — the synthetic
// equivalents of the paper's four information sources (Section 3.3):
// weekly line measurements, customer trouble tickets, ticket disposition
// notes, and subscriber profiles; plus DSLAM outage events and the
// daily per-customer byte feed used by the §5.2 analyses.
#pragma once

#include <cstdint>
#include <vector>

#include "dslsim/faults.hpp"
#include "dslsim/metrics.hpp"
#include "dslsim/topology.hpp"
#include "util/calendar.hpp"

namespace nevermind::dslsim {

using TicketId = std::uint32_t;
inline constexpr std::int32_t kNoTicket = -1;

enum class TicketCategory : std::uint8_t {
  kCustomerEdge = 0,  // the tickets NEVERMIND predicts
  kBilling,           // filtered out by the agents' coarse label
  kOther,
};

/// A customer trouble ticket as logged by the customer agents.
struct Ticket {
  TicketId id = 0;
  LineId line = 0;
  util::Day reported = 0;
  TicketCategory category = TicketCategory::kCustomerEdge;
  /// Day the dispatch resolved it (or the agent closed it).
  util::Day resolved = 0;
  /// Index into SimDataset::notes, or kNoTicket when no dispatch ran.
  std::int32_t note = kNoTicket;
};

/// A field technician's disposition note (paper data source 3). The
/// disposition code is ground truth *as recorded*: per the paper it is
/// noisy — blames the device closest to the end host and reflects
/// technician judgement.
struct DispositionNote {
  TicketId ticket_id = 0;
  LineId line = 0;
  util::Day dispatch_day = 0;
  DispositionId disposition = 0;
  MajorLocation location = MajorLocation::kHomeNetwork;
};

/// A DSLAM-level outage: `precursor_start` is when the equipment began
/// degrading (visible in line tests), [outage_start, outage_end) is the
/// hard outage during which the IVR absorbs customer calls.
struct OutageEvent {
  DslamId dslam = 0;
  util::Day precursor_start = 0;
  util::Day outage_start = 0;
  util::Day outage_end = 0;
};

/// Kinds of correlated shared-infrastructure events: unlike the i.i.d.
/// per-line fault catalogue, these strike one piece of shared plant and
/// degrade its whole subtree together — the spatial structure TelApart-
/// style network-vs-premise separation exploits.
enum class InfraEventKind : std::uint8_t {
  /// Scheduled/maintenance DSLAM outage: hard loss of the whole shelf
  /// (on top of the random OutageEvent arrival process).
  kDslamOutage = 0,
  /// Water or corrosion in a crossbox: every line in the cabinet's F1
  /// binder degrades, ramping over days.
  kCrossboxDegradation,
  /// Regional weather burst: raised noise floor and errored seconds
  /// across an ATM region, sudden and short.
  kWeatherBurst,
  /// Staged firmware rollout gone wrong: the upgraded DSLAM's lines
  /// see elevated FEC/ES until the rollback.
  kFirmwareRegression,
};
inline constexpr std::size_t kNumInfraEventKinds = 4;

[[nodiscard]] const char* infra_event_kind_name(InfraEventKind kind) noexcept;

/// One correlated infrastructure event. `scope` is a DslamId for
/// kDslamOutage/kFirmwareRegression, a CrossboxId for
/// kCrossboxDegradation, and an AtmId for kWeatherBurst. `location` is
/// the ground-truth major location a perfect technician would blame.
struct InfraEvent {
  InfraEventKind kind = InfraEventKind::kDslamOutage;
  std::uint32_t scope = 0;
  util::Day start = 0;
  util::Day end = 0;  // exclusive
  float severity = 1.0F;
  MajorLocation location = MajorLocation::kDslam;
};

/// Ground-truth fault episode (not visible to NEVERMIND; used by tests
/// and by the §5.2-style analyses of "incorrect" predictions).
struct FaultEpisode {
  LineId line = 0;
  DispositionId disposition = 0;
  float severity = 1.0F;
  util::Day onset = 0;
  util::Day cleared = 0;            // exclusive; may exceed the sim horizon
  std::int32_t first_ticket = kNoTicket;  // TicketId of first report
  std::uint64_t activity_seed = 0;  // drives intermittent duty cycles
};

/// One line's Saturday test for one week; state == 0 and NaN metrics
/// encode "modem off, missing record".
using WeeklyMeasurements = std::vector<MetricVector>;  // indexed by LineId

}  // namespace nevermind::dslsim
